type t = {
  inserts : Sync.Counter.t;
  mem_tests : Sync.Counter.t;
  lower_bounds : Sync.Counter.t;
  upper_bounds : Sync.Counter.t;
  input_tuples : Sync.Counter.t;
  produced_tuples : Sync.Counter.t;
}

let create () =
  {
    inserts = Sync.Counter.make 0;
    mem_tests = Sync.Counter.make 0;
    lower_bounds = Sync.Counter.make 0;
    upper_bounds = Sync.Counter.make 0;
    input_tuples = Sync.Counter.make 0;
    produced_tuples = Sync.Counter.make 0;
  }

let reset t =
  Sync.Counter.set t.inserts 0;
  Sync.Counter.set t.mem_tests 0;
  Sync.Counter.set t.lower_bounds 0;
  Sync.Counter.set t.upper_bounds 0;
  Sync.Counter.set t.input_tuples 0;
  Sync.Counter.set t.produced_tuples 0

type snapshot = {
  s_inserts : int;
  s_mem_tests : int;
  s_lower_bounds : int;
  s_upper_bounds : int;
  s_input_tuples : int;
  s_produced_tuples : int;
}

let snapshot t =
  {
    s_inserts = Sync.Counter.get t.inserts;
    s_mem_tests = Sync.Counter.get t.mem_tests;
    s_lower_bounds = Sync.Counter.get t.lower_bounds;
    s_upper_bounds = Sync.Counter.get t.upper_bounds;
    s_input_tuples = Sync.Counter.get t.input_tuples;
    s_produced_tuples = Sync.Counter.get t.produced_tuples;
  }

(* Exact integer, with an abbreviated form appended once it stops being
   readable at a glance: [1234567] prints as ["1234567 (~1.2e6)"]. *)
let pp_count fmt n =
  if n < 100_000 then Format.fprintf fmt "%d" n
  else Format.fprintf fmt "%d (~%.1e)" n (float_of_int n)

let pp fmt s =
  Format.fprintf fmt
    "inserts=%a mem=%a lower_bound=%a upper_bound=%a input=%a produced=%a"
    pp_count s.s_inserts
    pp_count s.s_mem_tests
    pp_count s.s_lower_bounds
    pp_count s.s_upper_bounds
    pp_count s.s_input_tuples
    pp_count s.s_produced_tuples
