type t = {
  inserts : int Atomic.t;
  mem_tests : int Atomic.t;
  lower_bounds : int Atomic.t;
  upper_bounds : int Atomic.t;
  input_tuples : int Atomic.t;
  produced_tuples : int Atomic.t;
}

let create () =
  {
    inserts = Atomic.make 0;
    mem_tests = Atomic.make 0;
    lower_bounds = Atomic.make 0;
    upper_bounds = Atomic.make 0;
    input_tuples = Atomic.make 0;
    produced_tuples = Atomic.make 0;
  }

let reset t =
  Atomic.set t.inserts 0;
  Atomic.set t.mem_tests 0;
  Atomic.set t.lower_bounds 0;
  Atomic.set t.upper_bounds 0;
  Atomic.set t.input_tuples 0;
  Atomic.set t.produced_tuples 0

type snapshot = {
  s_inserts : int;
  s_mem_tests : int;
  s_lower_bounds : int;
  s_upper_bounds : int;
  s_input_tuples : int;
  s_produced_tuples : int;
}

let snapshot t =
  {
    s_inserts = Atomic.get t.inserts;
    s_mem_tests = Atomic.get t.mem_tests;
    s_lower_bounds = Atomic.get t.lower_bounds;
    s_upper_bounds = Atomic.get t.upper_bounds;
    s_input_tuples = Atomic.get t.input_tuples;
    s_produced_tuples = Atomic.get t.produced_tuples;
  }

(* Exact integer, with an abbreviated form appended once it stops being
   readable at a glance: [1234567] prints as ["1234567 (~1.2e6)"]. *)
let pp_count fmt n =
  if n < 100_000 then Format.fprintf fmt "%d" n
  else Format.fprintf fmt "%d (~%.1e)" n (float_of_int n)

let pp fmt s =
  Format.fprintf fmt
    "inserts=%a mem=%a lower_bound=%a upper_bound=%a input=%a produced=%a"
    pp_count s.s_inserts
    pp_count s.s_mem_tests
    pp_count s.s_lower_bounds
    pp_count s.s_upper_bounds
    pp_count s.s_input_tuples
    pp_count s.s_produced_tuples
