type t = {
  name : string;
  arity : int;
  kind : Storage.kind;
  stats : Dl_stats.t option;
  write_lock : Mutex.t option; (* Some for kinds without thread-safe insert *)
  primary : Storage.Index.t;
  secondary : (int array * Storage.Index.t) array;
      (* signature -> serving index; entries may share indexes physically
         (chain cover, tree kinds only) *)
  distinct : Storage.Index.t array; (* each underlying secondary index once *)
}

(* Tree indexes can serve every signature on a containment chain; hash
   multimaps serve exactly one signature each. *)
let shares_indexes = function
  | Storage.Btree | Storage.Btree_nohints | Storage.Rbtree | Storage.Bplus ->
    true
  | Storage.Hashset | Storage.Tbb_hash -> false

let create ?(check_phases = false) ~name ~arity ~kind ~sigs ~stats () =
  let checked i idx =
    if check_phases then
      Storage.Index.with_phase_check
        ~name:(Printf.sprintf "%s[%d]" name i)
        idx
    else idx
  in
  let uniq =
    List.sort_uniq compare (List.filter (fun s -> Array.length s > 0) sigs)
  in
  let secondary, distinct =
    if shares_indexes kind then begin
      let plan = Index_selection.solve ~arity uniq in
      let indexes =
        Array.of_list
          (List.mapi
             (fun i order ->
               checked (i + 1)
                 (Storage.Index.create kind ~arity ~cols:[||] ~order ~stats ()))
             plan.Index_selection.orders)
      in
      ( Array.of_list
          (List.map
             (fun (cols, chain) -> (cols, indexes.(chain)))
             plan.Index_selection.assignment),
        indexes )
    end
    else begin
      let entries =
        List.mapi
          (fun i cols ->
            (cols, checked (i + 1) (Storage.Index.create kind ~arity ~cols ~stats ())))
          uniq
      in
      (Array.of_list entries, Array.of_list (List.map snd entries))
    end
  in
  {
    name;
    arity;
    kind;
    stats;
    write_lock =
      (if Storage.thread_safe_insert kind then None else Some (Mutex.create ()));
    primary = checked 0 (Storage.Index.create kind ~arity ~cols:[||] ~stats ());
    secondary;
    distinct;
  }

let name t = t.name
let arity t = t.arity
let cardinal t = Storage.Index.cardinal t.primary
let is_empty t = Storage.Index.is_empty t.primary
let iter t f = Storage.Index.iter t.primary f
let mem t tup = Storage.Index.mem t.primary tup

let insert_unlocked t tup =
  let fresh = Storage.Index.insert t.primary tup in
  if fresh then
    Array.iter
      (fun idx -> ignore (Storage.Index.insert idx tup : bool))
      t.distinct;
  fresh

let insert t tup =
  match t.write_lock with
  | None -> insert_unlocked t tup
  | Some m -> Mutex.protect m (fun () -> insert_unlocked t tup)

let hint_counters t =
  let add acc idx =
    match (acc, Storage.Index.hint_counters idx) with
    | None, c -> c
    | Some (h, m), Some (h', m') -> Some (h + h', m + m')
    | Some _, None -> acc
  in
  Array.fold_left (fun acc idx -> add acc idx) (add None t.primary) t.distinct

let shape t = Storage.Index.shape t.primary

let hint_runs t =
  let add acc idx = Storage.Index.merge_runs acc (Storage.Index.hint_runs idx) in
  Array.fold_left (fun acc idx -> add acc idx) (add None t.primary) t.distinct

let index_count t = Array.length t.distinct

let sig_id t cols =
  let n = Array.length t.secondary in
  let rec go i =
    if i = n then raise Not_found
    else if fst t.secondary.(i) = cols then i
    else go (i + 1)
  in
  if Array.length cols = 0 then -1 else go 0

module Cursor = struct
  type rel = t

  type t = {
    rel : rel;
    c_primary : Storage.Index.cursor;
    c_insert : Storage.Index.cursor array; (* one per underlying index *)
    c_scan : (int array * Storage.Index.cursor) array; (* one per signature *)
  }

  let create rel =
    {
      rel;
      c_primary = Storage.Index.cursor rel.primary;
      c_insert = Array.map Storage.Index.cursor rel.distinct;
      c_scan =
        Array.map
          (fun (cols, idx) -> (cols, Storage.Index.cursor idx))
          rel.secondary;
    }

  let count_insert c fresh =
    match c.rel.stats with
    | None -> ()
    | Some s ->
      Atomic.incr s.Dl_stats.inserts;
      if fresh then Atomic.incr s.Dl_stats.produced_tuples

  let insert_unlocked c tup =
    let fresh = Storage.Index.c_insert c.c_primary tup in
    if fresh then
      Array.iter
        (fun cur -> ignore (Storage.Index.c_insert cur tup : bool))
        c.c_insert;
    fresh

  let insert c tup =
    let fresh =
      match c.rel.write_lock with
      | None -> insert_unlocked c tup
      | Some m -> Mutex.protect m (fun () -> insert_unlocked c tup)
    in
    count_insert c fresh;
    fresh

  let mem c tup = Storage.Index.c_mem c.c_primary tup

  let scan c sig_id bound f =
    if sig_id < 0 then Storage.Index.c_scan c.c_primary ~cols:[||] bound f
    else begin
      let cols, cur = c.c_scan.(sig_id) in
      Storage.Index.c_scan cur ~cols bound f
    end
end
