type t = {
  name : string;
  arity : int;
  kind : Storage.kind;
  stats : Dl_stats.t option;
  write_lock : Mutex.t option; (* Some for kinds without thread-safe insert *)
  primary : Storage.Index.t;
  secondary : (int array * Storage.Index.t) array;
      (* signature -> serving index; entries may share indexes physically
         (chain cover, tree kinds only) *)
  distinct : Storage.Index.t array; (* each underlying secondary index once *)
  phase : Sync.Phase_latch.t;
      (* open typed phases: a reader/writer latch word (same packing as
         [Storage.Index.with_phase_check]) *)
}

let shares_indexes = Storage.shares_indexes

let create ?(check_phases = false) ~name ~arity ~kind ~sigs ~stats () =
  let checked i idx =
    if check_phases then
      Storage.Index.with_phase_check
        ~name:(Printf.sprintf "%s[%d]" name i)
        idx
    else idx
  in
  let uniq =
    List.sort_uniq Key.Int_array.compare (List.filter (fun s -> Array.length s > 0) sigs)
  in
  let secondary, distinct =
    if shares_indexes kind then begin
      let plan = Index_selection.solve ~arity uniq in
      let indexes =
        Array.of_list
          (List.mapi
             (fun i order ->
               checked (i + 1)
                 (Storage.Index.create kind ~arity ~cols:[||] ~order ~stats ()))
             plan.Index_selection.orders)
      in
      ( Array.of_list
          (List.map
             (fun (cols, chain) -> (cols, indexes.(chain)))
             plan.Index_selection.assignment),
        indexes )
    end
    else begin
      let entries =
        List.mapi
          (fun i cols ->
            (cols, checked (i + 1) (Storage.Index.create kind ~arity ~cols ~stats ())))
          uniq
      in
      (Array.of_list entries, Array.of_list (List.map snd entries))
    end
  in
  {
    name;
    arity;
    kind;
    stats;
    write_lock =
      (if Storage.thread_safe_insert kind then None else Some (Mutex.create ()));
    primary = checked 0 (Storage.Index.create kind ~arity ~cols:[||] ~stats ());
    secondary;
    distinct;
    phase = Sync.Phase_latch.make ();
  }

let name t = t.name
let arity t = t.arity
let cardinal t = Storage.Index.cardinal t.primary
let is_empty t = Storage.Index.is_empty t.primary
let iter t f = Storage.Index.iter t.primary f
let mem t tup = Storage.Index.mem t.primary tup

let insert_unlocked t tup =
  let fresh = Storage.Index.insert t.primary tup in
  if fresh then
    Array.iter
      (fun idx -> ignore (Storage.Index.insert idx tup : bool))
      t.distinct;
  fresh

let insert t tup =
  match t.write_lock with
  | None -> insert_unlocked t tup
  | Some m -> Mutex.protect m (fun () -> insert_unlocked t tup)

let hint_counters t =
  let add acc idx =
    match (acc, Storage.Index.hint_counters idx) with
    | None, c -> c
    | Some (h, m), Some (h', m') -> Some (h + h', m + m')
    | Some _, None -> acc
  in
  Array.fold_left (fun acc idx -> add acc idx) (add None t.primary) t.distinct

let shape t = Storage.Index.shape t.primary

let hint_runs t =
  let add acc idx = Storage.Index.merge_runs acc (Storage.Index.hint_runs idx) in
  Array.fold_left (fun acc idx -> add acc idx) (add None t.primary) t.distinct

let index_count t = Array.length t.distinct

let sig_id t cols =
  let n = Array.length t.secondary in
  let rec go i =
    if i = n then raise Not_found
    else if fst t.secondary.(i) = cols then i
    else go (i + 1)
  in
  if Array.length cols = 0 then -1 else go 0

module Cursor = struct
  type rel = t

  type t = {
    rel : rel;
    c_primary : Storage.Index.cursor;
    c_insert : Storage.Index.cursor array; (* one per underlying index *)
    c_scan : (int array * Storage.Index.cursor) array; (* one per signature *)
  }

  let create rel =
    {
      rel;
      c_primary = Storage.Index.cursor rel.primary;
      c_insert = Array.map Storage.Index.cursor rel.distinct;
      c_scan =
        Array.map
          (fun (cols, idx) -> (cols, Storage.Index.cursor idx))
          rel.secondary;
    }

  let count_insert c fresh =
    match c.rel.stats with
    | None -> ()
    | Some s ->
      Sync.Counter.incr s.Dl_stats.inserts;
      if fresh then Sync.Counter.incr s.Dl_stats.produced_tuples

  let insert_unlocked c tup =
    let fresh = Storage.Index.c_insert c.c_primary tup in
    if fresh then
      Array.iter
        (fun cur -> ignore (Storage.Index.c_insert cur tup : bool))
        c.c_insert;
    fresh

  let insert c tup =
    let fresh =
      match c.rel.write_lock with
      | None -> insert_unlocked c tup
      | Some m -> Mutex.protect m (fun () -> insert_unlocked c tup)
    in
    count_insert c fresh;
    fresh

  let mem c tup = Storage.Index.c_mem c.c_primary tup

  let scan c sig_id bound f =
    if sig_id < 0 then Storage.Index.c_scan c.c_primary ~cols:[||] bound f
    else begin
      let cols, cur = c.c_scan.(sig_id) in
      Storage.Index.c_scan cur ~cols bound f
    end
end

(* ---------------- batch merge ---------------- *)

let merge_batch ?pool t tuples =
  if Array.length tuples = 0 then 0
  else begin
    let do_merge () =
      if Array.length t.distinct = 0 then
        Storage.Index.merge ?pool t.primary tuples
      else if shares_indexes t.kind then begin
        (* Tree kinds: every index is a dedup set, so each can merge the
           full array independently (sorting its own copy in its own
           order).  Skipping the primary-freshness gate is equivalent to
           the serial per-tuple path: a tuple already in the primary is
           already in every secondary. *)
        let fresh = Storage.Index.merge ?pool t.primary tuples in
        Array.iter
          (fun idx -> ignore (Storage.Index.merge ?pool idx tuples : int))
          t.distinct;
        fresh
      end
      else begin
        (* Hash kinds: secondaries are multimaps (no dedup), so only
           tuples fresh in the primary may reach them — gate per tuple
           like the serial path, spread on the pool when the kind takes
           concurrent inserts. *)
        match pool with
        | Some p
          when t.write_lock = None
               && Pool.size p > 1
               && Array.length tuples >= 1024 ->
          let fresh = Sync.Counter.make 0 in
          Pool.parallel_for_ranges ~label:"merge" p 0 (Array.length tuples)
            (fun _w lo hi ->
              let f = ref 0 in
              for i = lo to hi - 1 do
                if insert_unlocked t tuples.(i) then incr f
              done;
              Sync.Counter.add fresh !f);
          Sync.Counter.get fresh
        | _ ->
          let fresh = ref 0 in
          Array.iter
            (fun tup -> if insert_unlocked t tup then incr fresh)
            tuples;
          !fresh
      end
    in
    match t.write_lock with
    | None -> do_merge ()
    | Some m -> Mutex.protect m do_merge
  end

(* ---------------- typed two-phase access ---------------- *)

(* In every parallel region a relation is either written or read, never
   both — the contract the B-tree's synchronisation is specialised for.
   [begin_write]/[begin_read] make the phase explicit in the types (a
   Writer cannot scan, a Reader cannot insert) and detect overlap
   dynamically: both phases are counted in one atomic word, so an overlap
   check is a single fetch-and-add with no window. *)

let enter_phase t phase what =
  if not (Sync.Phase_latch.try_enter t.phase phase) then
    raise
      (Storage.Index.Phase_violation
         (Printf.sprintf "%s: begin_%s during an open %s phase" t.name what
            (if what = "write" then "read" else "write")))
  else
    Flight.record Flight.Ev.Phase
      (if phase = Sync.Phase_latch.Write then Flight.phase_write_enter
       else Flight.phase_read_enter)
      0 0

let leave_phase t phase closed =
  if !closed then invalid_arg "Relation: phase handle finished twice";
  closed := true;
  Sync.Phase_latch.leave t.phase phase;
  Flight.record Flight.Ev.Phase
    (if phase = Sync.Phase_latch.Write then Flight.phase_write_leave
     else Flight.phase_read_leave)
    0 0

(* A finished handle no longer holds its phase slot: an operation through
   it would race whatever phase opened since (exactly the overlap the
   phase word exists to exclude), so it is refused eagerly rather than
   left to corrupt silently.  One bool-ref load on the hot path. *)
let check_open name closed what =
  if !closed then
    raise
      (Storage.Index.Phase_violation
         (Printf.sprintf "%s: %s through a finished handle" name what))

module Writer = struct
  type rel = t
  type t = { w_cur : Cursor.t; w_rel : rel; w_closed : bool ref }

  let insert w tup =
    check_open w.w_rel.name w.w_closed "insert";
    Cursor.insert w.w_cur tup

  let insert_batch ?pool w tuples =
    check_open w.w_rel.name w.w_closed "insert_batch";
    merge_batch ?pool w.w_rel tuples

  let finish w = leave_phase w.w_rel Sync.Phase_latch.Write w.w_closed
end

module Reader = struct
  type rel = t
  type t = { r_cur : Cursor.t; r_rel : rel; r_closed : bool ref }

  let mem r tup =
    check_open r.r_rel.name r.r_closed "mem";
    Cursor.mem r.r_cur tup

  let scan r sig_id bound f =
    check_open r.r_rel.name r.r_closed "scan";
    Cursor.scan r.r_cur sig_id bound f

  let finish r = leave_phase r.r_rel Sync.Phase_latch.Read r.r_closed
end

let begin_write t =
  (* a write may not open while readers are active *)
  enter_phase t Sync.Phase_latch.Write "write";
  { Writer.w_cur = Cursor.create t; w_rel = t; w_closed = ref false }

let begin_read t =
  (* a read may not open while writers are active *)
  enter_phase t Sync.Phase_latch.Read "read";
  { Reader.r_cur = Cursor.create t; r_rel = t; r_closed = ref false }
