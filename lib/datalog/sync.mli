(** Confinement point for [Atomic.*] in the datalog layer.

    The linter (lib/lint, rule atomic-confinement) bans raw atomics in
    lib/datalog outside this module; engine code works with these two
    disciplined shapes instead. *)

module Counter : sig
  (** A shared monotonic-ish counter: parallel accumulators for merge
      fresh-counts and the {!Dl_stats} operation counters. *)

  type t

  val make : int -> t
  val get : t -> int

  val set : t -> int -> unit
  (** Only for single-threaded resets between runs. *)

  val incr : t -> unit
  val add : t -> int -> unit
end

module Phase_latch : sig
  (** Reader/writer phase overlap detector: writers counted in the low 20
      bits of one atomic word, readers above, so entering a phase and
      checking for the opposite phase is a single fetch-and-add with no
      window.  Used by [Relation] and [Storage.Index.with_phase_check] to
      enforce the engine's "a relation is written or read, never both"
      contract. *)

  type t

  type phase = Read | Write

  val make : unit -> t

  val try_enter : t -> phase -> bool
  (** Claim a slot in [phase]. [false] means the opposite phase is open;
      the claim has already been rolled back and the caller reports the
      violation. *)

  val leave : t -> phase -> unit
end
