exception Syntax_error of { line : int; col : int; message : string }

(* ------------------------------------------------------------------ *)
(* Lexer                                                              *)
(* ------------------------------------------------------------------ *)

type token =
  | IDENT of string   (* lower- or upper-case identifier *)
  | NUMBER of int
  | STRING of string
  | DOT
  | COMMA
  | LPAREN
  | RPAREN
  | IMPLIES (* :- *)
  | COLON
  | BANG
  | PLUS
  | MINUS
  | STAR
  | LBRACE
  | RBRACE
  | CMP of Ast.cmpop
  | DIRECTIVE of string (* .decl / .input / .output *)
  | EOF

type lexer_state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int; (* offset of beginning of current line *)
}

let error st message =
  raise (Syntax_error { line = st.line; col = st.pos - st.bol + 1; message })

let peek_char st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st =
  (match peek_char st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.bol <- st.pos + 1
  | _ -> ());
  st.pos <- st.pos + 1

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '?'

let rec skip_ws st =
  match peek_char st with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance st;
    skip_ws st
  | Some '/' when st.pos + 1 < String.length st.src -> begin
    match st.src.[st.pos + 1] with
    | '/' ->
      while peek_char st <> None && peek_char st <> Some '\n' do
        advance st
      done;
      skip_ws st
    | '*' ->
      advance st;
      advance st;
      let rec close () =
        match peek_char st with
        | None -> error st "unterminated block comment"
        | Some '*' when st.pos + 1 < String.length st.src && st.src.[st.pos + 1] = '/' ->
          advance st;
          advance st
        | Some _ ->
          advance st;
          close ()
      in
      close ();
      skip_ws st
    | _ -> ()
  end
  | _ -> ()

let lex_ident st =
  let start = st.pos in
  while match peek_char st with Some c -> is_ident_char c | None -> false do
    advance st
  done;
  String.sub st.src start (st.pos - start)

let lex_number st =
  let start = st.pos in
  (match peek_char st with Some '-' -> advance st | _ -> ());
  while match peek_char st with Some c -> c >= '0' && c <= '9' | None -> false do
    advance st
  done;
  let text = String.sub st.src start (st.pos - start) in
  match int_of_string_opt text with
  | Some n -> n
  | None -> error st (Printf.sprintf "invalid number %S" text)

let lex_string st =
  advance st;
  (* opening quote *)
  let buf = Buffer.create 16 in
  let rec go () =
    match peek_char st with
    | None -> error st "unterminated string literal"
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (match peek_char st with
      | Some 'n' -> Buffer.add_char buf '\n'
      | Some 't' -> Buffer.add_char buf '\t'
      | Some c -> Buffer.add_char buf c
      | None -> error st "unterminated escape");
      advance st;
      go ()
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  Buffer.contents buf

let next_token st =
  skip_ws st;
  match peek_char st with
  | None -> EOF
  | Some c -> (
    match c with
    | ',' ->
      advance st;
      COMMA
    | '(' ->
      advance st;
      LPAREN
    | ')' ->
      advance st;
      RPAREN
    | '{' ->
      advance st;
      LBRACE
    | '}' ->
      advance st;
      RBRACE
    | '!' ->
      advance st;
      if peek_char st = Some '=' then begin
        advance st;
        CMP Ast.Ne
      end
      else BANG
    | '"' -> STRING (lex_string st)
    | '<' ->
      advance st;
      if peek_char st = Some '=' then begin
        advance st;
        CMP Ast.Le
      end
      else CMP Ast.Lt
    | '>' ->
      advance st;
      if peek_char st = Some '=' then begin
        advance st;
        CMP Ast.Ge
      end
      else CMP Ast.Gt
    | '=' ->
      advance st;
      CMP Ast.Eq
    | '+' ->
      advance st;
      PLUS
    | '*' ->
      advance st;
      STAR
    | ':' ->
      advance st;
      if peek_char st = Some '-' then begin
        advance st;
        IMPLIES
      end
      else COLON
    | '.' ->
      advance st;
      (match peek_char st with
      | Some c2 when is_ident_start c2 -> DIRECTIVE (lex_ident st)
      | _ -> DOT)
    | '-' ->
      if
        st.pos + 1 < String.length st.src
        && st.src.[st.pos + 1] >= '0'
        && st.src.[st.pos + 1] <= '9'
      then NUMBER (lex_number st)
      else begin
        advance st;
        MINUS
      end
    | c when c >= '0' && c <= '9' -> NUMBER (lex_number st)
    | c when is_ident_start c -> IDENT (lex_ident st)
    | c -> error st (Printf.sprintf "unexpected character %C" c))

(* ------------------------------------------------------------------ *)
(* Parser                                                             *)
(* ------------------------------------------------------------------ *)

type parser_state = {
  lx : lexer_state;
  mutable tok : token;
  mutable wildcards : int; (* counter for fresh names of `_` *)
}

let shift ps = ps.tok <- next_token ps.lx
let perror ps message = error ps.lx message

let expect ps tok message =
  if ps.tok = tok then shift ps else perror ps message

(* expressions: factor := var | number | string | '(' expr ')';
   product := factor ('*' factor)*;
   expr := product (('+'|'-') product)* *)
let rec parse_factor ps =
  match ps.tok with
  | IDENT "_" ->
    shift ps;
    ps.wildcards <- ps.wildcards + 1;
    Ast.Var (Printf.sprintf "_w%d" ps.wildcards)
  | IDENT v ->
    shift ps;
    Ast.Var v
  | NUMBER n ->
    shift ps;
    Ast.Int n
  | STRING s ->
    shift ps;
    Ast.Sym s
  | LPAREN ->
    shift ps;
    let e = parse_expr ps in
    expect ps RPAREN "expected ')' closing expression";
    e
  | _ -> perror ps "expected a term (variable, number, string or '(')"

and parse_product ps =
  let rec go acc =
    match ps.tok with
    | STAR ->
      shift ps;
      go (Ast.Mul (acc, parse_factor ps))
    | _ -> acc
  in
  go (parse_factor ps)

and parse_expr ps =
  let rec go acc =
    match ps.tok with
    | PLUS ->
      shift ps;
      go (Ast.Add (acc, parse_product ps))
    | MINUS ->
      shift ps;
      go (Ast.Sub (acc, parse_product ps))
    | _ -> acc
  in
  go (parse_product ps)

(* continue an expression whose first factor was already consumed *)
and parse_expr_from ps first =
  let first =
    let rec prod acc =
      match ps.tok with
      | STAR ->
        shift ps;
        prod (Ast.Mul (acc, parse_factor ps))
      | _ -> acc
    in
    prod first
  in
  let rec go acc =
    match ps.tok with
    | PLUS ->
      shift ps;
      go (Ast.Add (acc, parse_product ps))
    | MINUS ->
      shift ps;
      go (Ast.Sub (acc, parse_product ps))
    | _ -> acc
  in
  go first

let parse_term = parse_expr

let parse_atom ps =
  match ps.tok with
  | IDENT pred ->
    shift ps;
    expect ps LPAREN "expected '(' after predicate name";
    let rec args acc =
      let t = parse_term ps in
      match ps.tok with
      | COMMA ->
        shift ps;
        args (t :: acc)
      | RPAREN ->
        shift ps;
        List.rev (t :: acc)
      | _ -> perror ps "expected ',' or ')' in argument list"
    in
    let args = if ps.tok = RPAREN then (shift ps; []) else args [] in
    Ast.atom pred args
  | _ -> perror ps "expected predicate name"

let agg_func_of_name = function
  | "count" -> Some Ast.Count
  | "min" -> Some Ast.Min
  | "max" -> Some Ast.Max
  | "sum" -> Some Ast.Sum
  | _ -> None

(* after `v =` the right side may be an aggregate:
     v = count : { body }      v = min expr : { body }
   or an ordinary expression. *)
let rec parse_cmp_rest ps lhs =
  match ps.tok with
  | CMP op -> (
    shift ps;
    match (op, lhs, ps.tok) with
    | Ast.Eq, Ast.Var result, IDENT name when agg_func_of_name name <> None -> (
      let func = Option.get (agg_func_of_name name) in
      shift ps;
      match (func, ps.tok) with
      | Ast.Count, COLON -> parse_agg_body ps ~result ~func ~arg:None
      | (Ast.Min | Ast.Max | Ast.Sum), (IDENT _ | NUMBER _ | STRING _ | LPAREN)
        ->
        let arg = parse_expr ps in
        parse_agg_body ps ~result ~func ~arg:(Some arg)
      | _ ->
        (* not aggregate syntax: the name was an ordinary variable *)
        let rhs = parse_expr_from ps (Ast.Var name) in
        Ast.Cmp (op, lhs, rhs))
    | _ ->
      let rhs = parse_expr ps in
      Ast.Cmp (op, lhs, rhs))
  | _ -> perror ps "expected a comparison operator"

and parse_agg_body ps ~result ~func ~arg =
  expect ps COLON "expected ':' before aggregate body";
  expect ps LBRACE "expected '{' opening aggregate body";
  let rec body acc =
    let l = parse_literal ps in
    (match l with
    | Ast.Pos _ | Ast.Cmp _ -> ()
    | Ast.Neg _ -> perror ps "negation not supported inside aggregates"
    | Ast.Agg _ -> perror ps "nested aggregates are not supported");
    match ps.tok with
    | COMMA ->
      shift ps;
      body (l :: acc)
    | RBRACE ->
      shift ps;
      List.rev (l :: acc)
    | _ -> perror ps "expected ',' or '}' in aggregate body"
  in
  let agg_body = body [] in
  Ast.Agg { Ast.agg_result = result; agg_func = func; agg_arg = arg; agg_body }

and parse_literal ps =
  match ps.tok with
  | BANG ->
    shift ps;
    Ast.Neg (parse_atom ps)
  | IDENT name ->
    shift ps;
    if ps.tok = LPAREN then begin
      (* an atom: re-use parse_atom's argument parsing *)
      shift ps;
      let rec args acc =
        let t = parse_term ps in
        match ps.tok with
        | COMMA ->
          shift ps;
          args (t :: acc)
        | RPAREN ->
          shift ps;
          List.rev (t :: acc)
        | _ -> perror ps "expected ',' or ')' in argument list"
      in
      let args = if ps.tok = RPAREN then (shift ps; []) else args [] in
      Ast.Pos (Ast.atom name args)
    end
    else
      (* a constraint whose left side starts with this variable *)
      let lhs =
        if name = "_" then perror ps "'_' cannot appear in a constraint"
        else parse_expr_from ps (Ast.Var name)
      in
      parse_cmp_rest ps lhs
  | NUMBER _ | STRING _ | LPAREN ->
    let lhs = parse_expr ps in
    parse_cmp_rest ps lhs
  | _ -> perror ps "expected a literal (atom, negated atom or constraint)"

let parse_clause ps =
  let head = parse_atom ps in
  match ps.tok with
  | DOT ->
    shift ps;
    Ast.rule head []
  | IMPLIES ->
    shift ps;
    let rec body acc =
      let l = parse_literal ps in
      match ps.tok with
      | COMMA ->
        shift ps;
        body (l :: acc)
      | DOT ->
        shift ps;
        List.rev (l :: acc)
      | _ -> perror ps "expected ',' or '.' in rule body"
    in
    Ast.rule head (body [])
  | _ -> perror ps "expected '.' or ':-' after atom"

(* .decl name(arg:type, ...) — argument names/types are parsed and ignored
   beyond the arity. *)
let parse_decl ps =
  match ps.tok with
  | IDENT name ->
    shift ps;
    expect ps LPAREN "expected '(' in .decl";
    let rec fields n =
      match ps.tok with
      | RPAREN ->
        shift ps;
        n
      | IDENT _ ->
        shift ps;
        (* optional ":type" annotation *)
        (match ps.tok with
        | COLON -> (
          shift ps;
          match ps.tok with
          | IDENT _ -> shift ps
          | _ -> perror ps "expected type name after ':' in .decl")
        | _ -> ());
        let n = n + 1 in
        (match ps.tok with
        | COMMA ->
          shift ps;
          fields n
        | RPAREN ->
          shift ps;
          n
        | _ -> perror ps "expected ',' or ')' in .decl")
      | _ -> perror ps "expected field name in .decl"
    in
    let arity = fields 0 in
    (name, arity)
  | _ -> perror ps "expected relation name after .decl"

let parse_program ps =
  let decls = Hashtbl.create 16 in
  let order = ref [] in
  let rules = ref [] in
  let ensure_decl name =
    if not (Hashtbl.mem decls name) then begin
      Hashtbl.add decls name
        { Ast.name; arity = -1; is_input = false; is_output = false };
      order := name :: !order
    end
  in
  let update name f =
    ensure_decl name;
    Hashtbl.replace decls name (f (Hashtbl.find decls name))
  in
  let rec loop () =
    match ps.tok with
    | EOF -> ()
    | DIRECTIVE "decl" ->
      shift ps;
      let name, arity = parse_decl ps in
      update name (fun d -> { d with Ast.arity });
      loop ()
    | DIRECTIVE "input" ->
      shift ps;
      (match ps.tok with
      | IDENT name ->
        shift ps;
        update name (fun d -> { d with Ast.is_input = true });
        loop ()
      | _ -> perror ps "expected relation name after .input")
    | DIRECTIVE "output" ->
      shift ps;
      (match ps.tok with
      | IDENT name ->
        shift ps;
        update name (fun d -> { d with Ast.is_output = true });
        loop ()
      | _ -> perror ps "expected relation name after .output")
    | DIRECTIVE d -> perror ps (Printf.sprintf "unknown directive .%s" d)
    | _ ->
      rules := parse_clause ps :: !rules;
      loop ()
  in
  loop ();
  {
    Ast.decls = List.rev_map (Hashtbl.find decls) !order;
    rules = List.rev !rules;
  }

let parse_string ?filename:_ src =
  let lx = { src; pos = 0; line = 1; bol = 0 } in
  let ps = { lx; tok = EOF; wildcards = 0 } in
  ps.tok <- next_token lx;
  parse_program ps

let parse_file path =
  let ic = open_in_bin path in
  let src =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse_string ~filename:path src
