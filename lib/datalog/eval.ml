type rule_profile = {
  rp_rule : string;       (* pretty-printed source rule *)
  rp_delta : bool;        (* a semi-naive delta variant? *)
  rp_evaluations : int;   (* times this version was evaluated *)
  rp_seconds : float;     (* cumulative wall time *)
}

type result = {
  relations : Relation.t array;
  iterations : int;
  profile : rule_profile list; (* sorted by descending time *)
}

(* Evaluate a source into the environment. *)
let rec value env = function
  | Plan.Const c -> c
  | Plan.Slot s -> Array.unsafe_get env s
  | Plan.SAdd (a, b) -> value env a + value env b
  | Plan.SSub (a, b) -> value env a - value env b
  | Plan.SMul (a, b) -> value env a * value env b

let cmp_holds op x y =
  match op with
  | Ast.Lt -> x < y
  | Ast.Le -> x <= y
  | Ast.Gt -> x > y
  | Ast.Ge -> x >= y
  | Ast.Eq -> x = y
  | Ast.Ne -> x <> y

(* Per-worker execution context for one (sub-)plan: one entry per step.
   Aggregate steps carry a nested context over the same environment.  All
   body relations are accessed through typed read-phase handles — the
   worker cannot accidentally write them. *)
type wctx = {
  env : int array;
  steps : Plan.step array;
  step_readers : Relation.Reader.t array;
  step_sigids : int array;
  step_scratch : int array array;
  step_sub : wctx option array; (* Some for SAgg *)
}

(* Execute steps [i..]; [emit] fires once per complete match of the plan. *)
let rec exec ctx i ~emit =
  if i = Array.length ctx.steps then emit ()
  else
    match ctx.steps.(i) with
    | Plan.SMatch m ->
      let bound = ctx.step_scratch.(i) in
      Array.iteri (fun j s -> bound.(j) <- value ctx.env s) m.m_bound;
      Relation.Reader.scan ctx.step_readers.(i) ctx.step_sigids.(i) bound
        (fun tup ->
          let nb = Array.length m.m_binds in
          for b = 0 to nb - 1 do
            let col, slot = Array.unsafe_get m.m_binds b in
            ctx.env.(slot) <- tup.(col)
          done;
          let ok = ref true in
          let nc = Array.length m.m_checks in
          for c = 0 to nc - 1 do
            let col, s = Array.unsafe_get m.m_checks c in
            if tup.(col) <> value ctx.env s then ok := false
          done;
          if !ok then exec ctx (i + 1) ~emit)
    | Plan.SNeg n ->
      let probe = ctx.step_scratch.(i) in
      Array.iteri (fun j s -> probe.(j) <- value ctx.env s) n.n_bound;
      if not (Relation.Reader.mem ctx.step_readers.(i) probe) then
        exec ctx (i + 1) ~emit
    | Plan.SCmp c ->
      if cmp_holds c.c_op (value ctx.env c.c_lhs) (value ctx.env c.c_rhs) then
        exec ctx (i + 1) ~emit
    | Plan.SBind b ->
      ctx.env.(b.b_slot) <- value ctx.env b.b_src;
      exec ctx (i + 1) ~emit
    | Plan.SAgg a -> (
      let sub =
        match ctx.step_sub.(i) with Some s -> s | None -> assert false
      in
      let result =
        match a.a_func with
        | Ast.Count ->
          let c = ref 0 in
          exec sub 0 ~emit:(fun () -> incr c);
          Some !c
        | Ast.Sum ->
          let arg = Option.get a.a_arg in
          let acc = ref 0 in
          exec sub 0 ~emit:(fun () -> acc := !acc + value ctx.env arg);
          Some !acc
        | Ast.Min | Ast.Max ->
          let arg = Option.get a.a_arg in
          let keep_min = a.a_func = Ast.Min in
          let best = ref None in
          exec sub 0 ~emit:(fun () ->
              let v = value ctx.env arg in
              match !best with
              | None -> best := Some v
              | Some b -> if (if keep_min then v < b else v > b) then best := Some v);
          (* min/max over an empty body: the literal does not fire *)
          !best
      in
      match result with
      | None -> ()
      | Some v ->
        if a.a_slot >= 0 then begin
          ctx.env.(a.a_slot) <- v;
          exec ctx (i + 1) ~emit
        end
        else if v = value ctx.env (Option.get a.a_check) then
          exec ctx (i + 1) ~emit)

(* Apply binds/checks of the (already matched) outer tuple, then run the
   remaining steps. *)
let exec_outer ctx tup ~emit =
  match ctx.steps.(0) with
  | Plan.SMatch m ->
    let nb = Array.length m.m_binds in
    for b = 0 to nb - 1 do
      let col, slot = Array.unsafe_get m.m_binds b in
      ctx.env.(slot) <- tup.(col)
    done;
    let ok = ref true in
    let nc = Array.length m.m_checks in
    for c = 0 to nc - 1 do
      let col, s = Array.unsafe_get m.m_checks c in
      if tup.(col) <> value ctx.env s then ok := false
    done;
    if !ok then exec ctx 1 ~emit
  | Plan.SNeg _ | Plan.SCmp _ | Plan.SBind _ | Plan.SAgg _ -> assert false

let run ?(check_phases = false) ?(fact_runs = []) (plan : Plan.t) ~pool ~kind
    ~stats ~extra_facts ~profile =
  let npreds = plan.Plan.npreds in
  let fulls =
    Array.init npreds (fun p ->
        Relation.create ~check_phases ~name:plan.Plan.pred_names.(p)
          ~arity:plan.Plan.arities.(p) ~kind ~sigs:plan.Plan.sigs_full.(p)
          ~stats ())
  in
  (* a pool is worth forking for a write only when the batch is large
     enough and the storage kind takes concurrent inserts *)
  let merge_pool cnt =
    if cnt >= 256 && Pool.size pool > 1 && Storage.thread_safe_insert kind
    then Some pool
    else None
  in
  let t_eval = Telemetry.span_start () in
  let t_load = Telemetry.span_start () in
  (* Bulk fact loading: group facts per predicate, then feed each group
     through the batch write path (each index sorts the group in its own
     order and bulk-inserts it — in parallel for large groups). *)
  let counts = Array.make npreds 0 in
  let check (p, tup) =
    if Array.length tup <> plan.Plan.arities.(p) then
      invalid_arg
        (Printf.sprintf "fact arity mismatch for %s" plan.Plan.pred_names.(p));
    counts.(p) <- counts.(p) + 1
  in
  List.iter check plan.Plan.facts;
  List.iter check extra_facts;
  List.iter
    (fun (p, run) -> Array.iter (fun tup -> check (p, tup)) run)
    fact_runs;
  let groups = Array.init npreds (fun p -> Array.make counts.(p) [||]) in
  let fill = Array.make npreds 0 in
  let put (p, tup) =
    groups.(p).(fill.(p)) <- tup;
    fill.(p) <- fill.(p) + 1
  in
  List.iter put plan.Plan.facts;
  List.iter put extra_facts;
  List.iter
    (fun (p, run) ->
      let n = Array.length run in
      Array.blit run 0 groups.(p) fill.(p) n;
      fill.(p) <- fill.(p) + n)
    fact_runs;
  Array.iteri
    (fun p group ->
      let cnt = Array.length group in
      if cnt > 0 then begin
        let w = Relation.begin_write fulls.(p) in
        let fresh = Relation.Writer.insert_batch ?pool:(merge_pool cnt) w group in
        Relation.Writer.finish w;
        match stats with
        | Some s ->
          Sync.Counter.add s.Dl_stats.input_tuples fresh
        | None -> ()
      end)
    groups;
  Telemetry.span_end ~cat:"eval" "eval.load_facts" t_load;
  let iterations = ref 0 in
  (* delta / new relations, allocated per stratum *)
  let deltas = Array.make npreds None in
  let news = Array.make npreds None in
  let fresh_rel p =
    Relation.create ~check_phases ~name:plan.Plan.pred_names.(p)
      ~arity:plan.Plan.arities.(p) ~kind
      ~sigs:plan.Plan.sigs_delta.(p)
      ~stats ()
  in
  let the = function Some r -> r | None -> assert false in
  (* per compiled-rule-version accumulators, keyed physically *)
  let prof : (Plan.crule * float ref * int ref) list ref = ref [] in
  let prof_entry cr =
    match List.find_opt (fun (c, _, _) -> c == cr) !prof with
    | Some (_, t, n) -> (t, n)
    | None ->
      let t = ref 0.0 and n = ref 0 in
      prof := (cr, t, n) :: !prof;
      (t, n)
  in
  (* Evaluate one compiled rule version, reading delta relations where the
     plan says so, writing into news.(head). *)
  let eval_rule_timed (cr : Plan.crule) =
    let step_rel step =
      match step with
      | Plan.SMatch m ->
        if m.m_delta then the deltas.(m.m_pred) else fulls.(m.m_pred)
      | Plan.SNeg n -> fulls.(n.n_pred)
      | Plan.SCmp _ | Plan.SBind _ | Plan.SAgg _ ->
        (* these steps touch no relation; any placeholder works *)
        fulls.(cr.cr_head)
    in
    (* resolve signature ids once per rule evaluation; workers then only
       create cursors *)
    let sigids_of steps =
      Array.map
        (fun step ->
          match step with
          | Plan.SMatch m -> Relation.sig_id (step_rel step) m.m_sig
          | Plan.SNeg _ | Plan.SCmp _ | Plan.SBind _ | Plan.SAgg _ -> -1)
        steps
    in
    let scratch_len step =
      match step with
      | Plan.SMatch m -> Array.length m.m_sig
      | Plan.SNeg n -> Array.length n.n_bound
      | Plan.SCmp _ | Plan.SBind _ | Plan.SAgg _ -> 0
    in
    (* every phase handle a worker opens is collected and finished when the
       worker is done — a relation that is a write target this round may be
       a read source next round, so phases must not leak *)
    let rec make_steps_ctx handles env steps =
      {
        env;
        steps;
        step_readers =
          Array.map
            (fun st ->
              let r = Relation.begin_read (step_rel st) in
              handles := (fun () -> Relation.Reader.finish r) :: !handles;
              r)
            steps;
        step_sigids = sigids_of steps;
        step_scratch = Array.map (fun st -> Array.make (scratch_len st) 0) steps;
        step_sub =
          Array.map
            (fun st ->
              match st with
              | Plan.SAgg a -> Some (make_steps_ctx handles env a.a_steps)
              | _ -> None)
            steps;
      }
    in
    (* per-worker context + emit: build the head tuple, dedup against full,
       insert into new.  Body relations are read handles, the head's new
       relation is the only write handle. *)
    let make_worker () =
      let handles = ref [] in
      let ctx =
        make_steps_ctx handles (Array.make (max 1 cr.cr_nslots) 0) cr.cr_steps
      in
      let head_writer = Relation.begin_write (the news.(cr.cr_head)) in
      let full_head_reader = Relation.begin_read fulls.(cr.cr_head) in
      let emit () =
        let tup = Array.map (fun s -> value ctx.env s) cr.cr_head_src in
        if not (Relation.Reader.mem full_head_reader tup) then
          ignore (Relation.Writer.insert head_writer tup : bool)
      in
      let close () =
        Relation.Writer.finish head_writer;
        Relation.Reader.finish full_head_reader;
        List.iter (fun f -> f ()) !handles
      in
      (ctx, emit, close)
    in
    (* [close] runs under [Fun.protect]: a worker that dies mid-rule (a
       phase violation, an injected fault) must still release its phase
       handles, or the leaked phase poisons every later round that reopens
       the relation in the other phase. *)
    match cr.cr_steps.(0) with
    | Plan.SNeg _ | Plan.SCmp _ | Plan.SBind _ | Plan.SAgg _ ->
      (* ground prefix (e.g. `p(1) :- !q(2).`): no outer loop to split *)
      let ctx, emit, close = make_worker () in
      Fun.protect ~finally:close (fun () -> exec ctx 0 ~emit)
    | Plan.SMatch m ->
      (* materialise the outer scan, then partition it over the pool *)
      let outer_rel = step_rel cr.cr_steps.(0) in
      let bound = Array.map (value [||]) m.m_bound in
      (* outer bound sources are constants only: the first literal has no
         previously bound variables; [value] with an empty env would fail on
         slots, which the planner rules out *)
      let outer_reader = Relation.begin_read outer_rel in
      let outer_sig = Relation.sig_id outer_rel m.m_sig in
      let buf = ref [] and n = ref 0 in
      Fun.protect
        ~finally:(fun () -> Relation.Reader.finish outer_reader)
        (fun () ->
          Relation.Reader.scan outer_reader outer_sig bound (fun tup ->
              buf := tup :: !buf;
              incr n));
      if !n > 0 then begin
        let arr = Array.make !n [||] in
        List.iteri (fun i tup -> arr.(i) <- tup) !buf;
        if !n < 64 || Pool.size pool = 1 then begin
          let ctx, emit, close = make_worker () in
          Fun.protect ~finally:close (fun () ->
              Array.iter (fun tup -> exec_outer ctx tup ~emit) arr)
        end
        else
          Pool.parallel_for_ranges ~label:"rule" pool 0 !n (fun _w lo hi ->
              let ctx, emit, close = make_worker () in
              Fun.protect ~finally:close (fun () ->
                  for i = lo to hi - 1 do
                    exec_outer ctx arr.(i) ~emit
                  done))
      end
  in
  let eval_rule cr =
    Telemetry.bump Telemetry.Counter.Eval_rule_evals;
    if profile then begin
      let t, n = prof_entry cr in
      incr n;
      let t0 = Unix.gettimeofday () in
      eval_rule_timed cr;
      t := !t +. (Unix.gettimeofday () -. t0)
    end
    else eval_rule_timed cr
  in
  (* merge new into full, returning the number of promoted tuples (the
     iteration's delta cardinality; 0 means fixed point) *)
  let promote stratum =
    let total = ref 0 in
    Array.iter
      (fun p ->
        let n = the news.(p) in
        if not (Relation.is_empty n) then begin
          let tuples = ref [] and cnt = ref 0 in
          Relation.iter n (fun tup ->
              tuples := tup :: !tuples;
              incr cnt);
          total := !total + !cnt;
          let arr = Array.make !cnt [||] in
          List.iteri (fun i tup -> arr.(i) <- tup) !tuples;
          (* delta -> full structural merge through the batch write path:
             serial for small deltas and thread-unsafe kinds, partitioned
             over the pool otherwise *)
          let w = Relation.begin_write fulls.(p) in
          ignore (Relation.Writer.insert_batch ?pool:(merge_pool !cnt) w arr : int);
          Relation.Writer.finish w
        end;
        deltas.(p) <- news.(p);
        news.(p) <- Some (fresh_rel p))
      stratum;
    if !total > 0 then Telemetry.add Telemetry.Counter.Eval_delta_tuples !total;
    !total
  in
  Array.iteri
    (fun s stratum ->
      let seed = plan.Plan.seed_rules.(s) in
      let delta_versions = plan.Plan.delta_rules.(s) in
      if seed <> [] then begin
        let t_stratum = Telemetry.span_start () in
        Array.iter (fun p -> news.(p) <- Some (fresh_rel p)) stratum;
        (* one fixed-point round: evaluate [rules], promote, report delta *)
        let round rules =
          (* histogram timing is counter-gated, span timing trace-gated *)
          let h_round = Telemetry.hist_time () in
          let t_round = Telemetry.span_start () in
          let t_rules = Telemetry.span_start () in
          List.iter eval_rule rules;
          Telemetry.span_end ~cat:"eval" "eval.rules" t_rules;
          incr iterations;
          Telemetry.bump Telemetry.Counter.Eval_iterations;
          let t_promote = Telemetry.span_start () in
          let delta = promote stratum in
          Telemetry.span_end ~cat:"eval" "eval.promote" t_promote;
          Telemetry.span_end
            ~args:
              [
                ("stratum", Telemetry.A_int s);
                ("round", Telemetry.A_int !iterations);
                ("delta_tuples", Telemetry.A_int delta);
              ]
            ~cat:"eval" "eval.iteration" t_round;
          Telemetry.hist_end Telemetry.Hist.Eval_iteration_ns h_round;
          delta > 0
        in
        let continue = ref (round seed) in
        while !continue && delta_versions <> [] do
          continue := round delta_versions
        done;
        (* release per-stratum scaffolding *)
        Array.iter
          (fun p ->
            deltas.(p) <- None;
            news.(p) <- None)
          stratum;
        Telemetry.span_end
          ~args:[ ("stratum", Telemetry.A_int s) ]
          ~cat:"eval" "eval.stratum" t_stratum
      end)
    plan.Plan.strat.Stratify.strata;
  let is_delta cr =
    Array.exists
      (function Plan.SMatch m -> m.Plan.m_delta | _ -> false)
      cr.Plan.cr_steps
  in
  let profile =
    List.sort
      (fun a b -> Float.compare b.rp_seconds a.rp_seconds)
      (List.map
         (fun ((cr : Plan.crule), t, n) ->
           {
             rp_rule = cr.Plan.cr_text;
             rp_delta = is_delta cr;
             rp_evaluations = !n;
             rp_seconds = !t;
           })
         !prof)
  in
  Telemetry.span_end
    ~args:[ ("iterations", Telemetry.A_int !iterations) ]
    ~cat:"eval" "eval.run" t_eval;
  { relations = fulls; iterations = !iterations; profile }
