(* The one place in lib/datalog allowed to touch [Atomic.*]: the linter's
   atomic-confinement rule (lib/lint, R1) whitelists exactly this file.
   Everything the engine needs from atomics is one of two disciplined
   shapes — a monotonic counter, or the packed reader/writer phase word —
   so those are the only two abstractions exported. *)

module Counter = struct
  type t = int Atomic.t

  let make n = Atomic.make n
  let get c = Atomic.get c
  let set c n = Atomic.set c n
  let incr c = Atomic.incr c
  let add c n = ignore (Atomic.fetch_and_add c n : int)
end

module Phase_latch = struct
  (* Readers and writers counted in one atomic word: writers in the low
     20 bits, readers above — so an overlap check is a single atomic
     read-modify-write with no window. *)
  type t = int Atomic.t
  type phase = Read | Write

  let writer_bit = 1
  let reader_bit = 1 lsl 20
  let bit = function Write -> writer_bit | Read -> reader_bit

  (* Write conflicts with any open reader (the high bits), Read with any
     open writer (the low bits). *)
  let conflict_mask = function
    | Write -> -1 lxor (reader_bit - 1)
    | Read -> reader_bit - 1

  let make () = Atomic.make 0

  let try_enter t phase =
    let b = bit phase in
    let s = Atomic.fetch_and_add t b in
    if s land conflict_mask phase <> 0 then begin
      (* roll the optimistic increment back before reporting the clash *)
      ignore (Atomic.fetch_and_add t (-b) : int);
      false
    end
    else true

  let leave t phase = ignore (Atomic.fetch_and_add t (- bit phase) : int)
end
