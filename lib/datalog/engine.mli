(** Top-level Datalog engine facade: compile once, load facts, evaluate,
    inspect results.

    {[
      let program = Parser.parse_string "..." in
      let engine = Engine.create ~kind:Storage.Btree program in
      Engine.add_fact engine "edge" [| 1; 2 |];
      Pool.with_pool 8 (fun pool -> Engine.run engine pool);
      Printf.printf "paths: %d\n" (Engine.relation_size engine "path")
    ]} *)

type t

val create :
  ?kind:Storage.kind ->
  ?instrument:bool ->
  ?profile:bool ->
  ?check_phases:bool ->
  Ast.program ->
  t
(** Compiles the program (resolution, safety checks, stratification, join
    planning).  [kind] selects the relation storage (default [Btree]);
    [instrument] enables the Table 2 operation counters; [profile] records
    per-rule evaluation times; [check_phases] asserts the two-phase access
    discipline on every index during evaluation (all default [false]).
    @raise Plan.Compile_error / @raise Stratify.Not_stratifiable *)

val add_fact : t -> string -> int array -> unit
(** Queue an input tuple; must be called before {!run}.
    @raise Invalid_argument on unknown predicate, wrong arity, or after run. *)

val add_facts : t -> string -> int array list -> unit
(** Queue a batch of tuples at once; like {!add_fact_run} on the list
    converted to an array. *)

val add_fact_run : t -> string -> int array array -> unit
(** Queue a whole run of tuples in one chunk.  Chunks bypass the per-fact
    queue: at {!run} they are blitted directly into the per-predicate fact
    group that feeds the batch write path ({!Relation.merge_batch}), so bulk
    loaders ({!Dl_io}) avoid per-tuple queuing entirely.  The array is
    retained until {!run}; callers must not mutate it (or its tuples)
    afterwards.
    @raise Invalid_argument on unknown predicate, wrong arity, or after
    run. *)

val intern : t -> string -> int
(** Intern a symbol, for building facts that mix numbers and symbols. *)

val symbol_name : t -> int -> string option

val run : t -> Pool.t -> unit
(** Evaluate to fixed point.  May be called once.
    @raise Invalid_argument on repeated calls. *)

val has_run : t -> bool

val relation : t -> string -> Relation.t
(** The evaluated relation itself (after {!run}), for phase-typed access:
    open {!Relation.begin_read} handles to serve concurrent queries over
    the fixed point — the query server's reader phases go through here.
    @raise Invalid_argument on unknown relation or before run. *)

val relation_size : t -> string -> int
val iter_relation : t -> string -> (int array -> unit) -> unit
val relation_list : t -> string -> int array list
(** Sorted in the relation's natural order (storage-dependent for hash
    kinds). *)

val output_relations : t -> string list
val input_relations : t -> string list
val relations : t -> string list

val relation_arity : t -> string -> int
(** @raise Invalid_argument on unknown relation. *)

val iterations : t -> int
(** Fixed-point rounds performed (after {!run}). *)

val stats : t -> Dl_stats.snapshot option
(** Operation counters, when created with [~instrument:true]. *)

val hint_rate : t -> float option
(** Fraction of hinted operations that hit across all relations (after
    {!run}); [None] when the storage kind has no hints.  Reproduces the
    section 4.3 hint hit-rate statistics. *)

val tree_shapes : t -> (string * Tree_shape.t) list
(** Structural report of every non-empty B-tree-backed relation, keyed by
    relation name (after {!run}); empty for non-B-tree storage kinds. *)

val hint_run_hist : t -> int array option
(** Hint-locality distribution (log2-bucketed hit-run lengths) summed over
    every cursor of every relation; [None] for unhinted storage kinds. *)

val rule_profile : t -> Eval.rule_profile list
(** Per rule-version cumulative evaluation times, hottest first (after
    {!run}); empty unless created with [~profile:true]. *)

val kind : t -> Storage.kind
