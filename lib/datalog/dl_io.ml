exception
  Parse_error of {
    file : string option;
    line : int;
    relation : string;
    message : string;
  }

let () =
  Printexc.register_printer (function
    | Parse_error { file; line; relation; message } ->
      Some
        (Printf.sprintf "Dl_io.Parse_error(%s:%d, relation %s: %s)"
           (match file with Some f -> f | None -> "<channel>")
           line relation message)
    | _ -> None)

let parse_field engine s =
  match int_of_string_opt s with
  | Some n -> n
  | None -> Engine.intern engine s

(* Parsed tuples are accumulated into fixed-size shards and handed to the
   engine one chunk at a time ([Engine.add_fact_run]); at [Engine.run] each
   relation's chunks are regrouped and pushed through the batch write path,
   which sorts them per index and merges in parallel across domains.  The
   shard size bounds loader memory spikes without defeating the batching. *)
let chunk_size = 1 lsl 16

let load_facts_channel ?(lenient = false) ?file engine ~relation ic =
  let arity = Engine.relation_arity engine relation in
  let count = ref 0 in
  let line_no = ref 0 in
  let chunk = Array.make chunk_size [||] in
  let filled = ref 0 in
  let flush () =
    if !filled > 0 then begin
      Engine.add_fact_run engine relation (Array.sub chunk 0 !filled);
      filled := 0
    end
  in
  let malformed message =
    if lenient then
      (* skip-and-count: a corrupt line must not silently shrink a dataset,
         so every skip is visible in --stats / --metrics *)
      Telemetry.bump Telemetry.Counter.Io_malformed_lines
    else raise (Parse_error { file; line = !line_no; relation; message })
  in
  (try
     while true do
       let line = input_line ic in
       incr line_no;
       (* chaos: lose the tail of the line, as a torn write or short read
          would — the loader must surface it, not load a partial tuple *)
       let line =
         if Chaos.fire Chaos.Point.Io_read_truncate then
           String.sub line 0 (String.length line / 2)
         else line
       in
       if String.trim line <> "" then begin
         let fields = String.split_on_char '\t' line in
         let nfields = List.length fields in
         if nfields <> arity then
           malformed
             (Printf.sprintf "%d fields, expected %d" nfields arity)
         else begin
           let tup = Array.of_list (List.map (parse_field engine) fields) in
           if !filled = chunk_size then flush ();
           chunk.(!filled) <- tup;
           incr filled;
           incr count
         end
       end
     done
   with End_of_file -> ());
  flush ();
  !count

let load_facts_file ?lenient engine ~relation path =
  let ic = open_in path in
  match load_facts_channel ?lenient ~file:path engine ~relation ic with
  | n ->
    close_in ic;
    n
  | exception e ->
    close_in ic;
    raise e

let load_facts_dir ?lenient engine dir =
  List.filter_map
    (fun relation ->
      let path = Filename.concat dir (relation ^ ".facts") in
      if Sys.file_exists path then
        Some (relation, load_facts_file ?lenient engine ~relation path)
      else None)
    (Engine.input_relations engine)

let write_relation engine ~relation path =
  let oc = open_out path in
  let count = ref 0 in
  (try
     Engine.iter_relation engine relation (fun tup ->
         incr count;
         output_string oc
           (String.concat "\t" (Array.to_list (Array.map string_of_int tup)));
         output_char oc '\n')
   with e ->
     close_out oc;
     raise e);
  close_out oc;
  !count

let write_outputs engine ~dir =
  List.map
    (fun relation ->
      let path = Filename.concat dir (relation ^ ".csv") in
      (relation, write_relation engine ~relation path))
    (Engine.output_relations engine)
