type kind = Btree | Btree_nohints | Rbtree | Hashset | Bplus | Tbb_hash

let all_kinds = [ Btree; Btree_nohints; Rbtree; Hashset; Bplus; Tbb_hash ]

(* Key module comparing int-array tuples in [cols]-major order, remaining
   columns in ascending position order.  The comparator is specialised for
   the common arities: without cross-module inlining every K.compare call is
   indirect, so shaving the permutation-array loop measurably speeds up all
   tree-backed indexes. *)
let ordered_key ~arity ~(cols : int array) : (module Key.ORDERED with type t = int array) =
  let in_cols = Array.make arity false in
  Array.iter (fun c -> in_cols.(c) <- true) cols;
  let rest = ref [] in
  for p = arity - 1 downto 0 do
    if not in_cols.(p) then rest := p :: !rest
  done;
  let order = Array.append cols (Array.of_list !rest) in
  let cmp2 p0 p1 a b =
    let x = Array.unsafe_get a p0 and y = Array.unsafe_get b p0 in
    if x < y then -1
    else if x > y then 1
    else
      let x = Array.unsafe_get a p1 and y = Array.unsafe_get b p1 in
      if x < y then -1 else if x > y then 1 else 0
  in
  let cmp3 p0 p1 p2 a b =
    let x = Array.unsafe_get a p0 and y = Array.unsafe_get b p0 in
    if x < y then -1
    else if x > y then 1
    else
      let x = Array.unsafe_get a p1 and y = Array.unsafe_get b p1 in
      if x < y then -1
      else if x > y then 1
      else
        let x = Array.unsafe_get a p2 and y = Array.unsafe_get b p2 in
        if x < y then -1 else if x > y then 1 else 0
  in
  let generic a b =
    let n = Array.length order in
    let rec go i =
      if i = n then 0
      else
        let p = Array.unsafe_get order i in
        let x = Array.unsafe_get a p and y = Array.unsafe_get b p in
        if x < y then -1 else if x > y then 1 else go (i + 1)
    in
    go 0
  in
  let compare =
    match order with
    | [| p0 |] ->
      fun a b ->
        let x = Array.unsafe_get a p0 and y = Array.unsafe_get b p0 in
        Int.compare x y
    | [| p0; p1 |] -> cmp2 p0 p1
    | [| p0; p1; p2 |] -> cmp3 p0 p1 p2
    | _ -> generic
  in
  (module struct
    type t = int array

    let compare = compare
    let dummy = [||]
    let to_string = Key.Int_array.to_string
  end)

let matches ~cols bound (tuple : int array) =
  let n = Array.length cols in
  let rec go i =
    i = n || (tuple.(cols.(i)) = bound.(i) && go (i + 1))
  in
  go 0

module Index = struct
  type cursor = {
    c_insert : int array -> bool;
    c_mem : int array -> bool;
    c_scan : cols:int array -> int array -> (int array -> unit) -> unit;
  }

  type t = {
    i_insert : int array -> bool;
    i_insert_batch : int array array -> int;
        (* sorted run in the index's own order; returns fresh count *)
    i_merge : Pool.t option -> int array array -> int;
        (* unsorted tuples: sort a private copy in index order, then batch
           insert — partitioned across the pool for concurrent kinds *)
    i_mem : int array -> bool;
    i_iter : (int array -> unit) -> unit;
    i_cardinal : unit -> int;
    i_is_empty : unit -> bool;
    i_cursor : unit -> cursor;
    i_hint_counters : unit -> (int * int) option;
    i_shape : unit -> Tree_shape.t option; (* B-tree kinds only *)
    i_hint_runs : unit -> int array option; (* hinted B-tree kinds only *)
  }

  (* Below this many tuples a parallel merge costs more in pool fork-join
     than the insert work it spreads. *)
  let merge_parallel_cutoff = 1024

  (* [tuples] itself when already non-decreasing in [compare]'s order (the
     common case for loader shards and pre-sorted deltas — one linear scan
     beats a redundant heapsort), else a sorted private copy. *)
  let sorted_run ~compare tuples =
    let n = Array.length tuples in
    let i = ref 1 in
    while !i < n && compare tuples.(!i - 1) tuples.(!i) <= 0 do incr i done;
    if !i >= n then tuples
    else begin
      let run = Array.copy tuples in
      Array.sort compare run;
      run
    end

  (* Serial fallback shared by the kinds without a native batch path: sort
     in the structure's own order, then loop. *)
  let sort_and_count ~compare ~insert tuples =
    let run = sorted_run ~compare tuples in
    let fresh = ref 0 in
    Array.iter (fun tup -> if insert tup then incr fresh) run;
    !fresh

  (* element-wise sum of equal-length hint-run histograms *)
  let merge_runs a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some a, Some b -> Some (Array.mapi (fun i v -> v + b.(i)) a)

  let count c = Sync.Counter.incr c

  let count_scan stats ncols =
    match stats with
    | Some s when ncols > 0 ->
      count s.Dl_stats.lower_bounds;
      count s.Dl_stats.upper_bounds
    | _ -> ()

  let count_mem stats =
    match stats with Some s -> count s.Dl_stats.mem_tests | None -> ()

  (* ---------------- ordered kinds ---------------- *)

  let full_order ~arity ~cols =
    let in_cols = Array.make (max 1 arity) false in
    Array.iter (fun c -> in_cols.(c) <- true) cols;
    let rest = ref [] in
    for p = arity - 1 downto 0 do
      if not in_cols.(p) then rest := p :: !rest
    done;
    Array.append cols (Array.of_list !rest)

  (* extend a (possibly partial) shared order to a total column order *)
  let extend_order ~arity order =
    let present = Array.make (max 1 arity) false in
    Array.iter (fun c -> present.(c) <- true) order;
    let rest = ref [] in
    for p = arity - 1 downto 0 do
      if not present.(p) then rest := p :: !rest
    done;
    Array.append order (Array.of_list !rest)

  let make_btree ~hints ~arity ~cols ~order ~stats =
    (* specialized tuple tree: inlined comparator; the comparison order is
       either cols-major or an explicit shared-chain order *)
    let order =
      match order with
      | Some o -> extend_order ~arity o
      | None -> full_order ~arity ~cols
    in
    let tree = Btree_tuples.create ~arity ~order () in
    (* the hints of every session ever handed to a cursor, for hit-rate
       reporting *)
    let hint_registry = ref [] in
    let registry_lock = Olock.Spin.create () in
    let scan sess scratch ~cols bound f =
      count_scan stats (Array.length cols);
      if Array.length cols = 0 then Btree_tuples.iter f tree
      else begin
        Array.fill scratch 0 arity min_int;
        Array.iteri (fun i c -> scratch.(c) <- bound.(i)) cols;
        let keep tup =
          if matches ~cols bound tup then begin
            f tup;
            true
          end
          else false
        in
        match sess with
        | Some s -> Btree_tuples.s_iter_from keep s scratch
        | None -> Btree_tuples.iter_from keep tree scratch
      end
    in
    let cursor () =
      (* each cursor is a per-domain access handle, so it owns a session
         (the hinted path); the no-hints ablation kind uses the raw
         unhinted operations instead *)
      let sess = if hints then Some (Btree_tuples.session tree) else None in
      (match sess with
      | Some s ->
        Olock.Spin.with_lock registry_lock (fun () ->
            hint_registry := Btree_tuples.s_hints s :: !hint_registry)
      | None -> ());
      let scratch = Array.make (max 1 arity) 0 in
      {
        c_insert =
          (fun tup ->
            match sess with
            | Some s -> Btree_tuples.s_insert s tup
            | None -> Btree_tuples.insert tree tup);
        c_mem =
          (fun tup ->
            count_mem stats;
            match sess with
            | Some s -> Btree_tuples.s_mem s tup
            | None -> Btree_tuples.mem tree tup);
        c_scan = (fun ~cols bound f -> scan sess scratch ~cols bound f);
      }
    in
    (* Parallel structural merge (delta -> full): sort the incoming tuples
       in this index's order, partition the run by the full tree's internal
       separators so every partition descends into a disjoint region, and
       batch-insert the partitions on the pool with per-partition hints. *)
    let merge pool tuples =
      let n = Array.length tuples in
      if n = 0 then 0
      else begin
        let cmp = Btree_tuples.compare_tuples tree in
        let run = sorted_run ~compare:cmp tuples in
        match pool with
        | Some p when Pool.size p > 1 && n >= merge_parallel_cutoff ->
          let seps =
            Btree_tuples.separators tree ~limit:((Pool.size p * 4) - 1)
          in
          let nseps = Array.length seps in
          let bounds = Array.make (nseps + 2) 0 in
          bounds.(nseps + 1) <- n;
          for s = 0 to nseps - 1 do
            (* first run index >= seps.(s); searches start at the previous
               boundary, so the bounds stay non-decreasing *)
            let lo = ref bounds.(s) and hi = ref n in
            while !lo < !hi do
              let mid = (!lo + !hi) / 2 in
              if cmp run.(mid) seps.(s) < 0 then lo := mid + 1 else hi := mid
            done;
            bounds.(s + 1) <- !lo
          done;
          let fresh = Sync.Counter.make 0 in
          (* one session per worker, reused across every partition the
             worker steals (chunk 1: partitions are coarse units already) *)
          let wsess =
            Array.init (Pool.size p) (fun _ -> Btree_tuples.session tree)
          in
          Pool.parallel_for_workers ~label:"merge" ~chunk:1 p 0 (nseps + 1)
            (fun w part ->
              let lo = bounds.(part) and hi = bounds.(part + 1) in
              if hi > lo then begin
                let f =
                  Btree_tuples.s_insert_batch ~pos:lo ~len:(hi - lo)
                    wsess.(w) run
                in
                Sync.Counter.add fresh f
              end);
          Sync.Counter.get fresh
        | _ -> Btree_tuples.insert_batch tree run
      end
    in
    {
      i_insert = (fun tup -> Btree_tuples.insert tree tup);
      i_insert_batch = (fun run -> Btree_tuples.insert_batch tree run);
      i_merge = merge;
      i_mem = (fun tup -> Btree_tuples.mem tree tup);
      i_iter = (fun f -> Btree_tuples.iter f tree);
      i_cardinal = (fun () -> Btree_tuples.cardinal tree);
      i_is_empty = (fun () -> Btree_tuples.is_empty tree);
      i_cursor = cursor;
      i_hint_counters =
        (fun () ->
          if not hints then None
          else
            Some
              (List.fold_left
                 (fun (h, m) hr ->
                   let h', m' = Btree_tuples.hint_counters hr in
                   (h + h', m + m'))
                 (0, 0) !hint_registry));
      i_shape = (fun () -> Some (Btree_tuples.shape tree));
      i_hint_runs =
        (fun () ->
          if not hints then None
          else
            List.fold_left
              (fun acc hr -> merge_runs acc (Some (Btree_tuples.hint_run_hist hr)))
              None !hint_registry);
    }

  let make_rbtree ~arity ~cols ~order ~stats =
    let module K = (val ordered_key ~arity ~cols:(match order with Some o -> o | None -> cols)) in
    let module T = Rbtree.Make (K) in
    let tree = T.create () in
    let scan scratch ~cols bound f =
      count_scan stats (Array.length cols);
      if Array.length cols = 0 then T.iter f tree
      else begin
        Array.fill scratch 0 arity min_int;
        Array.iteri (fun i c -> scratch.(c) <- bound.(i)) cols;
        T.iter_from
          (fun tup ->
            if matches ~cols bound tup then begin
              f tup;
              true
            end
            else false)
          tree scratch
      end
    in
    let cursor () =
      let scratch = Array.make (max 1 arity) 0 in
      {
        c_insert = (fun tup -> T.insert tree tup);
        c_mem =
          (fun tup ->
            count_mem stats;
            T.mem tree tup);
        c_scan = scan scratch;
      }
    in
    {
      i_insert = (fun tup -> T.insert tree tup);
      i_insert_batch = (fun run -> T.insert_batch tree run);
      i_merge =
        (fun _pool tuples ->
          (* not thread-safe: always a serial sorted loop *)
          sort_and_count ~compare:K.compare ~insert:(T.insert tree) tuples);
      i_mem = (fun tup -> T.mem tree tup);
      i_iter = (fun f -> T.iter f tree);
      i_cardinal = (fun () -> T.cardinal tree);
      i_is_empty = (fun () -> T.is_empty tree);
      i_cursor = cursor;
      i_hint_counters = (fun () -> None);
      i_shape = (fun () -> None);
      i_hint_runs = (fun () -> None);
    }

  let make_bplus ~arity ~cols ~order ~stats =
    let module K = (val ordered_key ~arity ~cols:(match order with Some o -> o | None -> cols)) in
    let module T = Bplus_tree.Make (K) in
    let tree = T.create () in
    let scan scratch ~cols bound f =
      count_scan stats (Array.length cols);
      if Array.length cols = 0 then T.iter f tree
      else begin
        Array.fill scratch 0 arity min_int;
        Array.iteri (fun i c -> scratch.(c) <- bound.(i)) cols;
        T.iter_from
          (fun tup ->
            if matches ~cols bound tup then begin
              f tup;
              true
            end
            else false)
          tree scratch
      end
    in
    let cursor () =
      let scratch = Array.make (max 1 arity) 0 in
      {
        c_insert = (fun tup -> T.insert tree tup);
        c_mem =
          (fun tup ->
            count_mem stats;
            T.mem tree tup);
        c_scan = scan scratch;
      }
    in
    {
      i_insert = (fun tup -> T.insert tree tup);
      i_insert_batch = (fun run -> T.insert_batch tree run);
      i_merge =
        (fun _pool tuples ->
          sort_and_count ~compare:K.compare ~insert:(T.insert tree) tuples);
      i_mem = (fun tup -> T.mem tree tup);
      i_iter = (fun f -> T.iter f tree);
      i_cardinal = (fun () -> T.cardinal tree);
      i_is_empty = (fun () -> T.is_empty tree);
      i_cursor = cursor;
      i_hint_counters = (fun () -> None);
      i_shape = (fun () -> None);
      i_hint_runs = (fun () -> None);
    }

  (* ---------------- hash kinds ---------------- *)

  module Tuple_hashed = struct
    type t = int array

    let equal = Key.Int_array.equal
    let hash = Key.Int_array.hash
  end

  module Tuple_tbl = Hashtbl.Make (Tuple_hashed)

  (* sequential hash index: primary = hash set of tuples; secondary = hash
     multimap from bound values to tuples *)
  let make_hashset ~arity:_ ~cols ~stats =
    let ncols = Array.length cols in
    if ncols = 0 then begin
      let module H = Hashset.Make (Key.Int_array) in
      let set = H.create () in
      let cursor () =
        {
          c_insert = (fun tup -> H.insert set tup);
          c_mem =
            (fun tup ->
              count_mem stats;
              H.mem set tup);
          c_scan =
            (fun ~cols:_ _bound f ->
              count_scan stats ncols;
              H.iter f set);
        }
      in
      {
        i_insert = (fun tup -> H.insert set tup);
        i_insert_batch =
          (fun run ->
            let fresh = ref 0 in
            Array.iter (fun tup -> if H.insert set tup then incr fresh) run;
            !fresh);
        i_merge =
          (fun _pool tuples ->
            let fresh = ref 0 in
            Array.iter (fun tup -> if H.insert set tup then incr fresh) tuples;
            !fresh);
        i_mem = (fun tup -> H.mem set tup);
        i_iter = (fun f -> H.iter f set);
        i_cardinal = (fun () -> H.cardinal set);
        i_is_empty = (fun () -> H.cardinal set = 0);
        i_cursor = cursor;
        i_hint_counters = (fun () -> None);
      i_shape = (fun () -> None);
      i_hint_runs = (fun () -> None);
      }
    end
    else begin
      let tbl : int array list ref Tuple_tbl.t = Tuple_tbl.create 1024 in
      let key_of tup = Array.map (fun c -> tup.(c)) cols in
      let insert tup =
        let k = key_of tup in
        (match Tuple_tbl.find_opt tbl k with
        | Some bucket -> bucket := tup :: !bucket
        | None -> Tuple_tbl.add tbl k (ref [ tup ]));
        true
      in
      let scan ~cols:_ bound f =
        count_scan stats ncols;
        match Tuple_tbl.find_opt tbl bound with
        | Some bucket -> List.iter f !bucket
        | None -> ()
      in
      let iter f = Tuple_tbl.iter (fun _ bucket -> List.iter f !bucket) tbl in
      let cursor () =
        {
          c_insert = insert;
          c_mem =
            (fun tup ->
              count_mem stats;
              match Tuple_tbl.find_opt tbl (key_of tup) with
              | Some bucket -> List.exists (Key.Int_array.equal tup) !bucket
              | None -> false);
          c_scan = scan;
        }
      in
      let insert_many run =
        (* multimap: every insert lands, so freshness is the tuple count *)
        Array.iter (fun tup -> ignore (insert tup : bool)) run;
        Array.length run
      in
      {
        i_insert = insert;
        i_insert_batch = insert_many;
        i_merge = (fun _pool tuples -> insert_many tuples);
        i_mem =
          (fun tup ->
            match Tuple_tbl.find_opt tbl (key_of tup) with
            | Some bucket -> List.exists (Key.Int_array.equal tup) !bucket
            | None -> false);
        i_iter = iter;
        i_cardinal =
          (fun () -> Tuple_tbl.fold (fun _ b acc -> acc + List.length !b) tbl 0);
        i_is_empty = (fun () -> Tuple_tbl.length tbl = 0);
        i_cursor = cursor;
        i_hint_counters = (fun () -> None);
      i_shape = (fun () -> None);
      i_hint_runs = (fun () -> None);
      }
    end

  (* concurrent hash index: primary = lock-striped hash set; secondary =
     lock-striped hash multimap *)
  let make_tbb ~arity:_ ~cols ~stats =
    let ncols = Array.length cols in
    if ncols = 0 then begin
      let module H = Concurrent_hashset.Make (Key.Int_array) in
      let set = H.create () in
      let cursor () =
        {
          c_insert = (fun tup -> H.insert set tup);
          c_mem =
            (fun tup ->
              count_mem stats;
              H.mem set tup);
          c_scan =
            (fun ~cols:_ _bound f ->
              count_scan stats ncols;
              H.iter f set);
        }
      in
      let merge pool tuples =
        let n = Array.length tuples in
        match pool with
        | Some p when Pool.size p > 1 && n >= merge_parallel_cutoff ->
          (* inserts are thread-safe; no order to exploit, just spread *)
          let fresh = Sync.Counter.make 0 in
          Pool.parallel_for_ranges ~label:"merge" p 0 n (fun _w lo hi ->
              let f = ref 0 in
              for i = lo to hi - 1 do
                if H.insert set tuples.(i) then incr f
              done;
              Sync.Counter.add fresh !f);
          Sync.Counter.get fresh
        | _ ->
          let fresh = ref 0 in
          Array.iter (fun tup -> if H.insert set tup then incr fresh) tuples;
          !fresh
      in
      {
        i_insert = (fun tup -> H.insert set tup);
        i_insert_batch =
          (fun run ->
            let fresh = ref 0 in
            Array.iter (fun tup -> if H.insert set tup then incr fresh) run;
            !fresh);
        i_merge = merge;
        i_mem = (fun tup -> H.mem set tup);
        i_iter = (fun f -> H.iter f set);
        i_cardinal = (fun () -> H.cardinal set);
        i_is_empty = (fun () -> H.cardinal set = 0);
        i_cursor = cursor;
        i_hint_counters = (fun () -> None);
      i_shape = (fun () -> None);
      i_hint_runs = (fun () -> None);
      }
    end
    else begin
      let nstripes = 64 in
      let stripes =
        Array.init nstripes (fun _ ->
            (Olock.Spin.create (), Tuple_tbl.create 64))
      in
      let key_of tup = Array.map (fun c -> tup.(c)) cols in
      let stripe_of k = Tuple_hashed.hash k land (nstripes - 1) in
      let insert tup =
        let k = key_of tup in
        let lock, tbl = stripes.(stripe_of k) in
        Olock.Spin.with_lock lock (fun () ->
            match Tuple_tbl.find_opt tbl k with
            | Some bucket -> bucket := tup :: !bucket
            | None -> Tuple_tbl.add tbl k (ref [ tup ]));
        true
      in
      let scan ~cols:_ bound f =
        count_scan stats ncols;
        let _, tbl = stripes.(stripe_of bound) in
        match Tuple_tbl.find_opt tbl bound with
        | Some bucket -> List.iter f !bucket
        | None -> ()
      in
      let mem tup =
        let k = key_of tup in
        let _, tbl = stripes.(stripe_of k) in
        match Tuple_tbl.find_opt tbl k with
        | Some bucket -> List.exists (Key.Int_array.equal tup) !bucket
        | None -> false
      in
      let iter f =
        Array.iter
          (fun (_, tbl) -> Tuple_tbl.iter (fun _ b -> List.iter f !b) tbl)
          stripes
      in
      let cursor () =
        {
          c_insert = insert;
          c_mem =
            (fun tup ->
              count_mem stats;
              mem tup);
          c_scan = scan;
        }
      in
      let insert_many run =
        Array.iter (fun tup -> ignore (insert tup : bool)) run;
        Array.length run
      in
      let merge pool tuples =
        let n = Array.length tuples in
        match pool with
        | Some p when Pool.size p > 1 && n >= merge_parallel_cutoff ->
          Pool.parallel_for_ranges ~label:"merge" p 0 n (fun _w lo hi ->
              for i = lo to hi - 1 do
                ignore (insert tuples.(i) : bool)
              done);
          n
        | _ -> insert_many tuples
      in
      {
        i_insert = insert;
        i_insert_batch = insert_many;
        i_merge = merge;
        i_mem = mem;
        i_iter = iter;
        i_cardinal =
          (fun () ->
            Array.fold_left
              (fun acc (_, tbl) ->
                Tuple_tbl.fold (fun _ b acc -> acc + List.length !b) tbl acc)
              0 stripes);
        i_is_empty =
          (fun () ->
            Array.for_all (fun (_, tbl) -> Tuple_tbl.length tbl = 0) stripes);
        i_cursor = cursor;
        i_hint_counters = (fun () -> None);
      i_shape = (fun () -> None);
      i_hint_runs = (fun () -> None);
      }
    end

  (* ---------------- backend dispatch table ---------------- *)

  (* One first-class module per storage kind: its naming, concurrency
     capabilities, and index factory.  Every per-kind decision in the
     storage layer and above (naming, write locking, index sharing, index
     construction) routes through this table instead of scattered
     matches. *)
  module type BACKEND = sig
    val kind : kind

    val name : string
    (** Display name, as used in the paper's figures. *)

    val aliases : string list
    (** Lower-case spellings accepted by {!kind_of_name} (including the
        display name). *)

    val thread_safe_insert : bool
    val shares_indexes : bool

    val make :
      arity:int ->
      cols:int array ->
      order:int array option ->
      stats:Dl_stats.t option ->
      t
  end

  let backends : (module BACKEND) list =
    [
      (module struct
        let kind = Btree
        let name = "btree"
        let aliases = [ "btree" ]
        let thread_safe_insert = true
        let shares_indexes = true
        let make = make_btree ~hints:true
      end);
      (module struct
        let kind = Btree_nohints
        let name = "btree (n/h)"
        let aliases = [ "btree-nohints"; "btree (n/h)"; "btree_nohints" ]
        let thread_safe_insert = true
        let shares_indexes = true
        let make = make_btree ~hints:false
      end);
      (module struct
        let kind = Rbtree
        let name = "rbtset"
        let aliases = [ "rbtree"; "rbtset" ]
        let thread_safe_insert = false
        let shares_indexes = true
        let make = make_rbtree
      end);
      (module struct
        let kind = Hashset
        let name = "hashset"
        let aliases = [ "hashset" ]
        let thread_safe_insert = false
        let shares_indexes = false
        let make ~arity ~cols ~order:_ ~stats = make_hashset ~arity ~cols ~stats
      end);
      (module struct
        let kind = Bplus
        let name = "google btree"
        let aliases = [ "bplus"; "google"; "google btree" ]
        let thread_safe_insert = false
        let shares_indexes = true
        let make = make_bplus
      end);
      (module struct
        let kind = Tbb_hash
        let name = "tbb hashset"
        let aliases = [ "tbb"; "tbb hashset"; "tbb_hash" ]
        let thread_safe_insert = true
        let shares_indexes = false
        let make ~arity ~cols ~order:_ ~stats = make_tbb ~arity ~cols ~stats
      end);
    ]

  let backend k =
    List.find (fun (module B : BACKEND) -> B.kind = k) backends

  let create kind ~arity ~cols ?order ~stats () =
    (match cols with
    | [||] -> ()
    | _ ->
      let ok = ref true in
      for i = 1 to Array.length cols - 1 do
        if cols.(i - 1) >= cols.(i) then ok := false
      done;
      Array.iter (fun c -> if c < 0 || c >= arity then ok := false) cols;
      if not !ok then invalid_arg "Storage.Index.create: bad signature");
    (match order with
    | None -> ()
    | Some o ->
      let seen = Array.make (max 1 arity) false in
      Array.iter
        (fun c ->
          if c < 0 || c >= arity || seen.(c) then
            invalid_arg "Storage.Index.create: bad order";
          seen.(c) <- true)
        o;
      (* cols must be a prefix set of the order *)
      let prefix = Array.sub o 0 (min (Array.length o) (Array.length cols)) in
      let sp = List.sort Int.compare (Array.to_list prefix) in
      if Array.length cols > Array.length o || sp <> Array.to_list cols then
        invalid_arg "Storage.Index.create: cols not a prefix set of order");
    let (module B) = backend kind in
    B.make ~arity ~cols ~order ~stats

  let hint_counters t = t.i_hint_counters ()
  let shape t = t.i_shape ()
  let hint_runs t = t.i_hint_runs ()
  let is_empty t = t.i_is_empty ()
  exception Phase_violation of string

  (* Readers and writers counted in one latch word (see
     [Sync.Phase_latch]) — the read+write overlap check is a single
     atomic read-modify-write with no window. *)
  let with_phase_check ~name t =
    let latch = Sync.Phase_latch.make () in
    let enter phase what =
      if not (Sync.Phase_latch.try_enter latch phase) then
        raise
          (Phase_violation
             (Printf.sprintf "%s: concurrent %s during the opposite phase"
                name what))
    in
    let as_reader f =
      enter Sync.Phase_latch.Read "read";
      match f () with
      | r ->
        Sync.Phase_latch.leave latch Sync.Phase_latch.Read;
        r
      | exception e ->
        Sync.Phase_latch.leave latch Sync.Phase_latch.Read;
        raise e
    in
    let as_writer f =
      enter Sync.Phase_latch.Write "write";
      match f () with
      | r ->
        Sync.Phase_latch.leave latch Sync.Phase_latch.Write;
        r
      | exception e ->
        Sync.Phase_latch.leave latch Sync.Phase_latch.Write;
        raise e
    in
    let wrap_cursor c =
      {
        c_insert = (fun tup -> as_writer (fun () -> c.c_insert tup));
        c_mem = (fun tup -> as_reader (fun () -> c.c_mem tup));
        c_scan = (fun ~cols bound f -> as_reader (fun () -> c.c_scan ~cols bound f));
      }
    in
    {
      i_insert = (fun tup -> as_writer (fun () -> t.i_insert tup));
      i_insert_batch = (fun run -> as_writer (fun () -> t.i_insert_batch run));
      i_merge = (fun pool tuples -> as_writer (fun () -> t.i_merge pool tuples));
      i_mem = (fun tup -> as_reader (fun () -> t.i_mem tup));
      i_iter = (fun f -> as_reader (fun () -> t.i_iter f));
      i_cardinal = t.i_cardinal;
      i_is_empty = t.i_is_empty;
      i_cursor = (fun () -> wrap_cursor (t.i_cursor ()));
      i_hint_counters = t.i_hint_counters;
      i_shape = t.i_shape;
      i_hint_runs = t.i_hint_runs;
    }

  let insert t tup = t.i_insert tup
  let insert_batch t run = t.i_insert_batch run
  let merge ?pool t tuples = t.i_merge pool tuples
  let mem t tup = t.i_mem tup
  let iter t f = t.i_iter f
  let cardinal t = t.i_cardinal ()
  let cursor t = t.i_cursor ()
  let c_insert c tup = c.c_insert tup
  let c_mem c tup = c.c_mem tup
  let c_scan c ~cols bound f = c.c_scan ~cols bound f
end

(* Kind metadata, all answered by the backend table. *)
let kind_name k =
  let (module B : Index.BACKEND) = Index.backend k in
  B.name

let thread_safe_insert k =
  let (module B : Index.BACKEND) = Index.backend k in
  B.thread_safe_insert

let shares_indexes k =
  let (module B : Index.BACKEND) = Index.backend k in
  B.shares_indexes

let kind_of_name s =
  let s = String.lowercase_ascii (String.trim s) in
  List.find_map
    (fun (module B : Index.BACKEND) ->
      if List.mem s B.aliases then Some B.kind else None)
    Index.backends
