(** Pluggable tuple storage for Datalog relations.

    A relation is represented by one or more {e indexes}.  Every index holds
    the full tuples of its relation; an index with signature [cols] supports
    enumerating all tuples whose values at the columns [cols] equal given
    bound values (the access pattern of a join literal whose [cols] are bound
    when it executes).  The primary index (empty signature) additionally
    provides full-tuple membership, deduplicating insertion and whole-relation
    scans.

    Ordered storage kinds implement signature scans with a tree ordered by
    [cols]-major lexicographic comparison (lower_bound + in-order scan —
    exactly the paper's B-tree usage); hash-based kinds implement them with a
    hash multimap from bound values to tuples, since hashes cannot perform
    ordered range scans (footnote in DESIGN.md).

    Thread-safety contract, matching the two-phase discipline of parallel
    semi-naive evaluation: [insert] must be safe against concurrent [insert]s
    {e when the kind is flagged thread-safe}; the engine serialises inserts
    through a per-relation mutex for the other kinds (the paper's
    "global lock" configurations).  Queries are only ever concurrent with
    queries. *)

type kind =
  | Btree          (** the paper's tree, with operation hints *)
  | Btree_nohints  (** ablation: same tree, hints disabled *)
  | Rbtree         (** red-black tree — "STL rbtset" *)
  | Hashset        (** open-addressing hash — "STL hashset" *)
  | Bplus          (** sequential B+-tree — "google btree" *)
  | Tbb_hash       (** lock-striped concurrent hash — "TBB hashset" *)

val all_kinds : kind list
val kind_name : kind -> string
val kind_of_name : string -> kind option

val thread_safe_insert : kind -> bool
(** Whether [insert] may be called concurrently without external locking. *)

val shares_indexes : kind -> bool
(** Whether one physical index can serve every signature on a containment
    chain (tree kinds, via an explicit [order]); hash multimaps serve
    exactly one signature each.

    All per-kind metadata ([kind_name], {!thread_safe_insert}, this) is
    answered by one internal backend table — a first-class module per kind
    also holding its index factory — rather than per-call matches. *)

module Index : sig
  type t

  val create :
    kind ->
    arity:int ->
    cols:int array ->
    ?order:int array ->
    stats:Dl_stats.t option ->
    unit ->
    t
  (** [cols] is the signature: strictly increasing column indices, possibly
      empty (primary).  When [stats] is given, operations count into it.

      [order], accepted by the ordered (tree) kinds, overrides the index's
      comparison order with an explicit column permutation; it must contain
      [cols] within its prefix.  This is how several signatures forming a
      containment chain share one physical index ({!Index_selection}): any
      signature whose columns form a prefix set of [order] can be scanned on
      this index.  Hash kinds ignore [order] (a hash multimap serves exactly
      one signature). *)

  val insert : t -> int array -> bool
  (** Add a tuple (the array is not retained for hash kinds and retained
      as-is for tree kinds; callers must not mutate tuples after insertion).
      Returns [true] iff new.  Only meaningful as a freshness signal on the
      primary index; secondary indexes always contain exactly the tuples of
      the primary. *)

  val insert_batch : t -> int array array -> int
  (** [insert_batch t run] adds a run of tuples sorted in {e this index's}
      comparison order (non-decreasing; duplicates skipped) and returns the
      fresh-tuple count.  Tree kinds amortise one descent and one leaf
      write permit across each leaf's worth of the run
      ({!Btree_tuples.insert_batch}); hash kinds degrade to an insert loop.
      Freshness is only meaningful on the primary index.
      @raise Invalid_argument when the run is not sorted (ordered kinds). *)

  val merge : ?pool:Pool.t -> t -> int array array -> int
  (** [merge ?pool t tuples] inserts an {e unsorted} tuple array: sorts a
      private copy in the index's own order and feeds it to the batch
      path.  With a pool of more than one worker and enough tuples,
      thread-safe kinds run the merge in parallel — the B-tree kinds
      partition the run by the tree's internal separators so every
      partition descends into a disjoint subtree and batch-inserts with
      its own hints (the parallel structural merge); concurrent hash kinds
      spread a plain insert loop.  Serial for the thread-unsafe kinds.
      Returns the fresh-tuple count (primary index only). *)

  val mem : t -> int array -> bool
  val iter : t -> (int array -> unit) -> unit
  val cardinal : t -> int
  val is_empty : t -> bool
  (** O(1) (unlike [cardinal], which may enumerate). *)

  (** Per-worker access handle carrying operation hints (tree kinds) — the
      paper's thread-local hint records, created once per worker and reused
      across operations. *)
  type cursor

  val cursor : t -> cursor
  val c_insert : cursor -> int array -> bool
  val c_mem : cursor -> int array -> bool

  val c_scan : cursor -> cols:int array -> int array -> (int array -> unit) -> unit
  (** [c_scan cur ~cols bound f] calls [f] on every tuple whose columns
      [cols] equal [bound] (same length, in [cols] order).  [cols] must be
      the index's own signature for hash kinds, and any prefix set of the
      index's order for tree kinds.  With empty [cols] this is a full
      scan. *)

  val hint_counters : t -> (int * int) option
  (** [(hits, misses)] aggregated over every cursor ever created on this
      index — the paper's section 4.3 hint hit-rate statistic.  [None] for
      storage kinds without operation hints. *)

  val shape : t -> Tree_shape.t option
  (** Structural report of the underlying tree; [None] for non-B-tree
      kinds.  Quiescent use only. *)

  val hint_runs : t -> int array option
  (** Hint-locality distribution ({!Btree_tuples.hint_run_hist}) summed
      over every cursor ever created on this index; [None] for unhinted
      kinds or when no cursor was created. *)

  val merge_runs : int array option -> int array option -> int array option
  (** Element-wise sum of two optional {!hint_runs} histograms. *)

  exception Phase_violation of string

  val with_phase_check : name:string -> t -> t
  (** Debug wrapper enforcing the paper's two-phase contract: at any moment
      an index is either being read (any number of concurrent readers) or
      written (any number of concurrent inserters), never both.  Raises
      {!Phase_violation} the moment a read overlaps a write.  Used by the
      test suite to validate that parallel semi-naive evaluation respects
      the discipline the B-tree's synchronisation is specialised for. *)
end
