(** A Datalog relation: a set of fixed-arity integer tuples held in a
    primary index plus the secondary indexes the compiled rules require.

    Insertion goes to all indexes and is deduplicated by the primary; for
    storage kinds whose insert is not thread-safe a per-relation mutex
    serialises writers (the paper's "global lock" configurations).  Reads
    are never synchronised — the engine guarantees the two-phase access
    discipline. *)

type t

val create :
  ?check_phases:bool ->
  name:string ->
  arity:int ->
  kind:Storage.kind ->
  sigs:int array list ->
  stats:Dl_stats.t option ->
  unit ->
  t
(** [sigs] are the secondary-index signatures (each a strictly increasing,
    non-empty array of column indices); the primary index always exists.
    For tree-backed storage kinds, signatures forming containment chains
    share one physical index whose order serves every signature on the
    chain ({!Index_selection} — the paper's companion index-minimisation
    technique); hash kinds get one multimap per signature. *)

val index_count : t -> int
(** Number of physical secondary indexes (≤ number of signatures for tree
    kinds). *)

val name : t -> string
val arity : t -> int
val cardinal : t -> int
val is_empty : t -> bool
val iter : t -> (int array -> unit) -> unit
val mem : t -> int array -> bool

val insert : t -> int array -> bool
(** Direct insert (fact loading, merging); thread-safety per the contract
    above.  [true] iff the tuple was new. *)

val hint_counters : t -> (int * int) option
(** Aggregated (hits, misses) of every hint-carrying cursor over all of the
    relation's indexes; [None] for hint-less storage kinds. *)

val shape : t -> Tree_shape.t option
(** Structural report of the primary index's tree; [None] for non-B-tree
    storage kinds.  Quiescent use only. *)

val hint_runs : t -> int array option
(** Hint-locality distribution summed over every cursor of every index of
    the relation; [None] when the storage kind is unhinted. *)

val sig_id : t -> int array -> int
(** Index id of a signature for {!Cursor.scan}; [-1] denotes the primary.
    @raise Not_found if the signature was not declared at creation. *)

(** Per-worker access handles (hint-carrying cursors over every index). *)
module Cursor : sig
  type rel = t
  type t

  val create : rel -> t

  val insert : t -> int array -> bool
  (** Insert through this worker's hinted cursors; counts an insert attempt
      and — when fresh — a produced tuple into the stats. *)

  val mem : t -> int array -> bool
  val scan : t -> int -> int array -> (int array -> unit) -> unit
  (** [scan c sig_id bound f]: enumerate tuples matching [bound] on the
      signature [sig_id] (from {!sig_id}); [-1] scans the whole relation. *)
end
