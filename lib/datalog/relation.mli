(** A Datalog relation: a set of fixed-arity integer tuples held in a
    primary index plus the secondary indexes the compiled rules require.

    Insertion goes to all indexes and is deduplicated by the primary; for
    storage kinds whose insert is not thread-safe a per-relation mutex
    serialises writers (the paper's "global lock" configurations).  Reads
    are never synchronised — the engine guarantees the two-phase access
    discipline. *)

type t

val create :
  ?check_phases:bool ->
  name:string ->
  arity:int ->
  kind:Storage.kind ->
  sigs:int array list ->
  stats:Dl_stats.t option ->
  unit ->
  t
(** [sigs] are the secondary-index signatures (each a strictly increasing,
    non-empty array of column indices); the primary index always exists.
    For tree-backed storage kinds, signatures forming containment chains
    share one physical index whose order serves every signature on the
    chain ({!Index_selection} — the paper's companion index-minimisation
    technique); hash kinds get one multimap per signature. *)

val index_count : t -> int
(** Number of physical secondary indexes (≤ number of signatures for tree
    kinds). *)

val name : t -> string
val arity : t -> int
val cardinal : t -> int
val is_empty : t -> bool
val iter : t -> (int array -> unit) -> unit
val mem : t -> int array -> bool

val insert : t -> int array -> bool
(** Direct insert (fact loading, merging); thread-safety per the contract
    above.  [true] iff the tuple was new. *)

val merge_batch : ?pool:Pool.t -> t -> int array array -> int
(** [merge_batch ?pool t tuples] inserts an unsorted tuple array into every
    index of the relation through the batch write path
    ({!Storage.Index.merge}): for tree kinds each physical index sorts a
    private copy in its own order and bulk-inserts it, in parallel on
    [pool] (the parallel structural merge); for hash kinds — whose
    secondary multimaps do not deduplicate — inserts are gated per tuple
    on primary freshness like {!insert}, spread on [pool] when the kind
    takes concurrent inserts.  Like {!insert}, counts nothing into the
    stats — callers account freshness themselves.  Returns the number of
    tuples that were new.  Must run in a write phase: safe against
    concurrent writers, never concurrent with readers. *)

val hint_counters : t -> (int * int) option
(** Aggregated (hits, misses) of every hint-carrying cursor over all of the
    relation's indexes; [None] for hint-less storage kinds. *)

val shape : t -> Tree_shape.t option
(** Structural report of the primary index's tree; [None] for non-B-tree
    storage kinds.  Quiescent use only. *)

val hint_runs : t -> int array option
(** Hint-locality distribution summed over every cursor of every index of
    the relation; [None] when the storage kind is unhinted. *)

val sig_id : t -> int array -> int
(** Index id of a signature for {!Reader.scan}; [-1] denotes the primary.
    @raise Not_found if the signature was not declared at creation. *)

(** {1 Typed two-phase access — the public access API}

    This is the stable, documented way to read and write a relation from
    worker code; the untyped cursor that used to sit beside it is now
    internal.  In every parallel region a relation is either written or
    read, never both — the discipline parallel semi-naive evaluation
    guarantees and the B-tree's synchronisation is specialised for.  The
    typed handles make the phase explicit: a {!Writer.t} can only insert,
    a {!Reader.t} can only query.  Opening a phase while the opposite
    phase is live raises {!Storage.Index.Phase_violation} (both phases are
    counted in one atomic word, so the overlap check has no window).  Any
    number of concurrent writers — or concurrent readers — may be open at
    once; create one handle per worker (each owns its per-domain hinted
    cursors), and {!Writer.finish}/{!Reader.finish} it when the phase
    ends. *)

(** Write-phase handle: hinted inserts and batch merges only. *)
module Writer : sig
  type rel = t
  type t

  val insert : t -> int array -> bool
  (** Hinted per-tuple insert; counts an insert attempt and — when fresh —
      a produced tuple into the stats. *)

  val insert_batch : ?pool:Pool.t -> t -> int array array -> int
  (** {!merge_batch} through this writer. *)

  val finish : t -> unit
  (** Close the phase.  @raise Invalid_argument if already finished. *)
end

(** Read-phase handle: hinted membership and scans only. *)
module Reader : sig
  type rel = t
  type t

  val mem : t -> int array -> bool

  val scan : t -> int -> int array -> (int array -> unit) -> unit
  (** [scan r sig_id bound f]: enumerate tuples matching [bound] on the
      signature [sig_id] (from {!sig_id}); [-1] with an empty [bound]
      scans the whole relation. *)

  val finish : t -> unit
  (** Close the phase.  @raise Invalid_argument if already finished. *)
end

val begin_write : t -> Writer.t
(** @raise Storage.Index.Phase_violation while a read phase is open. *)

val begin_read : t -> Reader.t
(** @raise Storage.Index.Phase_violation while a write phase is open. *)
