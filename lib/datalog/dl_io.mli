(** Tab-separated fact files, Soufflé style.

    An input relation [edge] reads [<dir>/edge.facts]: one tuple per line,
    fields separated by tabs, each field either an integer or a symbol
    (interned through the engine's symbol table).  Output relations write
    [<dir>/<name>.csv] in the same format, decoding symbol ids is the
    caller's business (facts are plain integers once interned). *)

exception
  Parse_error of {
    file : string option;  (** [None] for bare-channel loads *)
    line : int;  (** 1-based line number *)
    relation : string;
    message : string;
  }
(** A corrupt, truncated or wrong-arity fact line.  Structured (rather than
    a bare [Failure]) so callers can report the exact file position and
    tooling can distinguish data corruption from programming errors. *)

val load_facts_channel :
  ?lenient:bool -> ?file:string -> Engine.t -> relation:string -> in_channel -> int
(** Queue every tuple of the channel; returns the number of tuples read.
    Tuples are accumulated into fixed-size shards queued through
    {!Engine.add_fact_run}, so at {!Engine.run} they reach the storage layer
    through the batch write path (per-index sort + parallel structural
    merge) rather than per-tuple inserts.

    With [~lenient:true] malformed lines are skipped instead of raised,
    each one counted into [Telemetry.Counter.Io_malformed_lines] (surfaced
    by [--stats] and [--metrics]); the returned count covers loaded tuples
    only.  [?file] names the source in error reports.
    @raise Parse_error on a malformed line (strict mode, the default). *)

val load_facts_file :
  ?lenient:bool -> Engine.t -> relation:string -> string -> int
(** @raise Parse_error on malformed input (strict mode)
    @raise Sys_error on IO failure. *)

val load_facts_dir : ?lenient:bool -> Engine.t -> string -> (string * int) list
(** [load_facts_dir e dir] loads [<dir>/<name>.facts] for every declared
    input relation of the program for which such a file exists; returns the
    per-relation tuple counts. *)

val write_relation : Engine.t -> relation:string -> string -> int
(** Write a relation's tuples as TSV (after {!Engine.run}); returns the
    tuple count. *)

val write_outputs : Engine.t -> dir:string -> (string * int) list
(** Write every [.output] relation to [<dir>/<name>.csv]. *)
