(** Parallel semi-naive evaluation of a compiled program.

    Stratum by stratum, the engine seeds each stratum with one naive round
    over the current relation contents, then iterates the delta variants of
    the recursive rules to the fixed point.  Rule instances are evaluated in
    parallel by partitioning the outer (delta) scan across the worker pool;
    every worker drives the storage layer through its own hint-carrying
    cursors, and produced tuples are inserted into the shared [new]
    relations concurrently — the parallelisation scheme of the paper's
    section 2. *)

type rule_profile = {
  rp_rule : string;       (** pretty-printed source rule *)
  rp_delta : bool;        (** a semi-naive delta variant? *)
  rp_evaluations : int;   (** times this version was evaluated *)
  rp_seconds : float;     (** cumulative wall time *)
}

type result = {
  relations : Relation.t array; (** final full relations, by predicate id *)
  iterations : int; (** total fixed-point rounds across all strata *)
  profile : rule_profile list;
      (** per rule-version timings, sorted by descending cumulative time;
          empty unless profiling was requested *)
}

val run :
  ?check_phases:bool ->
  ?fact_runs:(int * int array array) list ->
  Plan.t ->
  pool:Pool.t ->
  kind:Storage.kind ->
  stats:Dl_stats.t option ->
  extra_facts:(int * int array) list ->
  profile:bool ->
  result
(** [extra_facts] are programmatically added input tuples (pred id, tuple);
    they are loaded alongside the program's inline facts.  [fact_runs] are
    the same tuples in pre-chunked form (one array per loader shard, as
    produced by {!Dl_io}) — all facts of a predicate are grouped and fed
    through the batch write path ({!Relation.merge_batch}), which sorts the
    group per index and bulk-inserts it, in parallel on [pool] for large
    groups on thread-safe storage kinds.  [check_phases] wraps every index
    in {!Storage.Index.with_phase_check}, turning any violation of the
    two-phase access discipline into an exception. *)
