(** Operation counters for the engine's storage layer — the instrumentation
    behind Table 2 of the paper (inserts, membership tests, lower_bound and
    upper_bound calls per workload).

    Counters are Sync counters (atomics confined to [Sync]) so parallel runs count exactly; instrumented runs
    are kept separate from timed runs in the benchmark harness. *)

type t = {
  inserts : Sync.Counter.t;          (** insert attempts on relations *)
  mem_tests : Sync.Counter.t;        (** membership tests (dedup + negation) *)
  lower_bounds : Sync.Counter.t;     (** range-scan openings *)
  upper_bounds : Sync.Counter.t;     (** range-scan terminations *)
  input_tuples : Sync.Counter.t;     (** facts loaded *)
  produced_tuples : Sync.Counter.t;  (** distinct tuples derived by rules *)
}

val create : unit -> t
val reset : t -> unit

type snapshot = {
  s_inserts : int;
  s_mem_tests : int;
  s_lower_bounds : int;
  s_upper_bounds : int;
  s_input_tuples : int;
  s_produced_tuples : int;
}

val snapshot : t -> snapshot
val pp : Format.formatter -> snapshot -> unit
