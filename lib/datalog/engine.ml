type t = {
  symtab : Symtab.t;
  plan : Plan.t;
  kind : Storage.kind;
  stats : Dl_stats.t option;
  profile : bool;
  check_phases : bool;
  mutable extra_facts : (int * int array) list;
  mutable fact_runs : (int * int array array) list;
  mutable result : Eval.result option;
}

let create ?(kind = Storage.Btree) ?(instrument = false) ?(profile = false)
    ?(check_phases = false) program =
  let symtab = Symtab.create () in
  let plan = Plan.compile symtab program in
  {
    symtab;
    plan;
    kind;
    stats = (if instrument then Some (Dl_stats.create ()) else None);
    profile;
    check_phases;
    extra_facts = [];
    fact_runs = [];
    result = None;
  }

let pred_id_exn t name =
  match Plan.pred_id t.plan name with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Engine: unknown relation %S" name)

let add_fact t name tup =
  if t.result <> None then invalid_arg "Engine.add_fact: engine already ran";
  let p = pred_id_exn t name in
  if Array.length tup <> t.plan.Plan.arities.(p) then
    invalid_arg
      (Printf.sprintf "Engine.add_fact: %s expects arity %d, got %d" name
         t.plan.Plan.arities.(p) (Array.length tup));
  t.extra_facts <- (p, tup) :: t.extra_facts

let add_fact_run t name run =
  if t.result <> None then invalid_arg "Engine.add_fact_run: engine already ran";
  if Array.length run > 0 then begin
    let p = pred_id_exn t name in
    let arity = t.plan.Plan.arities.(p) in
    Array.iter
      (fun tup ->
        if Array.length tup <> arity then
          invalid_arg
            (Printf.sprintf "Engine.add_fact_run: %s expects arity %d, got %d"
               name arity (Array.length tup)))
      run;
    t.fact_runs <- (p, run) :: t.fact_runs
  end

let add_facts t name tups = add_fact_run t name (Array.of_list tups)
let intern t s = Symtab.intern t.symtab s

let symbol_name t id =
  match Symtab.name t.symtab id with
  | name -> Some name
  | exception Not_found -> None

let run t pool =
  if t.result <> None then invalid_arg "Engine.run: engine already ran";
  t.result <-
    Some
      (Eval.run ~check_phases:t.check_phases ~fact_runs:t.fact_runs t.plan
         ~pool ~kind:t.kind ~stats:t.stats ~extra_facts:t.extra_facts
         ~profile:t.profile);
  t.extra_facts <- [];
  t.fact_runs <- []

let has_run t = t.result <> None

let result_exn t =
  match t.result with
  | Some r -> r
  | None -> invalid_arg "Engine: call run first"

let relation t name = (result_exn t).Eval.relations.(pred_id_exn t name)

let relation_size t name =
  Relation.cardinal (result_exn t).Eval.relations.(pred_id_exn t name)

let iter_relation t name f =
  Relation.iter (result_exn t).Eval.relations.(pred_id_exn t name) f

let relation_list t name =
  let acc = ref [] in
  iter_relation t name (fun tup -> acc := tup :: !acc);
  List.rev !acc

let output_relations t =
  let out = ref [] in
  Array.iteri
    (fun p o -> if o then out := t.plan.Plan.pred_names.(p) :: !out)
    t.plan.Plan.outputs;
  List.rev !out

let input_relations t =
  let out = ref [] in
  Array.iteri
    (fun p i -> if i then out := t.plan.Plan.pred_names.(p) :: !out)
    t.plan.Plan.inputs;
  List.rev !out

let relations t = Array.to_list t.plan.Plan.pred_names
let relation_arity t name = t.plan.Plan.arities.(pred_id_exn t name)
let iterations t = (result_exn t).Eval.iterations
let hint_rate t =
  let r = result_exn t in
  let agg =
    Array.fold_left
      (fun acc rel ->
        match (acc, Relation.hint_counters rel) with
        | None, c -> c
        | Some (h, m), Some (h', m') -> Some (h + h', m + m')
        | Some _, None -> acc)
      None r.Eval.relations
  in
  match agg with
  | None -> None
  | Some (h, m) ->
    if h + m = 0 then Some 0.0
    else Some (float_of_int h /. float_of_int (h + m))

let tree_shapes t =
  let r = result_exn t in
  Array.to_list r.Eval.relations
  |> List.filter_map (fun rel ->
         match Relation.shape rel with
         | Some s when s.Tree_shape.nodes > 0 -> Some (Relation.name rel, s)
         | _ -> None)

let hint_run_hist t =
  let r = result_exn t in
  Array.fold_left
    (fun acc rel -> Storage.Index.merge_runs acc (Relation.hint_runs rel))
    None r.Eval.relations

let stats t = Option.map Dl_stats.snapshot t.stats
let rule_profile t = (result_exn t).Eval.profile
let kind t = t.kind
