(* Concurrent B+-tree with optimistic version locks (OLC).

   Fast path: optimistic descent under read leases; leaf insert by lease
   upgrade when the leaf has room.  Slow path (full leaf, or any validation
   failure): pessimistic top-down descent with write-lock coupling and
   preemptive splits — at most two nodes are write-locked at any moment and
   locks are acquired strictly top-down, so the scheme is deadlock-free and
   never needs parent pointers. *)

module Make (K : Key.ORDERED) = struct
  type key = K.t

  type node = {
    lock : Olock.t;
    keys : key array;
    mutable nkeys : int;
    children : node array; (* [||] = leaf; separator i = min of child i+1 *)
  }

  type t = {
    root_lock : Olock.t;
    mutable root : node;
    capacity : int;
  }

  let sentinel =
    { lock = Olock.create (); keys = [||]; nkeys = 0; children = [||] }

  let is_leaf n = Array.length n.children = 0

  let alloc_leaf t =
    {
      lock = Olock.create ();
      keys = Array.make t.capacity K.dummy;
      nkeys = 0;
      children = [||];
    }

  let alloc_inner t =
    {
      lock = Olock.create ();
      keys = Array.make t.capacity K.dummy;
      nkeys = 0;
      children = Array.make (t.capacity + 1) sentinel;
    }

  let create ?(node_capacity = 32) () =
    if node_capacity < 4 then
      invalid_arg "Masstree.create: node_capacity must be >= 4";
    { root_lock = Olock.create (); root = sentinel; capacity = node_capacity }

  let clamped_nkeys n =
    let k = n.nkeys in
    if k < 0 then 0
    else
      let cap = Array.length n.keys in
      if k > cap then cap else k

  (* smallest index with keys.(i) >= key *)
  let lower_idx keys n key =
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if K.compare (Array.unsafe_get keys mid) key < 0 then lo := mid + 1
      else hi := mid
    done;
    !lo

  (* smallest index with keys.(i) > key; the inner-node routing function *)
  let upper_idx keys n key =
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if K.compare (Array.unsafe_get keys mid) key <= 0 then lo := mid + 1
      else hi := mid
    done;
    !lo

  let leaf_insert leaf key =
    let i = lower_idx leaf.keys leaf.nkeys key in
    if i < leaf.nkeys && K.compare leaf.keys.(i) key = 0 then false
    else begin
      Array.blit leaf.keys i leaf.keys (i + 1) (leaf.nkeys - i);
      leaf.keys.(i) <- key;
      leaf.nkeys <- leaf.nkeys + 1;
      true
    end

  (* Split the full child at slot [ci] of the write-locked [parent]; the
     child must be write-locked too.  Returns the new right sibling, freshly
     write-locked (it is unreachable until the parent update, which we
     perform while holding the parent's lock, so the try always succeeds). *)
  let split_child t parent ci child =
    let right = if is_leaf child then alloc_leaf t else alloc_inner t in
    let got = Olock.try_start_write right.lock in
    assert got;
    let sep =
      if is_leaf child then begin
        let mid = child.nkeys / 2 in
        let rcount = child.nkeys - mid in
        Array.blit child.keys mid right.keys 0 rcount;
        right.nkeys <- rcount;
        child.nkeys <- mid;
        right.keys.(0) (* copy-up: separator = min of right leaf *)
      end
      else begin
        let mid = child.nkeys / 2 in
        let s = child.keys.(mid) in
        let rcount = child.nkeys - mid - 1 in
        Array.blit child.keys (mid + 1) right.keys 0 rcount;
        Array.blit child.children (mid + 1) right.children 0 (rcount + 1);
        right.nkeys <- rcount;
        child.nkeys <- mid;
        s (* move-up *)
      end
    in
    let n = parent.nkeys in
    Array.blit parent.keys ci parent.keys (ci + 1) (n - ci);
    parent.keys.(ci) <- sep;
    Array.blit parent.children (ci + 1) parent.children (ci + 2) (n - ci);
    parent.children.(ci + 1) <- right;
    parent.nkeys <- n + 1;
    right

  let ensure_root t =
    while t.root == sentinel do
      if Olock.try_start_write t.root_lock then begin
        if t.root == sentinel then t.root <- alloc_leaf t;
        Olock.end_write t.root_lock
      end
    done

  (* Pessimistic insert: write-lock coupling from the root downward,
     preemptively splitting every full node met on the way. *)
  let insert_pessimistic t key =
    Olock.start_write t.root_lock;
    let root = t.root in
    Olock.start_write root.lock;
    let cur =
      if root.nkeys >= t.capacity then begin
        (* grow the tree; the old root becomes child 0 of a new root *)
        let nr = alloc_inner t in
        let got = Olock.try_start_write nr.lock in
        assert got;
        nr.children.(0) <- root;
        let right = split_child t nr 0 root in
        t.root <- nr;
        Olock.end_write t.root_lock;
        (* descend into the proper half *)
        let ci = upper_idx nr.keys nr.nkeys key in
        let target = nr.children.(ci) in
        (* target is root or right, both locked; release the others *)
        if target == root then Olock.end_write right.lock
        else Olock.end_write root.lock;
        Olock.end_write nr.lock;
        target
      end
      else begin
        Olock.end_write t.root_lock;
        root
      end
    in
    (* invariant: [cur] is write-locked and not full *)
    let rec go cur =
      if is_leaf cur then begin
        let added = leaf_insert cur key in
        Olock.end_write cur.lock;
        added
      end
      else begin
        let ci = upper_idx cur.keys cur.nkeys key in
        let child = cur.children.(ci) in
        Olock.start_write child.lock;
        if child.nkeys >= t.capacity then begin
          let right = split_child t cur ci child in
          let ci' = upper_idx cur.keys cur.nkeys key in
          let target = cur.children.(ci') in
          if target == child then Olock.end_write right.lock
          else Olock.end_write child.lock;
          Olock.end_write cur.lock;
          go target
        end
        else begin
          Olock.end_write cur.lock;
          go child
        end
      end
    in
    go cur

  (* Optimistic fast path; falls back on any validation failure or when the
     target leaf is full. *)
  let rec insert_optimistic t key attempts =
    if attempts = 0 then insert_pessimistic t key
    else begin
      let retry () = insert_optimistic t key (attempts - 1) in
      let rec locate_root () =
        let rl = Olock.start_read t.root_lock in
        let cur = t.root in
        let[@lint.allow
             "lease-discipline: multi-value return, consumed immediately \
              by the descend loop"] cl =
          Olock.start_read cur.lock
        in
        if Olock.end_read t.root_lock rl then (cur, cl) else locate_root ()
      in
      let rec descend cur cl =
        let n = clamped_nkeys cur in
        if is_leaf cur then
          if cur.nkeys >= t.capacity then
            if Olock.valid cur.lock cl then insert_pessimistic t key
            else retry ()
          else if not (Olock.try_upgrade_to_write cur.lock cl) then retry ()
          else if cur.nkeys >= t.capacity then begin
            Olock.end_write cur.lock;
            insert_pessimistic t key
          end
          else begin
            let added = leaf_insert cur key in
            Olock.end_write cur.lock;
            added
          end
        else begin
          let ci = upper_idx cur.keys n key in
          let child = cur.children.(ci) in
          if not (Olock.valid cur.lock cl) then retry ()
          else begin
            let chl = Olock.start_read child.lock in
            if not (Olock.valid cur.lock cl) then retry ()
            else descend child chl
          end
        end
      in
      let cur, cl = locate_root () in
      descend cur cl
    end

  let insert t key =
    ensure_root t;
    insert_optimistic t key 3

  let mem t key =
    if t.root == sentinel then false
    else begin
      let rec attempt () =
        let rec locate_root () =
          let rl = Olock.start_read t.root_lock in
          let cur = t.root in
          let[@lint.allow
               "lease-discipline: multi-value return, consumed immediately \
                by the descend loop"] cl =
            Olock.start_read cur.lock
          in
          if Olock.end_read t.root_lock rl then (cur, cl) else locate_root ()
        in
        let rec descend cur cl =
          let n = clamped_nkeys cur in
          if is_leaf cur then begin
            let i = lower_idx cur.keys n key in
            let found = i < n && K.compare cur.keys.(i) key = 0 in
            if Olock.valid cur.lock cl then found else attempt ()
          end
          else begin
            let ci = upper_idx cur.keys n key in
            let child = cur.children.(ci) in
            if not (Olock.valid cur.lock cl) then attempt ()
            else begin
              let chl = Olock.start_read child.lock in
              if not (Olock.valid cur.lock cl) then attempt ()
              else descend child chl
            end
          end
        in
        let cur, cl = locate_root () in
        descend cur cl
      in
      attempt ()
    end

  let iter f t =
    if t.root != sentinel then begin
      let rec go node =
        if is_leaf node then
          for i = 0 to node.nkeys - 1 do
            f node.keys.(i)
          done
        else
          for i = 0 to node.nkeys do
            go node.children.(i)
          done
      in
      go t.root
    end

  let cardinal t =
    let n = ref 0 in
    iter (fun _ -> incr n) t;
    !n

  let to_list t =
    let acc = ref [] in
    iter (fun k -> acc := k :: !acc) t;
    List.rev !acc

  let check_invariants t =
    let fail fmt = Printf.ksprintf failwith fmt in
    if t.root != sentinel then begin
      let leaf_depth = ref (-1) in
      let rec go node depth lo hi =
        let n = node.nkeys in
        if n > t.capacity then fail "node overflow";
        for i = 0 to n - 2 do
          if K.compare node.keys.(i) node.keys.(i + 1) >= 0 then
            fail "keys out of order"
        done;
        if n > 0 then begin
          (match lo with
          | Some b -> if K.compare node.keys.(0) b < 0 then fail "lo violated"
          | None -> ());
          match hi with
          | Some b ->
            if K.compare node.keys.(n - 1) b >= 0 then fail "hi violated"
          | None -> ()
        end;
        if is_leaf node then begin
          if !leaf_depth = -1 then leaf_depth := depth
          else if !leaf_depth <> depth then fail "leaves at different depths"
        end
        else begin
          if n = 0 then fail "inner node without separators";
          for i = 0 to n do
            let lo = if i = 0 then lo else Some node.keys.(i - 1) in
            let hi = if i = n then hi else Some node.keys.(i) in
            if node.children.(i) == sentinel then fail "sentinel child";
            go node.children.(i) (depth + 1) lo hi
          done
        end
      in
      go t.root 0 None None;
      let prev = ref None in
      iter
        (fun k ->
          (match !prev with
          | Some p -> if K.compare p k >= 0 then fail "iteration out of order"
          | None -> ());
          prev := Some k)
        t
    end
end
