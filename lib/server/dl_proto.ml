(* Line protocol of the resident query server.

   Everything here is total: the parse functions classify arbitrary byte
   strings and never raise, because the fuzz contract of the server is
   "hostile input yields a structured ERR, never a crash".  The only
   stateful thing in this module is nothing — framing state (payload
   line counting) lives in the session layer. *)

let version = "dlserve/1"
let greeting = "DLSERVE/1 ready"

(* One line: generous enough for wide facts and long rule lines, small
   enough that a hostile client cannot balloon a session buffer. *)
let max_line = 64 * 1024

(* Payload batches: LOAD/RULES announce their line count up front; this
   caps what a client can make the server commit to buffering. *)
let max_batch = 1_000_000

(* The line count alone still admits max_batch lines of up to max_line
   bytes each, so the accumulated byte size of one batch is capped too;
   past it the batch is poisoned and nothing further is buffered. *)
let max_batch_bytes = 16 * 1024 * 1024

type value = V_int of int | V_sym of string
type pat = P_any | P_val of value

type request =
  | Hello of string
  | Rules of int
  | Load of string * int
  | Assert_ of string * value array
  | Query of string * pat array
  | Stats
  | Ping
  | Shutdown

(* --------------------------------------------------------------- *)
(* Tokenising                                                       *)
(* --------------------------------------------------------------- *)

let is_ws c = c = ' ' || c = '\t'

let tokens s =
  let n = String.length s in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    while !i < n && is_ws s.[!i] do
      incr i
    done;
    if !i < n then begin
      let start = !i in
      while !i < n && not (is_ws s.[!i]) do
        incr i
      done;
      out := String.sub s start (!i - start) :: !out
    end
  done;
  List.rev !out

(* Relation names are identifiers — same lexical class the Datalog parser
   accepts — so a malformed name fails here rather than deep inside the
   engine. *)
let is_ident s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       s

let value_of_token t =
  match int_of_string_opt t with Some i -> V_int i | None -> V_sym t

let pat_of_token t = if t = "_" then P_any else P_val (value_of_token t)

let value_to_string = function V_int i -> string_of_int i | V_sym s -> s
let pat_to_string = function P_any -> "_" | P_val v -> value_to_string v

(* [rel(a,b,c)] sugar: when the argument tail of ASSERT/QUERY starts with
   a token containing '(', re-split the whole tail on '(' ',' ')'.  A
   field may not contain interior whitespace: the space-separated form
   cannot express such a value, and neither can the WAL, whose fact
   records re-tokenise on whitespace at recovery — admitting one would
   make an acked fact unreplayable. *)
let split_atom_form rest =
  let buf = Buffer.create 32 in
  let fields = ref [] in
  let depth = ref 0 in
  let bad = ref None in
  let flush () =
    let f = String.trim (Buffer.contents buf) in
    Buffer.clear buf;
    if f <> "" then begin
      if String.exists is_ws f then
        bad := Some (Printf.sprintf "whitespace inside field %S" f);
      fields := f :: !fields
    end
  in
  String.iter
    (fun c ->
      match c with
      | '(' ->
        incr depth;
        if !depth > 1 then bad := Some "nested parentheses"
        else flush ()
      | ')' ->
        decr depth;
        if !depth < 0 then bad := Some "unbalanced parentheses" else flush ()
      | ',' -> if !depth = 1 then flush () else bad := Some "comma outside atom"
      | c -> Buffer.add_char buf c)
    rest;
  flush ();
  if !depth <> 0 then bad := Some "unbalanced parentheses";
  match (!bad, List.rev !fields) with
  | Some m, _ -> Error m
  | None, [] -> Error "empty atom"
  | None, rel :: args -> Ok (rel, args)

(* The argument part of ASSERT/QUERY: either space-separated tokens after
   the relation name, or a single rel(a,b) atom. *)
let parse_rel_args rest_tokens rest_raw =
  if String.contains rest_raw '(' then split_atom_form rest_raw
  else
    match rest_tokens with
    | rel :: args -> Ok (rel, args)
    | [] -> Error "missing relation name"

let parse_count tok =
  match int_of_string_opt tok with
  | Some n when n >= 0 && n <= max_batch -> Ok n
  | Some n when n > max_batch ->
    Error (Printf.sprintf "batch of %d exceeds max %d" n max_batch)
  | _ -> Error (Printf.sprintf "bad count %S" tok)

let parse_request line =
  match tokens line with
  | [] -> Error "empty request"
  | verb :: rest -> (
    let raw_rest =
      (* the raw tail of the line after the verb, for atom-form parsing *)
      let n = String.length line in
      let i = ref 0 in
      while !i < n && is_ws line.[!i] do incr i done;
      while !i < n && not (is_ws line.[!i]) do incr i done;
      String.trim (String.sub line !i (n - !i))
    in
    match (String.uppercase_ascii verb, rest) with
    | "HELLO", [ v ] -> Ok (Hello v)
    | "HELLO", _ -> Error "usage: HELLO <proto-version>"
    | "PING", [] -> Ok Ping
    | "STATS", [] -> Ok Stats
    | "SHUTDOWN", [] -> Ok Shutdown
    | ("PING" | "STATS" | "SHUTDOWN"), _ :: _ ->
      Error (Printf.sprintf "%s takes no arguments" (String.uppercase_ascii verb))
    | "RULES", [ n ] -> Result.map (fun n -> Rules n) (parse_count n)
    | "RULES", _ -> Error "usage: RULES <n-lines>"
    | "LOAD", [ rel; n ] ->
      if not (is_ident rel) then Error (Printf.sprintf "bad relation name %S" rel)
      else Result.map (fun n -> Load (rel, n)) (parse_count n)
    | "LOAD", _ -> Error "usage: LOAD <rel> <n-facts>"
    | "ASSERT", _ -> (
      match parse_rel_args rest raw_rest with
      | Error m -> Error m
      | Ok (rel, args) ->
        if not (is_ident rel) then
          Error (Printf.sprintf "bad relation name %S" rel)
        else if args = [] then Error "ASSERT needs at least one field"
        else Ok (Assert_ (rel, Array.of_list (List.map value_of_token args))))
    | "QUERY", _ -> (
      match parse_rel_args rest raw_rest with
      | Error m -> Error m
      | Ok (rel, args) ->
        if not (is_ident rel) then
          Error (Printf.sprintf "bad relation name %S" rel)
        else Ok (Query (rel, Array.of_list (List.map pat_of_token args))))
    | v, _ ->
      Error
        (Printf.sprintf
           "unknown verb %S (try HELLO RULES LOAD ASSERT QUERY STATS PING \
            SHUTDOWN)"
           v))

let parse_fact line =
  match tokens line with
  | [] -> Error "empty fact line"
  | ts -> Ok (Array.of_list (List.map value_of_token ts))

(* --------------------------------------------------------------- *)
(* Responses                                                        *)
(* --------------------------------------------------------------- *)

type err_code =
  | E_parse
  | E_proto
  | E_program
  | E_no_program
  | E_relation
  | E_arity
  | E_busy
  | E_shutdown
  | E_internal

let err_name = function
  | E_parse -> "parse"
  | E_proto -> "proto"
  | E_program -> "program"
  | E_no_program -> "no-program"
  | E_relation -> "relation"
  | E_arity -> "arity"
  | E_busy -> "busy"
  | E_shutdown -> "shutdown"
  | E_internal -> "internal"

let all_errs =
  [
    E_parse; E_proto; E_program; E_no_program; E_relation; E_arity; E_busy;
    E_shutdown; E_internal;
  ]

let err_of_name s = List.find_opt (fun e -> err_name e = s) all_errs

type response =
  | R_ok of string
  | R_data of string * string list
  | R_err of err_code * string

(* Responses are single lines by construction: scrub any newline a
   message might smuggle in (e.g. quoting hostile input back). *)
let one_line s =
  String.map (function '\n' | '\r' -> ' ' | c -> c) s

let render buf = function
  | R_ok "" -> Buffer.add_string buf "OK\n"
  | R_ok info ->
    Buffer.add_string buf "OK ";
    Buffer.add_string buf (one_line info);
    Buffer.add_char buf '\n'
  | R_err (code, msg) ->
    Buffer.add_string buf "ERR ";
    Buffer.add_string buf (err_name code);
    Buffer.add_char buf ' ';
    Buffer.add_string buf (one_line msg);
    Buffer.add_char buf '\n'
  | R_data (info, lines) ->
    Buffer.add_string buf "DATA ";
    Buffer.add_string buf (string_of_int (List.length lines));
    if info <> "" then begin
      Buffer.add_char buf ' ';
      Buffer.add_string buf (one_line info)
    end;
    Buffer.add_char buf '\n';
    List.iter
      (fun l ->
        Buffer.add_string buf (one_line l);
        Buffer.add_char buf '\n')
      lines;
    Buffer.add_string buf "END\n"

let parse_response_line line =
  match tokens line with
  | "OK" :: rest -> `Ok (String.concat " " rest)
  | "DATA" :: n :: rest -> (
    match int_of_string_opt n with
    | Some n when n >= 0 -> `Data (n, String.concat " " rest)
    | _ -> `Err ("garbled", line))
  | "ERR" :: code :: rest -> `Err (code, String.concat " " rest)
  | _ -> `Err ("garbled", line)
