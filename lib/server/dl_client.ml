(* Blocking protocol client.  Deliberately boring: one fd, one read
   buffer, socket timeouts instead of an event loop — the concurrency
   story lives on the server side, a client is one session on one
   domain. *)

type t = {
  fd : Unix.file_descr;
  rbuf : Buffer.t;
  chunk : Bytes.t;
  mutable alive : bool;
}

type reply =
  | Ok_ of string
  | Data of string * string list
  | Err of string * string

let close t =
  if t.alive then begin
    t.alive <- false;
    try Unix.close t.fd with _ -> ()
  end

(* --------------------------------------------------------------- *)
(* Buffered line reading                                            *)
(* --------------------------------------------------------------- *)

let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let rec read_line t =
  if not t.alive then Error "connection closed"
  else
    let data = Buffer.contents t.rbuf in
    match String.index_opt data '\n' with
    | Some nl ->
      let line = strip_cr (String.sub data 0 nl) in
      Buffer.clear t.rbuf;
      Buffer.add_substring t.rbuf data (nl + 1) (String.length data - nl - 1);
      Ok line
    | None -> (
      match Unix.read t.fd t.chunk 0 (Bytes.length t.chunk) with
      | 0 ->
        close t;
        Error "connection closed by server"
      | n ->
        Buffer.add_subbytes t.rbuf t.chunk 0 n;
        read_line t
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_line t
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        close t;
        Error "receive timeout"
      | exception e ->
        close t;
        Error (Printexc.to_string e))

let write_all t s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off >= len then Ok ()
    else
      match Unix.write t.fd b off (len - off) with
      | 0 ->
        close t;
        Error "send failed"
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception e ->
        close t;
        Error (Printexc.to_string e)
  in
  if t.alive then go 0 else Error "connection closed"

(* --------------------------------------------------------------- *)
(* Replies                                                          *)
(* --------------------------------------------------------------- *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let read_reply t =
  let* status = read_line t in
  match Dl_proto.parse_response_line status with
  | `Ok info -> Ok (Ok_ info)
  | `Err ("garbled", line) ->
    close t;
    Error ("garbled reply: " ^ line)
  | `Err (code, msg) -> Ok (Err (code, msg))
  | `Data (n, info) ->
    let rec rows acc k =
      if k = 0 then Ok (List.rev acc)
      else
        let* line = read_line t in
        rows (line :: acc) (k - 1)
    in
    let* payload = rows [] n in
    let* fin = read_line t in
    if fin = "END" then Ok (Data (info, payload))
    else begin
      close t;
      Error ("bad payload terminator: " ^ fin)
    end

let request t line =
  let* () = write_all t (line ^ "\n") in
  read_reply t

let send_payload t header lines =
  let buf = Buffer.create 256 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  List.iter
    (fun l ->
      Buffer.add_string buf l;
      Buffer.add_char buf '\n')
    lines;
  let* () = write_all t (Buffer.contents buf) in
  read_reply t

(* --------------------------------------------------------------- *)
(* Connect                                                          *)
(* --------------------------------------------------------------- *)

let resolve_host h =
  try Unix.inet_addr_of_string h
  with _ -> (
    try (Unix.gethostbyname h).Unix.h_addr_list.(0)
    with _ -> failwith ("cannot resolve host " ^ h))

let connect ?(timeout_s = 30.0) addr =
  let mk () =
    match addr with
    | Telemetry_server.Tcp (host, port) ->
      ( Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0,
        Unix.ADDR_INET (resolve_host host, port) )
    | Telemetry_server.Unix_sock p ->
      ( Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0,
        Unix.ADDR_UNIX p )
  in
  match mk () with
  | exception e -> Error (Printexc.to_string e)
  | fd, sa -> (
    match
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout_s;
      Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout_s;
      Unix.connect fd sa
    with
    | () -> (
      let t =
        { fd; rbuf = Buffer.create 512; chunk = Bytes.create 4096; alive = true }
      in
      (* the greeting is the handshake: anything else is not our server *)
      match read_line t with
      | Ok g when g = Dl_proto.greeting -> Ok t
      | Ok g ->
        close t;
        Error ("unexpected greeting: " ^ g)
      | Error e ->
        close t;
        Error e)
    | exception e ->
      (try Unix.close fd with _ -> ());
      Error (Printexc.to_string e))

(* --------------------------------------------------------------- *)
(* Reconnect/retry sessions                                         *)
(* --------------------------------------------------------------- *)

(* Promoted from the stress harness's ad-hoc loops: a session that
   lazily (re)connects and retries *connection-level* failures only —
   a structured ERR reply is an answer, not a fault, and retrying it
   would turn admission control (ERR busy) into a hot loop.  Backoff
   is seeded jittered exponential so a fleet of clients hammering one
   reborn server fans out instead of thundering. *)

type session = {
  s_addr : Telemetry_server.addr;
  s_attempts : int;
  s_backoff_ms : float;
  s_timeout_s : float;
  mutable s_rng : int;
  mutable s_conn : t option;
}

let session ?(attempts = 10) ?(backoff_ms = 2.0) ?(seed = 1) ?(timeout_s = 30.0)
    addr =
  let rng = if seed = 0 then 0x2545F491 else seed land max_int in
  {
    s_addr = addr;
    s_attempts = max 1 attempts;
    s_backoff_ms = Float.max 0.0 backoff_ms;
    s_timeout_s = timeout_s;
    s_rng = rng;
    s_conn = None;
  }

let disconnect s =
  match s.s_conn with
  | Some c ->
    close c;
    s.s_conn <- None
  | None -> ()

let rng_next s =
  let r = s.s_rng in
  let r = r lxor (r lsl 13) land max_int in
  let r = r lxor (r lsr 7) in
  let r = r lxor (r lsl 17) land max_int in
  let r = if r = 0 then 0x2545F491 else r in
  s.s_rng <- r;
  r

(* attempt k (k >= 1) sleeps backoff * 2^(k-1), capped, scaled by a
   jitter factor in [0.5, 1.5) drawn from the session's own stream *)
let backoff_sleep s k =
  if s.s_backoff_ms > 0.0 then begin
    let exp = Float.min 64.0 (Float.pow 2.0 (float_of_int (min 6 (k - 1)))) in
    let jitter = 0.5 +. (float_of_int (rng_next s mod 1024) /. 1024.0) in
    Unix.sleepf (s.s_backoff_ms /. 1000.0 *. exp *. jitter)
  end

let retry s f =
  let rec go k last =
    if k > s.s_attempts then
      Error (Printf.sprintf "after %d attempts: %s" s.s_attempts last)
    else begin
      if k > 1 then backoff_sleep s (k - 1);
      match
        match s.s_conn with
        | Some c when c.alive -> Ok c
        | _ -> (
          s.s_conn <- None;
          match connect ~timeout_s:s.s_timeout_s s.s_addr with
          | Ok c ->
            s.s_conn <- Some c;
            Ok c
          | Error _ as e -> e)
      with
      | Error m -> go (k + 1) ("connect: " ^ m)
      | Ok c -> (
        match f c with
        | Ok _ as r -> r
        | Error m ->
          (* transport fault: this connection is dead; a fresh one may
             succeed.  Note a retried request is re-sent whole — safe
             against servers that only apply fully-parsed requests. *)
          disconnect s;
          go (k + 1) m)
    end
  in
  go 1 "no attempts made"

let with_retry ?attempts ?backoff_ms ?seed ?timeout_s addr f =
  let s = session ?attempts ?backoff_ms ?seed ?timeout_s addr in
  Fun.protect ~finally:(fun () -> disconnect s) (fun () -> f s)

(* --------------------------------------------------------------- *)
(* Verb wrappers                                                    *)
(* --------------------------------------------------------------- *)

let hello t = request t ("HELLO " ^ Dl_proto.version)
let ping t = request t "PING"
let stats t = request t "STATS"
let shutdown t = request t "SHUTDOWN"

let rules t text =
  let lines = String.split_on_char '\n' text in
  (* a trailing newline in the source is not an extra payload line *)
  let lines =
    match List.rev lines with "" :: rest -> List.rev rest | _ -> lines
  in
  send_payload t (Printf.sprintf "RULES %d" (List.length lines)) lines

let load t rel rows =
  send_payload t (Printf.sprintf "LOAD %s %d" rel (List.length rows)) rows

let assert_fact t rel fields =
  request t (Printf.sprintf "ASSERT %s %s" rel (String.concat " " fields))

let query t rel pats =
  request t (Printf.sprintf "QUERY %s %s" rel (String.concat " " pats))
