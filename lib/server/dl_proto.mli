(** Wire protocol of the resident query server ([datalog_serve]).

    A deliberately small, line-oriented, human-typeable protocol — one
    request per line, LF-terminated (a trailing CR is stripped), UTF-8
    agnostic (bytes are never interpreted).  Two requests carry a payload
    of [n] additional lines announced up front ([LOAD], [RULES]); payload
    framing is by line count, so a client never needs to escape anything.

    Server greeting on connect: {!greeting}.  Requests:

    {v
    HELLO dlserve/1              protocol version handshake (optional)
    RULES <n>                    next n lines: a Datalog program; replaces
                                 the installed program
    LOAD <rel> <n>               next n lines: whitespace-separated fields,
                                 one fact per line; atomic batch
    ASSERT <rel> <f1> <f2> ...   one fact (also: ASSERT rel(f1,f2,...))
    QUERY <rel> <p1> <p2> ...    pattern: field value or _ wildcard
                                 (also: QUERY rel(p1,p2,...))
    STATS                        server + relation statistics
    PING                         liveness probe
    SHUTDOWN                     graceful stop
    v}

    Responses are one of:

    {v
    OK [info]
    DATA <n> [info]   followed by n payload lines and a line END
    ERR <code> <message>
    v}

    Error codes are a closed set ({!err_code}) so clients can dispatch on
    them; hostile input must always yield a structured [ERR], never a
    dropped connection or a crash. *)

val version : string
(** Protocol version token, ["dlserve/1"]. *)

val greeting : string
(** First line the server sends on every fresh connection. *)

val max_line : int
(** Upper bound on one request/payload line in bytes; longer lines are a
    protocol error. *)

val max_batch : int
(** Upper bound on the announced payload line count of [LOAD]/[RULES]. *)

val max_batch_bytes : int
(** Upper bound on the accumulated payload bytes of one [LOAD]/[RULES]
    batch; a batch past it is rejected ([ERR proto]) and its buffered
    lines are dropped, though framing still consumes the announced line
    count. *)

(** A fact field: integers are taken literally, anything else is a symbol
    interned per engine generation. *)
type value = V_int of int | V_sym of string

(** A query pattern field: a bound value or the [_] wildcard. *)
type pat = P_any | P_val of value

type request =
  | Hello of string  (** the client's protocol version token, unvalidated *)
  | Rules of int  (** payload line count follows *)
  | Load of string * int  (** relation, payload line count *)
  | Assert_ of string * value array
  | Query of string * pat array
  | Stats
  | Ping
  | Shutdown

val parse_request : string -> (request, string) result
(** Total: every byte string yields a request or an error message, never
    an exception.  Verbs are case-insensitive; fields are split on runs of
    spaces/tabs; [rel(a,b)] atom syntax is accepted for ASSERT/QUERY. *)

val parse_fact : string -> (value array, string) result
(** Parse one [LOAD] payload line (whitespace-separated fields).  Total. *)

val value_to_string : value -> string
val pat_to_string : pat -> string

(** Closed error-code set carried by [ERR] responses. *)
type err_code =
  | E_parse  (** malformed request or payload line *)
  | E_proto  (** protocol violation: bad handshake, oversized line/batch *)
  | E_program  (** program rejected (syntax, safety, stratification) *)
  | E_no_program  (** request needs an installed program *)
  | E_relation  (** unknown relation *)
  | E_arity  (** field count does not match the relation's arity *)
  | E_busy  (** admission control: backpressure or chaos drill; retry *)
  | E_shutdown  (** server is draining; no further requests *)
  | E_internal  (** contained server-side failure *)

val err_name : err_code -> string
val err_of_name : string -> err_code option

type response =
  | R_ok of string  (** info, may be empty *)
  | R_data of string * string list  (** info, payload lines *)
  | R_err of err_code * string

val render : Buffer.t -> response -> unit
(** Serialise one response, including payload framing and trailing
    newlines. *)

val parse_response_line :
  string -> [ `Ok of string | `Data of int * string | `Err of string * string ]
(** Client side: classify a response status line.  Unrecognised lines come
    back as [`Err ("garbled", line)] — total, like {!parse_request}. *)
