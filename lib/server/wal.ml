(* Write-ahead log for the resident server's fact store.

   Everything here is cold relative to the structures the paper
   measures: one append per admitted batch, one fsync per ack (strict)
   or per flip (batch).  So the implementation favours being obviously
   correct over being clever — whole records are assembled in a buffer
   and written with one write(2), segments are read back wholesale at
   recovery, and no state is shared across domains (the handle has a
   single owner, the server domain, like every other Dl_server
   structure; the only module-level state is the in-process lock
   registry below, which exists because fcntl-style locks do not
   exclude a second open in the *same* process). *)

type durability = D_none | D_async | D_batch | D_strict

let durability_of_string = function
  | "none" -> Some D_none
  | "async" -> Some D_async
  | "batch" -> Some D_batch
  | "strict" -> Some D_strict
  | _ -> None

let durability_name = function
  | D_none -> "none"
  | D_async -> "async"
  | D_batch -> "batch"
  | D_strict -> "strict"

let durability_choices = "none|async|batch|strict"

type entry =
  | Rules of string
  | Facts of string * string list
  | Commit of int
  | Anchor of int

type recovery = {
  rv_entries : entry list;
  rv_records : int;
  rv_segments : int;
  rv_bytes : int;
  rv_committed_seq : int;
  rv_torn_tail : bool;
}

type t = {
  w_dir : string;
  w_durability : durability;
  w_segment_bytes : int;
  w_compact_segments : int;
  w_lock_fd : Unix.file_descr;
  w_lock_key : string;
  mutable w_fd : Unix.file_descr;
  mutable w_seg_seq : int; (* sequence number of the open segment *)
  mutable w_seg_bytes : int; (* size of the open segment *)
  mutable w_segments : int; (* live segment files *)
  mutable w_records : int;
  mutable w_bytes : int;
  mutable w_fsyncs : int;
  mutable w_compactions : int;
  mutable w_torn : bool; (* wal.write.short fired: refuse appends *)
  mutable w_closed : bool;
}

(* ---------------------------------------------------------------- *)
(* Record format                                                     *)
(* ---------------------------------------------------------------- *)

let magic = "DLWAL001"
let magic_len = String.length magic
let header_len = 9 (* len:u32le crc:u32le type:u8 *)

(* A record larger than this cannot have been written by us (the
   protocol caps one LOAD at 16 MiB of payload); treat as corruption
   rather than attempting a gigantic allocation. *)
let max_record_len = 64 * 1024 * 1024

(* CRC-32 (IEEE 802.3), table-driven; values stay within 32 bits so
   plain int arithmetic is exact. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 b off len =
  let t = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  for i = off to off + len - 1 do
    c := t.((!c lxor Char.code (Bytes.get b i)) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let put_u32 b off v = Bytes.set_int32_le b off (Int32.of_int v)
let get_u32 b off = Int32.to_int (Bytes.get_int32_le b off) land 0xFFFFFFFF

let type_byte = function
  | Rules _ -> 'R'
  | Facts _ -> 'F'
  | Commit _ -> 'C'
  | Anchor _ -> 'A'

let payload_of = function
  | Rules text -> text
  | Facts (rel, []) -> rel
  | Facts (rel, lines) -> rel ^ "\n" ^ String.concat "\n" lines
  | Commit seq | Anchor seq -> string_of_int seq

let decode_entry ty payload =
  match ty with
  | 'R' -> Ok (Rules payload)
  | 'F' -> (
    match String.index_opt payload '\n' with
    | None -> if payload = "" then Error "empty facts record" else Ok (Facts (payload, []))
    | Some i ->
      let rel = String.sub payload 0 i in
      let rest = String.sub payload (i + 1) (String.length payload - i - 1) in
      if rel = "" then Error "facts record without relation"
      else Ok (Facts (rel, String.split_on_char '\n' rest)))
  | 'C' -> (
    match int_of_string_opt payload with
    | Some seq -> Ok (Commit seq)
    | None -> Error "malformed commit marker")
  | 'A' -> (
    match int_of_string_opt payload with
    | Some seq -> Ok (Anchor seq)
    | None -> Error "malformed snapshot anchor")
  | c -> Error (Printf.sprintf "unknown record type %C" c)

let encode_record e =
  let payload = payload_of e in
  let len = String.length payload in
  let b = Bytes.create (header_len + len) in
  put_u32 b 0 len;
  Bytes.set b 8 (type_byte e);
  Bytes.blit_string payload 0 b header_len len;
  put_u32 b 4 (crc32 b 8 (1 + len));
  b

(* ---------------------------------------------------------------- *)
(* Low-level IO                                                      *)
(* ---------------------------------------------------------------- *)

let seg_name seq = Printf.sprintf "wal-%08d.log" seq
let seg_path dir seq = Filename.concat dir (seg_name seq)

let seg_seq_of_name name =
  if
    String.length name = 16
    && String.sub name 0 4 = "wal-"
    && Filename.check_suffix name ".log"
  then int_of_string_opt (String.sub name 4 8)
  else None

let write_all fd b off len =
  let off = ref off and left = ref len in
  while !left > 0 do
    let n = Unix.write fd b !off !left in
    off := !off + n;
    left := !left - n
  done

(* Make directory metadata (renames, unlinks, fresh files) durable;
   best-effort — not every filesystem supports fsync on a directory. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0 with
  | exception _ -> ()
  | dfd ->
    (try Unix.fsync dfd with _ -> ());
    (try Unix.close dfd with _ -> ())

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ---------------------------------------------------------------- *)
(* Lock file                                                         *)
(* ---------------------------------------------------------------- *)

(* fcntl record locks are per-process: a second lockf in the same
   process silently succeeds, so a same-process double-start would not
   be refused without this registry.  The mutex only guards the table;
   the wal handle itself stays single-owner. *)
let lock_mutex = Mutex.create ()
let locked_dirs : (string, unit) Hashtbl.t = Hashtbl.create 4

let lock_key dir = try Unix.realpath dir with _ -> dir

let take_lock dir =
  let key = lock_key dir in
  let registered =
    Mutex.protect lock_mutex (fun () ->
        if Hashtbl.mem locked_dirs key then false
        else begin
          Hashtbl.add locked_dirs key ();
          true
        end)
  in
  if not registered then
    Error
      (Printf.sprintf "wal: data dir %s is locked by this process (double start?)"
         dir)
  else
    let release_registry () =
      Mutex.protect lock_mutex (fun () -> Hashtbl.remove locked_dirs key)
    in
    match
      Unix.openfile (Filename.concat dir "LOCK")
        [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_CLOEXEC ]
        0o644
    with
    | exception e ->
      release_registry ();
      Error
        (Printf.sprintf "wal: cannot open lock file in %s: %s" dir
           (Printexc.to_string e))
    | fd -> (
      match Unix.lockf fd Unix.F_TLOCK 0 with
      | () -> Ok (fd, key)
      | exception _ ->
        (try Unix.close fd with _ -> ());
        release_registry ();
        Error
          (Printf.sprintf
             "wal: data dir %s is locked by another server (lock file held)" dir))

let drop_lock fd key =
  (try Unix.close fd with _ -> ());
  Mutex.protect lock_mutex (fun () -> Hashtbl.remove locked_dirs key)

(* ---------------------------------------------------------------- *)
(* Recovery scan                                                     *)
(* ---------------------------------------------------------------- *)

(* Scan one segment image.  Returns the valid entries plus either
   [`Clean] or [`Corrupt (offset, detail)] — the caller decides whether
   a corruption is a benign torn tail (final segment) or fatal. *)
let scan_segment data =
  let b = Bytes.of_string data in
  let n = Bytes.length b in
  if n < magic_len || Bytes.sub_string b 0 magic_len <> magic then
    ([], 0, `Corrupt (0, "bad segment header"))
  else begin
    let entries = ref [] and count = ref 0 in
    let pos = ref magic_len in
    let status = ref `Clean in
    let stop = ref false in
    while (not !stop) && !pos < n do
      let off = !pos in
      if n - off < header_len then begin
        status := `Corrupt (off, "short record header");
        stop := true
      end
      else begin
        let len = get_u32 b off in
        let crc = get_u32 b (off + 4) in
        if len > max_record_len || n - off - header_len < len then begin
          status := `Corrupt (off, "short or oversized record");
          stop := true
        end
        else begin
          (* chaos: bit-flip a payload byte as it is read back, the
             classic lying-disk drill; the CRC below must catch it *)
          if len > 0 && Chaos.fire Chaos.Point.Wal_recover_corrupt then begin
            let i = off + header_len + (len / 2) in
            Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x10))
          end;
          if crc32 b (off + 8) (1 + len) <> crc then begin
            status := `Corrupt (off, "checksum mismatch");
            stop := true
          end
          else
            let payload = Bytes.sub_string b (off + header_len) len in
            match decode_entry (Bytes.get b (off + 8)) payload with
            | Error detail ->
              status := `Corrupt (off, detail);
              stop := true
            | Ok e ->
              entries := e :: !entries;
              incr count;
              pos := off + header_len + len
        end
      end
    done;
    (List.rev !entries, !pos, !status)
  end

let truncate_file path len =
  match Unix.openfile path [ Unix.O_WRONLY; Unix.O_CLOEXEC ] 0o644 with
  | exception _ -> ()
  | fd ->
    (try Unix.ftruncate fd len with _ -> ());
    (try Unix.close fd with _ -> ())

let list_segments dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter_map (fun name ->
         match seg_seq_of_name name with
         | Some seq -> Some (seq, Filename.concat dir name)
         | None ->
           (* a leftover compaction temp file is garbage from a crash
              mid-compact: the rename never happened, so drop it *)
           if Filename.check_suffix name ".log.tmp" then
             (try Unix.unlink (Filename.concat dir name) with _ -> ());
           None)
  |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)

let recover_dir dir =
  let segs = list_segments dir in
  let nsegs = List.length segs in
  let exception Fatal of string in
  try
    let entries = ref [] and records = ref 0 and bytes = ref 0 in
    let torn = ref false in
    List.iteri
      (fun i (_, path) ->
        let final = i = nsegs - 1 in
        let data = try read_file path with e ->
          raise (Fatal (Printf.sprintf "wal: cannot read %s: %s" path
                          (Printexc.to_string e)))
        in
        let es, valid_end, status = scan_segment data in
        entries := List.rev_append es !entries;
        records := !records + List.length es;
        bytes := !bytes + valid_end;
        match status with
        | `Clean -> ()
        | `Corrupt (off, detail) ->
          if final then begin
            (* a torn write is exactly what a crash mid-append leaves;
               keep the valid prefix, physically cut the tail off *)
            truncate_file path (max off 0);
            torn := true;
            Telemetry.bump Telemetry.Counter.Wal_torn_tails
          end
          else
            raise
              (Fatal
                 (Printf.sprintf
                    "wal: corrupt record in non-final segment %s at offset %d \
                     (%s); refusing to serve — acked data may be lost"
                    (Filename.basename path) off detail)))
      segs;
    let committed =
      List.fold_left
        (fun acc e ->
          match e with Commit s | Anchor s -> max acc s | _ -> acc)
        0 !entries
    in
    Telemetry.add Telemetry.Counter.Wal_replayed_records !records;
    Ok
      {
        rv_entries = List.rev !entries;
        rv_records = !records;
        rv_segments = nsegs;
        rv_bytes = !bytes;
        rv_committed_seq = committed;
        rv_torn_tail = !torn;
      }
  with Fatal msg -> Error msg

(* ---------------------------------------------------------------- *)
(* Opening                                                           *)
(* ---------------------------------------------------------------- *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create_segment dir seq =
  let fd =
    Unix.openfile (seg_path dir seq)
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_APPEND; Unix.O_CLOEXEC ]
      0o644
  in
  (match write_all fd (Bytes.of_string magic) 0 magic_len with
  | () -> ()
  | exception e ->
    (try Unix.close fd with _ -> ());
    raise e);
  Telemetry.bump Telemetry.Counter.Wal_segments;
  fd

let open_dir ?(segment_bytes = 8 * 1024 * 1024) ?(compact_segments = 4)
    ~durability dir =
  match mkdir_p dir with
  | exception e ->
    Error
      (Printf.sprintf "wal: cannot create data dir %s: %s" dir
         (Printexc.to_string e))
  | () -> (
    match take_lock dir with
    | Error _ as e -> e
    | Ok (lock_fd, lock_key) -> (
      match recover_dir dir with
      | Error msg ->
        drop_lock lock_fd lock_key;
        Error msg
      | Ok rv -> (
        match
          (* open (or create) the tail segment for appending; a final
             segment whose very header was torn away restarts empty *)
          let segs = list_segments dir in
          match List.rev segs with
          | [] -> (1, create_segment dir 1, magic_len, 1)
          | (seq, path) :: _ ->
            let size = (Unix.stat path).Unix.st_size in
            if size < magic_len then (seq, create_segment dir seq, magic_len, List.length segs)
            else
              let fd =
                Unix.openfile path
                  [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CLOEXEC ]
                  0o644
              in
              (seq, fd, size, List.length segs)
        with
        | exception e ->
          drop_lock lock_fd lock_key;
          Error
            (Printf.sprintf "wal: cannot open segment in %s: %s" dir
               (Printexc.to_string e))
        | seq, fd, size, nsegs ->
          Ok
            ( {
                w_dir = dir;
                w_durability = durability;
                w_segment_bytes = max 4096 segment_bytes;
                w_compact_segments = max 2 compact_segments;
                w_lock_fd = lock_fd;
                w_lock_key = lock_key;
                w_fd = fd;
                w_seg_seq = seq;
                w_seg_bytes = size;
                w_segments = nsegs;
                w_records = 0;
                w_bytes = 0;
                w_fsyncs = 0;
                w_compactions = 0;
                w_torn = false;
                w_closed = false;
              },
              rv ))))

(* ---------------------------------------------------------------- *)
(* Appending                                                         *)
(* ---------------------------------------------------------------- *)

let sync_now t =
  if Chaos.fire Chaos.Point.Wal_fsync_fail then
    Error "chaos: wal.fsync.fail (flush lost)"
  else
    match
      let t0 = Telemetry.hist_time () in
      Unix.fsync t.w_fd;
      t.w_fsyncs <- t.w_fsyncs + 1;
      Telemetry.bump Telemetry.Counter.Wal_fsyncs;
      if t0 > 0 then
        Telemetry.hist_record Telemetry.Hist.Wal_fsync_ns
          (Telemetry.now_ns () - t0)
    with
    | () -> Ok ()
    | exception e -> Error (Printf.sprintf "wal: fsync: %s" (Printexc.to_string e))

let sync t =
  if t.w_closed then Error "wal: closed"
  else if t.w_durability = D_none then Ok ()
  else sync_now t

let rotate t =
  (* the old segment's contents must be durable before we stop writing
     to it (async/batch promise durability at rotation boundaries) *)
  let pre = if t.w_durability = D_none then Ok () else sync_now t in
  match pre with
  | Error _ as e -> e
  | Ok () -> (
    match
      let seq = t.w_seg_seq + 1 in
      let fd = create_segment t.w_dir seq in
      (try Unix.close t.w_fd with _ -> ());
      fsync_dir t.w_dir;
      t.w_fd <- fd;
      t.w_seg_seq <- seq;
      t.w_seg_bytes <- magic_len;
      t.w_segments <- t.w_segments + 1
    with
    | () -> Ok ()
    | exception e ->
      Error (Printf.sprintf "wal: rotate: %s" (Printexc.to_string e)))

let append t e =
  if t.w_closed then Error "wal: closed"
  else if t.w_torn then
    Error "wal: log tail is torn (failed append); compact or reopen to recover"
  else
    let rotated =
      if t.w_seg_bytes >= t.w_segment_bytes then rotate t else Ok ()
    in
    match rotated with
    | Error _ as err -> err
    | Ok () -> (
      let b = encode_record e in
      let len = Bytes.length b in
      if Chaos.fire Chaos.Point.Wal_write_short then begin
        (* simulate dying mid-write: a prefix of the record reaches the
           file and this handle is dead — recovery must truncate it *)
        let short = max 1 (len / 2) in
        (try write_all t.w_fd b 0 short with _ -> ());
        t.w_seg_bytes <- t.w_seg_bytes + short;
        t.w_torn <- true;
        Error "chaos: wal.write.short (torn record)"
      end
      else
        match
          let t0 = Telemetry.hist_time () in
          write_all t.w_fd b 0 len;
          if t0 > 0 then
            Telemetry.hist_record Telemetry.Hist.Wal_append_ns
              (Telemetry.now_ns () - t0)
        with
        | exception ex ->
          (* A real failure mid-write(2) (ENOSPC, EIO) can leave a
             partial record on disk, exactly like the chaos short
             write: the handle is dead until compact rebuilds a valid
             log — further O_APPEND writes after the torn bytes would
             turn a clean truncatable tail into mid-segment
             corruption. *)
          t.w_torn <- true;
          Error (Printf.sprintf "wal: append: %s" (Printexc.to_string ex))
        | () -> (
          t.w_seg_bytes <- t.w_seg_bytes + len;
          t.w_records <- t.w_records + 1;
          t.w_bytes <- t.w_bytes + len;
          Telemetry.bump Telemetry.Counter.Wal_records;
          Telemetry.add Telemetry.Counter.Wal_bytes len;
          match (t.w_durability, e) with
          | D_strict, _ -> (
            match sync_now t with
            | Ok () -> Ok ()
            | Error _ as err ->
              (* Under strict the server refuses the admission on a
                 failed fsync, so the record must not survive to be
                 replayed at recovery — cut it back off the log; if
                 even that fails, declare the tail torn so nothing can
                 land after it. *)
              (match Unix.ftruncate t.w_fd (t.w_seg_bytes - len) with
              | () ->
                t.w_seg_bytes <- t.w_seg_bytes - len;
                t.w_records <- t.w_records - 1;
                t.w_bytes <- t.w_bytes - len;
                Telemetry.add Telemetry.Counter.Wal_records (-1);
                Telemetry.add Telemetry.Counter.Wal_bytes (-len)
              | exception _ -> t.w_torn <- true);
              err)
          | D_batch, Commit _ -> sync_now t
          | _ -> Ok ()))

(* ---------------------------------------------------------------- *)
(* Compaction                                                        *)
(* ---------------------------------------------------------------- *)

let should_compact t =
  (not t.w_closed) && t.w_segments > t.w_compact_segments

let compact t ?program ~seq facts =
  if t.w_closed then Error "wal: closed"
  else
    match
      let nseq = t.w_seg_seq + 1 in
      let final = seg_path t.w_dir nseq in
      let tmp = final ^ ".tmp" in
      let fd =
        Unix.openfile tmp
          [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ]
          0o644
      in
      let size = ref magic_len in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with _ -> ())
        (fun () ->
          write_all fd (Bytes.of_string magic) 0 magic_len;
          let put e =
            let b = encode_record e in
            write_all fd b 0 (Bytes.length b);
            size := !size + Bytes.length b
          in
          put (Anchor seq);
          (match program with Some p -> put (Rules p) | None -> ());
          List.iter
            (fun (rel, lines) ->
              if lines <> [] then
                put (Facts (rel, List.sort String.compare lines)))
            (List.sort (fun (a, _) (b, _) -> String.compare a b) facts);
          (* the snapshot must be on disk before anything older goes
             away, whatever the durability mode — unlinking is the
             irreversible step *)
          Unix.fsync fd);
      Unix.rename tmp final;
      fsync_dir t.w_dir;
      (try Unix.close t.w_fd with _ -> ());
      List.iter
        (fun (s, path) ->
          if s <> nseq then try Unix.unlink path with _ -> ())
        (list_segments t.w_dir);
      fsync_dir t.w_dir;
      t.w_fd <-
        Unix.openfile final [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CLOEXEC ] 0o644;
      t.w_seg_seq <- nseq;
      t.w_seg_bytes <- !size;
      t.w_segments <- 1;
      t.w_torn <- false;
      t.w_compactions <- t.w_compactions + 1;
      Telemetry.bump Telemetry.Counter.Wal_segments;
      Telemetry.bump Telemetry.Counter.Wal_compactions
    with
    | () -> Ok ()
    | exception e ->
      Error (Printf.sprintf "wal: compact: %s" (Printexc.to_string e))

let close t =
  if not t.w_closed then begin
    (match t.w_durability with
    | D_none -> ()
    | D_async | D_batch | D_strict -> ignore (sync_now t));
    t.w_closed <- true;
    (try Unix.close t.w_fd with _ -> ());
    drop_lock t.w_lock_fd t.w_lock_key
  end

let dir t = t.w_dir
let durability t = t.w_durability
let segments t = t.w_segments
let records t = t.w_records
let appended_bytes t = t.w_bytes
let fsyncs t = t.w_fsyncs
let compactions t = t.w_compactions
let torn t = t.w_torn
