(* Resident query server: one server domain owns everything.

   Concurrency shape (the telemetry monitor-domain idiom, grown up): the
   spawned server domain exclusively owns the listener, every session, the
   admission queue, the base-fact store and the engine generations, all
   multiplexed over a single [Unix.select].  Nothing on this path is
   synchronised because nothing is shared; the only cross-domain edges are
   the self-pipe ([stop]), the resident pool (driven only from the server
   domain), and a mutex-protected registration handshake with the
   telemetry gauge registry whose reads are racy-but-defined plain loads.

   Phases: ingest is *admitted* on the server domain (validated, appended
   to the fact store, acknowledged) and *applied* in batched writer phases
   — a generation flip re-evaluates the program over the full store and
   swaps one mutable field.  Queries are fanned out over the pool as
   concurrent reader phases against the immutable current generation, so
   the paper's all-writers-or-all-readers discipline holds by construction
   and [check_phases] can assert it never tears. *)

type config = {
  addr : Telemetry_server.addr;
  kind : Storage.kind;
  workers : int;
  flip_pending : int;
  flip_interval_ms : int;
  max_pending : int;
  max_clients : int;
  check_phases : bool;
  data_dir : string option;
  durability : Wal.durability;
  wal_segment_bytes : int;
  wal_compact_segments : int;
}

let default_config addr =
  {
    addr;
    kind = Storage.Btree;
    workers = Pool.recommended_workers ();
    flip_pending = 256;
    flip_interval_ms = 50;
    max_pending = 100_000;
    max_clients = 64;
    check_phases = false;
    data_dir = None;
    durability = Wal.D_batch;
    wal_segment_bytes = 8 * 1024 * 1024;
    wal_compact_segments = 4;
  }

(* --------------------------------------------------------------- *)
(* Per-session state (all touched only by the server domain)        *)
(* --------------------------------------------------------------- *)

(* An announced LOAD/RULES payload being consumed line by line.  The
   first error poisons the batch — remaining lines are still consumed
   (framing must survive bad content) but the whole batch is rejected,
   so a LOAD is atomic: all facts or none. *)
type payload = {
  p_kind : [ `Load of string * int (* relation, arity *) | `Rules ];
  mutable p_left : int;
  mutable p_lines : string list; (* newest first *)
  mutable p_bytes : int; (* accumulated payload bytes (unpoisoned lines) *)
  mutable p_err : (Dl_proto.err_code * string) option;
  mutable p_lineno : int;
  p_reserved : int; (* rows charged against s_reserved at admission *)
  p_t0 : int;
}

type conn = {
  c_fd : Unix.file_descr;
  c_rbuf : Buffer.t; (* unparsed input bytes *)
  c_outq : string Queue.t; (* rendered responses awaiting the socket *)
  mutable c_out_off : int; (* bytes of the queue head already written *)
  mutable c_payload : payload option;
  mutable c_alive : bool;
  mutable c_close_after_flush : bool;
}

(* Accumulated base facts of one relation, replayed into every
   generation.  Values keep their surface form; symbols are re-interned
   per generation (symbol ids are engine-local). *)
type fact_store = {
  fs_arity : int;
  mutable fs_rows : Dl_proto.value array list; (* newest first *)
  mutable fs_count : int;
}

type state = {
  s_cfg : config;
  s_lfd : Unix.file_descr;
  s_stop_rd : Unix.file_descr;
  s_pool : Pool.t;
  s_chunk : Bytes.t; (* per-server read buffer (two servers may coexist) *)
  s_conns : (Unix.file_descr, conn) Hashtbl.t;
  s_facts : (string, fact_store) Hashtbl.t;
  s_queries : (conn * string * Dl_proto.pat array * int) Queue.t;
  s_wal : Wal.t option;
  s_recovery : Wal.recovery option;
  mutable s_wal_errors : int; (* degraded-mode append/fsync failures *)
  mutable s_program_text : string option; (* installed source, for snapshots *)
  mutable s_program : Ast.program option;
  mutable s_decls : (string * int) list; (* name, arity of installed decls *)
  mutable s_gen : Engine.t option;
  mutable s_gen_seq : int;
  mutable s_stale : bool; (* program/facts newer than s_gen *)
  mutable s_pending : int; (* facts admitted since the last flip *)
  mutable s_reserved : int; (* rows of in-flight LOAD batches, pre-admission *)
  mutable s_pending_t0s : int list; (* admission stamps of pending requests *)
  mutable s_oldest_pending : int; (* ns; max_int when none *)
  mutable s_flip_failures : int; (* consecutive *)
  mutable s_retry_at : int; (* ns; no flip before this after a failure *)
  mutable s_requests : int;
  mutable s_busy : int;
  mutable s_flips : int;
  mutable s_conn_total : int;
  mutable s_phase_violations : int;
  mutable s_shutting_down : bool;
  mutable s_drain_deadline : int; (* ns; meaningful once shutting down *)
  mutable s_running : bool;
}

(* --------------------------------------------------------------- *)
(* Gauge registry handshake (the only cross-domain shared state)    *)
(* --------------------------------------------------------------- *)

(* [register_gauges] appends, so register once and route through a slot
   holding the current server; the provider's field reads are racy
   plain loads of ints, the documented gauge contract. *)
let gauge_mutex = Mutex.create ()
let gauge_slot : state option ref = ref None
let gauges_registered = ref false

let read_gauge_slot () = Mutex.protect gauge_mutex (fun () -> !gauge_slot)

let install_gauges st =
  Mutex.protect gauge_mutex (fun () ->
      gauge_slot := Some st;
      if not !gauges_registered then begin
        gauges_registered := true;
        Telemetry_server.register_gauges "dl_server" (fun () ->
            match read_gauge_slot () with
            | None -> []
            | Some st ->
              [
                ("pending_ingest", float_of_int st.s_pending);
                ("reserved_ingest", float_of_int st.s_reserved);
                ("queued_queries", float_of_int (Queue.length st.s_queries));
                ("clients", float_of_int (Hashtbl.length st.s_conns));
                ("generation", float_of_int st.s_gen_seq);
                ("flips", float_of_int st.s_flips);
                ("busy_rejections", float_of_int st.s_busy);
                ("phase_violations", float_of_int st.s_phase_violations);
              ])
      end)

(* Two servers may coexist (the slot routes to whichever registered
   last); only clear it if it still points at the state being cleaned
   up, so stopping one server cannot disable the survivor's gauges. *)
let clear_gauges st =
  Mutex.protect gauge_mutex (fun () ->
      match !gauge_slot with
      | Some cur when cur == st -> gauge_slot := None
      | _ -> ())

(* --------------------------------------------------------------- *)
(* Session plumbing                                                 *)
(* --------------------------------------------------------------- *)

let close_conn st c =
  if c.c_alive then begin
    c.c_alive <- false;
    (match c.c_payload with
    | Some p ->
      (* a session dropped mid-LOAD must give back its admission hold *)
      st.s_reserved <- st.s_reserved - p.p_reserved;
      c.c_payload <- None
    | None -> ());
    Hashtbl.remove st.s_conns c.c_fd;
    try Unix.close c.c_fd with _ -> ()
  end

(* Opportunistic nonblocking flush; what the kernel will not take now is
   retried when select reports the socket writable. *)
let[@lint.dispatch
    "writeback dispatch point of the select loop: nonblocking sends, \
     EWOULDBLOCK re-queues"] rec flush_conn st c =
  if c.c_alive then
    if Queue.is_empty c.c_outq then begin
      if c.c_close_after_flush then close_conn st c
    end
    else
      let head = Queue.peek c.c_outq in
      let len = String.length head - c.c_out_off in
      match Unix.write_substring c.c_fd head c.c_out_off len with
      | n when n = len ->
        ignore (Queue.pop c.c_outq);
        c.c_out_off <- 0;
        flush_conn st c
      | n -> c.c_out_off <- c.c_out_off + n
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> flush_conn st c
      | exception _ -> close_conn st c

let respond st c resp =
  if c.c_alive then begin
    let buf = Buffer.create 128 in
    Dl_proto.render buf resp;
    Queue.add (Buffer.contents buf) c.c_outq;
    flush_conn st c
  end

let reject_busy st c msg =
  st.s_busy <- st.s_busy + 1;
  Telemetry.bump Telemetry.Counter.Server_busy_rejections;
  respond st c (Dl_proto.R_err (Dl_proto.E_busy, msg))

(* --------------------------------------------------------------- *)
(* Durability (write-ahead log)                                     *)
(* --------------------------------------------------------------- *)

(* Write-through before acknowledging an admission.  The ack contract
   is per durability mode: under strict a failed append/fsync must
   refuse the request (the ack would be a durability lie); under the
   weaker modes the failure is counted and service continues degraded
   — recovery still replays every record that did reach the disk. *)
let wal_admit st e =
  match st.s_wal with
  | None -> Ok ()
  | Some w -> (
    match Wal.append w e with
    | Ok () -> Ok ()
    | Error msg ->
      st.s_wal_errors <- st.s_wal_errors + 1;
      if Wal.durability w = Wal.D_strict then
        Error (Dl_proto.E_internal, "durability failure: " ^ msg)
      else Ok ())

let fact_line vals =
  String.concat " "
    (Array.to_list (Array.map Dl_proto.value_to_string vals))

(* Rows of one relation in admission order, protocol surface form —
   what a snapshot segment stores (fs_rows is newest first). *)
let store_lines fs = List.rev_map fact_line fs.fs_rows

(* After a successful flip: mark the group-commit point (the fsync that
   makes everything admitted before this flip durable under batch), and
   compact once the log outgrows a few segments — the flip boundary is
   the one moment the in-memory store and the committed state agree
   exactly, so the snapshot is trivially consistent. *)
let wal_flip st =
  match st.s_wal with
  | None -> ()
  | Some w ->
    (match Wal.append w (Wal.Commit st.s_gen_seq) with
    | Ok () -> ()
    | Error _ -> st.s_wal_errors <- st.s_wal_errors + 1);
    if Wal.should_compact w then begin
      let facts =
        Hashtbl.fold (fun rel fs acc -> (rel, store_lines fs) :: acc)
          st.s_facts []
      in
      match
        Wal.compact w ?program:st.s_program_text ~seq:st.s_gen_seq facts
      with
      | Ok () -> ()
      | Error _ -> st.s_wal_errors <- st.s_wal_errors + 1
    end

(* --------------------------------------------------------------- *)
(* Generation flips (writer phases)                                 *)
(* --------------------------------------------------------------- *)

let build_generation st prog =
  let e =
    Engine.create ~kind:st.s_cfg.kind ~check_phases:st.s_cfg.check_phases prog
  in
  Hashtbl.iter
    (fun rel fs ->
      let tuples = Array.make fs.fs_count [||] in
      let i = ref 0 in
      List.iter
        (fun vals ->
          tuples.(!i) <-
            Array.map
              (function
                | Dl_proto.V_int v -> v
                | Dl_proto.V_sym s -> Engine.intern e s)
              vals;
          incr i)
        fs.fs_rows;
      Engine.add_fact_run e rel tuples)
    st.s_facts;
  Engine.run e st.s_pool;
  e

let fail_waiting_queries st msg =
  Queue.iter
    (fun (c, _, _, _) -> respond st c (Dl_proto.R_err (Dl_proto.E_internal, msg)))
    st.s_queries;
  Queue.clear st.s_queries

let[@lint.dispatch
    "phase-flip dispatch point of the select loop: evaluation and WAL \
     sync are the loop's job between selects"] do_flip st =
  match st.s_program with
  | None -> ()
  | Some prog -> (
    let t0 = Telemetry.now_ns () in
    match build_generation st prog with
    | e ->
      let now = Telemetry.now_ns () in
      st.s_gen <- Some e;
      st.s_gen_seq <- st.s_gen_seq + 1;
      st.s_stale <- false;
      st.s_flips <- st.s_flips + 1;
      st.s_flip_failures <- 0;
      st.s_retry_at <- 0;
      Telemetry.bump Telemetry.Counter.Server_phase_flips;
      Telemetry.hist_record Telemetry.Hist.Server_flip_ns (now - t0);
      List.iter
        (fun a -> Telemetry.hist_record Telemetry.Hist.Server_ingest_ns (now - a))
        st.s_pending_t0s;
      st.s_pending <- 0;
      st.s_pending_t0s <- [];
      st.s_oldest_pending <- max_int;
      wal_flip st
    | exception e ->
      (* Contained: the previous generation keeps serving, the admitted
         facts stay in the store, and the flip retries on the next
         trigger.  After a few consecutive failures the waiting queries
         are failed rather than starved forever. *)
      (match e with
      | Storage.Index.Phase_violation _ ->
        st.s_phase_violations <- st.s_phase_violations + 1
      | _ -> ());
      st.s_flip_failures <- st.s_flip_failures + 1;
      (* back off so an armed chaos point cannot hot-spin the loop *)
      st.s_retry_at <-
        Telemetry.now_ns () + (st.s_cfg.flip_interval_ms * 1_000_000);
      if st.s_flip_failures >= 3 then begin
        fail_waiting_queries st
          (Printf.sprintf "evaluation failing (%d attempts): %s"
             st.s_flip_failures (Printexc.to_string e));
        st.s_flip_failures <- 0
      end)

let flip_due st now =
  st.s_program <> None
  && (st.s_stale || st.s_pending > 0)
  && now >= st.s_retry_at
  && (st.s_gen = None || st.s_shutting_down
     || st.s_pending >= st.s_cfg.flip_pending
     || (not (Queue.is_empty st.s_queries))
     || st.s_pending > 0
        && now - st.s_oldest_pending
           >= st.s_cfg.flip_interval_ms * 1_000_000)

(* --------------------------------------------------------------- *)
(* Query execution (reader phases)                                  *)
(* --------------------------------------------------------------- *)

(* A resolved pattern field: symbols interned on the server domain
   (symtab mutation is not thread-safe) before fanning out; a symbol the
   generation never saw matches nothing, which interning expresses
   naturally (a fresh id no tuple contains). *)

let decl_arity st rel = List.assoc_opt rel st.s_decls

let row_to_string tup =
  String.concat "\t" (Array.to_list (Array.map string_of_int tup))

let[@lint.dispatch
    "query dispatch point of the select loop: fans read-only queries out \
     to the worker pool between selects"] run_queries st =
  match st.s_gen with
  | Some gen when (not st.s_stale) && not (Queue.is_empty st.s_queries) ->
    let qs = Array.of_seq (Queue.to_seq st.s_queries) in
    Queue.clear st.s_queries;
    let k = Array.length qs in
    (* Resolve relations and patterns sequentially on the server domain;
       workers then touch only immutable relation structure.  A query was
       validated at admission, but a RULES install does not flush the
       queue — the relation may have been dropped or re-declared at a
       different arity since, so re-validate against the *current* decls
       here and answer a structured error rather than let a raised
       [Engine.relation] kill the server domain. *)
    let resolved =
      Array.map
        (fun (_, rel, pats, _) ->
          match decl_arity st rel with
          | None -> Error (Dl_proto.E_relation, "unknown relation " ^ rel)
          | Some arity when Array.length pats <> arity ->
            Error
              ( Dl_proto.E_arity,
                Printf.sprintf "%d pattern fields, %s has arity %d"
                  (Array.length pats) rel arity )
          | Some _ -> (
            match Engine.relation gen rel with
            | r ->
              let ipats =
                Array.map
                  (function
                    | Dl_proto.P_any -> None
                    | Dl_proto.P_val (Dl_proto.V_int v) -> Some v
                    | Dl_proto.P_val (Dl_proto.V_sym s) ->
                      Some (Engine.intern gen s))
                  pats
              in
              Ok (r, ipats)
            | exception _ ->
              Error (Dl_proto.E_relation, "unknown relation " ^ rel)))
        qs
    in
    let slots =
      Array.map
        (function Error (c, m) -> `Reject (c, m) | Ok _ -> `Unrun)
        resolved
    in
    let run_one i =
      match resolved.(i) with
      | Error _ -> ()
      | Ok (r, ipats) -> (
        match
          let reader = Relation.begin_read r in
          Fun.protect
            ~finally:(fun () -> Relation.Reader.finish reader)
            (fun () ->
              let rows = ref [] in
              let n = ref 0 in
              Relation.Reader.scan reader (-1) [||] (fun tup ->
                  let ok = ref true in
                  Array.iteri
                    (fun j p ->
                      match p with
                      | Some v when tup.(j) <> v -> ok := false
                      | _ -> ())
                    ipats;
                  if !ok then begin
                    rows := row_to_string tup :: !rows;
                    incr n
                  end);
              (List.rev !rows, !n))
        with
        | rows, n -> slots.(i) <- `Rows (rows, n)
        | exception Storage.Index.Phase_violation m -> slots.(i) <- `Violation m
        | exception e -> slots.(i) <- `Failed (Printexc.to_string e))
    in
    (* Fan out: each worker takes a strided slice; slot writes are
       disjoint plain writes, joined by Pool.run before anyone reads. *)
    (try
       Pool.run st.s_pool ~label:"serve.query" (fun w ->
           let i = ref w in
           let stride = Pool.size st.s_pool in
           while !i < k do
             run_one !i;
             i := !i + stride
           done)
     with Pool.Pool_failure _ -> ());
    let now = Telemetry.now_ns () in
    Array.iteri
      (fun i slot ->
        let c, rel, _, t0 = qs.(i) in
        Telemetry.hist_record Telemetry.Hist.Server_query_ns (now - t0);
        match slot with
        | `Rows (rows, n) ->
          respond st c
            (Dl_proto.R_data
               ( Printf.sprintf "%s rows=%d gen=%d" rel n st.s_gen_seq,
                 rows ))
        | `Reject (code, msg) -> respond st c (Dl_proto.R_err (code, msg))
        | `Violation m ->
          st.s_phase_violations <- st.s_phase_violations + 1;
          respond st c
            (Dl_proto.R_err (Dl_proto.E_internal, "phase violation: " ^ m))
        | `Failed m -> respond st c (Dl_proto.R_err (Dl_proto.E_internal, m))
        | `Unrun ->
          respond st c
            (Dl_proto.R_err (Dl_proto.E_internal, "query worker died")))
      slots
  | _ -> ()

(* --------------------------------------------------------------- *)
(* Request handling                                                 *)
(* --------------------------------------------------------------- *)

let stats_response st =
  let lines =
    [
      "proto=" ^ Dl_proto.version;
      Printf.sprintf "program=%s"
        (match st.s_program with Some _ -> "installed" | None -> "none");
      Printf.sprintf "generation=%d" st.s_gen_seq;
      Printf.sprintf "stale=%b" st.s_stale;
      Printf.sprintf "pending_ingest=%d" st.s_pending;
      Printf.sprintf "reserved_ingest=%d" st.s_reserved;
      Printf.sprintf "queued_queries=%d" (Queue.length st.s_queries);
      Printf.sprintf "clients=%d" (Hashtbl.length st.s_conns);
      Printf.sprintf "conns_total=%d" st.s_conn_total;
      Printf.sprintf "requests=%d" st.s_requests;
      Printf.sprintf "busy_rejections=%d" st.s_busy;
      Printf.sprintf "flips=%d" st.s_flips;
      Printf.sprintf "flip_failures=%d" st.s_flip_failures;
      Printf.sprintf "phase_violations=%d" st.s_phase_violations;
      Printf.sprintf "workers=%d" (Pool.size st.s_pool);
      Printf.sprintf "storage=%s" (Storage.kind_name st.s_cfg.kind);
    ]
  in
  let wal_lines =
    match st.s_wal with
    | None -> [ "durability=off" ]
    | Some w ->
      [
        "durability=" ^ Wal.durability_name (Wal.durability w);
        "wal_dir=" ^ Wal.dir w;
        Printf.sprintf "wal_segments=%d" (Wal.segments w);
        Printf.sprintf "wal_records=%d" (Wal.records w);
        Printf.sprintf "wal_bytes=%d" (Wal.appended_bytes w);
        Printf.sprintf "wal_fsyncs=%d" (Wal.fsyncs w);
        Printf.sprintf "wal_compactions=%d" (Wal.compactions w);
        Printf.sprintf "wal_errors=%d" st.s_wal_errors;
        Printf.sprintf "wal_torn=%b" (Wal.torn w);
      ]
      @ (match st.s_recovery with
        | None -> []
        | Some rv ->
          [
            Printf.sprintf "recovered_records=%d" rv.Wal.rv_records;
            Printf.sprintf "recovered_segments=%d" rv.Wal.rv_segments;
            Printf.sprintf "recovered_bytes=%d" rv.Wal.rv_bytes;
            Printf.sprintf "recovered_commit_seq=%d" rv.Wal.rv_committed_seq;
            Printf.sprintf "recovered_torn_tail=%b" rv.Wal.rv_torn_tail;
          ])
  in
  let lines = lines @ wal_lines in
  let rels =
    match st.s_gen with
    | None -> []
    | Some gen ->
      (* quiescent: the server domain is between phases here *)
      List.map
        (fun r ->
          Printf.sprintf "rel.%s=%d" r
            (Relation.cardinal (Engine.relation gen r)))
        (Engine.relations gen)
  in
  Dl_proto.R_data ("server stats", lines @ rels)

(* [t0] is the admission stamp of the ingest request; the flip records
   admission-to-applied latency from it. *)
let admit_ingest st rows_count t0 =
  st.s_pending <- st.s_pending + rows_count;
  st.s_pending_t0s <- t0 :: st.s_pending_t0s;
  if st.s_oldest_pending = max_int then st.s_oldest_pending <- t0;
  st.s_stale <- true

let store_for st rel arity =
  match Hashtbl.find_opt st.s_facts rel with
  | Some fs -> fs
  | None ->
    let fs = { fs_arity = arity; fs_rows = []; fs_count = 0 } in
    Hashtbl.add st.s_facts rel fs;
    fs

let install_program st prog text_rules =
  st.s_program <- Some prog;
  st.s_decls <-
    List.map (fun d -> (d.Ast.name, d.Ast.arity)) prog.Ast.decls;
  (* keep base facts whose relation survived the program change *)
  let kept = ref 0 and dropped = ref 0 in
  let stale_rels =
    Hashtbl.fold
      (fun rel fs acc ->
        match decl_arity st rel with
        | Some a when a = fs.fs_arity ->
          kept := !kept + fs.fs_count;
          acc
        | _ ->
          dropped := !dropped + fs.fs_count;
          rel :: acc)
      st.s_facts []
  in
  List.iter (fun rel -> Hashtbl.remove st.s_facts rel) stale_rels;
  st.s_gen <- None;
  st.s_stale <- true;
  Printf.sprintf "program installed rels=%d rules=%d kept_facts=%d \
                  dropped_facts=%d"
    (List.length prog.Ast.decls) text_rules !kept !dropped

let finish_rules st c p =
  match p.p_err with
  | Some (code, msg) -> respond st c (Dl_proto.R_err (code, msg))
  | None -> (
    let text = String.concat "\n" (List.rev p.p_lines) ^ "\n" in
    match Parser.parse_string ~filename:"<rules>" text with
    | exception Parser.Syntax_error { line; col; message } ->
      respond st c
        (Dl_proto.R_err
           ( Dl_proto.E_program,
             Printf.sprintf "syntax error at %d:%d: %s" line col message ))
    | prog -> (
      (* probe-compile so static errors surface here, not at flip time *)
      match Engine.create ~kind:st.s_cfg.kind prog with
      | exception Plan.Compile_error msg ->
        respond st c (Dl_proto.R_err (Dl_proto.E_program, msg))
      | exception Stratify.Not_stratifiable msg ->
        respond st c
          (Dl_proto.R_err (Dl_proto.E_program, "not stratifiable: " ^ msg))
      | exception e ->
        respond st c
          (Dl_proto.R_err (Dl_proto.E_program, Printexc.to_string e))
      | _probe -> (
        (* log the install before mutating state: replay must see the
           program change exactly where admissions saw it *)
        match wal_admit st (Wal.Rules text) with
        | Error (code, msg) -> respond st c (Dl_proto.R_err (code, msg))
        | Ok () ->
          let info = install_program st prog (List.length prog.Ast.rules) in
          st.s_program_text <- Some text;
          respond st c (Dl_proto.R_ok info))))

let finish_load st c p rel arity =
  match p.p_err with
  | Some (code, msg) -> respond st c (Dl_proto.R_err (code, msg))
  | None ->
    let rows = List.rev p.p_lines in
    let parsed = ref [] in
    let n = ref 0 in
    let err = ref None in
    List.iteri
      (fun i line ->
        if !err = None then
          match Dl_proto.parse_fact line with
          | Error m ->
            err := Some (Printf.sprintf "fact %d: %s" (i + 1) m)
          | Ok vals when Array.length vals <> arity ->
            err :=
              Some
                (Printf.sprintf "fact %d: %d fields, %s has arity %d" (i + 1)
                   (Array.length vals) rel arity)
          | Ok vals ->
            parsed := vals :: !parsed;
            incr n)
      rows;
    (match !err with
    | Some m -> respond st c (Dl_proto.R_err (Dl_proto.E_parse, m))
    | None -> (
      match
        if !n > 0 then wal_admit st (Wal.Facts (rel, rows)) else Ok ()
      with
      | Error (code, msg) -> respond st c (Dl_proto.R_err (code, msg))
      | Ok () ->
        let fs = store_for st rel arity in
        fs.fs_rows <- List.rev_append !parsed fs.fs_rows;
        fs.fs_count <- fs.fs_count + !n;
        if !n > 0 then admit_ingest st !n p.p_t0;
        respond st c
          (Dl_proto.R_ok
             (Printf.sprintf "queued=%d pending=%d" !n st.s_pending))))

let finish_payload st c p =
  c.c_payload <- None;
  (* the admission hold converts into real pending (on success, inside
     [finish_load]) or evaporates (rejected/poisoned batch) *)
  st.s_reserved <- st.s_reserved - p.p_reserved;
  match p.p_kind with
  | `Rules -> finish_rules st c p
  | `Load (rel, arity) -> finish_load st c p rel arity

let payload_line st c p line =
  p.p_left <- p.p_left - 1;
  p.p_lineno <- p.p_lineno + 1;
  (* poisoning drops what was buffered: a rejected batch must not keep
     holding its lines while framing drains the remainder *)
  let poison code msg =
    p.p_err <- Some (code, msg);
    p.p_lines <- []
  in
  (match p.p_err with
  | Some _ -> () (* poisoned: consume for framing only *)
  | None when String.length line > Dl_proto.max_line ->
    poison Dl_proto.E_proto
      (Printf.sprintf "payload line %d exceeds %d bytes" p.p_lineno
         Dl_proto.max_line)
  | None when p.p_bytes + String.length line > Dl_proto.max_batch_bytes ->
    poison Dl_proto.E_proto
      (Printf.sprintf "batch exceeds %d payload bytes" Dl_proto.max_batch_bytes)
  | None ->
    p.p_bytes <- p.p_bytes + String.length line;
    p.p_lines <- line :: p.p_lines);
  if p.p_left <= 0 then finish_payload st c p

(* Admission checks shared by the ingest verbs; [Error] is the rejection
   to send (or to poison a payload with). *)
let check_ingest st rel n =
  if Chaos.fire Chaos.Point.Server_phase_busy then
    Error (Dl_proto.E_busy, "chaos drill: writer phase saturated, retry")
  else if st.s_pending + st.s_reserved + n > st.s_cfg.max_pending then
    Error
      ( Dl_proto.E_busy,
        Printf.sprintf "pending ingest at cap (%d), retry after a flip"
          st.s_cfg.max_pending )
  else
    match st.s_program with
    | None -> Error (Dl_proto.E_no_program, "no program installed (use RULES)")
    | Some _ -> (
      match decl_arity st rel with
      | None -> Error (Dl_proto.E_relation, "unknown relation " ^ rel)
      | Some arity -> Ok arity)

let handle_request st c line =
  st.s_requests <- st.s_requests + 1;
  Telemetry.bump Telemetry.Counter.Server_requests;
  if st.s_shutting_down then
    respond st c (Dl_proto.R_err (Dl_proto.E_shutdown, "server is draining"))
  else
    match Dl_proto.parse_request line with
    | Error msg -> respond st c (Dl_proto.R_err (Dl_proto.E_parse, msg))
    | Ok (Dl_proto.Hello v) ->
      if v = Dl_proto.version then respond st c (Dl_proto.R_ok Dl_proto.version)
      else
        respond st c
          (Dl_proto.R_err
             ( Dl_proto.E_proto,
               Printf.sprintf "unsupported protocol %S (speak %s)" v
                 Dl_proto.version ))
    | Ok Dl_proto.Ping -> respond st c (Dl_proto.R_ok "pong")
    | Ok Dl_proto.Stats -> respond st c (stats_response st)
    | Ok Dl_proto.Shutdown ->
      st.s_shutting_down <- true;
      st.s_drain_deadline <- Telemetry.now_ns () + 2_000_000_000;
      respond st c (Dl_proto.R_ok "draining")
    | Ok (Dl_proto.Rules n) ->
      let p =
        {
          p_kind = `Rules;
          p_left = n;
          p_lines = [];
          p_bytes = 0;
          p_err = None;
          p_lineno = 0;
          p_reserved = 0;
          p_t0 = Telemetry.now_ns ();
        }
      in
      c.c_payload <- Some p;
      if n = 0 then finish_payload st c p
    | Ok (Dl_proto.Load (rel, n)) ->
      let t0 = Telemetry.now_ns () in
      (* Reserve the announced rows against the admission cap now, not at
         batch completion: traffic interleaved between the header and its
         last payload line must not push pending past [max_pending].  The
         hold is released in [finish_payload] / [close_conn]. *)
      let kind, err, reserved =
        match check_ingest st rel n with
        | Ok arity ->
          st.s_reserved <- st.s_reserved + n;
          (`Load (rel, arity), None, n)
        | Error (code, msg) ->
          if code = Dl_proto.E_busy then begin
            st.s_busy <- st.s_busy + 1;
            Telemetry.bump Telemetry.Counter.Server_busy_rejections
          end;
          (`Load (rel, -1), Some (code, msg), 0)
      in
      let p =
        {
          p_kind = kind;
          p_left = n;
          p_lines = [];
          p_bytes = 0;
          p_err = err;
          p_lineno = 0;
          p_reserved = reserved;
          p_t0 = t0;
        }
      in
      c.c_payload <- Some p;
      if n = 0 then finish_payload st c p
    | Ok (Dl_proto.Assert_ (rel, vals)) -> (
      match check_ingest st rel 1 with
      | Error (code, msg) ->
        if code = Dl_proto.E_busy then reject_busy st c msg
        else respond st c (Dl_proto.R_err (code, msg))
      | Ok arity ->
        if Array.length vals <> arity then
          respond st c
            (Dl_proto.R_err
               ( Dl_proto.E_arity,
                 Printf.sprintf "%d fields, %s has arity %d"
                   (Array.length vals) rel arity ))
        else
          match wal_admit st (Wal.Facts (rel, [ fact_line vals ])) with
          | Error (code, msg) -> respond st c (Dl_proto.R_err (code, msg))
          | Ok () ->
            let fs = store_for st rel arity in
            fs.fs_rows <- vals :: fs.fs_rows;
            fs.fs_count <- fs.fs_count + 1;
            admit_ingest st 1 (Telemetry.now_ns ());
            respond st c
              (Dl_proto.R_ok
                 (Printf.sprintf "queued=1 pending=%d" st.s_pending)))
    | Ok (Dl_proto.Query (rel, pats)) -> (
      if Chaos.fire Chaos.Point.Server_phase_busy then
        reject_busy st c "chaos drill: reader phase saturated, retry"
      else if Queue.length st.s_queries >= st.s_cfg.max_clients * 4 then
        reject_busy st c "query queue at cap, retry"
      else
        match st.s_program with
        | None ->
          respond st c
            (Dl_proto.R_err
               (Dl_proto.E_no_program, "no program installed (use RULES)"))
        | Some _ -> (
          match decl_arity st rel with
          | None ->
            respond st c
              (Dl_proto.R_err (Dl_proto.E_relation, "unknown relation " ^ rel))
          | Some arity when Array.length pats <> arity ->
            respond st c
              (Dl_proto.R_err
                 ( Dl_proto.E_arity,
                   Printf.sprintf "%d pattern fields, %s has arity %d"
                     (Array.length pats) rel arity ))
          | Some _ ->
            Queue.add (c, rel, pats, Telemetry.now_ns ()) st.s_queries))

(* --------------------------------------------------------------- *)
(* Input plumbing                                                   *)
(* --------------------------------------------------------------- *)

let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let process_buffer st c =
  let data = Buffer.contents c.c_rbuf in
  Buffer.clear c.c_rbuf;
  let n = String.length data in
  let pos = ref 0 in
  (* consume complete lines; the tail (no newline yet) stays buffered *)
  let continue = ref true in
  while !continue && !pos < n do
    match String.index_from_opt data !pos '\n' with
    | None ->
      Buffer.add_substring c.c_rbuf data !pos (n - !pos);
      continue := false
    | Some nl ->
      let line = strip_cr (String.sub data !pos (nl - !pos)) in
      pos := nl + 1;
      if c.c_alive then begin
        match c.c_payload with
        | Some p -> payload_line st c p line
        | None ->
          if String.length line > Dl_proto.max_line then begin
            respond st c
              (Dl_proto.R_err (Dl_proto.E_proto, "request line too long"));
            c.c_close_after_flush <- true;
            continue := false
          end
          else handle_request st c line
      end
  done;
  (* a partial line is bounded too: a peer streaming an endless line
     must not balloon the buffer *)
  if c.c_alive && Buffer.length c.c_rbuf > Dl_proto.max_line then begin
    respond st c (Dl_proto.R_err (Dl_proto.E_proto, "request line too long"));
    c.c_close_after_flush <- true;
    Buffer.clear c.c_rbuf
  end

let[@lint.dispatch
    "session-read dispatch point of the select loop: reads only fds the \
     select reported readable"] handle_readable st c =
  if c.c_alive then
    if Chaos.fire Chaos.Point.Server_conn_drop then close_conn st c
    else
      match Unix.read c.c_fd st.s_chunk 0 (Bytes.length st.s_chunk) with
      | 0 -> close_conn st c
      | n ->
        Buffer.add_subbytes c.c_rbuf st.s_chunk 0 n;
        process_buffer st c
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
        ()
      | exception _ -> close_conn st c

let[@lint.dispatch
    "accept dispatch point of the select loop: accepts only when the \
     listener polled readable"] accept_ready st =
  let rec go () =
    match Unix.accept ~cloexec:true st.s_lfd with
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
      ()
    | exception _ -> ()
    | fd, _peer ->
      let refuse line =
        (try ignore (Unix.write_substring fd line 0 (String.length line))
         with _ -> ());
        try Unix.close fd with _ -> ()
      in
      (if st.s_shutting_down then
         refuse "ERR shutdown server is draining\n"
       else if Hashtbl.length st.s_conns >= st.s_cfg.max_clients then begin
         st.s_busy <- st.s_busy + 1;
         Telemetry.bump Telemetry.Counter.Server_busy_rejections;
         refuse "ERR busy too many clients\n"
       end
       else begin
         (try Unix.set_nonblock fd with _ -> ());
         let c =
           {
             c_fd = fd;
             c_rbuf = Buffer.create 256;
             c_outq = Queue.create ();
             c_out_off = 0;
             c_payload = None;
             c_alive = true;
             c_close_after_flush = false;
           }
         in
         Hashtbl.replace st.s_conns fd c;
         st.s_conn_total <- st.s_conn_total + 1;
         Telemetry.bump Telemetry.Counter.Server_conns;
         Queue.add (Dl_proto.greeting ^ "\n") c.c_outq;
         flush_conn st c
       end);
      go ()
  in
  go ()

(* --------------------------------------------------------------- *)
(* The server loop                                                  *)
(* --------------------------------------------------------------- *)

let conn_list st = Hashtbl.fold (fun _ c acc -> c :: acc) st.s_conns []

let select_timeout st now =
  if st.s_shutting_down then 0.05
  else if st.s_pending > 0 && st.s_oldest_pending < max_int then begin
    let deadline =
      (* a post-failure backoff supersedes the age trigger *)
      max
        (st.s_oldest_pending + (st.s_cfg.flip_interval_ms * 1_000_000))
        st.s_retry_at
    in
    let left = deadline - now in
    if left <= 0 then 0.0 else Float.min 0.25 (float_of_int left /. 1e9)
  end
  else 0.25

let rec server_loop st =
  if st.s_running then begin
    let now = Telemetry.now_ns () in
    if flip_due st now then do_flip st;
    run_queries st;
    let conns = conn_list st in
    List.iter (fun c -> flush_conn st c) conns;
    let conns = conn_list st in
    let rds =
      st.s_lfd :: st.s_stop_rd :: List.map (fun c -> c.c_fd) conns
    in
    let wrs =
      List.filter_map
        (fun c -> if Queue.is_empty c.c_outq then None else Some c.c_fd)
        conns
    in
    let timeout = select_timeout st now in
    let rd, wr, _ =
      try Unix.select rds wrs [] timeout
      with
      | Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      | Unix.Unix_error (Unix.EBADF, _, _) -> ([], [], [])
    in
    if List.mem st.s_stop_rd rd then begin
      (try
       ignore
         (Unix.read st.s_stop_rd (Bytes.create 1) 0 1
         [@lint.allow
           "select-loop-purity: one-byte self-pipe drain; the fd polled \
            readable in this very select"])
     with _ -> ());
      st.s_shutting_down <- true;
      st.s_drain_deadline <- Telemetry.now_ns () + 2_000_000_000
    end;
    if List.mem st.s_lfd rd then accept_ready st;
    List.iter
      (fun c -> if List.mem c.c_fd rd then handle_readable st c)
      conns;
    List.iter (fun c -> if List.mem c.c_fd wr then flush_conn st c) conns;
    (if st.s_shutting_down then begin
       (* flush pending answers (final flip + queries ran above), then
          leave once every session drained or the grace period lapsed *)
       let drained =
         Hashtbl.fold
           (fun _ c acc -> acc && Queue.is_empty c.c_outq)
           st.s_conns true
       in
       if
         (drained
         && Queue.is_empty st.s_queries
         && (st.s_pending = 0 || st.s_program = None))
         || Telemetry.now_ns () > st.s_drain_deadline
       then st.s_running <- false
     end);
    server_loop st
  end

let server_cleanup st unlink_path =
  List.iter (fun c -> close_conn st c) (conn_list st);
  (try Unix.close st.s_lfd with _ -> ());
  (match unlink_path with
  | Some p -> ( try Unix.unlink p with _ -> ())
  | None -> ());
  (* flush acked-but-unsynced records and release the data-dir lock —
     the graceful-shutdown path (SHUTDOWN verb, SIGTERM/SIGINT via
     [signal_stop]) leaves a clean, immediately recoverable log *)
  (match st.s_wal with Some w -> Wal.close w | None -> ());
  clear_gauges st;
  Pool.shutdown st.s_pool

(* --------------------------------------------------------------- *)
(* Lifecycle                                                        *)
(* --------------------------------------------------------------- *)

type t = {
  t_bound : Telemetry_server.addr;
  t_stop_rd : Unix.file_descr;
  t_stop_wr : Unix.file_descr;
  t_dom : unit Domain.t;
  mutable t_joined : bool;
}

let resolve_host h =
  try Unix.inet_addr_of_string h
  with _ -> (
    try (Unix.gethostbyname h).Unix.h_addr_list.(0)
    with _ -> failwith ("cannot resolve host " ^ h))

let bind_listen addr =
  match addr with
  | Telemetry_server.Tcp (host, port) ->
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt fd Unix.SO_REUSEADDR true;
       Unix.bind fd (Unix.ADDR_INET (resolve_host host, port));
       Unix.listen fd 64;
       let bound =
         match Unix.getsockname fd with
         | Unix.ADDR_INET (_, p) -> Telemetry_server.Tcp (host, p)
         | _ -> addr
       in
       (fd, bound, None)
     with e ->
       (try Unix.close fd with _ -> ());
       raise e)
  | Telemetry_server.Unix_sock path ->
    (try if Sys.file_exists path then Unix.unlink path with _ -> ());
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try
       Unix.bind fd (Unix.ADDR_UNIX path);
       Unix.listen fd 64;
       (fd, addr, Some path)
     with e ->
       (try Unix.close fd with _ -> ());
       raise e)

(* Fold one recovered WAL record into pre-serve state.  Only content the
   live admission path validated is ever logged, so a failure here means
   the log is inconsistent with the running binary (or corruption slid
   past the CRC) — the caller refuses to serve rather than guess. *)
let[@lint.allow
    "wal-before-ack: recovery replays entries that are already in the \
     WAL; re-appending them would duplicate the log"] replay_entry st e =
  match e with
  | Wal.Anchor seq ->
    (* a snapshot supersedes everything replayed so far *)
    st.s_program <- None;
    st.s_program_text <- None;
    st.s_decls <- [];
    Hashtbl.reset st.s_facts;
    st.s_gen_seq <- max st.s_gen_seq seq;
    Ok ()
  | Wal.Commit seq ->
    st.s_gen_seq <- max st.s_gen_seq seq;
    Ok ()
  | Wal.Rules text -> (
    match Parser.parse_string ~filename:"<wal>" text with
    | exception Parser.Syntax_error { line; col; message } ->
      Error
        (Printf.sprintf "logged program does not parse (%d:%d: %s)" line col
           message)
    | exception e -> Error (Printexc.to_string e)
    | prog ->
      ignore (install_program st prog (List.length prog.Ast.rules));
      st.s_program_text <- Some text;
      Ok ())
  | Wal.Facts (rel, lines) -> (
    match decl_arity st rel with
    | None ->
      Error (Printf.sprintf "logged facts for undeclared relation %s" rel)
    | Some arity -> (
      let fs = store_for st rel arity in
      let bad = ref None in
      List.iter
        (fun line ->
          if !bad = None then
            match Dl_proto.parse_fact line with
            | Error m ->
              bad := Some (Printf.sprintf "logged fact %S: %s" line m)
            | Ok vals when Array.length vals <> arity ->
              bad :=
                Some
                  (Printf.sprintf "logged fact %S: %d fields, %s has arity %d"
                     line (Array.length vals) rel arity)
            | Ok vals ->
              fs.fs_rows <- vals :: fs.fs_rows;
              fs.fs_count <- fs.fs_count + 1)
        lines;
      match !bad with None -> Ok () | Some m -> Error m))

let replay_recovery st rv =
  let rec go = function
    | [] ->
      (* serve the recovered state: the first loop iteration evaluates
         one writer phase before any query can be answered *)
      if st.s_program <> None then st.s_stale <- true;
      Ok ()
    | e :: rest -> ( match replay_entry st e with Ok () -> go rest | err -> err)
  in
  go rv.Wal.rv_entries

let start cfg =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  (* recover the WAL first: a lock conflict or corrupt log must fail
     before the listen address is taken over *)
  let wal =
    match cfg.data_dir with
    | None -> Ok None
    | Some dir -> (
      match
        Wal.open_dir ~segment_bytes:cfg.wal_segment_bytes
          ~compact_segments:cfg.wal_compact_segments
          ~durability:cfg.durability dir
      with
      | Ok (w, rv) -> Ok (Some (w, rv))
      | Error msg -> Error msg)
  in
  match wal with
  | Error msg -> Error ("datalog server: " ^ msg)
  | Ok wal -> (
    let close_wal () =
      match wal with Some (w, _) -> Wal.close w | None -> ()
    in
    match bind_listen cfg.addr with
    | exception e ->
      close_wal ();
      Error
        (Printf.sprintf "datalog server: cannot bind: %s" (Printexc.to_string e))
    | lfd, bound, unlink_path -> (
      (try Unix.set_nonblock lfd with _ -> ());
      let stop_rd, stop_wr = Unix.pipe ~cloexec:true () in
      let pool = Pool.create (max 1 cfg.workers) in
      let st =
        {
          s_cfg = cfg;
          s_lfd = lfd;
          s_stop_rd = stop_rd;
          s_pool = pool;
          s_chunk = Bytes.create 8192;
          s_conns = Hashtbl.create 16;
          s_facts = Hashtbl.create 16;
          s_queries = Queue.create ();
          s_wal = Option.map fst wal;
          s_recovery = Option.map snd wal;
          s_wal_errors = 0;
          s_program_text = None;
          s_program = None;
          s_decls = [];
          s_gen = None;
          s_gen_seq = 0;
          s_stale = false;
          s_pending = 0;
          s_reserved = 0;
          s_pending_t0s = [];
          s_oldest_pending = max_int;
          s_flip_failures = 0;
          s_retry_at = 0;
          s_requests = 0;
          s_busy = 0;
          s_flips = 0;
          s_conn_total = 0;
          s_phase_violations = 0;
          s_shutting_down = false;
          s_drain_deadline = max_int;
          s_running = true;
        }
      in
      match
        match st.s_recovery with
        | Some rv -> replay_recovery st rv
        | None -> Ok ()
      with
      | Error msg ->
        close_wal ();
        (try Unix.close lfd with _ -> ());
        (match unlink_path with
        | Some p -> ( try Unix.unlink p with _ -> ())
        | None -> ());
        List.iter
          (fun fd -> try Unix.close fd with _ -> ())
          [ stop_rd; stop_wr ];
        Pool.shutdown pool;
        Error ("datalog server: wal replay: " ^ msg)
      | Ok () ->
        let dom =
          Domain.spawn (fun () ->
              install_gauges st;
              Fun.protect
                ~finally:(fun () -> server_cleanup st unlink_path)
                (fun () -> server_loop st))
        in
        Ok
          {
            t_bound = bound;
            t_stop_rd = stop_rd;
            t_stop_wr = stop_wr;
            t_dom = dom;
            t_joined = false;
          }))

let bound t = t.t_bound

let wait t =
  if not t.t_joined then begin
    t.t_joined <- true;
    (try Domain.join t.t_dom
     with e ->
       Telemetry_server.Health.note_uncontained
         ("server domain died: " ^ Printexc.to_string e));
    List.iter
      (fun fd -> try Unix.close fd with _ -> ())
      [ t.t_stop_wr; t.t_stop_rd ]
  end

let signal_stop t =
  if not t.t_joined then
    try ignore (Unix.write_substring t.t_stop_wr "x" 0 1) with _ -> ()

let stop t =
  if not t.t_joined then begin
    signal_stop t;
    wait t
  end
