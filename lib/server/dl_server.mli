(** Resident Datalog query server with phase-flip admission scheduling.

    The server keeps an {!Engine} resident and turns the paper's two-phase
    access discipline into its scheduling policy: client ingest ([ASSERT]/
    [LOAD]) is only {e admitted} — accepted into a durable base-fact store
    and acknowledged — while the actual write work is batched into whole
    {b writer phases}, and queries are fanned out over the worker pool as
    concurrent {b reader phases} against an immutable evaluated generation.
    The two phases never overlap by construction: both run from the single
    server domain, which owns every connection, the admission queue and the
    engine, multiplexed over one [Unix.select] (the telemetry monitor-domain
    idiom — domain-confined state, no synchronisation on the hot path).

    {b Generations.}  [Engine.run] evaluates once, so a writer phase is a
    {e generation flip}: recompile the installed program, replay the full
    base-fact store through the batch load path, evaluate to fixed point on
    the resident pool, and atomically (it is one mutable field on one
    domain) swap the served generation.  Readers only ever see a fully
    evaluated, immutable generation — the FB+-tree motivation of keeping
    reads latch-free pushed to its limit.  Full recomputation per flip is
    deliberate: incremental/MVCC variants are later roadmap items, and the
    admission scheduler is exactly the seam they will slot into.

    {b Flip policy.}  A flip is triggered when pending ingest reaches
    [flip_pending] facts, when the oldest pending ingest has waited
    [flip_interval_ms], when a query arrives with ingest pending (queries
    would otherwise read stale data — this gives read-your-writes at batch
    granularity), or on shutdown.  Backpressure: beyond [max_pending]
    admitted-but-unapplied facts the server answers [ERR busy] (503-style)
    instead of queueing unboundedly.

    {b Failure containment.}  A failed flip (e.g. a chaos-injected pool
    fault) leaves the previous generation serving and retries on the next
    trigger; a failed query poisons only its own response; a dropped
    connection only its session.  Phase violations are counted and exposed
    via [STATS] so tests can assert there were none.

    {b Durability.}  With [data_dir] set, admissions are written through a
    {!Wal} before they are acknowledged: RULES installs and fact batches
    are appended at admission, every flip appends a commit marker, and
    compaction rewrites the log as one snapshot segment when it grows past
    a few segments.  The [durability] mode fixes the ack contract:
    [D_strict] fsyncs before every ack (an [OK] is durable), [D_batch]
    (the default) group-commits at each flip (an [OK] survives any crash
    after the next flip; recovery is always a prefix of admission order),
    [D_async]/[D_none] are progressively weaker.  On {!start} with a
    populated [data_dir] the server recovers before serving: segments are
    scanned and checksum-verified, a torn tail is truncated silently, the
    program and facts are replayed, and the first loop iteration evaluates
    one writer phase so the recovered generation is served immediately.  A
    corrupt record outside the final segment, a lock conflict (another
    server owns the dir), or replay inconsistency makes {!start} return
    [Error] rather than serve a lossy state. *)

type config = {
  addr : Telemetry_server.addr;  (** listen address ([unix:PATH] or TCP) *)
  kind : Storage.kind;  (** relation storage backend of each generation *)
  workers : int;  (** resident pool size (evaluation + query fan-out) *)
  flip_pending : int;  (** flip the writer phase at this many pending facts *)
  flip_interval_ms : int;  (** ... or when the oldest has waited this long *)
  max_pending : int;  (** admission cap; beyond it ingest gets [ERR busy] *)
  max_clients : int;  (** concurrent sessions; beyond it connects are refused *)
  check_phases : bool;  (** assert the two-phase discipline inside eval *)
  data_dir : string option;  (** WAL directory; [None] = in-memory only *)
  durability : Wal.durability;  (** ack/fsync contract (see {!Wal}) *)
  wal_segment_bytes : int;  (** segment rotation threshold *)
  wal_compact_segments : int;  (** compact when live segments exceed this *)
}

val default_config : Telemetry_server.addr -> config
(** Btree storage, [recommended_workers] pool, flip at 256 facts / 50 ms,
    100k pending cap, 64 clients, phase checking off, no [data_dir]
    (durability [D_batch] once one is set, 8 MiB segments, compact past 4
    segments). *)

type t

val start : config -> (t, string) result
(** Bind, recover the WAL (when [data_dir] is set), spawn the server
    domain and return immediately.  [Error] on a bind failure, a data-dir
    lock conflict, a corrupt non-final WAL record, or a replay
    inconsistency — recovery failures happen on the caller's domain so a
    damaged log never half-serves.  Installs a process-wide [SIGPIPE]
    ignore (a peer closing mid-write must be a per-session error, not
    process death). *)

val bound : t -> Telemetry_server.addr
(** The actual bound address (resolves port 0). *)

val signal_stop : t -> unit
(** Ask the server to stop without waiting for it: one self-pipe write,
    safe from a signal handler.  Follow with {!wait}. *)

val stop : t -> unit
(** Graceful stop: drain in-flight responses, close every session, unlink
    a Unix-socket path, shut the pool down, join.  Idempotent. *)

val wait : t -> unit
(** Block until the server exits of its own accord (a client [SHUTDOWN])
    and release its resources.  Idempotent; [stop] after [wait] is a
    no-op. *)
