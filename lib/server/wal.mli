(** Durable fact store: a checksummed write-ahead log for {!Dl_server}.

    The two-phase discipline makes durability unusually cheap to bolt
    onto the resident server: base facts only enter the engine at a
    writer-phase generation flip, so a log of the installed program plus
    every admitted fact batch is a {e complete} replayable description
    of server state — no page images, no undo, no in-place mutation.
    The WAL is therefore a plain append-only record stream:

    {v
    segment file  = magic "DLWAL001" · record*
    record        = len:u32le · crc:u32le · type:u8 · payload[len]
    v}

    with [crc] a CRC-32 (IEEE) over [type · payload].  Record types:
    ['R'] RULES install (program source), ['F'] fact batch (relation
    name then one fact per line, protocol surface form), ['C'] a
    generation-flip commit marker, ['A'] a snapshot anchor (resets
    replay state — everything before it is superseded).

    Segments rotate at a size threshold and are compacted by writing
    the current fact store as a fresh sorted snapshot segment (anchor,
    program, facts) and unlinking everything older, so the log stays
    proportional to the live state, not to ingest history.

    Recovery ({!open_dir}) scans segments in sequence order, verifies
    every checksum and {b truncates a torn tail instead of failing}: a
    short or corrupt record in the {e final} segment is what a crash
    mid-append leaves behind, so the valid prefix is kept and the tail
    is physically cut off (counted in [rv_torn_tail] and the
    [server.wal.torn_tails] telemetry counter).  A corrupt record
    anywhere {e else} cannot be explained by a torn write and yields a
    structured error naming the segment and byte offset — the caller
    must refuse to serve rather than silently lose acked data.

    Durability modes ({!durability}) fix when {!append} forces the data
    to disk; see {!Dl_server} for the ack-ordering contract each mode
    buys.  A lock file (flock-style, [Unix.lockf] plus an in-process
    registry) makes double-starting on one data dir fail fast.

    Single-owner discipline: a [t] must only be used from one domain at
    a time (the server domain), like every other [Dl_server] structure;
    nothing in here is synchronised. *)

(** When appends reach the platters, strictest last:
    - [D_none]: never fsync — pure OS page cache, no crash guarantee.
    - [D_async]: fsync only on segment rotation, compaction and close.
    - [D_batch]: group commit — {!append} of a {!Commit} marker fsyncs,
      covering every record admitted since the previous flip (plus
      rotation/close, as [D_async]).  The default: acked-but-unflipped
      facts can be lost, but recovery is always a prefix of admission
      order ("prefix-consistent").
    - [D_strict]: every {!append} fsyncs before returning, so an ack
      sent after a successful append is durable ("exact"). *)
type durability = D_none | D_async | D_batch | D_strict

val durability_of_string : string -> durability option
(** Parse ["none" | "async" | "batch" | "strict"]. *)

val durability_name : durability -> string

val durability_choices : string
(** ["none|async|batch|strict"], for CLI docs. *)

(** One replayable log record. *)
type entry =
  | Rules of string
      (** program source exactly as installed (replays through the same
          parser; installs replace the program and drop facts of
          removed/re-declared relations, as the live path does) *)
  | Facts of string * string list
      (** relation name, one fact per line in protocol surface form
          (whitespace-separated fields; replays through
          [Dl_proto.parse_fact]) *)
  | Commit of int
      (** generation-flip marker carrying the new generation sequence;
          the group-commit fsync point under [D_batch] *)
  | Anchor of int
      (** snapshot anchor carrying the generation sequence it captures;
          replay {e resets} program and facts here — a snapshot segment
          supersedes everything before it *)

(** What {!open_dir} reconstructed from an existing data dir. *)
type recovery = {
  rv_entries : entry list;
      (** every valid record in log order; the caller folds these into
          its state ({!Anchor} = reset) *)
  rv_records : int;  (** count of [rv_entries] *)
  rv_segments : int;  (** segment files scanned *)
  rv_bytes : int;  (** record bytes replayed (headers included) *)
  rv_committed_seq : int;
      (** highest {!Commit}/{!Anchor} sequence seen; [0] when none —
          the generation counter resumes from here *)
  rv_torn_tail : bool;
      (** a torn tail was truncated off the final segment (benign:
          that is what a crash mid-append leaves) *)
}

type t

val open_dir :
  ?segment_bytes:int ->
  ?compact_segments:int ->
  durability:durability ->
  string ->
  (t * recovery, string) result
(** [open_dir ~durability dir] creates [dir] if needed, takes its lock
    file (refusing with [Error] if another live server — in this
    process or any other — holds it), recovers existing segments per
    the module rules, and opens the last segment for appending.

    [segment_bytes] (default 8 MiB) is the rotation threshold: an
    append finding the current segment past it rotates first, so
    records never straddle segments (one oversized record may overshoot
    the threshold).  [compact_segments] (default 4) is the live-segment
    count above which {!should_compact} starts answering [true].

    Errors: lock conflict, unreadable dir, or a corrupt record outside
    the final segment (message names segment file and byte offset). *)

val append : t -> entry -> (unit, string) result
(** Append one record (rotating first when the segment is full) and
    apply the durability policy: fsync under [D_strict], and under
    [D_batch] when the entry is a {!Commit}.  [Error] means the record
    is {e not} durably acked — under [D_strict] the caller must answer
    ERR, not OK.  Chaos: [wal.write.short] tears the log (a prefix of
    the record is written and the handle refuses further appends until
    {!compact} rebuilds it); [wal.fsync.fail] fails the fsync step. *)

val sync : t -> (unit, string) result
(** Force an fsync now (shutdown flush, rotation); no-op under
    [D_none].  Subject to [wal.fsync.fail]. *)

val should_compact : t -> bool
(** Whether live segments exceed the compaction threshold.  The server
    checks after each flip — compacting at a flip boundary snapshots
    exactly the committed state. *)

val compact :
  t -> ?program:string -> seq:int -> (string * string list) list ->
  (unit, string) result
(** [compact t ~program ~seq facts] rewrites the log as one snapshot
    segment — {!Anchor}[ seq], the program, then each [(rel, lines)]
    with relations and lines sorted — written to a temp file, fsynced,
    atomically renamed, and only then are older segments unlinked, so a
    crash at any point leaves either the old log or the new one intact.
    Clears a chaos-torn handle: the snapshot re-establishes a valid log
    from in-memory state. *)

val close : t -> unit
(** Flush per the durability mode, close, release the lock.  Idempotent. *)

(** {2 Introspection} (for STATS lines; plain reads, single-owner) *)

val dir : t -> string
val durability : t -> durability

val segments : t -> int
(** Live segment files. *)

val records : t -> int
(** Records appended through this handle. *)

val appended_bytes : t -> int
val fsyncs : t -> int
val compactions : t -> int

val torn : t -> bool
(** [wal.write.short] fired and the handle refuses appends. *)
