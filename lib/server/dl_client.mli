(** Blocking line-protocol client for {!Dl_server} ([fetch]-style: small,
    synchronous, self-contained), used by the tests, the CI selftest, the
    stress harness's server scenario and [datalog_cli --connect].

    One {!t} is one session; it is not thread-safe — give each domain its
    own connection (that is the server's unit of isolation anyway). *)

type t

val connect :
  ?timeout_s:float -> Telemetry_server.addr -> (t, string) result
(** Connect and consume the server greeting.  [timeout_s] (default 30)
    bounds every subsequent send/receive. *)

val close : t -> unit
(** Idempotent. *)

(** A complete server reply.  [Err (code, msg)] carries the wire error
    code (see {!Dl_proto.err_code}; unknown codes pass through). *)
type reply =
  | Ok_ of string
  | Data of string * string list  (** info, payload rows *)
  | Err of string * string

val request : t -> string -> (reply, string) result
(** Send one already-formatted request line and read the full reply
    (including a [DATA] payload).  [Error] means the transport failed —
    closed/dropped connection, timeout, or a garbled reply; protocol-level
    rejections come back as [Ok (Err _)]. *)

val send_payload : t -> string -> string list -> (reply, string) result
(** [send_payload t header lines]: a header announcing
    [List.length lines] payload lines, then the lines.  The caller formats
    the header ({!load} / {!rules} are the common wrappers). *)

(** {2 Reconnect/retry sessions}

    A {!session} wraps an address with a lazily-established connection
    and a bounded-retry policy for {e connection-level} failures only:
    connect errors and transport faults (closed/dropped/garbled) are
    retried over a fresh connection with seeded jittered exponential
    backoff; a structured [ERR] reply is {e never} retried — it is the
    server's answer (retrying [ERR busy] here would defeat admission
    control; back off at the call site instead). *)

type session

val session :
  ?attempts:int ->
  ?backoff_ms:float ->
  ?seed:int ->
  ?timeout_s:float ->
  Telemetry_server.addr ->
  session
(** [attempts] (default 10) bounds tries per {!retry} call; [backoff_ms]
    (default 2) is the base delay, doubled per failure (capped) and
    scaled by a jitter in [0.5, 1.5) drawn from a deterministic stream
    seeded by [seed].  No IO happens until the first {!retry}. *)

val retry : session -> (t -> (reply, string) result) -> (reply, string) result
(** Run one request against the session's connection, (re)connecting as
    needed.  [Error] only after the attempt budget is spent (the message
    carries the last failure).  A retried request is re-sent whole, and
    the resident server only applies fully-parsed requests, so a request
    severed mid-send is never half-applied.  But a retry is
    {e at-least-once}, not exactly-once: if the server applied the
    request and the connection died before [OK] arrived, the retry
    applies it again.  RULES and QUERY are idempotent so this is
    invisible; LOAD/ASSERT are not — a replayed batch duplicates rows in
    the server's base-fact store and inflates its queued/row counters
    (query {e results} are unaffected only because the engine's
    relations are sets).  Callers that need exact row accounting must
    make retried facts unique or avoid retrying ingest.
    Not thread-safe, like {!t}. *)

val disconnect : session -> unit
(** Drop the cached connection (the next {!retry} reconnects).
    Idempotent; also the session's destructor. *)

val with_retry :
  ?attempts:int ->
  ?backoff_ms:float ->
  ?seed:int ->
  ?timeout_s:float ->
  Telemetry_server.addr ->
  (session -> 'a) ->
  'a
(** [with_retry addr f]: {!session}, run [f], {!disconnect} on every
    exit path. *)

val hello : t -> (reply, string) result
val ping : t -> (reply, string) result
val stats : t -> (reply, string) result
val shutdown : t -> (reply, string) result

val rules : t -> string -> (reply, string) result
(** Install a program from source text (split on newlines). *)

val load : t -> string -> string list -> (reply, string) result
(** [load t rel rows]: batch-load pre-rendered fact lines. *)

val assert_fact : t -> string -> string list -> (reply, string) result
(** [assert_fact t rel fields]. *)

val query : t -> string -> string list -> (reply, string) result
(** [query t rel patterns] — a pattern field is a value or ["_"]. *)
