(* Pass 1 of the whole-repo linter: per-function effect summaries.

   Every structure-level value binding (including bindings inside nested
   modules and functor bodies) gets a summary of the effects its body
   performs *directly* — may-block (Unix syscalls, pool joins,
   [Domain.join], [Condition.wait], channel I/O), touches-atomics,
   acquires/validates an olock lease, opens/closes a file descriptor,
   appends to the WAL, sends a protocol ack — plus the raw call edges
   out of the body and the name-resolution context (module path, opens,
   aliases) needed to resolve those edges against the whole-repo table.
   {!Lint_callgraph} then closes the transitive facets (may-block,
   wal-append, sends-ack) over the call graph to a fixpoint.

   Scope decisions, deliberately lint-grade rather than sound:
   - nested [let]-bound lambdas fold into the enclosing binding's
     summary (a helper closure's effects belong to whoever runs it on
     this domain), EXCEPT the argument of [Domain.spawn], which runs
     elsewhere by construction;
   - a bare reference to a function (passed to [List.iter] etc.) counts
     as a call edge — higher-order callees run their arguments;
   - [Mutex.lock]/[Mutex.protect] are *not* part of the transitive
     may-block facet: domain-local first-touch initialisation (DLS
     counter registries) takes a mutex once per domain by design, and
     treating that as blocking would condemn every telemetry bump on
     the hot path.  The direct R3 rule still denies [Mutex.lock] under
     a write permit. *)

open Parsetree

type effects = {
  e_block : string option; (* why the body may block, if it does *)
  e_atomic : bool;
  e_lease_acquire : bool;
  e_lease_validate : bool;
  e_fd_open : bool;
  e_fd_close : bool;
  e_wal_append : bool;
  e_ack : bool;
}

let no_effects =
  {
    e_block = None;
    e_atomic = false;
    e_lease_acquire = false;
    e_lease_validate = false;
    e_fd_open = false;
    e_fd_close = false;
    e_wal_append = false;
    e_ack = false;
  }

type ctx = {
  cx_self : string list; (* module path at the definition site *)
  cx_opens : string list list; (* file-level opens, outermost first *)
  cx_aliases : (string * string list) list; (* module M = Path *)
}

type t = {
  sm_key : string; (* dotted module-qualified name *)
  sm_file : string;
  sm_line : int;
  sm_ctx : ctx;
  sm_dispatch : bool; (* carries [@lint.dispatch "why"] *)
  sm_direct : effects;
  sm_calls : string list list; (* raw callee longidents, one per ref *)
  mutable sm_block : string option; (* transitive may-block facet *)
  mutable sm_wal : bool; (* transitively appends to the WAL *)
  mutable sm_ack : bool; (* transitively sends a protocol ack *)
  mutable sm_lease : bool; (* transitively validates some lease *)
}

(* ------------------------------------------------------------------ *)
(* Call classification                                                 *)
(* ------------------------------------------------------------------ *)

let blocking_unqualified =
  [
    "print_string";
    "print_endline";
    "print_newline";
    "prerr_string";
    "prerr_endline";
    "read_line";
    "input_line";
    "input_char";
    "input_value";
    "really_input";
    "really_input_string";
    "output_string";
    "output_char";
    "output_bytes";
    "output_value";
    "flush";
    "flush_all";
  ]

let pool_joining =
  [
    "run";
    "parallel_for";
    "parallel_for_workers";
    "parallel_for_ranges";
    "parallel_reduce";
    "shutdown";
    "with_pool";
  ]

(* Syscall-grade blocking only (see header): the transitive facet. *)
let block_reason parts =
  match parts with
  | [ "Domain"; "join" ] -> Some "Domain.join blocks on another domain"
  | [ "Condition"; "wait" ] -> Some "Condition.wait blocks"
  | "Unix" :: _ | "UnixLabels" :: _ -> Some "Unix syscalls can block"
  | [ "Thread"; ("join" | "delay") ] -> Some "Thread join/delay blocks"
  | [ "Pool"; f ] when List.mem f pool_joining ->
    Some (Printf.sprintf "Pool.%s joins worker domains" f)
  | [ f ] when List.mem f blocking_unqualified ->
    Some (Printf.sprintf "channel I/O (%s)" f)
  | [ ("Printf" | "Format"); ("printf" | "eprintf" | "fprintf") ] ->
    Some "formatted channel I/O"
  | _ -> None

let openers =
  [
    [ "Unix"; "openfile" ];
    [ "Unix"; "socket" ];
    [ "Unix"; "socketpair" ];
    [ "Unix"; "accept" ];
    [ "Unix"; "pipe" ];
    [ "Unix"; "opendir" ];
    [ "opendir" ];
    [ "open_in" ];
    [ "open_in_bin" ];
    [ "open_in_gen" ];
    [ "open_out" ];
    [ "open_out_bin" ];
    [ "open_out_gen" ];
  ]

let closers =
  [
    [ "Unix"; "close" ];
    [ "Unix"; "closedir" ];
    [ "closedir" ];
    [ "close_in" ];
    [ "close_in_noerr" ];
    [ "close_out" ];
    [ "close_out_noerr" ];
  ]

let is_opener parts = List.mem parts openers
let is_closer parts = List.mem parts closers

let last parts =
  match parts with [] -> "" | _ -> List.nth parts (List.length parts - 1)

let is_atomic_ref parts =
  match parts with
  | "Atomic" :: _ | "Stdlib" :: "Atomic" :: _ -> true
  | _ -> false

let classify parts eff =
  let eff =
    match block_reason parts with
    | Some why when eff.e_block = None -> { eff with e_block = Some why }
    | _ -> eff
  in
  let eff = if is_atomic_ref parts then { eff with e_atomic = true } else eff in
  let eff =
    match last parts with
    | "start_read" when List.length parts >= 2 ->
      { eff with e_lease_acquire = true }
    | "valid" | "end_read" | "try_upgrade_to_write"
      when List.length parts >= 2 ->
      { eff with e_lease_validate = true }
    | _ -> eff
  in
  let eff = if is_opener parts then { eff with e_fd_open = true } else eff in
  let eff = if is_closer parts then { eff with e_fd_close = true } else eff in
  let eff =
    match parts with
    | [ "Wal"; "append" ] -> { eff with e_wal_append = true }
    | [ "Dl_proto"; "render" ] -> { eff with e_ack = true }
    | _ -> eff
  in
  eff

(* ------------------------------------------------------------------ *)
(* Extraction                                                          *)
(* ------------------------------------------------------------------ *)

let flatten_lid txt = try Longident.flatten txt with _ -> []

let module_of_file file =
  let base = Filename.remove_extension (Filename.basename file) in
  String.capitalize_ascii base

let has_dispatch_attr attrs =
  List.exists (fun a -> a.attr_name.txt = "lint.dispatch") attrs

(* Collect direct effects and raw call edges of one binding body.
   Arguments of [Domain.spawn] are skipped: that code runs on another
   domain and its effects are not the binder's. *)
let body_facts expr =
  let eff = ref no_effects in
  let calls = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun iter e ->
          match e.pexp_desc with
          | Pexp_ident { txt; _ } ->
            let parts = flatten_lid txt in
            if parts <> [] then begin
              eff := classify parts !eff;
              calls := parts :: !calls
            end
          | Pexp_construct ({ txt; _ }, arg) ->
            (match flatten_lid txt with
            | parts when last parts = "R_ok" || last parts = "R_data" ->
              eff := { !eff with e_ack = true }
            | _ -> ());
            Option.iter (iter.Ast_iterator.expr iter) arg
          | Pexp_apply (f, args) -> (
            match f.pexp_desc with
            | Pexp_ident { txt = Longident.Ldot (Lident "Domain", "spawn"); _ }
              ->
              iter.Ast_iterator.expr iter f
              (* spawned closure: another domain's effects *)
            | _ ->
              iter.Ast_iterator.expr iter f;
              List.iter (fun (_, a) -> iter.Ast_iterator.expr iter a) args)
          | _ -> Ast_iterator.default_iterator.expr iter e);
    }
  in
  it.Ast_iterator.expr it expr;
  (!eff, !calls)

let of_structure ~file (str : structure) : t list =
  let out = ref [] in
  let opens = ref [] in
  let aliases = ref [] in
  let root = module_of_file file in
  let rec walk_items path items =
    List.iter
      (fun item ->
        match item.pstr_desc with
        | Pstr_open { popen_expr = { pmod_desc = Pmod_ident { txt; _ }; _ }; _ }
          ->
          let p = flatten_lid txt in
          if p <> [] then opens := !opens @ [ p ]
        | Pstr_module mb -> (
          match mb.pmb_name.txt with
          | None -> ()
          | Some name -> walk_module (path @ [ name ]) mb.pmb_expr)
        | Pstr_recmodule mbs ->
          List.iter
            (fun mb ->
              match mb.pmb_name.txt with
              | None -> ()
              | Some name -> walk_module (path @ [ name ]) mb.pmb_expr)
            mbs
        | Pstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              match vb.pvb_pat.ppat_desc with
              | Ppat_var { txt = name; _ } ->
                let eff, calls = body_facts vb.pvb_expr in
                let loc = vb.pvb_loc.Location.loc_start in
                out :=
                  {
                    sm_key = String.concat "." (path @ [ name ]);
                    sm_file = file;
                    sm_line = loc.Lexing.pos_lnum;
                    sm_ctx =
                      {
                        cx_self = path;
                        cx_opens = !opens;
                        cx_aliases = !aliases;
                      };
                    sm_dispatch = has_dispatch_attr vb.pvb_attributes;
                    sm_direct = eff;
                    sm_calls = calls;
                    sm_block = eff.e_block;
                    sm_wal = eff.e_wal_append;
                    sm_ack = eff.e_ack;
                    sm_lease = eff.e_lease_validate;
                  }
                  :: !out
              | _ -> ())
            vbs
        | _ -> ())
      items
  and walk_module path mexpr =
    match mexpr.pmod_desc with
    | Pmod_structure items -> walk_items path items
    | Pmod_ident { txt; _ } ->
      let target = flatten_lid txt in
      if target <> [] then aliases := (last path, target) :: !aliases
    | Pmod_functor (_, body) -> walk_module path body
    | Pmod_constraint (m, _) -> walk_module path m
    | _ -> ()
  in
  walk_items [ root ] str;
  List.rev !out

(* The file-root resolution context: the module path is just the file's
   own module, the opens and aliases are every one declared anywhere in
   the file (flattened — good enough for a lint's name resolution). *)
let file_ctx ~file (str : structure) : ctx =
  let opens = ref [] in
  let aliases = ref [] in
  let rec walk_items path items =
    List.iter
      (fun item ->
        match item.pstr_desc with
        | Pstr_open { popen_expr = { pmod_desc = Pmod_ident { txt; _ }; _ }; _ }
          ->
          let p = flatten_lid txt in
          if p <> [] then opens := !opens @ [ p ]
        | Pstr_module mb -> (
          match mb.pmb_name.txt with
          | None -> ()
          | Some name -> walk_module (path @ [ name ]) mb.pmb_expr)
        | _ -> ())
      items
  and walk_module path mexpr =
    match mexpr.pmod_desc with
    | Pmod_structure items -> walk_items path items
    | Pmod_ident { txt; _ } ->
      let target = flatten_lid txt in
      if target <> [] then aliases := (last path, target) :: !aliases
    | Pmod_functor (_, body) -> walk_module path body
    | Pmod_constraint (m, _) -> walk_module path m
    | _ -> ()
  in
  let root = module_of_file file in
  walk_items [ root ] str;
  { cx_self = [ root ]; cx_opens = !opens; cx_aliases = !aliases }
