(** Concurrency-discipline linter over this repository's own sources.

    Two-pass whole-repo analysis: pass 1 ({!Lint_summary}) computes
    per-function effect summaries, pass 2 ({!Lint_callgraph}) closes
    may-block / appends-WAL / sends-ack / validates-lease over the call
    graph, and the rules consult the closed summaries whenever a call
    site cannot be judged locally.

    - {b atomic-confinement} (R1): [Atomic.*] only inside the sync
      modules; elsewhere requires a justified
      [@lint.allow "atomic-confinement: why"].
    - {b lease-discipline} (R2): leases bound from [Olock.start_read]
      must be validated (or handed to a helper that transitively
      validates) on every path and must not escape into data structures.
    - {b no-blocking-under-write-permit} (R3): no pool joins,
      [Domain.join], [Mutex.lock], [Unix.*], channel I/O,
      [Olock.start_read], or calls to functions whose {e transitive}
      summary may block, between acquiring and releasing a write permit.
    - {b hygiene} (R4): [Obj.magic] banned everywhere; polymorphic
      [compare] / comparison operators on tuples banned in hot modules.
    - {b fd-discipline} (R5): fds from raw openers must be closed,
      returned, stored, or handed to a [with_]-style owner on every
      path, with no unguarded may-raise call while the fd is live —
      or the scope is wrapped in [Fun.protect].
    - {b wal-before-ack} (R6, server files): [admit_ingest] /
      [install_program] / [fs_rows]-[fs_count] assignments must be
      dominated by a WAL append.
    - {b select-loop-purity} (R7): potentially-blocking calls inside a
      [Unix.select] loop must go through functions annotated
      [@lint.dispatch "why"].
    - {b stale-suppression} (R8): an [@lint.allow] that matched no
      finding is itself a finding.

    Per-site suppression: attach [@lint.allow "rule"] (or
    [@lint.allow "rule: justification"] — mandatory justification for
    atomic-confinement) to the expression or binding, or float
    [@@@lint.allow "rule"] for the rest of the enclosing structure.
    Interfaces ([.mli]) are scanned for parse errors and [Obj.*] in
    signatures only: R1 does not apply there because exposing an
    [Atomic.t] at a signature is lib/modelcheck's abstraction
    mechanism, and confinement of uses is enforced at every
    implementation site. *)

type finding = {
  file : string;
  line : int;
  col : int;
  rule : string;
  message : string;
}

val rule_atomic_confinement : string
val rule_lease_discipline : string
val rule_no_blocking : string
val rule_hygiene : string
val rule_fd_discipline : string
val rule_wal_before_ack : string
val rule_select_purity : string
val rule_stale_suppression : string

val rule_parse_error : string
(** Pseudo-rule reported when a scanned file fails to parse. *)

val all_rules : string list
(** The eight real rules, excluding {!rule_parse_error}. *)

val finding_to_string : finding -> string
(** [file:line:col: [rule] message] — grep- and editor-friendly. *)

val default_hot : string -> bool
(** Is this path one of the hot modules (R4 polymorphic-compare scope)? *)

val default_atomic_whitelisted : string -> bool
(** Is this path inside the sync modules where [Atomic.*] is allowed? *)

val default_server : string -> bool
(** Is this path subject to the wal-before-ack rule (R6)? *)

val check_source :
  ?hot:bool ->
  ?atomic_ok:bool ->
  ?server:bool ->
  file:string ->
  string ->
  finding list
(** Lint source text. [hot] / [atomic_ok] / [server] override the
    path-derived classification (used by the fixture tests).  The
    interprocedural environment is built from this file alone, so local
    helper chains resolve; cross-file resolution needs
    {!check_roots}.  A parse failure yields a single
    {!rule_parse_error} finding. *)

val check_interface_source : file:string -> string -> finding list
(** Lint interface text: parse errors and [Obj.*]-in-signature only. *)

val check_file :
  ?hot:bool -> ?atomic_ok:bool -> ?server:bool -> string -> finding list
(** Dispatches on extension: [.mli] via {!check_interface_source},
    anything else as an implementation. *)

val scan_roots : string list -> string list
(** The .ml and .mli files under the given roots, skipping [_build],
    dotdirs and [lint_fixtures]. *)

val check_roots : string list -> string list * finding list
(** [(files scanned, findings)] for every .ml/.mli under the roots,
    with the interprocedural environment built from {e all} of them —
    the whole-repo two-pass analysis. *)

(** {1 Machine-consumable findings and the baseline ratchet} *)

val findings_to_json : finding list -> string
(** Versioned JSON document ([lint_findings/1]). *)

val findings_of_json : string -> (finding list, string) result
(** Parse back what {!findings_to_json} emitted. *)

type baseline_entry = {
  be_file : string;
  be_rule : string;
  be_message : string;
  be_count : int;
}
(** One accepted finding shape.  Identity is (file, rule, message) with
    an occurrence count; line/col are deliberately excluded so edits
    above a baselined site do not churn the baseline. *)

val baseline_of_findings : finding list -> baseline_entry list
(** Group current findings into baseline entries (sorted). *)

val baseline_to_json : baseline_entry list -> string
(** Versioned JSON document ([lint_baseline/1]). *)

val baseline_of_json : string -> (baseline_entry list, string) result

val diff_baseline :
  baseline_entry list ->
  finding list ->
  finding list * (baseline_entry * int) list
(** [(fresh, stale)]: findings beyond each key's baselined count (the
    ratchet gate fails on any), and baseline entries that now fire
    fewer times than recorded, paired with the current count (the
    baseline can be shrunk — the count only goes down). *)
