(** Concurrency-discipline linter over this repository's own sources.

    Purely syntactic checks on the parsetree (compiler-libs):

    - {b atomic-confinement} (R1): [Atomic.*] only inside the sync
      modules; elsewhere requires a justified
      [@lint.allow "atomic-confinement: why"].
    - {b lease-discipline} (R2): leases bound from [Olock.start_read]
      must be validated (or handed to a helper) on every path and must
      not escape into data structures.
    - {b no-blocking-under-write-permit} (R3): no pool joins,
      [Domain.join], [Mutex.lock], [Unix.*], channel I/O or
      [Olock.start_read] between acquiring and releasing a write permit.
    - {b hygiene} (R4): [Obj.magic] banned everywhere; polymorphic
      [compare] / comparison operators on tuples banned in hot modules.

    Per-site suppression: attach [@lint.allow "rule"] (or
    [@lint.allow "rule: justification"] — mandatory justification for
    atomic-confinement) to the expression or binding, or float
    [@@@lint.allow "rule"] for the rest of the enclosing structure. *)

type finding = {
  file : string;
  line : int;
  col : int;
  rule : string;
  message : string;
}

val rule_atomic_confinement : string
val rule_lease_discipline : string
val rule_no_blocking : string
val rule_hygiene : string

val rule_parse_error : string
(** Pseudo-rule reported when a scanned file fails to parse. *)

val all_rules : string list
(** The four real rules, excluding {!rule_parse_error}. *)

val finding_to_string : finding -> string
(** [file:line:col: [rule] message] — grep- and editor-friendly. *)

val default_hot : string -> bool
(** Is this path one of the hot modules (R4 polymorphic-compare scope)? *)

val default_atomic_whitelisted : string -> bool
(** Is this path inside the sync modules where [Atomic.*] is allowed? *)

val check_source :
  ?hot:bool -> ?atomic_ok:bool -> file:string -> string -> finding list
(** Lint source text. [hot] / [atomic_ok] override the path-derived
    classification (used by the fixture tests). A parse failure yields a
    single {!rule_parse_error} finding. *)

val check_file : ?hot:bool -> ?atomic_ok:bool -> string -> finding list

val scan_roots : string list -> string list
(** The .ml files under the given roots, skipping [_build], dotdirs and
    [lint_fixtures]. *)

val check_roots : string list -> string list * finding list
(** [(files scanned, findings)] for every .ml under the roots. *)
