(* Concurrency-discipline linter for this repository.

   Eight rules, checked syntactically over the parsetree (compiler-libs
   [Parse] + [Ast_iterator]), with a whole-repo interprocedural layer:
   pass 1 ({!Lint_summary}) computes per-function effect summaries,
   pass 2 ({!Lint_callgraph}) closes them over the call graph, and the
   rules below consult the closed summaries when a call site cannot be
   judged locally.

   R1 atomic-confinement: [Atomic.*] may only be referenced inside the
      synchronisation modules (lib/optlock, lib/chaos, lib/parallel,
      lib/telemetry, lib/datalog/sync.ml).  Anywhere else the use must be
      refactored behind a sync helper or carry
      [@lint.allow "atomic-confinement: <justification>"] — for this rule
      the justification text is mandatory.

   R2 lease-discipline: a lease bound from [Olock.start_read] must flow
      into [valid] / [end_read] / [try_upgrade_to_write] (or be handed to
      a helper call) on every syntactic path of the binding's body, and
      must not escape into a tuple / record / constructor / array.
      Interprocedurally: handing the lease to a *resolved* local helper
      only counts as consumption when the helper's transitive summary
      validates some lease; an unresolved callee keeps the benefit of
      the doubt.

   R3 no-blocking-under-write-permit: between a successful
      [try_start_write] / [start_write] / [try_upgrade_to_write] and the
      matching [end_write] / [abort_write], deny-listed calls are
      forbidden: pool joins, [Domain.join], [Mutex.lock],
      [Condition.wait], [Unix.*], channel I/O, and [Olock.start_read] on
      another lock.  Interprocedurally: calling any function whose
      *transitive* summary may block is also a finding.

   R4 hygiene: [Obj.magic] is banned everywhere; in the hot modules
      (lib/btree/{btree,btree_seq,btree_tuples,leaf_pack}.ml,
      lib/datalog/{eval,storage,relation}.ml) the polymorphic [compare]
      (bare or [Stdlib.compare]) and polymorphic comparison operators
      applied to tuple literals are banned — use [Key.compare] or a
      three-way tuple comparator.

   R5 fd-discipline: a file descriptor bound from a raw opener
      ([Unix.openfile] / [socket] / [accept] / [pipe] / [opendir] /
      [open_in*] / [open_out*]) must be closed, returned, stored, or
      handed to a [with_]-style owner on every syntactic path of its
      scope, or the whole scope must be wrapped in [Fun.protect] whose
      [~finally] closes it.  Even when every path consumes the fd, a
      call that may raise (directly blocking, or transitively
      may-block per the summaries) while the fd is live and unguarded
      by [try]/[match ... with exception] leaks it on the error path.

   R6 wal-before-ack (server files only): admitting state into the fact
      store — [admit_ingest] / [install_program] calls, or assignments
      to the [fs_rows] / [fs_count] fields — must be dominated by a WAL
      append: lexically inside the [Ok]-side of a [match] on a
      wal-appending call, or sequenced after one.  This is the PR 9
      durability invariant (nothing is acked before it is logged),
      promoted from tests to static checking.

   R7 select-loop-purity: inside a binding that performs [Unix.select]
      (the resident server/monitor loops), every call that may block —
      directly or transitively — must go through a function whose
      definition carries [@lint.dispatch "why"], the loop's own
      recursion, [Unix.select] itself, or a close.  Anything else needs
      an inline justification.

   R8 stale-suppression: an [@lint.allow] that matched no finding during
      the file's check is itself a finding — the justification ledger
      stays honest, and malformed payloads are surfaced instead of
      silently ignored.

   Findings are machine-consumable: {!findings_to_json} emits a
   versioned JSON document, {!baseline_of_findings} /
   {!diff_baseline} implement the checked-in-baseline ratchet (CI
   fails only on findings not covered by LINT_BASELINE.json, and the
   covered count can only go down).

   The checker is intentionally a lint, not a proof: it tracks the write
   permit as a single boolean through statement sequences and
   if-branches, resets it at function boundaries, and ignores leases that
   cross function boundaries as parameters (the callee's binding site is
   where the discipline is enforced). *)

open Parsetree

type finding = {
  file : string;
  line : int;
  col : int;
  rule : string;
  message : string;
}

let rule_atomic_confinement = "atomic-confinement"
let rule_lease_discipline = "lease-discipline"
let rule_no_blocking = "no-blocking-under-write-permit"
let rule_hygiene = "hygiene"
let rule_fd_discipline = "fd-discipline"
let rule_wal_before_ack = "wal-before-ack"
let rule_select_purity = "select-loop-purity"
let rule_stale_suppression = "stale-suppression"
let rule_parse_error = "parse-error"

let all_rules =
  [
    rule_atomic_confinement;
    rule_lease_discipline;
    rule_no_blocking;
    rule_hygiene;
    rule_fd_discipline;
    rule_wal_before_ack;
    rule_select_purity;
    rule_stale_suppression;
  ]

let finding_to_string f =
  Printf.sprintf "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule f.message

let compare_finding a b =
  let c = compare a.file b.file in
  if c <> 0 then c
  else
    let c = compare a.line b.line in
    if c <> 0 then c else compare a.col b.col

(* ------------------------------------------------------------------ *)
(* Path classification                                                 *)
(* ------------------------------------------------------------------ *)

let normalize path =
  String.concat "/" (String.split_on_char '\\' path)

let path_has_segment seg path =
  let parts = String.split_on_char '/' (normalize path) in
  List.mem seg parts

let default_atomic_whitelisted path =
  let p = normalize path in
  path_has_segment "optlock" p || path_has_segment "chaos" p
  || path_has_segment "parallel" p
  || path_has_segment "telemetry" p
  || Filename.basename p = "sync.ml"

let hot_modules =
  [
    "btree.ml";
    "key.ml";
    "btree_seq.ml";
    "btree_tuples.ml";
    "leaf_pack.ml";
    "eval.ml";
    "storage.ml";
    "relation.ml";
  ]

let default_hot path = List.mem (Filename.basename (normalize path)) hot_modules

(* R6 only applies to the resident query server's admission path. *)
let default_server path = Filename.basename (normalize path) = "dl_server.ml"

(* ------------------------------------------------------------------ *)
(* Attribute suppression: [@lint.allow "rule: justification"]          *)
(* ------------------------------------------------------------------ *)

type allow = {
  al_rule : string;
  al_justified : bool;
  al_loc : Location.t;
  mutable al_used : bool;
}

let trim = String.trim

let parse_allow_payload ~loc s =
  match String.index_opt s ':' with
  | None -> { al_rule = trim s; al_justified = false; al_loc = loc; al_used = false }
  | Some i ->
    let rule = trim (String.sub s 0 i) in
    let just = trim (String.sub s (i + 1) (String.length s - i - 1)) in
    { al_rule = rule; al_justified = just <> ""; al_loc = loc; al_used = false }

let allow_of_attribute (attr : attribute) =
  if attr.attr_name.txt <> "lint.allow" then None
  else
    match attr.attr_payload with
    | PStr
        [
          {
            pstr_desc =
              Pstr_eval
                ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
            _;
          };
        ] ->
      Some (parse_allow_payload ~loc:attr.attr_loc s)
    | _ ->
      Some
        {
          al_rule = "malformed";
          al_justified = false;
          al_loc = attr.attr_loc;
          al_used = false;
        }

(* ------------------------------------------------------------------ *)
(* Small parsetree helpers                                             *)
(* ------------------------------------------------------------------ *)

let flatten_ident e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> ( try Longident.flatten txt with _ -> [])
  | _ -> []

(* Last component of the callee of an application, provided it is
   module-qualified (e.g. [Olock.start_read] but not a local
   [start_read]). *)
let qualified_callee e =
  match e.pexp_desc with
  | Pexp_apply (f, _) -> (
    match flatten_ident f with
    | _ :: _ :: _ as parts -> Some (List.nth parts (List.length parts - 1))
    | _ -> None)
  | _ -> None

let is_call_of names e =
  match qualified_callee e with Some n -> List.mem n names | None -> false

let is_acquire_stmt e = is_call_of [ "start_write" ] e
let is_release_stmt e = is_call_of [ "end_write"; "abort_write" ] e
let is_try_acquire e =
  is_call_of [ "try_start_write"; "try_upgrade_to_write" ] e

let is_start_read e = is_call_of [ "start_read" ] e

let is_ident_named name e =
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident n; _ } -> n = name
  | _ -> false

(* Immediate sub-expressions of a node, one level deep. *)
let immediate_subexprs e =
  let acc = ref [] in
  let probe =
    {
      Ast_iterator.default_iterator with
      expr = (fun _ c -> acc := c :: !acc);
    }
  in
  Ast_iterator.default_iterator.expr probe e;
  List.rev !acc

let pattern_vars p =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun it p ->
          (match p.ppat_desc with
          | Ppat_var { txt; _ } -> acc := txt :: !acc
          | Ppat_alias (_, { txt; _ }) -> acc := txt :: !acc
          | _ -> ());
          Ast_iterator.default_iterator.pat it p);
    }
  in
  it.pat it p;
  !acc

let last_part parts =
  match parts with [] -> "" | _ -> List.nth parts (List.length parts - 1)

let starts_with_with s =
  String.length s >= 5 && String.sub s 0 5 = "with_"

type resolve = string list -> Lint_summary.t option

(* ------------------------------------------------------------------ *)
(* R2: lease consumption / escape analysis                             *)
(* ------------------------------------------------------------------ *)

let arg_is name (_, a) = is_ident_named name a

let validator_names = [ "valid"; "end_read"; "try_upgrade_to_write" ]

(* Does [e] contain a call to one of the validation primitives (on any
   lock)?  A branch guarded by such a call observing failure may abandon
   its lease: an invalidated lease is worthless and carries no cleanup
   obligation. *)
let contains_validator e =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          if is_call_of validator_names e then found := true;
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  !found

(* Handing a lease to a callee consumes it unless the callee resolves to
   a summary that provably never validates any lease, transitively. *)
let handoff_consumes (resolve : resolve) f =
  match flatten_ident f with
  | [] -> true (* complex callee: benefit of the doubt *)
  | parts when List.mem (last_part parts) validator_names -> true
  | parts -> (
    match resolve parts with
    | None -> true (* stdlib / parameter / unknown: benefit of the doubt *)
    | Some s -> s.Lint_summary.sm_lease)

(* Does [e] consume the lease on every syntactic path?  "Consume" means:
   appear as a direct argument of some application — a validator
   ([valid] / [end_read] / [try_upgrade_to_write]) or a helper call the
   lease is handed off to (provided the helper does not provably ignore
   leases, see {!handoff_consumes}).  Branching nodes consume if their
   scrutinee does, or if every branch does; sequencing nodes if any
   component does.  The failure branch of a validation test is exempt
   (see {!contains_validator}). *)
let rec consumes_on_all_paths resolve name e =
  let ok = consumes_on_all_paths resolve name in
  match e.pexp_desc with
  | Pexp_apply (f, args) when List.exists (arg_is name) args ->
    handoff_consumes resolve f
    || List.exists ok (List.map snd args)
  | Pexp_ifthenelse (c, t, eo) ->
    ok c
    ||
    let exempt_then, exempt_else =
      match c.pexp_desc with
      | Pexp_apply (f, [ (_, inner) ]) when is_ident_named "not" f ->
        (* [if not (Olock.valid ...) then <failure> else ...] *)
        (contains_validator inner, false)
      | _ ->
        (* [if Olock.end_read ... then ... else <failure>] *)
        (false, contains_validator c)
    in
    (ok t || exempt_then)
    && ((match eo with Some el -> ok el | None -> false) || exempt_else)
  | Pexp_match (s, cases) | Pexp_try (s, cases) ->
    ok s
    || (cases <> [] && List.for_all (fun c -> ok c.pc_rhs) cases)
  | Pexp_sequence (a, b) -> ok a || ok b
  | Pexp_let (_, vbs, body) ->
    List.exists (fun vb -> ok vb.pvb_expr) vbs || ok body
  | Pexp_while (c, b) -> ok c || ok b
  | Pexp_fun _ | Pexp_function _ ->
    (* A closure body runs at an unknown time; a lease captured there is
       not a validation on this path. *)
    false
  | _ -> List.exists ok (immediate_subexprs e)

(* First location where the lease escapes into a data structure, if
   any. *)
let escape_site name e =
  let found = ref None in
  let note loc = if !found = None then found := Some loc in
  let check_parts loc parts =
    if List.exists (is_ident_named name) parts then note loc
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_tuple els | Pexp_array els -> check_parts e.pexp_loc els
          | Pexp_construct (_, Some arg) | Pexp_variant (_, Some arg) ->
            check_parts e.pexp_loc
              (match arg.pexp_desc with
              | Pexp_tuple els -> els
              | _ -> [ arg ])
          | Pexp_record (fields, _) ->
            check_parts e.pexp_loc (List.map snd fields)
          | Pexp_setfield (_, _, v) -> check_parts e.pexp_loc [ v ]
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  !found

(* ------------------------------------------------------------------ *)
(* R3: deny list under a held write permit                             *)
(* ------------------------------------------------------------------ *)

let blocking_unqualified =
  [
    "print_string";
    "print_endline";
    "print_newline";
    "prerr_string";
    "prerr_endline";
    "read_line";
    "input_line";
    "input_char";
    "input_value";
    "really_input";
    "output_string";
    "output_char";
    "output_bytes";
    "output_value";
    "flush";
    "flush_all";
  ]

(* [Some reason] when calling [callee] would block / side-effect while a
   write permit is held. *)
let deny_reason callee =
  match flatten_ident callee with
  | [ "Domain"; "join" ] -> Some "Domain.join blocks on another domain"
  | [ "Mutex"; "lock" ] -> Some "Mutex.lock can block"
  | [ "Condition"; "wait" ] -> Some "Condition.wait blocks"
  | "Unix" :: _ -> Some "Unix syscalls can block"
  | [ "Pool"; f ]
    when List.mem f
           [
             "run";
             "parallel_for";
             "parallel_for_workers";
             "parallel_for_ranges";
             "parallel_reduce";
             "shutdown";
             "with_pool";
           ] ->
    Some (Printf.sprintf "Pool.%s joins worker domains" f)
  | parts when parts <> [] && List.nth parts (List.length parts - 1) = "start_read"
               && List.length parts >= 2 ->
    Some "taking a read lease on another lock while holding a write permit"
  | [ f ] when List.mem f blocking_unqualified ->
    Some (Printf.sprintf "channel I/O (%s)" f)
  | [ ("Printf" | "Format"); ("printf" | "eprintf" | "fprintf") ] ->
    Some "formatted channel I/O"
  | _ -> None

(* ------------------------------------------------------------------ *)
(* R5: fd discipline                                                   *)
(* ------------------------------------------------------------------ *)

let opener_parts e =
  match e.pexp_desc with
  | Pexp_apply (f, _) ->
    let parts = flatten_ident f in
    if Lint_summary.is_opener parts then Some parts else None
  | _ -> None

(* Which bound variables of [pat] hold fds from [opener]?  [Unix.pipe] /
   [socketpair] yield two; [Unix.accept] yields [(fd, addr)] — only the
   first component is an fd. *)
let fd_vars_of opener pat =
  match pat.ppat_desc with
  | Ppat_var { txt; _ } -> [ txt ]
  | Ppat_tuple pats ->
    let vars =
      List.filter_map
        (fun p ->
          match p.ppat_desc with
          | Ppat_var { txt; _ } -> Some txt
          | _ -> None)
        pats
    in
    if opener = [ "Unix"; "pipe" ] || opener = [ "Unix"; "socketpair" ] then
      vars
    else (match vars with v :: _ -> [ v ] | [] -> [])
  | _ -> []

let contains_close_of name e =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_apply (f, args)
            when Lint_summary.is_closer (flatten_ident f)
                 && List.exists (arg_is name) args ->
            found := true
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  !found

(* [Fun.protect ~finally:(fun () -> ... close fd ...)] anywhere in the
   scope discharges the whole obligation. *)
let fd_fun_protected name e =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_apply (f, args) when flatten_ident f = [ "Fun"; "protect" ] ->
            List.iter
              (fun (lbl, a) ->
                match lbl with
                | Asttypes.Labelled "finally" when contains_close_of name a ->
                  found := true
                | _ -> ())
              args
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  !found

(* Local helpers ([let refuse msg = ... Unix.close fd ...]) that close
   the captured fd: calling one is a consumption. *)
let local_closers_of name e =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_let (_, vbs, _) ->
            List.iter
              (fun vb ->
                match vb.pvb_pat.ppat_desc with
                | Ppat_var { txt; _ } when contains_close_of name vb.pvb_expr ->
                  acc := txt :: !acc
                | _ -> ())
              vbs
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  !acc

(* Does [e] consume the fd on every syntactic path?  Consumption is
   ownership leaving this scope: a close, storage into a data
   structure, a return in tail position, a hand-off to a [with_]-style
   owner / a local closing helper / a resolved helper that closes fds /
   any callee in tail position. *)
let rec fd_consumed resolve local_closers name ~tail e =
  let sub = fd_consumed resolve local_closers name ~tail:false in
  let ok_tail = fd_consumed resolve local_closers name ~tail in
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident n; _ } when n = name -> tail
  | Pexp_apply (f, args) -> (
    let parts = flatten_ident f in
    let direct_arg = List.exists (arg_is name) args in
    let callee_closes =
      Lint_summary.is_closer parts
      || (parts <> [] && starts_with_with (last_part parts))
      || (match resolve parts with
         | Some s -> s.Lint_summary.sm_direct.Lint_summary.e_fd_close
         | None -> false)
    in
    match parts with
    | [ n ] when List.mem n local_closers -> true
    | _ ->
      (direct_arg && (callee_closes || tail))
      || List.exists sub (f :: List.map snd args))
  | Pexp_tuple els | Pexp_array els ->
    List.exists (is_ident_named name) els || List.exists sub els
  | Pexp_construct (_, Some arg) | Pexp_variant (_, Some arg) ->
    (match arg.pexp_desc with
    | Pexp_tuple els -> List.exists (is_ident_named name) els
    | _ -> is_ident_named name arg)
    || sub arg
  | Pexp_record (fields, base) ->
    List.exists (fun (_, v) -> is_ident_named name v) fields
    || List.exists sub (List.map snd fields)
    || (match base with Some b -> sub b | None -> false)
  | Pexp_setfield (o, _, v) -> is_ident_named name v || sub o || sub v
  | Pexp_sequence (a, b) -> sub a || ok_tail b
  | Pexp_let (_, vbs, body) ->
    List.exists (fun vb -> sub vb.pvb_expr) vbs || ok_tail body
  | Pexp_ifthenelse (c, t, eo) ->
    sub c
    || (ok_tail t && match eo with Some el -> ok_tail el | None -> false)
  | Pexp_match (s, cases) | Pexp_try (s, cases) ->
    sub s || (cases <> [] && List.for_all (fun c -> ok_tail c.pc_rhs) cases)
  | Pexp_while (c, b) -> sub c || sub b
  | Pexp_fun _ | Pexp_function _ -> false
  | _ -> List.exists sub (immediate_subexprs e)

(* Ownership has left [e] for the main path: closed, escaped into a
   data structure, or handed to a [with_] owner / local closer. *)
let fd_released resolve local_closers name e =
  contains_close_of name e
  || escape_site name e <> None
  || fd_consumed resolve local_closers name ~tail:false e

(* May calling [parts] raise?  Proxy: directly blocking (syscalls,
   channel I/O) or transitively may-block per the summaries.  Closes are
   exempt — they are the discharge we are looking for. *)
let risky_reason (resolve : resolve) parts =
  if parts = [] || Lint_summary.is_closer parts then None
  else
    match Lint_summary.block_reason parts with
    | Some r -> Some r
    | None -> (
      match resolve parts with
      | Some s -> s.Lint_summary.sm_block
      | None -> None)

let is_exception_case c =
  match c.pc_lhs.ppat_desc with Ppat_exception _ -> true | _ -> false

(* First risky call in [e] that is not under a [try] or a
   [match ... with exception ...] (those paths are assumed to clean
   up). *)
let rec unguarded_risky resolve e =
  match e.pexp_desc with
  | Pexp_try _ -> None
  | Pexp_match (_, cases) when List.exists is_exception_case cases -> None
  | Pexp_fun _ | Pexp_function _ -> None
  | Pexp_apply (f, args) -> (
    match risky_reason resolve (flatten_ident f) with
    | Some reason ->
      Some (e.pexp_loc, String.concat "." (flatten_ident f), reason)
    | None ->
      List.fold_left
        (fun acc a ->
          match acc with Some _ -> acc | None -> unguarded_risky resolve a)
        None
        (f :: List.map snd args))
  | _ ->
    List.fold_left
      (fun acc a ->
        match acc with Some _ -> acc | None -> unguarded_risky resolve a)
      None (immediate_subexprs e)

(* Scan the linear spine of the fd's scope: a risky, unguarded call
   sequenced before the point where ownership leaves the scope leaks
   the fd on the error path. *)
let rec fd_risky_scan resolve local_closers name e =
  let released = fd_released resolve local_closers name in
  match e.pexp_desc with
  | Pexp_sequence (a, b) ->
    if released a then None
    else (
      match unguarded_risky resolve a with
      | Some _ as r -> r
      | None -> fd_risky_scan resolve local_closers name b)
  | Pexp_let (_, vbs, body) ->
    let rec over = function
      | [] -> fd_risky_scan resolve local_closers name body
      | vb :: rest ->
        if released vb.pvb_expr then None
        else (
          match unguarded_risky resolve vb.pvb_expr with
          | Some _ as r -> r
          | None -> over rest)
    in
    over vbs
  | _ -> None

(* ------------------------------------------------------------------ *)
(* R6 / R7 site classification                                         *)
(* ------------------------------------------------------------------ *)

(* Does [e] contain a call that (transitively) appends to the WAL? *)
let contains_wal_call (resolve : resolve) e =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } -> (
            let parts = try Longident.flatten txt with _ -> [] in
            if parts = [ "Wal"; "append" ] then found := true
            else
              match resolve parts with
              | Some s when s.Lint_summary.sm_wal -> found := true
              | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  !found

(* A binding is a select loop when [Unix.select] appears in its own
   body — not inside a nested lambda or a nested let-bound function,
   whose select belongs to *them*. *)
let contains_select_directly e =
  let found = ref false in
  let rec go e =
    match e.pexp_desc with
    | Pexp_ident { txt; _ }
      when (try Longident.flatten txt with _ -> []) = [ "Unix"; "select" ] ->
      found := true
    | Pexp_fun _ | Pexp_function _ -> ()
    | Pexp_let (_, vbs, body) ->
      List.iter
        (fun vb ->
          match vb.pvb_expr.pexp_desc with
          | Pexp_fun _ | Pexp_function _ -> ()
          | _ -> go vb.pvb_expr)
        vbs;
      go body
    | _ -> List.iter go (immediate_subexprs e)
  in
  go e;
  !found

let rec strip_funs e =
  match e.pexp_desc with Pexp_fun (_, _, _, b) -> strip_funs b | _ -> e

let is_select_loop vb =
  match vb.pvb_pat.ppat_desc with
  | Ppat_var _ -> contains_select_directly (strip_funs vb.pvb_expr)
  | _ -> false

(* ------------------------------------------------------------------ *)
(* The per-file checker                                                *)
(* ------------------------------------------------------------------ *)

let check_structure ~file ~hot ~atomic_ok ~server ~(resolve : resolve)
    (str : structure) : finding list =
  let findings = ref [] in
  (* Every distinct [@lint.allow] seen, for the R8 stale ledger. *)
  let ledger : (int * int * string, allow) Hashtbl.t = Hashtbl.create 16 in
  (* Active [@lint.allow] suppressions, innermost first. *)
  let allows : allow list ref = ref [] in
  (* Names currently shadowing the polymorphic [compare]. *)
  let shadowed : string list ref = ref [] in
  (* Inside a write-permit critical section? *)
  let held = ref false in
  (* Lexically after a dominating WAL append (R6)? *)
  let walled = ref false in
  (* Name of the enclosing select loop, if any (R7). *)
  let in_select : string option ref = ref None in

  let intern (a : allow) =
    let pos = a.al_loc.Location.loc_start in
    let key = (pos.Lexing.pos_lnum, pos.Lexing.pos_cnum, a.al_rule) in
    match Hashtbl.find_opt ledger key with
    | Some existing -> existing
    | None ->
      Hashtbl.add ledger key a;
      a
  in
  let register_attrs attrs =
    List.map intern (List.filter_map allow_of_attribute attrs)
  in

  let push loc rule message =
    let pos = loc.Location.loc_start in
    findings :=
      {
        file;
        line = pos.Lexing.pos_lnum;
        col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
        rule;
        message;
      }
      :: !findings
  in

  let emit loc rule message =
    let suppression =
      List.find_opt (fun a -> a.al_rule = rule) !allows
    in
    match suppression with
    | Some a when rule <> rule_atomic_confinement || a.al_justified ->
      a.al_used <- true
    | Some a ->
      a.al_used <- true;
      push loc rule
        (message
        ^ " (suppressing atomic-confinement requires a justification: \
           [@lint.allow \"atomic-confinement: why\"])")
    | None -> push loc rule message
  in

  let with_allows attrs body =
    let saved = !allows in
    allows := register_attrs attrs @ !allows;
    body ();
    allows := saved
  in
  let with_shadowed names body =
    let saved = !shadowed in
    shadowed := names @ !shadowed;
    body ();
    shadowed := saved
  in
  let with_held v body =
    let saved = !held in
    held := v;
    body ();
    held := saved
  in
  let with_walled v body =
    let saved = !walled in
    walled := v;
    body ();
    walled := saved
  in
  let with_select v body =
    let saved = !in_select in
    in_select := v;
    body ();
    in_select := saved
  in

  (* --- point checks ------------------------------------------------ *)
  let check_longident loc parts =
    (match parts with
    | "Atomic" :: _ | "Stdlib" :: "Atomic" :: _ ->
      if not atomic_ok then
        emit loc rule_atomic_confinement
          "Atomic.* outside the sync modules; move this behind a Sync \
           helper (lib/datalog/sync.ml) or justify with [@lint.allow \
           \"atomic-confinement: why\"]"
    | _ -> ());
    match parts with
    | [ "Obj"; "magic" ] ->
      emit loc rule_hygiene "Obj.magic is banned in this codebase"
    | [ "compare" ] when hot && not (List.mem "compare" !shadowed) ->
      emit loc rule_hygiene
        "polymorphic compare in a hot module; use Key.compare, \
         Int.compare or a specialised three-way comparator"
    | [ "Stdlib"; "compare" ] when hot ->
      emit loc rule_hygiene
        "Stdlib.compare in a hot module; use Key.compare, Int.compare \
         or a specialised three-way comparator"
    | _ -> ()
  in

  let poly_ops = [ "="; "<>"; "<"; ">"; "<="; ">=" ] in
  let check_apply e =
    match e.pexp_desc with
    | Pexp_apply (f, args) ->
      (if hot then
         match f.pexp_desc with
         | Pexp_ident { txt = Longident.Lident op; _ }
           when List.mem op poly_ops
                && List.exists
                     (fun (_, a) ->
                       match a.pexp_desc with
                       | Pexp_tuple _ -> true
                       | _ -> false)
                     args ->
           emit e.pexp_loc rule_hygiene
             (Printf.sprintf
                "polymorphic (%s) on a tuple in a hot module; compare \
                 components with a specialised comparator"
                op)
         | _ -> ());
      if !held then (
        match deny_reason f with
        | Some reason ->
          emit e.pexp_loc rule_no_blocking
            (Printf.sprintf
               "%s while holding a write permit; hoist it out of the \
                critical section"
               reason)
        | None -> (
          (* interprocedural: the callee's transitive summary *)
          match resolve (flatten_ident f) with
          | Some s when s.Lint_summary.sm_block <> None ->
            emit e.pexp_loc rule_no_blocking
              (Printf.sprintf
                 "call to %s may block (%s) while holding a write permit; \
                  hoist it out of the critical section"
                 s.Lint_summary.sm_key
                 (Option.value ~default:"" s.Lint_summary.sm_block))
          | _ -> ()));
      (* R7: inside a select loop every potentially-blocking call must be
         a sanctioned dispatch point. *)
      (match !in_select with
      | Some loop_name -> (
        let parts = flatten_ident f in
        if
          parts <> [ loop_name ]
          && parts <> [ "Unix"; "select" ]
          && not (Lint_summary.is_closer parts)
        then
          let resolved = resolve parts in
          let sanctioned =
            match resolved with
            | Some s -> s.Lint_summary.sm_dispatch
            | None -> false
          in
          let why =
            match Lint_summary.block_reason parts with
            | Some r -> Some r
            | None -> (
              match resolved with
              | Some s when not s.Lint_summary.sm_dispatch ->
                s.Lint_summary.sm_block
              | _ -> None)
          in
          match why with
          | Some reason when not sanctioned ->
            emit e.pexp_loc rule_select_purity
              (Printf.sprintf
                 "%s may block (%s) inside the %s select loop; route it \
                  through a [@lint.dispatch] point or justify inline"
                 (String.concat "." parts)
                 reason loop_name)
          | _ -> ())
      | None -> ());
      (* R6: admissions must be dominated by a WAL append. *)
      (if server && not !walled then
         match last_part (flatten_ident f) with
         | ("admit_ingest" | "install_program") as callee ->
           emit e.pexp_loc rule_wal_before_ack
             (Printf.sprintf
                "%s without a dominating WAL append; admit through \
                 wal_admit first (wal-before-ack, PR 9 invariant)"
                callee)
         | _ -> ());
      (* [ignore (Olock.start_read l)]: a lease made only to be thrown
         away. *)
      (match (f.pexp_desc, args) with
      | Pexp_ident { txt = Longident.Lident "ignore"; _ }, [ (_, a) ]
        when is_start_read a ->
        emit e.pexp_loc rule_lease_discipline
          "read lease discarded without validation"
      | _ -> ())
    | _ -> ()
  in

  let check_setfield e =
    match e.pexp_desc with
    | Pexp_setfield (_, { txt; _ }, _) when server && not !walled -> (
      match (try Longident.flatten txt with _ -> []) with
      | parts when List.mem (last_part parts) [ "fs_rows"; "fs_count" ] ->
        emit e.pexp_loc rule_wal_before_ack
          (Printf.sprintf
             "assignment to %s without a dominating WAL append; admit \
              through wal_admit first (wal-before-ack, PR 9 invariant)"
             (last_part parts))
      | _ -> ())
    | _ -> ()
  in

  let check_lease_binding vb body =
    if is_start_read vb.pvb_expr then
      match vb.pvb_pat.ppat_desc with
      | Ppat_var { txt = name; _ } ->
        with_allows vb.pvb_attributes (fun () ->
            (match escape_site name body with
            | Some loc ->
              emit loc rule_lease_discipline
                (Printf.sprintf
                   "lease %s escapes into a data structure; leases are \
                    ephemeral validation tokens"
                   name)
            | None -> ());
            if not (consumes_on_all_paths resolve name body) then
              emit vb.pvb_loc rule_lease_discipline
                (Printf.sprintf
                   "lease %s is not validated (valid/end_read/\
                    try_upgrade_to_write) on every path of its scope"
                   name))
      | Ppat_any ->
        emit vb.pvb_loc rule_lease_discipline
          "read lease discarded without validation"
      | _ -> ()
  in

  (* R5: one fd binding (a let or a match case), analysed over its
     scope. *)
  let check_fd ~opener ~loc name scope =
    if not (fd_fun_protected name scope) then begin
      let local_closers = local_closers_of name scope in
      if not (fd_consumed resolve local_closers name ~tail:true scope) then
        emit loc rule_fd_discipline
          (Printf.sprintf
             "fd %s from %s is not closed (or returned/stored/handed off) \
              on every path of its scope; use Fun.protect or close it on \
              the error paths"
             name
             (String.concat "." opener))
      else
        match fd_risky_scan resolve local_closers name scope with
        | Some (rloc, callee, reason) ->
          emit rloc rule_fd_discipline
            (Printf.sprintf
               "fd %s leaks if %s raises (%s); close %s on the error path \
                or wrap the region in Fun.protect"
               name callee reason name)
        | None -> ()
    end
  in
  let check_fd_bindings vbs body =
    List.iter
      (fun vb ->
        match opener_parts vb.pvb_expr with
        | Some opener ->
          with_allows vb.pvb_attributes (fun () ->
              List.iter
                (fun name ->
                  check_fd ~opener ~loc:vb.pvb_loc name body)
                (fd_vars_of opener vb.pvb_pat))
        | None -> ())
      vbs
  in
  let check_fd_cases scrutinee cases =
    match opener_parts scrutinee with
    | Some opener ->
      List.iter
        (fun c ->
          if not (is_exception_case c) then
            List.iter
              (fun name ->
                check_fd ~opener ~loc:c.pc_lhs.ppat_loc name c.pc_rhs)
              (fd_vars_of opener c.pc_lhs))
        cases
    | None -> ()
  in

  (* Update the held flag after a statement in a sequence. *)
  let update_held stmt =
    if is_acquire_stmt stmt then held := true
    else if is_release_stmt stmt then held := false
  in
  let update_walled stmt =
    if server && contains_wal_call resolve stmt then walled := true
  in

  (* Walk one value binding's right-hand side, entering select-loop mode
     when the binding is one. *)
  let walk_binding it vb =
    let go () = it.Ast_iterator.expr it vb.pvb_expr in
    match vb.pvb_pat.ppat_desc with
    | Ppat_var { txt = name; _ } when is_select_loop vb ->
      with_select (Some name) go
    | _ -> go ()
  in

  (* --- the iterator ------------------------------------------------ *)
  let rec expr it e =
    with_allows e.pexp_attributes (fun () ->
        (match e.pexp_desc with
        | Pexp_ident { txt; _ } ->
          check_longident e.pexp_loc
            (try Longident.flatten txt with _ -> [])
        | _ -> ());
        check_apply e;
        check_setfield e;
        match e.pexp_desc with
        | Pexp_sequence (a, b) ->
          expr it a;
          update_held a;
          update_walled a;
          expr it b
        | Pexp_let (rf, vbs, body) ->
          let names = List.concat_map (fun vb -> pattern_vars vb.pvb_pat) vbs in
          let iter_vbs () =
            List.iter
              (fun vb ->
                with_allows vb.pvb_attributes (fun () -> walk_binding it vb))
              vbs
          in
          (match rf with
          | Asttypes.Recursive -> with_shadowed names iter_vbs
          | Asttypes.Nonrecursive -> iter_vbs ());
          List.iter (fun vb -> check_lease_binding vb body) vbs;
          check_fd_bindings vbs body;
          let saved_held = !held in
          let saved_walled = !walled in
          List.iter (fun vb -> update_held vb.pvb_expr) vbs;
          List.iter (fun vb -> update_walled vb.pvb_expr) vbs;
          with_shadowed names (fun () -> expr it body);
          held := saved_held;
          walled := saved_walled
        | Pexp_ifthenelse (c, t, eo) ->
          expr it c;
          let then_held, else_held =
            match c.pexp_desc with
            | _ when is_try_acquire c -> (true, !held)
            | Pexp_apply (f, [ (_, inner) ])
              when is_ident_named "not" f && is_try_acquire inner ->
              (!held, true)
            | _ -> (!held, !held)
          in
          with_held then_held (fun () -> expr it t);
          Option.iter (fun el -> with_held else_held (fun () -> expr it el)) eo
        | Pexp_fun (_, dflt, pat, body) ->
          Option.iter (expr it) dflt;
          it.Ast_iterator.pat it pat;
          with_shadowed (pattern_vars pat) (fun () ->
              with_held false (fun () ->
                  with_walled false (fun () -> expr it body)))
        | Pexp_function cases ->
          with_walled false (fun () -> iter_cases it ~reset_held:true cases)
        | Pexp_match (s, cases) ->
          expr it s;
          check_fd_cases s cases;
          if server && contains_wal_call resolve s then
            with_walled true (fun () ->
                iter_cases it ~reset_held:false cases)
          else iter_cases it ~reset_held:false cases
        | Pexp_try (s, cases) ->
          expr it s;
          iter_cases it ~reset_held:false cases
        | _ -> Ast_iterator.default_iterator.expr it e)
  and iter_cases it ~reset_held cases =
    List.iter
      (fun c ->
        with_shadowed (pattern_vars c.pc_lhs) (fun () ->
            it.Ast_iterator.pat it c.pc_lhs;
            Option.iter (expr it) c.pc_guard;
            if reset_held then with_held false (fun () -> expr it c.pc_rhs)
            else expr it c.pc_rhs))
      cases
  in

  let typ it ty =
    (match ty.ptyp_desc with
    | Ptyp_constr ({ txt; _ }, _) ->
      (match (try Longident.flatten txt with _ -> []) with
      | "Atomic" :: _ | "Stdlib" :: "Atomic" :: _ ->
        if not atomic_ok then
          emit ty.ptyp_loc rule_atomic_confinement
            "Atomic.t outside the sync modules; wrap the state in a Sync \
             helper type"
      | _ -> ())
    | _ -> ());
    Ast_iterator.default_iterator.typ it ty
  in

  let structure it items =
    let saved_shadowed = !shadowed in
    let saved_allows = !allows in
    List.iter
      (fun item ->
        match item.pstr_desc with
        | Pstr_value (rf, vbs) ->
          held := false;
          walled := false;
          let names =
            List.concat_map (fun vb -> pattern_vars vb.pvb_pat) vbs
          in
          let iter_vbs () =
            List.iter
              (fun vb ->
                with_allows vb.pvb_attributes (fun () ->
                    it.Ast_iterator.pat it vb.pvb_pat;
                    walk_binding it vb))
              vbs
          in
          (match rf with
          | Asttypes.Recursive ->
            shadowed := names @ !shadowed;
            iter_vbs ()
          | Asttypes.Nonrecursive ->
            iter_vbs ();
            shadowed := names @ !shadowed)
        | Pstr_attribute attr ->
          (* A floating [@@@lint.allow "..."] suppresses for the rest of
             the enclosing structure. *)
          (match allow_of_attribute attr with
          | Some a -> allows := intern a :: !allows
          | None -> ())
        | _ -> Ast_iterator.default_iterator.structure_item it item)
      items;
    shadowed := saved_shadowed;
    allows := saved_allows
  in

  let it =
    { Ast_iterator.default_iterator with expr; typ; structure }
  in
  it.Ast_iterator.structure it str;
  (* R8: every registered allow must have matched something. *)
  Hashtbl.iter
    (fun _ a ->
      if not a.al_used then
        push a.al_loc rule_stale_suppression
          (if a.al_rule = "malformed" then
             "malformed [@lint.allow] payload; expected a string \
              \"rule: justification\""
           else
             Printf.sprintf
               "[@lint.allow \"%s\"] suppresses nothing here; remove it or \
                fix the rule name"
               a.al_rule))
    ledger;
  List.sort compare_finding !findings

(* ------------------------------------------------------------------ *)
(* Interface (.mli) checking                                           *)
(* ------------------------------------------------------------------ *)

(* Interfaces are scanned only for parse errors and Obj hygiene (an
   [Obj.t] in a signature launders unsafe casts through every caller).
   R1 deliberately does not apply: exposing an [Atomic.t] at a signature
   is lib/modelcheck's abstraction mechanism, and confinement of *uses*
   is already enforced at every implementation site. *)
let check_signature ~file (sg : signature) : finding list =
  let findings = ref [] in
  let push loc message =
    let pos = loc.Location.loc_start in
    findings :=
      {
        file;
        line = pos.Lexing.pos_lnum;
        col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
        rule = rule_hygiene;
        message;
      }
      :: !findings
  in
  let typ it ty =
    (match ty.ptyp_desc with
    | Ptyp_constr ({ txt; _ }, _) -> (
      match (try Longident.flatten txt with _ -> []) with
      | "Obj" :: _ ->
        push ty.ptyp_loc
          "Obj.* in an interface; unsafe casts must not be part of a \
           module's contract"
      | _ -> ())
    | _ -> ());
    Ast_iterator.default_iterator.typ it ty
  in
  let it = { Ast_iterator.default_iterator with typ } in
  it.Ast_iterator.signature it sg;
  List.sort compare_finding !findings

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let parse_string ~file src =
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf file;
  Parse.implementation lexbuf

let parse_error_finding ~file exn =
  let line, col, msg =
    match Location.error_of_exn exn with
    | Some (`Ok err) ->
      let loc = err.Location.main.Location.loc in
      ( loc.Location.loc_start.Lexing.pos_lnum,
        loc.Location.loc_start.Lexing.pos_cnum
        - loc.Location.loc_start.Lexing.pos_bol,
        Printexc.to_string exn )
    | _ -> (1, 0, Printexc.to_string exn)
  in
  { file; line; col; rule = rule_parse_error; message = msg }

let check_source ?hot ?atomic_ok ?server ~file src =
  let hot = match hot with Some h -> h | None -> default_hot file in
  let atomic_ok =
    match atomic_ok with
    | Some a -> a
    | None -> default_atomic_whitelisted file
  in
  let server =
    match server with Some s -> s | None -> default_server file
  in
  match parse_string ~file src with
  | str ->
    (* Single-file interprocedural environment: enough for local
       helpers, which is what the fixtures and unit checks exercise. *)
    let summaries = Lint_summary.of_structure ~file str in
    let cg = Lint_callgraph.build summaries in
    let ctx = Lint_summary.file_ctx ~file str in
    let resolve = Lint_callgraph.resolver cg ~file ctx in
    check_structure ~file ~hot ~atomic_ok ~server ~resolve str
  | exception exn -> [ parse_error_finding ~file exn ]

let check_interface_source ~file src =
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf file;
  match Parse.interface lexbuf with
  | sg -> check_signature ~file sg
  | exception exn -> [ parse_error_finding ~file exn ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_file ?hot ?atomic_ok ?server path =
  if Filename.check_suffix path ".mli" then
    check_interface_source ~file:path (read_file path)
  else check_source ?hot ?atomic_ok ?server ~file:path (read_file path)

(* Collect the .ml/.mli files under [roots], skipping build artefacts
   and the deliberately-violating lint fixtures. *)
let scan_roots roots =
  let skip_dir name =
    name = "lint_fixtures" || name = "_build"
    || (String.length name > 0 && name.[0] = '.')
  in
  let files = ref [] in
  let rec walk dir =
    match Sys.readdir dir with
    | entries ->
      Array.sort compare entries;
      Array.iter
        (fun entry ->
          let path = Filename.concat dir entry in
          if Sys.is_directory path then (
            if not (skip_dir entry) then walk path)
          else if
            Filename.check_suffix entry ".ml"
            || Filename.check_suffix entry ".mli"
          then files := path :: !files)
        entries
    | exception Sys_error _ -> ()
  in
  List.iter
    (fun root ->
      if Sys.file_exists root then
        if Sys.is_directory root then walk root
        else if
          Filename.check_suffix root ".ml"
          || Filename.check_suffix root ".mli"
        then files := root :: !files)
    roots;
  List.rev !files

(* Whole-repo, two-pass check: summarise every implementation, close
   the call graph, then run the rules per file against the global
   environment. *)
let check_roots roots =
  let files = scan_roots roots in
  let parsed =
    List.map
      (fun f ->
        if Filename.check_suffix f ".mli" then (f, `Interface)
        else
          match parse_string ~file:f (read_file f) with
          | str -> (f, `Impl str)
          | exception exn -> (f, `Error exn))
      files
  in
  let summaries =
    List.concat_map
      (fun (f, p) ->
        match p with
        | `Impl str -> Lint_summary.of_structure ~file:f str
        | _ -> [])
      parsed
  in
  let cg = Lint_callgraph.build summaries in
  let findings =
    List.concat_map
      (fun (f, p) ->
        match p with
        | `Interface -> check_file f
        | `Error exn -> [ parse_error_finding ~file:f exn ]
        | `Impl str ->
          let ctx = Lint_summary.file_ctx ~file:f str in
          let resolve = Lint_callgraph.resolver cg ~file:f ctx in
          check_structure ~file:f ~hot:(default_hot f)
            ~atomic_ok:(default_atomic_whitelisted f)
            ~server:(default_server f) ~resolve str)
      parsed
  in
  (files, findings)

(* ------------------------------------------------------------------ *)
(* JSON emission / parsing (no external deps)                          *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

type json =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jlist of json list
  | Jobj of (string * json) list

exception Json_error of string

(* Minimal recursive-descent JSON parser — just enough for our own
   schemas (strings, ints, arrays, objects). *)
let json_parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Json_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let h = String.sub s !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ h) with
    | Some v -> v
    | None -> fail "bad \\u escape"
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some '"' -> advance (); Buffer.add_char b '"'; go ()
        | Some '\\' -> advance (); Buffer.add_char b '\\'; go ()
        | Some '/' -> advance (); Buffer.add_char b '/'; go ()
        | Some 'n' -> advance (); Buffer.add_char b '\n'; go ()
        | Some 'r' -> advance (); Buffer.add_char b '\r'; go ()
        | Some 't' -> advance (); Buffer.add_char b '\t'; go ()
        | Some 'b' -> advance (); Buffer.add_char b '\b'; go ()
        | Some 'f' -> advance (); Buffer.add_char b '\012'; go ()
        | Some 'u' ->
          advance ();
          let v = parse_hex4 () in
          (* our emitter only escapes control chars this way *)
          if v < 0x80 then Buffer.add_char b (Char.chr v)
          else Buffer.add_char b '?';
          go ()
        | _ -> fail "bad escape")
      | Some c ->
        advance ();
        Buffer.add_char b c;
        go ()
    in
    go ();
    Buffer.contents b
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Jstr (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then (advance (); Jobj [])
      else
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            Jobj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then (advance (); Jlist [])
      else
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            Jlist (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elements []
    | Some 't' ->
      if !pos + 4 <= n && String.sub s !pos 4 = "true" then (
        pos := !pos + 4;
        Jbool true)
      else fail "bad literal"
    | Some 'f' ->
      if !pos + 5 <= n && String.sub s !pos 5 = "false" then (
        pos := !pos + 5;
        Jbool false)
      else fail "bad literal"
    | Some 'n' ->
      if !pos + 4 <= n && String.sub s !pos 4 = "null" then (
        pos := !pos + 4;
        Jnull)
      else fail "bad literal"
    | Some c when c = '-' || (c >= '0' && c <= '9') ->
      let start = !pos in
      let num_char c =
        (c >= '0' && c <= '9')
        || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
      in
      while (match peek () with Some c when num_char c -> true | _ -> false) do
        advance ()
      done;
      (match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some v -> Jnum v
      | None -> fail "bad number")
    | _ -> fail "unexpected input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let jget obj key =
  match obj with
  | Jobj fields -> List.assoc_opt key fields
  | _ -> None

let jstr = function Jstr s -> Some s | _ -> None
let jint = function Jnum f -> Some (int_of_float f) | _ -> None

(* --- findings ------------------------------------------------------ *)

let findings_schema = "lint_findings/1"

let finding_to_json_buf b f =
  Printf.bprintf b
    "{\"file\":\"%s\",\"line\":%d,\"col\":%d,\"rule\":\"%s\",\"message\":\"%s\"}"
    (json_escape f.file) f.line f.col (json_escape f.rule)
    (json_escape f.message)

let findings_to_json findings =
  let b = Buffer.create 4096 in
  Printf.bprintf b "{\"schema\":\"%s\",\"count\":%d,\"findings\":["
    findings_schema (List.length findings);
  List.iteri
    (fun i f ->
      Buffer.add_string b (if i > 0 then ",\n  " else "\n  ");
      finding_to_json_buf b f)
    findings;
  if findings <> [] then Buffer.add_char b '\n';
  Buffer.add_string b "]}\n";
  Buffer.contents b

let finding_of_json j =
  match
    ( Option.bind (jget j "file") jstr,
      Option.bind (jget j "line") jint,
      Option.bind (jget j "col") jint,
      Option.bind (jget j "rule") jstr,
      Option.bind (jget j "message") jstr )
  with
  | Some file, Some line, Some col, Some rule, Some message ->
    Some { file; line; col; rule; message }
  | _ -> None

let findings_of_json src =
  match json_parse src with
  | exception Json_error msg -> Error msg
  | j -> (
    match jget j "schema" with
    | Some (Jstr s) when s = findings_schema -> (
      match jget j "findings" with
      | Some (Jlist items) -> (
        let parsed = List.map finding_of_json items in
        if List.for_all Option.is_some parsed then
          Ok (List.filter_map Fun.id parsed)
        else Error "malformed finding entry")
      | _ -> Error "missing findings array")
    | Some (Jstr s) -> Error (Printf.sprintf "unknown schema %S" s)
    | _ -> Error "missing schema")

(* --- baseline ------------------------------------------------------ *)

let baseline_schema = "lint_baseline/1"

type baseline_entry = {
  be_file : string;
  be_rule : string;
  be_message : string;
  be_count : int;
}

(* Finding identity for the ratchet: (file, rule, message), line/col
   deliberately excluded so unrelated edits above a baselined site do
   not churn the baseline. *)
let finding_key f = (f.file, f.rule, f.message)

let baseline_of_findings findings =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun f ->
      let k = finding_key f in
      Hashtbl.replace tbl k
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
    findings;
  Hashtbl.fold
    (fun (be_file, be_rule, be_message) be_count acc ->
      { be_file; be_rule; be_message; be_count } :: acc)
    tbl []
  |> List.sort compare

let baseline_to_json entries =
  let b = Buffer.create 4096 in
  Printf.bprintf b "{\"schema\":\"%s\",\"entries\":[" baseline_schema;
  List.iteri
    (fun i e ->
      Buffer.add_string b (if i > 0 then ",\n  " else "\n  ");
      Printf.bprintf b
        "{\"file\":\"%s\",\"rule\":\"%s\",\"message\":\"%s\",\"count\":%d}"
        (json_escape e.be_file) (json_escape e.be_rule)
        (json_escape e.be_message) e.be_count)
    entries;
  if entries <> [] then Buffer.add_char b '\n';
  Buffer.add_string b "]}\n";
  Buffer.contents b

let baseline_of_json src =
  match json_parse src with
  | exception Json_error msg -> Error msg
  | j -> (
    match jget j "schema" with
    | Some (Jstr s) when s = baseline_schema -> (
      match jget j "entries" with
      | Some (Jlist items) ->
        let parse_entry e =
          match
            ( Option.bind (jget e "file") jstr,
              Option.bind (jget e "rule") jstr,
              Option.bind (jget e "message") jstr,
              Option.bind (jget e "count") jint )
          with
          | Some be_file, Some be_rule, Some be_message, Some be_count ->
            Some { be_file; be_rule; be_message; be_count }
          | _ -> None
        in
        let parsed = List.map parse_entry items in
        if List.for_all Option.is_some parsed then
          Ok (List.filter_map Fun.id parsed)
        else Error "malformed baseline entry"
      | _ -> Error "missing entries array")
    | Some (Jstr s) -> Error (Printf.sprintf "unknown schema %S" s)
    | _ -> Error "missing schema")

(* The ratchet: findings beyond each key's baselined count are new
   (gate fails); baseline entries whose key now fires fewer times are
   stale (the baseline can be shrunk). *)
let diff_baseline entries findings =
  let budget = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let k = (e.be_file, e.be_rule, e.be_message) in
      Hashtbl.replace budget k
        (e.be_count + Option.value ~default:0 (Hashtbl.find_opt budget k)))
    entries;
  let current = Hashtbl.create 64 in
  let fresh =
    List.filter
      (fun f ->
        let k = finding_key f in
        Hashtbl.replace current k
          (1 + Option.value ~default:0 (Hashtbl.find_opt current k));
        match Hashtbl.find_opt budget k with
        | Some left when left > 0 ->
          Hashtbl.replace budget k (left - 1);
          false
        | _ -> true)
      findings
  in
  let stale =
    List.filter_map
      (fun e ->
        let k = (e.be_file, e.be_rule, e.be_message) in
        let now = Option.value ~default:0 (Hashtbl.find_opt current k) in
        if now < e.be_count then Some (e, now) else None)
      entries
  in
  (fresh, stale)
