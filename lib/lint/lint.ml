(* Concurrency-discipline linter for this repository.

   Four rules, checked purely syntactically over the parsetree
   (compiler-libs [Parse] + [Ast_iterator]):

   R1 atomic-confinement: [Atomic.*] may only be referenced inside the
      synchronisation modules (lib/optlock, lib/chaos, lib/parallel,
      lib/telemetry, lib/datalog/sync.ml).  Anywhere else the use must be
      refactored behind a sync helper or carry
      [@lint.allow "atomic-confinement: <justification>"] — for this rule
      the justification text is mandatory.

   R2 lease-discipline: a lease bound from [Olock.start_read] must flow
      into [valid] / [end_read] / [try_upgrade_to_write] (or be handed to
      a helper call) on every syntactic path of the binding's body, and
      must not escape into a tuple / record / constructor / array.

   R3 no-blocking-under-write-permit: between a successful
      [try_start_write] / [start_write] / [try_upgrade_to_write] and the
      matching [end_write] / [abort_write], deny-listed calls are
      forbidden: pool joins, [Domain.join], [Mutex.lock],
      [Condition.wait], [Unix.*], channel I/O, and [Olock.start_read] on
      another lock.

   R4 hygiene: [Obj.magic] is banned everywhere; in the hot modules
      (lib/btree/{btree,btree_seq,btree_tuples,leaf_pack}.ml,
      lib/datalog/{eval,storage,relation}.ml) the polymorphic [compare]
      (bare or [Stdlib.compare]) and polymorphic comparison operators
      applied to tuple literals are banned — use [Key.compare] or a
      three-way tuple comparator.

   The checker is intentionally a lint, not a proof: it tracks the write
   permit as a single boolean through statement sequences and
   if-branches, resets it at function boundaries, and ignores leases that
   cross function boundaries as parameters (the callee's binding site is
   where the discipline is enforced). *)

open Parsetree

type finding = {
  file : string;
  line : int;
  col : int;
  rule : string;
  message : string;
}

let rule_atomic_confinement = "atomic-confinement"
let rule_lease_discipline = "lease-discipline"
let rule_no_blocking = "no-blocking-under-write-permit"
let rule_hygiene = "hygiene"
let rule_parse_error = "parse-error"

let all_rules =
  [
    rule_atomic_confinement;
    rule_lease_discipline;
    rule_no_blocking;
    rule_hygiene;
  ]

let finding_to_string f =
  Printf.sprintf "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule f.message

let compare_finding a b =
  let c = compare a.file b.file in
  if c <> 0 then c
  else
    let c = compare a.line b.line in
    if c <> 0 then c else compare a.col b.col

(* ------------------------------------------------------------------ *)
(* Path classification                                                 *)
(* ------------------------------------------------------------------ *)

let normalize path =
  String.concat "/" (String.split_on_char '\\' path)

let path_has_segment seg path =
  let parts = String.split_on_char '/' (normalize path) in
  List.mem seg parts

let default_atomic_whitelisted path =
  let p = normalize path in
  path_has_segment "optlock" p || path_has_segment "chaos" p
  || path_has_segment "parallel" p
  || path_has_segment "telemetry" p
  || Filename.basename p = "sync.ml"

let hot_modules =
  [
    "btree.ml";
    "key.ml";
    "btree_seq.ml";
    "btree_tuples.ml";
    "leaf_pack.ml";
    "eval.ml";
    "storage.ml";
    "relation.ml";
  ]

let default_hot path = List.mem (Filename.basename (normalize path)) hot_modules

(* ------------------------------------------------------------------ *)
(* Attribute suppression: [@lint.allow "rule: justification"]          *)
(* ------------------------------------------------------------------ *)

type allow = { al_rule : string; al_justified : bool }

let trim = String.trim

let parse_allow_payload s =
  match String.index_opt s ':' with
  | None -> { al_rule = trim s; al_justified = false }
  | Some i ->
    let rule = trim (String.sub s 0 i) in
    let just = trim (String.sub s (i + 1) (String.length s - i - 1)) in
    { al_rule = rule; al_justified = just <> "" }

let allow_of_attribute (attr : attribute) =
  if attr.attr_name.txt <> "lint.allow" then None
  else
    match attr.attr_payload with
    | PStr
        [
          {
            pstr_desc =
              Pstr_eval
                ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
            _;
          };
        ] ->
      Some (parse_allow_payload s)
    | _ -> Some { al_rule = "malformed"; al_justified = false }

let allows_of_attributes attrs = List.filter_map allow_of_attribute attrs

(* ------------------------------------------------------------------ *)
(* Small parsetree helpers                                             *)
(* ------------------------------------------------------------------ *)

let flatten_ident e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> ( try Longident.flatten txt with _ -> [])
  | _ -> []

(* Last component of the callee of an application, provided it is
   module-qualified (e.g. [Olock.start_read] but not a local
   [start_read]). *)
let qualified_callee e =
  match e.pexp_desc with
  | Pexp_apply (f, _) -> (
    match flatten_ident f with
    | _ :: _ :: _ as parts -> Some (List.nth parts (List.length parts - 1))
    | _ -> None)
  | _ -> None

let is_call_of names e =
  match qualified_callee e with Some n -> List.mem n names | None -> false

let is_acquire_stmt e = is_call_of [ "start_write" ] e
let is_release_stmt e = is_call_of [ "end_write"; "abort_write" ] e
let is_try_acquire e =
  is_call_of [ "try_start_write"; "try_upgrade_to_write" ] e

let is_start_read e = is_call_of [ "start_read" ] e

let is_ident_named name e =
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident n; _ } -> n = name
  | _ -> false

(* Immediate sub-expressions of a node, one level deep. *)
let immediate_subexprs e =
  let acc = ref [] in
  let probe =
    {
      Ast_iterator.default_iterator with
      expr = (fun _ c -> acc := c :: !acc);
    }
  in
  Ast_iterator.default_iterator.expr probe e;
  List.rev !acc

let pattern_vars p =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun it p ->
          (match p.ppat_desc with
          | Ppat_var { txt; _ } -> acc := txt :: !acc
          | Ppat_alias (_, { txt; _ }) -> acc := txt :: !acc
          | _ -> ());
          Ast_iterator.default_iterator.pat it p);
    }
  in
  it.pat it p;
  !acc

(* ------------------------------------------------------------------ *)
(* R2: lease consumption / escape analysis                             *)
(* ------------------------------------------------------------------ *)

let arg_is name (_, a) = is_ident_named name a

let validator_names = [ "valid"; "end_read"; "try_upgrade_to_write" ]

(* Does [e] contain a call to one of the validation primitives (on any
   lock)?  A branch guarded by such a call observing failure may abandon
   its lease: an invalidated lease is worthless and carries no cleanup
   obligation. *)
let contains_validator e =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          if is_call_of validator_names e then found := true;
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  !found

(* Does [e] consume the lease on every syntactic path?  "Consume" means:
   appear as a direct argument of some application — a validator
   ([valid] / [end_read] / [try_upgrade_to_write]) or a helper call the
   lease is handed off to.  Branching nodes consume if their scrutinee
   does, or if every branch does; sequencing nodes if any component
   does.  The failure branch of a validation test is exempt (see
   {!contains_validator}). *)
let rec consumes_on_all_paths name e =
  let ok = consumes_on_all_paths name in
  match e.pexp_desc with
  | Pexp_apply (_, args) when List.exists (arg_is name) args -> true
  | Pexp_ifthenelse (c, t, eo) ->
    ok c
    ||
    let exempt_then, exempt_else =
      match c.pexp_desc with
      | Pexp_apply (f, [ (_, inner) ]) when is_ident_named "not" f ->
        (* [if not (Olock.valid ...) then <failure> else ...] *)
        (contains_validator inner, false)
      | _ ->
        (* [if Olock.end_read ... then ... else <failure>] *)
        (false, contains_validator c)
    in
    (ok t || exempt_then)
    && ((match eo with Some el -> ok el | None -> false) || exempt_else)
  | Pexp_match (s, cases) | Pexp_try (s, cases) ->
    ok s
    || (cases <> [] && List.for_all (fun c -> ok c.pc_rhs) cases)
  | Pexp_sequence (a, b) -> ok a || ok b
  | Pexp_let (_, vbs, body) ->
    List.exists (fun vb -> ok vb.pvb_expr) vbs || ok body
  | Pexp_while (c, b) -> ok c || ok b
  | Pexp_fun _ | Pexp_function _ ->
    (* A closure body runs at an unknown time; a lease captured there is
       not a validation on this path. *)
    false
  | _ -> List.exists ok (immediate_subexprs e)

(* First location where the lease escapes into a data structure, if
   any. *)
let escape_site name e =
  let found = ref None in
  let note loc = if !found = None then found := Some loc in
  let check_parts loc parts =
    if List.exists (is_ident_named name) parts then note loc
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_tuple els | Pexp_array els -> check_parts e.pexp_loc els
          | Pexp_construct (_, Some arg) | Pexp_variant (_, Some arg) ->
            check_parts e.pexp_loc
              (match arg.pexp_desc with
              | Pexp_tuple els -> els
              | _ -> [ arg ])
          | Pexp_record (fields, _) ->
            check_parts e.pexp_loc (List.map snd fields)
          | Pexp_setfield (_, _, v) -> check_parts e.pexp_loc [ v ]
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  !found

(* ------------------------------------------------------------------ *)
(* R3: deny list under a held write permit                             *)
(* ------------------------------------------------------------------ *)

let blocking_unqualified =
  [
    "print_string";
    "print_endline";
    "print_newline";
    "prerr_string";
    "prerr_endline";
    "read_line";
    "input_line";
    "input_char";
    "input_value";
    "really_input";
    "output_string";
    "output_char";
    "output_bytes";
    "output_value";
    "flush";
    "flush_all";
  ]

(* [Some reason] when calling [callee] would block / side-effect while a
   write permit is held. *)
let deny_reason callee =
  match flatten_ident callee with
  | [ "Domain"; "join" ] -> Some "Domain.join blocks on another domain"
  | [ "Mutex"; "lock" ] -> Some "Mutex.lock can block"
  | [ "Condition"; "wait" ] -> Some "Condition.wait blocks"
  | "Unix" :: _ -> Some "Unix syscalls can block"
  | [ "Pool"; f ]
    when List.mem f
           [
             "run";
             "parallel_for";
             "parallel_for_workers";
             "parallel_for_ranges";
             "parallel_reduce";
             "shutdown";
             "with_pool";
           ] ->
    Some (Printf.sprintf "Pool.%s joins worker domains" f)
  | parts when parts <> [] && List.nth parts (List.length parts - 1) = "start_read"
               && List.length parts >= 2 ->
    Some "taking a read lease on another lock while holding a write permit"
  | [ f ] when List.mem f blocking_unqualified ->
    Some (Printf.sprintf "channel I/O (%s)" f)
  | [ ("Printf" | "Format"); ("printf" | "eprintf" | "fprintf") ] ->
    Some "formatted channel I/O"
  | _ -> None

(* ------------------------------------------------------------------ *)
(* The per-file checker                                                *)
(* ------------------------------------------------------------------ *)

let check_structure ~file ~hot ~atomic_ok (str : structure) : finding list =
  let findings = ref [] in
  (* Active [@lint.allow] suppressions, innermost first. *)
  let allows : allow list ref = ref [] in
  (* Names currently shadowing the polymorphic [compare]. *)
  let shadowed : string list ref = ref [] in
  (* Inside a write-permit critical section? *)
  let held = ref false in

  let emit loc rule message =
    let suppression =
      List.find_opt (fun a -> a.al_rule = rule) !allows
    in
    match suppression with
    | Some a when rule <> rule_atomic_confinement || a.al_justified -> ()
    | Some _ ->
      let pos = loc.Location.loc_start in
      findings :=
        {
          file;
          line = pos.Lexing.pos_lnum;
          col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
          rule;
          message =
            message
            ^ " (suppressing atomic-confinement requires a justification: \
               [@lint.allow \"atomic-confinement: why\"])";
        }
        :: !findings
    | None ->
      let pos = loc.Location.loc_start in
      findings :=
        {
          file;
          line = pos.Lexing.pos_lnum;
          col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
          rule;
          message;
        }
        :: !findings
  in

  let with_allows attrs body =
    let saved = !allows in
    allows := allows_of_attributes attrs @ !allows;
    body ();
    allows := saved
  in
  let with_shadowed names body =
    let saved = !shadowed in
    shadowed := names @ !shadowed;
    body ();
    shadowed := saved
  in
  let with_held v body =
    let saved = !held in
    held := v;
    body ();
    held := saved
  in

  (* --- point checks ------------------------------------------------ *)
  let check_longident loc parts =
    (match parts with
    | "Atomic" :: _ | "Stdlib" :: "Atomic" :: _ ->
      if not atomic_ok then
        emit loc rule_atomic_confinement
          "Atomic.* outside the sync modules; move this behind a Sync \
           helper (lib/datalog/sync.ml) or justify with [@lint.allow \
           \"atomic-confinement: why\"]"
    | _ -> ());
    match parts with
    | [ "Obj"; "magic" ] ->
      emit loc rule_hygiene "Obj.magic is banned in this codebase"
    | [ "compare" ] when hot && not (List.mem "compare" !shadowed) ->
      emit loc rule_hygiene
        "polymorphic compare in a hot module; use Key.compare, \
         Int.compare or a specialised three-way comparator"
    | [ "Stdlib"; "compare" ] when hot ->
      emit loc rule_hygiene
        "Stdlib.compare in a hot module; use Key.compare, Int.compare \
         or a specialised three-way comparator"
    | _ -> ()
  in

  let poly_ops = [ "="; "<>"; "<"; ">"; "<="; ">=" ] in
  let check_apply e =
    match e.pexp_desc with
    | Pexp_apply (f, args) ->
      (if hot then
         match f.pexp_desc with
         | Pexp_ident { txt = Longident.Lident op; _ }
           when List.mem op poly_ops
                && List.exists
                     (fun (_, a) ->
                       match a.pexp_desc with
                       | Pexp_tuple _ -> true
                       | _ -> false)
                     args ->
           emit e.pexp_loc rule_hygiene
             (Printf.sprintf
                "polymorphic (%s) on a tuple in a hot module; compare \
                 components with a specialised comparator"
                op)
         | _ -> ());
      if !held then (
        match deny_reason f with
        | Some reason ->
          emit e.pexp_loc rule_no_blocking
            (Printf.sprintf
               "%s while holding a write permit; hoist it out of the \
                critical section"
               reason)
        | None -> ());
      (* [ignore (Olock.start_read l)]: a lease made only to be thrown
         away. *)
      (match (f.pexp_desc, args) with
      | Pexp_ident { txt = Longident.Lident "ignore"; _ }, [ (_, a) ]
        when is_start_read a ->
        emit e.pexp_loc rule_lease_discipline
          "read lease discarded without validation"
      | _ -> ())
    | _ -> ()
  in

  let check_lease_binding vb body =
    if is_start_read vb.pvb_expr then
      match vb.pvb_pat.ppat_desc with
      | Ppat_var { txt = name; _ } ->
        with_allows vb.pvb_attributes (fun () ->
            (match escape_site name body with
            | Some loc ->
              emit loc rule_lease_discipline
                (Printf.sprintf
                   "lease %s escapes into a data structure; leases are \
                    ephemeral validation tokens"
                   name)
            | None -> ());
            if not (consumes_on_all_paths name body) then
              emit vb.pvb_loc rule_lease_discipline
                (Printf.sprintf
                   "lease %s is not validated (valid/end_read/\
                    try_upgrade_to_write) on every path of its scope"
                   name))
      | Ppat_any ->
        emit vb.pvb_loc rule_lease_discipline
          "read lease discarded without validation"
      | _ -> ()
  in

  (* Update the held flag after a statement in a sequence. *)
  let update_held stmt =
    if is_acquire_stmt stmt then held := true
    else if is_release_stmt stmt then held := false
  in

  (* --- the iterator ------------------------------------------------ *)
  let rec expr it e =
    with_allows e.pexp_attributes (fun () ->
        (match e.pexp_desc with
        | Pexp_ident { txt; _ } ->
          check_longident e.pexp_loc
            (try Longident.flatten txt with _ -> [])
        | _ -> ());
        check_apply e;
        match e.pexp_desc with
        | Pexp_sequence (a, b) ->
          expr it a;
          update_held a;
          expr it b
        | Pexp_let (rf, vbs, body) ->
          let names = List.concat_map (fun vb -> pattern_vars vb.pvb_pat) vbs in
          let iter_vbs () =
            List.iter
              (fun vb ->
                with_allows vb.pvb_attributes (fun () -> expr it vb.pvb_expr))
              vbs
          in
          (match rf with
          | Asttypes.Recursive -> with_shadowed names iter_vbs
          | Asttypes.Nonrecursive -> iter_vbs ());
          List.iter (fun vb -> check_lease_binding vb body) vbs;
          let saved = !held in
          List.iter (fun vb -> update_held vb.pvb_expr) vbs;
          with_shadowed names (fun () -> expr it body);
          held := saved
        | Pexp_ifthenelse (c, t, eo) ->
          expr it c;
          let then_held, else_held =
            match c.pexp_desc with
            | _ when is_try_acquire c -> (true, !held)
            | Pexp_apply (f, [ (_, inner) ])
              when is_ident_named "not" f && is_try_acquire inner ->
              (!held, true)
            | _ -> (!held, !held)
          in
          with_held then_held (fun () -> expr it t);
          Option.iter (fun el -> with_held else_held (fun () -> expr it el)) eo
        | Pexp_fun (_, dflt, pat, body) ->
          Option.iter (expr it) dflt;
          it.Ast_iterator.pat it pat;
          with_shadowed (pattern_vars pat) (fun () ->
              with_held false (fun () -> expr it body))
        | Pexp_function cases -> iter_cases it ~reset_held:true cases
        | Pexp_match (s, cases) ->
          expr it s;
          iter_cases it ~reset_held:false cases
        | Pexp_try (s, cases) ->
          expr it s;
          iter_cases it ~reset_held:false cases
        | _ -> Ast_iterator.default_iterator.expr it e)
  and iter_cases it ~reset_held cases =
    List.iter
      (fun c ->
        with_shadowed (pattern_vars c.pc_lhs) (fun () ->
            it.Ast_iterator.pat it c.pc_lhs;
            Option.iter (expr it) c.pc_guard;
            if reset_held then with_held false (fun () -> expr it c.pc_rhs)
            else expr it c.pc_rhs))
      cases
  in

  let typ it ty =
    (match ty.ptyp_desc with
    | Ptyp_constr ({ txt; _ }, _) ->
      (match (try Longident.flatten txt with _ -> []) with
      | "Atomic" :: _ | "Stdlib" :: "Atomic" :: _ ->
        if not atomic_ok then
          emit ty.ptyp_loc rule_atomic_confinement
            "Atomic.t outside the sync modules; wrap the state in a Sync \
             helper type"
      | _ -> ())
    | _ -> ());
    Ast_iterator.default_iterator.typ it ty
  in

  let structure it items =
    let saved_shadowed = !shadowed in
    let saved_allows = !allows in
    List.iter
      (fun item ->
        match item.pstr_desc with
        | Pstr_value (rf, vbs) ->
          held := false;
          let names =
            List.concat_map (fun vb -> pattern_vars vb.pvb_pat) vbs
          in
          let iter_vbs () =
            List.iter
              (fun vb ->
                with_allows vb.pvb_attributes (fun () ->
                    it.Ast_iterator.pat it vb.pvb_pat;
                    it.Ast_iterator.expr it vb.pvb_expr))
              vbs
          in
          (match rf with
          | Asttypes.Recursive ->
            shadowed := names @ !shadowed;
            iter_vbs ()
          | Asttypes.Nonrecursive ->
            iter_vbs ();
            shadowed := names @ !shadowed)
        | Pstr_attribute attr ->
          (* A floating [@@@lint.allow "..."] suppresses for the rest of
             the enclosing structure. *)
          (match allow_of_attribute attr with
          | Some a -> allows := a :: !allows
          | None -> ())
        | _ -> Ast_iterator.default_iterator.structure_item it item)
      items;
    shadowed := saved_shadowed;
    allows := saved_allows
  in

  let it =
    { Ast_iterator.default_iterator with expr; typ; structure }
  in
  it.Ast_iterator.structure it str;
  List.sort compare_finding !findings

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let parse_string ~file src =
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf file;
  Parse.implementation lexbuf

let check_source ?hot ?atomic_ok ~file src =
  let hot = match hot with Some h -> h | None -> default_hot file in
  let atomic_ok =
    match atomic_ok with
    | Some a -> a
    | None -> default_atomic_whitelisted file
  in
  match parse_string ~file src with
  | str -> check_structure ~file ~hot ~atomic_ok str
  | exception exn ->
    let line, col, msg =
      match Location.error_of_exn exn with
      | Some (`Ok err) ->
        let loc = err.Location.main.Location.loc in
        ( loc.Location.loc_start.Lexing.pos_lnum,
          loc.Location.loc_start.Lexing.pos_cnum
          - loc.Location.loc_start.Lexing.pos_bol,
          Printexc.to_string exn )
      | _ -> (1, 0, Printexc.to_string exn)
    in
    [ { file; line; col; rule = rule_parse_error; message = msg } ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_file ?hot ?atomic_ok path =
  check_source ?hot ?atomic_ok ~file:path (read_file path)

(* Collect the .ml files under [roots], skipping build artefacts and the
   deliberately-violating lint fixtures. *)
let scan_roots roots =
  let skip_dir name =
    name = "lint_fixtures" || name = "_build"
    || (String.length name > 0 && name.[0] = '.')
  in
  let files = ref [] in
  let rec walk dir =
    match Sys.readdir dir with
    | entries ->
      Array.sort compare entries;
      Array.iter
        (fun entry ->
          let path = Filename.concat dir entry in
          if Sys.is_directory path then (
            if not (skip_dir entry) then walk path)
          else if Filename.check_suffix entry ".ml" then
            files := path :: !files)
        entries
    | exception Sys_error _ -> ()
  in
  List.iter
    (fun root ->
      if Sys.file_exists root then
        if Sys.is_directory root then walk root
        else if Filename.check_suffix root ".ml" then files := root :: !files)
    roots;
  List.rev !files

let check_roots roots =
  let files = scan_roots roots in
  (files, List.concat_map (fun f -> check_file f) files)
