(* Pass 2 of the whole-repo linter: close the transitive facets of the
   per-function effect summaries ({!Lint_summary}) over the call graph.

   Name resolution is best-effort and mirrors OCaml scoping from the
   inside out: an unqualified callee is looked up under the definition
   site's module path (innermost prefix first), then under the file's
   opens; a qualified callee has its head expanded through [module M =
   Path] aliases and is tried as written, then relative to the enclosing
   module path (sibling submodules), then under the opens.  Unresolved
   callees (stdlib, functor parameters, local lambdas) contribute no
   edges — their known-blocking subset is already folded into the direct
   effects by {!Lint_summary.block_reason}.

   The fixpoint propagates three facets: may-block (with a provenance
   chain in the reason string), appends-WAL, and sends-ack.  It is a
   monotone boolean lattice, so naive iteration terminates in at most
   call-graph-depth rounds. *)

type t = {
  cg_table : (string, Lint_summary.t) Hashtbl.t;
  cg_by_file : (string, Lint_summary.t list) Hashtbl.t;
}

let candidates (ctx : Lint_summary.ctx) parts =
  let dotted p = String.concat "." p in
  (* prefixes of the self path, innermost (longest) first *)
  let rec prefixes p =
    match p with [] -> [] | _ -> p :: prefixes (List.filteri (fun i _ -> i < List.length p - 1) p)
  in
  let self_prefixes = prefixes ctx.cx_self in
  match parts with
  | [] -> []
  | [ x ] ->
    List.map (fun p -> dotted (p @ [ x ])) self_prefixes
    @ List.map (fun o -> dotted (o @ [ x ])) ctx.cx_opens
  | m :: rest ->
    let expanded =
      match List.assoc_opt m ctx.cx_aliases with
      | Some target -> target @ rest
      | None -> parts
    in
    (dotted expanded :: List.map (fun p -> dotted (p @ expanded)) self_prefixes)
    @ List.map (fun o -> dotted (o @ expanded)) ctx.cx_opens

let lookup cg (ctx : Lint_summary.ctx) parts =
  let rec first = function
    | [] -> None
    | key :: rest -> (
      match Hashtbl.find_opt cg.cg_table key with
      | Some s -> Some s
      | None -> first rest)
  in
  first (candidates ctx parts)

(* A resolver scoped to one file: exact candidates first, then a
   same-file unique-last-component fallback so that helpers inside
   functor bodies (whose instantiated module path differs from any
   call-site path) still resolve within their own file. *)
let resolver cg ~file (ctx : Lint_summary.ctx) =
  let same_file = Hashtbl.find_opt cg.cg_by_file file in
  fun parts ->
    match lookup cg ctx parts with
    | Some _ as r -> r
    | None -> (
      match (parts, same_file) with
      | [ x ], Some sums -> (
        let matches =
          List.filter
            (fun s ->
              match String.rindex_opt s.Lint_summary.sm_key '.' with
              | None -> s.Lint_summary.sm_key = x
              | Some i ->
                String.sub s.Lint_summary.sm_key (i + 1)
                  (String.length s.Lint_summary.sm_key - i - 1)
                = x)
            sums
        in
        match matches with [ s ] -> Some s | _ -> None)
      | _ -> None)

let shorten s =
  if String.length s <= 140 then s else String.sub s 0 137 ^ "..."

let build (summaries : Lint_summary.t list) =
  let cg =
    {
      cg_table = Hashtbl.create 512;
      cg_by_file = Hashtbl.create 64;
    }
  in
  List.iter
    (fun s ->
      (* later bindings shadow earlier ones of the same name; keep the
         last, matching what a call below both would see *)
      Hashtbl.replace cg.cg_table s.Lint_summary.sm_key s;
      let file = s.Lint_summary.sm_file in
      let prev =
        match Hashtbl.find_opt cg.cg_by_file file with
        | Some l -> l
        | None -> []
      in
      Hashtbl.replace cg.cg_by_file file (s :: prev))
    summaries;
  (* fixpoint over the three transitive facets *)
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 64 do
    changed := false;
    incr rounds;
    List.iter
      (fun s ->
        let resolve = resolver cg ~file:s.Lint_summary.sm_file s.Lint_summary.sm_ctx in
        List.iter
          (fun parts ->
            match resolve parts with
            | Some callee when callee.Lint_summary.sm_key <> s.Lint_summary.sm_key
              -> (
              (match (s.Lint_summary.sm_block, callee.Lint_summary.sm_block) with
              | None, Some why ->
                s.Lint_summary.sm_block <-
                  Some
                    (shorten
                       (Printf.sprintf "calls %s, which %s"
                          callee.Lint_summary.sm_key
                          (if String.length why > 0
                             && why.[0] >= 'a' && why.[0] <= 'z'
                           then why
                           else "may block: " ^ why)));
                changed := true
              | _ -> ());
              if callee.Lint_summary.sm_wal && not s.Lint_summary.sm_wal then begin
                s.Lint_summary.sm_wal <- true;
                changed := true
              end;
              if callee.Lint_summary.sm_ack && not s.Lint_summary.sm_ack then begin
                s.Lint_summary.sm_ack <- true;
                changed := true
              end;
              if callee.Lint_summary.sm_lease && not s.Lint_summary.sm_lease
              then begin
                s.Lint_summary.sm_lease <- true;
                changed := true
              end)
            | _ -> ())
          s.Lint_summary.sm_calls)
      summaries
  done;
  cg

let find cg key = Hashtbl.find_opt cg.cg_table key

let all cg = Hashtbl.fold (fun _ s acc -> s :: acc) cg.cg_table []
