(* Optimistic read-write lock: a seqlock extended with a read-to-write
   upgrade, following section 3.1 of the paper.  The whole lock is a single
   atomic version counter; even = free, odd = write-locked.

   Protocol summary (Fig. 2 of the paper):
     start_read            : spin until even version v; lease := v
     valid lease           : version = lease
     end_read lease        : valid lease
     try_upgrade_to_write  : CAS (lease -> lease+1)
     try_start_write       : read v; even v && CAS (v -> v+1)
     start_write           : spin on try_start_write
     end_write             : version := version+1   (writer-exclusive)
     abort_write           : version := version-1   (writer-exclusive)

   end_write / abort_write use a plain atomic increment: the writer holds
   exclusivity so no CAS is needed, but the store must be atomic so readers
   obtain the release/acquire edge required by the seqlock recipe.

   The protocol itself is written once, as a functor over the four atomic
   operations it performs ({!ATOMIC}).  The default instantiation below is
   backed by [Stdlib.Atomic] and is what every runtime caller links
   against; [lib/modelcheck] instantiates the same functor over a traced
   atomic that yields to a deterministic scheduler at every operation, so
   the code being model-checked is the code that runs in production. *)

module Backoff = struct
  (* Truncated exponential backoff with seeded jitter.  The delay grows
     1, 2, 4, ... up to [ceiling] (never past it — an unbounded doubling
     would overflow into multi-second stalls under pathological contention)
     and every round adds a pseudo-random jitter in [0, current): two
     waiters created at the same instant would otherwise resonate, retrying
     in lockstep and colliding on every round.  Jitter streams are seeded
     deterministically (a global seed mixed with a per-instance counter),
     so a fixed seed replays the same delay schedule. *)
  type t = { mutable current : int; ceiling : int; mutable rng : int }

  let jitter_seed = ref 0x51AB_77E5
  let instances = Atomic.make 0

  let set_seed s = jitter_seed := s

  let mix seed salt =
    let z = (seed + ((salt + 1) * 0x9E3779B9)) land max_int in
    let z = z lxor (z lsr 16) in
    let z = z * 0x85EBCA6B land max_int in
    let z = z lxor (z lsr 13) in
    if z = 0 then 0x2545F491 else z

  let create ?(ceiling = 4096) () =
    { current = 1; ceiling; rng = mix !jitter_seed (Atomic.fetch_and_add instances 1) }

  let reset b = b.current <- 1

  let rng_next b =
    let r = b.rng in
    let r = r lxor (r lsl 13) land max_int in
    let r = r lxor (r lsr 7) in
    let r = r lxor (r lsl 17) land max_int in
    let r = if r = 0 then 0x2545F491 else r in
    b.rng <- r;
    r

  let once b =
    (* [cpu_relax] is not exposed by the stdlib; a short counted loop of
       [Domain.cpu_relax] is.  OCaml 5.1 provides Domain.cpu_relax. *)
    let spins = b.current + (rng_next b mod b.current) in
    for _ = 1 to spins do
      Domain.cpu_relax ()
    done;
    if b.current < b.ceiling then begin
      let next = b.current * 2 in
      b.current <- (if next > b.ceiling then b.ceiling else next)
    end
end

(* The version counter is an [int], so the four operations below are all
   the protocol ever needs; keeping the signature minimal keeps traced
   substitutes (model checking, fault injection) small and obviously
   faithful. *)
module type ATOMIC = sig
  type t

  val make : int -> t
  val get : t -> int
  val compare_and_set : t -> int -> int -> bool
  val fetch_and_add : t -> int -> int
end

exception Protocol_violation of string

let () =
  Printexc.register_printer (function
    | Protocol_violation m -> Some (Printf.sprintf "Olock.Protocol_violation(%s)" m)
    | _ -> None)

module type S = sig
  type t
  type lease = int

  val create : unit -> t
  val start_read : t -> lease
  val valid : t -> lease -> bool
  val end_read : t -> lease -> bool
  val try_upgrade_to_write : t -> lease -> bool
  val try_start_write : t -> bool
  val start_write : t -> unit
  val end_write : t -> unit
  val abort_write : t -> unit
  val is_write_locked : t -> bool
  val version : t -> int
end

module Make (A : ATOMIC) : S = struct
  type t = { version : A.t }
  type lease = int

  let create () = { version = A.make 0 }

  let is_even v = v land 1 = 0

  (* Telemetry sites sit on the contention paths only: the uncontended fast
     paths (an even version on the first read, a successful CAS) touch no
     counter, so the cost of an event is paid exactly when the event — a spin,
     a stale lease, an abort — actually happened.  All counters are
     domain-local plain stores (see lib/telemetry). *)

  let start_read l =
    let b = Backoff.create () in
    let rec loop () =
      let v = A.get l.version in
      if is_even v then v
      else begin
        Telemetry.bump Telemetry.Counter.Olock_read_spins;
        Backoff.once b;
        loop ()
      end
    in
    loop ()

  let valid l lease =
    let ok = A.get l.version = lease in
    (* chaos: spuriously report a torn read, pushing the caller onto its
       restart path — the rare interleaving every optimistic correctness
       claim depends on, forced on demand *)
    let ok = ok && not (Chaos.fire Chaos.Point.Olock_validate_force_fail) in
    if not ok then Telemetry.bump Telemetry.Counter.Olock_validation_failures;
    ok

  let end_read = valid

  let try_upgrade_to_write l lease =
    let ok = A.compare_and_set l.version lease (lease + 1) in
    if not ok then Telemetry.bump Telemetry.Counter.Olock_upgrade_failures;
    ok

  let try_start_write l =
    let v = A.get l.version in
    is_even v && A.compare_and_set l.version v (v + 1)

  let start_write l =
    (* Uncontended acquisitions take the first CAS and pay no timing cost;
       only the contended path measures its wait (first failure to success)
       into the write-wait histogram. *)
    if not (try_start_write l) then begin
      let t0 = Telemetry.hist_time () in
      let b = Backoff.create () in
      Telemetry.bump Telemetry.Counter.Olock_write_spins;
      Backoff.once b;
      while not (try_start_write l) do
        Telemetry.bump Telemetry.Counter.Olock_write_spins;
        Backoff.once b
      done;
      Telemetry.hist_end Telemetry.Hist.Olock_write_wait_ns t0;
      (* The lock has no node identity; the wait itself is the evidence
         (level/bucket attribution comes from the b-tree's own events). *)
      Flight.record Flight.Ev.Lock_wait
        (if t0 > 0 then Telemetry.now_ns () - t0 else 0)
        0 0
    end

  (* Misuse detection for the release half of the protocol: releasing a lock
     that is not write-held (an even version) would silently corrupt the
     counter — an even release would hand out a "free" version that a later
     writer turns odd, wedging every reader.  The check rides on the value
     the release increment returns, so the hot path still performs exactly
     one atomic op; on a violation the increment is undone before raising
     (the transiently odd version only makes concurrent readers spin one
     extra round). *)
  let end_write l =
    let old = A.fetch_and_add l.version 1 in
    if is_even old then begin
      ignore (A.fetch_and_add l.version (-1) : int);
      raise
        (Protocol_violation
           (Printf.sprintf
              "end_write on a lock not held for writing (version %d is even)"
              old))
    end

  let abort_write l =
    let old = A.fetch_and_add l.version (-1) in
    if is_even old then begin
      ignore (A.fetch_and_add l.version 1 : int);
      raise
        (Protocol_violation
           (Printf.sprintf
              "abort_write on a lock not held for writing (version %d is even)"
              old))
    end;
    Telemetry.bump Telemetry.Counter.Olock_write_aborts

  let is_write_locked l = not (is_even (A.get l.version))
  let version l = A.get l.version
end

(* Default instantiation: the version counter is a [Stdlib.Atomic]. *)
include Make (struct
  type t = int Atomic.t

  let make = Atomic.make
  let get = Atomic.get
  let compare_and_set = Atomic.compare_and_set
  let fetch_and_add = Atomic.fetch_and_add
end)

module Rwlock = struct
  (* state >= 0: number of active readers; -1: writer active *)
  type t = { state : int Atomic.t }

  let create () = { state = Atomic.make 0 }

  let try_read_lock l =
    let s = Atomic.get l.state in
    s >= 0 && Atomic.compare_and_set l.state s (s + 1)

  let read_lock l =
    let b = Backoff.create () in
    while not (try_read_lock l) do
      Backoff.once b
    done

  let read_unlock l = ignore (Atomic.fetch_and_add l.state (-1) : int)

  let try_write_lock l = Atomic.compare_and_set l.state 0 (-1)

  let write_lock l =
    let b = Backoff.create () in
    while not (try_write_lock l) do
      Backoff.once b
    done

  let write_unlock l = Atomic.set l.state 0
end

module Spin = struct
  type t = { flag : bool Atomic.t }

  let create () = { flag = Atomic.make false }

  let try_acquire l =
    (not (Atomic.get l.flag)) && Atomic.compare_and_set l.flag false true

  let acquire l =
    let b = Backoff.create () in
    while not (try_acquire l) do
      Backoff.once b
    done

  let release l = Atomic.set l.flag false

  let with_lock l f =
    acquire l;
    match f () with
    | x ->
      release l;
      x
    | exception e ->
      release l;
      raise e
end
