(* Optimistic read-write lock: a seqlock extended with a read-to-write
   upgrade, following section 3.1 of the paper.  The whole lock is a single
   atomic version counter; even = free, odd = write-locked.

   Protocol summary (Fig. 2 of the paper):
     start_read            : spin until even version v; lease := v
     valid lease           : version = lease
     end_read lease        : valid lease
     try_upgrade_to_write  : CAS (lease -> lease+1)
     try_start_write       : read v; even v && CAS (v -> v+1)
     start_write           : spin on try_start_write
     end_write             : version := version+1   (writer-exclusive)
     abort_write           : version := version-1   (writer-exclusive)

   end_write / abort_write use a plain atomic increment: the writer holds
   exclusivity so no CAS is needed, but the store must be atomic so readers
   obtain the release/acquire edge required by the seqlock recipe. *)

module Backoff = struct
  type t = { mutable current : int; ceiling : int }

  let create ?(ceiling = 4096) () = { current = 1; ceiling }

  let reset b = b.current <- 1

  let once b =
    (* [cpu_relax] is not exposed by the stdlib; a short counted loop of
       [Domain.cpu_relax] is.  OCaml 5.1 provides Domain.cpu_relax. *)
    for _ = 1 to b.current do
      Domain.cpu_relax ()
    done;
    if b.current < b.ceiling then b.current <- b.current * 2
end

type t = { version : int Atomic.t }
type lease = int

let create () = { version = Atomic.make 0 }

let is_even v = v land 1 = 0

(* Telemetry sites sit on the contention paths only: the uncontended fast
   paths (an even version on the first read, a successful CAS) touch no
   counter, so the cost of an event is paid exactly when the event — a spin,
   a stale lease, an abort — actually happened.  All counters are
   domain-local plain stores (see lib/telemetry). *)

let start_read l =
  let b = Backoff.create () in
  let rec loop () =
    let v = Atomic.get l.version in
    if is_even v then v
    else begin
      Telemetry.bump Telemetry.Counter.Olock_read_spins;
      Backoff.once b;
      loop ()
    end
  in
  loop ()

let valid l lease =
  let ok = Atomic.get l.version = lease in
  if not ok then Telemetry.bump Telemetry.Counter.Olock_validation_failures;
  ok

let end_read = valid

let try_upgrade_to_write l lease =
  let ok = Atomic.compare_and_set l.version lease (lease + 1) in
  if not ok then Telemetry.bump Telemetry.Counter.Olock_upgrade_failures;
  ok

let try_start_write l =
  let v = Atomic.get l.version in
  is_even v && Atomic.compare_and_set l.version v (v + 1)

let start_write l =
  (* Uncontended acquisitions take the first CAS and pay no timing cost;
     only the contended path measures its wait (first failure to success)
     into the write-wait histogram. *)
  if not (try_start_write l) then begin
    let t0 = Telemetry.hist_time () in
    let b = Backoff.create () in
    Telemetry.bump Telemetry.Counter.Olock_write_spins;
    Backoff.once b;
    while not (try_start_write l) do
      Telemetry.bump Telemetry.Counter.Olock_write_spins;
      Backoff.once b
    done;
    Telemetry.hist_end Telemetry.Hist.Olock_write_wait_ns t0
  end

let end_write l = ignore (Atomic.fetch_and_add l.version 1 : int)

let abort_write l =
  Telemetry.bump Telemetry.Counter.Olock_write_aborts;
  ignore (Atomic.fetch_and_add l.version (-1) : int)
let is_write_locked l = not (is_even (Atomic.get l.version))
let version l = Atomic.get l.version

module Rwlock = struct
  (* state >= 0: number of active readers; -1: writer active *)
  type t = { state : int Atomic.t }

  let create () = { state = Atomic.make 0 }

  let try_read_lock l =
    let s = Atomic.get l.state in
    s >= 0 && Atomic.compare_and_set l.state s (s + 1)

  let read_lock l =
    let b = Backoff.create () in
    while not (try_read_lock l) do
      Backoff.once b
    done

  let read_unlock l = ignore (Atomic.fetch_and_add l.state (-1) : int)

  let try_write_lock l = Atomic.compare_and_set l.state 0 (-1)

  let write_lock l =
    let b = Backoff.create () in
    while not (try_write_lock l) do
      Backoff.once b
    done

  let write_unlock l = Atomic.set l.state 0
end

module Spin = struct
  type t = { flag : bool Atomic.t }

  let create () = { flag = Atomic.make false }

  let try_acquire l =
    (not (Atomic.get l.flag)) && Atomic.compare_and_set l.flag false true

  let acquire l =
    let b = Backoff.create () in
    while not (try_acquire l) do
      Backoff.once b
    done

  let release l = Atomic.set l.flag false

  let with_lock l f =
    acquire l;
    match f () with
    | x ->
      release l;
      x
    | exception e ->
      release l;
      raise e
end
