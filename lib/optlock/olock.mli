(** Optimistic read-write lock.

    This is the synchronisation primitive of the paper (PPoPP'19, section 3.1):
    an extension of Linux seqlocks for {e read-potential-write} threads.  A
    thread starts a read phase, inspects the protected data, and only then
    decides whether to upgrade the read permit to an exclusive write permit.

    The lock is a single version counter:
    - an {e even} value means the lock is free,
    - an {e odd} value means a writer is active.

    Readers never modify the counter, so the hot read path causes no cache-line
    invalidation — the property the paper relies on for multi-socket
    scalability.

    The protected data itself is read without synchronisation during a read
    phase and must be re-validated (with {!valid} or {!end_read}) before any
    observed value is acted upon.  In OCaml this discipline is sound without
    per-field atomics: the OCaml memory model defines the behaviour of racy
    reads (they yield some previously written value and can never yield a wild
    pointer), so a torn observation is always caught by the validation step
    rather than causing undefined behaviour, as it would in C++.

    The protocol is implemented once as the functor {!Make} over the
    {!ATOMIC} operations it performs.  The toplevel values of this module
    are the default instantiation over [Stdlib.Atomic] (what production
    code uses); [lib/modelcheck] instantiates {!Make} over a traced atomic
    to explore every interleaving of the very same protocol code. *)

module type ATOMIC = sig
  (** The four atomic operations the protocol performs on its version
      counter.  Monomorphic on [int] — the counter is the whole lock. *)

  type t

  val make : int -> t
  val get : t -> int
  val compare_and_set : t -> int -> int -> bool
  val fetch_and_add : t -> int -> int
end

exception Protocol_violation of string
(** Raised by [end_write]/[abort_write] when the lock is not held for
    writing (the version is even): such a release would silently corrupt
    the version counter — an extra increment parks the lock "write-held"
    forever, wedging every reader.  The message carries the observed
    version so the parity is visible in the report.  The offending
    operation is rolled back before raising, so the lock stays usable. *)

module type S = sig
  type t
  (** An optimistic read-write lock. *)

  type lease = int
  (** A read lease: the version number observed by {!start_read}.  Even by
      construction. *)

  val create : unit -> t
  (** [create ()] is a fresh, unlocked lock (version [0]). *)

  val start_read : t -> lease
  (** [start_read l] begins a read phase and returns the observed lease.  Spins
      (with exponential backoff) while a writer is active, i.e. always returns an
      even version number. *)

  val valid : t -> lease -> bool
  (** [valid l lease] is [true] iff no write phase has started since [lease] was
      obtained.  Non-blocking; does not end the read phase.  Data read under
      [lease] may only be used if this returns [true]. *)

  val end_read : t -> lease -> bool
  (** [end_read l lease] terminates a read phase, returning whether the phase
      was free of concurrent writes (same condition as {!valid}). *)

  val try_upgrade_to_write : t -> lease -> bool
  (** [try_upgrade_to_write l lease] attempts to atomically convert a read
      permit into an exclusive write permit.  Succeeds iff the version is still
      exactly [lease]; on success the caller holds the write lock.  On failure
      the read phase is invalid and the caller must restart.  Non-blocking. *)

  val try_start_write : t -> bool
  (** [try_start_write l] attempts to directly enter a write phase.
      Non-blocking; [true] on success. *)

  val start_write : t -> unit
  (** [start_write l] blocks (spins with backoff) until a write permit is
      granted.  The only blocking operation of the protocol. *)

  val end_write : t -> unit
  (** [end_write l] ends a write phase, publishing the modifications: the
      version becomes even again and differs from every lease handed out before
      the write.
      @raise Protocol_violation if the lock is not write-held. *)

  val abort_write : t -> unit
  (** [abort_write l] ends a write phase during which {e no} modification was
      performed.  The version is rolled back to its pre-write value so that
      concurrent readers are not needlessly invalidated.
      @raise Protocol_violation if the lock is not write-held. *)

  val is_write_locked : t -> bool
  (** [is_write_locked l] observes whether a writer is currently active (racy,
      for diagnostics and tests). *)

  val version : t -> int
  (** [version l] is the raw version counter (racy; diagnostics only). *)
end

include S
(** The default instantiation, backed by [Stdlib.Atomic]. *)

module Make (A : ATOMIC) : S
(** [Make (A)] is the Fig. 2 protocol over the atomic operations [A].
    Every instantiation shares {!Protocol_violation} (it is declared at
    module level, not inside the functor), so checking code can match on
    the same exception the production instantiation raises. *)

module Spin : sig
  (** A plain test-and-test-and-set spin lock, used by baseline structures
      (e.g. lock striping in the concurrent hash set) and as a comparison
      point for the optimistic protocol. *)

  type t

  val create : unit -> t
  val acquire : t -> unit
  val try_acquire : t -> bool
  val release : t -> unit

  val with_lock : t -> (unit -> 'a) -> 'a
  (** [with_lock l f] runs [f ()] under the lock, releasing it on exceptions. *)
end

module Rwlock : sig
  (** A conventional pessimistic reader-writer spin lock (atomic reader
      count, writer bit).  This is the comparison point the paper argues
      against: acquiring even a {e read} permit performs a store on the
      shared lock word, invalidating the cache line in every other core —
      the cost {!start_read} avoids by being a pure load. *)

  type t

  val create : unit -> t
  val read_lock : t -> unit
  val read_unlock : t -> unit
  val write_lock : t -> unit
  val write_unlock : t -> unit
  val try_read_lock : t -> bool
  val try_write_lock : t -> bool
end

module Backoff : sig
  (** Truncated exponential backoff with seeded jitter for spin loops.
      The delay doubles each round but never exceeds the ceiling, and each
      round adds a pseudo-random jitter in [\[0, current)] so two waiters
      created together do not retry in lockstep (waiter resonance).  Jitter
      streams are deterministic: a fixed {!set_seed} replays the same delay
      schedule. *)

  type t

  val create : ?ceiling:int -> unit -> t
  (** Default ceiling: 4096 [cpu_relax] rounds. *)

  val once : t -> unit
  (** [once b] spins for the current delay plus jitter and doubles the
      delay (clamped to the ceiling). *)

  val reset : t -> unit

  val set_seed : int -> unit
  (** Reseed the global jitter stream (affects backoffs created after the
      call); used by the chaos harness for deterministic replays. *)
end
