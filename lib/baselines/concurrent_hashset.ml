(* Lock striping over the sequential open-addressing table: segment = table +
   spin lock.  High hash bits select the segment so that the low bits keep
   their entropy for in-segment probing. *)

module Make (K : Key.HASHABLE) = struct
  type key = K.t

  module H = Hashset.Make (K)

  type segment = { lock : Olock.Spin.t; table : H.t }
  type t = { segments : segment array; shift : int }

  let create ?(segments = 64) ?(initial_capacity = 1024) () =
    let nseg = ref 1 in
    while !nseg < segments do
      nseg := !nseg * 2
    done;
    let per_segment = max 16 (initial_capacity / !nseg) in
    let bits =
      (* log2 of segment count *)
      let rec go n acc = if n <= 1 then acc else go (n / 2) (acc + 1) in
      go !nseg 0
    in
    {
      segments =
        Array.init !nseg (fun _ ->
            {
              lock = Olock.Spin.create ();
              table = H.create ~initial_capacity:per_segment ();
            });
      shift = 62 - bits;
    }

  let segment_of t k =
    (* top bits of the hash; [Key] hashes are non-negative 62-bit values *)
    let h = K.hash k in
    t.segments.(h lsr t.shift land (Array.length t.segments - 1))

  let insert t k =
    let s = segment_of t k in
    Olock.Spin.with_lock s.lock (fun () -> H.insert s.table k)

  let mem t k =
    let s = segment_of t k in
    Olock.Spin.with_lock s.lock (fun () -> H.mem s.table k)

  let cardinal t =
    Array.fold_left (fun acc s -> acc + H.cardinal s.table) 0 t.segments

  let iter f t = Array.iter (fun s -> H.iter f s.table) t.segments

  let fold f init t =
    let acc = ref init in
    iter (fun k -> acc := f !acc k) t;
    !acc

  let to_list t = fold (fun acc k -> k :: acc) [] t

  let check_invariants t =
    Array.iter (fun s -> H.check_invariants s.table) t.segments;
    (* routing: every key must live in the segment its hash selects *)
    Array.iteri
      (fun i s ->
        H.iter
          (fun k ->
            if segment_of t k != t.segments.(i) then
              failwith "key stored in wrong segment")
          s.table)
      t.segments

  (* Storage-backend witness.  Order queries degrade to linear scans in
     hash order ([ordered = false]); [insert]/[insert_batch] stay
     thread-safe, the scans are quiescent-use like [iter]. *)
  module As_storage : Storage_intf.S with type elt = key and type t = t =
  struct
    type elt = K.t
    type nonrec t = t

    let create () = create ()
    let insert = insert
    let mem = mem
    let cardinal = cardinal
    let is_empty t = cardinal t = 0
    let iter = iter

    let insert_batch t run =
      let n = Array.length run in
      for k = 1 to n - 1 do
        if K.compare run.(k - 1) run.(k) > 0 then
          invalid_arg "Concurrent_hashset.insert_batch: run not sorted"
      done;
      let fresh = ref 0 in
      Array.iter (fun k -> if insert t k then incr fresh) run;
      !fresh

    let scan_min t ~above key =
      let best = ref None in
      iter
        (fun k ->
          let c = K.compare k key in
          if (if above then c > 0 else c >= 0) then
            match !best with
            | Some b when K.compare b k <= 0 -> ()
            | _ -> best := Some k)
        t;
      !best

    let lower_bound t key = scan_min t ~above:false key
    let upper_bound t key = scan_min t ~above:true key

    exception Stop

    let iter_from f t key =
      try
        iter (fun k -> if K.compare k key >= 0 && not (f k) then raise Stop) t
      with Stop -> ()

    let ordered = false
    let shape _ = None
  end
end
