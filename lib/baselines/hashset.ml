(* Open-addressing hash set with linear probing and power-of-two capacity.
   Slot states live in a byte array next to the key array: 0 = empty,
   1 = occupied (no deletion, as Datalog relations only grow). *)

module Make (K : Key.HASHABLE) = struct
  type key = K.t

  type t = {
    mutable keys : key array;
    mutable state : Bytes.t;
    mutable mask : int; (* capacity - 1 *)
    mutable count : int;
  }

  let create ?(initial_capacity = 16) () =
    let cap = ref 16 in
    while !cap < initial_capacity do
      cap := !cap * 2
    done;
    {
      keys = Array.make !cap K.dummy;
      state = Bytes.make !cap '\000';
      mask = !cap - 1;
      count = 0;
    }

  let cardinal t = t.count
  let is_empty t = t.count = 0
  let load_factor t = float_of_int t.count /. float_of_int (t.mask + 1)

  (* Returns the slot holding [k], or the first empty slot of its probe
     sequence. *)
  let probe t k =
    let i = ref (K.hash k land t.mask) in
    let continue = ref true in
    while !continue do
      if Bytes.unsafe_get t.state !i = '\000' then continue := false
      else if K.equal (Array.unsafe_get t.keys !i) k then continue := false
      else i := (!i + 1) land t.mask
    done;
    !i

  let mem t k =
    let i = probe t k in
    Bytes.unsafe_get t.state i <> '\000'

  let grow t =
    let old_keys = t.keys and old_state = t.state in
    let cap = (t.mask + 1) * 2 in
    t.keys <- Array.make cap K.dummy;
    t.state <- Bytes.make cap '\000';
    t.mask <- cap - 1;
    Array.iteri
      (fun i k ->
        if Bytes.unsafe_get old_state i <> '\000' then begin
          let j = probe t k in
          t.keys.(j) <- k;
          Bytes.unsafe_set t.state j '\001'
        end)
      old_keys

  let insert t k =
    let i = probe t k in
    if Bytes.unsafe_get t.state i <> '\000' then false
    else begin
      t.keys.(i) <- k;
      Bytes.unsafe_set t.state i '\001';
      t.count <- t.count + 1;
      if 10 * t.count > 7 * (t.mask + 1) then grow t;
      true
    end

  let iter f t =
    let state = t.state and keys = t.keys in
    for i = 0 to t.mask do
      if Bytes.unsafe_get state i <> '\000' then f (Array.unsafe_get keys i)
    done

  let fold f init t =
    let acc = ref init in
    iter (fun k -> acc := f !acc k) t;
    !acc

  let to_list t = fold (fun acc k -> k :: acc) [] t

  let check_invariants t =
    let fail fmt = Printf.ksprintf failwith fmt in
    let n = fold (fun acc _ -> acc + 1) 0 t in
    if n <> t.count then fail "count %d <> enumerated %d" t.count n;
    if load_factor t > 0.71 then fail "load factor too high: %f" (load_factor t);
    (* every stored key must be findable through its probe sequence *)
    iter (fun k -> if not (mem t k) then fail "key unreachable by probing") t

  (* Storage-backend witness.  Order queries degrade to linear scans and
     [iter]/[iter_from] enumerate in hash order — [ordered = false] tells
     callers not to rely on either being fast or sorted. *)
  module As_storage : Storage_intf.S with type elt = key and type t = t =
  struct
    type elt = K.t
    type nonrec t = t

    let create () = create ()
    let insert = insert
    let mem = mem
    let cardinal = cardinal
    let is_empty = is_empty
    let iter = iter

    let insert_batch t run =
      let n = Array.length run in
      for k = 1 to n - 1 do
        if K.compare run.(k - 1) run.(k) > 0 then
          invalid_arg "Hashset.insert_batch: run not sorted"
      done;
      let fresh = ref 0 in
      Array.iter (fun k -> if insert t k then incr fresh) run;
      !fresh

    let scan_min t ~above key =
      let best = ref None in
      iter
        (fun k ->
          let c = K.compare k key in
          if (if above then c > 0 else c >= 0) then
            match !best with
            | Some b when K.compare b k <= 0 -> ()
            | _ -> best := Some k)
        t;
      !best

    let lower_bound t key = scan_min t ~above:false key
    let upper_bound t key = scan_min t ~above:true key

    exception Stop

    let iter_from f t key =
      try
        iter (fun k -> if K.compare k key >= 0 && not (f k) then raise Stop) t
      with Stop -> ()

    let ordered = false
    let shape _ = None
  end
end
