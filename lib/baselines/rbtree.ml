(* Classic mutable red-black tree (CLRS-style, with a per-tree nil sentinel
   and parent pointers).  One heap node per element — deliberately the same
   memory behaviour as std::set, which is what this baseline models. *)

module Make (K : Key.ORDERED) = struct
  type key = K.t
  type color = Red | Black

  type node = {
    mutable color : color;
    mutable key : key;
    mutable left : node;
    mutable right : node;
    mutable parent : node;
  }

  type t = { nil : node; mutable root : node; mutable count : int }

  let create () =
    let rec nil =
      { color = Black; key = K.dummy; left = nil; right = nil; parent = nil }
    in
    { nil; root = nil; count = 0 }

  let is_empty t = t.root == t.nil
  let cardinal t = t.count

  let left_rotate t x =
    let y = x.right in
    x.right <- y.left;
    if y.left != t.nil then y.left.parent <- x;
    y.parent <- x.parent;
    if x.parent == t.nil then t.root <- y
    else if x == x.parent.left then x.parent.left <- y
    else x.parent.right <- y;
    y.left <- x;
    x.parent <- y

  let right_rotate t x =
    let y = x.left in
    x.left <- y.right;
    if y.right != t.nil then y.right.parent <- x;
    y.parent <- x.parent;
    if x.parent == t.nil then t.root <- y
    else if x == x.parent.right then x.parent.right <- y
    else x.parent.left <- y;
    y.right <- x;
    x.parent <- y

  let rec insert_fixup t z =
    if z.parent.color = Red then begin
      let g = z.parent.parent in
      if z.parent == g.left then begin
        let uncle = g.right in
        if uncle.color = Red then begin
          z.parent.color <- Black;
          uncle.color <- Black;
          g.color <- Red;
          insert_fixup t g
        end
        else begin
          let z = if z == z.parent.right then (let p = z.parent in left_rotate t p; p) else z in
          z.parent.color <- Black;
          z.parent.parent.color <- Red;
          right_rotate t z.parent.parent;
          insert_fixup t z
        end
      end
      else begin
        let uncle = g.left in
        if uncle.color = Red then begin
          z.parent.color <- Black;
          uncle.color <- Black;
          g.color <- Red;
          insert_fixup t g
        end
        else begin
          let z = if z == z.parent.left then (let p = z.parent in right_rotate t p; p) else z in
          z.parent.color <- Black;
          z.parent.parent.color <- Red;
          left_rotate t z.parent.parent;
          insert_fixup t z
        end
      end
    end

  let insert t k =
    let y = ref t.nil and x = ref t.root in
    let dup = ref false in
    while (not !dup) && !x != t.nil do
      y := !x;
      let c = K.compare k (!x).key in
      if c < 0 then x := (!x).left
      else if c > 0 then x := (!x).right
      else dup := true
    done;
    if !dup then false
    else begin
      let z =
        { color = Red; key = k; left = t.nil; right = t.nil; parent = !y }
      in
      if !y == t.nil then t.root <- z
      else if K.compare k (!y).key < 0 then (!y).left <- z
      else (!y).right <- z;
      insert_fixup t z;
      t.root.color <- Black;
      t.count <- t.count + 1;
      true
    end

  let mem t k =
    let rec go n =
      if n == t.nil then false
      else
        let c = K.compare k n.key in
        if c < 0 then go n.left else if c > 0 then go n.right else true
    in
    go t.root

  let min_elt t =
    if is_empty t then None
    else begin
      let n = ref t.root in
      while (!n).left != t.nil do
        n := (!n).left
      done;
      Some (!n).key
    end

  let max_elt t =
    if is_empty t then None
    else begin
      let n = ref t.root in
      while (!n).right != t.nil do
        n := (!n).right
      done;
      Some (!n).key
    end

  let bound ~strict t k =
    let rec go n best =
      if n == t.nil then best
      else
        let c = K.compare k n.key in
        let qualifies = if strict then c < 0 else c <= 0 in
        if qualifies then go n.left (Some n.key) else go n.right best
    in
    go t.root None

  let lower_bound t k = bound ~strict:false t k
  let upper_bound t k = bound ~strict:true t k

  let iter f t =
    let rec go n =
      if n != t.nil then begin
        go n.left;
        f n.key;
        go n.right
      end
    in
    go t.root

  let fold f init t =
    let acc = ref init in
    iter (fun k -> acc := f !acc k) t;
    !acc

  exception Stop

  let iter_from f t key =
    let emit k = if not (f k) then raise Stop in
    let rec emit_all n =
      if n != t.nil then begin
        emit_all n.left;
        emit n.key;
        emit_all n.right
      end
    in
    let rec go n =
      if n != t.nil then
        if K.compare n.key key >= 0 then begin
          go n.left;
          emit n.key;
          emit_all n.right
        end
        else go n.right
    in
    try go t.root with Stop -> ()

  let to_list t = List.rev (fold (fun acc k -> k :: acc) [] t)

  let check_invariants t =
    let fail fmt = Printf.ksprintf failwith fmt in
    if t.root.color <> Black then fail "root is red";
    (* returns black height; checks order bounds and red-red violations *)
    let rec go n lo hi =
      if n == t.nil then 1
      else begin
        (match lo with
        | Some l -> if K.compare l n.key >= 0 then fail "order violation (lo)"
        | None -> ());
        (match hi with
        | Some h -> if K.compare n.key h >= 0 then fail "order violation (hi)"
        | None -> ());
        if n.color = Red && (n.left.color = Red || n.right.color = Red) then
          fail "red node with red child";
        let bl = go n.left lo (Some n.key) in
        let br = go n.right (Some n.key) hi in
        if bl <> br then fail "black height mismatch (%d vs %d)" bl br;
        bl + if n.color = Black then 1 else 0
      end
    in
    ignore (go t.root None None : int);
    let n = fold (fun acc _ -> acc + 1) 0 t in
    if n <> t.count then fail "count %d <> enumerated %d" t.count n

  let insert_batch t run =
    let n = Array.length run in
    for k = 1 to n - 1 do
      if K.compare run.(k - 1) run.(k) > 0 then
        invalid_arg "Rbtree.insert_batch: run not sorted"
    done;
    let fresh = ref 0 in
    Array.iter (fun k -> if insert t k then incr fresh) run;
    !fresh

  module As_storage : Storage_intf.S with type elt = key and type t = t =
  struct
    type elt = K.t
    type nonrec t = t

    let create () = create ()
    let insert = insert
    let insert_batch = insert_batch
    let mem = mem
    let lower_bound = lower_bound
    let upper_bound = upper_bound
    let iter = iter
    let iter_from = iter_from
    let cardinal = cardinal
    let is_empty = is_empty
    let ordered = true
    let shape _ = None
  end
end
