(** Mutable red-black tree set.

    Stands in for C++ [std::set] ("STL rbtset" in the paper's figures): a
    balanced binary search tree with one heap node per element, i.e. the
    pointer-chasing memory behaviour the paper contrasts with the B-tree's
    cache-friendly node layout.  Not thread-safe. *)

module Make (K : Key.ORDERED) : sig
  type key = K.t
  type t

  val create : unit -> t
  val insert : t -> key -> bool
  (** [insert t k] adds [k]; [true] iff it was absent. *)

  val mem : t -> key -> bool
  val cardinal : t -> int
  (** O(1): the tree maintains a counter. *)

  val is_empty : t -> bool
  val min_elt : t -> key option
  val max_elt : t -> key option
  val lower_bound : t -> key -> key option
  val upper_bound : t -> key -> key option
  val iter : (key -> unit) -> t -> unit
  val fold : ('a -> key -> 'a) -> 'a -> t -> 'a
  val iter_from : (key -> bool) -> t -> key -> unit
  (** In-order from the first element [>= k], until the callback returns
      [false]. *)

  val to_list : t -> key list

  val check_invariants : t -> unit
  (** BST order, no red node with a red child, equal black height on all
      paths, black root.  @raise Failure on violation. *)

  val insert_batch : t -> key array -> int
  (** Insert a sorted run (non-decreasing; duplicates skipped); returns the
      fresh-element count.  No amortisation here — a validated insert loop,
      for {!Storage_intf.S} conformance.
      @raise Invalid_argument when the run is not sorted. *)

  (** Storage-backend witness. *)
  module As_storage : Storage_intf.S with type elt = key and type t = t
end
