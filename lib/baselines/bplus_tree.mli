(** Sequential B+-tree with binary-searched nodes and linked leaves.

    Stands in for Google's btree container ("google btree" in the paper): a
    highly tuned, thread-unsafe, cache-friendly ordered set.  It differs from
    the specialized B-tree on purpose — elements live only in leaves, inner
    nodes hold separator copies, nodes are binary-searched and leaves are
    chained for fast scans — so the comparison measures our tree against an
    independently designed state-of-the-art layout.

    Used directly as the "google btree (global lock)" parallel contestant
    (wrapped in {!Locked_set}) and as the per-thread structure of the
    reduction baseline ({!Reduction_set}). *)

module Make (K : Key.ORDERED) : sig
  type key = K.t
  type t

  val create : ?node_capacity:int -> unit -> t
  val insert : t -> key -> bool
  val mem : t -> key -> bool
  val cardinal : t -> int
  (** O(1); maintained counter (safe here: the structure is sequential). *)

  val is_empty : t -> bool
  val min_elt : t -> key option
  val max_elt : t -> key option
  val lower_bound : t -> key -> key option
  val upper_bound : t -> key -> key option
  val iter : (key -> unit) -> t -> unit
  val fold : ('a -> key -> 'a) -> 'a -> t -> 'a
  val iter_from : (key -> bool) -> t -> key -> unit
  val to_list : t -> key list
  val to_sorted_array : t -> key array

  val of_sorted_array : ?node_capacity:int -> key array -> t
  (** Bulk-build from a strictly increasing array; O(n). *)

  val check_invariants : t -> unit

  val insert_batch : t -> key array -> int
  (** Insert a sorted run (non-decreasing; duplicates skipped); returns the
      fresh-element count.  A validated insert loop, for {!Storage_intf.S}
      conformance.  @raise Invalid_argument when the run is not sorted. *)

  (** Storage-backend witness. *)
  module As_storage : Storage_intf.S with type elt = key and type t = t
end
