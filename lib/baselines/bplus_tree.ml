(* B+-tree: elements in leaves only, separators in inner nodes, preemptive
   top-down splitting (full children are split during descent, so splits
   never propagate upward), chained leaves for scans. *)

module Make (K : Key.ORDERED) = struct
  type key = K.t

  type node = Leaf of leaf | Inner of inner

  and leaf = {
    lkeys : key array;
    mutable ln : int;
    mutable next : leaf option;
  }

  and inner = {
    ikeys : key array; (* separator i = smallest key of subtree i+1 *)
    mutable ikn : int;
    children : node array;
  }

  type t = {
    capacity : int;
    mutable root : node option;
    mutable count : int;
  }

  let create ?(node_capacity = 32) () =
    if node_capacity < 4 then
      invalid_arg "Bplus_tree.create: node_capacity must be >= 4";
    { capacity = node_capacity; root = None; count = 0 }

  let is_empty t = t.root = None
  let cardinal t = t.count

  let alloc_leaf t = { lkeys = Array.make t.capacity K.dummy; ln = 0; next = None }

  let alloc_inner t =
    {
      ikeys = Array.make t.capacity K.dummy;
      ikn = 0;
      children = Array.make (t.capacity + 1) (Leaf { lkeys = [||]; ln = 0; next = None });
    }

  (* smallest index with keys.(i) >= key *)
  let lower_idx keys n key =
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if K.compare (Array.unsafe_get keys mid) key < 0 then lo := mid + 1
      else hi := mid
    done;
    !lo

  (* smallest index with keys.(i) > key *)
  let upper_idx keys n key =
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if K.compare (Array.unsafe_get keys mid) key <= 0 then lo := mid + 1
      else hi := mid
    done;
    !lo

  let node_full t = function
    | Leaf l -> l.ln >= t.capacity
    | Inner i -> i.ikn >= t.capacity

  (* Split the full child at slot [ci] of [parent]; the separator moves (for
     inner children) or is copied (for leaf children) into [parent], which is
     guaranteed non-full by the preemptive descent. *)
  let split_child t parent ci =
    let shift_parent sep right =
      let n = parent.ikn in
      Array.blit parent.ikeys ci parent.ikeys (ci + 1) (n - ci);
      parent.ikeys.(ci) <- sep;
      Array.blit parent.children (ci + 1) parent.children (ci + 2) (n - ci);
      parent.children.(ci + 1) <- right;
      parent.ikn <- n + 1
    in
    match parent.children.(ci) with
    | Leaf l ->
      let mid = l.ln / 2 in
      let r = alloc_leaf t in
      let rcount = l.ln - mid in
      Array.blit l.lkeys mid r.lkeys 0 rcount;
      r.ln <- rcount;
      l.ln <- mid;
      r.next <- l.next;
      l.next <- Some r;
      shift_parent r.lkeys.(0) (Leaf r)
    | Inner i ->
      let mid = i.ikn / 2 in
      let sep = i.ikeys.(mid) in
      let r = alloc_inner t in
      let rcount = i.ikn - mid - 1 in
      Array.blit i.ikeys (mid + 1) r.ikeys 0 rcount;
      Array.blit i.children (mid + 1) r.children 0 (rcount + 1);
      r.ikn <- rcount;
      i.ikn <- mid;
      shift_parent sep (Inner r)

  let insert t key =
    (match t.root with
    | None ->
      let l = alloc_leaf t in
      t.root <- Some (Leaf l)
    | Some root ->
      if node_full t root then begin
        (* grow: new root with the old root as single child, then split *)
        let nr = alloc_inner t in
        nr.children.(0) <- root;
        nr.ikn <- 0;
        split_child t nr 0;
        t.root <- Some (Inner nr)
      end);
    let rec go node =
      match node with
      | Leaf l ->
        let i = lower_idx l.lkeys l.ln key in
        if i < l.ln && K.compare l.lkeys.(i) key = 0 then false
        else begin
          Array.blit l.lkeys i l.lkeys (i + 1) (l.ln - i);
          l.lkeys.(i) <- key;
          l.ln <- l.ln + 1;
          true
        end
      | Inner inner ->
        let ci = upper_idx inner.ikeys inner.ikn key in
        if node_full t inner.children.(ci) then begin
          split_child t inner ci;
          (* re-route: the separator just inserted may redirect the key *)
          let ci = upper_idx inner.ikeys inner.ikn key in
          go inner.children.(ci)
        end
        else go inner.children.(ci)
    in
    let root = match t.root with Some r -> r | None -> assert false in
    let added = go root in
    if added then t.count <- t.count + 1;
    added

  let rec leftmost = function
    | Leaf l -> l
    | Inner i -> leftmost i.children.(0)

  let rec find_leaf node key =
    match node with
    | Leaf l -> l
    | Inner i -> find_leaf i.children.(upper_idx i.ikeys i.ikn key) key

  let mem t key =
    match t.root with
    | None -> false
    | Some root ->
      let l = find_leaf root key in
      let i = lower_idx l.lkeys l.ln key in
      i < l.ln && K.compare l.lkeys.(i) key = 0

  let min_elt t =
    match t.root with
    | None -> None
    | Some root ->
      let l = leftmost root in
      if l.ln = 0 then None else Some l.lkeys.(0)

  let max_elt t =
    match t.root with
    | None -> None
    | Some root ->
      let rec go = function
        | Leaf l -> if l.ln = 0 then None else Some l.lkeys.(l.ln - 1)
        | Inner i -> go i.children.(i.ikn)
      in
      go root

  (* first leaf position with element >= (or >) key, following the leaf
     chain when the position falls off the end of a leaf *)
  let seek ~strict t key =
    match t.root with
    | None -> None
    | Some root ->
      let l = find_leaf root key in
      let i =
        if strict then upper_idx l.lkeys l.ln key else lower_idx l.lkeys l.ln key
      in
      if i < l.ln then Some (l, i)
      else (
        match l.next with
        | Some nl when nl.ln > 0 -> Some (nl, 0)
        | _ -> None)

  let lower_bound t key =
    match seek ~strict:false t key with
    | Some (l, i) -> Some l.lkeys.(i)
    | None -> None

  let upper_bound t key =
    match seek ~strict:true t key with
    | Some (l, i) -> Some l.lkeys.(i)
    | None -> None

  let iter f t =
    match t.root with
    | None -> ()
    | Some root ->
      let rec chain l =
        for i = 0 to l.ln - 1 do
          f l.lkeys.(i)
        done;
        match l.next with Some n -> chain n | None -> ()
      in
      chain (leftmost root)

  let fold f init t =
    let acc = ref init in
    iter (fun k -> acc := f !acc k) t;
    !acc

  exception Stop

  let iter_from f t key =
    match seek ~strict:false t key with
    | None -> ()
    | Some (l0, i0) ->
      let emit k = if not (f k) then raise Stop in
      let rec chain l i =
        for j = i to l.ln - 1 do
          emit l.lkeys.(j)
        done;
        match l.next with Some n -> chain n 0 | None -> ()
      in
      (try chain l0 i0 with Stop -> ())

  let to_list t = List.rev (fold (fun acc k -> k :: acc) [] t)

  let to_sorted_array t =
    let n = cardinal t in
    if n = 0 then [||]
    else begin
      let first = match min_elt t with Some k -> k | None -> assert false in
      let a = Array.make n first in
      let i = ref 0 in
      iter
        (fun k ->
          a.(!i) <- k;
          incr i)
        t;
      a
    end

  let of_sorted_array ?node_capacity arr =
    let t = create ?node_capacity () in
    let len = Array.length arr in
    for i = 1 to len - 1 do
      if K.compare arr.(i - 1) arr.(i) >= 0 then
        invalid_arg "Bplus_tree.of_sorted_array: input not strictly increasing"
    done;
    if len > 0 then begin
      let target = max 2 (t.capacity * 3 / 4) in
      (* build the leaf level *)
      let nleaves = (len + target - 1) / target in
      let leaves =
        Array.init nleaves (fun i ->
            let lo = i * target in
            let hi = min len (lo + target) in
            let l = alloc_leaf t in
            Array.blit arr lo l.lkeys 0 (hi - lo);
            l.ln <- hi - lo;
            l)
      in
      for i = 0 to nleaves - 2 do
        leaves.(i).next <- Some leaves.(i + 1)
      done;
      (* build inner levels; separator of child i+1 = its smallest key *)
      let rec build (nodes : (node * key) array) =
        (* each entry: (node, smallest key of its subtree) *)
        if Array.length nodes = 1 then fst nodes.(0)
        else begin
          let n = Array.length nodes in
          let group = max 2 (t.capacity * 3 / 4) in
          let nparents = (n + group - 1) / group in
          (* even distribution so no parent ends up with fewer than two
             children (which would leave it without separators) *)
          let base = n / nparents and extra = n mod nparents in
          let start = ref 0 in
          let parents =
            Array.init nparents (fun pi ->
                let lo = !start in
                let hi = lo + base + if pi < extra then 1 else 0 in
                start := hi;
                let inner = alloc_inner t in
                for i = lo to hi - 1 do
                  let child, smallest = nodes.(i) in
                  inner.children.(i - lo) <- child;
                  if i > lo then inner.ikeys.(i - lo - 1) <- smallest
                done;
                inner.ikn <- hi - lo - 1;
                (Inner inner, snd nodes.(lo)))
          in
          build parents
        end
      in
      let base =
        Array.map (fun l -> (Leaf l, l.lkeys.(0))) leaves
      in
      t.root <- Some (build base);
      t.count <- len
    end;
    t

  let check_invariants t =
    let fail fmt = Printf.ksprintf failwith fmt in
    match t.root with
    | None -> if t.count <> 0 then fail "empty tree with count %d" t.count
    | Some root ->
      let leaf_depth = ref (-1) in
      (* bounds: lo inclusive, hi exclusive *)
      let rec go node depth lo hi =
        match node with
        | Leaf l ->
          if !leaf_depth = -1 then leaf_depth := depth
          else if !leaf_depth <> depth then fail "leaves at different depths";
          if l.ln = 0 && t.count > 0 then fail "empty leaf";
          for i = 0 to l.ln - 2 do
            if K.compare l.lkeys.(i) l.lkeys.(i + 1) >= 0 then
              fail "leaf keys out of order"
          done;
          (match lo with
          | Some b ->
            if l.ln > 0 && K.compare l.lkeys.(0) b < 0 then
              fail "leaf lower bound violated"
          | None -> ());
          (match hi with
          | Some b ->
            if l.ln > 0 && K.compare l.lkeys.(l.ln - 1) b >= 0 then
              fail "leaf upper bound violated"
          | None -> ())
        | Inner i ->
          if i.ikn = 0 then fail "inner node without separators";
          for j = 0 to i.ikn - 2 do
            if K.compare i.ikeys.(j) i.ikeys.(j + 1) >= 0 then
              fail "separators out of order"
          done;
          for j = 0 to i.ikn do
            let lo = if j = 0 then lo else Some i.ikeys.(j - 1) in
            let hi = if j = i.ikn then hi else Some i.ikeys.(j) in
            go i.children.(j) (depth + 1) lo hi
          done
      in
      go root 0 None None;
      (* leaf chain must enumerate exactly the sorted contents *)
      let n = fold (fun acc _ -> acc + 1) 0 t in
      if n <> t.count then fail "count %d <> enumerated %d" t.count n;
      let prev = ref None in
      iter
        (fun k ->
          (match !prev with
          | Some p ->
            if K.compare p k >= 0 then fail "leaf chain out of order"
          | None -> ());
          prev := Some k)
        t

  let insert_batch t run =
    let n = Array.length run in
    for k = 1 to n - 1 do
      if K.compare run.(k - 1) run.(k) > 0 then
        invalid_arg "Bplus_tree.insert_batch: run not sorted"
    done;
    let fresh = ref 0 in
    Array.iter (fun k -> if insert t k then incr fresh) run;
    !fresh

  module As_storage : Storage_intf.S with type elt = key and type t = t =
  struct
    type elt = K.t
    type nonrec t = t

    let create () = create ()
    let insert = insert
    let insert_batch = insert_batch
    let mem = mem
    let lower_bound = lower_bound
    let upper_bound = upper_bound
    let iter = iter
    let iter_from = iter_from
    let cardinal = cardinal
    let is_empty = is_empty
    let ordered = true
    let shape _ = None
  end
end
