(** Lock-striped concurrent hash set.

    Stands in for Intel TBB's [concurrent_unordered_set] ("TBB hashset"): a
    thread-safe hash set with scalable concurrent insertion, the random
    memory-access pattern of hashing, and no support for ordered range
    queries.  The table is partitioned into independent segments, each an
    open-addressing table behind its own spin lock; keys are routed to
    segments by high hash bits, so unrelated inserts proceed in parallel. *)

module Make (K : Key.HASHABLE) : sig
  type key = K.t
  type t

  val create : ?segments:int -> ?initial_capacity:int -> unit -> t
  (** @param segments number of lock stripes, rounded up to a power of two
        (default 64).
      @param initial_capacity expected total elements, pre-sizing each
        segment to reduce growth stalls. *)

  val insert : t -> key -> bool
  (** Thread-safe. *)

  val mem : t -> key -> bool
  (** Thread-safe. *)

  val cardinal : t -> int
  (** Exact when quiescent; a racy sum otherwise. *)

  val iter : (key -> unit) -> t -> unit
  (** Unordered iteration; quiescent use only. *)

  val fold : ('a -> key -> 'a) -> 'a -> t -> 'a
  val to_list : t -> key list
  val check_invariants : t -> unit

  (** Storage-backend witness: order queries by linear scan,
      [ordered = false]; inserts stay thread-safe. *)
  module As_storage : Storage_intf.S with type elt = key and type t = t
end
