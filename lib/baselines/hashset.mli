(** Open-addressing hash set.

    Stands in for C++ [std::unordered_set] ("STL hashset"): O(1) expected
    insert and lookup, random memory access pattern, no order — so no
    efficient range queries (the property that sinks hash sets on Datalog
    workloads, Fig. 5 of the paper).  Not thread-safe. *)

module Make (K : Key.HASHABLE) : sig
  type key = K.t
  type t

  val create : ?initial_capacity:int -> unit -> t
  (** Table grows automatically at a 0.7 load factor. *)

  val insert : t -> key -> bool
  val mem : t -> key -> bool
  val cardinal : t -> int
  val is_empty : t -> bool

  val iter : (key -> unit) -> t -> unit
  (** Iteration in unspecified (hash) order. *)

  val fold : ('a -> key -> 'a) -> 'a -> t -> 'a
  val to_list : t -> key list

  val load_factor : t -> float
  val check_invariants : t -> unit

  (** Storage-backend witness: order queries by linear scan,
      [ordered = false]. *)
  module As_storage : Storage_intf.S with type elt = key and type t = t
end
