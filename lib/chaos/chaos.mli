(** Deterministic failpoint registry (chaos injection).

    The optimistic protocol of the paper is validated-by-retry: its
    correctness claims rest on rare interleavings — a writer slipping
    between a read lease and its validation, a split racing a descent —
    that a normal test run almost never produces.  This registry lets the
    stress harness {e force} those interleavings on purpose: each named
    injection point ({!Point.t}) sits on a hot path and, when armed, fires
    pseudo-randomly with a configured 1-in-[rate] probability drawn from a
    deterministic per-domain stream, so a failing run replays exactly from
    its seed.

    Cost discipline: with the registry disabled (the default) every
    {!fire} call is a single relaxed atomic load plus a branch — cheap
    enough to stay compiled into release hot loops, exactly like the
    telemetry event sites.

    The library sits below every other layer (it depends on nothing), so
    olock, btree, the pool and the IO layer can all host points. *)

(** Injection point identities, one per hosted failure mode. *)
module Point : sig
  type t =
    | Olock_validate_force_fail
        (** [Olock.valid]/[end_read] spuriously report a torn read, forcing
            the caller onto its restart path *)
    | Btree_descent_yield
        (** stall an optimistic descent between lease and validation,
            widening the window in which a concurrent writer can invalidate
            it *)
    | Btree_split_delay
        (** stall inside the split critical section while the ancestor path
            is write-locked, lengthening lock hold times *)
    | Pool_job_raise
        (** raise {!Injected} inside a pool worker's job, exercising the
            pool's fault containment *)
    | Io_read_truncate
        (** truncate a fact line mid-read, simulating a torn/corrupt input
            file *)
    | Server_conn_drop
        (** drop a client connection mid-request, simulating a flaky peer or
            network — the query server must contain it to that session *)
    | Server_phase_busy
        (** force the server's admission scheduler to reject a request with
            a 503-style BUSY response, as under overload *)
    | Wal_write_short
        (** truncate a WAL record append partway through and mark the log
            torn, simulating a crash mid-write (a torn tail on disk) *)
    | Wal_fsync_fail
        (** make a WAL fsync raise, simulating a failed/lying disk flush *)
    | Wal_recover_corrupt
        (** bit-flip a byte of a WAL record as recovery reads it back,
            simulating on-disk corruption *)

  val all : t list
  val count : int
  val index : t -> int

  val name : t -> string
  (** Dotted lower-case name, e.g. ["olock.validate.force_fail"]. *)

  val of_name : string -> t option
end

exception Injected of string
(** Raised by {!inject} (and nothing else) when its point fires.  The
    payload names the point. *)

val active : unit -> bool
(** Whether any point is armed.  The same load {!fire} performs. *)

val seed : unit -> int
(** The seed of the current configuration ([0] when never configured). *)

val configure : ?seed:int -> (Point.t * int) list -> unit
(** [configure ~seed points] arms the given points: [(p, rate)] makes
    {!fire}[ p] return [true] with probability 1-in-[rate] ([rate >= 1];
    [rate = 1] fires every time).  Points not listed never fire.  The
    firing decisions are drawn from per-domain xorshift streams seeded
    from [seed] (default 1) mixed with the domain id, so a fixed seed and
    schedule replay the same decisions.  Fired counters are reset.
    @raise Invalid_argument on a non-positive rate. *)

val disable : unit -> unit
(** Disarm every point (back to the one-load fast path) and leave the
    fired counters readable. *)

val fire : Point.t -> bool
(** [fire p] decides whether [p] injects its failure now.  One atomic load
    + branch when the registry is disabled; when armed, a DLS lookup and
    one xorshift step.  A firing bumps the point's {!fired} counter and
    invokes the {!set_fire_hook} observer, if any. *)

val set_fire_hook : (Point.t -> unit) option -> unit
(** Install (or clear) an observer called on every firing, on the firing
    domain.  Chaos depends on nothing, so binaries use this to forward
    firings to the flight recorder.  Firings are 1-in-rate rare, so the
    hook is off the fast path; it must not raise. *)

val inject : Point.t -> unit
(** [inject p] raises {!Injected} iff [fire p].  For points whose failure
    mode is an exception ([pool.job.raise]). *)

val yield_if : Point.t -> unit
(** [yield_if p] spins briefly (a few hundred [Domain.cpu_relax]) iff
    [fire p].  For points whose failure mode is an adversarial delay
    ([btree.descent.yield], [btree.split.delay]). *)

val fired : Point.t -> int
(** Number of times [p] fired since the last {!configure}. *)

val total_fired : unit -> int

val armed_points : unit -> (Point.t * int) list
(** The currently armed points with their 1-in-rate firing rates; empty
    when disarmed.  Racy-but-defined against a concurrent [configure]
    (which quiescent code performs), so live observers — the telemetry
    server's chaos probe — may read it at any time. *)

val spec_help : string
(** One-line syntax summary of the [--chaos] spec, for CLI docs. *)

val apply_spec : string -> (unit, string) result
(** [apply_spec "seed=42,points=olock.validate.force_fail:8+pool.job.raise"]
    parses and applies a CLI chaos spec:
    - [seed=N] sets the seed (default 1);
    - [points=p1\[:rate1\]+p2\[:rate2\]+...] arms the listed points
      (default rate 16); [points=all\[:rate\]] arms every point.
    Returns [Error msg] (and arms nothing) on a malformed spec. *)

val pp_fired : Format.formatter -> unit -> unit
(** Print the per-point fired counts of the current/last configuration
    (silent when nothing ever fired). *)
