(* Deterministic failpoint registry.

   Shape of the fast path: [fire] loads one [bool Atomic.t] and branches —
   the registry disabled costs the same as a disabled telemetry site, so
   the points can live inside the optimistic descent and the lock protocol
   without perturbing the measurements they exist to stress.

   Determinism: each domain owns a private xorshift stream (via
   [Domain.DLS]) seeded from the configured seed mixed with the domain id
   — the same splitmix-style mixing the telemetry sampler uses.  A fixed
   seed therefore replays the same per-domain decision sequence; across
   domains the interleaving still varies with the schedule, which is
   exactly what a chaos run wants (decisions deterministic, arrival order
   adversarial).

   Fired counters are global atomics: firings are rare by construction
   (1-in-rate), so the shared increment costs nothing measurable and keeps
   the counts exact across domains. *)

module Point = struct
  type t =
    | Olock_validate_force_fail
    | Btree_descent_yield
    | Btree_split_delay
    | Pool_job_raise
    | Io_read_truncate
    | Server_conn_drop
    | Server_phase_busy
    | Wal_write_short
    | Wal_fsync_fail
    | Wal_recover_corrupt

  let all =
    [
      Olock_validate_force_fail; Btree_descent_yield; Btree_split_delay;
      Pool_job_raise; Io_read_truncate; Server_conn_drop; Server_phase_busy;
      Wal_write_short; Wal_fsync_fail; Wal_recover_corrupt;
    ]

  let index = function
    | Olock_validate_force_fail -> 0
    | Btree_descent_yield -> 1
    | Btree_split_delay -> 2
    | Pool_job_raise -> 3
    | Io_read_truncate -> 4
    | Server_conn_drop -> 5
    | Server_phase_busy -> 6
    | Wal_write_short -> 7
    | Wal_fsync_fail -> 8
    | Wal_recover_corrupt -> 9

  let count = List.length all

  let name = function
    | Olock_validate_force_fail -> "olock.validate.force_fail"
    | Btree_descent_yield -> "btree.descent.yield"
    | Btree_split_delay -> "btree.split.delay"
    | Pool_job_raise -> "pool.job.raise"
    | Io_read_truncate -> "io.read.truncate"
    | Server_conn_drop -> "server.conn.drop"
    | Server_phase_busy -> "server.phase.busy"
    | Wal_write_short -> "wal.write.short"
    | Wal_fsync_fail -> "wal.fsync.fail"
    | Wal_recover_corrupt -> "wal.recover.corrupt"

  let of_name s = List.find_opt (fun p -> name p = s) all
end

exception Injected of string

let () =
  Printexc.register_printer (function
    | Injected p -> Some (Printf.sprintf "Chaos.Injected(%s)" p)
    | _ -> None)

(* Master switch: the only thing the disabled fast path touches. *)
let armed = Atomic.make false

(* Per-point 1-in-rate firing probability; 0 = point disarmed.  Plain array
   written only by [configure]/[disable] (quiescent code) and read racily by
   firing sites — a stale read fires or skips one event, which is harmless. *)
let rates = Array.make Point.count 0
let fired_counts = Array.init Point.count (fun _ -> Atomic.make 0)
let current_seed = ref 0

(* splitmix-style seed mixing, one stream per domain *)
let mix seed d =
  let z = (seed + ((d + 1) * 0x9E3779B9)) land max_int in
  let z = z lxor (z lsr 16) in
  let z = z * 0x85EBCA6B land max_int in
  let z = z lxor (z lsr 13) in
  let z = z * 0xC2B2AE35 land max_int in
  let z = z lxor (z lsr 16) in
  if z = 0 then 0x2545F491 else z

(* The DLS slot holds the configuration epoch the stream was seeded under,
   so a re-[configure] reseeds every domain's stream on its next draw. *)
type stream = { mutable st_epoch : int; mutable st_rng : int }

let epoch = Atomic.make 0

let stream_key =
  Domain.DLS.new_key (fun () -> { st_epoch = -1; st_rng = 1 })

let rng_next st =
  let r = st.st_rng in
  let r = r lxor (r lsl 13) land max_int in
  let r = r lxor (r lsr 7) in
  let r = r lxor (r lsl 17) land max_int in
  let r = if r = 0 then 0x2545F491 else r in
  st.st_rng <- r;
  r

let active () = Atomic.get armed
let seed () = !current_seed

let configure ?(seed = 1) points =
  List.iter
    (fun (p, rate) ->
      if rate < 1 then
        invalid_arg
          (Printf.sprintf "Chaos.configure: %s: rate must be >= 1 (got %d)"
             (Point.name p) rate))
    points;
  Array.fill rates 0 Point.count 0;
  List.iter (fun (p, rate) -> rates.(Point.index p) <- rate) points;
  Array.iter (fun c -> Atomic.set c 0) fired_counts;
  current_seed := seed;
  Atomic.incr epoch;
  Atomic.set armed (points <> [])

let disable () = Atomic.set armed false

(* Observability hook, called on every firing (cold path by construction:
   firings are 1-in-rate).  The chaos layer depends on nothing, so outside
   observers — the flight recorder — are wired in by the binaries. *)
let fire_hook : (Point.t -> unit) option ref = ref None
let set_fire_hook h = fire_hook := h

let fire p =
  if not (Atomic.get armed) then false
  else begin
    let rate = Array.unsafe_get rates (Point.index p) in
    if rate = 0 then false
    else begin
      let st = Domain.DLS.get stream_key in
      let e = Atomic.get epoch in
      if st.st_epoch <> e then begin
        st.st_epoch <- e;
        st.st_rng <- mix !current_seed ((Domain.self () :> int))
      end;
      let hit = rng_next st mod rate = 0 in
      if hit then begin
        Atomic.incr fired_counts.(Point.index p);
        match !fire_hook with Some f -> f p | None -> ()
      end;
      hit
    end
  end

let inject p = if fire p then raise (Injected (Point.name p))

let yield_if p =
  if fire p then
    (* long enough to push a concurrent writer through its whole critical
       section, short enough to keep chaos runs fast *)
    for _ = 1 to 512 do
      Domain.cpu_relax ()
    done

let fired p = Atomic.get fired_counts.(Point.index p)
let total_fired () = Array.fold_left (fun a c -> a + Atomic.get c) 0 fired_counts

let armed_points () =
  if not (Atomic.get armed) then []
  else
    List.filter_map
      (fun p ->
        let rate = rates.(Point.index p) in
        if rate > 0 then Some (p, rate) else None)
      Point.all

let spec_help =
  "seed=N,points=P1[:RATE1]+P2[:RATE2]+...  (point names: \
   olock.validate.force_fail btree.descent.yield btree.split.delay \
   pool.job.raise io.read.truncate server.conn.drop server.phase.busy \
   wal.write.short wal.fsync.fail wal.recover.corrupt, \
   or 'all'; RATE fires 1-in-RATE, default 16)"

let default_rate = 16

let apply_spec spec =
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let parse_point entry =
    let name, rate =
      match String.index_opt entry ':' with
      | None -> (entry, default_rate)
      | Some i -> (
        let n = String.sub entry 0 i in
        let r = String.sub entry (i + 1) (String.length entry - i - 1) in
        match int_of_string_opt r with
        | Some r when r >= 1 -> (n, r)
        | _ -> (n, -1))
    in
    if rate < 1 then Error (Printf.sprintf "bad rate in %S" entry)
    else if name = "all" then Ok (List.map (fun p -> (p, rate)) Point.all)
    else
      match Point.of_name name with
      | Some p -> Ok [ (p, rate) ]
      | None ->
        Error
          (Printf.sprintf "unknown failpoint %S (known: %s)" name
             (String.concat " " (List.map Point.name Point.all)))
  in
  let parse_field (seed, points) field =
    let* seed, points = Ok (seed, points) in
    match String.index_opt field '=' with
    | None -> Error (Printf.sprintf "expected key=value, got %S" field)
    | Some i -> (
      let key = String.sub field 0 i in
      let value = String.sub field (i + 1) (String.length field - i - 1) in
      match key with
      | "seed" -> (
        match int_of_string_opt value with
        | Some s -> Ok (Some s, points)
        | None -> Error (Printf.sprintf "bad seed %S" value))
      | "points" ->
        let entries = String.split_on_char '+' value in
        let rec collect acc = function
          | [] -> Ok (List.concat (List.rev acc))
          | e :: rest ->
            let* ps = parse_point e in
            collect (ps :: acc) rest
        in
        let* ps = collect [] entries in
        Ok (seed, points @ ps)
      | _ -> Error (Printf.sprintf "unknown key %S (want seed= or points=)" key))
  in
  let fields =
    List.filter (fun f -> f <> "") (String.split_on_char ',' (String.trim spec))
  in
  if fields = [] then Error "empty chaos spec"
  else
    let rec go acc = function
      | [] -> Ok acc
      | f :: rest ->
        let* acc = parse_field acc f in
        go acc rest
    in
    let* seed, points = go (None, []) fields in
    if points = [] then Error "chaos spec arms no points (add points=...)"
    else begin
      configure ?seed points;
      Ok ()
    end

let pp_fired fmt () =
  if total_fired () > 0 then begin
    Format.fprintf fmt "@[<v>chaos (seed %d):@," !current_seed;
    List.iter
      (fun p ->
        let n = fired p in
        if n > 0 then Format.fprintf fmt "  %-28s fired %d@," (Point.name p) n)
      Point.all;
    Format.fprintf fmt "@]"
  end
