(** Shared observability flag surface of the binaries.

    [datalog_cli], [bench], [stress] and [datalog_serve] all expose the
    same quartet — [--chaos], [--flight], [--serve-metrics],
    [--serve-interval] — and the same wiring behind it (spec parsing,
    recorder enablement, the chaos→flight fire hook, the telemetry
    endpoint with its chaos probe, crash dumps).  This module is that
    surface, defined once: a binary composes the terms into its command
    line and calls {!setup} first thing, so a new observability flag
    lands in every binary by construction. *)

val chaos_term : string option Cmdliner.Term.t
(** [--chaos SPEC] — deterministic fault injection ({!Chaos.apply_spec}
    syntax). *)

val flight_term : bool Cmdliner.Term.t
(** [--flight] — enable the flight recorder. *)

val serve_metrics_term : string option Cmdliner.Term.t
(** [--serve-metrics ADDR] — live telemetry endpoint
    ([unix:PATH] / [PORT] / [HOST:PORT]). *)

val serve_interval_term : int Cmdliner.Term.t
(** [--serve-interval MS] — sampling window length (default 1000). *)

val setup :
  ?telemetry_on_serve:bool ->
  chaos:string option ->
  flight:bool ->
  serve_metrics:string option ->
  serve_interval:int ->
  unit ->
  Telemetry_server.t option
(** Apply the quartet, in order: arm the chaos spec ([exit 2] + usage on a
    malformed one), enable the flight recorder if asked, install the
    chaos→flight fire hook (always — it is inert while the recorder is
    off), and start the telemetry endpoint when requested (banner printed;
    [exit 2] on a bad address or bind failure).  Serving implies the
    flight recorder, and — unless [telemetry_on_serve] is [false] (a
    binary that toggles counters itself, e.g. bench's overhead phases) —
    the telemetry counters.  Returns the running endpoint; pass it to
    {!teardown} in a [Fun.protect] finally. *)

val teardown : Telemetry_server.t option -> unit
(** Stop the endpoint from {!setup}, if one was started. *)

val crash_dump :
  ?extra:(string * Telemetry.Json.t) list -> exn -> string
(** Post-mortem on an escaping exception: flag /health degraded
    ({!Telemetry_server.Health.note_uncontained}) and drain the flight
    rings into a crash dump tagged with the chaos seed plus [extra].
    Returns the dump path (callers print it their own way).  Call only
    with the recorder enabled. *)
