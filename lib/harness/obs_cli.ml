(* Shared observability flag surface (see the .mli for the contract).
   Everything here was once copy-pasted across datalog_cli/bench/stress;
   keep it boring and binary-agnostic. *)

module Arg = Cmdliner.Arg

let chaos_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "chaos" ] ~docv:"SPEC"
        ~doc:
          "Arm deterministic fault injection, e.g. \
           $(b,seed=42,points=olock.validate.force_fail:8+pool.job.raise). \
           Spec format: seed=N,points=p1[:rate]+p2[:rate] (rate = 1-in-rate \
           firing; 'all' arms every point).")

let flight_term =
  Arg.(
    value & flag
    & info [ "flight" ]
        ~doc:
          "Enable the flight recorder: per-domain event rings feeding the \
           contention heatmap, Chrome traces, and a crashdump-<seed>.json \
           written on failure (inspect with $(b,flightrec)).")

let serve_metrics_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "serve-metrics" ] ~docv:"ADDR"
        ~doc:
          "Serve live telemetry over HTTP/1.0 while the run executes: \
           /metrics (Prometheus), /snapshot.json (windowed deltas), /heat \
           (contention heatmap), /health, /trace.  $(docv) is $(b,unix:PATH), \
           $(b,PORT) (binds 127.0.0.1), or $(b,HOST:PORT); port 0 picks an \
           ephemeral port (printed at startup).  Implies the flight \
           recorder.")

let serve_interval_term =
  Arg.(
    value & opt int 1000
    & info [ "serve-interval" ] ~docv:"MS"
        ~doc:
          "Sampling window length for --serve-metrics, in milliseconds (min \
           10).")

let setup ?(telemetry_on_serve = true) ~chaos ~flight ~serve_metrics
    ~serve_interval () =
  (match chaos with
  | None -> ()
  | Some spec -> (
    match Chaos.apply_spec spec with
    | Ok () -> ()
    | Error m ->
      Printf.eprintf "--chaos: %s\n%s\n" m Chaos.spec_help;
      exit 2));
  if flight then Flight.enable ();
  (* Inert while the recorder is off, so install it unconditionally: a
     phase that enables the recorder later gets firings for free. *)
  Chaos.set_fire_hook
    (Some
       (fun p -> Flight.record Flight.Ev.Chaos_fire (Chaos.Point.index p) 0 0));
  match serve_metrics with
  | None -> None
  | Some addr_s -> (
    match Telemetry_server.parse_addr addr_s with
    | Error m ->
      Printf.eprintf "--serve-metrics: %s\n" m;
      exit 2
    | Ok addr -> (
      if telemetry_on_serve then Telemetry.enable ();
      if not (Flight.enabled ()) then Flight.enable ();
      Telemetry_server.set_chaos_probe
        (Some (fun () -> (Chaos.active (), Chaos.total_fired ())));
      match Telemetry_server.start ~interval_ms:serve_interval addr with
      | Error m ->
        Printf.eprintf "--serve-metrics: %s\n" m;
        exit 2
      | Ok srv ->
        Printf.printf
          "serving telemetry on %s (/metrics /snapshot.json /heat /health \
           /trace)\n\
           %!"
          (Telemetry_server.addr_to_string (Telemetry_server.bound srv));
        Some srv))

let teardown server = Option.iter Telemetry_server.stop server

let crash_dump ?(extra = []) exn =
  Telemetry_server.Health.note_uncontained (Printexc.to_string exn);
  Flight.write_crashdump
    ~reason:(Printexc.to_string exn)
    ~seed:(Chaos.seed ()) ~extra ()
