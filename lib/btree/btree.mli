(** The specialized concurrent B-tree of the paper (section 3).

    A classic in-memory B-tree (elements stored in inner nodes as well as
    leaves) over a totally ordered key type, specialised for parallel
    semi-naive Datalog evaluation:

    - {b concurrent insertion} with the optimistic fine-grained locking
      scheme of Algorithms 1 and 2: descent takes read leases only and
      validates them before every use; exclusive write permits are taken on
      the target leaf by lease upgrade and, for splits, bottom-up along the
      ancestor path;
    - {b no deletion}: Datalog relations only grow, so nodes are never freed
      or replaced — which is what makes both optimistic reads and operation
      hints safe;
    - {b operation hints} (section 3.2): thread-local caches of the last leaf
      accessed by each of the four frequent operations (insert, membership,
      lower bound, upper bound).  When the next operation falls within the
      cached leaf's key range the tree traversal is skipped entirely;
    - {b two-phase usage}: in every parallel context the tree is either
      exclusively written or exclusively queried.  [insert] is safe against
      concurrent [insert]s; the read operations ([mem], bounds, iteration)
      are safe against concurrent reads and need no synchronisation, per the
      semi-naive evaluation guarantee (section 2).

    The implementation never blocks readers, and writers block only in
    [start_write] during bottom-up split locking, preserving the paper's
    deadlock-freedom argument (read permits are non-blocking, write permits
    are acquired in strictly increasing tree-level order). *)

module Make (K : Key.ORDERED) : sig
  type key = K.t

  type t
  (** A concurrent B-tree set of [key]s. *)

  val create : ?capacity:int -> ?binary_search:bool -> unit -> t
  (** [create ()] is an empty tree.

      @param capacity maximal number of keys per node (default {!default_capacity});
        must be at least 3.  Chosen so a node spans a few cache lines.
      @param binary_search search within nodes by binary instead of linear
        scan (default [false]: linear search wins for cache-resident node
        sizes, as in Soufflé).  Exposed for the width/search ablation. *)

  val default_capacity : int

  (** {1 Operation hints}

      A [hints] value caches the last leaf located by each operation kind.
      Hints are {e thread-local by convention} and are owned by a
      per-domain {!session} — route hinted operations through {!s_insert}
      and friends; the values below exist for hint-statistics inspection
      (via {!s_hints}) and for the ablation harness.  Hints never dangle
      because nodes are never deleted. *)

  type hints

  val make_hints : unit -> hints
  (** Fresh, empty hints (the paper's "factory function for initial operation
      hints"). *)

  type hint_stats = {
    insert_hits : int;
    insert_misses : int;
    find_hits : int;
    find_misses : int;
    lower_bound_hits : int;
    lower_bound_misses : int;
    upper_bound_hits : int;
    upper_bound_misses : int;
  }

  val hint_stats : hints -> hint_stats
  val reset_hint_stats : hints -> unit

  val merge_hint_stats : hint_stats list -> hint_stats
  val hit_rate : hint_stats -> float
  (** Overall fraction of hinted operations that hit, in [0..1]. *)

  val hint_run_hist : hints -> int array
  (** Hint-locality distribution: log2-bucketed lengths of uninterrupted
      hit runs (bucket [b>0] holds runs of [2^(b-1)..2^b-1] hits; bucket 0
      counts misses that immediately followed a miss).  A run is recorded
      when a miss breaks it; the still-open run, if any, is counted as if
      it closed now.  Long runs are the sorted access pattern the hints
      exploit (paper section 3.2). *)

  (** {1 Robustness}

      Optimistic descents retry on observing a concurrent write.  Under
      adversarial scheduling (or forced validation failures from the chaos
      layer) retries alone cannot bound the descent, so each insertion
      carries a retry budget: once the budget is exhausted the descent falls
      back to a {e pessimistic} write-locked descent that never holds one
      node lock while blocking on another (it re-acquires by CAS on a
      version observed under the previous lock, restarting from the root on
      failure — and every such restart coincides with a completed concurrent
      write, so the fallback makes global progress by construction).
      Fallbacks bump [Telemetry.Counter.Btree_pessimistic_fallbacks] and
      time into [Telemetry.Hist.Btree_fallback_ns]; healthy non-chaos runs
      never fall back (gated by tools/regress.sh). *)

  val set_restart_budget : int -> unit
  (** Optimistic restarts allowed per insertion before the pessimistic
      fallback engages (default 16).  [0] makes every descent pessimistic —
      used by tests and the stress harness to drive the fallback path
      deterministically.  Quiescent use only; per [Make] instantiation.
      @raise Invalid_argument if negative. *)

  val restart_budget : unit -> int

  (** {1 Modification} *)

  val insert : t -> key -> bool
  (** [insert t k] adds [k]; returns [true] iff [k] was not already present.
      Thread-safe against concurrent [insert]s (Algorithm 1).  Unhinted;
      for the hinted path use {!s_insert} on a per-domain {!session}. *)

  val insert_batch : ?pos:int -> ?len:int -> t -> key array -> int
  (** [insert_batch t run] inserts the sorted run [run.(pos..pos+len-1)]
      (non-decreasing; duplicates are skipped) and returns the number of
      fresh keys.  One optimistic descent acquires the target leaf's write
      permit together with the leaf's exclusive upper bound, and the run is
      then consumed up to that bound: same-gap keys are spliced with two
      blits, a full leaf is split in place and filling continues in the left
      half while the run allows (multi-split).  Amortises one descent and
      one write-lock acquisition over many keys — the batch generalisation
      of the insert hint.  Thread-safe against concurrent [insert]s and
      [insert_batch]es.
      @raise Invalid_argument when the run is not sorted or the range is
      invalid. *)

  val insert_all : t -> t -> unit
  (** [insert_all dst src] inserts every element of [src] into [dst] in
      order, driving the insertion with internal hints so that runs of
      consecutive keys share tree traversals — the paper's specialised
      merge.  [src] is not modified.  Thread-safe on [dst] (it is a loop
      of [insert]s). *)

  (** {1 Queries (read phase)} *)

  val mem : t -> key -> bool
  val is_empty : t -> bool

  val cardinal : t -> int
  (** O(n); the tree maintains no element counter (counters would serialise
      writers). *)

  val min_elt : t -> key option
  val max_elt : t -> key option

  val lower_bound : t -> key -> key option
  (** Smallest element [>= k], if any. *)

  val upper_bound : t -> key -> key option
  (** Smallest element [> k], if any. *)

  val iter : (key -> unit) -> t -> unit
  (** In-order iteration over all elements. *)

  val fold : ('a -> key -> 'a) -> 'a -> t -> 'a

  val iter_while : (key -> bool) -> t -> unit
  (** In-order iteration stopping the first time the callback returns
      [false]. *)

  val iter_from : (key -> bool) -> t -> key -> unit
  (** [iter_from f t k] applies [f] in order to every element [>= k] and
      stops when [f] returns [false].  This is the range-scan primitive
      behind the Datalog engine's [lower_bound]/[upper_bound] joins.

      Through a session ({!s_iter_from}), a scan that starts inside (and
      completes within) the leaf cached by the previous bound query skips
      the tree traversal entirely; the hit is counted in the lower-bound
      hint statistics. *)

  val to_list : t -> key list
  val to_sorted_array : t -> key array

  val of_sorted_array : ?capacity:int -> key array -> t
  (** Bulk-build from a sorted, duplicate-free array; O(n).  Used by the
      parallel-reduction baseline's merge step and by tests.  Packing
      conventions (node target fill) are shared with {!insert_batch}
      through [Leaf_pack].
      @raise Invalid_argument if the input is not strictly increasing. *)

  val separators : t -> limit:int -> key array
  (** At most [limit] separator keys from the top levels of the tree, in
      ascending order — range-partition pivots for parallel structural
      merges: all keys below [separators.(i)] reach leaves disjoint from
      those reached by keys above it.  Quiescent use only. *)

  (** {1 Explicit iterators}

      An imperative cursor over the tree, mirroring the STL-like interface
      the paper's engine requires ([begin()]/[end()]/increment).  Iterators
      navigate through parent pointers, so they are O(1) amortised per step
      and need no heap-allocated stack.  Read-phase use only: advancing an
      iterator during concurrent writes is memory-safe but may miss or
      repeat elements. *)

  module Iterator : sig
    type it

    val start : t -> it
    (** Positioned on the smallest element ([begin()]); at the end for an
        empty tree. *)

    val seek : t -> key -> it
    (** Positioned on the smallest element [>= k] ([lower_bound]). *)

    val at_end : it -> bool

    val get : it -> key
    (** @raise Invalid_argument when {!at_end}. *)

    val advance : it -> unit
    (** Move to the in-order successor.  @raise Invalid_argument when
        already {!at_end}. *)

    val copy : it -> it
  end

  (** {1 Set predicates} *)

  val equal : t -> t -> bool
  (** Same elements (lockstep in-order walk; O(min(m, n))). *)

  val subset : t -> t -> bool
  (** [subset a b]: every element of [a] is in [b]. *)

  val disjoint : t -> t -> bool

  (** {1 Introspection (tests, space ablation)} *)

  type stats = {
    elements : int;
    nodes : int;
    leaves : int;
    height : int;
    fill : float;  (** mean node fill grade in [0..1] *)
  }

  val stats : t -> stats

  val shape : t -> Tree_shape.t
  (** Full structural report (per-level node counts, fill-factor deciles);
      same height/fill conventions as {!stats}.  Quiescent use only. *)

  val check_invariants : t -> unit
  (** Validates ordering, node fill bounds, uniform leaf depth and
      parent/position back-pointers.  @raise Failure describing the first
      violated invariant.  Quiescent use only. *)

  (** {1 Sessions}

      A session is a per-domain handle owning the domain's operation hints
      (and, by construction, delimiting the domain-local telemetry shard
      its operations account to).  Create one per domain with {!session}
      and route all of that domain's operations through it.  Sessions are
      the only hinted surface: the former [?hints] optional arguments on
      the raw operations are gone. *)

  type session

  val session : t -> session
  (** A fresh per-domain handle with empty hints.  Do not share across
      domains (memory-safe, but destroys the hint hit rate). *)

  val s_tree : session -> t
  val s_hints : session -> hints

  val s_insert : session -> key -> bool
  val s_insert_batch : ?pos:int -> ?len:int -> session -> key array -> int
  val s_mem : session -> key -> bool
  val s_lower_bound : session -> key -> key option
  val s_upper_bound : session -> key -> key option
  val s_iter_from : (key -> bool) -> session -> key -> unit

  (** Witness that the tree satisfies the shared storage-backend contract
      (hints dropped; structure-generic drivers and tests use this view). *)
  module As_storage : Storage_intf.S with type elt = key and type t = t
end
