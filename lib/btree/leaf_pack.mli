(** Shared leaf-packing conventions of the bulk write paths
    ([of_sorted_array] bulk build and [insert_batch] sorted-run insert).
    Keeping both on one helper is what guarantees they agree on
    capacity/fill conventions. *)

val target_fill : capacity:int -> int
(** Keys a bulk build packs per node: 3/4 of [capacity] (at least 1),
    leaving headroom for later point inserts. *)

val splice :
  keys:'a array ->
  nkeys:int ->
  at:int ->
  src:'a array ->
  src_pos:int ->
  len:int ->
  unit
(** Splice [src.(src_pos..src_pos+len-1)] into [keys] at [at], shifting the
    [nkeys - at] tail entries right; two blits regardless of [len].  The
    caller guarantees room and ordering. *)
