(* Structural report of a B-tree, shared by the functorised tree ([Btree])
   and the specialized tuple tree ([Btree_tuples]).  Extends the height/fill
   summary of [check]/[stats] into the full shape the paper reasons about:
   how node population distributes over levels and how well nodes stay
   filled under concurrent growth (PAPER §3: splits keep a balanced, densely
   filled tree; a degenerate shape would show up here first). *)

type t = {
  elements : int;
  nodes : int;
  leaves : int;
  height : int; (* root-only tree has height 1; empty tree 0 *)
  capacity : int; (* max keys per node *)
  fill : float; (* elements / (nodes * capacity) *)
  level_nodes : int array; (* length = height; index 0 is the root level *)
  level_keys : int array; (* keys stored per level *)
  fill_deciles : int array; (* length 10: nodes per 10%-of-capacity band *)
}

let empty ~capacity =
  {
    elements = 0;
    nodes = 0;
    leaves = 0;
    height = 0;
    capacity;
    fill = 0.0;
    level_nodes = [||];
    level_keys = [||];
    fill_deciles = Array.make 10 0;
  }

let int_array_json a =
  Telemetry.Json.List (Array.to_list (Array.map (fun i -> Telemetry.Json.Int i) a))

let to_json s =
  Telemetry.Json.Obj
    [
      ("elements", Telemetry.Json.Int s.elements);
      ("nodes", Telemetry.Json.Int s.nodes);
      ("leaves", Telemetry.Json.Int s.leaves);
      ("height", Telemetry.Json.Int s.height);
      ("capacity", Telemetry.Json.Int s.capacity);
      ("fill", Telemetry.Json.Float s.fill);
      ("level_nodes", int_array_json s.level_nodes);
      ("level_keys", int_array_json s.level_keys);
      ("fill_deciles", int_array_json s.fill_deciles);
    ]

let pp fmt s =
  if s.nodes = 0 then Format.fprintf fmt "empty"
  else begin
    Format.fprintf fmt "height=%d nodes=%d (%d leaves) elements=%d fill=%.0f%%"
      s.height s.nodes s.leaves s.elements (100.0 *. s.fill);
    Format.fprintf fmt " levels=[";
    Array.iteri
      (fun i n -> Format.fprintf fmt "%s%d" (if i > 0 then " " else "") n)
      s.level_nodes;
    Format.fprintf fmt "] fill-deciles=[";
    Array.iteri
      (fun i n -> Format.fprintf fmt "%s%d" (if i > 0 then " " else "") n)
      s.fill_deciles;
    Format.fprintf fmt "]"
  end

(* ------------------------------------------------------------------ *)
(* Contention heatmap                                                 *)
(* ------------------------------------------------------------------ *)

(* Aggregation of flight-recorder contention events into per-level ×
   key-bucket hotspot tables.  Node identity is (level, bucket): depth
   from the root and the root-child index the descent took — the root
   separators genuinely partition the key space, so the bucket is a real
   key range.  Level/bucket -1 marks hinted-leaf events (no descent). *)

let heat_classes = [| "validation_fail"; "upgrade_fail"; "split" |]

type heat = {
  heat_cells : ((int * int) * int array) list;
      (* ((level, bucket), counts indexed like [heat_classes]), sorted *)
  heat_restarts : int;
  heat_fallbacks : int;
  heat_lock_waits : int;
  heat_lock_wait_ns : int; (* summed measured wait of contended writes *)
}

let heat_class_of_kind = function
  | Flight.Ev.Validation_fail -> Some 0
  | Flight.Ev.Upgrade_fail -> Some 1
  | Flight.Ev.Split -> Some 2
  | _ -> None

let heat_of_events evs =
  let cells : (int * int, int array) Hashtbl.t = Hashtbl.create 32 in
  let restarts = ref 0 in
  let fallbacks = ref 0 in
  let lock_waits = ref 0 in
  let lock_wait_ns = ref 0 in
  List.iter
    (fun (e : Flight.event) ->
      match e.Flight.e_kind with
      | Flight.Ev.Restart -> incr restarts
      | Flight.Ev.Fallback -> incr fallbacks
      | Flight.Ev.Lock_wait ->
        incr lock_waits;
        lock_wait_ns := !lock_wait_ns + e.Flight.e_a1
      | k -> (
        match heat_class_of_kind k with
        | None -> ()
        | Some cls ->
          let key = (e.Flight.e_a1, e.Flight.e_a2) in
          let counts =
            match Hashtbl.find_opt cells key with
            | Some c -> c
            | None ->
              let c = Array.make (Array.length heat_classes) 0 in
              Hashtbl.add cells key c;
              c
          in
          counts.(cls) <- counts.(cls) + 1))
    evs;
  {
    heat_cells =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) cells []
      |> List.sort (fun (a, _) (b, _) -> compare a b);
    heat_restarts = !restarts;
    heat_fallbacks = !fallbacks;
    heat_lock_waits = !lock_waits;
    heat_lock_wait_ns = !lock_wait_ns;
  }

(* Per-level rollup of the tagged cells, sorted by level (level -1 =
   hinted-leaf events, printed as "hint"). *)
let heat_levels h =
  let levels : (int, int array) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun ((level, _), counts) ->
      let acc =
        match Hashtbl.find_opt levels level with
        | Some a -> a
        | None ->
          let a = Array.make (Array.length heat_classes) 0 in
          Hashtbl.add levels level a;
          a
      in
      Array.iteri (fun i c -> acc.(i) <- acc.(i) + c) counts)
    h.heat_cells;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) levels []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let hottest_level h =
  List.fold_left
    (fun best (level, counts) ->
      let total = Array.fold_left ( + ) 0 counts in
      match best with
      | Some (_, bt) when bt >= total -> best
      | _ -> if total > 0 then Some (level, total) else best)
    None (heat_levels h)
  |> Option.map fst

let heat_total h =
  List.fold_left
    (fun acc (_, counts) -> acc + Array.fold_left ( + ) 0 counts)
    0 h.heat_cells

let level_label level = if level < 0 then "hint" else string_of_int level

let pp_heat fmt h =
  if
    heat_total h = 0 && h.heat_restarts = 0 && h.heat_fallbacks = 0
    && h.heat_lock_waits = 0
  then Format.fprintf fmt "no contention events"
  else begin
    Format.fprintf fmt "@[<v>per-level contention:@,";
    Format.fprintf fmt "  %-6s %12s %12s %12s@," "level" "validation"
      "upgrade" "split";
    List.iter
      (fun (level, counts) ->
        Format.fprintf fmt "  %-6s %12d %12d %12d@," (level_label level)
          counts.(0) counts.(1) counts.(2))
      (heat_levels h);
    (match hottest_level h with
    | Some l -> Format.fprintf fmt "hottest level: %s@," (level_label l)
    | None -> ());
    let hot_cells =
      List.filter
        (fun ((level, _), _) -> level >= 0)
        h.heat_cells
      |> List.sort (fun (_, a) (_, b) ->
             compare
               (Array.fold_left ( + ) 0 b)
               (Array.fold_left ( + ) 0 a))
    in
    (match hot_cells with
    | [] -> ()
    | _ ->
      Format.fprintf fmt "hot cells (level, key bucket):@,";
      List.iteri
        (fun i ((level, bucket), counts) ->
          if i < 8 then
            Format.fprintf fmt "  L%d b%-4d v=%d u=%d s=%d@," level bucket
              counts.(0) counts.(1) counts.(2))
        hot_cells);
    Format.fprintf fmt
      "untagged: restarts=%d fallbacks=%d lock_waits=%d (%.3f ms waited)@]"
      h.heat_restarts h.heat_fallbacks h.heat_lock_waits
      (float_of_int h.heat_lock_wait_ns /. 1e6)
  end

let heat_to_json h =
  Telemetry.Json.Obj
    [
      ( "classes",
        Telemetry.Json.List
          (Array.to_list
             (Array.map (fun c -> Telemetry.Json.String c) heat_classes)) );
      ( "cells",
        Telemetry.Json.List
          (List.map
             (fun ((level, bucket), counts) ->
               Telemetry.Json.Obj
                 [
                   ("level", Telemetry.Json.Int level);
                   ("bucket", Telemetry.Json.Int bucket);
                   ("counts", int_array_json counts);
                 ])
             h.heat_cells) );
      ("restarts", Telemetry.Json.Int h.heat_restarts);
      ("fallbacks", Telemetry.Json.Int h.heat_fallbacks);
      ("lock_waits", Telemetry.Json.Int h.heat_lock_waits);
      ("lock_wait_ns", Telemetry.Json.Int h.heat_lock_wait_ns);
    ]
