(* Structural report of a B-tree, shared by the functorised tree ([Btree])
   and the specialized tuple tree ([Btree_tuples]).  Extends the height/fill
   summary of [check]/[stats] into the full shape the paper reasons about:
   how node population distributes over levels and how well nodes stay
   filled under concurrent growth (PAPER §3: splits keep a balanced, densely
   filled tree; a degenerate shape would show up here first). *)

type t = {
  elements : int;
  nodes : int;
  leaves : int;
  height : int; (* root-only tree has height 1; empty tree 0 *)
  capacity : int; (* max keys per node *)
  fill : float; (* elements / (nodes * capacity) *)
  level_nodes : int array; (* length = height; index 0 is the root level *)
  level_keys : int array; (* keys stored per level *)
  fill_deciles : int array; (* length 10: nodes per 10%-of-capacity band *)
}

let empty ~capacity =
  {
    elements = 0;
    nodes = 0;
    leaves = 0;
    height = 0;
    capacity;
    fill = 0.0;
    level_nodes = [||];
    level_keys = [||];
    fill_deciles = Array.make 10 0;
  }

let int_array_json a =
  Telemetry.Json.List (Array.to_list (Array.map (fun i -> Telemetry.Json.Int i) a))

let to_json s =
  Telemetry.Json.Obj
    [
      ("elements", Telemetry.Json.Int s.elements);
      ("nodes", Telemetry.Json.Int s.nodes);
      ("leaves", Telemetry.Json.Int s.leaves);
      ("height", Telemetry.Json.Int s.height);
      ("capacity", Telemetry.Json.Int s.capacity);
      ("fill", Telemetry.Json.Float s.fill);
      ("level_nodes", int_array_json s.level_nodes);
      ("level_keys", int_array_json s.level_keys);
      ("fill_deciles", int_array_json s.fill_deciles);
    ]

let pp fmt s =
  if s.nodes = 0 then Format.fprintf fmt "empty"
  else begin
    Format.fprintf fmt "height=%d nodes=%d (%d leaves) elements=%d fill=%.0f%%"
      s.height s.nodes s.leaves s.elements (100.0 *. s.fill);
    Format.fprintf fmt " levels=[";
    Array.iteri
      (fun i n -> Format.fprintf fmt "%s%d" (if i > 0 then " " else "") n)
      s.level_nodes;
    Format.fprintf fmt "] fill-deciles=[";
    Array.iteri
      (fun i n -> Format.fprintf fmt "%s%d" (if i > 0 then " " else "") n)
      s.fill_deciles;
    Format.fprintf fmt "]"
  end
