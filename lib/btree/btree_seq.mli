(** Sequential variant of the specialized B-tree.

    Same data structure and operation hints as {!Btree}, with all
    synchronisation removed.  This is the paper's "seq btree" contestant: it
    isolates the cost of the optimistic locking scheme (compare [seq btree]
    vs [btree] in Fig. 3) and of the hint mechanism (pass or omit [hints]).

    Not thread-safe.  All other semantics match {!Btree}. *)

module Make (K : Key.ORDERED) : sig
  type key = K.t
  type t

  val create : ?capacity:int -> ?binary_search:bool -> unit -> t
  val default_capacity : int

  type hints

  val make_hints : unit -> hints

  type hint_stats = {
    insert_hits : int;
    insert_misses : int;
    find_hits : int;
    find_misses : int;
    lower_bound_hits : int;
    lower_bound_misses : int;
    upper_bound_hits : int;
    upper_bound_misses : int;
  }

  val hint_stats : hints -> hint_stats
  val reset_hint_stats : hints -> unit

  val insert : ?hints:hints -> t -> key -> bool

  val insert_batch : ?hints:hints -> ?pos:int -> ?len:int -> t -> key array -> int
  (** Sequential mirror of {!Btree.Make.insert_batch}: inserts a sorted run
      (non-decreasing; duplicates skipped), returns the number of fresh
      keys.  @raise Invalid_argument on an unsorted run or invalid range. *)

  val insert_all : ?hints:hints -> t -> t -> unit
  val mem : ?hints:hints -> t -> key -> bool
  val is_empty : t -> bool
  val cardinal : t -> int
  val min_elt : t -> key option
  val max_elt : t -> key option
  val lower_bound : ?hints:hints -> t -> key -> key option
  val upper_bound : ?hints:hints -> t -> key -> key option
  val iter : (key -> unit) -> t -> unit
  val fold : ('a -> key -> 'a) -> 'a -> t -> 'a
  val iter_while : (key -> bool) -> t -> unit
  val iter_from : (key -> bool) -> t -> key -> unit
  val to_list : t -> key list
  val to_sorted_array : t -> key array
  val of_sorted_array : ?capacity:int -> key array -> t

  type stats = {
    elements : int;
    nodes : int;
    leaves : int;
    height : int;
    fill : float;
  }

  val stats : t -> stats
  val check_invariants : t -> unit

  (** {1 Sessions} — handle owning the operation hints (single-domain;
      this tree is not thread-safe). *)

  type session

  val session : t -> session
  val s_tree : session -> t
  val s_hints : session -> hints
  val s_insert : session -> key -> bool
  val s_insert_batch : ?pos:int -> ?len:int -> session -> key array -> int
  val s_mem : session -> key -> bool
  val s_lower_bound : session -> key -> key option
  val s_upper_bound : session -> key -> key option
  val s_iter_from : (key -> bool) -> session -> key -> unit

  (** Storage-backend witness (hints dropped; [shape] is [None] — this
      variant keeps no structural reporting). *)
  module As_storage : Storage_intf.S with type elt = key and type t = t
end
