module type ORDERED = sig
  type t

  val compare : t -> t -> int
  val dummy : t
  val to_string : t -> string
end

module type HASHABLE = sig
  include ORDERED

  val hash : t -> int
  val equal : t -> t -> bool
end

(* splitmix64 finalizer, truncated to OCaml's 63-bit native int. *)
let mix64 x =
  let open Int64 in
  let z = of_int x in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  let z = logxor z (shift_right_logical z 31) in
  Stdlib.( land ) (to_int z) Stdlib.max_int

module Int = struct
  type t = int

  let compare (a : int) (b : int) = Stdlib.Int.compare a b
  let dummy = 0
  let to_string = string_of_int
  let hash = mix64
  let equal (a : int) (b : int) = a = b
end

module Pair = struct
  type t = int * int

  let compare ((a1, a2) : t) ((b1, b2) : t) =
    if a1 < b1 then -1
    else if a1 > b1 then 1
    else if a2 < b2 then -1
    else if a2 > b2 then 1
    else 0

  let dummy = (0, 0)
  let to_string (a, b) = Printf.sprintf "(%d, %d)" a b
  let hash (a, b) = mix64 (mix64 a lxor b)
  let equal ((a1, a2) : t) ((b1, b2) : t) = a1 = b1 && a2 = b2
end

module Int_array = struct
  type t = int array

  let compare (a : t) (b : t) =
    let la = Array.length a and lb = Array.length b in
    let n = if la < lb then la else lb in
    let rec go i =
      if i = n then Stdlib.Int.compare la lb
      else
        let x = Array.unsafe_get a i and y = Array.unsafe_get b i in
        if x < y then -1 else if x > y then 1 else go (i + 1)
    in
    go 0

  let dummy = [||]

  let to_string a =
    "(" ^ String.concat ", " (Array.to_list (Array.map string_of_int a)) ^ ")"

  let hash a = Array.fold_left (fun acc x -> mix64 (acc lxor mix64 x)) 0x9e3779b9 a

  let equal (a : t) (b : t) =
    let la = Array.length a in
    la = Array.length b
    &&
    let rec go i = i = la || (Array.unsafe_get a i = Array.unsafe_get b i && go (i + 1)) in
    go 0
end
