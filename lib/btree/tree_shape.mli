(** Structural report of a B-tree, shared by {!Btree} and {!Btree_tuples}.

    Extends the height/fill summary of [check]/[stats] into the full shape
    the paper reasons about: per-level node counts and a fill-factor
    histogram showing how densely nodes stay packed under concurrent
    growth.  Computed by a quiescent traversal — do not call while writers
    are running. *)

type t = {
  elements : int;
  nodes : int;
  leaves : int;
  height : int;  (** root-only tree has height 1; empty tree 0 *)
  capacity : int;  (** maximum keys per node *)
  fill : float;  (** [elements / (nodes * capacity)] *)
  level_nodes : int array;  (** length [height]; index 0 is the root level *)
  level_keys : int array;  (** keys stored per level *)
  fill_deciles : int array;
      (** length 10: number of nodes whose occupancy falls in each
          10%-of-capacity band *)
}

val empty : capacity:int -> t
val to_json : t -> Telemetry.Json.t
val pp : Format.formatter -> t -> unit
