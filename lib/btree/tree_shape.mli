(** Structural report of a B-tree, shared by {!Btree} and {!Btree_tuples}.

    Extends the height/fill summary of [check]/[stats] into the full shape
    the paper reasons about: per-level node counts and a fill-factor
    histogram showing how densely nodes stay packed under concurrent
    growth.  Computed by a quiescent traversal — do not call while writers
    are running. *)

type t = {
  elements : int;
  nodes : int;
  leaves : int;
  height : int;  (** root-only tree has height 1; empty tree 0 *)
  capacity : int;  (** maximum keys per node *)
  fill : float;  (** [elements / (nodes * capacity)] *)
  level_nodes : int array;  (** length [height]; index 0 is the root level *)
  level_keys : int array;  (** keys stored per level *)
  fill_deciles : int array;
      (** length 10: number of nodes whose occupancy falls in each
          10%-of-capacity band *)
}

val empty : capacity:int -> t
val to_json : t -> Telemetry.Json.t
val pp : Format.formatter -> t -> unit

(** {1 Contention heatmap}

    Aggregation of flight-recorder contention events ({!Flight.event})
    into per-level × key-bucket hotspot tables: where in the tree leases
    died, upgrades lost, and splits landed.  Node identity is the (level,
    root-child bucket) pair the b-tree descent stamps onto its events;
    [(-1, -1)] marks hinted-leaf events (no descent ran). *)

val heat_classes : string array
(** Tagged event classes, in cell-count order:
    [validation_fail], [upgrade_fail], [split]. *)

type heat = {
  heat_cells : ((int * int) * int array) list;
      (** ((level, bucket), counts indexed like {!heat_classes}), sorted *)
  heat_restarts : int;  (** untagged: root restarts *)
  heat_fallbacks : int;  (** untagged: pessimistic fallbacks *)
  heat_lock_waits : int;  (** untagged: contended write acquisitions *)
  heat_lock_wait_ns : int;  (** summed measured wait of contended writes *)
}

val heat_of_events : Flight.event list -> heat

val heat_levels : heat -> (int * int array) list
(** Per-level rollup of the tagged cells, sorted by level. *)

val hottest_level : heat -> int option
(** Level with the most tagged contention events; [None] when quiet. *)

val heat_total : heat -> int
(** Total tagged events across all cells. *)

val level_label : int -> string
(** ["hint"] for negative levels, the decimal level otherwise. *)

val pp_heat : Format.formatter -> heat -> unit
val heat_to_json : heat -> Telemetry.Json.t
