(* Sequential B-tree: the concurrent tree's structure without any locks.

   Insertion descends from the root (or jumps to the hinted leaf), places the
   key in a leaf, and resolves overflow by splitting bottom-up through parent
   pointers — the same shape as the concurrent algorithm so that benchmark
   differences between the two isolate synchronisation cost, not algorithmic
   differences. *)

module Make (K : Key.ORDERED) = struct
  type key = K.t

  type node = {
    mutable parent : node option;
    mutable position : int;
    keys : key array;
    mutable nkeys : int;
    children : node array; (* [||] for leaves *)
    mutable leftmost : bool;
    mutable rightmost : bool;
  }

  type t = {
    mutable root : node; (* == sentinel while empty *)
    capacity : int;
    binary : bool;
  }

  let default_capacity = 24

  let sentinel =
    {
      parent = None;
      position = 0;
      keys = [||];
      nkeys = 0;
      children = [||];
      leftmost = false;
      rightmost = false;
    }

  let is_leaf n = Array.length n.children = 0

  let alloc_leaf t =
    {
      parent = None;
      position = 0;
      keys = Array.make t.capacity K.dummy;
      nkeys = 0;
      children = [||];
      leftmost = false;
      rightmost = false;
    }

  let alloc_inner t =
    {
      parent = None;
      position = 0;
      keys = Array.make t.capacity K.dummy;
      nkeys = 0;
      children = Array.make (t.capacity + 1) sentinel;
      leftmost = false;
      rightmost = false;
    }

  let create ?(capacity = default_capacity) ?(binary_search = false) () =
    if capacity < 3 then invalid_arg "Btree_seq.create: capacity must be >= 3";
    { root = sentinel; capacity; binary = binary_search }

  let search_ge_linear keys n key =
    let rec go i =
      if i >= n then (n, false)
      else
        let c = K.compare key (Array.unsafe_get keys i) in
        if c > 0 then go (i + 1) else (i, c = 0)
    in
    go 0

  let search_ge_binary keys n key =
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if K.compare (Array.unsafe_get keys mid) key < 0 then lo := mid + 1
      else hi := mid
    done;
    let i = !lo in
    (i, i < n && K.compare (Array.unsafe_get keys i) key = 0)

  let search t keys n key =
    if t.binary then search_ge_binary keys n key else search_ge_linear keys n key

  let search_gt keys n key =
    let rec go i =
      if i >= n then n
      else if K.compare (Array.unsafe_get keys i) key > 0 then i
      else go (i + 1)
    in
    go 0

  (* ---------------- hints ---------------- *)

  type hints = {
    mutable insert_leaf : node;
    mutable find_leaf : node;
    mutable lb_leaf : node;
    mutable ub_leaf : node;
    mutable h_insert_hits : int;
    mutable h_insert_misses : int;
    mutable h_find_hits : int;
    mutable h_find_misses : int;
    mutable h_lb_hits : int;
    mutable h_lb_misses : int;
    mutable h_ub_hits : int;
    mutable h_ub_misses : int;
  }

  let make_hints () =
    {
      insert_leaf = sentinel;
      find_leaf = sentinel;
      lb_leaf = sentinel;
      ub_leaf = sentinel;
      h_insert_hits = 0;
      h_insert_misses = 0;
      h_find_hits = 0;
      h_find_misses = 0;
      h_lb_hits = 0;
      h_lb_misses = 0;
      h_ub_hits = 0;
      h_ub_misses = 0;
    }

  type hint_stats = {
    insert_hits : int;
    insert_misses : int;
    find_hits : int;
    find_misses : int;
    lower_bound_hits : int;
    lower_bound_misses : int;
    upper_bound_hits : int;
    upper_bound_misses : int;
  }

  let hint_stats h =
    {
      insert_hits = h.h_insert_hits;
      insert_misses = h.h_insert_misses;
      find_hits = h.h_find_hits;
      find_misses = h.h_find_misses;
      lower_bound_hits = h.h_lb_hits;
      lower_bound_misses = h.h_lb_misses;
      upper_bound_hits = h.h_ub_hits;
      upper_bound_misses = h.h_ub_misses;
    }

  let reset_hint_stats h =
    h.h_insert_hits <- 0;
    h.h_insert_misses <- 0;
    h.h_find_hits <- 0;
    h.h_find_misses <- 0;
    h.h_lb_hits <- 0;
    h.h_lb_misses <- 0;
    h.h_ub_hits <- 0;
    h.h_ub_misses <- 0

  let covers n key =
    n.nkeys > 0
    && (n.leftmost || K.compare n.keys.(0) key <= 0)
    && (n.rightmost || K.compare key n.keys.(n.nkeys - 1) <= 0)

  (* ---------------- splitting ---------------- *)

  let split_node t node =
    let cap = t.capacity in
    let mid = cap / 2 in
    let median = node.keys.(mid) in
    let right = if is_leaf node then alloc_leaf t else alloc_inner t in
    let rcount = cap - mid - 1 in
    Array.blit node.keys (mid + 1) right.keys 0 rcount;
    right.nkeys <- rcount;
    if not (is_leaf node) then begin
      Array.blit node.children (mid + 1) right.children 0 (rcount + 1);
      for i = 0 to rcount do
        let c = right.children.(i) in
        c.parent <- Some right;
        c.position <- i
      done
    end;
    node.nkeys <- mid;
    right.rightmost <- node.rightmost;
    node.rightmost <- false;
    (median, right)

  let link_sibling p cur right median =
    let i = cur.position in
    let n = p.nkeys in
    Array.blit p.keys i p.keys (i + 1) (n - i);
    p.keys.(i) <- median;
    Array.blit p.children (i + 1) p.children (i + 2) (n - i);
    p.children.(i + 1) <- right;
    p.nkeys <- n + 1;
    right.parent <- Some p;
    for j = i + 1 to n + 1 do
      p.children.(j).position <- j
    done

  (* Split [node] and propagate overflow upward through parent pointers;
     returns the median that moved up, for the batch path's multi-split. *)
  let rec split_returning t node =
    let median, right = split_node t node in
    (match node.parent with
    | None ->
      let new_root = alloc_inner t in
      new_root.keys.(0) <- median;
      new_root.nkeys <- 1;
      new_root.children.(0) <- node;
      new_root.children.(1) <- right;
      node.parent <- Some new_root;
      node.position <- 0;
      right.parent <- Some new_root;
      right.position <- 1;
      t.root <- new_root
    | Some p ->
      if p.nkeys >= t.capacity then begin
        ignore (split_returning t p : key);
        let q = match node.parent with Some q -> q | None -> assert false in
        link_sibling q node right median
      end
      else link_sibling p node right median);
    median

  let split t node = ignore (split_returning t node : key)

  (* ---------------- insertion ---------------- *)

  let ensure_root t =
    if t.root == sentinel then begin
      let leaf = alloc_leaf t in
      leaf.leftmost <- true;
      leaf.rightmost <- true;
      t.root <- leaf
    end

  let insert_in_leaf leaf idx key =
    let n = leaf.nkeys in
    Array.blit leaf.keys idx leaf.keys (idx + 1) (n - idx);
    leaf.keys.(idx) <- key;
    leaf.nkeys <- n + 1

  (* Insert below [leaf], splitting first if full; returns the leaf that
     finally received the key (after splits the key may belong to the new
     sibling). *)
  let rec insert_at_leaf t leaf key =
    let idx, found = search t leaf.keys leaf.nkeys key in
    if found then (false, leaf)
    else if leaf.nkeys >= t.capacity then begin
      split t leaf;
      (* the median moved up; re-dispatch between the two halves *)
      if K.compare key leaf.keys.(leaf.nkeys - 1) < 0 then
        insert_at_leaf t leaf key
      else begin
        (* key >= everything left in [leaf]: walk one step through the parent *)
        let p = match leaf.parent with Some p -> p | None -> assert false in
        let i, found = search t p.keys p.nkeys key in
        if found then (false, leaf)
        else insert_at_leaf t p.children.(i) key
      end
    end
    else begin
      insert_in_leaf leaf idx key;
      (true, leaf)
    end

  let rec locate_leaf t node key =
    (* descend to the leaf responsible for [key]; raises [Exit] via caller
       conventions when the key is found in an inner node *)
    let idx, found = search t node.keys node.nkeys key in
    if found then None
    else if is_leaf node then Some node
    else locate_leaf t node.children.(idx) key

  let insert_slow t key =
    match locate_leaf t t.root key with
    | None -> (false, sentinel) (* duplicate found in an inner node *)
    | Some leaf -> insert_at_leaf t leaf key

  let insert ?hints t key =
    ensure_root t;
    match hints with
    | None -> fst (insert_slow t key)
    | Some h ->
      if h.insert_leaf != sentinel && covers h.insert_leaf key then begin
        h.h_insert_hits <- h.h_insert_hits + 1;
        let inserted, leaf = insert_at_leaf t h.insert_leaf key in
        if leaf != sentinel then h.insert_leaf <- leaf;
        inserted
      end
      else begin
        h.h_insert_misses <- h.h_insert_misses + 1;
        let inserted, leaf = insert_slow t key in
        if leaf != sentinel then h.insert_leaf <- leaf;
        inserted
      end

  (* ---------------- batch insertion (sorted runs) ---------------- *)

  (* Sequential mirror of [Btree.Make.insert_batch]: one descent per leaf
     carries the leaf's exclusive upper bound; the run is consumed up to
     that bound with bulk gap splices and in-place multi-splits.  No locks
     and no telemetry, like the rest of this module. *)

  type batch_target = Bt_dup | Bt_leaf of node * key option

  let rec batch_descend t key cur hi =
    let n = cur.nkeys in
    let idx, found = search t cur.keys n key in
    if found then Bt_dup
    else if is_leaf cur then Bt_leaf (cur, hi)
    else
      let hi = if idx < n then Some cur.keys.(idx) else hi in
      batch_descend t key cur.children.(idx) hi

  let batch_fill t run i0 stop_idx leaf limit0 =
    let fresh = ref 0 in
    let i = ref i0 in
    let limit = ref limit0 in
    let stop = ref false in
    while (not !stop) && !i < stop_idx do
      let key = run.(!i) in
      let cmp_limit =
        match !limit with None -> -1 | Some b -> K.compare key b
      in
      if cmp_limit = 0 then incr i (* equals a separator: duplicate *)
      else if cmp_limit > 0 then stop := true
      else begin
        let nk = leaf.nkeys in
        let idx, found = search t leaf.keys nk key in
        if found then incr i
        else if nk >= t.capacity then begin
          let median = split_returning t leaf in
          if K.compare key median < 0 then limit := Some median
          else stop := true (* the rest of the run re-descends *)
        end
        else begin
          let gap_hi = if idx < nk then Some leaf.keys.(idx) else !limit in
          let in_gap k =
            match gap_hi with None -> true | Some b -> K.compare k b < 0
          in
          let room = t.capacity - nk in
          let j = ref (!i + 1) in
          while
            !j - !i < room && !j < stop_idx
            && K.compare run.(!j - 1) run.(!j) < 0
            && in_gap run.(!j)
          do
            incr j
          done;
          let glen = !j - !i in
          Leaf_pack.splice ~keys:leaf.keys ~nkeys:nk ~at:idx ~src:run
            ~src_pos:!i ~len:glen;
          leaf.nkeys <- nk + glen;
          fresh := !fresh + glen;
          i := !j
        end
      end
    done;
    (!i, !fresh)

  let insert_batch ?hints ?(pos = 0) ?len t run =
    let n = Array.length run in
    let len = match len with Some l -> l | None -> n - pos in
    if pos < 0 || len < 0 || pos + len > n then
      invalid_arg "Btree_seq.insert_batch: invalid range";
    let stop_idx = pos + len in
    for k = pos + 1 to stop_idx - 1 do
      if K.compare run.(k - 1) run.(k) > 0 then
        invalid_arg "Btree_seq.insert_batch: run not sorted"
    done;
    if len = 0 then 0
    else begin
      ensure_root t;
      let fresh = ref 0 in
      let i = ref pos in
      while !i < stop_idx do
        let key = run.(!i) in
        let hinted =
          match hints with
          | Some h when h.insert_leaf != sentinel && covers h.insert_leaf key
            ->
            let leaf = h.insert_leaf in
            let nk = leaf.nkeys in
            let limit =
              if leaf.rightmost then None else Some leaf.keys.(nk - 1)
            in
            Some (leaf, limit)
          | _ -> None
        in
        let target =
          match hinted with
          | Some tgt ->
            (match hints with
            | Some h -> h.h_insert_hits <- h.h_insert_hits + 1
            | None -> ());
            Some tgt
          | None ->
            (match hints with
            | Some h -> h.h_insert_misses <- h.h_insert_misses + 1
            | None -> ());
            (match batch_descend t key t.root None with
            | Bt_dup ->
              incr i;
              None
            | Bt_leaf (leaf, hi) -> Some (leaf, hi))
        in
        match target with
        | None -> ()
        | Some (leaf, limit) ->
          let i', f = batch_fill t run !i stop_idx leaf limit in
          (match hints with Some h -> h.insert_leaf <- leaf | None -> ());
          i := i';
          fresh := !fresh + f
      done;
      !fresh
    end

  (* ---------------- queries ---------------- *)

  let mem ?hints t key =
    let slow () =
      let rec go node last_leaf =
        if node == sentinel then (false, last_leaf)
        else
          let idx, found = search t node.keys node.nkeys key in
          if found then (true, if is_leaf node then node else last_leaf)
          else if is_leaf node then (false, node)
          else go node.children.(idx) last_leaf
      in
      go t.root sentinel
    in
    match hints with
    | None -> fst (slow ())
    | Some h ->
      if h.find_leaf != sentinel && covers h.find_leaf key then begin
        h.h_find_hits <- h.h_find_hits + 1;
        snd (search t h.find_leaf.keys h.find_leaf.nkeys key)
      end
      else begin
        h.h_find_misses <- h.h_find_misses + 1;
        let r, l = slow () in
        if l != sentinel then h.find_leaf <- l;
        r
      end

  let is_empty t = t.root == sentinel || (t.root.nkeys = 0 && is_leaf t.root)

  let rec min_node n = if is_leaf n then n else min_node n.children.(0)
  let rec max_node n = if is_leaf n then n else max_node n.children.(n.nkeys)

  let min_elt t =
    if is_empty t then None
    else
      let n = min_node t.root in
      Some n.keys.(0)

  let max_elt t =
    if is_empty t then None
    else
      let n = max_node t.root in
      Some n.keys.(n.nkeys - 1)

  let bound ~strict t key =
    let rec go node best =
      if node == sentinel then best
      else
        let n = node.nkeys in
        let idx, found = search t node.keys n key in
        if found && not strict then Some key
        else
          let g = if strict then search_gt node.keys n key else idx in
          if is_leaf node then if g < n then Some node.keys.(g) else best
          else
            let best = if g < n then Some node.keys.(g) else best in
            go node.children.(g) best
    in
    go t.root None

  let bound_hinted ~strict ?hints t key =
    match hints with
    | None -> bound ~strict t key
    | Some h ->
      let leaf = if strict then h.ub_leaf else h.lb_leaf in
      let nk = if leaf == sentinel then 0 else leaf.nkeys in
      let usable =
        nk > 0
        && (leaf.leftmost || K.compare leaf.keys.(0) key <= 0)
        &&
        let c = K.compare key leaf.keys.(nk - 1) in
        if strict then c < 0 || leaf.rightmost else c <= 0 || leaf.rightmost
      in
      if usable then begin
        let idx =
          if strict then search_gt leaf.keys nk key
          else fst (search t leaf.keys nk key)
        in
        if strict then h.h_ub_hits <- h.h_ub_hits + 1
        else h.h_lb_hits <- h.h_lb_hits + 1;
        if idx < nk then Some leaf.keys.(idx) else None
      end
      else begin
        if strict then h.h_ub_misses <- h.h_ub_misses + 1
        else h.h_lb_misses <- h.h_lb_misses + 1;
        let rec last_leaf node =
          if node == sentinel then sentinel
          else if is_leaf node then node
          else
            let idx, _ = search t node.keys node.nkeys key in
            last_leaf node.children.(idx)
        in
        let l = last_leaf t.root in
        if l != sentinel then
          if strict then h.ub_leaf <- l else h.lb_leaf <- l;
        bound ~strict t key
      end

  let lower_bound ?hints t key = bound_hinted ~strict:false ?hints t key
  let upper_bound ?hints t key = bound_hinted ~strict:true ?hints t key

  let iter f t =
    let rec go node =
      if node != sentinel then
        if is_leaf node then
          for i = 0 to node.nkeys - 1 do
            f node.keys.(i)
          done
        else begin
          for i = 0 to node.nkeys - 1 do
            go node.children.(i);
            f node.keys.(i)
          done;
          go node.children.(node.nkeys)
        end
    in
    go t.root

  let fold f init t =
    let acc = ref init in
    iter (fun k -> acc := f !acc k) t;
    !acc

  exception Stop

  let iter_while f t =
    let g k = if not (f k) then raise Stop in
    try iter g t with Stop -> ()

  let iter_from f t key =
    let emit k = if not (f k) then raise Stop in
    let rec emit_all node =
      if node != sentinel then
        if is_leaf node then
          for i = 0 to node.nkeys - 1 do
            emit node.keys.(i)
          done
        else begin
          for i = 0 to node.nkeys - 1 do
            emit_all node.children.(i);
            emit node.keys.(i)
          done;
          emit_all node.children.(node.nkeys)
        end
    in
    let rec scan_ge node =
      if node != sentinel then begin
        let n = node.nkeys in
        let idx, _found = search t node.keys n key in
        if is_leaf node then
          for i = idx to n - 1 do
            emit node.keys.(i)
          done
        else begin
          scan_ge node.children.(idx);
          for i = idx to n - 1 do
            emit node.keys.(i);
            emit_all node.children.(i + 1)
          done
        end
      end
    in
    try scan_ge t.root with Stop -> ()

  let cardinal t = fold (fun n _ -> n + 1) 0 t
  let to_list t = List.rev (fold (fun acc k -> k :: acc) [] t)

  let to_sorted_array t =
    let n = cardinal t in
    if n = 0 then [||]
    else begin
      let first = match min_elt t with Some k -> k | None -> assert false in
      let a = Array.make n first in
      let i = ref 0 in
      iter
        (fun k ->
          a.(!i) <- k;
          incr i)
        t;
      a
    end

  let insert_all ?hints dst src =
    let h = match hints with Some h -> h | None -> make_hints () in
    iter (fun k -> ignore (insert ~hints:h dst k : bool)) src

  let of_sorted_array ?capacity arr =
    let t = create ?capacity () in
    let len = Array.length arr in
    for i = 1 to len - 1 do
      if K.compare arr.(i - 1) arr.(i) >= 0 then
        invalid_arg "Btree_seq.of_sorted_array: input not strictly increasing"
    done;
    if len > 0 then begin
      let target = Leaf_pack.target_fill ~capacity:t.capacity in
      let rec max_elems h =
        if h = 0 then target else target + ((target + 1) * max_elems (h - 1))
      in
      let rec height_for n h = if max_elems h >= n then h else height_for n (h + 1) in
      let rec build lo hi h =
        let n = hi - lo in
        if h = 0 then begin
          let leaf = alloc_leaf t in
          Leaf_pack.splice ~keys:leaf.keys ~nkeys:0 ~at:0 ~src:arr
            ~src_pos:lo ~len:n;
          leaf.nkeys <- n;
          leaf
        end
        else begin
          let sub = max_elems (h - 1) in
          let k = max 2 (((n - 1) / (sub + 1)) + 1) in
          let k = min k (t.capacity + 1) in
          let node = alloc_inner t in
          let elems = n - (k - 1) in
          let base = elems / k and extra = elems mod k in
          let pos = ref lo in
          for i = 0 to k - 1 do
            let sz = base + if i < extra then 1 else 0 in
            let child = build !pos (!pos + sz) (h - 1) in
            child.parent <- Some node;
            child.position <- i;
            node.children.(i) <- child;
            pos := !pos + sz;
            if i < k - 1 then begin
              node.keys.(i) <- arr.(!pos);
              incr pos
            end
          done;
          node.nkeys <- k - 1;
          node
        end
      in
      let h = height_for len 0 in
      t.root <- build 0 len h;
      (min_node t.root).leftmost <- true;
      (max_node t.root).rightmost <- true
    end;
    t

  (* ---------------- introspection ---------------- *)

  type stats = {
    elements : int;
    nodes : int;
    leaves : int;
    height : int;
    fill : float;
  }

  let stats t =
    if is_empty t then { elements = 0; nodes = 0; leaves = 0; height = 0; fill = 0.0 }
    else begin
      let elements = ref 0 and nodes = ref 0 and leaves = ref 0 in
      let rec go node depth maxd =
        incr nodes;
        elements := !elements + node.nkeys;
        if is_leaf node then begin
          incr leaves;
          max maxd depth
        end
        else begin
          let m = ref maxd in
          for i = 0 to node.nkeys do
            m := max !m (go node.children.(i) (depth + 1) !m)
          done;
          !m
        end
      in
      let height = go t.root 1 1 in
      {
        elements = !elements;
        nodes = !nodes;
        leaves = !leaves;
        height;
        fill = float_of_int !elements /. float_of_int (!nodes * t.capacity);
      }
    end

  let check_invariants t =
    let fail fmt = Printf.ksprintf failwith fmt in
    if not (is_empty t) then begin
      let leaf_depth = ref (-1) in
      let rec go node depth lo hi =
        let n = node.nkeys in
        if n < 1 then fail "node with %d keys" n;
        if n > t.capacity then fail "node overflow: %d > %d" n t.capacity;
        for i = 0 to n - 2 do
          if K.compare node.keys.(i) node.keys.(i + 1) >= 0 then
            fail "keys out of order at index %d" i
        done;
        (match lo with
        | Some l ->
          if K.compare l node.keys.(0) >= 0 then fail "lower bound violated"
        | None -> ());
        (match hi with
        | Some h ->
          if K.compare node.keys.(n - 1) h >= 0 then fail "upper bound violated"
        | None -> ());
        if is_leaf node then begin
          if !leaf_depth = -1 then leaf_depth := depth
          else if !leaf_depth <> depth then
            fail "leaves at different depths (%d vs %d)" !leaf_depth depth;
          let is_first = lo = None and is_last = hi = None in
          if node.leftmost <> is_first then
            fail "leftmost flag %b on leaf with is_first=%b" node.leftmost is_first;
          if node.rightmost <> is_last then
            fail "rightmost flag %b on leaf with is_last=%b" node.rightmost is_last
        end
        else
          for i = 0 to n do
            let c = node.children.(i) in
            if c == sentinel then fail "sentinel child in occupied slot %d" i;
            (match c.parent with
            | Some p when p == node -> ()
            | _ -> fail "broken parent pointer at child %d" i);
            if c.position <> i then
              fail "broken position: child %d records %d" i c.position;
            let lo = if i = 0 then lo else Some node.keys.(i - 1) in
            let hi = if i = n then hi else Some node.keys.(i) in
            go c (depth + 1) lo hi
          done
      in
      (match t.root.parent with
      | None -> ()
      | Some _ -> fail "root has a parent");
      go t.root 0 None None
    end

  (* ---------------- sessions ---------------- *)

  type session = { s_tree : t; s_hints : hints }

  let session t = { s_tree = t; s_hints = make_hints () }
  let s_tree s = s.s_tree
  let s_hints s = s.s_hints
  let s_insert s key = insert ~hints:s.s_hints s.s_tree key

  let s_insert_batch ?pos ?len s run =
    insert_batch ~hints:s.s_hints ?pos ?len s.s_tree run

  let s_mem s key = mem ~hints:s.s_hints s.s_tree key
  let s_lower_bound s key = lower_bound ~hints:s.s_hints s.s_tree key
  let s_upper_bound s key = upper_bound ~hints:s.s_hints s.s_tree key
  let s_iter_from f s key = iter_from f s.s_tree key

  (* ---------------- storage-backend witness ---------------- *)

  module As_storage : Storage_intf.S with type elt = key and type t = t =
  struct
    type elt = K.t
    type nonrec t = t

    let create () = create ()
    let insert t k = insert t k
    let insert_batch t run = insert_batch t run
    let mem t k = mem t k
    let lower_bound t k = lower_bound t k
    let upper_bound t k = upper_bound t k
    let iter = iter
    let iter_from f t k = iter_from f t k
    let cardinal = cardinal
    let is_empty = is_empty
    let ordered = true
    let shape _ = None
  end
end
