(* Concurrent B-tree with optimistic read-write locking and operation hints.

   Structure: a classic B-tree — elements live in inner nodes as well as
   leaves, an inner node with [k] elements has [k + 1] children.  Nodes are
   never deleted, moved or converted between leaf and inner, which is the
   property that makes optimistic traversal and hint pointers safe.

   Synchronisation (Algorithm 1 / 2 of the paper):
   - every node carries an optimistic read-write lock; the tree carries an
     extra [root_lock] protecting the root pointer;
   - insertion descends taking read leases only, validating a node's lease
     before acting on anything read from it (in particular before descending
     through a child pointer);
   - at the target leaf the lease is upgraded to an exclusive write permit by
     compare-and-swap; failure of any validation or upgrade restarts the
     insertion from the root;
   - splits write-lock the ancestor path bottom-up (re-checking the parent
     pointer after each acquisition, since a concurrent split of the parent
     may have moved the child), perform the split, and unlock top-down.

   Memory-model note.  Payload fields ([keys], [nkeys], [children], [parent],
   [position]) are plain mutable fields read racily during optimistic
   descent.  OCaml's memory model defines such races (a read yields some
   value previously written, never a wild pointer), so the only extra care
   needed is bounds-clamping of racily read counters before they are used as
   indices; semantic inconsistency is caught by lease validation, whose
   [Atomic] accesses provide the acquire/release edges of the Boehm seqlock
   recipe. *)

module Make (K : Key.ORDERED) = struct
  type key = K.t

  type node = {
    lock : Olock.t;
    mutable parent : node option; (* covered by the parent's lock *)
    mutable position : int;       (* index in parent.children; ditto *)
    keys : key array;             (* length = capacity *)
    mutable nkeys : int;
    children : node array;        (* length = capacity + 1, or [||] for leaves *)
    (* Whether this leaf is the first/last leaf of the whole tree.  Lets the
       hint coverage check extend the edge leaves' ranges to infinity ("weak
       coverage"), which is what makes hints effective on the append-heavy
       ordered workloads Datalog produces.  A leaf's edge status only changes
       when that leaf itself splits, so the flags are covered by the leaf's
       own lock — unlike the parent-walk Soufflé uses in its sequential tree,
       this is sound under concurrent optimistic readers. *)
    mutable leftmost : bool;
    mutable rightmost : bool;
  }

  type t = {
    root_lock : Olock.t;
    mutable root : node; (* == sentinel while the tree is empty *)
    capacity : int;
    binary : bool;
  }

  let default_capacity = 24

  (* Placeholder stored in unused child slots and in [t.root] of an empty
     tree.  It is a 0-key leaf, so accidentally descending into it during a
     racy read is harmless: the search finds nothing and validation fails. *)
  let sentinel =
    {
      lock = Olock.create ();
      parent = None;
      position = 0;
      keys = [||];
      nkeys = 0;
      children = [||];
      leftmost = false;
      rightmost = false;
    }

  let is_leaf n = Array.length n.children = 0

  let alloc_leaf t =
    {
      lock = Olock.create ();
      parent = None;
      position = 0;
      keys = Array.make t.capacity K.dummy;
      nkeys = 0;
      children = [||];
      leftmost = false;
      rightmost = false;
    }

  let alloc_inner t =
    {
      lock = Olock.create ();
      parent = None;
      position = 0;
      keys = Array.make t.capacity K.dummy;
      nkeys = 0;
      children = Array.make (t.capacity + 1) sentinel;
      leftmost = false;
      rightmost = false;
    }

  let create ?(capacity = default_capacity) ?(binary_search = false) () =
    if capacity < 3 then invalid_arg "Btree.create: capacity must be >= 3";
    { root_lock = Olock.create (); root = sentinel; capacity; binary = binary_search }

  (* Clamp a racily read key count into the valid index range of [n]. *)
  let clamped_nkeys n =
    let k = n.nkeys in
    if k < 0 then 0
    else
      let cap = Array.length n.keys in
      if k > cap then cap else k

  (* [search_ge keys n key] is [(i, found)] where [i] is the smallest index
     in [0, n) with [keys.(i) >= key] (or [n] if none) and [found] tells
     whether [keys.(i) = key].  [i] doubles as the descent child index. *)
  let search_ge_linear keys n key =
    let rec go i =
      if i >= n then (n, false)
      else
        let c = K.compare key (Array.unsafe_get keys i) in
        if c > 0 then go (i + 1) else (i, c = 0)
    in
    go 0

  let search_ge_binary keys n key =
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if K.compare (Array.unsafe_get keys mid) key < 0 then lo := mid + 1
      else hi := mid
    done;
    let i = !lo in
    (i, i < n && K.compare (Array.unsafe_get keys i) key = 0)

  let search t keys n key =
    if t.binary then search_ge_binary keys n key else search_ge_linear keys n key

  (* Smallest index with [keys.(i) > key], or [n]. *)
  let search_gt keys n key =
    let rec go i =
      if i >= n then n
      else if K.compare (Array.unsafe_get keys i) key > 0 then i
      else go (i + 1)
    in
    go 0

  (* ------------------------------------------------------------------ *)
  (* Hints (section 3.2)                                                *)
  (* ------------------------------------------------------------------ *)

  type hints = {
    mutable insert_leaf : node;
    mutable find_leaf : node;
    mutable lb_leaf : node;
    mutable ub_leaf : node;
    mutable h_insert_hits : int;
    mutable h_insert_misses : int;
    mutable h_find_hits : int;
    mutable h_find_misses : int;
    mutable h_lb_hits : int;
    mutable h_lb_misses : int;
    mutable h_ub_hits : int;
    mutable h_ub_misses : int;
    mutable h_run : int; (* length of the current uninterrupted hit run *)
    h_runs : int array; (* log2-bucketed run lengths, closed at each miss *)
  }

  let run_buckets = 16

  let make_hints () =
    {
      insert_leaf = sentinel;
      find_leaf = sentinel;
      lb_leaf = sentinel;
      ub_leaf = sentinel;
      h_insert_hits = 0;
      h_insert_misses = 0;
      h_find_hits = 0;
      h_find_misses = 0;
      h_lb_hits = 0;
      h_lb_misses = 0;
      h_ub_hits = 0;
      h_ub_misses = 0;
      h_run = 0;
      h_runs = Array.make run_buckets 0;
    }

  (* Hint locality: every miss closes the current run of consecutive hits
     and records its length (bucket b holds runs of 2^(b-1)..2^b-1 hits;
     bucket 0 is the 0-hit run — a miss straight after a miss).  Long runs
     are the sorted access pattern the paper's hints exploit. *)
  let run_bucket r =
    let rec bits n acc = if n = 0 then acc else bits (n lsr 1) (acc + 1) in
    let b = bits r 0 in
    if b >= run_buckets then run_buckets - 1 else b

  let run_hit h = h.h_run <- h.h_run + 1

  let run_break h =
    let r = h.h_run in
    h.h_run <- 0;
    let b = run_bucket r in
    h.h_runs.(b) <- h.h_runs.(b) + 1

  let hint_run_hist h =
    (* copy, with the still-open run counted as if it closed now *)
    let a = Array.copy h.h_runs in
    if h.h_run > 0 then begin
      let b = run_bucket h.h_run in
      a.(b) <- a.(b) + 1
    end;
    a

  type hint_stats = {
    insert_hits : int;
    insert_misses : int;
    find_hits : int;
    find_misses : int;
    lower_bound_hits : int;
    lower_bound_misses : int;
    upper_bound_hits : int;
    upper_bound_misses : int;
  }

  let hint_stats h =
    {
      insert_hits = h.h_insert_hits;
      insert_misses = h.h_insert_misses;
      find_hits = h.h_find_hits;
      find_misses = h.h_find_misses;
      lower_bound_hits = h.h_lb_hits;
      lower_bound_misses = h.h_lb_misses;
      upper_bound_hits = h.h_ub_hits;
      upper_bound_misses = h.h_ub_misses;
    }

  let reset_hint_stats h =
    h.h_insert_hits <- 0;
    h.h_insert_misses <- 0;
    h.h_find_hits <- 0;
    h.h_find_misses <- 0;
    h.h_lb_hits <- 0;
    h.h_lb_misses <- 0;
    h.h_ub_hits <- 0;
    h.h_ub_misses <- 0;
    h.h_run <- 0;
    Array.fill h.h_runs 0 run_buckets 0

  let merge_hint_stats l =
    List.fold_left
      (fun a b ->
        {
          insert_hits = a.insert_hits + b.insert_hits;
          insert_misses = a.insert_misses + b.insert_misses;
          find_hits = a.find_hits + b.find_hits;
          find_misses = a.find_misses + b.find_misses;
          lower_bound_hits = a.lower_bound_hits + b.lower_bound_hits;
          lower_bound_misses = a.lower_bound_misses + b.lower_bound_misses;
          upper_bound_hits = a.upper_bound_hits + b.upper_bound_hits;
          upper_bound_misses = a.upper_bound_misses + b.upper_bound_misses;
        })
      {
        insert_hits = 0;
        insert_misses = 0;
        find_hits = 0;
        find_misses = 0;
        lower_bound_hits = 0;
        lower_bound_misses = 0;
        upper_bound_hits = 0;
        upper_bound_misses = 0;
      }
      l

  let hit_rate s =
    let hits =
      s.insert_hits + s.find_hits + s.lower_bound_hits + s.upper_bound_hits
    in
    let total =
      hits + s.insert_misses + s.find_misses + s.lower_bound_misses
      + s.upper_bound_misses
    in
    if total = 0 then 0.0 else float_of_int hits /. float_of_int total

  (* A leaf "covers" [key] when [key] falls within its responsibility range;
     in a classic B-tree no inner separator can fall strictly inside a leaf's
     range, so a covering leaf is authoritative for [key].  The first/last
     leaf of the tree covers everything below/above its keys ("weak
     coverage"), which makes hints hit on append-style ordered streams. *)
  let covers n nk key =
    nk > 0
    && (n.leftmost || K.compare n.keys.(0) key <= 0)
    && (n.rightmost || K.compare key n.keys.(nk - 1) <= 0)

  (* ------------------------------------------------------------------ *)
  (* Splitting (Algorithm 2)                                            *)
  (* ------------------------------------------------------------------ *)

  type locked_ancestor = Anc_node of node | Anc_root

  (* Write-lock [cur]'s parent, re-reading the parent pointer after each
     acquisition: a concurrent split of the old parent may have moved [cur]
     under a new one.  [cur] itself must already be write-locked by the
     caller, which rules out the None <-> Some transitions. *)
  let lock_parent t cur =
    match cur.parent with
    | None ->
      Olock.start_write t.root_lock;
      Anc_root
    | Some p ->
      let rec acquire p =
        Olock.start_write p.lock;
        match cur.parent with
        | Some p' when p' == p -> Anc_node p
        | Some p' ->
          Olock.abort_write p.lock;
          acquire p'
        | None ->
          (* unreachable: a node's parent is cleared only never — roots are
             the only parentless nodes and [cur] is write-locked *)
          Olock.abort_write p.lock;
          assert false
      in
      acquire p

  (* Lock ancestors bottom-up until a non-full node or the root lock;
     returns them bottom-up (immediate parent first). *)
  let lock_path t node =
    let rec go cur acc =
      match lock_parent t cur with
      | Anc_root -> List.rev (Anc_root :: acc)
      | Anc_node p ->
        if p.nkeys < t.capacity then List.rev (Anc_node p :: acc)
        else go p (Anc_node p :: acc)
    in
    go node []

  let unlock_path t path =
    List.iter
      (fun a ->
        match a with
        | Anc_node p -> Olock.end_write p.lock
        | Anc_root -> Olock.end_write t.root_lock)
      (List.rev path)

  (* Split a full, write-locked (or not yet published) node around its
     median; returns [(median, right_sibling)].  Children moved to the right
     sibling get their parent/position fields updated — both are covered by
     the old parent's lock, which we hold. *)
  let split_node t node =
    Telemetry.bump
      (if is_leaf node then Telemetry.Counter.Btree_leaf_splits
       else Telemetry.Counter.Btree_inner_splits);
    let cap = t.capacity in
    let mid = cap / 2 in
    let median = node.keys.(mid) in
    let right = if is_leaf node then alloc_leaf t else alloc_inner t in
    let rcount = cap - mid - 1 in
    Array.blit node.keys (mid + 1) right.keys 0 rcount;
    right.nkeys <- rcount;
    if not (is_leaf node) then begin
      Array.blit node.children (mid + 1) right.children 0 (rcount + 1);
      for i = 0 to rcount do
        let c = right.children.(i) in
        c.parent <- Some right;
        c.position <- i
      done
    end;
    node.nkeys <- mid;
    right.rightmost <- node.rightmost;
    node.rightmost <- false;
    (median, right)

  (* Insert separator [median] and its right subtree [right] just after the
     child [cur] of the write-locked, non-full node [p]. *)
  let link_sibling p cur right median =
    let i = cur.position in
    let n = p.nkeys in
    Array.blit p.keys i p.keys (i + 1) (n - i);
    p.keys.(i) <- median;
    Array.blit p.children (i + 1) p.children (i + 2) (n - i);
    p.children.(i + 1) <- right;
    p.nkeys <- n + 1;
    right.parent <- Some p;
    for j = i + 1 to n + 1 do
      p.children.(j).position <- j
    done

  (* Propagate a split upward along the locked [path]: every path node except
     the last is full and is split in turn; the final node (or a fresh root)
     absorbs the last separator. *)
  let rec insert_into_parent t path cur right median =
    match path with
    | [] -> assert false
    | Anc_root :: _ ->
      (* [cur] is the root: grow the tree by one level. *)
      Telemetry.bump Telemetry.Counter.Btree_root_splits;
      let new_root = alloc_inner t in
      new_root.keys.(0) <- median;
      new_root.nkeys <- 1;
      new_root.children.(0) <- cur;
      new_root.children.(1) <- right;
      cur.parent <- Some new_root;
      cur.position <- 0;
      right.parent <- Some new_root;
      right.position <- 1;
      t.root <- new_root
    | Anc_node p :: rest ->
      if p.nkeys >= t.capacity then begin
        let p_median, p_right = split_node t p in
        insert_into_parent t rest p p_right p_median;
        (* [split_node] redirected moved children, so [cur.parent] now names
           whichever half [cur] landed in. *)
        let q = match cur.parent with Some q -> q | None -> assert false in
        link_sibling q cur right median
      end
      else link_sibling p cur right median

  (* Split the full node [node] (write-locked by the caller, who also
     releases that lock afterwards, cf. Algorithm 1 line 41).  Returns the
     separator that moved up — the batch path uses it as the left half's new
     exclusive upper bound to keep filling without re-descending. *)
  let split_returning t node =
    let path = lock_path t node in
    (* chaos: widen the window during which the ancestor path is
       write-locked, forcing concurrent descents onto their restart (and
       eventually fallback) paths *)
    Chaos.yield_if Chaos.Point.Btree_split_delay;
    let median, right = split_node t node in
    insert_into_parent t path node right median;
    unlock_path t path;
    ignore (right : node);
    median

  let split t node = ignore (split_returning t node : key)

  (* ------------------------------------------------------------------ *)
  (* Insertion (Algorithm 1)                                            *)
  (* ------------------------------------------------------------------ *)

  (* Safely create the root node of an empty tree (Algorithm 1, lines 2-9). *)
  let ensure_root t =
    while t.root == sentinel do
      if Olock.try_start_write t.root_lock then begin
        if t.root == sentinel then begin
          let leaf = alloc_leaf t in
          leaf.leftmost <- true;
          leaf.rightmost <- true;
          t.root <- leaf
        end;
        Olock.end_write t.root_lock
      end
    done

  (* Insert [key] at index [idx] of the write-locked, non-full leaf. *)
  let insert_in_leaf leaf idx key =
    let n = leaf.nkeys in
    Array.blit leaf.keys idx leaf.keys (idx + 1) (n - idx);
    leaf.keys.(idx) <- key;
    leaf.nkeys <- n + 1

  (* Optimistic restarts allowed per insertion before the pessimistic
     fallback engages.  0 = always pessimistic (tests, stress harness). *)
  let restart_budget_v = ref 16

  let set_restart_budget n =
    if n < 0 then invalid_arg "Btree.set_restart_budget: budget must be >= 0";
    restart_budget_v := n

  let restart_budget () = !restart_budget_v

  (* Pessimistic fallback descent: every level is visited under that node's
     {e write} permit, so leases cannot go stale and validation cannot fail
     — the descent terminates in O(height) node visits unless a concurrent
     writer completes on the very node being stepped to.  The hand-over-hand
     step never blocks while holding a lock (the discipline that keeps the
     bottom-up splitters deadlock-free): holding [cur]'s write permit we
     read the child's raw version [v], release [cur], and re-acquire the
     child by CAS on [v].  The CAS certifies the child is unchanged since it
     was observed under [cur]'s permit, exactly like an optimistic upgrade;
     a failure means a writer {e completed} on the child in between, i.e.
     the system made progress, and we restart from the root.  Livelock is
     therefore impossible by construction: every repeated restart is paid
     for by a finished insertion elsewhere.

     Note the fallback never calls [Olock.valid], so forced validation
     failures from the chaos layer cannot unbound it. *)
  let rec insert_pessimistic t key =
    (* Acquire the root node's write permit while holding nothing, then
       confirm it still is the root: replacing the root requires write-
       locking the old root (via [lock_path]), which our permit excludes. *)
    let rec acquire_root () =
      let cur = t.root in
      Olock.start_write cur.lock;
      if t.root == cur then cur
      else begin
        Olock.abort_write cur.lock;
        acquire_root ()
      end
    in
    (* invariant: [cur] write-locked, no other lock held.  [level]/[bucket]
       are flight-recorder node identity: depth from the root and the
       root-child index the descent took (-1 above the first branch). *)
    let rec go cur level bucket =
      let n = cur.nkeys in
      let idx, found = search t cur.keys n key in
      if found then begin
        Olock.abort_write cur.lock;
        (false, sentinel)
      end
      else if not (is_leaf cur) then begin
        let next = cur.children.(idx) in
        let bucket' = if level = 0 then idx else bucket in
        let v = Olock.version next.lock in
        Olock.abort_write cur.lock;
        if v land 1 = 0 && Olock.try_upgrade_to_write next.lock v then
          go next (level + 1) bucket'
        else begin
          Flight.record Flight.Ev.Upgrade_fail (level + 1) bucket' 0;
          insert_pessimistic t key
        end
      end
      else if cur.nkeys >= t.capacity then begin
        (* bottom-up split: only the leaf permit is held, same discipline as
           the optimistic path *)
        Flight.record Flight.Ev.Split level bucket 0;
        split t cur;
        Olock.end_write cur.lock;
        insert_pessimistic t key
      end
      else begin
        insert_in_leaf cur idx key;
        Olock.end_write cur.lock;
        (true, cur)
      end
    in
    go (acquire_root ()) 0 (-1)

  let fallback t key =
    Telemetry.bump Telemetry.Counter.Btree_pessimistic_fallbacks;
    Flight.record Flight.Ev.Fallback !restart_budget_v 0 0;
    let t0 = Telemetry.hist_time () in
    let r = insert_pessimistic t key in
    Telemetry.hist_end Telemetry.Hist.Btree_fallback_ns t0;
    r

  (* Full insertion: optimistic descent from the root.  Returns whether the
     key was new, plus the leaf finally touched (to refresh hints); the leaf
     is [sentinel] when the duplicate was discovered in an inner node.
     [attempts] counts optimistic restarts; past the budget the descent
     degrades to {!insert_pessimistic}. *)
  let rec insert_slow t key attempts =
    if attempts >= !restart_budget_v then fallback t key
    else begin
      (* Obtain the root and a lease on it, validating the root pointer
         (Algorithm 1, lines 13-17). *)
      let root_lease = Olock.start_read t.root_lock in
      let cur = t.root in
      let cur_lease = Olock.start_read cur.lock in
      if Olock.end_read t.root_lock root_lease then
        descend t key cur cur_lease 0 (-1) attempts
      else restart t key attempts
    end

  and restart t key attempts =
    (* optimistic descent observed a concurrent write: back to the root *)
    Telemetry.bump Telemetry.Counter.Btree_restarts;
    Flight.record Flight.Ev.Restart (attempts + 1) 0 0;
    insert_slow t key (attempts + 1)

  (* [level] is the depth of [cur] (0 = root); [bucket] is the root-child
     index this descent took — a genuine key-range bucket, since the root
     separators partition the key space — or -1 above the first branch.
     Both tag the flight-recorder contention events, so post-mortem
     heatmaps can name the level and key region where leases died. *)
  and descend t key cur cur_lease level bucket attempts =
    (* chaos: stretch the read phase so concurrent writers invalidate the
       lease — drives the restart counter and, past the budget, the
       pessimistic fallback *)
    Chaos.yield_if Chaos.Point.Btree_descent_yield;
    let n = clamped_nkeys cur in
    let idx, found = search t cur.keys n key in
    if found then begin
      (* value already present — if the observation was consistent *)
      if Olock.valid cur.lock cur_lease then (false, sentinel)
      else begin
        Flight.record Flight.Ev.Validation_fail level bucket 0;
        restart t key attempts
      end
    end
    else if not (is_leaf cur) then begin
      let next = cur.children.(idx) in
      let bucket' = if level = 0 then idx else bucket in
      if not (Olock.valid cur.lock cur_lease) then begin
        Flight.record Flight.Ev.Validation_fail level bucket 0;
        restart t key attempts
      end
      else begin
        let next_lease = Olock.start_read next.lock in
        if not (Olock.valid cur.lock cur_lease) then begin
          Flight.record Flight.Ev.Validation_fail level bucket 0;
          restart t key attempts
        end
        else descend t key next next_lease (level + 1) bucket' attempts
      end
    end
    else if not (Olock.try_upgrade_to_write cur.lock cur_lease) then begin
      Flight.record Flight.Ev.Upgrade_fail level bucket 0;
      restart t key attempts
    end
    else if cur.nkeys >= t.capacity then begin
      Flight.record Flight.Ev.Split level bucket 0;
      split t cur;
      Olock.end_write cur.lock;
      (* a split is progress, not a failed validation: re-descend on the
         same budget *)
      insert_slow t key attempts
    end
    else begin
      (* The upgrade CAS certifies the node is unchanged since the lease, so
         [idx]/[found] computed above are still accurate. *)
      insert_in_leaf cur idx key;
      Olock.end_write cur.lock;
      (true, cur)
    end

  let insert_slow t key = insert_slow t key 0

  (* One attempt to insert directly at the hinted leaf. *)
  type hint_attempt = Done of bool | Fallback

  (* Hinted attempts have no descent, so their flight events carry the
     -1/-1 "hinted leaf" node identity. *)
  let try_insert_at t leaf key =
    let lease = Olock.start_read leaf.lock in
    let n = clamped_nkeys leaf in
    if not (covers leaf n key && Olock.valid leaf.lock lease) then Fallback
    else begin
      let idx, found = search t leaf.keys n key in
      if found then
        if Olock.valid leaf.lock lease then Done false
        else begin
          Flight.record Flight.Ev.Validation_fail (-1) (-1) 0;
          Fallback
        end
      else if not (Olock.try_upgrade_to_write leaf.lock lease) then begin
        Flight.record Flight.Ev.Upgrade_fail (-1) (-1) 0;
        Fallback
      end
      else if leaf.nkeys >= t.capacity then begin
        (* Bottom-up split locking starts from the hinted leaf — the very
           compatibility property of section 3.2. *)
        Flight.record Flight.Ev.Split (-1) (-1) 0;
        split t leaf;
        Olock.end_write leaf.lock;
        Fallback
      end
      else begin
        insert_in_leaf leaf idx key;
        Olock.end_write leaf.lock;
        Done true
      end
    end

  let insert_op ?hints t key =
    ensure_root t;
    match hints with
    | None -> fst (insert_slow t key)
    | Some h ->
      let attempt =
        if h.insert_leaf == sentinel then Fallback
        else try_insert_at t h.insert_leaf key
      in
      (match attempt with
      | Done b ->
        h.h_insert_hits <- h.h_insert_hits + 1;
        run_hit h;
        Telemetry.bump Telemetry.Counter.Btree_hint_hits;
        b
      | Fallback ->
        h.h_insert_misses <- h.h_insert_misses + 1;
        run_break h;
        Telemetry.bump Telemetry.Counter.Btree_hint_misses;
        let inserted, leaf = insert_slow t key in
        if leaf != sentinel then h.insert_leaf <- leaf;
        inserted)

  let insert ?hints t key =
    let t0 = Telemetry.hist_start Telemetry.Hist.Btree_insert_ns in
    let r = insert_op ?hints t key in
    Telemetry.hist_end Telemetry.Hist.Btree_insert_ns t0;
    r

  (* ------------------------------------------------------------------ *)
  (* Batch insertion (sorted runs)                                      *)
  (* ------------------------------------------------------------------ *)

  (* The batch path extends the hint mechanism from "retry the last leaf"
     to "fill the current leaf up to its upper bound": one descent acquires
     the target leaf's write permit together with the exclusive upper bound
     of the leaf's responsibility range (the last separator the descent
     passed on the way down), then consumes run keys until the first key at
     or past that bound.  The bound snapshot stays authoritative while the
     leaf's write permit is held, because a node's range only shrinks when
     that node itself splits — which our permit excludes.  Runs of keys
     falling into the same inter-key gap are spliced with two blits
     ([Leaf_pack.splice]); a full leaf is split in place and filling
     continues in the left half while the run allows it (multi-split). *)

  type batch_target = Bt_dup | Bt_leaf of node * key option

  (* Pessimistic twin of [batch_locate]: same hand-over-hand CAS step as
     {!insert_pessimistic} (see the progress argument there), but carrying
     the exclusive upper bound down and returning the leaf still
     write-locked, as the batch filler expects.  The bound snapshot is exact
     here — every separator was read under its node's write permit. *)
  let rec batch_pessimistic t key =
    let rec acquire_root () =
      let cur = t.root in
      Olock.start_write cur.lock;
      if t.root == cur then cur
      else begin
        Olock.abort_write cur.lock;
        acquire_root ()
      end
    in
    let rec go cur hi level bucket =
      let n = cur.nkeys in
      let idx, found = search t cur.keys n key in
      if not (is_leaf cur) then
        if found then begin
          Olock.abort_write cur.lock;
          Bt_dup
        end
        else begin
          let next = cur.children.(idx) in
          let hi = if idx < n then Some cur.keys.(idx) else hi in
          let bucket' = if level = 0 then idx else bucket in
          let v = Olock.version next.lock in
          Olock.abort_write cur.lock;
          if v land 1 = 0 && Olock.try_upgrade_to_write next.lock v then
            go next hi (level + 1) bucket'
          else begin
            Flight.record Flight.Ev.Upgrade_fail (level + 1) bucket' 0;
            batch_pessimistic t key
          end
        end
      else Bt_leaf (cur, hi)
    in
    go (acquire_root ()) None 0 (-1)

  let batch_fallback t key =
    Telemetry.bump Telemetry.Counter.Btree_pessimistic_fallbacks;
    Flight.record Flight.Ev.Fallback !restart_budget_v 0 0;
    let t0 = Telemetry.hist_time () in
    let r = batch_pessimistic t key in
    Telemetry.hist_end Telemetry.Hist.Btree_fallback_ns t0;
    r

  (* Write-lock the leaf responsible for [key], carrying its exclusive
     upper bound down the descent ([None] on the rightmost spine).  [Bt_dup]
     means [key] was found in an inner node.  Same retry budget as the
     single-key descent. *)
  let rec batch_locate t key attempts =
    if attempts >= !restart_budget_v then batch_fallback t key
    else begin
      let root_lease = Olock.start_read t.root_lock in
      let cur = t.root in
      let cur_lease = Olock.start_read cur.lock in
      if Olock.end_read t.root_lock root_lease then
        batch_descend t key cur cur_lease None 0 (-1) attempts
      else batch_restart t key attempts
    end

  and batch_restart t key attempts =
    Telemetry.bump Telemetry.Counter.Btree_restarts;
    Flight.record Flight.Ev.Restart (attempts + 1) 0 0;
    batch_locate t key (attempts + 1)

  (* [level]/[bucket] as in [descend]: flight-recorder node identity. *)
  and batch_descend t key cur cur_lease hi level bucket attempts =
    Chaos.yield_if Chaos.Point.Btree_descent_yield;
    let n = clamped_nkeys cur in
    let idx, found = search t cur.keys n key in
    if not (is_leaf cur) then
      if found then
        if Olock.valid cur.lock cur_lease then Bt_dup
        else begin
          Flight.record Flight.Ev.Validation_fail level bucket 0;
          batch_restart t key attempts
        end
      else begin
        let next = cur.children.(idx) in
        let hi = if idx < n then Some cur.keys.(idx) else hi in
        let bucket' = if level = 0 then idx else bucket in
        if not (Olock.valid cur.lock cur_lease) then begin
          Flight.record Flight.Ev.Validation_fail level bucket 0;
          batch_restart t key attempts
        end
        else begin
          let next_lease = Olock.start_read next.lock in
          if not (Olock.valid cur.lock cur_lease) then begin
            Flight.record Flight.Ev.Validation_fail level bucket 0;
            batch_restart t key attempts
          end
          else batch_descend t key next next_lease hi (level + 1) bucket' attempts
        end
      end
    else if not (Olock.try_upgrade_to_write cur.lock cur_lease) then begin
      Flight.record Flight.Ev.Upgrade_fail level bucket 0;
      batch_restart t key attempts
    end
    else Bt_leaf (cur, hi)

  let batch_locate t key = batch_locate t key 0

  (* Consume [run.(i0 ..)] (up to exclusive index [stop_idx]) into the
     write-locked [leaf] while keys stay below [limit]; returns the next
     unconsumed index and the fresh count, releasing the write permit. *)
  let batch_fill t run i0 stop_idx leaf limit0 =
    let fresh = ref 0 in
    let i = ref i0 in
    let limit = ref limit0 in
    let stop = ref false in
    while (not !stop) && !i < stop_idx do
      let key = run.(!i) in
      let cmp_limit =
        match !limit with None -> -1 | Some b -> K.compare key b
      in
      if cmp_limit = 0 then incr i (* equals a live separator: duplicate *)
      else if cmp_limit > 0 then stop := true
      else begin
        let nk = leaf.nkeys in
        let idx, found = search t leaf.keys nk key in
        if found then incr i
        else if nk >= t.capacity then begin
          Flight.record Flight.Ev.Split (-1) (-1) 0;
          let median = split_returning t leaf in
          if K.compare key median < 0 then limit := Some median
          else stop := true (* the rest of the run re-descends *)
        end
        else begin
          (* splice the whole gap group in two blits *)
          let gap_hi = if idx < nk then Some leaf.keys.(idx) else !limit in
          let in_gap k =
            match gap_hi with None -> true | Some b -> K.compare k b < 0
          in
          let room = t.capacity - nk in
          let j = ref (!i + 1) in
          while
            !j - !i < room && !j < stop_idx
            && K.compare run.(!j - 1) run.(!j) < 0
            && in_gap run.(!j)
          do
            incr j
          done;
          let glen = !j - !i in
          Leaf_pack.splice ~keys:leaf.keys ~nkeys:nk ~at:idx ~src:run
            ~src_pos:!i ~len:glen;
          leaf.nkeys <- nk + glen;
          fresh := !fresh + glen;
          Telemetry.bump Telemetry.Counter.Btree_batch_splices;
          i := !j
        end
      end
    done;
    Olock.end_write leaf.lock;
    (!i, !fresh)

  let insert_batch_op ?hints t run pos len =
    let stop_idx = pos + len in
    for k = pos + 1 to stop_idx - 1 do
      if K.compare run.(k - 1) run.(k) > 0 then
        invalid_arg "Btree.insert_batch: run not sorted"
    done;
    if len = 0 then 0
    else begin
      ensure_root t;
      Telemetry.add Telemetry.Counter.Btree_batch_keys len;
      let fresh = ref 0 in
      let i = ref pos in
      while !i < stop_idx do
        let key = run.(!i) in
        (* hinted fast path: upgrade the cached leaf when it covers [key];
           its own last key then bounds the fill (the leaf is authoritative
           only up to there unless it is rightmost) *)
        let hinted =
          match hints with
          | Some h when h.insert_leaf != sentinel ->
            let leaf = h.insert_leaf in
            let lease = Olock.start_read leaf.lock in
            let nk = clamped_nkeys leaf in
            if
              covers leaf nk key
              && Olock.valid leaf.lock lease
              && Olock.try_upgrade_to_write leaf.lock lease
            then begin
              let nk = leaf.nkeys in
              let limit =
                if leaf.rightmost then None else Some leaf.keys.(nk - 1)
              in
              Some (leaf, limit)
            end
            else None
          | _ -> None
        in
        let target =
          match hinted with
          | Some tgt ->
            (match hints with
            | Some h ->
              h.h_insert_hits <- h.h_insert_hits + 1;
              run_hit h;
              Telemetry.bump Telemetry.Counter.Btree_hint_hits
            | None -> ());
            Some tgt
          | None ->
            (match hints with
            | Some h ->
              h.h_insert_misses <- h.h_insert_misses + 1;
              run_break h;
              Telemetry.bump Telemetry.Counter.Btree_hint_misses
            | None -> ());
            (match batch_locate t key with
            | Bt_dup ->
              incr i;
              None
            | Bt_leaf (leaf, hi) -> Some (leaf, hi))
        in
        match target with
        | None -> ()
        | Some (leaf, limit) ->
          Telemetry.bump Telemetry.Counter.Btree_batch_leaves;
          let i', f = batch_fill t run !i stop_idx leaf limit in
          (match hints with Some h -> h.insert_leaf <- leaf | None -> ());
          i := i';
          fresh := !fresh + f
      done;
      !fresh
    end

  let insert_batch ?hints ?(pos = 0) ?len t run =
    let n = Array.length run in
    let len = match len with Some l -> l | None -> n - pos in
    if pos < 0 || len < 0 || pos + len > n then
      invalid_arg "Btree.insert_batch: invalid range";
    let t0 = Telemetry.hist_start Telemetry.Hist.Btree_batch_ns in
    let r = insert_batch_op ?hints t run pos len in
    Telemetry.hist_end Telemetry.Hist.Btree_batch_ns t0;
    r

  (* ------------------------------------------------------------------ *)
  (* Read operations (read phase: no synchronisation needed)            *)
  (* ------------------------------------------------------------------ *)

  let mem_op ?hints t key =
    let slow () =
      let rec go node last_leaf =
        if node == sentinel then (false, last_leaf)
        else
          let n = clamped_nkeys node in
          let idx, found = search t node.keys n key in
          if found then (true, if is_leaf node then node else last_leaf)
          else if is_leaf node then (false, node)
          else go node.children.(idx) last_leaf
      in
      go t.root sentinel
    in
    match hints with
    | None -> fst (slow ())
    | Some h ->
      let leaf = h.find_leaf in
      let nk = if leaf == sentinel then 0 else clamped_nkeys leaf in
      if nk > 0 && covers leaf nk key then begin
        h.h_find_hits <- h.h_find_hits + 1;
        run_hit h;
        Telemetry.bump Telemetry.Counter.Btree_hint_hits;
        snd (search t leaf.keys nk key)
      end
      else begin
        h.h_find_misses <- h.h_find_misses + 1;
        run_break h;
        Telemetry.bump Telemetry.Counter.Btree_hint_misses;
        let r, l = slow () in
        if l != sentinel then h.find_leaf <- l;
        r
      end

  let mem ?hints t key =
    let t0 = Telemetry.hist_start Telemetry.Hist.Btree_find_ns in
    let r = mem_op ?hints t key in
    Telemetry.hist_end Telemetry.Hist.Btree_find_ns t0;
    r

  let is_empty t = t.root == sentinel || (t.root.nkeys = 0 && is_leaf t.root)

  let rec min_node n = if is_leaf n then n else min_node n.children.(0)
  let rec max_node n = if is_leaf n then n else max_node n.children.(n.nkeys)

  let min_elt t =
    if is_empty t then None
    else
      let n = min_node t.root in
      Some n.keys.(0)

  let max_elt t =
    if is_empty t then None
    else
      let n = max_node t.root in
      Some n.keys.(n.nkeys - 1)

  (* Generic bound query: [strict = false] gives lower_bound (>=), [strict =
     true] gives upper_bound (>).  At each node, [g] is the index of the
     smallest qualifying element; the answer is either inside [children.(g)]
     (whose range ends just below [keys.(g)]) or [keys.(g)] itself.
     [visited], when given, receives the leaf the descent ends in — used to
     refresh hints without a second traversal. *)
  let bound_visit ?visited ~strict t key =
    let rec go node best =
      if node == sentinel then best
      else
        let n = clamped_nkeys node in
        if is_leaf node then (
          match visited with Some r -> r := node | None -> ());
        let idx, found = search t node.keys n key in
        if found && not strict then Some key
        else
          let g = if strict then search_gt node.keys n key else idx in
          if is_leaf node then if g < n then Some node.keys.(g) else best
          else
            let best = if g < n then Some node.keys.(g) else best in
            go node.children.(g) best
    in
    go t.root None

  let bound ~strict t key = bound_visit ~strict t key

  let bound_hinted ~strict ?hints t key =
    match hints with
    | None -> bound ~strict t key
    | Some h ->
      let leaf = if strict then h.ub_leaf else h.lb_leaf in
      let nk = if leaf == sentinel then 0 else clamped_nkeys leaf in
      (* A covering leaf answers bound queries authoritatively, except when
         the answer would be past its last key — the successor then lives in
         an ancestor — unless the leaf is rightmost (then there is none). *)
      let usable =
        nk > 0
        && (leaf.leftmost || K.compare leaf.keys.(0) key <= 0)
        &&
        let c = K.compare key leaf.keys.(nk - 1) in
        if strict then c < 0 || leaf.rightmost else c <= 0 || leaf.rightmost
      in
      if usable then begin
        let idx =
          if strict then search_gt leaf.keys nk key
          else fst (search t leaf.keys nk key)
        in
        if strict then h.h_ub_hits <- h.h_ub_hits + 1
        else h.h_lb_hits <- h.h_lb_hits + 1;
        run_hit h;
        Telemetry.bump Telemetry.Counter.Btree_hint_hits;
        if idx < nk then Some leaf.keys.(idx) else None
      end
      else begin
        if strict then h.h_ub_misses <- h.h_ub_misses + 1
        else h.h_lb_misses <- h.h_lb_misses + 1;
        run_break h;
        Telemetry.bump Telemetry.Counter.Btree_hint_misses;
        (* the query's own descent refreshes the hint *)
        let visited = ref sentinel in
        let r = bound_visit ~visited ~strict t key in
        if !visited != sentinel then
          if strict then h.ub_leaf <- !visited else h.lb_leaf <- !visited;
        r
      end

  let lower_bound ?hints t key =
    let t0 = Telemetry.hist_start Telemetry.Hist.Btree_bound_ns in
    let r = bound_hinted ~strict:false ?hints t key in
    Telemetry.hist_end Telemetry.Hist.Btree_bound_ns t0;
    r

  let upper_bound ?hints t key =
    let t0 = Telemetry.hist_start Telemetry.Hist.Btree_bound_ns in
    let r = bound_hinted ~strict:true ?hints t key in
    Telemetry.hist_end Telemetry.Hist.Btree_bound_ns t0;
    r

  let iter f t =
    let rec go node =
      if node != sentinel then
        if is_leaf node then
          for i = 0 to node.nkeys - 1 do
            f node.keys.(i)
          done
        else begin
          for i = 0 to node.nkeys - 1 do
            go node.children.(i);
            f node.keys.(i)
          done;
          go node.children.(node.nkeys)
        end
    in
    go t.root

  let fold f init t =
    let acc = ref init in
    iter (fun k -> acc := f !acc k) t;
    !acc

  exception Stop

  let iter_while f t =
    let g k = if not (f k) then raise Stop in
    try iter g t with Stop -> ()

  (* [strict = true] starts at the first element [> key] instead of [>= key];
     used to resume a scan past a known element.  [visited], when given,
     receives the first leaf the scan descends into (the leaf holding the
     range start), to refresh hints without a second traversal. *)
  let iter_from_plain ?visited ~strict f t key =
    let emit k = if not (f k) then raise Stop in
    let rec emit_all node =
      if node != sentinel then
        if is_leaf node then
          for i = 0 to node.nkeys - 1 do
            emit node.keys.(i)
          done
        else begin
          for i = 0 to node.nkeys - 1 do
            emit_all node.children.(i);
            emit node.keys.(i)
          done;
          emit_all node.children.(node.nkeys)
        end
    in
    let rec scan node =
      if node != sentinel then begin
        let n = clamped_nkeys node in
        let idx, found = search t node.keys n key in
        if is_leaf node then begin
          (match visited with Some r -> r := node | None -> ());
          let idx = if strict && found then idx + 1 else idx in
          for i = idx to n - 1 do
            emit node.keys.(i)
          done
        end
        else begin
          scan node.children.(idx);
          let start = if strict && found then idx + 1 else idx in
          (if strict && found && idx < n then emit_all node.children.(idx + 1));
          for i = start to n - 1 do
            emit node.keys.(i);
            emit_all node.children.(i + 1)
          done
        end
      end
    in
    try scan t.root with Stop -> ()

  let iter_from ?hints f t key =
    match hints with
    | None -> iter_from_plain ~strict:false f t key
    | Some h ->
      let leaf = h.lb_leaf in
      let nk = if leaf == sentinel then 0 else clamped_nkeys leaf in
      let usable =
        nk > 0
        && (leaf.leftmost || K.compare leaf.keys.(0) key <= 0)
        && (leaf.rightmost || K.compare key leaf.keys.(nk - 1) <= 0)
      in
      if usable then begin
        h.h_lb_hits <- h.h_lb_hits + 1;
        run_hit h;
        Telemetry.bump Telemetry.Counter.Btree_hint_hits;
        let idx, _ = search t leaf.keys nk key in
        let continue = ref true in
        let i = ref idx in
        while !continue && !i < nk do
          continue := f leaf.keys.(!i);
          incr i
        done;
        (* ran off the hinted leaf: resume past its last key unless it is
           the last leaf of the tree *)
        if !continue && not leaf.rightmost then
          iter_from_plain ~strict:true f t leaf.keys.(nk - 1)
      end
      else begin
        h.h_lb_misses <- h.h_lb_misses + 1;
        run_break h;
        Telemetry.bump Telemetry.Counter.Btree_hint_misses;
        (* the scan's own descent refreshes the hint *)
        let visited = ref sentinel in
        iter_from_plain ~visited ~strict:false f t key;
        if !visited != sentinel then h.lb_leaf <- !visited
      end

  let cardinal t = fold (fun n _ -> n + 1) 0 t
  let to_list t = List.rev (fold (fun acc k -> k :: acc) [] t)

  let to_sorted_array t =
    let n = cardinal t in
    if n = 0 then [||]
    else begin
      let first = match min_elt t with Some k -> k | None -> assert false in
      let a = Array.make n first in
      let i = ref 0 in
      iter
        (fun k ->
          a.(!i) <- k;
          incr i)
        t;
      a
    end

  let insert_all ?hints dst src =
    let h = match hints with Some h -> h | None -> make_hints () in
    iter (fun k -> ignore (insert ~hints:h dst k : bool)) src

  (* ------------------------------------------------------------------ *)
  (* Bulk building                                                      *)
  (* ------------------------------------------------------------------ *)

  let of_sorted_array ?capacity arr =
    let t = create ?capacity () in
    let len = Array.length arr in
    for i = 1 to len - 1 do
      if K.compare arr.(i - 1) arr.(i) >= 0 then
        invalid_arg "Btree.of_sorted_array: input not strictly increasing"
    done;
    if len > 0 then begin
      (* Target fill keeps headroom for later inserts; shared with the
         batch insert path via [Leaf_pack] so bulk-built and batch-grown
         trees agree on packing conventions. *)
      let target = Leaf_pack.target_fill ~capacity:t.capacity in
      (* max elements in a subtree of the given height *)
      let rec max_elems h =
        if h = 0 then target else target + ((target + 1) * max_elems (h - 1))
      in
      let rec height_for n h = if max_elems h >= n then h else height_for n (h + 1) in
      let rec build lo hi h =
        let n = hi - lo in
        if h = 0 then begin
          let leaf = alloc_leaf t in
          Leaf_pack.splice ~keys:leaf.keys ~nkeys:0 ~at:0 ~src:arr
            ~src_pos:lo ~len:n;
          leaf.nkeys <- n;
          leaf
        end
        else begin
          let sub = max_elems (h - 1) in
          (* smallest child count whose subtrees can absorb the elements *)
          let k = max 2 (((n - 1) / (sub + 1)) + 1) in
          let k = min k (t.capacity + 1) in
          let node = alloc_inner t in
          let elems = n - (k - 1) in
          let base = elems / k and extra = elems mod k in
          let pos = ref lo in
          for i = 0 to k - 1 do
            let sz = base + if i < extra then 1 else 0 in
            let child = build !pos (!pos + sz) (h - 1) in
            child.parent <- Some node;
            child.position <- i;
            node.children.(i) <- child;
            pos := !pos + sz;
            if i < k - 1 then begin
              node.keys.(i) <- arr.(!pos);
              incr pos
            end
          done;
          node.nkeys <- k - 1;
          node
        end
      in
      let h = height_for len 0 in
      t.root <- build 0 len h;
      (min_node t.root).leftmost <- true;
      (max_node t.root).rightmost <- true
    end;
    t

  (* Separator keys from the top of the tree, ascending: range-partition
     pivots for parallel structural merges.  Collects whole levels top-down
     until at least [limit] keys are available (the keys of one level are
     sorted among themselves and are valid pivots on their own), then thins
     evenly to at most [limit].  Quiescent use only. *)
  let separators t ~limit =
    if limit <= 0 || is_empty t then [||]
    else begin
      let rec level nodes =
        let keys =
          List.concat_map
            (fun n -> Array.to_list (Array.sub n.keys 0 n.nkeys))
            nodes
        in
        if List.length keys >= limit || is_leaf (List.hd nodes) then keys
        else
          level
            (List.concat_map
               (fun n -> List.init (n.nkeys + 1) (fun i -> n.children.(i)))
               nodes)
      in
      let keys = Array.of_list (level [ t.root ]) in
      let n = Array.length keys in
      if n <= limit then keys
      else Array.init limit (fun i -> keys.(i * n / limit))
    end

  (* ------------------------------------------------------------------ *)
  (* Explicit iterators                                                 *)
  (* ------------------------------------------------------------------ *)

  module Iterator = struct
    (* [inode == sentinel] encodes the end iterator.  For a leaf position,
       [idx] indexes the next element; for an inner position, [idx] is the
       separator key just reached after exhausting child [idx]. *)
    type it = { mutable inode : node; mutable idx : int }

    let at_end it = it.inode == sentinel
    let copy it = { inode = it.inode; idx = it.idx }

    let start t =
      if is_empty t then { inode = sentinel; idx = 0 }
      else { inode = min_node t.root; idx = 0 }

    let get it =
      if at_end it then invalid_arg "Btree.Iterator.get: at end"
      else it.inode.keys.(it.idx)

    (* climb to the nearest ancestor of which [node] is not the last child;
       yields that ancestor's separator position, or the end *)
    let rec climb it node =
      match node.parent with
      | None ->
        it.inode <- sentinel;
        it.idx <- 0
      | Some p ->
        if node.position < p.nkeys then begin
          it.inode <- p;
          it.idx <- node.position
        end
        else climb it p

    let advance it =
      if at_end it then invalid_arg "Btree.Iterator.advance: at end";
      let n = it.inode in
      if is_leaf n then
        if it.idx + 1 < n.nkeys then it.idx <- it.idx + 1 else climb it n
      else begin
        (* successor of an inner separator: leftmost leaf of the subtree to
           its right *)
        let leaf = min_node n.children.(it.idx + 1) in
        it.inode <- leaf;
        it.idx <- 0
      end

    let seek t key =
      let rec go node best =
        if node == sentinel then best
        else
          let nk = node.nkeys in
          let idx, found = search t node.keys nk key in
          if found then { inode = node; idx }
          else if is_leaf node then
            if idx < nk then { inode = node; idx } else best
          else
            go node.children.(idx)
              (if idx < nk then { inode = node; idx } else best)
      in
      go t.root { inode = sentinel; idx = 0 }
  end

  (* ------------------------------------------------------------------ *)
  (* Set predicates                                                     *)
  (* ------------------------------------------------------------------ *)

  let equal a b =
    let ia = Iterator.start a and ib = Iterator.start b in
    let rec go () =
      match (Iterator.at_end ia, Iterator.at_end ib) with
      | true, true -> true
      | false, false ->
        K.compare (Iterator.get ia) (Iterator.get ib) = 0
        && begin
             Iterator.advance ia;
             Iterator.advance ib;
             go ()
           end
      | _ -> false
    in
    go ()

  let subset a b =
    let missing = ref false in
    iter_while
      (fun k ->
        if mem b k then true
        else begin
          missing := true;
          false
        end)
      a;
    not !missing

  let disjoint a b =
    (* lockstep merge walk: a shared element stops the scan *)
    let ia = Iterator.start a and ib = Iterator.start b in
    let rec go () =
      if Iterator.at_end ia || Iterator.at_end ib then true
      else
        let c = K.compare (Iterator.get ia) (Iterator.get ib) in
        if c = 0 then false
        else begin
          if c < 0 then Iterator.advance ia else Iterator.advance ib;
          go ()
        end
    in
    go ()

  (* ------------------------------------------------------------------ *)
  (* Introspection                                                      *)
  (* ------------------------------------------------------------------ *)

  type stats = {
    elements : int;
    nodes : int;
    leaves : int;
    height : int;
    fill : float;
  }

  let stats t =
    if is_empty t then { elements = 0; nodes = 0; leaves = 0; height = 0; fill = 0.0 }
    else begin
      let elements = ref 0 and nodes = ref 0 and leaves = ref 0 in
      let rec go node depth maxd =
        incr nodes;
        elements := !elements + node.nkeys;
        if is_leaf node then begin
          incr leaves;
          max maxd depth
        end
        else begin
          let m = ref maxd in
          for i = 0 to node.nkeys do
            m := max !m (go node.children.(i) (depth + 1) !m)
          done;
          !m
        end
      in
      let height = go t.root 1 1 in
      {
        elements = !elements;
        nodes = !nodes;
        leaves = !leaves;
        height;
        fill = float_of_int !elements /. float_of_int (!nodes * t.capacity);
      }
    end

  (* Full structural report; same height/fill conventions as [stats]
     (root-only tree has height 1).  Quiescent traversal. *)
  let shape t =
    if is_empty t then Tree_shape.empty ~capacity:t.capacity
    else begin
      let rec depth n = if is_leaf n then 1 else 1 + depth n.children.(0) in
      let h = depth t.root in
      let level_nodes = Array.make h 0 in
      let level_keys = Array.make h 0 in
      let fill_deciles = Array.make 10 0 in
      let elements = ref 0 and nodes = ref 0 and leaves = ref 0 in
      let rec go n d =
        incr nodes;
        elements := !elements + n.nkeys;
        level_nodes.(d) <- level_nodes.(d) + 1;
        level_keys.(d) <- level_keys.(d) + n.nkeys;
        let dec = n.nkeys * 10 / t.capacity in
        let dec = if dec > 9 then 9 else dec in
        fill_deciles.(dec) <- fill_deciles.(dec) + 1;
        if is_leaf n then incr leaves
        else
          for i = 0 to n.nkeys do
            go n.children.(i) (d + 1)
          done
      in
      go t.root 0;
      {
        Tree_shape.elements = !elements;
        nodes = !nodes;
        leaves = !leaves;
        height = h;
        capacity = t.capacity;
        fill = float_of_int !elements /. float_of_int (!nodes * t.capacity);
        level_nodes;
        level_keys;
        fill_deciles;
      }
    end

  let check_invariants t =
    let fail fmt = Printf.ksprintf failwith fmt in
    if not (is_empty t) then begin
      let leaf_depth = ref (-1) in
      (* [lo]/[hi] are exclusive bounds on the subtree's keys. *)
      let rec go node depth lo hi =
        let n = node.nkeys in
        if n < 1 then fail "node with %d keys" n;
        if n > t.capacity then fail "node overflow: %d > %d" n t.capacity;
        for i = 0 to n - 2 do
          if K.compare node.keys.(i) node.keys.(i + 1) >= 0 then
            fail "keys out of order at index %d" i
        done;
        (match lo with
        | Some l ->
          if K.compare l node.keys.(0) >= 0 then fail "lower bound violated"
        | None -> ());
        (match hi with
        | Some h ->
          if K.compare node.keys.(n - 1) h >= 0 then fail "upper bound violated"
        | None -> ());
        if is_leaf node then begin
          if !leaf_depth = -1 then leaf_depth := depth
          else if !leaf_depth <> depth then
            fail "leaves at different depths (%d vs %d)" !leaf_depth depth;
          (* edge flags must identify exactly the first/last leaf *)
          let is_first = lo = None and is_last = hi = None in
          if node.leftmost <> is_first then
            fail "leftmost flag %b on leaf with is_first=%b" node.leftmost
              is_first;
          if node.rightmost <> is_last then
            fail "rightmost flag %b on leaf with is_last=%b" node.rightmost
              is_last
        end
        else
          for i = 0 to n do
            let c = node.children.(i) in
            if c == sentinel then fail "sentinel child in occupied slot %d" i;
            (match c.parent with
            | Some p when p == node -> ()
            | _ -> fail "broken parent pointer at child %d" i);
            if c.position <> i then
              fail "broken position: child %d records %d" i c.position;
            let lo = if i = 0 then lo else Some node.keys.(i - 1) in
            let hi = if i = n then hi else Some node.keys.(i) in
            go c (depth + 1) lo hi
          done
      in
      (match t.root.parent with
      | None -> ()
      | Some _ -> fail "root has a parent");
      go t.root 0 None None
    end

  (* ------------------------------------------------------------------ *)
  (* Sessions                                                           *)
  (* ------------------------------------------------------------------ *)

  (* A per-domain handle bundling the tree with that domain's operation
     hints; telemetry is domain-local by construction, so a session also
     delimits the telemetry shard its operations account to.  This is the
     only hinted surface: the [?hints] parameters on the raw operations are
     internal, shadowed by unhinted rebinds below. *)

  type session = { s_tree : t; s_hints : hints }

  let session t = { s_tree = t; s_hints = make_hints () }
  let s_tree s = s.s_tree
  let s_hints s = s.s_hints
  let s_insert s key = insert ~hints:s.s_hints s.s_tree key

  let s_insert_batch ?pos ?len s run =
    insert_batch ~hints:s.s_hints ?pos ?len s.s_tree run

  let s_mem s key = mem ~hints:s.s_hints s.s_tree key
  let s_lower_bound s key = lower_bound ~hints:s.s_hints s.s_tree key
  let s_upper_bound s key = upper_bound ~hints:s.s_hints s.s_tree key
  let s_iter_from f s key = iter_from ~hints:s.s_hints f s.s_tree key

  (* ------------------------------------------------------------------ *)
  (* Backend conformance                                                *)
  (* ------------------------------------------------------------------ *)

  (* Ascription-only witness that the tree satisfies the shared storage
     backend contract; generic drivers go through this view. *)
  module As_storage : Storage_intf.S with type elt = key and type t = t =
  struct
    type elt = K.t
    type nonrec t = t

    let create () = create ()
    let insert t k = insert t k
    let insert_batch t run = insert_batch t run
    let mem t k = mem t k
    let lower_bound t k = lower_bound t k
    let upper_bound t k = upper_bound t k
    let iter = iter
    let iter_from f t k = iter_from f t k
    let cardinal = cardinal
    let is_empty = is_empty
    let ordered = true
    let shape t = Some (shape t)
  end

  (* ------------------------------------------------------------------ *)
  (* Public unhinted surface                                            *)
  (* ------------------------------------------------------------------ *)

  (* The [?hints] optional arguments are not exported: hinted operation
     goes through a per-domain session, everything else through these
     unhinted rebinds (which the .mli exposes).  This completes the PR 3
     session migration — there is exactly one way to hold hints. *)
  let insert t key = insert t key
  let insert_batch ?pos ?len t run = insert_batch ?pos ?len t run
  let insert_all dst src = insert_all dst src
  let mem t key = mem t key
  let lower_bound t key = lower_bound t key
  let upper_bound t key = upper_bound t key
  let iter_from f t key = iter_from f t key
end
