(** The specialized concurrent B-tree, hand-specialized for integer tuples.

    Functionally equivalent to [Btree.Make] over an integer-array key with a
    column-permutation comparator, but with the 3-way tuple comparator
    inlined into the search loops instead of called through a functor
    closure.  This mirrors the paper's implementation note (2): Soufflé's
    C++ template instantiation inlines the tuple comparator; without
    cross-module inlining, OCaml functor applications pay an indirect call
    per comparison, which dominates descent cost on tuple keys.  The Datalog
    engine's relation indexes use this module.

    Tuples are [int array]s of a fixed arity; ordering is lexicographic over
    [order] (a column permutation: the index signature's bound columns
    first).  Inserted arrays are retained — callers must not mutate them.

    Concurrency contract, hints, and algorithms are identical to {!Btree}:
    optimistic lock-free descent with validation, lease upgrade at the leaf,
    bottom-up split locking, weak-coverage operation hints. *)

type t

val create :
  ?capacity:int -> ?binary_search:bool -> arity:int -> order:int array -> unit -> t
(** [order] must be a permutation of [0 .. arity-1].
    @raise Invalid_argument otherwise. *)

val arity : t -> int

type hints

val make_hints : unit -> hints

val hint_counters : hints -> int * int
(** (hits, misses) over all operation kinds. *)

val hint_run_hist : hints -> int array
(** Hint-locality distribution: log2-bucketed lengths of uninterrupted hit
    runs (bucket [b>0] holds runs of [2^(b-1)..2^b-1] hits; bucket 0 counts
    misses that immediately followed a miss).  The still-open run, if any,
    is counted as if it closed now. *)

val insert : ?hints:hints -> t -> int array -> bool
(** Thread-safe against concurrent inserts. *)

val mem : ?hints:hints -> t -> int array -> bool
val is_empty : t -> bool
val cardinal : t -> int

val iter : (int array -> unit) -> t -> unit
val iter_from : ?hints:hints -> (int array -> bool) -> t -> int array -> unit
(** In-order from the first tuple [>=] the probe (in [order]-major
    comparison), while the callback returns [true]. *)

val to_list : t -> int array list
val check_invariants : t -> unit

val shape : t -> Tree_shape.t
(** Full structural report (per-level node counts, fill-factor deciles);
    root-only tree has height 1.  Quiescent use only. *)
