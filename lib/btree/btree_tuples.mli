(** The specialized concurrent B-tree, hand-specialized for integer tuples.

    Functionally equivalent to [Btree.Make] over an integer-array key with a
    column-permutation comparator, but with the 3-way tuple comparator
    inlined into the search loops instead of called through a functor
    closure.  This mirrors the paper's implementation note (2): Soufflé's
    C++ template instantiation inlines the tuple comparator; without
    cross-module inlining, OCaml functor applications pay an indirect call
    per comparison, which dominates descent cost on tuple keys.  The Datalog
    engine's relation indexes use this module.

    Tuples are [int array]s of a fixed arity; ordering is lexicographic over
    [order] (a column permutation: the index signature's bound columns
    first).  Inserted arrays are retained — callers must not mutate them.

    Concurrency contract, hints, and algorithms are identical to {!Btree}:
    optimistic lock-free descent with validation, lease upgrade at the leaf,
    bottom-up split locking, weak-coverage operation hints. *)

type t

val create :
  ?capacity:int -> ?binary_search:bool -> arity:int -> order:int array -> unit -> t
(** [order] must be a permutation of [0 .. arity-1].
    @raise Invalid_argument otherwise. *)

val arity : t -> int

val compare_tuples : t -> int array -> int array -> int
(** The tree's [order]-major lexicographic tuple comparison — what "sorted"
    means for {!insert_batch} runs on this tree. *)

type hints

val make_hints : unit -> hints

val hint_counters : hints -> int * int
(** (hits, misses) over all operation kinds. *)

val hint_run_hist : hints -> int array
(** Hint-locality distribution: log2-bucketed lengths of uninterrupted hit
    runs (bucket [b>0] holds runs of [2^(b-1)..2^b-1] hits; bucket 0 counts
    misses that immediately followed a miss).  The still-open run, if any,
    is counted as if it closed now. *)

val set_restart_budget : int -> unit
(** Optimistic restarts allowed per insertion before the pessimistic
    write-locked fallback descent engages (default 16; [0] = always
    pessimistic).  Module-global; quiescent use only.  See
    [Btree.Make.set_restart_budget] for the fallback's progress argument.
    @raise Invalid_argument if negative. *)

val restart_budget : unit -> int

val insert : t -> int array -> bool
(** Thread-safe against concurrent inserts.  Unhinted; for the hinted path
    use {!s_insert} on a per-domain {!session}. *)

val insert_batch : ?pos:int -> ?len:int -> t -> int array array -> int
(** [insert_batch t run] inserts the sorted run [run.(pos..pos+len-1)]
    (non-decreasing in the tree's [order]-major comparison; duplicates are
    skipped) and returns the number of fresh tuples.  One optimistic
    descent acquires the target leaf's write permit together with the
    leaf's exclusive upper bound, and the run is consumed up to that bound
    with bulk two-blit splices and in-place multi-splits — amortising one
    descent and one write-lock acquisition over many tuples.  Thread-safe
    against concurrent [insert]s and [insert_batch]es.
    @raise Invalid_argument when the run is not sorted or the range is
    invalid. *)

val mem : t -> int array -> bool
val is_empty : t -> bool
val cardinal : t -> int

val lower_bound : t -> int array -> int array option
(** Smallest tuple [>=] the probe (in [order]-major comparison). *)

val upper_bound : t -> int array -> int array option
(** Smallest tuple [>] the probe. *)

val iter : (int array -> unit) -> t -> unit
val iter_from : (int array -> bool) -> t -> int array -> unit
(** In-order from the first tuple [>=] the probe (in [order]-major
    comparison), while the callback returns [true]. *)

val to_list : t -> int array list
val check_invariants : t -> unit

val shape : t -> Tree_shape.t
(** Full structural report (per-level node counts, fill-factor deciles);
    root-only tree has height 1.  Quiescent use only. *)

val separators : t -> limit:int -> int array array
(** At most [limit] separator tuples from the top levels of the tree, in
    ascending order — range-partition pivots for parallel structural
    merges: tuples below [separators.(i)] reach leaves disjoint from those
    reached by tuples above it.  Quiescent use only. *)

(** {1 Sessions}

    A per-domain handle owning the domain's operation hints — the only
    hinted surface (the former [?hints] optional arguments on the raw
    operations are gone).  Do not share across domains. *)

type session

val session : t -> session
val s_tree : session -> t
val s_hints : session -> hints

val s_insert : session -> int array -> bool
val s_insert_batch : ?pos:int -> ?len:int -> session -> int array array -> int
val s_mem : session -> int array -> bool
val s_lower_bound : session -> int array -> int array option
val s_upper_bound : session -> int array -> int array option
val s_iter_from : (int array -> bool) -> session -> int array -> unit

(** Witness that a fixed-signature tuple tree satisfies the shared
    storage-backend contract (hints dropped). *)
module As_storage (_ : sig
  val arity : int
  val order : int array
end) : Storage_intf.S with type elt = int array and type t = t
