(* Shared leaf-packing conventions of the bulk write paths.

   Both [of_sorted_array] (bulk build) and [insert_batch] (sorted-run batch
   insert) fill leaves from sorted input; they must agree on how full a
   freshly packed node may be and how a sorted slice is spliced into a
   partially filled key array, or a bulk-built tree and a batch-grown tree
   would diverge in shape and invariants.  This module is that single point
   of agreement. *)

(* Number of keys a bulk operation packs into a node of the given capacity:
   3/4 full, leaving headroom so the first few later point inserts do not
   immediately split every node the bulk path produced. *)
let target_fill ~capacity = max 1 (capacity * 3 / 4)

(* [splice ~keys ~nkeys ~at ~src ~src_pos ~len] inserts
   [src.(src_pos .. src_pos+len-1)] at index [at] of [keys] (which holds
   [nkeys] live entries), shifting the tail right — the bulk counterpart of
   a single-key leaf insert, costing two blits regardless of [len].  The
   caller guarantees capacity ([nkeys + len <= Array.length keys]) and
   order (all spliced keys fall strictly between [keys.(at - 1)] and
   [keys.(at)]). *)
let splice ~keys ~nkeys ~at ~src ~src_pos ~len =
  Array.blit keys at keys (at + len) (nkeys - at);
  Array.blit src src_pos keys at len
