(** The common contract of every element-set backend the Datalog storage
    layer can sit on: the concurrent B-tree ({!Btree.Make}), its sequential
    variant ({!Btree_seq.Make}), the specialized tuple tree
    ({!Btree_tuples}), and the baseline/hash structures.

    Having one signature lets the storage layer dispatch on a first-class
    module table instead of repeating a per-kind match per operation, and
    lets structure-generic tests and benchmarks range over backends.

    This signature — together with the typed phase handles of
    [Relation.Writer]/[Relation.Reader] one layer up — is the documented
    public storage API: backends conform via their [As_storage] witnesses
    (unhinted; per-domain hinted access is a session concern of the
    concrete modules), and anything structure-generic should be written
    against it rather than against a concrete tree.

    Semantics: a set of [elt] with insertion, membership, order queries and
    in-order scans.  Unordered (hash) backends implement the order queries
    by linear scan — correct, but only trees make them fast; callers that
    care dispatch on the backend's [ordered] flag. *)

module type S = sig
  type elt
  type t

  val create : unit -> t

  val insert : t -> elt -> bool
  (** [true] iff the element was not yet present. *)

  val insert_batch : t -> elt array -> int
  (** [insert_batch t run] inserts a sorted run (non-decreasing in the
      structure's element order; duplicates are skipped) and returns the
      number of fresh elements.  Tree backends amortise one descent and one
      leaf write-lock acquisition across many keys of the run; unordered
      backends degrade to an insert loop.
      @raise Invalid_argument when the run is not sorted. *)

  val mem : t -> elt -> bool

  val lower_bound : t -> elt -> elt option
  (** Smallest element [>=] the probe. *)

  val upper_bound : t -> elt -> elt option
  (** Smallest element [>] the probe. *)

  val iter : (elt -> unit) -> t -> unit
  (** In element order for ordered backends. *)

  val iter_from : (elt -> bool) -> t -> elt -> unit
  (** Scan in order from the first element [>=] the probe while the
      callback returns [true].  Linear for unordered backends. *)

  val cardinal : t -> int
  val is_empty : t -> bool

  val ordered : bool
  (** Whether [iter]/[iter_from] enumerate in element order and the bound
      queries are sublinear. *)

  val shape : t -> Tree_shape.t option
  (** Structural report for tree backends; [None] for flat structures. *)
end
