(* Specialized concurrent B-tree over int-array tuples.

   Same algorithms as [Btree.Make] (see btree.ml for the full commentary on
   the optimistic locking protocol, memory-model reasoning and weak-coverage
   hints); this copy exists to inline the tuple comparator into the search
   loops — the specialization the paper's implementation notes call out.
   Comparisons here are direct calls on concrete [int array]s with a
   fast path for the ubiquitous binary relations, instead of indirect
   functor-closure calls. *)

type node = {
  lock : Olock.t;
  mutable parent : node option;
  mutable position : int;
  keys : int array array; (* length = capacity *)
  mutable nkeys : int;
  children : node array; (* length = capacity + 1, or [||] for leaves *)
  mutable leftmost : bool;
  mutable rightmost : bool;
}

type t = {
  root_lock : Olock.t;
  mutable root : node;
  capacity : int;
  binary : bool;
  t_arity : int;
  order : int array;
  two_cols : bool; (* order = exactly two columns: use the inline fast path *)
  c0 : int;
  c1 : int; (* the two columns of the fast path *)
}

let sentinel =
  {
    lock = Olock.create ();
    parent = None;
    position = 0;
    keys = [||];
    nkeys = 0;
    children = [||];
    leftmost = false;
    rightmost = false;
  }

let is_leaf n = Array.length n.children = 0
let dummy_key : int array = [||]

let alloc_leaf t =
  {
    lock = Olock.create ();
    parent = None;
    position = 0;
    keys = Array.make t.capacity dummy_key;
    nkeys = 0;
    children = [||];
    leftmost = false;
    rightmost = false;
  }

let alloc_inner t =
  {
    lock = Olock.create ();
    parent = None;
    position = 0;
    keys = Array.make t.capacity dummy_key;
    nkeys = 0;
    children = Array.make (t.capacity + 1) sentinel;
    leftmost = false;
    rightmost = false;
  }

let create ?(capacity = 24) ?(binary_search = true) ~arity ~order () =
  if capacity < 3 then invalid_arg "Btree_tuples.create: capacity must be >= 3";
  if Array.length order <> arity then
    invalid_arg "Btree_tuples.create: order must be a permutation of columns";
  let seen = Array.make arity false in
  Array.iter
    (fun c ->
      if c < 0 || c >= arity || seen.(c) then
        invalid_arg "Btree_tuples.create: order must be a permutation of columns";
      seen.(c) <- true)
    order;
  let two = arity = 2 in
  {
    root_lock = Olock.create ();
    root = sentinel;
    capacity;
    binary = binary_search;
    t_arity = arity;
    order;
    two_cols = two;
    c0 = (if arity > 0 then order.(0) else 0);
    c1 = (if arity > 1 then order.(1) else 0);
  }

let arity t = t.t_arity

(* The inlined 3-way comparator.  The arity-2 fast path is branch-free of
   the permutation loop; the general case walks [order]. *)
let compare_keys t (a : int array) (b : int array) =
  if t.two_cols then begin
    let x = Array.unsafe_get a t.c0 and y = Array.unsafe_get b t.c0 in
    if x < y then -1
    else if x > y then 1
    else
      let x = Array.unsafe_get a t.c1 and y = Array.unsafe_get b t.c1 in
      if x < y then -1 else if x > y then 1 else 0
  end
  else begin
    let order = t.order in
    let n = Array.length order in
    let rec go i =
      if i = n then 0
      else
        let p = Array.unsafe_get order i in
        let x = Array.unsafe_get a p and y = Array.unsafe_get b p in
        if x < y then -1 else if x > y then 1 else go (i + 1)
    in
    go 0
  end

let clamped_nkeys n =
  let k = n.nkeys in
  if k < 0 then 0
  else
    let cap = Array.length n.keys in
    if k > cap then cap else k

let search_linear t keys n key =
  let rec go i =
    if i >= n then (n, false)
    else
      let c = compare_keys t key (Array.unsafe_get keys i) in
      if c > 0 then go (i + 1) else (i, c = 0)
  in
  go 0

let search_binary t keys n key =
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if compare_keys t (Array.unsafe_get keys mid) key < 0 then lo := mid + 1
    else hi := mid
  done;
  let i = !lo in
  (i, i < n && compare_keys t (Array.unsafe_get keys i) key = 0)

let search t keys n key =
  if t.binary then search_binary t keys n key else search_linear t keys n key

(* ---------------- hints ---------------- *)

type hints = {
  mutable insert_leaf : node;
  mutable find_leaf : node;
  mutable lb_leaf : node;
  mutable hits : int;
  mutable misses : int;
  mutable run : int; (* length of the current uninterrupted hit run *)
  runs : int array; (* log2-bucketed run lengths, closed at each miss *)
}

let run_buckets = 16

let make_hints () =
  {
    insert_leaf = sentinel;
    find_leaf = sentinel;
    lb_leaf = sentinel;
    hits = 0;
    misses = 0;
    run = 0;
    runs = Array.make run_buckets 0;
  }

let hint_counters h = (h.hits, h.misses)

(* Hint locality: every miss closes the current run of consecutive hits and
   records its length (bucket b>0 holds runs of 2^(b-1)..2^b-1 hits; bucket
   0 counts misses straight after a miss). *)
let run_bucket r =
  let rec bits n acc = if n = 0 then acc else bits (n lsr 1) (acc + 1) in
  let b = bits r 0 in
  if b >= run_buckets then run_buckets - 1 else b

let run_hit h = h.run <- h.run + 1

let run_break h =
  let r = h.run in
  h.run <- 0;
  let b = run_bucket r in
  h.runs.(b) <- h.runs.(b) + 1

let hint_run_hist h =
  (* copy, with the still-open run counted as if it closed now *)
  let a = Array.copy h.runs in
  if h.run > 0 then begin
    let b = run_bucket h.run in
    a.(b) <- a.(b) + 1
  end;
  a

let covers t n nk key =
  nk > 0
  && (n.leftmost || compare_keys t n.keys.(0) key <= 0)
  && (n.rightmost || compare_keys t key n.keys.(nk - 1) <= 0)

(* ---------------- splitting (Algorithm 2) ---------------- *)

type locked_ancestor = Anc_node of node | Anc_root

let lock_parent t cur =
  match cur.parent with
  | None ->
    Olock.start_write t.root_lock;
    Anc_root
  | Some p ->
    let rec acquire p =
      Olock.start_write p.lock;
      match cur.parent with
      | Some p' when p' == p -> Anc_node p
      | Some p' ->
        Olock.abort_write p.lock;
        acquire p'
      | None ->
        Olock.abort_write p.lock;
        assert false
    in
    acquire p

let lock_path t node =
  let rec go cur acc =
    match lock_parent t cur with
    | Anc_root -> List.rev (Anc_root :: acc)
    | Anc_node p ->
      if p.nkeys < t.capacity then List.rev (Anc_node p :: acc)
      else go p (Anc_node p :: acc)
  in
  go node []

let unlock_path t path =
  List.iter
    (fun a ->
      match a with
      | Anc_node p -> Olock.end_write p.lock
      | Anc_root -> Olock.end_write t.root_lock)
    (List.rev path)

let split_node t node =
  Telemetry.bump
    (if is_leaf node then Telemetry.Counter.Btree_leaf_splits
     else Telemetry.Counter.Btree_inner_splits);
  let cap = t.capacity in
  let mid = cap / 2 in
  let median = node.keys.(mid) in
  let right = if is_leaf node then alloc_leaf t else alloc_inner t in
  let rcount = cap - mid - 1 in
  Array.blit node.keys (mid + 1) right.keys 0 rcount;
  right.nkeys <- rcount;
  if not (is_leaf node) then begin
    Array.blit node.children (mid + 1) right.children 0 (rcount + 1);
    for i = 0 to rcount do
      let c = right.children.(i) in
      c.parent <- Some right;
      c.position <- i
    done
  end;
  node.nkeys <- mid;
  right.rightmost <- node.rightmost;
  node.rightmost <- false;
  (median, right)

let link_sibling p cur right median =
  let i = cur.position in
  let n = p.nkeys in
  Array.blit p.keys i p.keys (i + 1) (n - i);
  p.keys.(i) <- median;
  Array.blit p.children (i + 1) p.children (i + 2) (n - i);
  p.children.(i + 1) <- right;
  p.nkeys <- n + 1;
  right.parent <- Some p;
  for j = i + 1 to n + 1 do
    p.children.(j).position <- j
  done

let rec insert_into_parent t path cur right median =
  match path with
  | [] -> assert false
  | Anc_root :: _ ->
    Telemetry.bump Telemetry.Counter.Btree_root_splits;
    let new_root = alloc_inner t in
    new_root.keys.(0) <- median;
    new_root.nkeys <- 1;
    new_root.children.(0) <- cur;
    new_root.children.(1) <- right;
    cur.parent <- Some new_root;
    cur.position <- 0;
    right.parent <- Some new_root;
    right.position <- 1;
    t.root <- new_root
  | Anc_node p :: rest ->
    if p.nkeys >= t.capacity then begin
      let p_median, p_right = split_node t p in
      insert_into_parent t rest p p_right p_median;
      let q = match cur.parent with Some q -> q | None -> assert false in
      link_sibling q cur right median
    end
    else link_sibling p cur right median

let split_returning t node =
  let path = lock_path t node in
  (* chaos: widen the write-locked window (see btree.ml) *)
  Chaos.yield_if Chaos.Point.Btree_split_delay;
  let median, right = split_node t node in
  insert_into_parent t path node right median;
  unlock_path t path;
  ignore (right : node);
  median

let split t node = ignore (split_returning t node : int array)

(* ---------------- insertion (Algorithm 1) ---------------- *)

let ensure_root t =
  while t.root == sentinel do
    if Olock.try_start_write t.root_lock then begin
      if t.root == sentinel then begin
        let leaf = alloc_leaf t in
        leaf.leftmost <- true;
        leaf.rightmost <- true;
        t.root <- leaf
      end;
      Olock.end_write t.root_lock
    end
  done

let insert_in_leaf leaf idx key =
  let n = leaf.nkeys in
  Array.blit leaf.keys idx leaf.keys (idx + 1) (n - idx);
  leaf.keys.(idx) <- key;
  leaf.nkeys <- n + 1

(* Optimistic restarts allowed per insertion before the pessimistic
   fallback engages; see btree.ml for the full commentary on the fallback
   descent and its progress argument. *)
let restart_budget_v = ref 16

let set_restart_budget n =
  if n < 0 then
    invalid_arg "Btree_tuples.set_restart_budget: budget must be >= 0";
  restart_budget_v := n

let restart_budget () = !restart_budget_v

(* Pessimistic fallback descent: hand-over-hand under write permits, never
   blocking while holding a node lock (read child version under [cur]'s
   permit, release, re-acquire child by CAS on that version; CAS failure
   implies a completed concurrent write, so restarting from the root makes
   global progress).  Mirrors [Btree.Make.insert_pessimistic]. *)
let rec insert_pessimistic t key =
  let rec acquire_root () =
    let cur = t.root in
    Olock.start_write cur.lock;
    if t.root == cur then cur
    else begin
      Olock.abort_write cur.lock;
      acquire_root ()
    end
  in
  let rec go cur =
    let n = cur.nkeys in
    let idx, found = search t cur.keys n key in
    if found then begin
      Olock.abort_write cur.lock;
      (false, sentinel)
    end
    else if not (is_leaf cur) then begin
      let next = cur.children.(idx) in
      let v = Olock.version next.lock in
      Olock.abort_write cur.lock;
      if v land 1 = 0 && Olock.try_upgrade_to_write next.lock v then go next
      else insert_pessimistic t key
    end
    else if cur.nkeys >= t.capacity then begin
      split t cur;
      Olock.end_write cur.lock;
      insert_pessimistic t key
    end
    else begin
      insert_in_leaf cur idx key;
      Olock.end_write cur.lock;
      (true, cur)
    end
  in
  go (acquire_root ())

let fallback t key =
  Telemetry.bump Telemetry.Counter.Btree_pessimistic_fallbacks;
  Flight.record Flight.Ev.Fallback !restart_budget_v 0 0;
  let t0 = Telemetry.hist_time () in
  let r = insert_pessimistic t key in
  Telemetry.hist_end Telemetry.Hist.Btree_fallback_ns t0;
  r

let rec insert_slow t key attempts =
  if attempts >= !restart_budget_v then fallback t key
  else begin
    let root_lease = Olock.start_read t.root_lock in
    let cur = t.root in
    let cur_lease = Olock.start_read cur.lock in
    if Olock.end_read t.root_lock root_lease then
      descend t key cur cur_lease 0 (-1) attempts
    else restart t key attempts
  end

and restart t key attempts =
  (* optimistic descent observed a concurrent write: back to the root *)
  Telemetry.bump Telemetry.Counter.Btree_restarts;
  Flight.record Flight.Ev.Restart (attempts + 1) 0 0;
  insert_slow t key (attempts + 1)

(* [level] is depth from the root, [bucket] the root-child index this
   descent took (-1 at the root): the node identity stamped onto flight
   events, mirroring [Btree.Make.descend]. *)
and descend t key cur cur_lease level bucket attempts =
  Chaos.yield_if Chaos.Point.Btree_descent_yield;
  let n = clamped_nkeys cur in
  let idx, found = search t cur.keys n key in
  if found then
    if Olock.valid cur.lock cur_lease then (false, sentinel)
    else begin
      Flight.record Flight.Ev.Validation_fail level bucket 0;
      restart t key attempts
    end
  else if not (is_leaf cur) then begin
    let next = cur.children.(idx) in
    let bucket' = if level = 0 then idx else bucket in
    if not (Olock.valid cur.lock cur_lease) then begin
      Flight.record Flight.Ev.Validation_fail level bucket 0;
      restart t key attempts
    end
    else begin
      let next_lease = Olock.start_read next.lock in
      if not (Olock.valid cur.lock cur_lease) then begin
        Flight.record Flight.Ev.Validation_fail level bucket 0;
        restart t key attempts
      end
      else descend t key next next_lease (level + 1) bucket' attempts
    end
  end
  else if not (Olock.try_upgrade_to_write cur.lock cur_lease) then begin
    Flight.record Flight.Ev.Upgrade_fail level bucket 0;
    restart t key attempts
  end
  else if cur.nkeys >= t.capacity then begin
    Flight.record Flight.Ev.Split level bucket 0;
    split t cur;
    Olock.end_write cur.lock;
    (* a split is progress, not a failed validation: same budget *)
    insert_slow t key attempts
  end
  else begin
    insert_in_leaf cur idx key;
    Olock.end_write cur.lock;
    (true, cur)
  end

let insert_slow t key = insert_slow t key 0

type hint_attempt = Done of bool | Fallback

(* Hinted attempts have no descent, so their flight events carry the
   -1/-1 "hinted leaf" node identity. *)
let try_insert_at t leaf key =
  let lease = Olock.start_read leaf.lock in
  let n = clamped_nkeys leaf in
  if not (covers t leaf n key && Olock.valid leaf.lock lease) then Fallback
  else begin
    let idx, found = search t leaf.keys n key in
    if found then
      if Olock.valid leaf.lock lease then Done false
      else begin
        Flight.record Flight.Ev.Validation_fail (-1) (-1) 0;
        Fallback
      end
    else if not (Olock.try_upgrade_to_write leaf.lock lease) then begin
      Flight.record Flight.Ev.Upgrade_fail (-1) (-1) 0;
      Fallback
    end
    else if leaf.nkeys >= t.capacity then begin
      Flight.record Flight.Ev.Split (-1) (-1) 0;
      split t leaf;
      Olock.end_write leaf.lock;
      Fallback
    end
    else begin
      insert_in_leaf leaf idx key;
      Olock.end_write leaf.lock;
      Done true
    end
  end

let insert_op ?hints t key =
  ensure_root t;
  match hints with
  | None -> fst (insert_slow t key)
  | Some h ->
    let attempt =
      if h.insert_leaf == sentinel then Fallback
      else try_insert_at t h.insert_leaf key
    in
    (match attempt with
    | Done b ->
      h.hits <- h.hits + 1;
      run_hit h;
      Telemetry.bump Telemetry.Counter.Btree_hint_hits;
      b
    | Fallback ->
      h.misses <- h.misses + 1;
      run_break h;
      Telemetry.bump Telemetry.Counter.Btree_hint_misses;
      let inserted, leaf = insert_slow t key in
      if leaf != sentinel then h.insert_leaf <- leaf;
      inserted)

let insert ?hints t key =
  let t0 = Telemetry.hist_start Telemetry.Hist.Btree_insert_ns in
  let r = insert_op ?hints t key in
  Telemetry.hist_end Telemetry.Hist.Btree_insert_ns t0;
  r

(* ---------------- batch insertion (sorted runs) ---------------- *)

(* Same algorithm as [Btree.Make.insert_batch] (see btree.ml for the full
   commentary): one descent write-locks the target leaf and carries down
   the exclusive upper bound of the leaf's range; the run is consumed up to
   that bound with two-blit gap splices and in-place multi-splits.  The
   bound snapshot stays authoritative while the write permit is held,
   because a node's range only shrinks when that node itself splits. *)

type batch_target = Bt_dup | Bt_leaf of node * int array option

(* Pessimistic twin of [batch_locate]; see [Btree.Make.batch_pessimistic]. *)
let rec batch_pessimistic t key =
  let rec acquire_root () =
    let cur = t.root in
    Olock.start_write cur.lock;
    if t.root == cur then cur
    else begin
      Olock.abort_write cur.lock;
      acquire_root ()
    end
  in
  let rec go cur hi =
    let n = cur.nkeys in
    let idx, found = search t cur.keys n key in
    if not (is_leaf cur) then
      if found then begin
        Olock.abort_write cur.lock;
        Bt_dup
      end
      else begin
        let next = cur.children.(idx) in
        let hi = if idx < n then Some cur.keys.(idx) else hi in
        let v = Olock.version next.lock in
        Olock.abort_write cur.lock;
        if v land 1 = 0 && Olock.try_upgrade_to_write next.lock v then
          go next hi
        else batch_pessimistic t key
      end
    else Bt_leaf (cur, hi)
  in
  go (acquire_root ()) None

let batch_fallback t key =
  Telemetry.bump Telemetry.Counter.Btree_pessimistic_fallbacks;
  Flight.record Flight.Ev.Fallback !restart_budget_v 0 0;
  let t0 = Telemetry.hist_time () in
  let r = batch_pessimistic t key in
  Telemetry.hist_end Telemetry.Hist.Btree_fallback_ns t0;
  r

let rec batch_locate t key attempts =
  if attempts >= !restart_budget_v then batch_fallback t key
  else begin
    let root_lease = Olock.start_read t.root_lock in
    let cur = t.root in
    let cur_lease = Olock.start_read cur.lock in
    if Olock.end_read t.root_lock root_lease then
      batch_descend t key cur cur_lease None 0 (-1) attempts
    else batch_restart t key attempts
  end

and batch_restart t key attempts =
  Telemetry.bump Telemetry.Counter.Btree_restarts;
  Flight.record Flight.Ev.Restart (attempts + 1) 0 0;
  batch_locate t key (attempts + 1)

and batch_descend t key cur cur_lease hi level bucket attempts =
  Chaos.yield_if Chaos.Point.Btree_descent_yield;
  let n = clamped_nkeys cur in
  let idx, found = search t cur.keys n key in
  if not (is_leaf cur) then
    if found then
      if Olock.valid cur.lock cur_lease then Bt_dup
      else begin
        Flight.record Flight.Ev.Validation_fail level bucket 0;
        batch_restart t key attempts
      end
    else begin
      let next = cur.children.(idx) in
      let hi = if idx < n then Some cur.keys.(idx) else hi in
      let bucket' = if level = 0 then idx else bucket in
      if not (Olock.valid cur.lock cur_lease) then begin
        Flight.record Flight.Ev.Validation_fail level bucket 0;
        batch_restart t key attempts
      end
      else begin
        let next_lease = Olock.start_read next.lock in
        if not (Olock.valid cur.lock cur_lease) then begin
          Flight.record Flight.Ev.Validation_fail level bucket 0;
          batch_restart t key attempts
        end
        else batch_descend t key next next_lease hi (level + 1) bucket' attempts
      end
    end
  else if not (Olock.try_upgrade_to_write cur.lock cur_lease) then begin
    Flight.record Flight.Ev.Upgrade_fail level bucket 0;
    batch_restart t key attempts
  end
  else Bt_leaf (cur, hi)

let batch_locate t key = batch_locate t key 0

let batch_fill t run i0 stop_idx leaf limit0 =
  let fresh = ref 0 in
  let i = ref i0 in
  let limit = ref limit0 in
  let stop = ref false in
  while (not !stop) && !i < stop_idx do
    let key = run.(!i) in
    let cmp_limit =
      match !limit with None -> -1 | Some b -> compare_keys t key b
    in
    if cmp_limit = 0 then incr i (* equals a live separator: duplicate *)
    else if cmp_limit > 0 then stop := true
    else begin
      let nk = leaf.nkeys in
      let idx, found = search t leaf.keys nk key in
      if found then incr i
      else if nk >= t.capacity then begin
        Flight.record Flight.Ev.Split (-1) (-1) 0;
        let median = split_returning t leaf in
        if compare_keys t key median < 0 then limit := Some median
        else stop := true (* the rest of the run re-descends *)
      end
      else begin
        let gap_hi = if idx < nk then Some leaf.keys.(idx) else !limit in
        let in_gap k =
          match gap_hi with None -> true | Some b -> compare_keys t k b < 0
        in
        let room = t.capacity - nk in
        let j = ref (!i + 1) in
        while
          !j - !i < room && !j < stop_idx
          && compare_keys t run.(!j - 1) run.(!j) < 0
          && in_gap run.(!j)
        do
          incr j
        done;
        let glen = !j - !i in
        Leaf_pack.splice ~keys:leaf.keys ~nkeys:nk ~at:idx ~src:run
          ~src_pos:!i ~len:glen;
        leaf.nkeys <- nk + glen;
        fresh := !fresh + glen;
        Telemetry.bump Telemetry.Counter.Btree_batch_splices;
        i := !j
      end
    end
  done;
  Olock.end_write leaf.lock;
  (!i, !fresh)

let insert_batch_op ?hints t run pos len =
  let stop_idx = pos + len in
  for k = pos + 1 to stop_idx - 1 do
    if compare_keys t run.(k - 1) run.(k) > 0 then
      invalid_arg "Btree_tuples.insert_batch: run not sorted"
  done;
  if len = 0 then 0
  else begin
    ensure_root t;
    Telemetry.add Telemetry.Counter.Btree_batch_keys len;
    let fresh = ref 0 in
    let i = ref pos in
    while !i < stop_idx do
      let key = run.(!i) in
      let hinted =
        match hints with
        | Some h when h.insert_leaf != sentinel ->
          let leaf = h.insert_leaf in
          let lease = Olock.start_read leaf.lock in
          let nk = clamped_nkeys leaf in
          if
            covers t leaf nk key
            && Olock.valid leaf.lock lease
            && Olock.try_upgrade_to_write leaf.lock lease
          then begin
            let nk = leaf.nkeys in
            let limit =
              if leaf.rightmost then None else Some leaf.keys.(nk - 1)
            in
            Some (leaf, limit)
          end
          else None
        | _ -> None
      in
      let target =
        match hinted with
        | Some tgt ->
          (match hints with
          | Some h ->
            h.hits <- h.hits + 1;
            run_hit h;
            Telemetry.bump Telemetry.Counter.Btree_hint_hits
          | None -> ());
          Some tgt
        | None ->
          (match hints with
          | Some h ->
            h.misses <- h.misses + 1;
            run_break h;
            Telemetry.bump Telemetry.Counter.Btree_hint_misses
          | None -> ());
          (match batch_locate t key with
          | Bt_dup ->
            incr i;
            None
          | Bt_leaf (leaf, hi) -> Some (leaf, hi))
      in
      match target with
      | None -> ()
      | Some (leaf, limit) ->
        Telemetry.bump Telemetry.Counter.Btree_batch_leaves;
        let i', f = batch_fill t run !i stop_idx leaf limit in
        (match hints with Some h -> h.insert_leaf <- leaf | None -> ());
        i := i';
        fresh := !fresh + f
    done;
    !fresh
  end

let insert_batch ?hints ?(pos = 0) ?len t run =
  let n = Array.length run in
  let len = match len with Some l -> l | None -> n - pos in
  if pos < 0 || len < 0 || pos + len > n then
    invalid_arg "Btree_tuples.insert_batch: invalid range";
  let t0 = Telemetry.hist_start Telemetry.Hist.Btree_batch_ns in
  let r = insert_batch_op ?hints t run pos len in
  Telemetry.hist_end Telemetry.Hist.Btree_batch_ns t0;
  r

(* ---------------- queries ---------------- *)

let mem_op ?hints t key =
  let slow () =
    let rec go node last_leaf =
      if node == sentinel then (false, last_leaf)
      else
        let n = clamped_nkeys node in
        let idx, found = search t node.keys n key in
        if found then (true, if is_leaf node then node else last_leaf)
        else if is_leaf node then (false, node)
        else go node.children.(idx) last_leaf
    in
    go t.root sentinel
  in
  match hints with
  | None -> fst (slow ())
  | Some h ->
    let leaf = h.find_leaf in
    let nk = if leaf == sentinel then 0 else clamped_nkeys leaf in
    if nk > 0 && covers t leaf nk key then begin
      h.hits <- h.hits + 1;
      run_hit h;
      Telemetry.bump Telemetry.Counter.Btree_hint_hits;
      snd (search t leaf.keys nk key)
    end
    else begin
      h.misses <- h.misses + 1;
      run_break h;
      Telemetry.bump Telemetry.Counter.Btree_hint_misses;
      let r, l = slow () in
      if l != sentinel then h.find_leaf <- l;
      r
    end

let mem ?hints t key =
  let t0 = Telemetry.hist_start Telemetry.Hist.Btree_find_ns in
  let r = mem_op ?hints t key in
  Telemetry.hist_end Telemetry.Hist.Btree_find_ns t0;
  r

let is_empty t = t.root == sentinel || (t.root.nkeys = 0 && is_leaf t.root)

let iter f t =
  let rec go node =
    if node != sentinel then
      if is_leaf node then
        for i = 0 to node.nkeys - 1 do
          f node.keys.(i)
        done
      else begin
        for i = 0 to node.nkeys - 1 do
          go node.children.(i);
          f node.keys.(i)
        done;
        go node.children.(node.nkeys)
      end
  in
  go t.root

let cardinal t =
  let n = ref 0 in
  iter (fun _ -> incr n) t;
  !n

let to_list t =
  let acc = ref [] in
  iter (fun k -> acc := k :: !acc) t;
  List.rev !acc

exception Stop

let iter_from_plain ?visited ~strict f t key =
  let emit k = if not (f k) then raise Stop in
  let rec emit_all node =
    if node != sentinel then
      if is_leaf node then
        for i = 0 to node.nkeys - 1 do
          emit node.keys.(i)
        done
      else begin
        for i = 0 to node.nkeys - 1 do
          emit_all node.children.(i);
          emit node.keys.(i)
        done;
        emit_all node.children.(node.nkeys)
      end
  in
  let rec scan node =
    if node != sentinel then begin
      let n = clamped_nkeys node in
      let idx, found = search t node.keys n key in
      if is_leaf node then begin
        (match visited with Some r -> r := node | None -> ());
        let idx = if strict && found then idx + 1 else idx in
        for i = idx to n - 1 do
          emit node.keys.(i)
        done
      end
      else begin
        scan node.children.(idx);
        let start = if strict && found then idx + 1 else idx in
        (if strict && found && idx < n then emit_all node.children.(idx + 1));
        for i = start to n - 1 do
          emit node.keys.(i);
          emit_all node.children.(i + 1)
        done
      end
    end
  in
  try scan t.root with Stop -> ()

let iter_from ?hints f t key =
  match hints with
  | None -> iter_from_plain ~strict:false f t key
  | Some h ->
    let leaf = h.lb_leaf in
    let nk = if leaf == sentinel then 0 else clamped_nkeys leaf in
    let usable =
      nk > 0
      && (leaf.leftmost || compare_keys t leaf.keys.(0) key <= 0)
      && (leaf.rightmost || compare_keys t key leaf.keys.(nk - 1) <= 0)
    in
    if usable then begin
      h.hits <- h.hits + 1;
      run_hit h;
      Telemetry.bump Telemetry.Counter.Btree_hint_hits;
      let idx, _ = search t leaf.keys nk key in
      let continue = ref true in
      let i = ref idx in
      while !continue && !i < nk do
        continue := f leaf.keys.(!i);
        incr i
      done;
      if !continue && not leaf.rightmost then
        iter_from_plain ~strict:true f t leaf.keys.(nk - 1)
    end
    else begin
      h.misses <- h.misses + 1;
      run_break h;
      Telemetry.bump Telemetry.Counter.Btree_hint_misses;
      let visited = ref sentinel in
      iter_from_plain ~visited ~strict:false f t key;
      if !visited != sentinel then h.lb_leaf <- !visited
    end

let check_invariants t =
  let fail fmt = Printf.ksprintf failwith fmt in
  if not (is_empty t) then begin
    let leaf_depth = ref (-1) in
    let rec go node depth lo hi =
      let n = node.nkeys in
      if n < 1 then fail "node with %d keys" n;
      if n > t.capacity then fail "node overflow";
      for i = 0 to n - 2 do
        if compare_keys t node.keys.(i) node.keys.(i + 1) >= 0 then
          fail "keys out of order"
      done;
      (match lo with
      | Some l ->
        if compare_keys t l node.keys.(0) >= 0 then fail "lower bound violated"
      | None -> ());
      (match hi with
      | Some h ->
        if compare_keys t node.keys.(n - 1) h >= 0 then
          fail "upper bound violated"
      | None -> ());
      if is_leaf node then begin
        if !leaf_depth = -1 then leaf_depth := depth
        else if !leaf_depth <> depth then fail "leaves at different depths";
        let is_first = lo = None and is_last = hi = None in
        if node.leftmost <> is_first then fail "leftmost flag wrong";
        if node.rightmost <> is_last then fail "rightmost flag wrong"
      end
      else
        for i = 0 to n do
          let c = node.children.(i) in
          if c == sentinel then fail "sentinel child";
          (match c.parent with
          | Some p when p == node -> ()
          | _ -> fail "broken parent pointer");
          if c.position <> i then fail "broken position";
          let lo = if i = 0 then lo else Some node.keys.(i - 1) in
          let hi = if i = n then hi else Some node.keys.(i) in
          go c (depth + 1) lo hi
        done
    in
    (match t.root.parent with
    | None -> ()
    | Some _ -> fail "root has a parent");
    go t.root 0 None None
  end

(* Full structural report; root-only tree has height 1, like the functor's
   [stats].  Quiescent traversal. *)
let shape t =
  if is_empty t then Tree_shape.empty ~capacity:t.capacity
  else begin
    let rec depth n = if is_leaf n then 1 else 1 + depth n.children.(0) in
    let h = depth t.root in
    let level_nodes = Array.make h 0 in
    let level_keys = Array.make h 0 in
    let fill_deciles = Array.make 10 0 in
    let elements = ref 0 and nodes = ref 0 and leaves = ref 0 in
    let rec go n d =
      incr nodes;
      elements := !elements + n.nkeys;
      level_nodes.(d) <- level_nodes.(d) + 1;
      level_keys.(d) <- level_keys.(d) + n.nkeys;
      let dec = n.nkeys * 10 / t.capacity in
      let dec = if dec > 9 then 9 else dec in
      fill_deciles.(dec) <- fill_deciles.(dec) + 1;
      if is_leaf n then incr leaves
      else
        for i = 0 to n.nkeys do
          go n.children.(i) (d + 1)
        done
    in
    go t.root 0;
    {
      Tree_shape.elements = !elements;
      nodes = !nodes;
      leaves = !leaves;
      height = h;
      capacity = t.capacity;
      fill = float_of_int !elements /. float_of_int (!nodes * t.capacity);
      level_nodes;
      level_keys;
      fill_deciles;
    }
  end

let compare_tuples = compare_keys

(* ---------------- order queries ---------------- *)

let lower_bound ?hints t key =
  let r = ref None in
  iter_from ?hints
    (fun k ->
      r := Some k;
      false)
    t key;
  !r

let upper_bound ?hints t key =
  let r = ref None in
  iter_from ?hints
    (fun k ->
      if compare_keys t k key > 0 then begin
        r := Some k;
        false
      end
      else true)
    t key;
  !r

(* ---------------- separators (merge partitioning) ---------------- *)

(* Whole levels top-down, so the result is always in ascending order; thin
   evenly when one more level overshoots [limit].  Mirrors
   [Btree.Make.separators]. *)
let separators t ~limit =
  if limit <= 0 || is_empty t then [||]
  else begin
    let rec level nodes =
      let keys =
        List.concat_map
          (fun n -> Array.to_list (Array.sub n.keys 0 n.nkeys))
          nodes
      in
      if List.length keys >= limit || is_leaf (List.hd nodes) then keys
      else
        level
          (List.concat_map
             (fun n -> List.init (n.nkeys + 1) (fun i -> n.children.(i)))
             nodes)
    in
    let keys = Array.of_list (level [ t.root ]) in
    let n = Array.length keys in
    if n <= limit then keys
    else Array.init limit (fun i -> keys.(i * n / limit))
  end

(* ---------------- sessions ---------------- *)

type session = { s_tree : t; s_hints : hints }

let session t = { s_tree = t; s_hints = make_hints () }
let s_tree s = s.s_tree
let s_hints s = s.s_hints
let s_insert s key = insert ~hints:s.s_hints s.s_tree key

let s_insert_batch ?pos ?len s run =
  insert_batch ~hints:s.s_hints ?pos ?len s.s_tree run

let s_mem s key = mem ~hints:s.s_hints s.s_tree key
let s_iter_from f s key = iter_from ~hints:s.s_hints f s.s_tree key
let s_lower_bound s key = lower_bound ~hints:s.s_hints s.s_tree key
let s_upper_bound s key = upper_bound ~hints:s.s_hints s.s_tree key

(* ---------------- storage-backend witness ---------------- *)

module As_storage (C : sig
  val arity : int
  val order : int array
end) : Storage_intf.S with type elt = int array and type t = t = struct
  type elt = int array
  type nonrec t = t

  let create () = create ~arity:C.arity ~order:C.order ()
  let insert t k = insert t k
  let insert_batch t run = insert_batch t run
  let mem t k = mem t k
  let lower_bound t k = lower_bound t k
  let upper_bound t k = upper_bound t k
  let iter = iter
  let iter_from f t k = iter_from f t k
  let cardinal = cardinal
  let is_empty = is_empty
  let ordered = true
  let shape t = Some (shape t)
end

(* ---------------- public unhinted surface ---------------- *)

(* The [?hints] optional arguments are not exported: hinted operation goes
   through a per-domain session, everything else through these unhinted
   rebinds (which the .mli exposes). *)
let insert t key = insert t key
let insert_batch ?pos ?len t run = insert_batch ?pos ?len t run
let mem t key = mem t key
let lower_bound t key = lower_bound t key
let upper_bound t key = upper_bound t key
let iter_from f t key = iter_from f t key
