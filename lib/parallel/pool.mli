(** A fixed-size pool of worker domains.

    This is the substrate replacing OpenMP in the paper's benchmarks: a pool
    of [size] workers (the calling domain plus [size - 1] spawned domains)
    that execute fork-join parallel loops.

    The strong-scaling benchmarks of the paper (Fig. 4, Fig. 5, Table 3)
    create one pool per thread count and partition the input among the
    workers, exactly like the paper's OpenMP loops with static scheduling
    and thread pinning. *)

type t

type failure = {
  f_worker : int;  (** worker index that raised *)
  f_exn : exn;
  f_backtrace : string;
      (** backtrace captured on the failing domain (empty unless backtrace
          recording is on, e.g. [OCAMLRUNPARAM=b]) *)
}
(** One captured worker failure. *)

exception Pool_failure of failure list
(** Aggregated job failure, raised on the caller at the join.  Worker
    exceptions never kill their domain: each is captured where it happened,
    the surviving workers drain the job normally, and the caller receives
    every capture (sorted by worker index) in one exception.  The pool
    remains usable afterwards.

    Every aggregation is also reported to
    [Telemetry_server.Health.note_pool_failure] (as are watchdog trips to
    [note_watchdog_trip]), so a live [/health] endpoint degrades for the
    window in which they happened — whether or not the caller contains the
    exception. *)

val create : int -> t
(** [create n] is a pool of [n] workers in total ([n - 1] spawned domains).
    [n] must be at least 1; [create 1] spawns nothing and runs everything on
    the caller. *)

val size : t -> int
(** Number of workers, including the calling domain. *)

val run : ?label:string -> t -> (int -> unit) -> unit
(** [run p f] executes [f w] once on each worker [w] in [0 .. size - 1]
    concurrently (worker [0] is the calling domain) and returns when all
    calls have finished.

    When telemetry is enabled (see lib/telemetry) the job records per-worker
    busy time and, under tracing, emits one span per worker plus a job span
    named [label] (default ["job"]) carrying the load-imbalance summary
    ([max_busy / avg_busy]).

    @raise Pool_failure if any worker raised: all captures are aggregated
    and delivered after every surviving worker has finished the job, so a
    fault is contained to the job that suffered it. *)

val set_watchdog : t -> int -> unit
(** [set_watchdog p ns] arms a per-job deadline: any subsequent job whose
    wall time exceeds [ns] nanoseconds bumps the
    [Telemetry.Counter.Pool_watchdog_trips] counter and emits a trace
    instant at the join.  The fork-join protocol cannot interrupt a stuck
    worker, so this is a flag, not a kill switch — its purpose is making a
    hung or overlong job visible in stats and traces instead of silently
    stretching the run.  [set_watchdog p 0] disarms (the default). *)

val parallel_for : ?label:string -> t -> ?chunk:int -> int -> int -> (int -> unit) -> unit
(** [parallel_for p lo hi f] executes [f i] for every [lo <= i < hi], work
    distributed dynamically in chunks of [chunk] (default: a heuristic based
    on the iteration count and pool size).  Corresponds to OpenMP
    [schedule(dynamic, chunk)]. *)

val parallel_for_workers :
  ?label:string -> t -> ?chunk:int -> int -> int -> (int -> int -> unit) -> unit
(** [parallel_for_workers p lo hi f] is {!parallel_for} with the executing
    worker made visible: [f w i] runs iteration [i] on worker
    [w < size p].  Dynamic scheduling with per-worker state — the shape of
    the parallel structural merge, where each worker reuses one hint
    record across however many partitions it ends up stealing. *)

val parallel_for_ranges :
  ?label:string -> t -> int -> int -> (int -> int -> int -> unit) -> unit
(** [parallel_for_ranges p lo hi f] partitions [\[lo, hi)] into [size]
    contiguous ranges and calls [f w rlo rhi] on worker [w] with its range.
    Corresponds to OpenMP [schedule(static)]; this is the NUMA-friendly
    partitioning used for Fig. 4c of the paper. *)

val parallel_reduce :
  ?label:string -> t -> int -> int -> init:(unit -> 'a) -> body:('a -> int -> 'a) ->
  combine:('a -> 'a -> 'a) -> 'a
(** [parallel_reduce p lo hi ~init ~body ~combine] folds [body] over
    [\[lo, hi)] with one accumulator per worker (seeded by [init ()]) and
    combines the per-worker results left-to-right in worker order.
    Corresponds to an OpenMP user-defined reduction — the mechanism behind
    the paper's "reduction btree" contestant. *)

val shutdown : t -> unit
(** Joins all spawned domains.  The pool must not be used afterwards.
    Idempotent. *)

val with_pool : int -> (t -> 'a) -> 'a
(** [with_pool n f] runs [f] with a fresh pool of [n] workers and guarantees
    shutdown, including on exceptions. *)

val recommended_workers : unit -> int
(** The number of hardware execution contexts available, as reported by
    [Domain.recommended_domain_count]. *)
