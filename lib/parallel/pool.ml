(* Fork-join pool of worker domains.

   Spawned workers block on a mutex/condition pair waiting for a job
   generation to be published; the caller participates as worker 0.  A job is
   a closure [int -> unit] applied to the worker index.  Completion is
   signalled by a countdown guarded by the same mutex.

   The pool is deliberately simple (no work stealing): the paper's benchmarks
   use statically partitioned OpenMP loops, which [parallel_for_ranges]
   mirrors exactly, and dynamically chunked loops, which [parallel_for]
   implements with a shared atomic cursor. *)

type job = int -> unit

type t = {
  size : int;
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable generation : int;          (* incremented per published job *)
  mutable job : job option;
  mutable pending : int;             (* workers still running current job *)
  mutable stop : bool;
  mutable error : exn option;        (* first exception raised by a worker *)
  mutable domains : unit Domain.t list;
  mutable alive : bool;
}

let recommended_workers () = Domain.recommended_domain_count ()

let record_error p e =
  Mutex.lock p.mutex;
  if p.error = None then p.error <- Some e;
  Mutex.unlock p.mutex

let worker_loop p w =
  let my_generation = ref 0 in
  let rec loop () =
    Mutex.lock p.mutex;
    while (not p.stop) && p.generation = !my_generation do
      Condition.wait p.work_ready p.mutex
    done;
    if p.stop then Mutex.unlock p.mutex
    else begin
      my_generation := p.generation;
      let job =
        match p.job with
        | Some j -> j
        | None -> assert false
      in
      Mutex.unlock p.mutex;
      (try job w with e -> record_error p e);
      Mutex.lock p.mutex;
      p.pending <- p.pending - 1;
      if p.pending = 0 then Condition.broadcast p.work_done;
      Mutex.unlock p.mutex;
      loop ()
    end
  in
  loop ()

let create n =
  if n < 1 then invalid_arg "Pool.create: size must be >= 1";
  let p =
    {
      size = n;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      generation = 0;
      job = None;
      pending = 0;
      stop = false;
      error = None;
      domains = [];
      alive = true;
    }
  in
  let spawn w = Domain.spawn (fun () -> worker_loop p w) in
  p.domains <- List.init (n - 1) (fun i -> spawn (i + 1));
  p

let size p = p.size

let run_plain p f =
  if p.size = 1 then f 0
  else begin
    Mutex.lock p.mutex;
    p.job <- Some f;
    p.pending <- p.size - 1;
    p.generation <- p.generation + 1;
    p.error <- None;
    Condition.broadcast p.work_ready;
    Mutex.unlock p.mutex;
    (* The caller is worker 0. *)
    (try f 0 with e -> record_error p e);
    Mutex.lock p.mutex;
    while p.pending > 0 do
      Condition.wait p.work_done p.mutex
    done;
    let err = p.error in
    p.job <- None;
    Mutex.unlock p.mutex;
    match err with None -> () | Some e -> raise e
  end

(* Instrumented wrapper around [run_plain]: per-worker busy time (recorded
   by each worker on its own domain: a plain store into a caller-owned
   array, published to the caller by the join) and a job span carrying the
   load-imbalance summary.  The whole wrapper is skipped when telemetry is
   off, so the plain path pays one load + branch per job. *)
let run ?(label = "job") p f =
  if not p.alive then invalid_arg "Pool.run: pool has been shut down";
  if not (Telemetry.enabled ()) then run_plain p f
  else begin
    let t0 = Telemetry.now_ns () in
    let busy = Array.make p.size 0 in
    let g w =
      let s0 = Telemetry.now_ns () in
      let finish () =
        busy.(w) <- Telemetry.now_ns () - s0;
        Telemetry.span_end
          ~args:[ ("worker", Telemetry.A_int w) ]
          ~cat:"pool"
          (label ^ ".worker")
          s0
      in
      match f w with
      | () -> finish ()
      | exception e ->
        finish ();
        raise e
    in
    run_plain p g;
    let wall = Telemetry.now_ns () - t0 in
    let total_busy = Array.fold_left ( + ) 0 busy in
    let max_busy = Array.fold_left max 0 busy in
    let avg_busy = total_busy / p.size in
    Telemetry.bump Telemetry.Counter.Pool_jobs;
    Telemetry.add Telemetry.Counter.Pool_busy_ns total_busy;
    Telemetry.add Telemetry.Counter.Pool_wall_ns (wall * p.size);
    Telemetry.hist_record Telemetry.Hist.Pool_job_ns wall;
    Telemetry.span_end
      ~args:
        [
          ("workers", Telemetry.A_int p.size);
          ("max_busy_us", Telemetry.A_int (max_busy / 1000));
          ("avg_busy_us", Telemetry.A_int (avg_busy / 1000));
          ( "imbalance",
            Telemetry.A_float
              (if avg_busy = 0 then 1.0
               else float_of_int max_busy /. float_of_int avg_busy) );
        ]
      ~cat:"pool" label t0
  end

let parallel_for_workers ?label p ?chunk lo hi f =
  if hi > lo then begin
    let n = hi - lo in
    let chunk =
      match chunk with
      | Some c when c >= 1 -> c
      | Some _ -> invalid_arg "Pool.parallel_for: chunk must be >= 1"
      | None -> max 1 (n / (p.size * 8))
    in
    let cursor = Atomic.make lo in
    let work w =
      let rec take () =
        let start = Atomic.fetch_and_add cursor chunk in
        if start < hi then begin
          let stop = min hi (start + chunk) in
          for i = start to stop - 1 do
            f w i
          done;
          take ()
        end
      in
      take ()
    in
    run ?label p work
  end

let parallel_for ?label p ?chunk lo hi f =
  parallel_for_workers ?label p ?chunk lo hi (fun _w i -> f i)

let partition ~workers ~lo ~hi w =
  (* Contiguous partition of [lo, hi) into [workers] near-equal ranges. *)
  let n = hi - lo in
  let base = n / workers and extra = n mod workers in
  let start = lo + (w * base) + min w extra in
  let len = base + if w < extra then 1 else 0 in
  (start, start + len)

let parallel_for_ranges ?label p lo hi f =
  if hi > lo then
    run ?label p (fun w ->
        let rlo, rhi = partition ~workers:p.size ~lo ~hi w in
        if rhi > rlo then f w rlo rhi)

let parallel_reduce ?label p lo hi ~init ~body ~combine =
  if hi <= lo then init ()
  else begin
    let results = Array.make p.size None in
    run ?label p (fun w ->
        let rlo, rhi = partition ~workers:p.size ~lo ~hi w in
        let acc = ref (init ()) in
        for i = rlo to rhi - 1 do
          acc := body !acc i
        done;
        results.(w) <- Some !acc);
    let acc = ref None in
    Array.iter
      (fun r ->
        match (!acc, r) with
        | None, r -> acc := r
        | Some a, Some b -> acc := Some (combine a b)
        | Some _, None -> ())
      results;
    match !acc with Some a -> a | None -> init ()
  end

let shutdown p =
  if p.alive then begin
    p.alive <- false;
    Mutex.lock p.mutex;
    p.stop <- true;
    Condition.broadcast p.work_ready;
    Mutex.unlock p.mutex;
    List.iter Domain.join p.domains;
    p.domains <- []
  end

let with_pool n f =
  let p = create n in
  match f p with
  | x ->
    shutdown p;
    x
  | exception e ->
    shutdown p;
    raise e
