(* Fork-join pool of worker domains.

   Spawned workers block on a mutex/condition pair waiting for a job
   generation to be published; the caller participates as worker 0.  A job is
   a closure [int -> unit] applied to the worker index.  Completion is
   signalled by a countdown guarded by the same mutex.

   The pool is deliberately simple (no work stealing): the paper's benchmarks
   use statically partitioned OpenMP loops, which [parallel_for_ranges]
   mirrors exactly, and dynamically chunked loops, which [parallel_for]
   implements with a shared atomic cursor. *)

type job = int -> unit

(* Fault containment: a worker exception never kills its domain.  Each
   failure is captured where it happened — worker id, exception, formatted
   backtrace — the remaining workers drain the job normally, and the caller
   re-raises everything at the join as one aggregated [Pool_failure].
   Aggregating (rather than keeping the first exception) matters under
   fault injection: when several domains fail in the same job the report
   must show all of them, or a chaos run can mistake a systemic failure for
   a one-off. *)
type failure = {
  f_worker : int;
  f_exn : exn;
  f_backtrace : string;
}

exception Pool_failure of failure list

let () =
  Printexc.register_printer (function
    | Pool_failure fs ->
      Some
        (Printf.sprintf "Pool_failure [%s]"
           (String.concat "; "
              (List.map
                 (fun f ->
                   Printf.sprintf "worker %d: %s" f.f_worker
                     (Printexc.to_string f.f_exn))
                 fs)))
    | _ -> None)

type t = {
  size : int;
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable generation : int;          (* incremented per published job *)
  mutable job : job option;
  mutable pending : int;             (* workers still running current job *)
  mutable stop : bool;
  mutable failures : failure list;   (* per-worker captures, newest first *)
  mutable deadline_ns : int;         (* watchdog; 0 = off *)
  mutable domains : unit Domain.t list;
  mutable alive : bool;
}

let recommended_workers () = Domain.recommended_domain_count ()

let record_failure p w e =
  (* capture the backtrace on the failing domain, before any other frame
     overwrites it *)
  let bt = Printexc.get_backtrace () in
  Mutex.lock p.mutex;
  p.failures <- { f_worker = w; f_exn = e; f_backtrace = bt } :: p.failures;
  Mutex.unlock p.mutex

let worker_loop p w =
  let my_generation = ref 0 in
  let rec loop () =
    Mutex.lock p.mutex;
    while (not p.stop) && p.generation = !my_generation do
      Condition.wait p.work_ready p.mutex
    done;
    if p.stop then Mutex.unlock p.mutex
    else begin
      my_generation := p.generation;
      let job =
        match p.job with
        | Some j -> j
        | None -> assert false
      in
      Mutex.unlock p.mutex;
      (try
         Chaos.inject Chaos.Point.Pool_job_raise;
         job w
       with e -> record_failure p w e);
      Mutex.lock p.mutex;
      p.pending <- p.pending - 1;
      if p.pending = 0 then Condition.broadcast p.work_done;
      Mutex.unlock p.mutex;
      loop ()
    end
  in
  loop ()

let create n =
  if n < 1 then invalid_arg "Pool.create: size must be >= 1";
  let p =
    {
      size = n;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      generation = 0;
      job = None;
      pending = 0;
      stop = false;
      failures = [];
      deadline_ns = 0;
      domains = [];
      alive = true;
    }
  in
  let spawn w = Domain.spawn (fun () -> worker_loop p w) in
  p.domains <- List.init (n - 1) (fun i -> spawn (i + 1));
  p

let size p = p.size

let set_watchdog p ns =
  if ns < 0 then invalid_arg "Pool.set_watchdog: deadline must be >= 0";
  p.deadline_ns <- ns

(* Join-side watchdog: the fork-join protocol cannot interrupt a stuck
   worker, but it can flag the job.  Checked once per job at the join, so
   the cost is one clock read when armed and nothing when not. *)
let watchdog_check p t0 =
  if p.deadline_ns > 0 then begin
    let wall = Telemetry.now_ns () - t0 in
    if wall > p.deadline_ns then begin
      Telemetry.bump Telemetry.Counter.Pool_watchdog_trips;
      Telemetry_server.Health.note_watchdog_trip ();
      Flight.record Flight.Ev.Watchdog (wall / 1_000_000)
        (p.deadline_ns / 1_000_000)
        0;
      Telemetry.instant
        ~args:
          [
            ("wall_ms", Telemetry.A_int (wall / 1_000_000));
            ("deadline_ms", Telemetry.A_int (p.deadline_ns / 1_000_000));
          ]
        ~cat:"pool" "pool.watchdog_trip"
    end
  end

let raise_failures fs =
  let fs =
    List.sort (fun a b -> compare a.f_worker b.f_worker) fs
  in
  (* health plane: failures are aggregated here and (normally) contained
     by the caller's retry/fallback logic; the live /health endpoint
     degrades for one window per aggregation *)
  Telemetry_server.Health.note_pool_failure ~workers:(List.length fs);
  raise (Pool_failure fs)

let run_plain p f =
  if p.size = 1 then begin
    let t0 = if p.deadline_ns > 0 then Telemetry.now_ns () else 0 in
    (try
       Chaos.inject Chaos.Point.Pool_job_raise;
       f 0
     with e -> record_failure p 0 e);
    watchdog_check p t0;
    let fs = p.failures in
    p.failures <- [];
    if fs <> [] then raise_failures fs
  end
  else begin
    let t0 = if p.deadline_ns > 0 then Telemetry.now_ns () else 0 in
    Mutex.lock p.mutex;
    p.job <- Some f;
    p.pending <- p.size - 1;
    p.generation <- p.generation + 1;
    p.failures <- [];
    Condition.broadcast p.work_ready;
    Mutex.unlock p.mutex;
    (* The caller is worker 0. *)
    (try
       Chaos.inject Chaos.Point.Pool_job_raise;
       f 0
     with e -> record_failure p 0 e);
    Mutex.lock p.mutex;
    while p.pending > 0 do
      Condition.wait p.work_done p.mutex
    done;
    let fs = p.failures in
    p.failures <- [];
    p.job <- None;
    Mutex.unlock p.mutex;
    watchdog_check p t0;
    if fs <> [] then raise_failures fs
  end

(* Instrumented wrapper around [run_plain]: per-worker busy time (recorded
   by each worker on its own domain: a plain store into a caller-owned
   array, published to the caller by the join) and a job span carrying the
   load-imbalance summary.  The whole wrapper is skipped when telemetry is
   off, so the plain path pays one load + branch per job. *)
let run ?(label = "job") p f =
  if not p.alive then invalid_arg "Pool.run: pool has been shut down";
  (* Flight-recorder job boundaries: the start mark survives into a crash
     dump even when the job dies (no end mark is then recorded — a
     started-but-never-ended job is the post-mortem signature of the
     failure).  One load + branch each when the recorder is off. *)
  Flight.record Flight.Ev.Pool_job_start p.size 0 0;
  let ft0 = if Flight.enabled () then Telemetry.now_ns () else 0 in
  (if not (Telemetry.enabled ()) then run_plain p f
  else begin
    let t0 = Telemetry.now_ns () in
    let busy = Array.make p.size 0 in
    let g w =
      let s0 = Telemetry.now_ns () in
      let finish () =
        busy.(w) <- Telemetry.now_ns () - s0;
        Telemetry.span_end
          ~args:[ ("worker", Telemetry.A_int w) ]
          ~cat:"pool"
          (label ^ ".worker")
          s0
      in
      match f w with
      | () -> finish ()
      | exception e ->
        finish ();
        raise e
    in
    run_plain p g;
    let wall = Telemetry.now_ns () - t0 in
    let total_busy = Array.fold_left ( + ) 0 busy in
    let max_busy = Array.fold_left max 0 busy in
    let avg_busy = total_busy / p.size in
    Telemetry.bump Telemetry.Counter.Pool_jobs;
    Telemetry.add Telemetry.Counter.Pool_busy_ns total_busy;
    Telemetry.add Telemetry.Counter.Pool_wall_ns (wall * p.size);
    Telemetry.hist_record Telemetry.Hist.Pool_job_ns wall;
    Telemetry.span_end
      ~args:
        [
          ("workers", Telemetry.A_int p.size);
          ("max_busy_us", Telemetry.A_int (max_busy / 1000));
          ("avg_busy_us", Telemetry.A_int (avg_busy / 1000));
          ( "imbalance",
            Telemetry.A_float
              (if avg_busy = 0 then 1.0
               else float_of_int max_busy /. float_of_int avg_busy) );
        ]
      ~cat:"pool" label t0
  end);
  Flight.record Flight.Ev.Pool_job_end
    (if ft0 > 0 then Telemetry.now_ns () - ft0 else 0)
    0 0

let parallel_for_workers ?label p ?chunk lo hi f =
  if hi > lo then begin
    let n = hi - lo in
    let chunk =
      match chunk with
      | Some c when c >= 1 -> c
      | Some _ -> invalid_arg "Pool.parallel_for: chunk must be >= 1"
      | None -> max 1 (n / (p.size * 8))
    in
    let cursor = Atomic.make lo in
    let work w =
      let rec take () =
        let start = Atomic.fetch_and_add cursor chunk in
        if start < hi then begin
          let stop = min hi (start + chunk) in
          for i = start to stop - 1 do
            f w i
          done;
          take ()
        end
      in
      take ()
    in
    run ?label p work
  end

let parallel_for ?label p ?chunk lo hi f =
  parallel_for_workers ?label p ?chunk lo hi (fun _w i -> f i)

let partition ~workers ~lo ~hi w =
  (* Contiguous partition of [lo, hi) into [workers] near-equal ranges. *)
  let n = hi - lo in
  let base = n / workers and extra = n mod workers in
  let start = lo + (w * base) + min w extra in
  let len = base + if w < extra then 1 else 0 in
  (start, start + len)

let parallel_for_ranges ?label p lo hi f =
  if hi > lo then
    run ?label p (fun w ->
        let rlo, rhi = partition ~workers:p.size ~lo ~hi w in
        if rhi > rlo then f w rlo rhi)

let parallel_reduce ?label p lo hi ~init ~body ~combine =
  if hi <= lo then init ()
  else begin
    let results = Array.make p.size None in
    run ?label p (fun w ->
        let rlo, rhi = partition ~workers:p.size ~lo ~hi w in
        let acc = ref (init ()) in
        for i = rlo to rhi - 1 do
          acc := body !acc i
        done;
        results.(w) <- Some !acc);
    let acc = ref None in
    Array.iter
      (fun r ->
        match (!acc, r) with
        | None, r -> acc := r
        | Some a, Some b -> acc := Some (combine a b)
        | Some _, None -> ())
      results;
    match !acc with Some a -> a | None -> init ()
  end

let shutdown p =
  if p.alive then begin
    p.alive <- false;
    Mutex.lock p.mutex;
    p.stop <- true;
    Condition.broadcast p.work_ready;
    Mutex.unlock p.mutex;
    List.iter Domain.join p.domains;
    p.domains <- []
  end

let with_pool n f =
  let p = create n in
  match f p with
  | x ->
    shutdown p;
    x
  | exception e ->
    shutdown p;
    raise e
