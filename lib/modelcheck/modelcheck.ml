(* Exhaustive interleaving checker for the olock protocol (an executable
   model of Fig. 2 of the paper).

   The pieces:

   - {!Traced_atomic} implements [Olock.ATOMIC] over a plain mutable cell
     and performs an effect before every operation.  [Olock.Make
     (Traced_atomic)] is therefore the production protocol code, verbatim,
     with a scheduler decision point at every atomic step.

   - {!explore} runs a small fixed set of threads under a deterministic
     cooperative scheduler and enumerates every interleaving by DFS over
     schedules.  Threads are one-shot effect handlers: resuming a thread
     executes exactly one atomic operation and runs the thread to its next
     operation (or to completion).  Backtracking replays the program from
     scratch along a forced schedule prefix — runs are deterministic, so a
     prefix always reproduces the same state.

   - State-hash pruning: after a prefix is replayed, the checker hashes
     (atomic cell values, per-thread status + observed-result history).
     Threads are deterministic functions of what their operations
     returned, so two prefixes with equal hashes have identical futures
     and the subtree is explored once.  This collapses the exponential
     blowup of commuting operations.

   - Blocking operations ([start_write]/[start_read] spinning on a held
     lock) make some schedules infinite (the scheduler can starve the
     holder forever).  A per-thread op budget ([fuel]) truncates those
     unfair schedules; every fair schedule of the small models fits well
     inside the default fuel, so the exploration is exhaustive over the
     schedules on which the protocol promises progress. *)

type res = R_int of int | R_bool of bool

type _ Effect.t += Step : string * (unit -> res) -> res Effect.t

exception Violation of string

(* ------------------------------------------------------------------ *)
(* Traced cells                                                        *)
(* ------------------------------------------------------------------ *)

type cell = { cell_id : int; mutable v : int }

(* Registry of every traced cell created in the current run, for state
   hashing.  Runs are single-threaded (the scheduler is cooperative), so
   plain mutable state is sound here. *)
let registry : cell list ref = ref []
let next_cell_id = ref 0

let reset_registry () =
  registry := [];
  next_cell_id := 0

let new_cell v =
  let c = { cell_id = !next_cell_id; v } in
  incr next_cell_id;
  registry := c :: !registry;
  c

let step desc run =
  (* Outside [explore] (e.g. model setup code) there is no handler; fall
     back to executing the operation directly. *)
  try Effect.perform (Step (desc, run)) with Effect.Unhandled _ -> run ()

let yield () =
  ignore (step "yield" (fun () -> R_int 0) : res)

let expect_int = function R_int v -> v | R_bool _ -> assert false
let expect_bool = function R_bool b -> b | R_int _ -> assert false

module Traced_atomic : Olock.ATOMIC with type t = cell = struct
  type t = cell

  let make v = new_cell v

  let get c =
    expect_int (step (Printf.sprintf "get a%d" c.cell_id) (fun () -> R_int c.v))

  let compare_and_set c old nw =
    expect_bool
      (step
         (Printf.sprintf "cas a%d %d->%d" c.cell_id old nw)
         (fun () ->
           if c.v = old then begin
             c.v <- nw;
             R_bool true
           end
           else R_bool false))

  let fetch_and_add c d =
    expect_int
      (step
         (Printf.sprintf "faa a%d %+d" c.cell_id d)
         (fun () ->
           let o = c.v in
           c.v <- o + d;
           R_int o))
end

module Torn_cas_atomic : Olock.ATOMIC with type t = cell = struct
  (* Mutant used to prove the checker detects protocol bugs: its
     compare-and-set is torn into a separate read step and write step, so
     the scheduler can interleave another thread between them — the lost
     upgrade race the real CAS exists to exclude. *)
  type t = cell

  let make v = new_cell v
  let get = Traced_atomic.get
  let fetch_and_add = Traced_atomic.fetch_and_add

  let compare_and_set c old nw =
    let v =
      expect_int
        (step (Printf.sprintf "torn-cas-read a%d" c.cell_id) (fun () -> R_int c.v))
    in
    if v <> old then false
    else
      expect_bool
        (step
           (Printf.sprintf "torn-cas-write a%d %d->%d" c.cell_id old nw)
           (fun () ->
             c.v <- nw;
             R_bool true))
end

(* ------------------------------------------------------------------ *)
(* Scheduler                                                           *)
(* ------------------------------------------------------------------ *)

type 'shared spec = {
  name : string;
  setup : unit -> 'shared;
  threads : ('shared -> unit) array;
  invariant : 'shared -> unit;
  final : 'shared -> unit;
}

type counterexample = {
  cx_model : string;
  cx_message : string;
  cx_trace : (int * string) list;  (* thread id, "op -> result" *)
}

type report = {
  rep_schedules : int;  (* complete interleavings explored *)
  rep_steps : int;      (* atomic operations executed, across all replays *)
  rep_pruned : int;     (* subtrees cut by state-hash pruning *)
  rep_truncated : int;  (* schedules abandoned at the fuel bound *)
  rep_violation : counterexample option;
}

exception Abandoned

type status =
  | Ready of { resume : unit -> unit; cancel : unit -> unit }
  | Done
  | Stuck of exn

let show_res = function
  | R_int v -> string_of_int v
  | R_bool b -> string_of_bool b

(* Replay outcome for one forced prefix. *)
type run_outcome =
  | O_violation of string * (int * string) list
  | O_all_done
  | O_no_runnable  (* some thread unfinished but out of fuel *)
  | O_enabled of int list * int  (* runnable thread ids, state hash *)

let hash_combine h v = (h * 31) + v

let run_prefix (spec : 'a spec) ~fuel prefix =
  reset_registry ();
  let n = Array.length spec.threads in
  let shared = spec.setup () in
  let statuses = Array.make n Done in
  let ops_done = Array.make n 0 in
  let trace_hash = Array.make n 0 in
  let trace = ref [] in
  let steps = ref 0 in
  let spawn i body =
    let effc : type a. a Effect.t -> ((a, unit) Effect.Deep.continuation -> unit) option
        =
      fun eff ->
       match eff with
       | Step (desc, run) ->
         Some
           (fun (k : (a, unit) Effect.Deep.continuation) ->
             statuses.(i) <-
               Ready
                 {
                   resume =
                     (fun () ->
                       let r = run () in
                       incr steps;
                       ops_done.(i) <- ops_done.(i) + 1;
                       trace_hash.(i) <-
                         hash_combine trace_hash.(i) (Hashtbl.hash (desc, r));
                       trace :=
                         (i, Printf.sprintf "%s -> %s" desc (show_res r))
                         :: !trace;
                       Effect.Deep.continue k r);
                   cancel =
                     (fun () ->
                       match Effect.Deep.discontinue k Abandoned with
                       | () -> ()
                       | exception _ -> ());
                 })
       | _ -> None
    in
    Effect.Deep.match_with body shared
      {
        retc = (fun () -> statuses.(i) <- Done);
        exnc = (fun e -> statuses.(i) <- Stuck e);
        effc;
      }
  in
  Array.iteri (fun i body -> spawn i body) spec.threads;
  let cancel_all () =
    Array.iter
      (function Ready { cancel; _ } -> cancel () | Done | Stuck _ -> ())
      statuses
  in
  let violation msg =
    cancel_all ();
    O_violation (msg, List.rev !trace)
  in
  let check_statuses () =
    (* A thread that died on an exception the model did not catch is a
       failure of the model itself — surface it as a counterexample. *)
    let bad = ref None in
    Array.iteri
      (fun i st ->
        match st with
        | Stuck Abandoned -> ()
        | Stuck e -> if !bad = None then bad := Some (i, e)
        | _ -> ())
      statuses;
    match !bad with
    | Some (i, Violation m) -> Some (Printf.sprintf "t%d: %s" i m)
    | Some (i, e) ->
      Some (Printf.sprintf "t%d raised %s" i (Printexc.to_string e))
    | None -> None
  in
  let rec follow = function
    | [] -> finish ()
    | t :: rest -> (
      match statuses.(t) with
      | Ready { resume; _ } -> (
        (match resume () with
        | () -> ()
        | exception e ->
          (* an exception escaping [resume] means the op thunk itself
             failed — treat like a stuck thread *)
          statuses.(t) <- Stuck e);
        match check_statuses () with
        | Some msg -> violation msg
        | None -> (
          match spec.invariant shared with
          | () -> follow rest
          | exception Violation msg -> violation msg))
      | Done | Stuck _ ->
        (* schedules are only ever extended with enabled threads, so a
           forced choice must be runnable on replay *)
        violation (Printf.sprintf "internal: replay chose finished thread t%d" t))
  and finish () =
    let enabled = ref [] in
    for i = n - 1 downto 0 do
      match statuses.(i) with
      | Ready _ when ops_done.(i) < fuel -> enabled := i :: !enabled
      | _ -> ()
    done;
    match !enabled with
    | [] ->
      let unfinished =
        Array.exists (function Ready _ -> true | _ -> false) statuses
      in
      if unfinished then begin
        cancel_all ();
        O_no_runnable
      end
      else (
        match spec.final shared with
        | () -> O_all_done
        | exception Violation msg -> violation msg)
    | enabled ->
      let h = ref (Hashtbl.hash spec.name) in
      List.iter
        (fun c -> h := hash_combine (hash_combine !h c.cell_id) c.v)
        !registry;
      Array.iteri
        (fun i st ->
          let tag = match st with Ready _ -> 0 | Done -> 1 | Stuck _ -> 2 in
          h := hash_combine (hash_combine !h tag) trace_hash.(i))
        statuses;
      (* the run is abandoned here (DFS replays from scratch); unwind the
         captured fibers so they do not outlive the node *)
      cancel_all ();
      O_enabled (enabled, !h)
  in
  let outcome = follow prefix in
  (outcome, !steps)

let explore ?(fuel = 16) (spec : 'a spec) =
  let visited = Hashtbl.create 4096 in
  let schedules = ref 0 in
  let steps = ref 0 in
  let pruned = ref 0 in
  let truncated = ref 0 in
  let violation = ref None in
  (* Explicit work stack of schedule prefixes (stored reversed). *)
  let stack = ref [ [] ] in
  while !stack <> [] && !violation = None do
    match !stack with
    | [] -> ()
    | prefix_rev :: rest ->
      stack := rest;
      let prefix = List.rev prefix_rev in
      let outcome, st = run_prefix spec ~fuel prefix in
      steps := !steps + st;
      (match outcome with
      | O_violation (msg, trace) ->
        violation :=
          Some { cx_model = spec.name; cx_message = msg; cx_trace = trace }
      | O_all_done -> incr schedules
      | O_no_runnable -> incr truncated
      | O_enabled (enabled, h) ->
        if Hashtbl.mem visited h then incr pruned
        else begin
          Hashtbl.add visited h ();
          (* push in reverse so thread 0 is explored first *)
          List.iter
            (fun t -> stack := (t :: prefix_rev) :: !stack)
            (List.rev enabled)
        end)
  done;
  {
    rep_schedules = !schedules;
    rep_steps = !steps;
    rep_pruned = !pruned;
    rep_truncated = !truncated;
    rep_violation = !violation;
  }

let pp_counterexample fmt cx =
  Format.fprintf fmt "model %S: %s@\ncounterexample schedule (%d steps):@\n"
    cx.cx_model cx.cx_message (List.length cx.cx_trace);
  List.iteri
    (fun i (t, op) -> Format.fprintf fmt "  %3d  t%d  %s@\n" (i + 1) t op)
    cx.cx_trace

let counterexample_to_string cx =
  Format.asprintf "%a" pp_counterexample cx
