(** Exhaustive interleaving checker for the olock protocol.

    [Olock.Make (Modelcheck.Traced_atomic)] is the production protocol
    code with a deterministic-scheduler decision point at every atomic
    operation; {!explore} enumerates every interleaving of a small
    thread program over it by DFS with state-hash pruning, checking a
    user invariant after every step.  See DESIGN §10. *)

exception Violation of string
(** Raised by model invariants / thread bodies to report a property
    violation; {!explore} turns it into a {!counterexample} carrying the
    schedule that produced it. *)

type cell
(** A traced atomic cell (plain mutable int + identity, registered for
    state hashing). *)

module Traced_atomic : Olock.ATOMIC with type t = cell
(** Faithful instantiation: each operation is a single scheduler step. *)

module Torn_cas_atomic : Olock.ATOMIC with type t = cell
(** Mutant instantiation whose compare-and-set is torn into a separate
    read step and write step — the seeded protocol bug the checker must
    detect (lost upgrade race). *)

val yield : unit -> unit
(** An explicit scheduler decision point.  Model programs mark accesses
    to plain (non-atomic) shared data with [yield] so the explorer can
    interleave threads there too — that is how torn reads of protected
    data are modelled. *)

type 'shared spec = {
  name : string;
  setup : unit -> 'shared;
      (** runs before the threads, outside the scheduler *)
  threads : ('shared -> unit) array;
  invariant : 'shared -> unit;
      (** checked after every step; raise {!Violation} to fail *)
  final : 'shared -> unit;
      (** checked once all threads finished; raise {!Violation} to fail *)
}

type counterexample = {
  cx_model : string;
  cx_message : string;
  cx_trace : (int * string) list;
      (** schedule: (thread id, ["op -> result"]) in execution order *)
}

type report = {
  rep_schedules : int;  (** complete interleavings explored *)
  rep_steps : int;  (** atomic operations executed, across all replays *)
  rep_pruned : int;  (** subtrees cut by state-hash pruning *)
  rep_truncated : int;  (** schedules abandoned at the fuel bound *)
  rep_violation : counterexample option;
}

val explore : ?fuel:int -> 'shared spec -> report
(** [explore spec] enumerates interleavings of [spec.threads] (DFS over
    schedules, replaying a deterministic prefix for each node).  [fuel]
    (default 16) bounds the operations one thread may execute on a single
    schedule, truncating the unfair schedules that starve a spinning
    thread forever; every fair schedule of a small model is explored
    exhaustively.  Stops at the first violation. *)

val pp_counterexample : Format.formatter -> counterexample -> unit
(** Prints the violation message and the full numbered schedule trace. *)

val counterexample_to_string : counterexample -> string
