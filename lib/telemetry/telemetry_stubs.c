/* Monotonic clock for the telemetry layer.
 *
 * Phase timers must not jump when the wall clock is adjusted, so spans are
 * stamped with CLOCK_MONOTONIC.  The value is returned as a tagged OCaml
 * int: nanoseconds since an arbitrary epoch fit in 62 bits for ~73 years of
 * uptime, so no boxing is needed and the [@@noalloc] fast path applies.
 */

#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value repro_telemetry_now_ns(value unit)
{
  (void)unit;
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}
