(* Live telemetry service: monitor domain + windowed-delta ring + HTTP/1.0
   listener.  See telemetry_server.mli for the architecture contract.

   Confinement story (the R1 discipline): everything the monitor mutates —
   the window ring, previous-sample baselines, the latest window — lives in
   a record created inside the spawned domain and never escapes it.  The
   request handler runs on the same domain, so serving needs no
   synchronization either.  The only shared state is (a) the mutex-protected
   provider/probe registry, written on cold registration paths, and (b) the
   Health atomics, bumped from the pool's cold join paths and read racily by
   the monitor. *)

(* ------------------------------------------------------------------ *)
(* Addresses                                                          *)
(* ------------------------------------------------------------------ *)

type addr = Tcp of string * int | Unix_sock of string

let addr_to_string = function
  | Tcp (h, p) -> Printf.sprintf "%s:%d" h p
  | Unix_sock p -> "unix:" ^ p

let is_digits s =
  s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s

let parse_addr s =
  let prefix = "unix:" in
  let plen = String.length prefix in
  if String.length s > plen && String.sub s 0 plen = prefix then
    Ok (Unix_sock (String.sub s plen (String.length s - plen)))
  else if is_digits s then Ok (Tcp ("127.0.0.1", int_of_string s))
  else
    match String.rindex_opt s ':' with
    | Some i ->
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      if not (is_digits port) then
        Error (Printf.sprintf "bad port in address %S" s)
      else
        let host = if host = "" then "0.0.0.0" else host in
        Ok (Tcp (host, int_of_string port))
    | None ->
      Error
        (Printf.sprintf
           "bad address %S (expected unix:PATH, PORT, or HOST:PORT)" s)

let resolve_host h =
  try Unix.inet_addr_of_string h
  with _ -> (
    try (Unix.gethostbyname h).Unix.h_addr_list.(0)
    with _ -> failwith ("cannot resolve host " ^ h))

(* ------------------------------------------------------------------ *)
(* Shared registries (cold paths, mutex- or atomic-protected)          *)
(* ------------------------------------------------------------------ *)

let ext_mutex = Mutex.create ()
let providers : (string * (unit -> (string * float) list)) list ref = ref []
let chaos_probe : (unit -> bool * int) option ref = ref None

let register_gauges group f =
  Mutex.protect ext_mutex (fun () -> providers := (group, f) :: !providers)

let set_chaos_probe p = Mutex.protect ext_mutex (fun () -> chaos_probe := p)
let get_providers () = Mutex.protect ext_mutex (fun () -> !providers)
let get_chaos_probe () = Mutex.protect ext_mutex (fun () -> !chaos_probe)

module Health = struct
  let watchdog_trips = Atomic.make 0
  let pool_failures = Atomic.make 0
  let failed_workers = Atomic.make 0
  let uncontained = Atomic.make 0
  let reason_mutex = Mutex.create ()
  let uncontained_reason = ref ""
  let note_watchdog_trip () = Atomic.incr watchdog_trips

  let note_pool_failure ~workers =
    Atomic.incr pool_failures;
    ignore (Atomic.fetch_and_add failed_workers workers)

  let note_uncontained reason =
    Atomic.incr uncontained;
    Mutex.protect reason_mutex (fun () -> uncontained_reason := reason)

  let reset () =
    Atomic.set watchdog_trips 0;
    Atomic.set pool_failures 0;
    Atomic.set failed_workers 0;
    Atomic.set uncontained 0;
    Mutex.protect reason_mutex (fun () -> uncontained_reason := "")

  let read_uncontained_reason () =
    Mutex.protect reason_mutex (fun () -> !uncontained_reason)
end

(* ------------------------------------------------------------------ *)
(* Windowed deltas                                                    *)
(* ------------------------------------------------------------------ *)

let heat_class_names = [| "validation_fail"; "upgrade_fail"; "split" |]

type window = {
  w_seq : int;
  w_start_ns : int;
  w_end_ns : int;
  w_deltas : int array;  (* indexed by Telemetry.Counter.index *)
  w_hists : Telemetry.hist array;  (* windowed deltas, Hist.index *)
  w_gauges : (string * float) list;
  w_heat : (int * int array) list;  (* level -> counts per heat class *)
  w_flight_events : int;
  w_watchdog : int;
  w_pool_failures : int;
  w_chaos_armed : bool;
  w_chaos_fired : int;
}

let clamp0 x = if x < 0 then 0 else x

(* Window histogram = bucket-wise subtraction of cumulative snapshots.
   Deltas are clamped at 0 so a quiescent [Telemetry.reset] mid-run yields
   one empty window instead of nonsense.  The window max is estimated from
   the highest nonzero delta bucket (<= the exact cumulative max). *)
let delta_hist (prev : Telemetry.hist) (cur : Telemetry.hist) =
  let n = Telemetry.Hist.bucket_count in
  let counts = Array.make n 0 in
  let top = ref (-1) in
  for b = 0 to n - 1 do
    let d = clamp0 (cur.Telemetry.h_counts.(b) - prev.Telemetry.h_counts.(b)) in
    counts.(b) <- d;
    if d > 0 then top := b
  done;
  let max_ns =
    if !top < 0 then 0
    else
      let _, hi = Telemetry.Hist.bucket_bounds !top in
      min cur.Telemetry.h_max (hi - 1)
  in
  {
    Telemetry.h_counts = counts;
    h_total = clamp0 (cur.Telemetry.h_total - prev.Telemetry.h_total);
    h_sum = clamp0 (cur.Telemetry.h_sum - prev.Telemetry.h_sum);
    h_max = max_ns;
  }

(* Per-level contention heat from flight events with timestamps in
   (lo, hi].  Local reimplementation of the Tree_shape aggregation:
   telemetry sits below lib/btree in the dependency order, so it cannot
   call it. *)
let heat_of_events ~lo ~hi evs =
  let tbl = Hashtbl.create 8 in
  let bump level cls =
    let row =
      match Hashtbl.find_opt tbl level with
      | Some r -> r
      | None ->
        let r = Array.make (Array.length heat_class_names) 0 in
        Hashtbl.add tbl level r;
        r
    in
    row.(cls) <- row.(cls) + 1
  in
  List.iter
    (fun (e : Flight.event) ->
      if e.Flight.e_ts > lo && e.Flight.e_ts <= hi then
        match e.Flight.e_kind with
        | Flight.Ev.Validation_fail -> bump e.Flight.e_a1 0
        | Flight.Ev.Upgrade_fail -> bump e.Flight.e_a1 1
        | Flight.Ev.Split -> bump e.Flight.e_a1 2
        | _ -> ())
    evs;
  Hashtbl.fold (fun level row acc -> (level, row) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let sample_gauges () =
  List.concat_map
    (fun (group, f) ->
      match f () with
      | pairs -> List.map (fun (n, v) -> (group ^ "." ^ n, v)) pairs
      | exception _ -> [])
    (get_providers ())

(* ------------------------------------------------------------------ *)
(* Monitor state (domain-confined: created and mutated only on the     *)
(* monitor domain)                                                     *)
(* ------------------------------------------------------------------ *)

type mstate = {
  m_lfd : Unix.file_descr;
  m_stop_rd : Unix.file_descr;
  m_interval_ms : int;
  m_interval_ns : int;
  m_window_count : int;
  m_ring : window option array;
  mutable m_latest : window option;
  mutable m_seq : int;
  mutable m_next_tick : int;
  mutable m_prev_ts : int;
  mutable m_prev_totals : int array;
  mutable m_prev_hists : Telemetry.hist array;
  mutable m_prev_flight : int;
  mutable m_prev_watchdog : int;
  mutable m_prev_pool_failures : int;
  mutable m_prev_chaos_fired : int;
}

let sample st now =
  let snap = Telemetry.snapshot () in
  let totals = snap.Telemetry.totals in
  let deltas =
    Array.init Telemetry.Counter.count (fun i ->
        clamp0 (totals.(i) - st.m_prev_totals.(i)))
  in
  let hists =
    Array.init Telemetry.Hist.count (fun i ->
        delta_hist st.m_prev_hists.(i) snap.Telemetry.hists.(i))
  in
  let flight_total = Flight.recorded_total () in
  let heat =
    if Flight.enabled () then
      heat_of_events ~lo:st.m_prev_ts ~hi:now (Flight.events ())
    else []
  in
  let watchdog = Atomic.get Health.watchdog_trips in
  let pool_failures = Atomic.get Health.pool_failures in
  let chaos_armed, chaos_fired =
    match get_chaos_probe () with
    | None -> (false, 0)
    | Some p -> ( try p () with _ -> (false, 0))
  in
  let w =
    {
      w_seq = st.m_seq;
      w_start_ns = st.m_prev_ts;
      w_end_ns = now;
      w_deltas = deltas;
      w_hists = hists;
      w_gauges = sample_gauges ();
      w_heat = heat;
      w_flight_events = clamp0 (flight_total - st.m_prev_flight);
      w_watchdog = clamp0 (watchdog - st.m_prev_watchdog);
      w_pool_failures = clamp0 (pool_failures - st.m_prev_pool_failures);
      w_chaos_armed = chaos_armed;
      w_chaos_fired = clamp0 (chaos_fired - st.m_prev_chaos_fired);
    }
  in
  st.m_ring.(st.m_seq mod st.m_window_count) <- Some w;
  st.m_latest <- Some w;
  st.m_seq <- st.m_seq + 1;
  st.m_prev_ts <- now;
  st.m_prev_totals <- Array.copy totals;
  st.m_prev_hists <- Array.copy snap.Telemetry.hists;
  st.m_prev_flight <- flight_total;
  st.m_prev_watchdog <- watchdog;
  st.m_prev_pool_failures <- pool_failures;
  st.m_prev_chaos_fired <- chaos_fired

(* ------------------------------------------------------------------ *)
(* Health evaluation                                                  *)
(* ------------------------------------------------------------------ *)

type health_view = {
  hv_status : string;
  hv_code : int;
  hv_level : int;  (* 0 ok / 1 degraded / 2 critical *)
  hv_reasons : string list;
}

(* Degradation is judged over the last [health_span] completed windows,
   not just the latest: a scraper polling slower than the sampling
   interval would otherwise miss every short-lived trip. *)
let health_span = 3

let health_of st =
  let reasons = ref [] in
  let level = ref 0 in
  let degrade r =
    level := max !level 1;
    reasons := r :: !reasons
  in
  let watchdog = ref 0 and failures = ref 0 and chaos = ref 0 in
  let chaos_armed = ref false in
  let span = min health_span (min st.m_seq st.m_window_count) in
  for i = 1 to span do
    match st.m_ring.((st.m_seq - i) mod st.m_window_count) with
    | None -> ()
    | Some w ->
      watchdog := !watchdog + w.w_watchdog;
      failures := !failures + w.w_pool_failures;
      chaos := !chaos + w.w_chaos_fired;
      if i = 1 then chaos_armed := w.w_chaos_armed
  done;
  if !watchdog > 0 then
    degrade
      (Printf.sprintf "%d pool watchdog trip(s) in the last %d window(s)"
         !watchdog span);
  if !failures > 0 then
    degrade
      (Printf.sprintf "%d contained pool failure(s) in the last %d window(s)"
         !failures span);
  if !chaos_armed && !chaos > 0 then
    degrade
      (Printf.sprintf
         "chaos drill firing (%d failpoint(s) in the last %d window(s))"
         !chaos span);
  let unc = Atomic.get Health.uncontained in
  if unc > 0 then begin
    level := 2;
    let why = Health.read_uncontained_reason () in
    reasons :=
      (Printf.sprintf "%d uncontained failure(s)%s" unc
         (if why = "" then "" else ": " ^ why))
      :: !reasons
  end;
  let status, code =
    match !level with
    | 0 -> ("ok", 200)
    | 1 -> ("degraded", 503)
    | _ -> ("critical", 503)
  in
  { hv_status = status; hv_code = code; hv_level = !level;
    hv_reasons = List.rev !reasons }

(* ------------------------------------------------------------------ *)
(* Endpoint bodies                                                    *)
(* ------------------------------------------------------------------ *)

let duration_s w =
  let d = float_of_int (w.w_end_ns - w.w_start_ns) /. 1e9 in
  if d <= 0.0 then 1e-9 else d

let heat_json heat =
  Telemetry.Json.List
    (List.map
       (fun (level, row) ->
         Telemetry.Json.Obj
           (("level", Telemetry.Json.Int level)
           :: Array.to_list
                (Array.mapi
                   (fun i c -> (heat_class_names.(i), Telemetry.Json.Int c))
                   row)))
       heat)

let window_json w =
  let open Telemetry in
  let dur = duration_s w in
  let rates, deltas =
    List.fold_left
      (fun (rates, deltas) c ->
        let d = w.w_deltas.(Counter.index c) in
        if d = 0 then (rates, deltas)
        else
          let n = Counter.name c in
          ( (n ^ "_per_s", Json.Float (float_of_int d /. dur)) :: rates,
            (n, Json.Int d) :: deltas ))
      ([], []) Counter.all
  in
  let hists =
    List.filter_map
      (fun m ->
        let h = w.w_hists.(Hist.index m) in
        if h.h_total = 0 then None
        else
          Some
            ( Hist.name m,
              Json.Obj
                [
                  ("count", Json.Int h.h_total);
                  ("rate_per_s", Json.Float (float_of_int h.h_total /. dur));
                  ("mean_ns", Json.Float (hist_mean h));
                  ("p50_ns", Json.Int (hist_quantile h 0.5));
                  ("p99_ns", Json.Int (hist_quantile h 0.99));
                  ("max_ns", Json.Int h.h_max);
                ] ))
      Hist.all
  in
  Json.Obj
    [
      ("seq", Json.Int w.w_seq);
      ("start_ns", Json.Int w.w_start_ns);
      ("end_ns", Json.Int w.w_end_ns);
      ("duration_s", Json.Float dur);
      ("rates", Json.Obj (List.rev rates));
      ("deltas", Json.Obj (List.rev deltas));
      ("histograms", Json.Obj hists);
      ( "gauges",
        Json.Obj (List.map (fun (n, v) -> (n, Json.Float v)) w.w_gauges) );
      ("heat", heat_json w.w_heat);
      ("flight_events", Json.Int w.w_flight_events);
      ( "health",
        Json.Obj
          [
            ("watchdog_trips", Json.Int w.w_watchdog);
            ("pool_failures", Json.Int w.w_pool_failures);
            ("chaos_armed", Json.Bool w.w_chaos_armed);
            ("chaos_fired", Json.Int w.w_chaos_fired);
          ] );
    ]

(* Newest-first compact summaries of the retained ring, for trend lines. *)
let recent_json st =
  let open Telemetry in
  let acc = ref [] in
  let retained = min st.m_seq st.m_window_count in
  for i = 1 to retained do
    match st.m_ring.((st.m_seq - i) mod st.m_window_count) with
    | None -> ()
    | Some w ->
      let delta_total = Array.fold_left ( + ) 0 w.w_deltas in
      acc :=
        Json.Obj
          [
            ("seq", Json.Int w.w_seq);
            ("end_ns", Json.Int w.w_end_ns);
            ("duration_s", Json.Float (duration_s w));
            ("counter_delta_total", Json.Int delta_total);
            ("flight_events", Json.Int w.w_flight_events);
          ]
        :: !acc
  done;
  Json.List (List.rev !acc)

let snapshot_body st =
  let open Telemetry in
  Json.to_string
    (Json.Obj
       [
         ("schema", Json.String "telemetry_window/1");
         ("interval_ms", Json.Int st.m_interval_ms);
         ("windows_retained", Json.Int (min st.m_seq st.m_window_count));
         ( "window",
           match st.m_latest with Some w -> window_json w | None -> Json.Null
         );
         ("recent", recent_json st);
       ])

let heat_body st =
  let open Telemetry in
  let ring_heat =
    if Flight.enabled () then
      heat_of_events ~lo:min_int ~hi:max_int (Flight.events ())
    else []
  in
  Json.to_string
    (Json.Obj
       [
         ("schema", Json.String "telemetry_heat/1");
         ("flight_enabled", Json.Bool (Flight.enabled ()));
         ( "classes",
           Json.List
             (Array.to_list
                (Array.map (fun c -> Json.String c) heat_class_names)) );
         ( "window",
           match st.m_latest with
           | Some w -> heat_json w.w_heat
           | None -> Json.Null );
         ("ring", heat_json ring_heat);
       ])

let trace_limit = 256

let trace_body _st =
  let open Telemetry in
  let evs = Flight.events () in
  let total = List.length evs in
  let evs =
    if total <= trace_limit then evs
    else
      (* keep the newest [trace_limit] (events are oldest-first) *)
      List.filteri (fun i _ -> i >= total - trace_limit) evs
  in
  Json.to_string
    (Json.Obj
       [
         ("schema", Json.String "telemetry_trace/1");
         ("flight_enabled", Json.Bool (Flight.enabled ()));
         ("recorded_total", Json.Int (Flight.recorded_total ()));
         ("returned", Json.Int (List.length evs));
         ( "events",
           Json.List
             (List.map
                (fun (e : Flight.event) ->
                  Json.Obj
                    [
                      ("ts", Json.Int e.Flight.e_ts);
                      ("domain", Json.Int e.Flight.e_domain);
                      ("kind", Json.String (Flight.Ev.name e.Flight.e_kind));
                      ("a1", Json.Int e.Flight.e_a1);
                      ("a2", Json.Int e.Flight.e_a2);
                      ("a3", Json.Int e.Flight.e_a3);
                    ])
                evs) );
       ])

let health_body st =
  let open Telemetry in
  let hv = health_of st in
  Json.to_string
    (Json.Obj
       [
         ("schema", Json.String "telemetry_health/1");
         ("status", Json.String hv.hv_status);
         ("level", Json.Int hv.hv_level);
         ( "reasons",
           Json.List (List.map (fun r -> Json.String r) hv.hv_reasons) );
         ("uncontained_total", Json.Int (Atomic.get Health.uncontained));
         ("watchdog_trips_total", Json.Int (Atomic.get Health.watchdog_trips));
         ("pool_failures_total", Json.Int (Atomic.get Health.pool_failures));
         ("window_seq",
          match st.m_latest with Some w -> Json.Int w.w_seq | None -> Json.Null);
       ])

let metrics_body st =
  let open Telemetry in
  let prom = Prom.create () in
  let snap = Telemetry.snapshot () in
  prometheus_of_snapshot prom snap;
  let hv = health_of st in
  Prom.gauge prom
    ~help:"Service health: 0 = ok, 1 = degraded, 2 = critical."
    "repro_health" (float_of_int hv.hv_level);
  (match st.m_latest with
  | None -> ()
  | Some w ->
    let dur = duration_s w in
    Prom.gauge prom ~help:"Sampling window sequence number (monotonic)."
      "repro_window_seq" (float_of_int w.w_seq);
    Prom.gauge prom ~help:"Sampling window length in seconds."
      "repro_window_duration_seconds" dur;
    Prom.gauge prom ~help:"Flight events recorded in the window."
      "repro_window_flight_events" (float_of_int w.w_flight_events);
    List.iter
      (fun c ->
        let d = w.w_deltas.(Counter.index c) in
        if d > 0 then
          Prom.gauge prom
            ~help:
              "Per-window counter rate (events/s; nanosecond counters in \
               ns/s)."
            ~labels:[ ("counter", Counter.name c) ]
            "repro_window_rate"
            (float_of_int d /. dur))
      Counter.all;
    List.iter
      (fun m ->
        let h = w.w_hists.(Hist.index m) in
        if h.h_total > 0 then begin
          let labels = [ ("hist", Hist.name m) ] in
          Prom.gauge prom ~help:"Samples recorded in the window." ~labels
            "repro_window_hist_count" (float_of_int h.h_total);
          Prom.gauge prom ~help:"Window p50 latency estimate (ns)." ~labels
            "repro_window_p50_ns"
            (float_of_int (hist_quantile h 0.5));
          Prom.gauge prom ~help:"Window p99 latency estimate (ns)." ~labels
            "repro_window_p99_ns"
            (float_of_int (hist_quantile h 0.99));
          Prom.gauge prom ~help:"Window max latency estimate (ns)." ~labels
            "repro_window_max_ns" (float_of_int h.h_max)
        end)
      Hist.all;
    List.iter
      (fun (n, v) ->
        Prom.gauge prom ~help:"Registered gauge provider value."
          ~labels:[ ("gauge", n) ] "repro_gauge" v)
      w.w_gauges;
    List.iter
      (fun (level, row) ->
        Array.iteri
          (fun i c ->
            if c > 0 then
              Prom.gauge prom
                ~help:"Window flight contention heat per tree level."
                ~labels:
                  [
                    ("level", string_of_int level);
                    ("class", heat_class_names.(i));
                  ]
                "repro_window_heat" (float_of_int c))
          row)
      w.w_heat);
  Prom.to_string prom

let index_body _st =
  let open Telemetry in
  Json.to_string
    (Json.Obj
       [
         ("schema", Json.String "telemetry_index/1");
         ( "endpoints",
           Json.List
             (List.map
                (fun e -> Json.String e)
                [ "/metrics"; "/snapshot.json"; "/heat"; "/health"; "/trace" ])
         );
       ])

(* ------------------------------------------------------------------ *)
(* HTTP/1.0 plumbing                                                  *)
(* ------------------------------------------------------------------ *)

let has_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let write_all fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off < len then
      match Unix.write fd b off (len - off) with
      | 0 -> ()
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception _ -> ()
  in
  go 0

let respond fd ~status ~content_type body =
  let reason =
    match status with
    | 200 -> "OK"
    | 400 -> "Bad Request"
    | 404 -> "Not Found"
    | 503 -> "Service Unavailable"
    | _ -> "Error"
  in
  write_all fd
    (Printf.sprintf
       "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n\
        Connection: close\r\n\r\n%s"
       status reason content_type (String.length body) body)

let read_until_headers fd =
  let chunk = Bytes.create 4096 in
  let buf = Buffer.create 256 in
  let rec go () =
    if Buffer.length buf < 16384 then
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> ()
      | n ->
        Buffer.add_subbytes buf chunk 0 n;
        let s = Buffer.contents buf in
        if has_substring s "\r\n\r\n" || has_substring s "\n\n" then ()
        else go ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception _ -> ()
  in
  go ();
  Buffer.contents buf

let parse_request raw =
  match String.index_opt raw '\n' with
  | None -> None
  | Some i ->
    let line = String.sub raw 0 i in
    let line =
      let n = String.length line in
      if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line
    in
    (match String.split_on_char ' ' line with
    | meth :: path :: _ when meth = "GET" || meth = "HEAD" ->
      let path =
        match String.index_opt path '?' with
        | Some q -> String.sub path 0 q
        | None -> path
      in
      Some path
    | _ -> None)

let route st cfd path =
  match path with
  | "/metrics" ->
    respond cfd ~status:200 ~content_type:"text/plain; version=0.0.4"
      (metrics_body st)
  | "/snapshot.json" ->
    respond cfd ~status:200 ~content_type:"application/json" (snapshot_body st)
  | "/heat" ->
    respond cfd ~status:200 ~content_type:"application/json" (heat_body st)
  | "/trace" ->
    respond cfd ~status:200 ~content_type:"application/json" (trace_body st)
  | "/health" ->
    let hv = health_of st in
    respond cfd ~status:hv.hv_code ~content_type:"application/json"
      (health_body st)
  | "/" | "/index.json" ->
    respond cfd ~status:200 ~content_type:"application/json" (index_body st)
  | _ ->
    respond cfd ~status:404 ~content_type:"application/json"
      (Telemetry.Json.to_string
         (Telemetry.Json.Obj
            [ ("error", Telemetry.Json.String ("no such endpoint: " ^ path)) ]))

let[@lint.dispatch
    "scrape dispatch point of the monitor loop: accepts only when the \
     listener polled readable, bounded response"] accept_and_serve st =
  match Unix.accept ~cloexec:true st.m_lfd with
  | exception _ -> ()
  | cfd, _peer ->
    Fun.protect
      ~finally:(fun () -> try Unix.close cfd with _ -> ())
      (fun () ->
        (try
           Unix.setsockopt_float cfd Unix.SO_RCVTIMEO 2.0;
           Unix.setsockopt_float cfd Unix.SO_SNDTIMEO 2.0
         with _ -> ());
        match parse_request (read_until_headers cfd) with
        | Some path -> route st cfd path
        | None ->
          respond cfd ~status:400 ~content_type:"text/plain" "bad request\n")

(* ------------------------------------------------------------------ *)
(* Monitor loop                                                       *)
(* ------------------------------------------------------------------ *)

let rec monitor_loop st =
  let now = Telemetry.now_ns () in
  if now >= st.m_next_tick then begin
    sample st now;
    st.m_next_tick <- now + st.m_interval_ns
  end;
  let timeout =
    let left = st.m_next_tick - Telemetry.now_ns () in
    if left <= 0 then 0.0 else float_of_int left /. 1e9
  in
  let rd, _, _ =
    try Unix.select [ st.m_lfd; st.m_stop_rd ] [] [] timeout
    with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
  in
  if List.mem st.m_stop_rd rd then begin
    (try
       ignore
         (Unix.read st.m_stop_rd (Bytes.create 1) 0 1
         [@lint.allow
           "select-loop-purity: one-byte self-pipe drain; the fd polled \
            readable in this very select"])
     with _ -> ());
    (* final window so even short runs retire at least one sample *)
    sample st (Telemetry.now_ns ())
  end
  else begin
    if List.mem st.m_lfd rd then accept_and_serve st;
    monitor_loop st
  end

let init_mstate ~lfd ~stop_rd ~interval_ms ~window_count =
  let snap = Telemetry.snapshot () in
  let now = Telemetry.now_ns () in
  {
    m_lfd = lfd;
    m_stop_rd = stop_rd;
    m_interval_ms = interval_ms;
    m_interval_ns = interval_ms * 1_000_000;
    m_window_count = window_count;
    m_ring = Array.make window_count None;
    m_latest = None;
    m_seq = 0;
    m_next_tick = now + (interval_ms * 1_000_000);
    m_prev_ts = now;
    m_prev_totals = Array.copy snap.Telemetry.totals;
    m_prev_hists = Array.copy snap.Telemetry.hists;
    m_prev_flight = Flight.recorded_total ();
    m_prev_watchdog = Atomic.get Health.watchdog_trips;
    m_prev_pool_failures = Atomic.get Health.pool_failures;
    m_prev_chaos_fired =
      (match get_chaos_probe () with
      | None -> 0
      | Some p -> ( try snd (p ()) with _ -> 0));
  }

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                          *)
(* ------------------------------------------------------------------ *)

type t = {
  t_addr : addr;
  t_lfd : Unix.file_descr;
  t_stop_rd : Unix.file_descr;
  t_stop_wr : Unix.file_descr;
  t_dom : unit Domain.t;
  t_unlink : string option;
  mutable t_stopped : bool;
}

let bind_listen addr =
  match addr with
  | Tcp (host, port) ->
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt fd Unix.SO_REUSEADDR true;
       Unix.bind fd (Unix.ADDR_INET (resolve_host host, port));
       Unix.listen fd 16;
       let bound =
         match Unix.getsockname fd with
         | Unix.ADDR_INET (_, p) -> Tcp (host, p)
         | _ -> addr
       in
       (fd, bound, None)
     with e ->
       (try Unix.close fd with _ -> ());
       raise e)
  | Unix_sock path ->
    (* a stale socket file from a crashed run would make bind fail *)
    (try if Sys.file_exists path then Unix.unlink path with _ -> ());
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try
       Unix.bind fd (Unix.ADDR_UNIX path);
       Unix.listen fd 16;
       (fd, addr, Some path)
     with e ->
       (try Unix.close fd with _ -> ());
       raise e)

let start ?(interval_ms = 1000) ?(window_count = 64) addr =
  let interval_ms = max 10 interval_ms in
  let window_count = max 2 window_count in
  match bind_listen addr with
  | exception e ->
    Error
      (Printf.sprintf "telemetry server: cannot bind %s: %s"
         (addr_to_string addr) (Printexc.to_string e))
  | lfd, bound, unlink_path ->
    let stop_rd, stop_wr = Unix.pipe ~cloexec:true () in
    let dom =
      Domain.spawn (fun () ->
          let st = init_mstate ~lfd ~stop_rd ~interval_ms ~window_count in
          monitor_loop st)
    in
    Ok
      {
        t_addr = bound;
        t_lfd = lfd;
        t_stop_rd = stop_rd;
        t_stop_wr = stop_wr;
        t_dom = dom;
        t_unlink = unlink_path;
        t_stopped = false;
      }

let bound t = t.t_addr

let stop t =
  if not t.t_stopped then begin
    t.t_stopped <- true;
    (try ignore (Unix.write t.t_stop_wr (Bytes.of_string "x") 0 1)
     with _ -> ());
    Domain.join t.t_dom;
    List.iter
      (fun fd -> try Unix.close fd with _ -> ())
      [ t.t_stop_wr; t.t_stop_rd; t.t_lfd ];
    match t.t_unlink with
    | Some p -> ( try Unix.unlink p with _ -> ())
    | None -> ()
  end

(* ------------------------------------------------------------------ *)
(* Tiny HTTP/1.0 client (tests / tooling)                              *)
(* ------------------------------------------------------------------ *)

let fetch addr path =
  let mk () =
    match addr with
    | Tcp (host, port) ->
      ( Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0,
        Unix.ADDR_INET (resolve_host host, port) )
    | Unix_sock p ->
      (Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0,
       Unix.ADDR_UNIX p)
  in
  match mk () with
  | exception e -> Error (Printexc.to_string e)
  | fd, sa ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with _ -> ())
      (fun () ->
        try
          Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
          Unix.setsockopt_float fd Unix.SO_SNDTIMEO 5.0;
          Unix.connect fd sa;
          write_all fd (Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path);
          let buf = Buffer.create 1024 in
          let chunk = Bytes.create 4096 in
          let rec drain () =
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | 0 -> ()
            | n ->
              Buffer.add_subbytes buf chunk 0 n;
              drain ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
          in
          drain ();
          let raw = Buffer.contents buf in
          let code =
            match String.split_on_char ' ' raw with
            | _http :: code :: _ -> ( try int_of_string code with _ -> 0)
            | _ -> 0
          in
          let body =
            let rec find i =
              if i + 3 >= String.length raw then None
              else if String.sub raw i 4 = "\r\n\r\n" then Some (i + 4)
              else find (i + 1)
            in
            match find 0 with
            | Some i -> String.sub raw i (String.length raw - i)
            | None -> ""
          in
          if code = 0 then Error ("bad response: " ^ raw)
          else Ok (code, body)
        with e -> Error (Printexc.to_string e))
