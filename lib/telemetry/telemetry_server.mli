(** Live telemetry service: a monitor domain with an in-process scrape
    endpoint.

    One extra domain periodically samples the telemetry registry (counters,
    latency histograms, flight contention heat, registered gauges) into an
    allocation-bounded ring of {e windowed deltas} — so a scraper sees
    rates and recent p50/p99, not just cumulative totals since process
    start — and serves them over a minimal HTTP/1.0 listener on a TCP or
    Unix socket:

    - [/metrics]        Prometheus exposition: cumulative counters and
                        histograms plus per-window rate/quantile gauges.
                        Scrape-safe while writer phases run (snapshots are
                        racy-but-defined reads of plain per-domain shards;
                        no scrape ever takes a lock a hot path holds).
    - [/snapshot.json]  the current (most recently completed) window as
                        hand-rolled JSON: rates, deltas, window histogram
                        quantiles, gauges, heat, health.
    - [/heat]           flight contention heatmap per tree level (window
                        and whole-ring views).
    - [/health]         200/[ok] normally; 503/[degraded] on pool watchdog
                        trips or contained pool failures in the last few
                        completed windows (span 3, so slow scrapers still
                        see short-lived trips), or while a chaos drill is
                        firing; 503/[critical] after an uncontained
                        [Pool_failure] (latched until [Health.reset]).
    - [/trace]          recent flight-recorder events.

    The monitor runs entirely on its own domain: the window ring is
    domain-confined state (never shared, so it needs no synchronization —
    the discipline the R1 lint fixtures illustrate), and the only
    cross-domain traffic is the racy-but-defined sampling reads plus a
    mutex-protected provider/health registry touched on cold paths only.
    When no server is started, nothing runs and no hot path changes: the
    health hooks cost one atomic bump on cold paths (watchdog join, failure
    aggregation) that are themselves off the hot path. *)

(** {1 Addresses} *)

type addr =
  | Tcp of string * int  (** host, port; port [0] binds an ephemeral port *)
  | Unix_sock of string  (** filesystem path; unlinked on clean shutdown *)

val parse_addr : string -> (addr, string) result
(** Accepts ["unix:PATH"], ["PORT"] (binds 127.0.0.1), and ["HOST:PORT"]. *)

val addr_to_string : addr -> string

(** {1 Lifecycle} *)

type t

val start :
  ?interval_ms:int -> ?window_count:int -> addr -> (t, string) result
(** Bind, listen, and spawn the monitor domain.  [interval_ms] is the
    sampling window length (default 1000, clamped to >= 10);
    [window_count] the ring capacity in windows (default 64, clamped to
    >= 2).  Returns [Error] if the address cannot be bound. *)

val bound : t -> addr
(** The actual bound address ([Tcp] with the resolved port when [start]
    was given port 0). *)

val stop : t -> unit
(** Signal the monitor domain over its self-pipe, join it, close the
    listener, and unlink the Unix socket path.  Idempotent. *)

(** {1 Extension points (cold paths)} *)

val register_gauges : string -> (unit -> (string * float) list) -> unit
(** [register_gauges group f] adds a gauge provider sampled once per
    window; each [(name, value)] pair is exposed as [group.name].  [f]
    runs on the monitor domain while writers may be live, so it must only
    perform racy-but-defined reads (e.g. [Sync.Counter] / plain-int
    reads) — never traverse shared structures. *)

val set_chaos_probe : (unit -> bool * int) option -> unit
(** Probe for chaos-drill health: returns (spec armed, cumulative
    failpoints fired).  Registered by binaries that link the chaos layer,
    so telemetry keeps zero dependencies on it. *)

(** Health inputs, bumped from the pool's cold paths and the binaries'
    failure handlers. *)
module Health : sig
  val note_watchdog_trip : unit -> unit
  (** A pool job exceeded its watchdog deadline (reported at the join). *)

  val note_pool_failure : workers:int -> unit
  (** A [Pool_failure] was aggregated at a join ([workers] = failed
      worker count); contained by the caller's retry/fallback logic. *)

  val note_uncontained : string -> unit
  (** An exception escaped containment (crash-dump path).  Latches
      [/health] to [critical] until {!reset}. *)

  val reset : unit -> unit
end

(** {1 Tiny HTTP/1.0 client}

    For tests and tooling: fetch a single path from a running server. *)

val fetch : addr -> string -> (int * string, string) result
(** [fetch addr path] returns (status code, body). *)
