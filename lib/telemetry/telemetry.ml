(* Domain-local telemetry: sharded counters, phase timers, Chrome traces.

   The design constraint comes straight from the paper: the hot paths this
   layer observes (optimistic reads, lease upgrades) derive their scalability
   from performing NO shared stores.  Instrumentation that bumped shared
   atomics would re-introduce exactly the cache-line ping-pong the B-tree is
   built to avoid and would invalidate every measurement taken through it.

   Therefore:
   - every domain owns a private [shard] — a plain mutable record of counts
     and an event buffer — reached through [Domain.DLS];
   - the hot path performs no synchronised operation at all: a counter bump
     is a DLS lookup plus a plain array store;
   - shards are registered once (at first use per domain) in a global,
     mutex-protected registry; aggregation walks the registry only when a
     snapshot or export is requested.  Snapshots of a running system are
     racy-but-defined reads of plain ints, exactly like the paper's own
     statistics;
   - every event site is gated on a plain [bool ref]: with telemetry
     disabled the cost is one load and one branch, so instrumentation can
     stay compiled into the hot loops.

   Timestamps come from CLOCK_MONOTONIC via a C stub ([now_ns]).  The trace
   exporter writes the Chrome trace-event JSON format (the [traceEvents]
   flavour), loadable in Perfetto or chrome://tracing; counters are also
   exported there as "C" samples so contention is visible on the timeline. *)

external now_ns : unit -> int = "repro_telemetry_now_ns" [@@noalloc]

(* ------------------------------------------------------------------ *)
(* JSON (emitter + parser)                                            *)
(* ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let buffer_add_escaped buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  let rec to_buffer buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else if Float.is_finite f then
        Buffer.add_string buf (Printf.sprintf "%.17g" f)
      else Buffer.add_string buf "null"
    | String s ->
      Buffer.add_char buf '"';
      buffer_add_escaped buf s;
      Buffer.add_char buf '"'
    | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf x)
        l;
      Buffer.add_char buf ']'
    | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          buffer_add_escaped buf k;
          Buffer.add_string buf "\":";
          to_buffer buf v)
        kvs;
      Buffer.add_char buf '}'

  let to_string j =
    let buf = Buffer.create 256 in
    to_buffer buf j;
    Buffer.contents buf

  let output oc j = output_string oc (to_string j)

  exception Parse_error of string

  (* Recursive-descent parser, sufficient for trace/metrics round-trips in
     tests and the CI smoke check (no external JSON dependency available). *)
  let of_string s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %C" c)
    in
    let literal word v =
      if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
      then begin
        pos := !pos + String.length word;
        v
      end
      else fail (Printf.sprintf "expected %s" word)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else
          let c = s.[!pos] in
          advance ();
          match c with
          | '"' -> Buffer.contents buf
          | '\\' -> (
            if !pos >= n then fail "unterminated escape";
            let e = s.[!pos] in
            advance ();
            match e with
            | '"' | '\\' | '/' ->
              Buffer.add_char buf e;
              go ()
            | 'n' ->
              Buffer.add_char buf '\n';
              go ()
            | 't' ->
              Buffer.add_char buf '\t';
              go ()
            | 'r' ->
              Buffer.add_char buf '\r';
              go ()
            | 'b' ->
              Buffer.add_char buf '\b';
              go ()
            | 'f' ->
              Buffer.add_char buf '\012';
              go ()
            | 'u' ->
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape"
              in
              (* non-ASCII escapes round-trip as '?' — enough for traces,
                 which only contain ASCII names *)
              Buffer.add_char buf (if code < 128 then Char.chr code else '?');
              go ()
            | _ -> fail "bad escape")
          | c ->
            Buffer.add_char buf c;
            go ()
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && is_num_char s.[!pos] do
        advance ()
      done;
      let tok = String.sub s start (!pos - start) in
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail "bad number")
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> String (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              items (v :: acc)
            | Some ']' ->
              advance ();
              List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items []
        end
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              members ((k, v) :: acc)
            | Some '}' ->
              advance ();
              Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
        end
      | Some _ -> parse_number ()
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let member k = function
    | Obj kvs -> List.assoc_opt k kvs
    | _ -> None
end

(* ------------------------------------------------------------------ *)
(* Counters                                                           *)
(* ------------------------------------------------------------------ *)

module Counter = struct
  type t =
    (* optimistic lock (lib/optlock) *)
    | Olock_read_spins
    | Olock_write_spins
    | Olock_validation_failures
    | Olock_upgrade_failures
    | Olock_write_aborts
    (* concurrent B-tree (lib/btree) *)
    | Btree_restarts
    | Btree_pessimistic_fallbacks
    | Btree_leaf_splits
    | Btree_inner_splits
    | Btree_root_splits
    | Btree_hint_hits
    | Btree_hint_misses
    (* batch write path (sorted-run inserts / structural merge) *)
    | Btree_batch_keys
    | Btree_batch_leaves
    | Btree_batch_splices
    (* domain pool (lib/parallel) *)
    | Pool_jobs
    | Pool_busy_ns
    | Pool_wall_ns
    | Pool_watchdog_trips
    (* semi-naive evaluation (lib/datalog) *)
    | Eval_iterations
    | Eval_rule_evals
    | Eval_delta_tuples
    (* fact IO (lib/datalog Dl_io) *)
    | Io_malformed_lines
    (* query/ingest server (lib/server Dl_server) *)
    | Server_requests
    | Server_busy_rejections
    | Server_phase_flips
    | Server_conns
    (* write-ahead log (lib/server Wal) *)
    | Wal_bytes
    | Wal_records
    | Wal_fsyncs
    | Wal_segments
    | Wal_compactions
    | Wal_torn_tails
    | Wal_replayed_records

  let all =
    [
      Olock_read_spins; Olock_write_spins; Olock_validation_failures;
      Olock_upgrade_failures; Olock_write_aborts; Btree_restarts;
      Btree_pessimistic_fallbacks; Btree_leaf_splits; Btree_inner_splits;
      Btree_root_splits; Btree_hint_hits; Btree_hint_misses; Btree_batch_keys;
      Btree_batch_leaves; Btree_batch_splices; Pool_jobs; Pool_busy_ns;
      Pool_wall_ns; Pool_watchdog_trips; Eval_iterations; Eval_rule_evals;
      Eval_delta_tuples; Io_malformed_lines; Server_requests;
      Server_busy_rejections; Server_phase_flips; Server_conns; Wal_bytes;
      Wal_records; Wal_fsyncs; Wal_segments; Wal_compactions; Wal_torn_tails;
      Wal_replayed_records;
    ]

  let index = function
    | Olock_read_spins -> 0
    | Olock_write_spins -> 1
    | Olock_validation_failures -> 2
    | Olock_upgrade_failures -> 3
    | Olock_write_aborts -> 4
    | Btree_restarts -> 5
    | Btree_pessimistic_fallbacks -> 6
    | Btree_leaf_splits -> 7
    | Btree_inner_splits -> 8
    | Btree_root_splits -> 9
    | Btree_hint_hits -> 10
    | Btree_hint_misses -> 11
    | Btree_batch_keys -> 12
    | Btree_batch_leaves -> 13
    | Btree_batch_splices -> 14
    | Pool_jobs -> 15
    | Pool_busy_ns -> 16
    | Pool_wall_ns -> 17
    | Pool_watchdog_trips -> 18
    | Eval_iterations -> 19
    | Eval_rule_evals -> 20
    | Eval_delta_tuples -> 21
    | Io_malformed_lines -> 22
    | Server_requests -> 23
    | Server_busy_rejections -> 24
    | Server_phase_flips -> 25
    | Server_conns -> 26
    | Wal_bytes -> 27
    | Wal_records -> 28
    | Wal_fsyncs -> 29
    | Wal_segments -> 30
    | Wal_compactions -> 31
    | Wal_torn_tails -> 32
    | Wal_replayed_records -> 33

  let count = List.length all

  let name = function
    | Olock_read_spins -> "olock.read_spins"
    | Olock_write_spins -> "olock.write_spins"
    | Olock_validation_failures -> "olock.validation_failures"
    | Olock_upgrade_failures -> "olock.upgrade_failures"
    | Olock_write_aborts -> "olock.write_aborts"
    | Btree_restarts -> "btree.restarts"
    | Btree_pessimistic_fallbacks -> "btree.pessimistic_fallbacks"
    | Btree_leaf_splits -> "btree.leaf_splits"
    | Btree_inner_splits -> "btree.inner_splits"
    | Btree_root_splits -> "btree.root_splits"
    | Btree_hint_hits -> "btree.hint_hits"
    | Btree_hint_misses -> "btree.hint_misses"
    | Btree_batch_keys -> "btree.batch_keys"
    | Btree_batch_leaves -> "btree.batch_leaves"
    | Btree_batch_splices -> "btree.batch_splices"
    | Pool_jobs -> "pool.jobs"
    | Pool_busy_ns -> "pool.busy_ns"
    | Pool_wall_ns -> "pool.wall_ns"
    | Pool_watchdog_trips -> "pool.watchdog_trips"
    | Eval_iterations -> "eval.iterations"
    | Eval_rule_evals -> "eval.rule_evals"
    | Eval_delta_tuples -> "eval.delta_tuples"
    | Io_malformed_lines -> "io.malformed_lines"
    | Server_requests -> "server.requests"
    | Server_busy_rejections -> "server.busy_rejections"
    | Server_phase_flips -> "server.phase_flips"
    | Server_conns -> "server.conns"
    | Wal_bytes -> "server.wal.bytes"
    | Wal_records -> "server.wal.records"
    | Wal_fsyncs -> "server.wal.fsyncs"
    | Wal_segments -> "server.wal.segments"
    | Wal_compactions -> "server.wal.compactions"
    | Wal_torn_tails -> "server.wal.torn_tails"
    | Wal_replayed_records -> "server.wal.replayed_records"

  (* Unit metadata: most counters are event counts, but the pool time
     accumulators are nanosecond totals.  Exporters use this to render
     durations instead of raw tick counts. *)
  type unit_kind = Count | Nanoseconds

  let unit_of = function
    | Pool_busy_ns | Pool_wall_ns -> Nanoseconds
    | _ -> Count

  (* One-line help strings for exporters (Prometheus HELP lines). *)
  let help = function
    | Olock_read_spins -> "Backoff rounds spent in start_read waiting out a writer."
    | Olock_write_spins -> "Backoff rounds spent in start_write waiting for the lock."
    | Olock_validation_failures ->
      "Optimistic reads discarded after observing a concurrent write."
    | Olock_upgrade_failures ->
      "Failed read-to-write upgrade CAS attempts (stale lease)."
    | Olock_write_aborts -> "Write permits released without modification."
    | Btree_restarts ->
      "Insertions restarted from the root after a failed validation or upgrade."
    | Btree_pessimistic_fallbacks ->
      "Descents that exhausted the optimistic retry budget and fell back to locking."
    | Btree_leaf_splits -> "Leaf node splits."
    | Btree_inner_splits -> "Inner node splits."
    | Btree_root_splits -> "Splits that grew the tree by one level."
    | Btree_hint_hits -> "Insertions satisfied by the per-thread leaf hint."
    | Btree_hint_misses -> "Hinted insertions that had to descend from the root."
    | Btree_batch_keys -> "Keys offered to the sorted-run batch insert path."
    | Btree_batch_leaves -> "Leaf write-lock acquisitions of the batch path."
    | Btree_batch_splices -> "Bulk gap splices performed by the batch path."
    | Pool_jobs -> "Fork-join jobs executed."
    | Pool_busy_ns -> "Summed per-worker busy time inside jobs."
    | Pool_wall_ns -> "Summed job wall time times worker count."
    | Pool_watchdog_trips -> "Pool jobs whose wall time exceeded the watchdog deadline."
    | Eval_iterations -> "Semi-naive fixed-point rounds."
    | Eval_rule_evals -> "Rule-version evaluations."
    | Eval_delta_tuples -> "Tuples promoted from new into full relations."
    | Io_malformed_lines -> "Corrupt fact lines skipped by the lenient loader."
    | Server_requests -> "Protocol requests admitted by the query server."
    | Server_busy_rejections ->
      "Requests rejected with a BUSY response (backpressure or chaos drill)."
    | Server_phase_flips ->
      "Writer-phase flips (engine generation rebuilds) performed by the server."
    | Server_conns -> "Client connections accepted by the query server."
    | Wal_bytes -> "Bytes appended to the write-ahead log."
    | Wal_records -> "Records appended to the write-ahead log."
    | Wal_fsyncs -> "fsync calls issued by the write-ahead log."
    | Wal_segments -> "Write-ahead log segment files created (incl. rotation)."
    | Wal_compactions ->
      "Snapshot compactions: fact store rewritten as a snapshot segment."
    | Wal_torn_tails ->
      "Torn tails silently truncated during write-ahead log recovery."
    | Wal_replayed_records ->
      "Write-ahead log records replayed during recovery."
end

(* ------------------------------------------------------------------ *)
(* Latency histograms                                                 *)
(* ------------------------------------------------------------------ *)

module Hist = struct
  type t =
    | Btree_insert_ns
    | Btree_find_ns
    | Btree_bound_ns
    | Btree_batch_ns
    | Btree_fallback_ns
    | Olock_write_wait_ns
    | Pool_job_ns
    | Eval_iteration_ns
    | Server_ingest_ns
    | Server_query_ns
    | Server_flip_ns
    | Wal_append_ns
    | Wal_fsync_ns

  let all =
    [
      Btree_insert_ns; Btree_find_ns; Btree_bound_ns; Btree_batch_ns;
      Btree_fallback_ns; Olock_write_wait_ns; Pool_job_ns; Eval_iteration_ns;
      Server_ingest_ns; Server_query_ns; Server_flip_ns; Wal_append_ns;
      Wal_fsync_ns;
    ]

  let index = function
    | Btree_insert_ns -> 0
    | Btree_find_ns -> 1
    | Btree_bound_ns -> 2
    | Btree_batch_ns -> 3
    | Btree_fallback_ns -> 4
    | Olock_write_wait_ns -> 5
    | Pool_job_ns -> 6
    | Eval_iteration_ns -> 7
    | Server_ingest_ns -> 8
    | Server_query_ns -> 9
    | Server_flip_ns -> 10
    | Wal_append_ns -> 11
    | Wal_fsync_ns -> 12

  let count = List.length all

  let name = function
    | Btree_insert_ns -> "btree.insert_ns"
    | Btree_find_ns -> "btree.find_ns"
    | Btree_bound_ns -> "btree.lower_bound_ns"
    | Btree_batch_ns -> "btree.batch_ns"
    | Btree_fallback_ns -> "btree.fallback_ns"
    | Olock_write_wait_ns -> "olock.write_wait_ns"
    | Pool_job_ns -> "pool.job_ns"
    | Eval_iteration_ns -> "eval.iteration_ns"
    | Server_ingest_ns -> "server.ingest_ns"
    | Server_query_ns -> "server.query_ns"
    | Server_flip_ns -> "server.flip_ns"
    | Wal_append_ns -> "server.wal.append_ns"
    | Wal_fsync_ns -> "server.wal.fsync_ns"

  let help = function
    | Btree_insert_ns -> "Sampled B-tree insert latency (ns)."
    | Btree_find_ns -> "Sampled B-tree find/mem latency (ns)."
    | Btree_bound_ns -> "Sampled B-tree lower/upper bound latency (ns)."
    | Btree_batch_ns -> "Batch insert call latency, one event per sorted run (ns)."
    | Btree_fallback_ns -> "Pessimistic fallback descent latency (ns)."
    | Olock_write_wait_ns ->
      "Contended write acquisitions: first failed CAS to acquisition (ns)."
    | Pool_job_ns -> "Fork-join job wall time (ns)."
    | Eval_iteration_ns -> "Semi-naive fixed-point round wall time (ns)."
    | Server_ingest_ns ->
      "Ingest service latency: admission to the end of the applying writer \
       phase (ns)."
    | Server_query_ns -> "Query service latency: admission to response (ns)."
    | Server_flip_ns ->
      "Writer-phase flip duration (engine generation rebuild, ns)."
    | Wal_append_ns -> "Write-ahead log record append latency (ns)."
    | Wal_fsync_ns -> "Write-ahead log fsync latency (ns)."

  (* Per-op B-tree sites fire millions of times per second, so they are
     sampled 1-in-2^shift (the clock_gettime pair would otherwise dominate
     the operation it measures).  The coarse sites record every event:
     olock write waits are contention (rare by construction), pool jobs and
     eval iterations are milliseconds apart. *)
  (* Batch calls are coarse by construction (one per sorted run or merge
     partition), so they record every event like the other coarse sites. *)
  (* Pessimistic fallbacks are cold by construction (a fallback means the
     optimistic retry budget ran dry), so every one is recorded. *)
  (* Server request sites are coarse too: one event per protocol request or
     phase flip, paced by socket IO — far below the per-op B-tree rates. *)
  let sample_shift = function
    | Btree_insert_ns | Btree_find_ns | Btree_bound_ns -> 6
    | Btree_batch_ns | Btree_fallback_ns | Olock_write_wait_ns | Pool_job_ns
    | Eval_iteration_ns | Server_ingest_ns | Server_query_ns | Server_flip_ns
    | Wal_append_ns | Wal_fsync_ns ->
      0

  (* Log-linear (HDR-style) bucketing: values below [2^sub_bits] get exact
     buckets; above, each power-of-two octave is divided into [2^sub_bits]
     equal sub-buckets, bounding the relative quantile error by
     2^-sub_bits.  400 buckets cover [0, 2^52) ns — over a month. *)
  let sub_bits = 3
  let sub_buckets = 1 lsl sub_bits
  let bucket_count = 400

  let bucket_of_value v =
    let v = if v < 0 then 0 else v in
    if v < sub_buckets then v
    else begin
      (* position of the highest set bit of [v]; >= sub_bits here *)
      let o = ref sub_bits and x = ref (v lsr sub_bits) in
      while !x > 1 do
        x := !x lsr 1;
        incr o
      done;
      let b =
        ((!o - sub_bits + 1) lsl sub_bits) + (v lsr (!o - sub_bits)) - sub_buckets
      in
      if b >= bucket_count then bucket_count - 1 else b
    end

  (* [lo, hi) of a bucket; inverse of [bucket_of_value] (the top bucket also
     absorbs every clamped value above its nominal range). *)
  let bucket_bounds b =
    if b < sub_buckets then (b, b + 1)
    else begin
      let o = (b lsr sub_bits) + sub_bits - 1 in
      let width = 1 lsl (o - sub_bits) in
      let lo = (sub_buckets + (b land (sub_buckets - 1))) * width in
      (lo, lo + width)
    end
end

(* ------------------------------------------------------------------ *)
(* Trace events                                                       *)
(* ------------------------------------------------------------------ *)

type arg_value = A_int of int | A_float of float | A_string of string

type event = {
  ev_name : string;
  ev_cat : string;
  ev_ph : char; (* 'X' complete, 'i' instant, 'C' counter sample *)
  ev_ts : int; (* ns, monotonic *)
  ev_dur : int; (* ns; 0 unless 'X' *)
  ev_tid : int; (* trace lane; domain id unless overridden *)
  ev_args : (string * arg_value) list;
}

(* ------------------------------------------------------------------ *)
(* Domain-local shards                                                *)
(* ------------------------------------------------------------------ *)

type shard = {
  sh_domain : int;
  counts : int array; (* plain mutable: single-writer, racy readers *)
  hist_counts : int array; (* flat [Hist.count * Hist.bucket_count] *)
  hist_sum : int array; (* per-histogram ns totals *)
  hist_max : int array; (* per-histogram exact maxima *)
  hist_n : int array; (* per-histogram sample counts *)
  mutable sh_rng : int; (* xorshift state for the sampling decision *)
  mutable events : event array; (* grow-only buffer, [sh_nev] used *)
  mutable sh_nev : int;
}

(* Deterministic per-shard sampling: a private xorshift stream seeded from a
   global seed mixed with the domain id, so a fixed seed reproduces the same
   sample set run-to-run (single-domain) and shards never share state. *)
let hist_seed = ref 0x7FB5D329

let mix_seed seed d =
  let z = (seed + ((d + 1) * 0x9E3779B9)) land max_int in
  let z = z lxor (z lsr 16) in
  let z = z * 0x85EBCA6B land max_int in
  let z = z lxor (z lsr 13) in
  let z = z * 0xC2B2AE35 land max_int in
  let z = z lxor (z lsr 16) in
  if z = 0 then 0x2545F491 else z

let rng_next sh =
  let r = sh.sh_rng in
  let r = r lxor (r lsl 13) land max_int in
  let r = r lxor (r lsr 7) in
  let r = r lxor (r lsl 17) land max_int in
  let r = if r = 0 then 0x2545F491 else r in
  sh.sh_rng <- r;
  r

let dummy_event =
  { ev_name = ""; ev_cat = ""; ev_ph = 'i'; ev_ts = 0; ev_dur = 0; ev_tid = 0; ev_args = [] }

(* The registry is append-only: shards of terminated domains stay listed so
   their counts survive into snapshots taken after a pool shuts down. *)
let registry : shard list ref = ref []
let registry_mutex = Mutex.create ()

let shard_key =
  Domain.DLS.new_key (fun () ->
      let d = (Domain.self () :> int) in
      let sh =
        {
          sh_domain = d;
          counts = Array.make Counter.count 0;
          hist_counts = Array.make (Hist.count * Hist.bucket_count) 0;
          hist_sum = Array.make Hist.count 0;
          hist_max = Array.make Hist.count 0;
          hist_n = Array.make Hist.count 0;
          sh_rng = mix_seed !hist_seed d;
          events = Array.make 64 dummy_event;
          sh_nev = 0;
        }
      in
      Mutex.protect registry_mutex (fun () -> registry := sh :: !registry);
      sh)

let set_hist_seed s =
  hist_seed := s;
  Mutex.protect registry_mutex (fun () ->
      List.iter (fun sh -> sh.sh_rng <- mix_seed s sh.sh_domain) !registry)

(* Master switches.  Plain refs: they are flipped only from quiescent code
   (before/after parallel sections); racy readers seeing a stale value skip
   or record a handful of events, which is harmless. *)
let counters_on = ref false
let tracing_on = ref false

let enabled () = !counters_on
let tracing () = !tracing_on

let enable ?(tracing = false) () =
  counters_on := true;
  if tracing then tracing_on := true

let disable () =
  counters_on := false;
  tracing_on := false

let reset () =
  Mutex.protect registry_mutex (fun () ->
      List.iter
        (fun sh ->
          Array.fill sh.counts 0 Counter.count 0;
          Array.fill sh.hist_counts 0 (Array.length sh.hist_counts) 0;
          Array.fill sh.hist_sum 0 Hist.count 0;
          Array.fill sh.hist_max 0 Hist.count 0;
          Array.fill sh.hist_n 0 Hist.count 0;
          (* reseed so a fixed seed makes sampling reproducible post-reset *)
          sh.sh_rng <- mix_seed !hist_seed sh.sh_domain;
          sh.sh_nev <- 0)
        !registry)

(* The per-event fast path: one load + branch when disabled. *)
let bump c =
  if !counters_on then begin
    let sh = Domain.DLS.get shard_key in
    let i = Counter.index c in
    Array.unsafe_set sh.counts i (Array.unsafe_get sh.counts i + 1)
  end

let add c n =
  if !counters_on then begin
    let sh = Domain.DLS.get shard_key in
    let i = Counter.index c in
    Array.unsafe_set sh.counts i (Array.unsafe_get sh.counts i + n)
  end

(* Histogram recording.  [hist_start] makes the sampling decision (behind the
   master flag: disabled cost is one load + one branch, returning 0);
   [hist_end] is a no-op unless the matching start actually sampled. *)

let hist_record m d =
  if !counters_on then begin
    let sh = Domain.DLS.get shard_key in
    let d = if d < 0 then 0 else d in
    let i = Hist.index m in
    let b = (i * Hist.bucket_count) + Hist.bucket_of_value d in
    Array.unsafe_set sh.hist_counts b (Array.unsafe_get sh.hist_counts b + 1);
    sh.hist_sum.(i) <- sh.hist_sum.(i) + d;
    if d > sh.hist_max.(i) then sh.hist_max.(i) <- d;
    sh.hist_n.(i) <- sh.hist_n.(i) + 1
  end

let hist_start m =
  if not !counters_on then 0
  else begin
    let shift = Hist.sample_shift m in
    if shift = 0 then now_ns ()
    else begin
      let sh = Domain.DLS.get shard_key in
      if rng_next sh land ((1 lsl shift) - 1) = 0 then now_ns () else 0
    end
  end

let hist_end m t0 = if t0 > 0 then hist_record m (now_ns () - t0)
let hist_time () = if !counters_on then now_ns () else 0

let record ev =
  let sh = Domain.DLS.get shard_key in
  let cap = Array.length sh.events in
  if sh.sh_nev = cap then begin
    let bigger = Array.make (cap * 2) dummy_event in
    Array.blit sh.events 0 bigger 0 cap;
    sh.events <- bigger
  end;
  sh.events.(sh.sh_nev) <- ev;
  sh.sh_nev <- sh.sh_nev + 1

let emit ?(tid = -1) ?(args = []) ?(cat = "app") ~ph ~ts ~dur name =
  if !tracing_on then
    let sh = Domain.DLS.get shard_key in
    record
      {
        ev_name = name;
        ev_cat = cat;
        ev_ph = ph;
        ev_ts = ts;
        ev_dur = dur;
        ev_tid = (if tid >= 0 then tid else sh.sh_domain);
        ev_args = args;
      }

let span_start () = if !tracing_on then now_ns () else 0

let span_end ?tid ?args ?cat name t0 =
  if !tracing_on && t0 > 0 then
    let t1 = now_ns () in
    emit ?tid ?args ?cat ~ph:'X' ~ts:t0 ~dur:(t1 - t0) name

let with_span ?tid ?args ?cat name f =
  if not !tracing_on then f ()
  else begin
    let t0 = now_ns () in
    match f () with
    | r ->
      span_end ?tid ?args ?cat name t0;
      r
    | exception e ->
      span_end ?tid ?args ?cat name t0;
      raise e
  end

let instant ?tid ?args ?cat name =
  if !tracing_on then emit ?tid ?args ?cat ~ph:'i' ~ts:(now_ns ()) ~dur:0 name

let counter_sample ?cat name value =
  if !tracing_on then
    emit ?cat ~args:[ (name, A_int value) ] ~ph:'C' ~ts:(now_ns ()) ~dur:0 name

(* ------------------------------------------------------------------ *)
(* Snapshots                                                          *)
(* ------------------------------------------------------------------ *)

type hist = {
  h_counts : int array; (* [Hist.bucket_count], merged over shards *)
  h_total : int;
  h_sum : int; (* ns *)
  h_max : int; (* exact, not bucketed *)
}

type snapshot = {
  per_domain : (int * int array) list; (* domain id, per-counter counts *)
  totals : int array;
  hists : hist array; (* indexed by [Hist.index] *)
}

let snapshot () =
  let shards = Mutex.protect registry_mutex (fun () -> !registry) in
  let totals = Array.make Counter.count 0 in
  let per_domain =
    List.rev_map
      (fun sh ->
        let copy = Array.map (fun c -> c) sh.counts in
        Array.iteri (fun i c -> totals.(i) <- totals.(i) + c) copy;
        (sh.sh_domain, copy))
      shards
  in
  (* drop all-zero shards (e.g. long-dead domains after a reset) and order
     by domain id for stable output *)
  let per_domain =
    List.filter (fun (_, c) -> Array.exists (fun x -> x <> 0) c) per_domain
  in
  let per_domain = List.sort (fun (a, _) (b, _) -> compare a b) per_domain in
  (* merge histogram shards (all shards, including count-silent ones) *)
  let hb = Array.make (Hist.count * Hist.bucket_count) 0 in
  let hsum = Array.make Hist.count 0 in
  let hmax = Array.make Hist.count 0 in
  let hn = Array.make Hist.count 0 in
  List.iter
    (fun sh ->
      for i = 0 to Array.length hb - 1 do
        hb.(i) <- hb.(i) + sh.hist_counts.(i)
      done;
      for i = 0 to Hist.count - 1 do
        hsum.(i) <- hsum.(i) + sh.hist_sum.(i);
        if sh.hist_max.(i) > hmax.(i) then hmax.(i) <- sh.hist_max.(i);
        hn.(i) <- hn.(i) + sh.hist_n.(i)
      done)
    shards;
  let hists =
    Array.init Hist.count (fun i ->
        {
          h_counts = Array.sub hb (i * Hist.bucket_count) Hist.bucket_count;
          h_total = hn.(i);
          h_sum = hsum.(i);
          h_max = hmax.(i);
        })
  in
  { per_domain; totals; hists }

let get s c = s.totals.(Counter.index c)

let hint_hit_rate s =
  let h = get s Counter.Btree_hint_hits and m = get s Counter.Btree_hint_misses in
  if h + m = 0 then 0.0 else float_of_int h /. float_of_int (h + m)

let hist_of s m = s.hists.(Hist.index m)

(* Quantile estimate: midpoint of the bucket holding the rank-q sample,
   clamped to the exact tracked maximum (keeps p99 <= max even when the max
   sits low inside its bucket). *)
let hist_quantile h q =
  if h.h_total = 0 then 0
  else begin
    let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
    let rank =
      let r = int_of_float (Float.ceil (q *. float_of_int h.h_total)) in
      if r < 1 then 1 else r
    in
    let rec go b acc =
      if b >= Hist.bucket_count then h.h_max
      else begin
        let acc = acc + h.h_counts.(b) in
        if acc >= rank then begin
          let lo, hi = Hist.bucket_bounds b in
          let mid = (lo + hi - 1) / 2 in
          if mid > h.h_max then h.h_max else mid
        end
        else go (b + 1) acc
      end
    in
    go 0 0
  end

let hist_mean h =
  if h.h_total = 0 then 0.0
  else float_of_int h.h_sum /. float_of_int h.h_total

let imbalance s =
  (* ratio of summed worker busy time to summed job wall time x workers is
     job-dependent; report busy/wall, a utilisation proxy: 1.0 = perfectly
     balanced pool, lower = idle workers *)
  let busy = get s Counter.Pool_busy_ns and wall = get s Counter.Pool_wall_ns in
  if wall = 0 then 1.0 else float_of_int busy /. float_of_int wall

(* Human-readable duration for ns-valued counters and quantiles. *)
let ns_string ns =
  let f = float_of_int ns in
  if ns >= 1_000_000_000 then Printf.sprintf "%.3fs" (f /. 1e9)
  else if ns >= 1_000_000 then Printf.sprintf "%.3fms" (f /. 1e6)
  else if ns >= 1_000 then Printf.sprintf "%.3fus" (f /. 1e3)
  else Printf.sprintf "%dns" ns

(* "pool.busy_ns" -> "pool.busy" (value rendered as a duration instead). *)
let chop_ns_suffix n =
  if String.length n > 3 && String.sub n (String.length n - 3) 3 = "_ns" then
    String.sub n 0 (String.length n - 3)
  else n

let pp_snapshot fmt s =
  let pr fmt_str = Format.fprintf fmt fmt_str in
  pr "@[<v>telemetry (aggregated over %d domain%s):@,"
    (List.length s.per_domain)
    (if List.length s.per_domain = 1 then "" else "s");
  List.iter
    (fun c ->
      let v = get s c in
      if v <> 0 then
        match Counter.unit_of c with
        | Counter.Count -> pr "  %-28s %d@," (Counter.name c) v
        | Counter.Nanoseconds ->
          pr "  %-28s %s@," (chop_ns_suffix (Counter.name c)) (ns_string v))
    Counter.all;
  pr "  %-28s %.1f%%@," "btree.hint_hit_rate" (100.0 *. hint_hit_rate s);
  pr "  %-28s %.2f@," "pool.utilisation" (imbalance s);
  if List.exists (fun m -> (hist_of s m).h_total > 0) Hist.all then begin
    pr "latency (sampled):@,";
    List.iter
      (fun m ->
        let h = hist_of s m in
        if h.h_total > 0 then
          pr "  %-28s n=%-8d p50=%-9s p90=%-9s p99=%-9s max=%s@," (Hist.name m)
            h.h_total
            (ns_string (hist_quantile h 0.5))
            (ns_string (hist_quantile h 0.9))
            (ns_string (hist_quantile h 0.99))
            (ns_string h.h_max))
      Hist.all
  end;
  (* a single-domain breakdown repeats the aggregate line for line — skip it *)
  if List.length s.per_domain > 1 then begin
    pr "per-domain breakdown (aborts / restarts / splits / hint hits+misses):@,";
    List.iter
      (fun (d, counts) ->
        let g c = counts.(Counter.index c) in
        pr
          "  domain %-3d  val_fail=%d upg_fail=%d wr_abort=%d restarts=%d \
           splits=%d/%d/%d hints=%d+%d@,"
          d
          (g Counter.Olock_validation_failures)
          (g Counter.Olock_upgrade_failures)
          (g Counter.Olock_write_aborts)
          (g Counter.Btree_restarts)
          (g Counter.Btree_leaf_splits)
          (g Counter.Btree_inner_splits)
          (g Counter.Btree_root_splits)
          (g Counter.Btree_hint_hits)
          (g Counter.Btree_hint_misses))
      s.per_domain
  end;
  pr "@]"

let counters_json s =
  Json.Obj
    (List.map
       (fun c ->
         let v = get s c in
         match Counter.unit_of c with
         | Counter.Count -> (Counter.name c, Json.Int v)
         | Counter.Nanoseconds ->
           (* export as seconds under an "_s" name, e.g. "pool.busy_s" *)
           (chop_ns_suffix (Counter.name c) ^ "_s", Json.Float (float_of_int v /. 1e9)))
       Counter.all
    @ [
        ("btree.hint_hit_rate", Json.Float (hint_hit_rate s));
        ("pool.utilisation", Json.Float (imbalance s));
      ])

let histograms_json s =
  Json.Obj
    (List.filter_map
       (fun m ->
         let h = hist_of s m in
         if h.h_total = 0 then None
         else begin
           let buckets = ref [] in
           for b = Hist.bucket_count - 1 downto 0 do
             let c = h.h_counts.(b) in
             if c > 0 then begin
               let lo, hi = Hist.bucket_bounds b in
               buckets := Json.List [ Json.Int lo; Json.Int hi; Json.Int c ] :: !buckets
             end
           done;
           Some
             ( Hist.name m,
               Json.Obj
                 [
                   ("count", Json.Int h.h_total);
                   ("sample_period", Json.Int (1 lsl Hist.sample_shift m));
                   ("sum_ns", Json.Int h.h_sum);
                   ("mean_ns", Json.Float (hist_mean h));
                   ("p50_ns", Json.Int (hist_quantile h 0.5));
                   ("p90_ns", Json.Int (hist_quantile h 0.9));
                   ("p99_ns", Json.Int (hist_quantile h 0.99));
                   ("max_ns", Json.Int h.h_max);
                   (* nonzero buckets only, as [lo, hi, count] triples *)
                   ("buckets", Json.List !buckets);
                 ] )
         end)
       Hist.all)

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition                                         *)
(* ------------------------------------------------------------------ *)

module Prom = struct
  type t = { buf : Buffer.t; seen : (string, unit) Hashtbl.t }

  let create () = { buf = Buffer.create 1024; seen = Hashtbl.create 32 }

  let sanitize name =
    String.map
      (fun c ->
        match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c | _ -> '_')
      name

  let number v =
    if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
    else if Float.is_finite v then Printf.sprintf "%.9g" v
    else if v > 0.0 then "+Inf"
    else if v < 0.0 then "-Inf"
    else "NaN"

  (* Exposition-format escaping (not OCaml %S escaping, which differs on
     tabs and non-printables): HELP text escapes backslash and newline;
     label values additionally escape the double quote. *)
  let escape ~quote s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '"' when quote -> Buffer.add_string b "\\\""
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let escape_help = escape ~quote:false
  let escape_label_value = escape ~quote:true

  (* HELP/TYPE are emitted once per metric family, on first use. *)
  let header t ?help name typ =
    if not (Hashtbl.mem t.seen name) then begin
      Hashtbl.add t.seen name ();
      (match help with
      | Some h ->
        Buffer.add_string t.buf
          (Printf.sprintf "# HELP %s %s\n" name (escape_help h))
      | None -> ());
      Buffer.add_string t.buf (Printf.sprintf "# TYPE %s %s\n" name typ)
    end

  let labels_string = function
    | [] -> ""
    | l ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) ->
               Printf.sprintf "%s=\"%s\"" (sanitize k) (escape_label_value v))
             l)
      ^ "}"

  let line t name labels v =
    Buffer.add_string t.buf (name ^ labels_string labels ^ " " ^ number v ^ "\n")

  let metric t ?help ~typ ?(labels = []) name v =
    let name = sanitize name in
    header t ?help name typ;
    line t name labels v

  let counter t ?help ?labels name v = metric t ?help ~typ:"counter" ?labels name v
  let gauge t ?help ?labels name v = metric t ?help ~typ:"gauge" ?labels name v
  let to_string t = Buffer.contents t.buf
end

let prometheus_of_snapshot ?(prefix = "repro") prom s =
  let base n = prefix ^ "_" ^ Prom.sanitize n in
  List.iter
    (fun c ->
      let v = get s c in
      let help = Counter.help c in
      match Counter.unit_of c with
      | Counter.Count ->
        Prom.counter prom ~help (base (Counter.name c) ^ "_total") (float_of_int v)
      | Counter.Nanoseconds ->
        Prom.counter prom ~help
          (base (chop_ns_suffix (Counter.name c)) ^ "_seconds_total")
          (float_of_int v /. 1e9))
    Counter.all;
  Prom.gauge prom
    ~help:"Hint hits over hinted B-tree operations (hits / (hits + misses))."
    (base "btree.hint_hit_rate") (hint_hit_rate s);
  Prom.gauge prom
    ~help:"Summed worker busy time over summed job wall time (1.0 = balanced)."
    (base "pool.utilisation") (imbalance s);
  List.iter
    (fun m ->
      let h = hist_of s m in
      if h.h_total > 0 then begin
        let name = base (Hist.name m) in
        Prom.header prom ~help:(Hist.help m) name "histogram";
        (* cumulative counts at the inclusive upper bound of each nonzero
           bucket (values are integral ns, so le = hi - 1) *)
        let acc = ref 0 in
        for b = 0 to Hist.bucket_count - 1 do
          let c = h.h_counts.(b) in
          if c > 0 then begin
            acc := !acc + c;
            let _, hi = Hist.bucket_bounds b in
            Prom.line prom (name ^ "_bucket")
              [ ("le", string_of_int (hi - 1)) ]
              (float_of_int !acc)
          end
        done;
        Prom.line prom (name ^ "_bucket") [ ("le", "+Inf") ] (float_of_int h.h_total);
        Prom.line prom (name ^ "_sum") [] (float_of_int h.h_sum);
        Prom.line prom (name ^ "_count") [] (float_of_int h.h_total);
        let q p =
          Prom.gauge prom
            ~help:(Hist.help m ^ " " ^ p ^ " quantile estimate.")
            (name ^ "_" ^ p)
        in
        q "p50" (float_of_int (hist_quantile h 0.5));
        q "p90" (float_of_int (hist_quantile h 0.9));
        q "p99" (float_of_int (hist_quantile h 0.99));
        Prom.gauge prom
          ~help:(Hist.help m ^ " Exact maximum.")
          (name ^ "_max")
          (float_of_int h.h_max)
      end)
    Hist.all

(* ------------------------------------------------------------------ *)
(* Chrome trace export                                                *)
(* ------------------------------------------------------------------ *)

let ph_string = function
  | 'X' -> "X"
  | 'i' -> "i"
  | 'C' -> "C"
  | c -> String.make 1 c

let arg_json = function
  | A_int i -> Json.Int i
  | A_float f -> Json.Float f
  | A_string s -> Json.String s

(* Chrome traces use microsecond floats; ns-precision survives as decimals. *)
let us_of_ns ns = float_of_int ns /. 1000.0

let event_json ev =
  let base =
    [
      ("name", Json.String ev.ev_name);
      ("cat", Json.String ev.ev_cat);
      ("ph", Json.String (ph_string ev.ev_ph));
      ("ts", Json.Float (us_of_ns ev.ev_ts));
      ("pid", Json.Int 1);
      ("tid", Json.Int ev.ev_tid);
    ]
  in
  let dur = if ev.ev_ph = 'X' then [ ("dur", Json.Float (us_of_ns ev.ev_dur)) ] else [] in
  let args =
    match (ev.ev_ph, ev.ev_args) with
    | _, [] -> []
    | _, l -> [ ("args", Json.Obj (List.map (fun (k, v) -> (k, arg_json v)) l)) ]
  in
  let scope = if ev.ev_ph = 'i' then [ ("s", Json.String "t") ] else [] in
  Json.Obj (base @ dur @ args @ scope)

(* External trace providers (e.g. the flight recorder) contribute extra
   ready-made trace-event objects at export time, so subsystems layered on
   top of telemetry can ride in the same Chrome trace without telemetry
   depending on them. *)
let trace_providers : (unit -> Json.t list) list ref = ref []
let register_trace_provider f = trace_providers := f :: !trace_providers

let trace_json ?(process_name = "datalog") () =
  let shards = Mutex.protect registry_mutex (fun () -> !registry) in
  let events =
    List.concat_map
      (fun sh -> List.init sh.sh_nev (fun i -> sh.events.(i)))
      shards
  in
  let events = List.sort (fun a b -> compare a.ev_ts b.ev_ts) events in
  (* final counter samples so the trace carries the aggregate numbers even
     when no 'C' samples were emitted during the run *)
  let s = snapshot () in
  let tail_ts =
    match List.rev events with e :: _ -> e.ev_ts + e.ev_dur | [] -> now_ns ()
  in
  let counter_events =
    List.filter_map
      (fun c ->
        let v = get s c in
        if v = 0 then None
        else
          Some
            {
              ev_name = Counter.name c;
              ev_cat = "counters";
              ev_ph = 'C';
              ev_ts = tail_ts;
              ev_dur = 0;
              ev_tid = 0;
              ev_args = [ (Counter.name c, A_int v) ];
            })
      Counter.all
  in
  let meta =
    Json.Obj
      [
        ("name", Json.String "process_name");
        ("ph", Json.String "M");
        ("ts", Json.Float 0.0);
        ("pid", Json.Int 1);
        ("tid", Json.Int 0);
        ("args", Json.Obj [ ("name", Json.String process_name) ]);
      ]
  in
  let provider_events = List.concat_map (fun f -> f ()) !trace_providers in
  Json.Obj
    [
      ( "traceEvents",
        Json.List
          ((meta :: List.map event_json (events @ counter_events))
          @ provider_events) );
      ("displayTimeUnit", Json.String "ms");
      ("otherData", counters_json s);
    ]

let export_trace ?process_name path =
  let j = trace_json ?process_name () in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Json.output oc j;
      output_char oc '\n')

let event_count () =
  let shards = Mutex.protect registry_mutex (fun () -> !registry) in
  List.fold_left (fun acc sh -> acc + sh.sh_nev) 0 shards
