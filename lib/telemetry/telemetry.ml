(* Domain-local telemetry: sharded counters, phase timers, Chrome traces.

   The design constraint comes straight from the paper: the hot paths this
   layer observes (optimistic reads, lease upgrades) derive their scalability
   from performing NO shared stores.  Instrumentation that bumped shared
   atomics would re-introduce exactly the cache-line ping-pong the B-tree is
   built to avoid and would invalidate every measurement taken through it.

   Therefore:
   - every domain owns a private [shard] — a plain mutable record of counts
     and an event buffer — reached through [Domain.DLS];
   - the hot path performs no synchronised operation at all: a counter bump
     is a DLS lookup plus a plain array store;
   - shards are registered once (at first use per domain) in a global,
     mutex-protected registry; aggregation walks the registry only when a
     snapshot or export is requested.  Snapshots of a running system are
     racy-but-defined reads of plain ints, exactly like the paper's own
     statistics;
   - every event site is gated on a plain [bool ref]: with telemetry
     disabled the cost is one load and one branch, so instrumentation can
     stay compiled into the hot loops.

   Timestamps come from CLOCK_MONOTONIC via a C stub ([now_ns]).  The trace
   exporter writes the Chrome trace-event JSON format (the [traceEvents]
   flavour), loadable in Perfetto or chrome://tracing; counters are also
   exported there as "C" samples so contention is visible on the timeline. *)

external now_ns : unit -> int = "repro_telemetry_now_ns" [@@noalloc]

(* ------------------------------------------------------------------ *)
(* JSON (emitter + parser)                                            *)
(* ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let buffer_add_escaped buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  let rec to_buffer buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else if Float.is_finite f then
        Buffer.add_string buf (Printf.sprintf "%.17g" f)
      else Buffer.add_string buf "null"
    | String s ->
      Buffer.add_char buf '"';
      buffer_add_escaped buf s;
      Buffer.add_char buf '"'
    | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf x)
        l;
      Buffer.add_char buf ']'
    | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          buffer_add_escaped buf k;
          Buffer.add_string buf "\":";
          to_buffer buf v)
        kvs;
      Buffer.add_char buf '}'

  let to_string j =
    let buf = Buffer.create 256 in
    to_buffer buf j;
    Buffer.contents buf

  let output oc j = output_string oc (to_string j)

  exception Parse_error of string

  (* Recursive-descent parser, sufficient for trace/metrics round-trips in
     tests and the CI smoke check (no external JSON dependency available). *)
  let of_string s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %C" c)
    in
    let literal word v =
      if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
      then begin
        pos := !pos + String.length word;
        v
      end
      else fail (Printf.sprintf "expected %s" word)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else
          let c = s.[!pos] in
          advance ();
          match c with
          | '"' -> Buffer.contents buf
          | '\\' -> (
            if !pos >= n then fail "unterminated escape";
            let e = s.[!pos] in
            advance ();
            match e with
            | '"' | '\\' | '/' ->
              Buffer.add_char buf e;
              go ()
            | 'n' ->
              Buffer.add_char buf '\n';
              go ()
            | 't' ->
              Buffer.add_char buf '\t';
              go ()
            | 'r' ->
              Buffer.add_char buf '\r';
              go ()
            | 'b' ->
              Buffer.add_char buf '\b';
              go ()
            | 'f' ->
              Buffer.add_char buf '\012';
              go ()
            | 'u' ->
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape"
              in
              (* non-ASCII escapes round-trip as '?' — enough for traces,
                 which only contain ASCII names *)
              Buffer.add_char buf (if code < 128 then Char.chr code else '?');
              go ()
            | _ -> fail "bad escape")
          | c ->
            Buffer.add_char buf c;
            go ()
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && is_num_char s.[!pos] do
        advance ()
      done;
      let tok = String.sub s start (!pos - start) in
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail "bad number")
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> String (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              items (v :: acc)
            | Some ']' ->
              advance ();
              List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items []
        end
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              members ((k, v) :: acc)
            | Some '}' ->
              advance ();
              Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
        end
      | Some _ -> parse_number ()
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let member k = function
    | Obj kvs -> List.assoc_opt k kvs
    | _ -> None
end

(* ------------------------------------------------------------------ *)
(* Counters                                                           *)
(* ------------------------------------------------------------------ *)

module Counter = struct
  type t =
    (* optimistic lock (lib/optlock) *)
    | Olock_read_spins
    | Olock_write_spins
    | Olock_validation_failures
    | Olock_upgrade_failures
    | Olock_write_aborts
    (* concurrent B-tree (lib/btree) *)
    | Btree_restarts
    | Btree_leaf_splits
    | Btree_inner_splits
    | Btree_root_splits
    | Btree_hint_hits
    | Btree_hint_misses
    (* domain pool (lib/parallel) *)
    | Pool_jobs
    | Pool_busy_ns
    | Pool_wall_ns
    (* semi-naive evaluation (lib/datalog) *)
    | Eval_iterations
    | Eval_rule_evals
    | Eval_delta_tuples

  let all =
    [
      Olock_read_spins; Olock_write_spins; Olock_validation_failures;
      Olock_upgrade_failures; Olock_write_aborts; Btree_restarts;
      Btree_leaf_splits; Btree_inner_splits; Btree_root_splits;
      Btree_hint_hits; Btree_hint_misses; Pool_jobs; Pool_busy_ns;
      Pool_wall_ns; Eval_iterations; Eval_rule_evals; Eval_delta_tuples;
    ]

  let index = function
    | Olock_read_spins -> 0
    | Olock_write_spins -> 1
    | Olock_validation_failures -> 2
    | Olock_upgrade_failures -> 3
    | Olock_write_aborts -> 4
    | Btree_restarts -> 5
    | Btree_leaf_splits -> 6
    | Btree_inner_splits -> 7
    | Btree_root_splits -> 8
    | Btree_hint_hits -> 9
    | Btree_hint_misses -> 10
    | Pool_jobs -> 11
    | Pool_busy_ns -> 12
    | Pool_wall_ns -> 13
    | Eval_iterations -> 14
    | Eval_rule_evals -> 15
    | Eval_delta_tuples -> 16

  let count = List.length all

  let name = function
    | Olock_read_spins -> "olock.read_spins"
    | Olock_write_spins -> "olock.write_spins"
    | Olock_validation_failures -> "olock.validation_failures"
    | Olock_upgrade_failures -> "olock.upgrade_failures"
    | Olock_write_aborts -> "olock.write_aborts"
    | Btree_restarts -> "btree.restarts"
    | Btree_leaf_splits -> "btree.leaf_splits"
    | Btree_inner_splits -> "btree.inner_splits"
    | Btree_root_splits -> "btree.root_splits"
    | Btree_hint_hits -> "btree.hint_hits"
    | Btree_hint_misses -> "btree.hint_misses"
    | Pool_jobs -> "pool.jobs"
    | Pool_busy_ns -> "pool.busy_ns"
    | Pool_wall_ns -> "pool.wall_ns"
    | Eval_iterations -> "eval.iterations"
    | Eval_rule_evals -> "eval.rule_evals"
    | Eval_delta_tuples -> "eval.delta_tuples"
end

(* ------------------------------------------------------------------ *)
(* Trace events                                                       *)
(* ------------------------------------------------------------------ *)

type arg_value = A_int of int | A_float of float | A_string of string

type event = {
  ev_name : string;
  ev_cat : string;
  ev_ph : char; (* 'X' complete, 'i' instant, 'C' counter sample *)
  ev_ts : int; (* ns, monotonic *)
  ev_dur : int; (* ns; 0 unless 'X' *)
  ev_tid : int; (* trace lane; domain id unless overridden *)
  ev_args : (string * arg_value) list;
}

(* ------------------------------------------------------------------ *)
(* Domain-local shards                                                *)
(* ------------------------------------------------------------------ *)

type shard = {
  sh_domain : int;
  counts : int array; (* plain mutable: single-writer, racy readers *)
  mutable events : event array; (* grow-only buffer, [sh_nev] used *)
  mutable sh_nev : int;
}

let dummy_event =
  { ev_name = ""; ev_cat = ""; ev_ph = 'i'; ev_ts = 0; ev_dur = 0; ev_tid = 0; ev_args = [] }

(* The registry is append-only: shards of terminated domains stay listed so
   their counts survive into snapshots taken after a pool shuts down. *)
let registry : shard list ref = ref []
let registry_mutex = Mutex.create ()

let shard_key =
  Domain.DLS.new_key (fun () ->
      let sh =
        {
          sh_domain = (Domain.self () :> int);
          counts = Array.make Counter.count 0;
          events = Array.make 64 dummy_event;
          sh_nev = 0;
        }
      in
      Mutex.protect registry_mutex (fun () -> registry := sh :: !registry);
      sh)

(* Master switches.  Plain refs: they are flipped only from quiescent code
   (before/after parallel sections); racy readers seeing a stale value skip
   or record a handful of events, which is harmless. *)
let counters_on = ref false
let tracing_on = ref false

let enabled () = !counters_on
let tracing () = !tracing_on

let enable ?(tracing = false) () =
  counters_on := true;
  if tracing then tracing_on := true

let disable () =
  counters_on := false;
  tracing_on := false

let reset () =
  Mutex.protect registry_mutex (fun () ->
      List.iter
        (fun sh ->
          Array.fill sh.counts 0 Counter.count 0;
          sh.sh_nev <- 0)
        !registry)

(* The per-event fast path: one load + branch when disabled. *)
let bump c =
  if !counters_on then begin
    let sh = Domain.DLS.get shard_key in
    let i = Counter.index c in
    Array.unsafe_set sh.counts i (Array.unsafe_get sh.counts i + 1)
  end

let add c n =
  if !counters_on then begin
    let sh = Domain.DLS.get shard_key in
    let i = Counter.index c in
    Array.unsafe_set sh.counts i (Array.unsafe_get sh.counts i + n)
  end

let record ev =
  let sh = Domain.DLS.get shard_key in
  let cap = Array.length sh.events in
  if sh.sh_nev = cap then begin
    let bigger = Array.make (cap * 2) dummy_event in
    Array.blit sh.events 0 bigger 0 cap;
    sh.events <- bigger
  end;
  sh.events.(sh.sh_nev) <- ev;
  sh.sh_nev <- sh.sh_nev + 1

let emit ?(tid = -1) ?(args = []) ?(cat = "app") ~ph ~ts ~dur name =
  if !tracing_on then
    let sh = Domain.DLS.get shard_key in
    record
      {
        ev_name = name;
        ev_cat = cat;
        ev_ph = ph;
        ev_ts = ts;
        ev_dur = dur;
        ev_tid = (if tid >= 0 then tid else sh.sh_domain);
        ev_args = args;
      }

let span_start () = if !tracing_on then now_ns () else 0

let span_end ?tid ?args ?cat name t0 =
  if !tracing_on && t0 > 0 then
    let t1 = now_ns () in
    emit ?tid ?args ?cat ~ph:'X' ~ts:t0 ~dur:(t1 - t0) name

let with_span ?tid ?args ?cat name f =
  if not !tracing_on then f ()
  else begin
    let t0 = now_ns () in
    match f () with
    | r ->
      span_end ?tid ?args ?cat name t0;
      r
    | exception e ->
      span_end ?tid ?args ?cat name t0;
      raise e
  end

let instant ?tid ?args ?cat name =
  if !tracing_on then emit ?tid ?args ?cat ~ph:'i' ~ts:(now_ns ()) ~dur:0 name

let counter_sample ?cat name value =
  if !tracing_on then
    emit ?cat ~args:[ (name, A_int value) ] ~ph:'C' ~ts:(now_ns ()) ~dur:0 name

(* ------------------------------------------------------------------ *)
(* Snapshots                                                          *)
(* ------------------------------------------------------------------ *)

type snapshot = {
  per_domain : (int * int array) list; (* domain id, per-counter counts *)
  totals : int array;
}

let snapshot () =
  let shards = Mutex.protect registry_mutex (fun () -> !registry) in
  let totals = Array.make Counter.count 0 in
  let per_domain =
    List.rev_map
      (fun sh ->
        let copy = Array.map (fun c -> c) sh.counts in
        Array.iteri (fun i c -> totals.(i) <- totals.(i) + c) copy;
        (sh.sh_domain, copy))
      shards
  in
  (* drop all-zero shards (e.g. long-dead domains after a reset) and order
     by domain id for stable output *)
  let per_domain =
    List.filter (fun (_, c) -> Array.exists (fun x -> x <> 0) c) per_domain
  in
  let per_domain = List.sort (fun (a, _) (b, _) -> compare a b) per_domain in
  { per_domain; totals }

let get s c = s.totals.(Counter.index c)

let hint_hit_rate s =
  let h = get s Counter.Btree_hint_hits and m = get s Counter.Btree_hint_misses in
  if h + m = 0 then 0.0 else float_of_int h /. float_of_int (h + m)

let imbalance s =
  (* ratio of summed worker busy time to summed job wall time x workers is
     job-dependent; report busy/wall, a utilisation proxy: 1.0 = perfectly
     balanced pool, lower = idle workers *)
  let busy = get s Counter.Pool_busy_ns and wall = get s Counter.Pool_wall_ns in
  if wall = 0 then 1.0 else float_of_int busy /. float_of_int wall

let pp_snapshot fmt s =
  let pr fmt_str = Format.fprintf fmt fmt_str in
  pr "@[<v>telemetry (aggregated over %d domain%s):@,"
    (List.length s.per_domain)
    (if List.length s.per_domain = 1 then "" else "s");
  List.iter
    (fun c ->
      let v = get s c in
      if v <> 0 then pr "  %-28s %d@," (Counter.name c) v)
    Counter.all;
  pr "  %-28s %.1f%%@," "btree.hint_hit_rate" (100.0 *. hint_hit_rate s);
  pr "  %-28s %.2f@," "pool.utilisation" (imbalance s);
  pr "per-domain breakdown (aborts / restarts / splits / hint hits+misses):@,";
  List.iter
    (fun (d, counts) ->
      let g c = counts.(Counter.index c) in
      pr
        "  domain %-3d  val_fail=%d upg_fail=%d wr_abort=%d restarts=%d \
         splits=%d/%d/%d hints=%d+%d@,"
        d
        (g Counter.Olock_validation_failures)
        (g Counter.Olock_upgrade_failures)
        (g Counter.Olock_write_aborts)
        (g Counter.Btree_restarts)
        (g Counter.Btree_leaf_splits)
        (g Counter.Btree_inner_splits)
        (g Counter.Btree_root_splits)
        (g Counter.Btree_hint_hits)
        (g Counter.Btree_hint_misses))
    s.per_domain;
  pr "@]"

let counters_json s =
  Json.Obj
    (List.map (fun c -> (Counter.name c, Json.Int (get s c))) Counter.all
    @ [
        ("btree.hint_hit_rate", Json.Float (hint_hit_rate s));
        ("pool.utilisation", Json.Float (imbalance s));
      ])

(* ------------------------------------------------------------------ *)
(* Chrome trace export                                                *)
(* ------------------------------------------------------------------ *)

let ph_string = function
  | 'X' -> "X"
  | 'i' -> "i"
  | 'C' -> "C"
  | c -> String.make 1 c

let arg_json = function
  | A_int i -> Json.Int i
  | A_float f -> Json.Float f
  | A_string s -> Json.String s

(* Chrome traces use microsecond floats; ns-precision survives as decimals. *)
let us_of_ns ns = float_of_int ns /. 1000.0

let event_json ev =
  let base =
    [
      ("name", Json.String ev.ev_name);
      ("cat", Json.String ev.ev_cat);
      ("ph", Json.String (ph_string ev.ev_ph));
      ("ts", Json.Float (us_of_ns ev.ev_ts));
      ("pid", Json.Int 1);
      ("tid", Json.Int ev.ev_tid);
    ]
  in
  let dur = if ev.ev_ph = 'X' then [ ("dur", Json.Float (us_of_ns ev.ev_dur)) ] else [] in
  let args =
    match (ev.ev_ph, ev.ev_args) with
    | _, [] -> []
    | _, l -> [ ("args", Json.Obj (List.map (fun (k, v) -> (k, arg_json v)) l)) ]
  in
  let scope = if ev.ev_ph = 'i' then [ ("s", Json.String "t") ] else [] in
  Json.Obj (base @ dur @ args @ scope)

let trace_json ?(process_name = "datalog") () =
  let shards = Mutex.protect registry_mutex (fun () -> !registry) in
  let events =
    List.concat_map
      (fun sh -> List.init sh.sh_nev (fun i -> sh.events.(i)))
      shards
  in
  let events = List.sort (fun a b -> compare a.ev_ts b.ev_ts) events in
  (* final counter samples so the trace carries the aggregate numbers even
     when no 'C' samples were emitted during the run *)
  let s = snapshot () in
  let tail_ts =
    match List.rev events with e :: _ -> e.ev_ts + e.ev_dur | [] -> now_ns ()
  in
  let counter_events =
    List.filter_map
      (fun c ->
        let v = get s c in
        if v = 0 then None
        else
          Some
            {
              ev_name = Counter.name c;
              ev_cat = "counters";
              ev_ph = 'C';
              ev_ts = tail_ts;
              ev_dur = 0;
              ev_tid = 0;
              ev_args = [ (Counter.name c, A_int v) ];
            })
      Counter.all
  in
  let meta =
    Json.Obj
      [
        ("name", Json.String "process_name");
        ("ph", Json.String "M");
        ("ts", Json.Float 0.0);
        ("pid", Json.Int 1);
        ("tid", Json.Int 0);
        ("args", Json.Obj [ ("name", Json.String process_name) ]);
      ]
  in
  Json.Obj
    [
      ( "traceEvents",
        Json.List (meta :: List.map event_json (events @ counter_events)) );
      ("displayTimeUnit", Json.String "ms");
      ("otherData", counters_json s);
    ]

let export_trace ?process_name path =
  let j = trace_json ?process_name () in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Json.output oc j;
      output_char oc '\n')

let event_count () =
  let shards = Mutex.protect registry_mutex (fun () -> !registry) in
  List.fold_left (fun acc sh -> acc + sh.sh_nev) 0 shards
