(** Domain-local telemetry: sharded counters, phase timers, Chrome traces.

    The subsystem exists to make the paper's quantitative claims observable
    without perturbing them: every counter lives in a per-domain shard (a
    plain mutable record reached through [Domain.DLS]), so the hot path
    performs {e no} shared atomic write — the same cache-line argument the
    optimistic lock itself is built on.  Aggregation across shards happens
    only when {!snapshot} or {!export_trace} is called.

    Every event site is gated on a master flag: with telemetry disabled
    (the default) an instrumented call costs one load and one branch, so
    instrumentation stays compiled into release builds.

    Enable/disable and reset are meant to be called from quiescent code
    (before and after parallel sections).  Snapshots taken while domains are
    running are racy-but-defined reads of plain integers. *)

val now_ns : unit -> int
(** Monotonic clock (CLOCK_MONOTONIC), in nanoseconds from an arbitrary
    epoch.  Allocation-free. *)

(** Minimal JSON document type with emitter and parser — enough for trace
    files, bench metrics, and parse-back validation in tests and CI
    (no external JSON library is available in this environment). *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  val output : out_channel -> t -> unit

  exception Parse_error of string

  val of_string : string -> t
  (** @raise Parse_error on malformed input. *)

  val member : string -> t -> t option
end

(** Counter identities, one flat namespace across the instrumented layers.
    See the Observability section of DESIGN.md for exact semantics of
    "abort" vs "restart" at each layer. *)
module Counter : sig
  type t =
    | Olock_read_spins
        (** backoff rounds spent in [start_read] waiting out a writer *)
    | Olock_write_spins
        (** backoff rounds spent in [start_write] waiting for the lock *)
    | Olock_validation_failures
        (** [valid]/[end_read] returning [false]: an optimistic read
            observed a concurrent write and must be discarded *)
    | Olock_upgrade_failures
        (** failed [try_upgrade_to_write] CAS: the lease went stale between
            the read phase and the upgrade *)
    | Olock_write_aborts
        (** [abort_write] calls: write permits released without modification *)
    | Btree_restarts
        (** insertions restarted from the root after a failed validation or
            upgrade during optimistic descent *)
    | Btree_pessimistic_fallbacks
        (** descents that exhausted the optimistic retry budget and fell
            back to the pessimistic write-locked descent; [0] in healthy
            non-chaos runs (gated by tools/regress.sh) *)
    | Btree_leaf_splits
    | Btree_inner_splits
    | Btree_root_splits  (** splits that grew the tree by one level *)
    | Btree_hint_hits
    | Btree_hint_misses
    | Btree_batch_keys
        (** keys offered to the sorted-run batch insert path *)
    | Btree_batch_leaves
        (** leaf write-lock acquisitions of the batch path (descents plus
            hint hits) — the amortisation denominator of
            [Btree_batch_keys] *)
    | Btree_batch_splices
        (** bulk gap splices performed by the batch path (each one inserts
            a run of consecutive keys with two blits) *)
    | Pool_jobs  (** fork-join jobs executed *)
    | Pool_busy_ns  (** summed per-worker busy time inside jobs *)
    | Pool_wall_ns
        (** summed job wall time × worker count, so that
            [Pool_busy_ns / Pool_wall_ns] is pool utilisation *)
    | Pool_watchdog_trips
        (** pool jobs whose wall time exceeded the pool's watchdog deadline
            (see [Pool.set_watchdog]) *)
    | Eval_iterations  (** semi-naive fixed-point rounds *)
    | Eval_rule_evals  (** rule-version evaluations *)
    | Eval_delta_tuples  (** tuples promoted from new into full relations *)
    | Io_malformed_lines
        (** corrupt/truncated fact lines skipped by [Dl_io]'s lenient
            loader *)
    | Server_requests  (** protocol requests admitted by the query server *)
    | Server_busy_rejections
        (** requests rejected with a 503-style BUSY response (admission
            backpressure or a chaos drill) *)
    | Server_phase_flips
        (** writer-phase flips: engine generation rebuilds performed by the
            server's admission scheduler *)
    | Server_conns  (** client connections accepted by the query server *)
    | Wal_bytes  (** bytes appended to the write-ahead log *)
    | Wal_records  (** records appended to the write-ahead log *)
    | Wal_fsyncs  (** fsync calls issued by the write-ahead log *)
    | Wal_segments
        (** WAL segment files created (initial open plus rotations) *)
    | Wal_compactions
        (** snapshot compactions: fact store rewritten as a snapshot
            segment, older segments truncated *)
    | Wal_torn_tails
        (** torn tails silently truncated during WAL recovery — a crash
            mid-append leaves one, and recovery discards it by design *)
    | Wal_replayed_records  (** WAL records replayed during recovery *)

  val all : t list
  val index : t -> int
  val count : int
  val name : t -> string
  (** Dotted lower-case name, e.g. ["olock.upgrade_failures"]. *)

  type unit_kind = Count | Nanoseconds

  val unit_of : t -> unit_kind
  (** Unit of a counter's value: plain event count, or accumulated
      nanoseconds ({!Pool_busy_ns}, {!Pool_wall_ns}).  Exporters render
      nanosecond counters as durations/seconds, not raw counts. *)

  val help : t -> string
  (** One-line description for exporters (Prometheus [# HELP] lines). *)
end

(** Latency histogram identities: log-linear (HDR-style) bucketed latency
    distributions recorded per domain and merged at {!snapshot} time.
    B-tree per-op sites are sampled (1 in [2^sample_shift] ops, decided by a
    deterministic per-shard xorshift stream); coarse sites record every
    event. *)
module Hist : sig
  type t =
    | Btree_insert_ns  (** sampled [insert] latency *)
    | Btree_find_ns  (** sampled [mem]/[find] latency *)
    | Btree_bound_ns  (** sampled [lower_bound]/[upper_bound] latency *)
    | Btree_batch_ns
        (** [insert_batch] call latency (one event per sorted run or merge
            partition; unsampled) *)
    | Btree_fallback_ns
        (** pessimistic fallback descent latency (unsampled — fallbacks are
            cold by construction) *)
    | Olock_write_wait_ns
        (** contended write acquisitions only: time from first failed
            [try_start_write] to acquisition *)
    | Pool_job_ns  (** fork-join job wall time *)
    | Eval_iteration_ns  (** semi-naive fixed-point round wall time *)
    | Server_ingest_ns
        (** ingest service latency: admission to the end of the writer phase
            that applied the facts (unsampled) *)
    | Server_query_ns
        (** query service latency: admission to response (unsampled) *)
    | Server_flip_ns
        (** writer-phase flip duration — one engine generation rebuild
            (unsampled) *)
    | Wal_append_ns  (** WAL record append latency (unsampled) *)
    | Wal_fsync_ns  (** WAL fsync latency (unsampled) *)

  val all : t list
  val index : t -> int
  val count : int

  val name : t -> string
  (** Dotted lower-case name, e.g. ["btree.insert_ns"]. *)

  val help : t -> string
  (** One-line description for exporters (Prometheus [# HELP] lines). *)

  val sample_shift : t -> int
  (** Record 1 in [2^shift] events; [0] = record every event. *)

  val bucket_count : int

  val bucket_of_value : int -> int
  (** Bucket index of a nanosecond value (negative values clamp to 0; huge
      values clamp to the top bucket).  Exact below [2^3]; above, each
      power-of-two octave splits into 8 sub-buckets (relative error <= 1/8). *)

  val bucket_bounds : int -> int * int
  (** [bucket_bounds b] is the half-open value range [\[lo, hi)] of bucket
      [b]; contiguous across consecutive buckets. *)
end

(** {1 Switches} *)

val enable : ?tracing:bool -> unit -> unit
(** Turn counters on; [~tracing:true] additionally records trace events. *)

val disable : unit -> unit
val enabled : unit -> bool
val tracing : unit -> bool

val reset : unit -> unit
(** Zero all counters and drop buffered trace events (call quiescently). *)

(** {1 Event sites (hot path)} *)

val bump : Counter.t -> unit
(** Increment a counter in the calling domain's shard.  One load + branch
    when telemetry is disabled. *)

val add : Counter.t -> int -> unit

(** {1 Latency histograms (hot path)} *)

val hist_start : Hist.t -> int
(** Sampling decision plus timestamp.  Returns [0] (meaning "not sampled")
    when telemetry is disabled — one load + one branch — or when the
    per-shard sampling stream skips this event; otherwise the current
    {!now_ns}. *)

val hist_end : Hist.t -> int -> unit
(** [hist_end m t0] records [now_ns () - t0] into [m] if [t0 > 0] (i.e. the
    matching {!hist_start} sampled); no-op otherwise. *)

val hist_time : unit -> int
(** Unsampled variant of {!hist_start} for sites that time conditionally
    (e.g. only the contended path): {!now_ns} when enabled, else [0]. *)

val hist_record : Hist.t -> int -> unit
(** Record an already-measured duration (ns) directly, e.g. a job wall time
    that was computed anyway.  Negative durations clamp to 0. *)

val set_hist_seed : int -> unit
(** Set the seed of the deterministic sampling streams and reseed existing
    shards; {!reset} also reseeds, so [set_hist_seed s; reset ()] makes a
    single-domain run reproduce its sample set exactly. *)

(** {1 Phase timers / spans} *)

type arg_value = A_int of int | A_float of float | A_string of string

val with_span :
  ?tid:int ->
  ?args:(string * arg_value) list ->
  ?cat:string ->
  string ->
  (unit -> 'a) ->
  'a
(** [with_span name f] runs [f] and, when tracing, records a complete span
    covering it (monotonic timestamps).  Exceptions still end the span.
    [tid] overrides the trace lane (defaults to the domain id). *)

val span_start : unit -> int
(** Timestamp for a manual span; [0] when tracing is off. *)

val span_end :
  ?tid:int ->
  ?args:(string * arg_value) list ->
  ?cat:string ->
  string ->
  int ->
  unit
(** [span_end name t0] closes a manual span opened at [span_start ()].
    No-op if [t0 = 0]. *)

val instant :
  ?tid:int -> ?args:(string * arg_value) list -> ?cat:string -> string -> unit

val counter_sample : ?cat:string -> string -> int -> unit
(** Record a timeline counter sample ("C" event) for Perfetto graphs. *)

(** {1 Aggregation} *)

type hist = {
  h_counts : int array;  (** length {!Hist.bucket_count}, merged over shards *)
  h_total : int;  (** number of recorded samples *)
  h_sum : int;  (** summed nanoseconds *)
  h_max : int;  (** exact maximum (not bucketed) *)
}

type snapshot = {
  per_domain : (int * int array) list;
      (** (domain id, counts indexed by {!Counter.index}), all-zero shards
          omitted, sorted by domain id *)
  totals : int array;
  hists : hist array;  (** indexed by {!Hist.index} *)
}

val snapshot : unit -> snapshot
val get : snapshot -> Counter.t -> int
val hist_of : snapshot -> Hist.t -> hist

val hist_quantile : hist -> float -> int
(** [hist_quantile h q] estimates the [q]-quantile (midpoint of the bucket
    holding the rank-[q] sample, clamped to [h.h_max]); [0] when empty. *)

val hist_mean : hist -> float

val hint_hit_rate : snapshot -> float
(** Hits / (hits + misses) over the btree hint counters; [0.] when no
    hinted operation ran. *)

val imbalance : snapshot -> float
(** Pool utilisation proxy: summed worker busy time over summed job wall
    time.  1.0 = perfectly balanced; lower = workers idling. *)

val pp_snapshot : Format.formatter -> snapshot -> unit

(** {1 Export} *)

val register_trace_provider : (unit -> Json.t list) -> unit
(** Register a function contributing ready-made trace-event objects to
    {!trace_json} at export time (used by the flight recorder to append
    its events to Chrome traces without a reverse dependency). *)

val trace_json : ?process_name:string -> unit -> Json.t
(** The Chrome trace-event document ({v {"traceEvents": [...]} v}) holding
    all buffered spans plus final counter samples. *)

val export_trace : ?process_name:string -> string -> unit
(** Write {!trace_json} to a file (open in Perfetto / chrome://tracing). *)

val counters_json : snapshot -> Json.t
(** Counters as a flat object; nanosecond counters appear in seconds under
    an ["_s"]-suffixed name (e.g. ["pool.busy_s"]). *)

val histograms_json : snapshot -> Json.t
(** Non-empty histograms as an object keyed by {!Hist.name}: count,
    sample_period, sum/mean/p50/p90/p99/max (ns), and the nonzero buckets
    as [\[lo, hi, count\]] triples. *)

val event_count : unit -> int

(** {1 Prometheus text exposition}

    A tiny builder for the Prometheus text format (HELP/TYPE headers emitted
    once per metric family, label escaping, gauge/counter lines), used by
    [datalog_cli --metrics FILE]. *)
module Prom : sig
  type t

  val create : unit -> t

  val counter :
    t -> ?help:string -> ?labels:(string * string) list -> string -> float -> unit

  val gauge :
    t -> ?help:string -> ?labels:(string * string) list -> string -> float -> unit

  val to_string : t -> string
end

val prometheus_of_snapshot : ?prefix:string -> Prom.t -> snapshot -> unit
(** Append a snapshot to a {!Prom.t} builder: every counter as
    [<prefix>_<name>_total] (nanosecond counters as [_seconds_total] in
    seconds), derived gauges, and each non-empty histogram as a Prometheus
    histogram (cumulative [le] buckets, [_sum], [_count]) plus
    [_p50]/[_p90]/[_p99]/[_max] gauges.  Default prefix ["repro"]. *)
