(* Flight recorder: fixed-size, allocation-free, per-domain rings of
   structured events, drained post-mortem into crash dumps.

   Each domain owns one ring (reached through [Domain.DLS], mirroring the
   telemetry shards): a preallocated flat [int array] of [capacity] slots,
   5 ints per slot — timestamp, event code, and three event-specific
   arguments.  Recording an event is four plain stores into domain-local
   memory plus a wrapping index update: no allocation, no atomics, no
   shared write.  With the recorder disabled (the default) an instrumented
   call site costs one load and one branch, the same budget as a disabled
   telemetry counter.

   The rings are the evidence that survives a failure: on [Pool_failure],
   a watchdog trip, or an uncaught exception, the binaries drain every
   domain's ring into [crashdump-<seed>.json] (see {!write_crashdump}) so
   the last N events per domain — who was restarting where, what the GC
   was doing, which failpoints fired — are attributable after the fact.

   GC correlation: [enable] installs a single [Gc.create_alarm] on the
   calling (long-lived) domain; the major cycle is global in OCaml 5, so
   one alarm observes every cycle end and records a [Gc_major] event into
   the enabling domain's ring.  The alarm must NOT be per-domain: alarms
   are self-re-registering finalisers, and a domain that terminates with
   one pending leaves it to the runtime's orphaned-finaliser adoption,
   which segfaults intermittently under domain churn on OCaml 5.1 (seen
   as crashes in a run *after* the one that spawned the domains).  OCaml
   exposes no minor-collection hook, so minor pauses are not individually
   visible; major-cycle ends bound the pauses that matter for tail
   latency (DESIGN.md section 11). *)

(* Event vocabulary.  Codes are the wire format (ring slots and crash
   dumps), so they are append-only: new kinds take fresh codes. *)
module Ev = struct
  type t =
    | Validation_fail  (** optimistic descent lease died; a1=level a2=bucket *)
    | Upgrade_fail  (** read-to-write upgrade CAS lost; a1=level a2=bucket *)
    | Restart  (** insertion restarted from the root; a1=attempt number *)
    | Fallback  (** optimistic budget exhausted; a1=level a2=bucket *)
    | Lock_wait  (** contended write acquisition; a1=wait ns (untagged) *)
    | Split  (** node split; a1=level a2=bucket *)
    | Phase  (** relation phase flip; a1=code, see {!phase_name} *)
    | Pool_job_start
    | Pool_job_end  (** a1=wall ns *)
    | Watchdog  (** join-side deadline exceeded; a1=wall ms a2=deadline ms *)
    | Chaos_fire  (** failpoint fired; a1=point index *)
    | Gc_major  (** end of a GC major cycle; a1=majors a2=minors *)

  let all =
    [
      Validation_fail; Upgrade_fail; Restart; Fallback; Lock_wait; Split;
      Phase; Pool_job_start; Pool_job_end; Watchdog; Chaos_fire; Gc_major;
    ]

  let code = function
    | Validation_fail -> 0
    | Upgrade_fail -> 1
    | Restart -> 2
    | Fallback -> 3
    | Lock_wait -> 4
    | Split -> 5
    | Phase -> 6
    | Pool_job_start -> 7
    | Pool_job_end -> 8
    | Watchdog -> 9
    | Chaos_fire -> 10
    | Gc_major -> 11

  let of_code = function
    | 0 -> Some Validation_fail
    | 1 -> Some Upgrade_fail
    | 2 -> Some Restart
    | 3 -> Some Fallback
    | 4 -> Some Lock_wait
    | 5 -> Some Split
    | 6 -> Some Phase
    | 7 -> Some Pool_job_start
    | 8 -> Some Pool_job_end
    | 9 -> Some Watchdog
    | 10 -> Some Chaos_fire
    | 11 -> Some Gc_major
    | _ -> None

  let name = function
    | Validation_fail -> "validation_fail"
    | Upgrade_fail -> "upgrade_fail"
    | Restart -> "restart"
    | Fallback -> "fallback"
    | Lock_wait -> "lock_wait"
    | Split -> "split"
    | Phase -> "phase"
    | Pool_job_start -> "pool_job_start"
    | Pool_job_end -> "pool_job_end"
    | Watchdog -> "watchdog"
    | Chaos_fire -> "chaos_fire"
    | Gc_major -> "gc_major"

  let of_name s = List.find_opt (fun e -> name e = s) all
end

let phase_write_enter = 0
let phase_write_leave = 1
let phase_read_enter = 2
let phase_read_leave = 3

let phase_name = function
  | 0 -> "write_enter"
  | 1 -> "write_leave"
  | 2 -> "read_enter"
  | 3 -> "read_leave"
  | c -> "phase_" ^ string_of_int c

(* 5 ints per slot: ts, code, a1, a2, a3. *)
let stride = 5
let default_capacity = 4096

type ring = {
  r_domain : int;
  mutable r_slots : int array;  (* length = capacity * stride *)
  mutable r_pos : int;  (* next slot to write, in [0, capacity) *)
  mutable r_total : int;  (* events ever recorded (dropped = total - cap) *)
}

(* Append-only registry, mirroring the telemetry shard registry: rings of
   terminated domains stay listed so their evidence survives into dumps
   taken after a pool shuts down. *)
let rings : ring list ref = ref []
let rings_mutex = Mutex.create ()
let ring_capacity = ref default_capacity

(* Master switch.  A plain ref, flipped only from quiescent code; racy
   readers seeing a stale value skip or record a handful of events. *)
let flight_on = ref false

let enabled () = !flight_on

(* GC correlation: exactly one [Gc.create_alarm], installed by the first
   [enable] on the calling domain (see the header comment for why it must
   not be per-domain).  The callback goes through a forward ref because it
   records through the ring machinery defined below. *)
let gc_alarm_hook : (unit -> unit) ref = ref (fun () -> ())
let gc_alarm_installed = ref false

let ring_key =
  Domain.DLS.new_key (fun () ->
      let d = (Domain.self () :> int) in
      let r =
        {
          r_domain = d;
          r_slots = Array.make (!ring_capacity * stride) 0;
          r_pos = 0;
          r_total = 0;
        }
      in
      Mutex.protect rings_mutex (fun () -> rings := r :: !rings);
      r)

let record_slow ev a1 a2 a3 =
  let r = Domain.DLS.get ring_key in
  let cap = Array.length r.r_slots / stride in
  let base = r.r_pos * stride in
  let s = r.r_slots in
  Array.unsafe_set s base (Telemetry.now_ns ());
  Array.unsafe_set s (base + 1) (Ev.code ev);
  Array.unsafe_set s (base + 2) a1;
  Array.unsafe_set s (base + 3) a2;
  Array.unsafe_set s (base + 4) a3;
  r.r_pos <- (if r.r_pos + 1 = cap then 0 else r.r_pos + 1);
  r.r_total <- r.r_total + 1

(* The per-event fast path: one load + branch when disabled. *)
let record ev a1 a2 a3 = if !flight_on then record_slow ev a1 a2 a3

let () =
  gc_alarm_hook :=
    fun () ->
      if !flight_on then begin
        let s = Gc.quick_stat () in
        record_slow Ev.Gc_major s.Gc.major_collections s.Gc.minor_collections 0
      end

let capacity () = !ring_capacity

let reset () =
  Mutex.protect rings_mutex (fun () ->
      List.iter
        (fun r ->
          (* reallocate when the configured capacity changed since this
             ring was created, so [enable ~capacity] applies everywhere *)
          if Array.length r.r_slots <> !ring_capacity * stride then
            r.r_slots <- Array.make (!ring_capacity * stride) 0;
          r.r_pos <- 0;
          r.r_total <- 0)
        !rings)

(* Registered with the telemetry trace exporter on first [enable], so
   flight events ride along in Chrome traces as instants (cat "flight"). *)
let provider_registered = ref false

type event = {
  e_domain : int;
  e_ts : int;
  e_kind : Ev.t;
  e_a1 : int;
  e_a2 : int;
  e_a3 : int;
}

(* Oldest-first drain of one ring.  Reads of a live ring are
   racy-but-defined (plain ints); dumps are taken from quiescent or
   post-mortem code where the rings are no longer advancing. *)
let ring_events r =
  let slots = r.r_slots in
  let cap = Array.length slots / stride in
  let n = min r.r_total cap in
  let start = if r.r_total <= cap then 0 else r.r_pos in
  List.filter_map
    (fun i ->
      let base = (start + i) mod cap * stride in
      match Ev.of_code slots.(base + 1) with
      | None -> None
      | Some kind ->
        Some
          {
            e_domain = r.r_domain;
            e_ts = slots.(base);
            e_kind = kind;
            e_a1 = slots.(base + 2);
            e_a2 = slots.(base + 3);
            e_a3 = slots.(base + 4);
          })
    (List.init n Fun.id)

let events () =
  let rs = Mutex.protect rings_mutex (fun () -> !rings) in
  List.concat_map ring_events rs
  |> List.sort (fun a b ->
         let c = compare a.e_ts b.e_ts in
         if c <> 0 then c else compare a.e_domain b.e_domain)

let recorded_total () =
  let rs = Mutex.protect rings_mutex (fun () -> !rings) in
  List.fold_left (fun acc r -> acc + r.r_total) 0 rs

let event_args e = (e.e_a1, e.e_a2, e.e_a3)

let trace_provider () =
  List.map
    (fun e ->
      Telemetry.Json.Obj
        [
          ("name", Telemetry.Json.String (Ev.name e.e_kind));
          ("cat", Telemetry.Json.String "flight");
          ("ph", Telemetry.Json.String "i");
          ("ts", Telemetry.Json.Float (float_of_int e.e_ts /. 1000.0));
          ("pid", Telemetry.Json.Int 1);
          ("tid", Telemetry.Json.Int e.e_domain);
          ("s", Telemetry.Json.String "t");
          ( "args",
            Telemetry.Json.Obj
              [
                ("a1", Telemetry.Json.Int e.e_a1);
                ("a2", Telemetry.Json.Int e.e_a2);
                ("a3", Telemetry.Json.Int e.e_a3);
              ] );
        ])
    (events ())

let enable ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Flight.enable: capacity must be >= 1";
  ring_capacity := capacity;
  reset ();
  if not !provider_registered then begin
    provider_registered := true;
    Telemetry.register_trace_provider trace_provider
  end;
  if not !gc_alarm_installed then begin
    gc_alarm_installed := true;
    ignore (Gc.create_alarm (fun () -> !gc_alarm_hook ()) : Gc.alarm)
  end;
  flight_on := true

let disable () = flight_on := false

(* ------------------------------------------------------------------ *)
(* Crash dumps                                                        *)
(* ------------------------------------------------------------------ *)

let schema_version = 1

let to_json ?(extra = []) ~reason ~seed () =
  let rs = Mutex.protect rings_mutex (fun () -> !rings) in
  let rs = List.sort (fun a b -> compare a.r_domain b.r_domain) rs in
  let domain_json r =
    let cap = Array.length r.r_slots / stride in
    Telemetry.Json.Obj
      [
        ("domain", Telemetry.Json.Int r.r_domain);
        ("recorded", Telemetry.Json.Int r.r_total);
        ("dropped", Telemetry.Json.Int (max 0 (r.r_total - cap)));
        ( "events",
          Telemetry.Json.List
            (List.map
               (fun e ->
                 Telemetry.Json.List
                   [
                     Telemetry.Json.Int e.e_ts;
                     Telemetry.Json.Int (Ev.code e.e_kind);
                     Telemetry.Json.Int e.e_a1;
                     Telemetry.Json.Int e.e_a2;
                     Telemetry.Json.Int e.e_a3;
                   ])
               (ring_events r)) );
      ]
  in
  Telemetry.Json.Obj
    ([
       ("crashdump", Telemetry.Json.Int schema_version);
       ("reason", Telemetry.Json.String reason);
       ("seed", Telemetry.Json.Int seed);
       ("now_ns", Telemetry.Json.Int (Telemetry.now_ns ()));
       ("capacity", Telemetry.Json.Int !ring_capacity);
       ("counters", Telemetry.counters_json (Telemetry.snapshot ()));
       ("domains", Telemetry.Json.List (List.map domain_json rs));
     ]
    @ extra)

let write_crashdump ?path ?extra ~reason ~seed () =
  let path =
    match path with
    | Some p -> p
    | None -> Printf.sprintf "crashdump-%d.json" seed
  in
  let j = to_json ?extra ~reason ~seed () in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Telemetry.Json.output oc j;
      output_char oc '\n');
  path

type dump = {
  d_reason : string;
  d_seed : int;
  d_capacity : int;
  d_counters : (string * Telemetry.Json.t) list;
  d_domains : (int * int * event list) list;
      (* (domain id, dropped count, events oldest-first) *)
}

exception Bad_dump of string

let () =
  Printexc.register_printer (function
    | Bad_dump m -> Some (Printf.sprintf "Flight.Bad_dump(%s)" m)
    | _ -> None)

let bad fmt = Printf.ksprintf (fun m -> raise (Bad_dump m)) fmt

let json_int = function Telemetry.Json.Int i -> i | _ -> bad "expected int"

let dump_of_json j =
  let member k =
    match Telemetry.Json.member k j with
    | Some v -> v
    | None -> bad "missing %S" k
  in
  (match Telemetry.Json.member "crashdump" j with
  | Some (Telemetry.Json.Int _) -> ()
  | _ -> bad "not a crash dump (no \"crashdump\" field)");
  let reason =
    match member "reason" with Telemetry.Json.String s -> s | _ -> bad "reason"
  in
  let counters =
    match Telemetry.Json.member "counters" j with
    | Some (Telemetry.Json.Obj kvs) -> kvs
    | _ -> []
  in
  let domain_of = function
    | Telemetry.Json.Obj _ as dj ->
      let m k =
        match Telemetry.Json.member k dj with
        | Some v -> v
        | None -> bad "domain entry missing %S" k
      in
      let events =
        match m "events" with
        | Telemetry.Json.List evs ->
          List.map
            (function
              | Telemetry.Json.List
                  [
                    Telemetry.Json.Int ts;
                    Telemetry.Json.Int code;
                    Telemetry.Json.Int a1;
                    Telemetry.Json.Int a2;
                    Telemetry.Json.Int a3;
                  ] -> (
                match Ev.of_code code with
                | Some kind ->
                  {
                    e_domain = json_int (m "domain");
                    e_ts = ts;
                    e_kind = kind;
                    e_a1 = a1;
                    e_a2 = a2;
                    e_a3 = a3;
                  }
                | None -> bad "unknown event code %d" code)
              | _ -> bad "malformed event tuple")
            evs
        | _ -> bad "events"
      in
      (json_int (m "domain"), json_int (m "dropped"), events)
    | _ -> bad "malformed domain entry"
  in
  let domains =
    match member "domains" with
    | Telemetry.Json.List ds -> List.map domain_of ds
    | _ -> bad "domains"
  in
  {
    d_reason = reason;
    d_seed = json_int (member "seed");
    d_capacity = json_int (member "capacity");
    d_counters = counters;
    d_domains = domains;
  }

let load path =
  let ic = open_in_bin path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  dump_of_json (Telemetry.Json.of_string s)

let dump_events d =
  List.concat_map (fun (_, _, evs) -> evs) d.d_domains
  |> List.sort (fun a b ->
         let c = compare a.e_ts b.e_ts in
         if c <> 0 then c else compare a.e_domain b.e_domain)
