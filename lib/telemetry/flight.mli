(** Flight recorder: per-domain rings of structured events with crash dumps.

    A fixed-size, allocation-free ring buffer per domain (reached through
    [Domain.DLS]) records where contention lands — olock waits, validation
    and upgrade failures tagged with node identity (tree level + root-child
    key bucket), restarts, pessimistic fallbacks, splits, phase flips, pool
    job boundaries, chaos failpoint firings, and GC major-cycle ends — so
    that tail-latency spikes and post-mortem failures are attributable.

    With the recorder disabled (the default), {!record} costs one load and
    one branch; enabled, an event is five plain stores into domain-local
    memory.  On failure the binaries drain every ring into a
    [crashdump-<seed>.json] ({!write_crashdump}) inspectable offline with
    [bin/flightrec]. *)

(** Event kinds.  Codes are the wire format (rings, dumps, traces) and are
    append-only. *)
module Ev : sig
  type t =
    | Validation_fail
        (** an optimistic descent observed a concurrent write and restarts;
            a1 = tree level (0 = root, -1 = hinted leaf), a2 = key bucket
            (root-child index, -1 = unknown) *)
    | Upgrade_fail
        (** read-to-write upgrade CAS lost; a1 = level, a2 = bucket *)
    | Restart  (** insertion restarted from the root; a1 = attempt number *)
    | Fallback
        (** optimistic retry budget exhausted, switching to the pessimistic
            descent; a1 = attempts spent *)
    | Lock_wait
        (** contended write-lock acquisition; a1 = measured wait in ns
            (recorded by the lock, which has no node identity) *)
    | Split  (** node split; a1 = level, a2 = bucket *)
    | Phase  (** relation phase flip; a1 = code, see {!phase_name} *)
    | Pool_job_start  (** a1 = worker count *)
    | Pool_job_end  (** a1 = job wall time in ns *)
    | Watchdog
        (** pool watchdog deadline exceeded at the join; a1 = wall ms,
            a2 = deadline ms *)
    | Chaos_fire  (** a failpoint fired; a1 = [Chaos.Point] index *)
    | Gc_major
        (** end of a GC major cycle on this domain; a1 = cumulative major
            collections, a2 = cumulative minor collections *)

  val all : t list
  val code : t -> int
  val of_code : int -> t option
  val name : t -> string
  val of_name : string -> t option
end

(** {1 Phase codes} (the [a1] argument of {!Ev.Phase} events) *)

val phase_write_enter : int
val phase_write_leave : int
val phase_read_enter : int
val phase_read_leave : int
val phase_name : int -> string

(** {1 Switches} *)

val enable : ?capacity:int -> unit -> unit
(** Turn the recorder on, clearing existing rings.  [capacity] is the
    per-domain ring size in events (default 4096); existing rings are
    re-sized on the next {!reset}/[enable].  Also registers the flight
    trace provider so events ride along in Chrome traces (cat ["flight"]).
    Call from quiescent code. *)

val disable : unit -> unit
val enabled : unit -> bool
val capacity : unit -> int

val reset : unit -> unit
(** Clear every ring (call quiescently). *)

(** {1 Recording (hot path)} *)

val record : Ev.t -> int -> int -> int -> unit
(** [record kind a1 a2 a3] appends an event to the calling domain's ring,
    stamping it with {!Telemetry.now_ns}.  Arguments are kind-specific
    (see {!Ev.t}); pass [0] for unused slots.  One load + one branch when
    the recorder is disabled; allocation-free when enabled (after the
    domain's ring materialises on its first event). *)

(** {1 Draining} *)

type event = {
  e_domain : int;
  e_ts : int;  (** {!Telemetry.now_ns} timestamp *)
  e_kind : Ev.t;
  e_a1 : int;
  e_a2 : int;
  e_a3 : int;
}

val events : unit -> event list
(** All surviving events across every domain's ring, oldest-first (merged
    by timestamp).  Racy-but-defined against live writers; exact when
    quiescent. *)

val recorded_total : unit -> int
(** Events ever recorded (including those overwritten by wraparound). *)

val event_args : event -> int * int * int

(** {1 Crash dumps} *)

val to_json :
  ?extra:(string * Telemetry.Json.t) list ->
  reason:string ->
  seed:int ->
  unit ->
  Telemetry.Json.t
(** The crash-dump document: schema marker, reason, seed, a counter
    snapshot, and per-domain event arrays (oldest-first, with dropped
    counts).  [extra] fields are appended to the top-level object. *)

val write_crashdump :
  ?path:string ->
  ?extra:(string * Telemetry.Json.t) list ->
  reason:string ->
  seed:int ->
  unit ->
  string
(** Write {!to_json} to [path] (default [crashdump-<seed>.json] in the
    working directory) and return the path written. *)

type dump = {
  d_reason : string;
  d_seed : int;
  d_capacity : int;
  d_counters : (string * Telemetry.Json.t) list;
  d_domains : (int * int * event list) list;
      (** (domain id, dropped count, events oldest-first) *)
}

exception Bad_dump of string

val dump_of_json : Telemetry.Json.t -> dump
(** @raise Bad_dump when the document is not a crash dump. *)

val load : string -> dump
(** Read and parse a crash-dump file.
    @raise Telemetry.Json.Parse_error on malformed JSON.
    @raise Bad_dump when the JSON is not a crash dump. *)

val dump_events : dump -> event list
(** All events of a loaded dump, merged oldest-first. *)
