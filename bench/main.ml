(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (section 4).

     dune exec bench/main.exe               # all experiments, scaled-down sizes
     dune exec bench/main.exe -- fig4a fig5b --threads 8
     dune exec bench/main.exe -- all --scale 4
     dune exec bench/main.exe -- bechamel   # micro-benchmarks (one group per family)

   Sizes default well below the paper's (100M-insert runs need the authors'
   256GB 4-socket machine); --scale multiplies element counts.  Shapes — who
   wins, roughly by how much, where trends bend — are the reproduction
   target; see EXPERIMENTS.md for paper-vs-measured notes. *)

let pf = Printf.printf

(* ------------------------------------------------------------------ *)
(* Contestant instantiations                                          *)
(* ------------------------------------------------------------------ *)

(* 2D points (Fig. 3 / Fig. 4) *)
module CB = Btree.Make (Key.Pair) (* the paper's concurrent B-tree *)
module SB = Btree_seq.Make (Key.Pair) (* its sequential variant *)
module RB = Rbtree.Make (Key.Pair) (* "STL rbtset" *)
module HS = Hashset.Make (Key.Pair) (* "STL hashset" *)
module GB = Bplus_tree.Make (Key.Pair) (* "google btree" *)
module CH = Concurrent_hashset.Make (Key.Pair) (* "TBB hashset" *)
module RED = Reduction_set.Make (Key.Pair) (* "reduction btree" *)

(* 32-bit-style integer keys (Table 3) *)
module IB = Btree.Make (Key.Int)
module PT = Palm_tree.Make (Key.Int)
module MT = Masstree.Make (Key.Int)
module BS = Bslack_tree.Make (Key.Int)

type config = {
  scale : float;
  max_threads : int;
  full : bool;
  json : string; (* metrics output of the smoke experiment *)
  record : string option; (* --record NAME: append to the perf trajectory *)
  workload : string; (* smoke subset: "btree" | "datalog" | "all" *)
}

let scaled cfg n = max 1 (int_of_float (float_of_int n *. cfg.scale))

let sides cfg =
  if cfg.full then [ 1000; 2000; 5000; 10000 ]
  else
    List.map
      (fun s -> max 10 (int_of_float (float_of_int s *. sqrt cfg.scale)))
      [ 200; 350; 500 ]

let header_for sides =
  "structure" :: List.map (fun s -> Printf.sprintf "%d^2" s) sides

(* ------------------------------------------------------------------ *)
(* Fig. 3 — sequential performance                                    *)
(* ------------------------------------------------------------------ *)

(* A loaded container exposes the two read phases Fig. 3 measures. *)
type loaded = {
  l_mem : (int * int) -> bool; (* hinted membership where applicable *)
  l_scan : unit -> int; (* full iteration, returns elements visited *)
}

type structure = {
  s_name : string;
  s_insert : (int * int) array -> loaded; (* the timed insert phase *)
}

let structures () : structure list =
  [
    {
      s_name = "google btree";
      s_insert =
        (fun pts ->
          let t = GB.create () in
          Array.iter (fun p -> ignore (GB.insert t p : bool)) pts;
          {
            l_mem = (fun p -> GB.mem t p);
            l_scan =
              (fun () ->
                let n = ref 0 in
                GB.iter (fun _ -> incr n) t;
                !n);
          });
    };
    {
      s_name = "seq btree";
      s_insert =
        (fun pts ->
          let t = SB.create () in
          let h = SB.make_hints () in
          Array.iter (fun p -> ignore (SB.insert ~hints:h t p : bool)) pts;
          let qh = SB.make_hints () in
          {
            l_mem = (fun p -> SB.mem ~hints:qh t p);
            l_scan =
              (fun () ->
                let n = ref 0 in
                SB.iter (fun _ -> incr n) t;
                !n);
          });
    };
    {
      s_name = "seq btree (n/h)";
      s_insert =
        (fun pts ->
          let t = SB.create () in
          Array.iter (fun p -> ignore (SB.insert t p : bool)) pts;
          {
            l_mem = (fun p -> SB.mem t p);
            l_scan =
              (fun () ->
                let n = ref 0 in
                SB.iter (fun _ -> incr n) t;
                !n);
          });
    };
    {
      s_name = "btree";
      s_insert =
        (fun pts ->
          let t = CB.create () in
          let s = CB.session t in
          Array.iter (fun p -> ignore (CB.s_insert s p : bool)) pts;
          let qs = CB.session t in
          {
            l_mem = (fun p -> CB.s_mem qs p);
            l_scan =
              (fun () ->
                let n = ref 0 in
                CB.iter (fun _ -> incr n) t;
                !n);
          });
    };
    {
      s_name = "btree (n/h)";
      s_insert =
        (fun pts ->
          let t = CB.create () in
          Array.iter (fun p -> ignore (CB.insert t p : bool)) pts;
          {
            l_mem = (fun p -> CB.mem t p);
            l_scan =
              (fun () ->
                let n = ref 0 in
                CB.iter (fun _ -> incr n) t;
                !n);
          });
    };
    {
      s_name = "STL rbtset";
      s_insert =
        (fun pts ->
          let t = RB.create () in
          Array.iter (fun p -> ignore (RB.insert t p : bool)) pts;
          {
            l_mem = (fun p -> RB.mem t p);
            l_scan =
              (fun () ->
                let n = ref 0 in
                RB.iter (fun _ -> incr n) t;
                !n);
          });
    };
    {
      s_name = "STL hashset";
      s_insert =
        (fun pts ->
          let t = HS.create () in
          Array.iter (fun p -> ignore (HS.insert t p : bool)) pts;
          {
            l_mem = (fun p -> HS.mem t p);
            l_scan =
              (fun () ->
                let n = ref 0 in
                HS.iter (fun _ -> incr n) t;
                !n);
          });
    };
    {
      s_name = "TBB hashset";
      s_insert =
        (fun pts ->
          let t = CH.create () in
          Array.iter (fun p -> ignore (CH.insert t p : bool)) pts;
          {
            l_mem = (fun p -> CH.mem t p);
            l_scan =
              (fun () ->
                let n = ref 0 in
                CH.iter (fun _ -> incr n) t;
                !n);
          });
    };
  ]

let fig3_insert cfg ~ordered =
  let sides = sides cfg in
  pf "\n== Fig. 3%s: sequential insertion (%s) — M insertions/s ==\n"
    (if ordered then "a" else "b")
    (if ordered then "ordered" else "random order");
  let rows =
    List.map
      (fun s ->
        s.s_name
        :: List.map
             (fun side ->
               let pts =
                 if ordered then Graphs.points_ordered side
                 else Graphs.points_random (Rng.create side) side
               in
               Gc.full_major ();
               let dt =
                 Bench_util.best_of 3 (fun () -> ignore (s.s_insert pts : loaded))
               in
               Bench_util.fmt_f (Bench_util.mops (Array.length pts) dt))
             sides)
      (structures ())
  in
  Bench_util.Table.print ~header:(header_for sides) ~rows

let fig3_membership cfg ~ordered =
  let sides = sides cfg in
  pf "\n== Fig. 3%s: membership test (%s) — M queries/s ==\n"
    (if ordered then "c" else "d")
    (if ordered then "ordered" else "random order");
  let rows =
    List.map
      (fun s ->
        s.s_name
        :: List.map
             (fun side ->
               let pts = Graphs.points_ordered side in
               let loaded = s.s_insert pts in
               let probes =
                 if ordered then pts
                 else begin
                   let p = Array.copy pts in
                   Rng.shuffle (Rng.create (side + 1)) p;
                   p
                 end
               in
               Gc.full_major ();
               let misses = ref 0 in
               let dt =
                 Bench_util.best_of 3 (fun () ->
                     misses := 0;
                     Array.iter
                       (fun p -> if not (loaded.l_mem p) then incr misses)
                       probes)
               in
               assert (!misses = 0);
               Bench_util.fmt_f (Bench_util.mops (Array.length probes) dt))
             sides)
      (structures ())
  in
  Bench_util.Table.print ~header:(header_for sides) ~rows

let fig3_scan cfg ~ordered =
  let sides = sides cfg in
  pf "\n== Fig. 3%s: full-range scan (after %s insert) — M entries/s ==\n"
    (if ordered then "e" else "f")
    (if ordered then "ordered" else "random");
  (* hints are not applicable to iteration (paper, section 4.1): only the
     hint-carrying structure variants are dropped *)
  let scanned =
    List.filter
      (fun s -> s.s_name <> "seq btree (n/h)" && s.s_name <> "btree (n/h)")
      (structures ())
  in
  let rows =
    List.map
      (fun s ->
        s.s_name
        :: List.map
             (fun side ->
               let pts =
                 if ordered then Graphs.points_ordered side
                 else Graphs.points_random (Rng.create side) side
               in
               let loaded = s.s_insert pts in
               Gc.full_major ();
               (* several passes so small sets still measure *)
               let passes = max 1 (2_000_000 / Array.length pts) in
               let visited = ref 0 in
               let dt =
                 Bench_util.best_of 3 (fun () ->
                     visited := 0;
                     for _ = 1 to passes do
                       visited := !visited + loaded.l_scan ()
                     done)
               in
               assert (!visited = passes * Array.length pts);
               Bench_util.fmt_f (Bench_util.mops !visited dt))
             sides)
      scanned
  in
  Bench_util.Table.print ~header:(header_for sides) ~rows

(* ------------------------------------------------------------------ *)
(* Fig. 4 — parallel insertion                                        *)
(* ------------------------------------------------------------------ *)

(* [contiguous = true] gives each worker a contiguous block of the input
   (the NUMA-friendly layout of Fig. 4c: with first-touch allocation and
   pinned threads, a worker's block stays socket-local); [false] interleaves
   the input round-robin — workers then contend on the same leaves. *)
let parallel_insert_driver ~contiguous pool pts insert =
  let n = Array.length pts in
  if contiguous then
    Pool.parallel_for_ranges pool 0 n (fun w lo hi ->
        let ins = insert w in
        for i = lo to hi - 1 do
          ins pts.(i)
        done)
  else begin
    let workers = Pool.size pool in
    Pool.run pool (fun w ->
        let ins = insert w in
        let i = ref w in
        while !i < n do
          ins pts.(!i);
          i := !i + workers
        done)
  end

let fig4 cfg ~ordered ~contiguous ~label =
  let n = scaled cfg 1_000_000 in
  let side = int_of_float (ceil (sqrt (float_of_int n))) in
  let pts0 =
    if ordered then Graphs.points_ordered side
    else Graphs.points_random (Rng.create 4) side
  in
  let pts = Array.sub pts0 0 (min n (Array.length pts0)) in
  let n = Array.length pts in
  let threads = Bench_util.thread_counts ~max:cfg.max_threads in
  pf "\n== Fig. 4%s: parallel insertion (%s, %s) — M insertions/s, %d points ==\n"
    label
    (if ordered then "ordered" else "random")
    (if contiguous then "per-thread contiguous blocks" else "interleaved")
    n;
  let contestants =
    [
      ( "btree",
        fun pool ->
          let t = CB.create () in
          parallel_insert_driver ~contiguous pool pts (fun _w ->
              let s = CB.session t in
              fun p -> ignore (CB.s_insert s p : bool)) );
      ( "btree (n/h)",
        fun pool ->
          let t = CB.create () in
          parallel_insert_driver ~contiguous pool pts (fun _w p ->
              ignore (CB.insert t p : bool)) );
      ( "google btree",
        fun pool ->
          (* global lock: the configuration that predictably cannot scale *)
          let t = GB.create () in
          let m = Mutex.create () in
          parallel_insert_driver ~contiguous pool pts (fun _w p ->
              Mutex.protect m (fun () -> ignore (GB.insert t p : bool))) );
      ("reduction btree", fun pool -> ignore (RED.build pool pts : RED.Tree.t));
      ( "TBB hashset",
        fun pool ->
          let t = CH.create ~initial_capacity:n () in
          parallel_insert_driver ~contiguous pool pts (fun _w p ->
              ignore (CH.insert t p : bool)) );
    ]
  in
  let rows =
    List.map
      (fun (name, run) ->
        name
        :: List.map
             (fun t ->
               Gc.full_major ();
               let dt =
                 Pool.with_pool t (fun pool ->
                     snd (Bench_util.time (fun () -> run pool)))
               in
               Bench_util.fmt_f (Bench_util.mops n dt))
             threads)
      contestants
  in
  Bench_util.Table.print
    ~header:("structure" :: List.map (fun t -> Printf.sprintf "%dT" t) threads)
    ~rows

(* ------------------------------------------------------------------ *)
(* Table 1 — summary of investigated data structures                  *)
(* ------------------------------------------------------------------ *)

let table1 _cfg =
  pf "\n== Table 1: summary of investigated data structures ==\n";
  Bench_util.Table.print
    ~header:[ "designation"; "thread safe"; "description" ]
    ~rows:
      [
        [ "STL rbtset"; "no"; "red-black tree (Rbtree)" ];
        [ "STL hashset"; "no"; "open-addressing hash set (Hashset)" ];
        [ "google btree"; "no"; "B+-tree, binary search, linked leaves (Bplus_tree)" ];
        [ "TBB hashset"; "yes"; "lock-striped concurrent hash set (Concurrent_hashset)" ];
        [ "seq btree"; "no"; "sequential variant of our B-tree (Btree_seq)" ];
        [ "seq btree (n/h)"; "no"; "our sequential B-tree without hints" ];
        [ "reduction btree"; "yes"; "thread-private B+-trees + parallel reduction (Reduction_set)" ];
        [ "btree"; "yes"; "our optimistic B-tree (Btree, Algorithms 1-2 + hints)" ];
        [ "btree (n/h)"; "yes"; "our optimistic B-tree without hints" ];
      ]

(* ------------------------------------------------------------------ *)
(* Table 2 + Fig. 5 — Datalog workloads                               *)
(* ------------------------------------------------------------------ *)

let pointsto_workload cfg =
  let c = Pointsto_gen.scaled cfg.scale in
  (Pointsto_gen.program c, Pointsto_gen.facts c (Rng.create 11), "var-points-to")

let network_workload cfg =
  let c = Network_gen.scaled cfg.scale in
  (Network_gen.program, Network_gen.facts c (Rng.create 12), "network security")

let run_engine ?(instrument = false) ~kind ~threads (prog, facts, _) =
  let engine = Engine.create ~kind ~instrument prog in
  List.iter (fun (r, t) -> Engine.add_fact engine r t) facts;
  let dt =
    Pool.with_pool threads (fun pool ->
        snd (Bench_util.time (fun () -> Engine.run engine pool)))
  in
  (engine, dt)

let table2 cfg =
  pf "\n== Table 2: Datalog benchmark properties (synthetic workloads) ==\n";
  let describe ((prog, _, name) as w) =
    let e, _ = run_engine ~instrument:true ~kind:Storage.Btree ~threads:1 w in
    let s = Option.get (Engine.stats e) in
    (name, List.length (Engine.relations e), List.length prog.Ast.rules, s)
  in
  let rows =
    List.map
      (fun w ->
        let name, rels, rules, s = describe w in
        [
          name;
          string_of_int rels;
          string_of_int rules;
          Printf.sprintf "%.1e" (float_of_int s.Dl_stats.s_inserts);
          Printf.sprintf "%.1e" (float_of_int s.Dl_stats.s_mem_tests);
          Printf.sprintf "%.1e" (float_of_int s.Dl_stats.s_lower_bounds);
          Printf.sprintf "%.1e" (float_of_int s.Dl_stats.s_upper_bounds);
          Printf.sprintf "%.1e" (float_of_int s.Dl_stats.s_input_tuples);
          Printf.sprintf "%.1e" (float_of_int s.Dl_stats.s_produced_tuples);
        ])
      [ pointsto_workload cfg; network_workload cfg ]
  in
  Bench_util.Table.print
    ~header:
      [
        "workload"; "relations"; "rules"; "inserts"; "membership";
        "lower_bound"; "upper_bound"; "input"; "produced";
      ]
    ~rows

let fig5 cfg ~which =
  let workload, label =
    match which with
    | `A -> (pointsto_workload cfg, "5a: var-points-to analysis (insertion heavy)")
    | `B -> (network_workload cfg, "5b: network security analysis (read heavy)")
  in
  let threads = Bench_util.thread_counts ~max:cfg.max_threads in
  pf "\n== Fig. %s — runtime [s] ==\n" label;
  let rows =
    List.map
      (fun kind ->
        Storage.kind_name kind
        :: List.map
             (fun t ->
               Gc.full_major ();
               let _, dt = run_engine ~kind ~threads:t workload in
               Printf.sprintf "%.2f" dt)
             threads)
      Storage.all_kinds
  in
  Bench_util.Table.print
    ~header:("storage" :: List.map (fun t -> Printf.sprintf "%dT" t) threads)
    ~rows;
  (* section 4.3 hint statistics *)
  List.iter
    (fun t ->
      let e, _ = run_engine ~kind:Storage.Btree ~threads:t workload in
      match Engine.hint_rate e with
      | Some r ->
        pf "hint hit rate (%d thread%s): %.0f%%\n" t
          (if t = 1 then "" else "s")
          (100.0 *. r)
      | None -> ())
    (List.sort_uniq compare [ 1; cfg.max_threads ])

(* ------------------------------------------------------------------ *)
(* Table 3 — comparison with concurrent tree data structures          *)
(* ------------------------------------------------------------------ *)

let table3 cfg =
  let n = scaled cfg 1_000_000 in
  pf "\n== Table 3: throughput inserting integers (ordered/random) \
      [M elements/s], %d elements ==\n"
    n;
  let ordered = Array.init n (fun i -> i) in
  let random =
    let a = Array.copy ordered in
    Rng.shuffle (Rng.create 3) a;
    a
  in
  let contestants =
    [
      ( "B-tree",
        fun pool keys ->
          let t = IB.create () in
          Pool.parallel_for_ranges pool 0 (Array.length keys) (fun _w lo hi ->
              let s = IB.session t in
              for i = lo to hi - 1 do
                ignore (IB.s_insert s keys.(i) : bool)
              done) );
      ( "PALM tree",
        fun pool keys ->
          let t = PT.create () in
          Pool.parallel_for_ranges pool 0 (Array.length keys) (fun _w lo hi ->
              for i = lo to hi - 1 do
                PT.insert t keys.(i)
              done);
          PT.flush t );
      ( "Masstree",
        fun pool keys ->
          let t = MT.create () in
          Pool.parallel_for_ranges pool 0 (Array.length keys) (fun _w lo hi ->
              for i = lo to hi - 1 do
                ignore (MT.insert t keys.(i) : bool)
              done) );
      ( "B-slack",
        fun pool keys ->
          let t = BS.create () in
          Pool.parallel_for_ranges pool 0 (Array.length keys) (fun _w lo hi ->
              for i = lo to hi - 1 do
                ignore (BS.insert t keys.(i) : bool)
              done) );
    ]
  in
  let threads = List.filter (fun t -> t <= max 8 cfg.max_threads) [ 1; 2; 4; 8 ] in
  let rows =
    List.map
      (fun t ->
        string_of_int t
        :: List.map
             (fun (_, run) ->
               let cell keys =
                 Gc.full_major ();
                 let dt =
                   Pool.with_pool t (fun pool ->
                       snd (Bench_util.time (fun () -> run pool keys)))
                 in
                 Bench_util.fmt_f (Bench_util.mops n dt)
               in
               cell ordered ^ "/" ^ cell random)
             contestants)
      threads
  in
  Bench_util.Table.print
    ~header:("threads" :: List.map (fun (name, _) -> name ^ " (ord/rnd)") contestants)
    ~rows

(* ------------------------------------------------------------------ *)
(* Ablations (design decisions called out in DESIGN.md)               *)
(* ------------------------------------------------------------------ *)

let random_points cfg n seed =
  let side = int_of_float (sqrt (float_of_int (scaled cfg n))) + 1 in
  let pts = Graphs.points_random (Rng.create seed) side in
  Array.sub pts 0 (min (scaled cfg n) (Array.length pts))

let ablation_width cfg =
  let pts = random_points cfg 500_000 5 in
  pf "\n== Ablation: node capacity (M ops/s over %d random 2D points) ==\n"
    (Array.length pts);
  let rows =
    List.map
      (fun cap ->
        let t = CB.create ~capacity:cap () in
        Gc.full_major ();
        let _, d_ins =
          Bench_util.time (fun () ->
              Array.iter (fun p -> ignore (CB.insert t p : bool)) pts)
        in
        let _, d_mem =
          Bench_util.time (fun () ->
              Array.iter (fun p -> ignore (CB.mem t p : bool)) pts)
        in
        let st = CB.stats t in
        [
          string_of_int cap;
          Bench_util.fmt_f (Bench_util.mops (Array.length pts) d_ins);
          Bench_util.fmt_f (Bench_util.mops (Array.length pts) d_mem);
          string_of_int st.CB.height;
          Printf.sprintf "%.2f" st.CB.fill;
        ])
      [ 4; 8; 16; 24; 32; 64; 128 ]
  in
  Bench_util.Table.print
    ~header:[ "capacity"; "insert M/s"; "mem M/s"; "height"; "fill" ]
    ~rows

let ablation_search cfg =
  let pts = random_points cfg 500_000 6 in
  pf "\n== Ablation: linear vs binary in-node search (M ops/s, %d random 2D \
      points) ==\n"
    (Array.length pts);
  let rows =
    List.concat_map
      (fun cap ->
        List.map
          (fun binary ->
            let t = CB.create ~capacity:cap ~binary_search:binary () in
            Gc.full_major ();
            let _, d_ins =
              Bench_util.time (fun () ->
                  Array.iter (fun p -> ignore (CB.insert t p : bool)) pts)
            in
            let _, d_mem =
              Bench_util.time (fun () ->
                  Array.iter (fun p -> ignore (CB.mem t p : bool)) pts)
            in
            [
              string_of_int cap;
              (if binary then "binary" else "linear");
              Bench_util.fmt_f (Bench_util.mops (Array.length pts) d_ins);
              Bench_util.fmt_f (Bench_util.mops (Array.length pts) d_mem);
            ])
          [ false; true ])
      [ 16; 32; 64 ]
  in
  Bench_util.Table.print
    ~header:[ "capacity"; "search"; "insert M/s"; "mem M/s" ]
    ~rows

let ablation_merge cfg =
  let n = scaled cfg 300_000 in
  pf "\n== Ablation: structural merge (hinted insert_all) vs plain loop, \
      2 x %d elements ==\n"
    n;
  let mk seed =
    let rng = Rng.create seed in
    let t = CB.create () in
    for _ = 1 to n do
      ignore (CB.insert t (Rng.int rng 1_000_000, Rng.int rng 1_000_000) : bool)
    done;
    t
  in
  let src = mk 21 in
  let dst1 = mk 22 and dst2 = mk 22 in
  Gc.full_major ();
  let _, d_hinted = Bench_util.time (fun () -> CB.insert_all dst1 src) in
  Gc.full_major ();
  let _, d_plain =
    Bench_util.time (fun () ->
        CB.iter (fun k -> ignore (CB.insert dst2 k : bool)) src)
  in
  Bench_util.Table.print
    ~header:[ "merge strategy"; "seconds"; "M ins/s" ]
    ~rows:
      [
        [
          "hinted (insert_all)";
          Printf.sprintf "%.3f" d_hinted;
          Bench_util.fmt_f (Bench_util.mops n d_hinted);
        ];
        [
          "plain loop";
          Printf.sprintf "%.3f" d_plain;
          Bench_util.fmt_f (Bench_util.mops n d_plain);
        ];
      ];
  assert (CB.cardinal dst1 = CB.cardinal dst2)

let ablation_locks cfg =
  pf "\n== Ablation: read-path cost of locking schemes (M read-sections/s) ==\n";
  pf "(the paper's motivation: an optimistic read is a pure load; pessimistic\n\
     \ read locks store to the shared lock word on every acquisition)\n";
  let iters = scaled cfg 2_000_000 in
  let threads = Bench_util.thread_counts ~max:cfg.max_threads in
  (* shared protected data: a pair that writers keep consistent; here we
     only measure the read path on an uncontended lock *)
  let x = ref 1 and y = ref 1 in
  let sink = ref 0 in
  let run_scheme read_section t =
    Pool.with_pool t (fun pool ->
        snd
          (Bench_util.time (fun () ->
               Pool.parallel_for_ranges pool 0 (iters * t) (fun _w lo hi ->
                   for _ = lo to hi - 1 do
                     read_section ()
                   done))))
  in
  let olock = Olock.create () in
  let optimistic () =
    let lease = Olock.start_read olock in
    let a = !x and b = !y in
    if Olock.end_read olock lease then sink := !sink + a + b
  in
  let rw = Olock.Rwlock.create () in
  let pessimistic () =
    Olock.Rwlock.read_lock rw;
    sink := !sink + !x + !y;
    Olock.Rwlock.read_unlock rw
  in
  let m = Mutex.create () in
  let mutex () = Mutex.protect m (fun () -> sink := !sink + !x + !y) in
  let rows =
    List.map
      (fun (name, f) ->
        name
        :: List.map
             (fun t ->
               Gc.full_major ();
               let dt = run_scheme f t in
               Bench_util.fmt_f (Bench_util.mops (iters * t) dt))
             threads)
      [
        ("optimistic lock (lease)", optimistic);
        ("pessimistic rw lock", pessimistic);
        ("mutex", mutex);
      ]
  in
  Bench_util.Table.print
    ~header:("scheme" :: List.map (fun t -> Printf.sprintf "%dT" t) threads)
    ~rows

let ablation_specialization cfg =
  let n = scaled cfg 500_000 in
  pf "\n== Ablation: functor tree vs specialized tuple tree (M ops/s, %d \
      random 2-tuples) ==\n" n;
  let r = Rng.create 31 in
  let keys = Array.init n (fun _ -> [| Rng.int r 100_000; Rng.int r 100_000 |]) in
  let module G = Btree.Make (Key.Int_array) in
  let bench_generic () =
    let t = G.create ~binary_search:true () in
    Gc.full_major ();
    let _, d_ins =
      Bench_util.time (fun () ->
          Array.iter (fun k -> ignore (G.insert t k : bool)) keys)
    in
    let _, d_mem =
      Bench_util.time (fun () ->
          Array.iter (fun k -> ignore (G.mem t k : bool)) keys)
    in
    (d_ins, d_mem)
  in
  let bench_specialized () =
    let t = Btree_tuples.create ~arity:2 ~order:[| 0; 1 |] () in
    Gc.full_major ();
    let _, d_ins =
      Bench_util.time (fun () ->
          Array.iter (fun k -> ignore (Btree_tuples.insert t k : bool)) keys)
    in
    let _, d_mem =
      Bench_util.time (fun () ->
          Array.iter (fun k -> ignore (Btree_tuples.mem t k : bool)) keys)
    in
    (d_ins, d_mem)
  in
  let gi, gm = bench_generic () in
  let si, sm = bench_specialized () in
  Bench_util.Table.print
    ~header:[ "tree"; "insert M/s"; "mem M/s" ]
    ~rows:
      [
        [ "generic functor (indirect compare)";
          Bench_util.fmt_f (Bench_util.mops n gi);
          Bench_util.fmt_f (Bench_util.mops n gm) ];
        [ "specialized tuples (inlined compare)";
          Bench_util.fmt_f (Bench_util.mops n si);
          Bench_util.fmt_f (Bench_util.mops n sm) ];
      ]

(* ------------------------------------------------------------------ *)
(* Smoke: telemetry overhead + machine-readable metrics               *)
(* ------------------------------------------------------------------ *)

(* A fast end-to-end exercise of the telemetry layer, meant for CI:
     1. measure counters-on vs telemetry-off insert time (a strictly harder
        bound than the disabled-path "<5%" target, since the disabled path
        only pays one load + branch per event site);
     2. run a small Datalog workload with counters + tracing on and export
        the Chrome trace;
     3. write all of it as metrics JSON and re-parse both files, failing
        loudly on malformed output. *)
let smoke cfg =
  pf "\n== smoke: telemetry overhead + metrics export (workload=%s) ==\n"
    cfg.workload;
  let threads = min 2 cfg.max_threads in
  let read_file f = In_channel.with_open_bin f In_channel.input_all in
  let run_btree = cfg.workload = "all" || cfg.workload = "btree" in
  let run_datalog = cfg.workload = "all" || cfg.workload = "datalog" in
  (* 1. overhead: sequential random inserts, telemetry off vs counters on *)
  let overhead =
    if not run_btree then None
    else begin
      let pts =
        random_points { cfg with scale = min cfg.scale 1.0 } 300_000 41
      in
      let insert_run () =
        let t = CB.create () in
        Array.iter (fun p -> ignore (CB.insert t p : bool)) pts
      in
      Telemetry.disable ();
      Gc.full_major ();
      let d_off = Bench_util.best_of 3 insert_run in
      Telemetry.enable ();
      Gc.full_major ();
      let d_on = Bench_util.best_of 3 insert_run in
      Telemetry.disable ();
      let overhead_pct = (d_on -. d_off) /. d_off *. 100.0 in
      pf "insert %d points: %.3fs off, %.3fs counters-on (%+.1f%%)\n"
        (Array.length pts) d_off d_on overhead_pct;
      Some (Array.length pts, d_off, d_on, overhead_pct)
    end
  in
  (* 1b. batch write path: delta->full sorted-run merge, per-tuple parallel
     inserts vs the parallel structural merge, on >= 4 domains.  The tree is
     pre-seeded (so it has internal separators to partition by) and then a
     large sorted delta is merged — the insert-heavy shape of semi-naive
     promotion. *)
  let batch =
    if not run_btree then None
    else begin
      let bdomains = max 4 (min cfg.max_threads 8) in
      let bpts =
        random_points { cfg with scale = min cfg.scale 1.0 } 400_000 43
      in
      let btuples = Array.map (fun (x, y) -> [| x; y |]) bpts in
      let nseed = Array.length btuples / 4 in
      let seed_tuples = Array.sub btuples 0 nseed in
      let delta = Array.sub btuples nseed (Array.length btuples - nseed) in
      let cmp2 a b =
        let c = compare a.(0) b.(0) in
        if c <> 0 then c else compare a.(1) b.(1)
      in
      Array.sort cmp2 delta;
      let ndelta = Array.length delta in
      let prep () =
        let idx =
          Storage.Index.create Storage.Btree ~arity:2 ~cols:[||] ~stats:None ()
        in
        Array.iter (fun tup -> ignore (Storage.Index.insert idx tup : bool))
          seed_tuples;
        idx
      in
      let d_single, d_batch, batch_ok =
        Pool.with_pool bdomains (fun pool ->
            let single idx =
              Pool.parallel_for_ranges ~label:"bench_single" pool 0 ndelta
                (fun _w lo hi ->
                  let cur = Storage.Index.cursor idx in
                  for i = lo to hi - 1 do
                    ignore (Storage.Index.c_insert cur delta.(i) : bool)
                  done)
            in
            let batch idx = ignore (Storage.Index.merge ~pool idx delta : int) in
            (* correctness gate (doubles as warmup): both paths must build the
               same set *)
            let card f =
              let idx = prep () in
              f idx;
              Storage.Index.cardinal idx
            in
            let cs = card single and cb = card batch in
            if cs <> cb then
              failwith
                (Printf.sprintf "smoke: batch merge built %d tuples, single %d"
                   cb cs);
            let best3 f =
              let best = ref infinity in
              for _ = 1 to 3 do
                let idx = prep () in
                Gc.full_major ();
                let _, d = Bench_util.time (fun () -> f idx) in
                if d < !best then best := d
              done;
              !best
            in
            (best3 single, best3 batch, cs = cb))
      in
      ignore (batch_ok : bool);
      let batch_speedup = d_single /. d_batch in
      pf
        "sorted-run merge of %d tuples on %d domains: %.3fs per-tuple, %.3fs \
         batch (%.2fx)\n"
        ndelta bdomains d_single d_batch batch_speedup;
      Some (bdomains, nseed, ndelta, d_single, d_batch, batch_speedup)
    end
  in
  (* 1c. WAL append overhead: the durability tax of the resident server's
     write-ahead log.  Replays the server's append pattern — fact batches
     with a commit marker per generation flip — under durability [none]
     (never fsync) and [batch] (group-commit fsync at each flip), so the
     ratio is the fsync cost exactly where the server pays it. *)
  let wal =
    if not run_btree then None
    else begin
      let rec rm_rf path =
        match (Unix.lstat path).Unix.st_kind with
        | Unix.S_DIR ->
          Array.iter
            (fun e -> rm_rf (Filename.concat path e))
            (Sys.readdir path);
          Unix.rmdir path
        | _ -> Unix.unlink path
        | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
      in
      let dir =
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "bench-wal-%d" (Unix.getpid ()))
      in
      let n_facts = 2_000 and per_flip = 100 in
      let lines =
        Array.init n_facts (fun i -> Printf.sprintf "%d\t%d" i (i * 7))
      in
      let run durability =
        rm_rf dir;
        match Wal.open_dir ~durability dir with
        | Error m -> failwith ("smoke: wal open: " ^ m)
        | Ok (w, _) ->
          let append e =
            match Wal.append w e with
            | Ok () -> ()
            | Error m -> failwith ("smoke: wal append: " ^ m)
          in
          let _, d =
            Bench_util.time (fun () ->
                let seq = ref 0 in
                Array.iteri
                  (fun i line ->
                    append (Wal.Facts ("kv", [ line ]));
                    if (i + 1) mod per_flip = 0 then begin
                      incr seq;
                      append (Wal.Commit !seq)
                    end)
                  lines)
          in
          Wal.close w;
          rm_rf dir;
          d
      in
      let d_none = run Wal.D_none in
      let d_batch = run Wal.D_batch in
      let wal_overhead = d_batch /. d_none in
      pf
        "wal append %d facts (%d per flip): %.3fs none, %.3fs batch (%.2fx)\n"
        n_facts per_flip d_none d_batch wal_overhead;
      Some (n_facts, per_flip, d_none, d_batch, wal_overhead)
    end
  in
  (* 2. traced Datalog run, with the flight recorder on: its events ride
     into the Chrome trace via the registered provider, and the drained
     rings aggregate into the contention heatmap of the metrics JSON. *)
  let eval =
    if not run_datalog then None
    else begin
      Telemetry.reset ();
      Telemetry.enable ~tracing:true ();
      Flight.enable ();
      let workload = pointsto_workload { cfg with scale = min cfg.scale 0.2 } in
      let engine, dt = run_engine ~kind:Storage.Btree ~threads workload in
      let heat = Tree_shape.heat_of_events (Flight.events ()) in
      let trace_file = Filename.temp_file "smoke" ".trace.json" in
      Telemetry.export_trace ~process_name:"bench smoke" trace_file;
      Flight.disable ();
      Telemetry.disable ();
      let trace = Telemetry.Json.of_string (read_file trace_file) in
      let events =
        match Telemetry.Json.member "traceEvents" trace with
        | Some (Telemetry.Json.List l) -> List.length l
        | _ -> failwith "smoke: trace JSON has no traceEvents list"
      in
      if events = 0 then failwith "smoke: trace contains no events";
      pf "traced pointsto run: %.3fs on %d threads, %d iterations, %d trace \
          events (%s)\n"
        dt threads (Engine.iterations engine) events trace_file;
      Some (engine, dt, trace_file, events, heat)
    end
  in
  (* 3. metrics JSON + parse-back.  Counters/histograms snapshot whatever
     the selected workload ran: the datalog phase resets telemetry first,
     the btree-only path keeps its counters-on insert run. *)
  let open Telemetry.Json in
  let snap = Telemetry.snapshot () in
  let metrics =
    Obj
      ([
         ("schema_version", Int 2);
         ( "config",
           Obj
             [
               ("threads", Int threads);
               ("scale", Float cfg.scale);
               ("workload", String cfg.workload);
             ] );
       ]
      @ (match overhead with
        | None -> []
        | Some (npts, d_off, d_on, overhead_pct) ->
          [
            ( "overhead",
              Obj
                [
                  ("insert_points", Int npts);
                  ("insert_off_s", Float d_off);
                  ("insert_counters_s", Float d_on);
                  ("overhead_pct", Float overhead_pct);
                ] );
          ])
      @ (match batch with
        | None -> []
        | Some (bdomains, nseed, ndelta, d_single, d_batch, batch_speedup) ->
          [
            ( "batch",
              Obj
                [
                  ("domains", Int bdomains);
                  ("seed_tuples", Int nseed);
                  ("delta_tuples", Int ndelta);
                  ("single_insert_s", Float d_single);
                  ("batch_merge_s", Float d_batch);
                  ("batch_speedup", Float batch_speedup);
                ] );
          ])
      @ (match wal with
        | None -> []
        | Some (n_facts, per_flip, d_none, d_batch, wal_overhead) ->
          [
            ( "wal",
              Obj
                [
                  ("facts", Int n_facts);
                  ("facts_per_flip", Int per_flip);
                  ("append_none_s", Float d_none);
                  ("append_batch_s", Float d_batch);
                  ("wal_append_overhead", Float wal_overhead);
                ] );
          ])
      @ (match eval with
        | None -> []
        | Some (engine, dt, trace_file, events, heat) ->
          [
            ( "eval",
              Obj
                [
                  ("seconds", Float dt);
                  ("iterations", Int (Engine.iterations engine));
                ] );
            ( "tree_shape",
              Obj
                (List.map
                   (fun (rel, sh) -> (rel, Tree_shape.to_json sh))
                   (Engine.tree_shapes engine)) );
            ("contention", Tree_shape.heat_to_json heat);
            ( "trace",
              Obj [ ("file", String trace_file); ("events", Int events) ] );
          ])
      @ [
          ("counters", Telemetry.counters_json snap);
          ("histograms", Telemetry.histograms_json snap);
        ])
  in
  Out_channel.with_open_bin cfg.json (fun oc ->
      output oc metrics;
      output_char oc '\n');
  let parsed = of_string (read_file cfg.json) in
  (match member "counters" parsed with
  | Some (Obj (_ :: _)) -> ()
  | _ -> failwith "smoke: metrics JSON failed parse-back");
  (match member "histograms" parsed with
  | Some (Obj (_ :: _)) -> ()
  | _ -> failwith "smoke: metrics JSON carries no histograms");
  pf "metrics written to %s (parse-back ok)\n" cfg.json;
  (* 4. optional regression recording: per-run snapshot + history line *)
  match cfg.record with
  | None -> ()
  | Some name ->
    let safe =
      String.map
        (fun c ->
          match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c | _ -> '_')
        name
    in
    let snap_file = Printf.sprintf "BENCH_%s.json" safe in
    let now = Unix.gettimeofday () in
    Out_channel.with_open_bin snap_file (fun oc ->
        output oc
          (Obj
             [
               ("name", String name);
               ("recorded_at", Float now);
               ("metrics", metrics);
             ]);
        output_char oc '\n');
    let p99 m = Telemetry.hist_quantile (Telemetry.hist_of snap m) 0.99 in
    let entry =
      Obj
        ([
           ("schema_version", Int 2);
           ("name", String name);
           ("recorded_at", Float now);
           ("workload", String cfg.workload);
         ]
        @ (match eval with
          | None -> []
          | Some (engine, dt, _, _, _) ->
            [
              ("eval_seconds", Float dt);
              ("iterations", Int (Engine.iterations engine));
              ( "eval_iteration_p99_ns",
                Int (p99 Telemetry.Hist.Eval_iteration_ns) );
            ])
        @ (match overhead with
          | None -> []
          | Some (_, d_off, d_on, overhead_pct) ->
            [
              ("insert_off_s", Float d_off);
              ("insert_counters_s", Float d_on);
              ("overhead_pct", Float overhead_pct);
            ])
        @ (match batch with
          | None -> []
          | Some (_, _, _, d_single, d_batch, batch_speedup) ->
            [
              ("batch_single_s", Float d_single);
              ("batch_merge_s", Float d_batch);
              ("batch_speedup", Float batch_speedup);
            ])
        @ (match wal with
          | None -> []
          | Some (_, _, d_none, d_batch, wal_overhead) ->
            [
              ("wal_none_s", Float d_none);
              ("wal_batch_s", Float d_batch);
              ("wal_append_overhead", Float wal_overhead);
            ])
        @ [
            ("btree_insert_p99_ns", Int (p99 Telemetry.Hist.Btree_insert_ns));
            (* fallback gate: non-chaos runs must report 0 here (checked by
               tools/regress.sh); the chaos flag exempts deliberate-fault
               runs *)
            ( "pessimistic_fallbacks",
              Int
                (Telemetry.get snap
                   Telemetry.Counter.Btree_pessimistic_fallbacks) );
            ("chaos", Bool (Chaos.active ()));
          ])
    in
    let hist_file = "BENCH_history.jsonl" in
    let oc = open_out_gen [ Open_append; Open_creat ] 0o644 hist_file in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output oc entry;
        output_char oc '\n');
    pf "recorded run %S -> %s + %s\n" name snap_file hist_file

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                          *)
(* ------------------------------------------------------------------ *)

let bechamel_suite () =
  let open Bechamel in
  let open Toolkit in
  pf "\n== Bechamel micro-benchmarks (ns/op, OLS on the monotonic clock) ==\n";
  (* prebuilt 100k-element structures; probes rotate through the key set *)
  let n = 100_000 in
  let rng = Rng.create 17 in
  let keys = Array.init n (fun _ -> (Rng.int rng 100_000, Rng.int rng 100_000)) in
  let cb = CB.create () in
  let rb = RB.create () in
  let hs = HS.create () in
  let gb = GB.create () in
  Array.iter
    (fun p ->
      ignore (CB.insert cb p : bool);
      ignore (RB.insert rb p : bool);
      ignore (HS.insert hs p : bool);
      ignore (GB.insert gb p : bool))
    keys;
  let idx = ref 0 in
  let next_key () =
    let k = keys.(!idx) in
    idx := (!idx + 1) land 0xFFFF;
    k
  in
  let lock = Olock.create () in
  let mem_group =
    Test.make_grouped ~name:"fig3cd membership" ~fmt:"%s %s"
      [
        Test.make ~name:"btree" (Staged.stage (fun () -> CB.mem cb (next_key ())));
        Test.make ~name:"rbtset" (Staged.stage (fun () -> RB.mem rb (next_key ())));
        Test.make ~name:"hashset" (Staged.stage (fun () -> HS.mem hs (next_key ())));
        Test.make ~name:"google-btree"
          (Staged.stage (fun () -> GB.mem gb (next_key ())));
      ]
  in
  let grow = CB.create () in
  let grow_sess = CB.session grow in
  let counter = ref 0 in
  let insert_group =
    Test.make_grouped ~name:"fig3ab insertion" ~fmt:"%s %s"
      [
        Test.make ~name:"btree-ordered-hinted"
          (Staged.stage (fun () ->
               incr counter;
               ignore (CB.s_insert grow_sess (!counter, 0) : bool)));
        Test.make ~name:"btree-random"
          (Staged.stage (fun () -> ignore (CB.insert cb (next_key ()) : bool)));
      ]
  in
  let lock_group =
    Test.make_grouped ~name:"olock protocol" ~fmt:"%s %s"
      [
        Test.make ~name:"start_read+end_read"
          (Staged.stage (fun () ->
               let l = Olock.start_read lock in
               ignore (Olock.end_read lock l : bool)));
        Test.make ~name:"write-cycle"
          (Staged.stage (fun () ->
               Olock.start_write lock;
               Olock.end_write lock));
      ]
  in
  let table3_int = IB.create () in
  let icounter = ref 0 in
  let int_group =
    Test.make_grouped ~name:"table3 int insert" ~fmt:"%s %s"
      [
        Test.make ~name:"btree-int-ordered"
          (Staged.stage (fun () ->
               incr icounter;
               ignore (IB.insert table3_int !icounter : bool)));
      ]
  in
  let all =
    Test.make_grouped ~name:"repro" ~fmt:"%s/%s"
      [ mem_group; insert_group; lock_group; int_group ]
  in
  let benchmark () =
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000 ~stabilize:true ~quota:(Time.second 0.25) ()
    in
    Benchmark.all cfg instances all
  in
  let results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
    in
    Analyze.all ols Instance.monotonic_clock (benchmark ())
  in
  let lines = ref [] in
  Hashtbl.iter
    (fun name result ->
      let text =
        match Analyze.OLS.estimates result with
        | Some [ est ] -> Printf.sprintf "  %-45s %10.1f ns/op" name est
        | _ -> Printf.sprintf "  %-45s (no estimate)" name
      in
      lines := text :: !lines)
    results;
  List.iter print_endline (List.sort compare !lines)

(* ------------------------------------------------------------------ *)
(* Driver                                                             *)
(* ------------------------------------------------------------------ *)

let known_experiments =
  [
    "fig3a"; "fig3b"; "fig3c"; "fig3d"; "fig3e"; "fig3f";
    "fig4a"; "fig4b"; "fig4c"; "fig4d";
    "table1"; "table2"; "fig5a"; "fig5b"; "table3";
    "ablation-width"; "ablation-search"; "ablation-merge";
    "ablation-specialization"; "ablation-locks"; "bechamel"; "smoke";
  ]

let run_experiment cfg = function
  | "fig3a" -> fig3_insert cfg ~ordered:true
  | "fig3b" -> fig3_insert cfg ~ordered:false
  | "fig3c" -> fig3_membership cfg ~ordered:true
  | "fig3d" -> fig3_membership cfg ~ordered:false
  | "fig3e" -> fig3_scan cfg ~ordered:true
  | "fig3f" -> fig3_scan cfg ~ordered:false
  | "fig4a" -> fig4 cfg ~ordered:true ~contiguous:false ~label:"a"
  | "fig4b" -> fig4 cfg ~ordered:false ~contiguous:false ~label:"b"
  | "fig4c" -> fig4 cfg ~ordered:true ~contiguous:true ~label:"c"
  | "fig4d" -> fig4 cfg ~ordered:false ~contiguous:true ~label:"d"
  | "table1" -> table1 cfg
  | "table2" -> table2 cfg
  | "fig5a" -> fig5 cfg ~which:`A
  | "fig5b" -> fig5 cfg ~which:`B
  | "table3" -> table3 cfg
  | "ablation-width" -> ablation_width cfg
  | "ablation-search" -> ablation_search cfg
  | "ablation-merge" -> ablation_merge cfg
  | "ablation-specialization" -> ablation_specialization cfg
  | "ablation-locks" -> ablation_locks cfg
  | "bechamel" -> bechamel_suite ()
  | "smoke" -> smoke cfg
  | other ->
    Printf.eprintf "unknown experiment %S; known: %s\n" other
      (String.concat ", " ("all" :: known_experiments));
    exit 2

let main experiments scale threads full smoke_only json record chaos_spec
    workload serve_metrics serve_interval =
  (match workload with
  | "all" | "btree" | "datalog" -> ()
  | w ->
    Printf.eprintf "--smoke-workload: unknown workload %S (btree|datalog|all)\n"
      w;
    exit 2);
  (* Shared observability surface; --serve-metrics must not force the
     telemetry counters on here — the smoke phases keep toggling telemetry
     themselves (the overhead phase measures the disabled cost), and a
     window sampled across a reset simply clamps to empty. *)
  let server =
    Obs_cli.setup ~telemetry_on_serve:false ~chaos:chaos_spec ~flight:false
      ~serve_metrics ~serve_interval ()
  in
  Fun.protect ~finally:(fun () -> Obs_cli.teardown server) @@ fun () ->
  let max_threads =
    match threads with
    | Some t -> max 1 t
    | None -> max 1 (Domain.recommended_domain_count ())
  in
  let cfg = { scale; max_threads; full; json; record; workload } in
  let experiments =
    (* --record implies the smoke experiment (it is what gets recorded) *)
    if smoke_only || record <> None then [ "smoke" ]
    else
      match experiments with
      | [] | [ "all" ] ->
        (* "all" is the paper reproduction; the CI smoke run is explicit *)
        List.filter (fun e -> e <> "smoke") known_experiments
      | l -> l
  in
  pf "repro bench: %d hardware thread(s) visible, running up to %d worker \
      domain(s); scale=%.2f\n"
    (Domain.recommended_domain_count ())
    max_threads scale;
  if Domain.recommended_domain_count () < max_threads then
    pf "note: thread counts beyond the visible cores oversubscribe the CPU — \
        parallel speedups cannot materialise in this container (see \
        EXPERIMENTS.md).\n";
  let t0 = Bench_util.wall () in
  (* Post-mortem: if a run dies while the flight recorder is live, drain
     the rings into a crash dump before propagating. *)
  (try List.iter (run_experiment cfg) experiments
   with e when Flight.enabled () ->
     let path =
       Obs_cli.crash_dump
         ~extra:[ ("binary", Telemetry.Json.String "bench") ]
         e
     in
     Printf.eprintf "flight recorder: wrote %s (inspect with flightrec)\n" path;
     raise e);
  if Chaos.active () then pf "%s\n" (Format.asprintf "%a" Chaos.pp_fired ());
  pf "\ntotal bench time: %.1fs\n" (Bench_util.wall () -. t0)

open Cmdliner

let experiments_arg =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"EXPERIMENT"
        ~doc:"Experiments to run (default: all).  See DESIGN.md for the index.")

let scale_arg =
  Arg.(
    value & opt float 1.0
    & info [ "scale" ] ~docv:"F" ~doc:"Multiply workload sizes by this factor.")

let threads_arg =
  Arg.(
    value & opt (some int) None
    & info [ "threads" ] ~docv:"N"
        ~doc:"Maximum worker domains (default: recommended domain count).")

let full_arg =
  Arg.(
    value & flag
    & info [ "full" ] ~doc:"Use the paper's full Fig. 3 sizes (1000^2..10000^2).")

let smoke_arg =
  Arg.(
    value & flag
    & info [ "smoke" ]
        ~doc:"Run only the telemetry smoke experiment and write metrics JSON \
              (the CI entry point).")

let json_arg =
  Arg.(
    value & opt string "bench_metrics.json"
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Where the smoke experiment writes machine-readable metrics.")

let record_arg =
  Arg.(
    value & opt (some string) None
    & info [ "record" ] ~docv:"NAME"
        ~doc:"Run the smoke experiment and record it: write \
              BENCH_<NAME>.json and append a summary line to \
              BENCH_history.jsonl (compare runs with tools/regress.sh).")

let workload_arg =
  Arg.(
    value & opt string "all"
    & info [ "smoke-workload" ] ~docv:"W"
        ~doc:"Smoke workload subset: $(b,btree) (insert overhead + batch \
              merge), $(b,datalog) (traced evaluation with the flight \
              recorder on), or $(b,all).  Recorded baselines \
              (BENCH_btree.json, BENCH_datalog.json) are per-workload.")

let cmd =
  let doc = "regenerate the paper's tables and figures" in
  Cmd.v
    (Cmd.info "bench" ~doc)
    Term.(
      const main $ experiments_arg $ scale_arg $ threads_arg $ full_arg
      $ smoke_arg $ json_arg $ record_arg $ Obs_cli.chaos_term $ workload_arg
      $ Obs_cli.serve_metrics_term $ Obs_cli.serve_interval_term)

let () = exit (Cmd.eval cmd)
