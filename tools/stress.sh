#!/bin/sh
# Chaos stress harness wrapper: randomized multi-domain schedules under
# active failpoints, full invariant audit after every run, per-run seeds
# printed for deterministic replay.  Runs cycle through six scenarios:
# optimistic tree, all-pessimistic tree, pool faults, tuple tree, the
# resident query server (client domains under connection drops and forced
# admission busy, audited against the exactly-acked fact set), and WAL
# durability (torn-tail appends under wal.write.short, then a kill -9 of a
# strict-durability server child whose restart must serve exactly the
# acked rows).
#
#   sh tools/stress.sh --seed 42 --domains 4 --runs 100
#   sh tools/stress.sh --seed 42 --domains 4 --replay 17   # rerun one seed
#   sh tools/stress.sh --crashdump-selftest                # post-mortem path
#
# --crashdump-selftest exercises the flight-recorder post-mortem path end
# to end: it induces an uncontained Pool_failure (stress --crash-demo),
# asserts that the crash dump file appears, and validates the dump by
# feeding it back through the flightrec inspector (which exits non-zero
# on malformed or non-dump JSON).
#
# See `dune exec bin/stress.exe -- --help` for the full option list.
set -eu

cd "$(dirname "$0")/.."

if [ "${1:-}" = "--crashdump-selftest" ]; then
  shift
  SEED="${1:-4242}"
  DUMP="crashdump-$SEED.json"
  rm -f "$DUMP"
  echo "crashdump-selftest: inducing Pool_failure (seed $SEED)"
  if dune exec bin/stress.exe -- --crash-demo --seed "$SEED" --domains 4; then
    echo "crashdump-selftest: FAIL — crash demo exited zero (no failure induced)" >&2
    exit 1
  fi
  if [ ! -s "$DUMP" ]; then
    echo "crashdump-selftest: FAIL — $DUMP missing or empty" >&2
    exit 1
  fi
  echo "crashdump-selftest: $DUMP written; validating with flightrec"
  if ! dune exec bin/flightrec.exe -- "$DUMP" --last 5 > /dev/null; then
    echo "crashdump-selftest: FAIL — flightrec rejected $DUMP" >&2
    exit 1
  fi
  rm -f "$DUMP"
  echo "crashdump-selftest: OK (dump produced, parsed, and inspected)"
  exit 0
fi

exec dune exec bin/stress.exe -- "$@"
