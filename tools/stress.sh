#!/bin/sh
# Chaos stress harness wrapper: randomized multi-domain schedules under
# active failpoints, full invariant audit after every run, per-run seeds
# printed for deterministic replay.
#
#   sh tools/stress.sh --seed 42 --domains 4 --runs 100
#   sh tools/stress.sh --seed 42 --domains 4 --replay 17   # rerun one seed
#
# See `dune exec bin/stress.exe -- --help` for the full option list.
set -eu

cd "$(dirname "$0")/.."
exec dune exec bin/stress.exe -- "$@"
