#!/bin/sh
# Compare the two most recent entries of a bench history trajectory
# (BENCH_history.jsonl, written by `bench --record NAME`) and warn when a
# headline metric regressed past a threshold.
#
#   sh tools/regress.sh [BENCH_history.jsonl]
#
# Entries are compared per workload: the latest entry is matched against
# the most recent earlier entry whose "workload" key (default "all") is the
# same, so an interleaved history like [all, btree, all] compares the two
# "all" runs instead of reporting a bogus cross-workload regression.
#
# When the history has no earlier entry for the latest entry's workload
# (fresh checkout, first CI run of that workload), the checked-in baselines
# stand in for the previous run — restricted to the snapshots that workload
# actually produced (btree -> BENCH_btree.json, datalog ->
# BENCH_datalog.json, all -> both): their nested metrics blocks are
# flattened into the same headline keys and the single local entry is
# compared against them.  Only metrics present on both sides are compared.
#
# Environment:
#   REGRESS_THRESHOLD_PCT  slowdown (in percent) past which a metric counts
#                          as a regression (default 25 — smoke runs are
#                          noisy, so the default is deliberately loose).
#   REGRESS_BASELINE_PCT   threshold against the checked-in baselines
#                          (default 150: they were recorded on different
#                          hardware, so only order-of-magnitude changes are
#                          meaningful).
#   REGRESS_STRICT         when 1, exit non-zero on regression; the default
#                          (0) only prints warnings so CI can use this as a
#                          soft gate.
#   REGRESS_WAL_OVERHEAD_MAX  ceiling on wal_append_overhead, the
#                          durability-batch vs durability-none WAL append
#                          ratio from the bench smoke (default 50: the
#                          ratio is fsync-bound, so it swings wildly across
#                          storage — the gate only catches a group-commit
#                          path gone quadratic, not a slow disk).
set -eu

cd "$(dirname "$0")/.."

HIST="${1:-BENCH_history.jsonl}"
THRESHOLD="${REGRESS_THRESHOLD_PCT:-25}"
BASELINE_THRESHOLD="${REGRESS_BASELINE_PCT:-150}"
STRICT="${REGRESS_STRICT:-0}"
WAL_OVERHEAD_MAX="${REGRESS_WAL_OVERHEAD_MAX:-50}"

if ! command -v python3 >/dev/null 2>&1; then
  echo "regress: python3 not available; skipping comparison"
  exit 0
fi

HIST="$HIST" THRESHOLD="$THRESHOLD" BASELINE_THRESHOLD="$BASELINE_THRESHOLD" \
STRICT="$STRICT" WAL_OVERHEAD_MAX="$WAL_OVERHEAD_MAX" python3 <<'EOF'
import json, os, sys

path = os.environ["HIST"]
threshold = float(os.environ["THRESHOLD"])
baseline_threshold = float(os.environ["BASELINE_THRESHOLD"])
strict = os.environ["STRICT"] == "1"
wal_overhead_max = float(os.environ["WAL_OVERHEAD_MAX"])

METRICS = ["eval_seconds", "insert_off_s", "insert_counters_s",
           "batch_single_s", "batch_merge_s", "wal_none_s", "wal_batch_s"]

entries = []
if os.path.exists(path):
    with open(path) as f:
        for line in f:
            line = line.strip()
            if line:
                entries.append(json.loads(line))


SNAPS_FOR_WORKLOAD = {
    "btree": ("BENCH_btree.json",),
    "datalog": ("BENCH_datalog.json",),
    "all": ("BENCH_btree.json", "BENCH_datalog.json"),
}


def flat_baseline(workload):
    """Flatten the committed BENCH_<workload>.json snapshots into the
    headline-metric keys a history entry carries, restricted to the
    snapshots the given workload produces."""
    flat = {}
    for snap_path in SNAPS_FOR_WORKLOAD.get(workload, ()):
        if not os.path.exists(snap_path):
            continue
        with open(snap_path) as f:
            m = json.load(f).get("metrics", {})
        overhead = m.get("overhead", {})
        batch = m.get("batch", {})
        wal = m.get("wal", {})
        ev = m.get("eval", {})
        for key, val in (("insert_off_s", overhead.get("insert_off_s")),
                         ("insert_counters_s",
                          overhead.get("insert_counters_s")),
                         ("batch_single_s", batch.get("single_insert_s")),
                         ("batch_merge_s", batch.get("batch_merge_s")),
                         ("wal_none_s", wal.get("append_none_s")),
                         ("wal_batch_s", wal.get("append_batch_s")),
                         ("eval_seconds", ev.get("seconds"))):
            if isinstance(val, (int, float)):
                flat[key] = val
    return flat


def workload_of(entry):
    return entry.get("workload", "all")


last = entries[-1] if entries else None
prev = None
if last is not None:
    wl = workload_of(last)
    for cand in reversed(entries[:-1]):
        if workload_of(cand) == wl:
            prev = cand
            break

if prev is not None:
    limit = threshold
    skipped = len(entries) - 2 - entries[:-1].index(prev) \
        if prev in entries[:-1] else 0
    note = (f", skipping {skipped} other-workload entr"
            f"{'y' if skipped == 1 else 'ies'}") if skipped else ""
    print(f"regress: comparing {last.get('name')!r} against previous "
          f"{workload_of(last)!r} run ({len(entries)} entries in "
          f"{path}{note})")
else:
    if last is None:
        baseline = flat_baseline("all")
        if baseline:
            print(f"regress: no local history at {path}; checked-in "
                  f"baselines carry {len(baseline)} metric(s) "
                  f"(run: bench --record NAME)")
        else:
            print("regress: no local history and no checked-in baselines; "
                  "nothing to compare")
        sys.exit(0)
    baseline = flat_baseline(workload_of(last))
    if not baseline:
        print(f"regress: no earlier {workload_of(last)!r} entry and no "
              f"checked-in baseline for it; nothing to compare")
        sys.exit(0)
    prev = baseline
    limit = baseline_threshold
    print(f"regress: comparing {last.get('name')!r} against checked-in "
          f"{workload_of(last)!r} baselines (threshold {limit:.0f}% — "
          f"cross-hardware)")

regressed = []
for m in METRICS:
    a, b = prev.get(m), last.get(m)
    if not isinstance(a, (int, float)) or not isinstance(b, (int, float)):
        continue
    if a <= 0:
        continue
    pct = (b - a) / a * 100.0
    word = "slower" if pct >= 0 else "faster"
    print(f"regress:   {m}: {a:.6f} -> {b:.6f} ({abs(pct):+.1f}% {word})")
    if pct > limit:
        regressed.append((m, pct))

speedup = last.get("batch_speedup")
if isinstance(speedup, (int, float)):
    print(f"regress:   batch_speedup: {speedup:.2f}x "
          f"(batch merge vs per-tuple inserts)")
    if speedup < 1.0:
        regressed.append(("batch_speedup", (1.0 - speedup) * 100.0))

# Durability tax: WAL appends under batch (group-commit fsync per flip)
# vs none (never fsync).  The ratio is fsync-bound and therefore
# storage-dependent, so the ceiling is loose — it exists to catch the
# group-commit path degrading to fsync-per-record (or worse), which would
# multiply the ratio by the flip batch size.
wal_overhead = last.get("wal_append_overhead")
if isinstance(wal_overhead, (int, float)):
    print(f"regress:   wal_append_overhead: {wal_overhead:.2f}x "
          f"(durability batch vs none, max {wal_overhead_max:.0f}x)")
    if wal_overhead > wal_overhead_max:
        regressed.append(("wal_append_overhead",
                          (wal_overhead - wal_overhead_max) * 100.0))

# Hard correctness gate, not a perf threshold: a healthy optimistic descent
# never exhausts its retry budget, so any pessimistic fallback in a
# non-chaos run means pathological contention or a livelock that the
# fallback papered over.  Runs recorded under --chaos are exempt (their
# fallbacks are the injected faults doing their job).
fallbacks = last.get("pessimistic_fallbacks")
if isinstance(fallbacks, int) and not last.get("chaos", False):
    if fallbacks > 0:
        print(f"regress: FAIL pessimistic_fallbacks={fallbacks} in a "
              f"non-chaos run (must be 0)")
        sys.exit(1)
    print("regress:   pessimistic_fallbacks: 0 (gate ok)")

if regressed:
    for m, pct in regressed:
        print(f"regress: WARNING {m} regressed {pct:.1f}% "
              f"(threshold {limit:.0f}%)")
    sys.exit(1 if strict else 0)
print("regress: OK (no metric past threshold)")
EOF
