#!/bin/sh
# Compare the two most recent entries of a bench history trajectory
# (BENCH_history.jsonl, written by `bench --record NAME`) and warn when a
# headline metric regressed past a threshold.
#
#   sh tools/regress.sh [BENCH_history.jsonl]
#
# Environment:
#   REGRESS_THRESHOLD_PCT  slowdown (in percent) past which a metric counts
#                          as a regression (default 25 — smoke runs are
#                          noisy, so the default is deliberately loose).
#   REGRESS_STRICT         when 1, exit non-zero on regression; the default
#                          (0) only prints warnings so CI can use this as a
#                          soft gate.
set -eu

HIST="${1:-BENCH_history.jsonl}"
THRESHOLD="${REGRESS_THRESHOLD_PCT:-25}"
STRICT="${REGRESS_STRICT:-0}"

if [ ! -s "$HIST" ]; then
  echo "regress: no history at $HIST (run: bench --record NAME); skipping"
  exit 0
fi

if ! command -v python3 >/dev/null 2>&1; then
  echo "regress: python3 not available; skipping comparison"
  exit 0
fi

HIST="$HIST" THRESHOLD="$THRESHOLD" STRICT="$STRICT" python3 <<'EOF'
import json, os, sys

path = os.environ["HIST"]
threshold = float(os.environ["THRESHOLD"])
strict = os.environ["STRICT"] == "1"

entries = []
with open(path) as f:
    for line in f:
        line = line.strip()
        if line:
            entries.append(json.loads(line))

if len(entries) < 2:
    print(f"regress: only {len(entries)} entry in {path}; need 2 to compare")
    sys.exit(0)

prev, last = entries[-2], entries[-1]
print(f"regress: comparing {last.get('name')!r} against previous run "
      f"({len(entries)} entries in {path})")

METRICS = ["eval_seconds", "insert_off_s", "insert_counters_s",
           "batch_single_s", "batch_merge_s"]
regressed = []
for m in METRICS:
    a, b = prev.get(m), last.get(m)
    if not isinstance(a, (int, float)) or not isinstance(b, (int, float)):
        continue
    if a <= 0:
        continue
    pct = (b - a) / a * 100.0
    word = "slower" if pct >= 0 else "faster"
    print(f"regress:   {m}: {a:.6f} -> {b:.6f} ({abs(pct):+.1f}% {word})")
    if pct > threshold:
        regressed.append((m, pct))

speedup = last.get("batch_speedup")
if isinstance(speedup, (int, float)):
    print(f"regress:   batch_speedup: {speedup:.2f}x "
          f"(batch merge vs per-tuple inserts)")
    if speedup < 1.0:
        regressed.append(("batch_speedup", (1.0 - speedup) * 100.0))

# Hard correctness gate, not a perf threshold: a healthy optimistic descent
# never exhausts its retry budget, so any pessimistic fallback in a
# non-chaos run means pathological contention or a livelock that the
# fallback papered over.  Runs recorded under --chaos are exempt (their
# fallbacks are the injected faults doing their job).
fallbacks = last.get("pessimistic_fallbacks")
if isinstance(fallbacks, int) and not last.get("chaos", False):
    if fallbacks > 0:
        print(f"regress: FAIL pessimistic_fallbacks={fallbacks} in a "
              f"non-chaos run (must be 0)")
        sys.exit(1)
    print("regress:   pessimistic_fallbacks: 0 (gate ok)")

if regressed:
    for m, pct in regressed:
        print(f"regress: WARNING {m} regressed {pct:.1f}% "
              f"(threshold {threshold:.0f}%)")
    sys.exit(1 if strict else 0)
print("regress: OK (no metric past threshold)")
EOF
