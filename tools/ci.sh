#!/bin/sh
# CI entry point: build, run the test suites, then the telemetry smoke
# benchmark, which writes machine-readable metrics and validates its own
# JSON output (trace parse-back + metrics parse-back) — any malformed
# artifact makes it exit nonzero.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== concurrency-discipline lint (lib/ + bin/) =="
# Static analysis over the repo's own sources (lib/lint): R1-R4
# (atomic confinement, lease discipline, no-blocking-under-write-permit,
# hygiene) plus the interprocedural v2 rules R5-R8 (fd discipline,
# wal-before-ack, select-loop purity, stale suppressions).  The alias
# runs `lint.exe --baseline LINT_BASELINE.json lib bin`: only findings
# NOT covered by the checked-in baseline fail (the ratchet — the
# baseline may only shrink; shrinkable entries are warned to stderr).
# Regenerate after fixing baselined findings with
#   dune exec bin/lint.exe -- --write-baseline LINT_BASELINE.json lib bin
dune build @lint

echo "== olock interleaving checker (exhaustive, deterministic) =="
# DFS over every schedule of 2-3-thread olock programs (lib/modelcheck):
# mutual exclusion, reader validation, upgrade atomicity, protocol
# violations — plus a seeded torn-CAS mutant that must be caught with a
# printed counterexample schedule.
dune exec test/test_modelcheck.exe

echo "== chaos stress smoke (fixed seed, deterministic) =="
# 100 seeded runs cycling optimistic / all-pessimistic / pool-fault /
# tuple-tree / query-server / wal-durability scenarios under active
# failpoints; every run ends in a full audit (check_invariants, the
# served-relation-equals-acked-set audit for the server scenario, or the
# torn-tail + kill -9 recovery differential for the wal scenario) and
# failing seeds replay deterministically.
sh tools/stress.sh --seed 42 --domains 4 --runs 100

echo "== flight-recorder crash-dump selftest =="
# Induce an uncontained Pool_failure under chaos, assert the per-domain
# rings drain into a crash dump, and validate the dump by round-tripping
# it through the flightrec inspector.
sh tools/stress.sh --crashdump-selftest

echo "== bench smoke (telemetry + metrics JSON) =="
METRICS="${METRICS_JSON:-bench_metrics.json}"
dune exec bench/main.exe -- --smoke --record smoke --json "$METRICS"

echo "== bench smoke, second point (batch write path, record ci) =="
# A second recorded run gives the trajectory >= 2 points, so the regression
# gate below has something to compare (and the batch-vs-single comparison is
# re-measured rather than trusted from a single sample).
dune exec bench/main.exe -- --smoke --record ci --json "$METRICS"

# Independent sanity check on the artifact: non-empty and parseable by a
# second implementation when one is around (python3 is optional).
test -s "$METRICS" || { echo "ci: $METRICS is missing or empty" >&2; exit 1; }
if command -v python3 >/dev/null 2>&1; then
  python3 - "$METRICS" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    d = json.load(f)
for key in ("schema_version", "overhead", "batch", "counters", "trace",
            "histograms", "tree_shape"):
    if key not in d:
        raise SystemExit(f"ci: metrics JSON missing {key!r}")
batch = d["batch"]
for key in ("domains", "single_insert_s", "batch_merge_s", "batch_speedup"):
    if key not in batch:
        raise SystemExit(f"ci: batch block missing {key!r}")
if batch["domains"] < 4:
    raise SystemExit("ci: batch bench ran on fewer than 4 domains")
if d["schema_version"] < 2:
    raise SystemExit(f"ci: expected schema_version >= 2, got {d['schema_version']}")
hists = d["histograms"]
if not hists:
    raise SystemExit("ci: metrics JSON has no histograms")
name, h = next(iter(hists.items()))
for key in ("count", "p50_ns", "p99_ns", "max_ns", "buckets"):
    if key not in h:
        raise SystemExit(f"ci: histogram {name!r} missing {key!r}")
shapes = d["tree_shape"]
if not shapes:
    raise SystemExit("ci: metrics JSON has no tree_shape entries")
rel, sh = next(iter(shapes.items()))
for key in ("height", "fill"):
    if key not in sh:
        raise SystemExit(f"ci: tree_shape {rel!r} missing {key!r}")
print("ci: metrics JSON ok (v%d):" % d["schema_version"], sys.argv[1])
PY
fi

echo "== telemetry endpoint selftest (bench --serve-metrics) =="
# Start the smoke bench with the live telemetry server on a Unix socket,
# scrape every endpoint while the run is hot, validate the payloads, and
# assert the server shuts down cleanly (socket unlinked, bench exit 0).
if command -v python3 >/dev/null 2>&1; then
  SOCK="$(mktemp -u /tmp/repro_telemetry_XXXXXX.sock)"
  SELFTEST_JSON="$(mktemp /tmp/repro_telemetry_XXXXXX.json)"
  dune exec bench/main.exe -- --smoke --smoke-workload btree \
    --json "$SELFTEST_JSON" --serve-metrics "unix:$SOCK" \
    --serve-interval 100 &
  BENCH_PID=$!
  if SOCK="$SOCK" python3 <<'PY'
import json, os, socket, sys, time

sock_path = os.environ["SOCK"]


def fetch(path):
    s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    s.settimeout(5.0)
    s.connect(sock_path)
    s.sendall(f"GET {path} HTTP/1.0\r\n\r\n".encode())
    buf = b""
    while chunk := s.recv(65536):
        buf += chunk
    s.close()
    head, _, body = buf.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, body.decode()


# wait for the monitor domain to bind the socket
for _ in range(100):
    if os.path.exists(sock_path):
        break
    time.sleep(0.05)
else:
    raise SystemExit("ci: telemetry socket never appeared")

# let at least one sampling window complete so /snapshot.json is non-empty
time.sleep(0.25)

status, metrics = fetch("/metrics")
if status != 200:
    raise SystemExit(f"ci: /metrics returned {status}")
samples = 0
for line in metrics.splitlines():
    if not line or line.startswith("#"):
        continue
    name_labels, _, value = line.rpartition(" ")
    if not name_labels:
        raise SystemExit(f"ci: malformed exposition line {line!r}")
    if value not in ("+Inf", "-Inf", "NaN"):
        float(value)  # raises on torn output
    samples += 1
if samples < 10:
    raise SystemExit(f"ci: only {samples} exposition samples")

for path, schema in (("/snapshot.json", "telemetry_window/1"),
                     ("/heat", "telemetry_heat/1"),
                     ("/health", None),
                     ("/trace", "telemetry_trace/1")):
    status, body = fetch(path)
    if path != "/health" and status != 200:
        raise SystemExit(f"ci: {path} returned {status}")
    if path == "/health" and status not in (200, 503):
        raise SystemExit(f"ci: /health returned {status}")
    doc = json.loads(body)
    if schema and doc.get("schema") != schema:
        raise SystemExit(f"ci: {path} schema {doc.get('schema')!r}")
if json.loads(fetch("/snapshot.json")[1])["window"]["seq"] < 1:
    raise SystemExit("ci: no completed window after warmup")
print(f"ci: telemetry endpoints ok ({samples} exposition samples)")
PY
  then :; else
    kill "$BENCH_PID" 2>/dev/null || true
    wait "$BENCH_PID" 2>/dev/null || true
    rm -f "$SOCK" "$SELFTEST_JSON"
    echo "ci: telemetry endpoint selftest failed" >&2
    exit 1
  fi
  wait "$BENCH_PID" || {
    rm -f "$SELFTEST_JSON"
    echo "ci: bench with --serve-metrics exited nonzero" >&2; exit 1; }
  rm -f "$SELFTEST_JSON"
  if [ -e "$SOCK" ]; then
    echo "ci: telemetry socket $SOCK not unlinked on clean shutdown" >&2
    exit 1
  fi
  echo "ci: telemetry server shut down cleanly"
else
  echo "ci: python3 not available; skipping telemetry endpoint selftest"
fi

echo "== query-server selftest (datalog_serve + datalog_cli --connect) =="
# Start the resident query server with live telemetry, drive it with the
# one-shot CLI in --connect mode (install program, batch-load facts, query
# every output relation), scrape /metrics while the server is resident,
# then compare the served results against a purely local evaluation of the
# same program — byte-identical output or nonzero exit.  Finish with a
# protocol SHUTDOWN and assert a clean exit and unlinked sockets.
SRV_SOCK="$(mktemp -u /tmp/repro_dlserve_XXXXXX.sock)"
SRV_MSOCK="$(mktemp -u /tmp/repro_dlserve_metrics_XXXXXX.sock)"
SRV_TMP="$(mktemp -d /tmp/repro_dlserve_XXXXXX)"
mkdir -p "$SRV_TMP/facts" "$SRV_TMP/served" "$SRV_TMP/local"
# a small DAG: one 12-node chain plus cross edges
i=0
while [ "$i" -lt 12 ]; do
  printf '%d\t%d\n' "$i" "$((i + 1))"
  i=$((i + 1))
done > "$SRV_TMP/facts/edge.facts"
printf '0\t5\n3\t9\n' >> "$SRV_TMP/facts/edge.facts"
dune exec bin/datalog_serve.exe -- --listen "unix:$SRV_SOCK" -j 2 \
  --flip-pending 64 --flip-interval 5 \
  --serve-metrics "unix:$SRV_MSOCK" --serve-interval 100 &
SRV_PID=$!
i=0
while [ ! -S "$SRV_SOCK" ] && [ "$i" -lt 100 ]; do i=$((i + 1)); sleep 0.05; done
if [ ! -S "$SRV_SOCK" ]; then
  echo "ci: datalog_serve socket never appeared" >&2
  kill "$SRV_PID" 2>/dev/null || true
  exit 1
fi
if ! dune exec bin/datalog_cli.exe -- --connect "unix:$SRV_SOCK" \
    -F "$SRV_TMP/facts" -D "$SRV_TMP/served" examples/programs/distances.dl
then
  echo "ci: datalog_cli --connect run failed" >&2
  kill "$SRV_PID" 2>/dev/null || true
  exit 1
fi
# scrape the server's live telemetry while it is resident (python3 optional)
if command -v python3 >/dev/null 2>&1; then
  SOCK="$SRV_MSOCK" python3 <<'PY'
import os, socket

s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
s.settimeout(5.0)
s.connect(os.environ["SOCK"])
s.sendall(b"GET /metrics HTTP/1.0\r\n\r\n")
buf = b""
while chunk := s.recv(65536):
    buf += chunk
s.close()
head, _, body = buf.partition(b"\r\n\r\n")
if int(head.split(b" ", 2)[1]) != 200:
    raise SystemExit("ci: server /metrics not 200")
samples = [l for l in body.decode().splitlines() if l and not l.startswith("#")]
if len(samples) < 5:
    raise SystemExit(f"ci: only {len(samples)} server exposition samples")
print(f"ci: server /metrics ok ({len(samples)} exposition samples)")
PY
else
  echo "ci: python3 not available; skipping server /metrics scrape"
fi
# differential: same program + facts evaluated locally must match exactly
dune exec bin/datalog_cli.exe -- -j 2 -F "$SRV_TMP/facts" \
  -D "$SRV_TMP/local" examples/programs/distances.dl
for f in "$SRV_TMP/local"/*.csv; do
  rel="$(basename "$f")"
  sort "$f" > "$SRV_TMP/local.sorted"
  sort "$SRV_TMP/served/$rel" > "$SRV_TMP/served.sorted"
  if ! cmp -s "$SRV_TMP/local.sorted" "$SRV_TMP/served.sorted"; then
    echo "ci: served $rel differs from local evaluation" >&2
    kill "$SRV_PID" 2>/dev/null || true
    exit 1
  fi
done
echo "ci: served results match local evaluation"
dune exec bin/datalog_cli.exe -- --connect "unix:$SRV_SOCK" --shutdown
if ! wait "$SRV_PID"; then
  echo "ci: datalog_serve exited nonzero after SHUTDOWN" >&2
  exit 1
fi
for s in "$SRV_SOCK" "$SRV_MSOCK"; do
  if [ -e "$s" ]; then
    echo "ci: server socket $s not unlinked on clean shutdown" >&2
    exit 1
  fi
done
rm -rf "$SRV_TMP"
echo "ci: query server shut down cleanly"

echo "== durability kill-recover selftest (WAL crash recovery) =="
# Start a durable server (--data-dir, --durability strict), ingest two
# fact batches through datalog_cli --connect, kill -9 the server between
# acked sessions, restart it on the same data dir, and require the
# recovered query results to be byte-identical to a purely local
# evaluation of the acked facts.  Strict durability means an acked LOAD
# was fsynced before its OK, so the kill point cannot lose it.
WAL_SOCK="$(mktemp -u /tmp/repro_dlwal_XXXXXX.sock)"
WAL_TMP="$(mktemp -d /tmp/repro_dlwal_XXXXXX)"
mkdir -p "$WAL_TMP/facts_a" "$WAL_TMP/facts_b" "$WAL_TMP/acked" \
  "$WAL_TMP/served" "$WAL_TMP/local" "$WAL_TMP/data"
i=0
while [ "$i" -lt 6 ]; do
  printf '%d\t%d\n' "$i" "$((i + 1))"
  i=$((i + 1))
done > "$WAL_TMP/facts_a/edge.facts"
while [ "$i" -lt 12 ]; do
  printf '%d\t%d\n' "$i" "$((i + 1))"
  i=$((i + 1))
done > "$WAL_TMP/facts_b/edge.facts"
printf '0\t5\n3\t9\n' >> "$WAL_TMP/facts_b/edge.facts"
dune exec bin/datalog_serve.exe -- --listen "unix:$WAL_SOCK" -j 2 \
  --flip-pending 64 --flip-interval 5 \
  --data-dir "$WAL_TMP/data" --durability strict &
WAL_PID=$!
i=0
while [ ! -S "$WAL_SOCK" ] && [ "$i" -lt 100 ]; do i=$((i + 1)); sleep 0.05; done
if [ ! -S "$WAL_SOCK" ]; then
  echo "ci: durable datalog_serve socket never appeared" >&2
  kill "$WAL_PID" 2>/dev/null || true
  exit 1
fi
for batch in facts_a facts_b; do
  if ! dune exec bin/datalog_cli.exe -- --connect "unix:$WAL_SOCK" \
      -F "$WAL_TMP/$batch" examples/programs/distances.dl > /dev/null
  then
    echo "ci: durable ingest ($batch) failed" >&2
    kill "$WAL_PID" 2>/dev/null || true
    exit 1
  fi
done
# the crash: no drain, no flush beyond what strict acks already forced
kill -9 "$WAL_PID" 2>/dev/null || true
wait "$WAL_PID" 2>/dev/null || true
rm -f "$WAL_SOCK" # a SIGKILLed server cannot unlink its socket
dune exec bin/datalog_serve.exe -- --listen "unix:$WAL_SOCK" -j 2 \
  --data-dir "$WAL_TMP/data" --durability strict &
WAL_PID=$!
i=0
while [ ! -S "$WAL_SOCK" ] && [ "$i" -lt 100 ]; do i=$((i + 1)); sleep 0.05; done
if [ ! -S "$WAL_SOCK" ]; then
  echo "ci: recovered datalog_serve socket never appeared" >&2
  kill "$WAL_PID" 2>/dev/null || true
  exit 1
fi
if ! dune exec bin/datalog_cli.exe -- --connect "unix:$WAL_SOCK" \
    -D "$WAL_TMP/served" examples/programs/distances.dl
then
  echo "ci: query against recovered server failed" >&2
  kill "$WAL_PID" 2>/dev/null || true
  exit 1
fi
cat "$WAL_TMP/facts_a/edge.facts" "$WAL_TMP/facts_b/edge.facts" \
  > "$WAL_TMP/acked/edge.facts"
dune exec bin/datalog_cli.exe -- -j 2 -F "$WAL_TMP/acked" \
  -D "$WAL_TMP/local" examples/programs/distances.dl
for f in "$WAL_TMP/local"/*.csv; do
  rel="$(basename "$f")"
  sort "$f" > "$WAL_TMP/local.sorted"
  sort "$WAL_TMP/served/$rel" > "$WAL_TMP/served.sorted"
  if ! cmp -s "$WAL_TMP/local.sorted" "$WAL_TMP/served.sorted"; then
    echo "ci: recovered $rel differs from local evaluation of acked facts" >&2
    kill "$WAL_PID" 2>/dev/null || true
    exit 1
  fi
done
echo "ci: recovered results match local evaluation of acked facts"
dune exec bin/datalog_cli.exe -- --connect "unix:$WAL_SOCK" --shutdown
if ! wait "$WAL_PID"; then
  echo "ci: recovered datalog_serve exited nonzero after SHUTDOWN" >&2
  exit 1
fi
rm -rf "$WAL_TMP"
echo "ci: durability kill-recover ok"

echo "== bench regression check (soft gate) =="
sh tools/regress.sh BENCH_history.jsonl

echo "== ci passed =="
