(* Tests for the concurrent B-tree: sequential semantics against a model,
   qcheck properties, and multi-domain stress tests. *)

module T = Btree.Make (Key.Int)
module TP = Btree.Make (Key.Pair)
module ISet = Set.Make (Int)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_ilist = Alcotest.(check (list int))

let int_opt = Alcotest.(option int)

(* deterministic pseudo-random stream *)
let rng seed =
  let s = ref (Key.mix64 (seed + 1)) in
  fun bound ->
    s := Key.mix64 (!s + 0x2545F4914F6CDD1D);
    !s mod bound

let test_empty () =
  let t = T.create () in
  check_bool "is_empty" true (T.is_empty t);
  check_int "cardinal" 0 (T.cardinal t);
  check_bool "mem" false (T.mem t 42);
  Alcotest.check int_opt "min" None (T.min_elt t);
  Alcotest.check int_opt "max" None (T.max_elt t);
  Alcotest.check int_opt "lb" None (T.lower_bound t 0);
  check_ilist "to_list" [] (T.to_list t);
  T.check_invariants t

let test_singleton () =
  let t = T.create () in
  check_bool "first insert" true (T.insert t 7);
  check_bool "duplicate insert" false (T.insert t 7);
  check_bool "mem present" true (T.mem t 7);
  check_bool "mem absent" false (T.mem t 8);
  check_int "cardinal" 1 (T.cardinal t);
  Alcotest.check int_opt "min" (Some 7) (T.min_elt t);
  Alcotest.check int_opt "max" (Some 7) (T.max_elt t);
  T.check_invariants t

let insert_all t l = List.iter (fun k -> ignore (T.insert t k : bool)) l

let test_ordered_bulk () =
  let t = T.create ~capacity:4 () in
  let n = 10_000 in
  for i = 0 to n - 1 do
    check_bool "fresh" true (T.insert t i)
  done;
  check_int "cardinal" n (T.cardinal t);
  check_ilist "sorted iteration" (List.init 20 Fun.id)
    (List.filteri (fun i _ -> i < 20) (T.to_list t));
  for i = 0 to n - 1 do
    if not (T.mem t i) then Alcotest.failf "lost key %d" i
  done;
  check_bool "beyond max" false (T.mem t n);
  T.check_invariants t

let test_random_bulk_vs_model () =
  let r = rng 42 in
  let t = T.create ~capacity:8 () in
  let model = ref ISet.empty in
  for _ = 1 to 20_000 do
    let k = r 5000 in
    let fresh = T.insert t k in
    check_bool "insert result matches model" (not (ISet.mem k !model)) fresh;
    model := ISet.add k !model
  done;
  check_ilist "contents match model" (ISet.elements !model) (T.to_list t);
  T.check_invariants t

let test_reverse_order () =
  let t = T.create ~capacity:5 () in
  for i = 1000 downto 1 do
    ignore (T.insert t i : bool)
  done;
  check_int "cardinal" 1000 (T.cardinal t);
  check_ilist "first elements" [ 1; 2; 3 ]
    (List.filteri (fun i _ -> i < 3) (T.to_list t));
  T.check_invariants t

let test_bounds_vs_model () =
  let r = rng 7 in
  let t = T.create ~capacity:6 () in
  let model = ref ISet.empty in
  for _ = 1 to 3000 do
    let k = r 1000 * 2 in
    (* even keys only *)
    ignore (T.insert t k : bool);
    model := ISet.add k !model
  done;
  let model_lb k = ISet.find_first_opt (fun x -> x >= k) !model in
  let model_ub k = ISet.find_first_opt (fun x -> x > k) !model in
  for probe = -5 to 2005 do
    Alcotest.check int_opt
      (Printf.sprintf "lower_bound %d" probe)
      (model_lb probe) (T.lower_bound t probe);
    Alcotest.check int_opt
      (Printf.sprintf "upper_bound %d" probe)
      (model_ub probe) (T.upper_bound t probe)
  done

let test_iter_from () =
  let t = T.create ~capacity:4 () in
  for i = 0 to 99 do
    ignore (T.insert t (i * 3) : bool)
  done;
  (* all elements >= 50 until >= 100 *)
  let seen = ref [] in
  T.iter_from
    (fun k ->
      if k < 100 then begin
        seen := k :: !seen;
        true
      end
      else false)
    t 50;
  let expect =
    List.filter (fun k -> k >= 50 && k < 100) (List.init 100 (fun i -> i * 3))
  in
  check_ilist "range scan" expect (List.rev !seen);
  (* scan starting past the maximum *)
  let hits = ref 0 in
  T.iter_from
    (fun _ ->
      incr hits;
      true)
    t 1000;
  check_int "empty suffix scan" 0 !hits

let test_iter_while () =
  let t = T.create () in
  insert_all t (List.init 100 Fun.id);
  let count = ref 0 in
  T.iter_while
    (fun _ ->
      incr count;
      !count < 10)
    t;
  check_int "stopped after 10" 10 !count

let test_hints_correctness_ordered () =
  let t = T.create ~capacity:8 () in
  let h = T.session t in
  let n = 20_000 in
  for i = 0 to n - 1 do
    ignore (T.s_insert h i : bool)
  done;
  check_int "cardinal with hints" n (T.cardinal t);
  T.check_invariants t;
  let s = T.hint_stats (T.s_hints h) in
  check_bool "ordered insert exploits hints" true
    (s.T.insert_hits > n / 2);
  (* hinted membership over ordered probes *)
  for i = 0 to n - 1 do
    if not (T.s_mem h i) then Alcotest.failf "hinted mem lost %d" i
  done;
  let s = T.hint_stats (T.s_hints h) in
  check_bool "ordered find exploits hints" true (s.T.find_hits > n / 2)

let test_hints_correctness_random () =
  let r = rng 99 in
  let t = T.create ~capacity:8 () in
  let h = T.session t in
  let model = ref ISet.empty in
  for _ = 1 to 10_000 do
    let k = r 100_000 in
    let fresh = T.s_insert h k in
    check_bool "hinted insert matches model" (not (ISet.mem k !model)) fresh;
    model := ISet.add k !model
  done;
  check_ilist "hinted random contents" (ISet.elements !model) (T.to_list t);
  (* hinted bound queries against model *)
  let model_lb k = ISet.find_first_opt (fun x -> x >= k) !model in
  let model_ub k = ISet.find_first_opt (fun x -> x > k) !model in
  for _ = 1 to 2000 do
    let probe = r 100_000 in
    Alcotest.check int_opt "hinted lb" (model_lb probe)
      (T.s_lower_bound h probe);
    Alcotest.check int_opt "hinted ub" (model_ub probe)
      (T.s_upper_bound h probe)
  done;
  T.check_invariants t

let test_hint_stats_reset () =
  let t = T.create () in
  let h = T.session t in
  for i = 0 to 100 do
    ignore (T.s_insert h i : bool)
  done;
  T.reset_hint_stats (T.s_hints h);
  let s = T.hint_stats (T.s_hints h) in
  check_int "hits cleared" 0 s.T.insert_hits;
  check_int "misses cleared" 0 s.T.insert_misses;
  check_bool "rate on empty stats" true (T.hit_rate s = 0.0)

let test_hint_stats_merge () =
  (* merging no stats is the neutral element *)
  let z = T.merge_hint_stats [] in
  check_int "empty merge: insert hits" 0 z.T.insert_hits;
  check_int "empty merge: find misses" 0 z.T.find_misses;
  check_bool "empty merge rate is 0, not nan" true (T.hit_rate z = 0.0);
  check_bool "rate of all-zero stats is finite" true
    (Float.is_finite (T.hit_rate z));
  (* merging a singleton is the identity *)
  let t = T.create ~capacity:8 () in
  let h = T.session t in
  for i = 0 to 999 do
    ignore (T.s_insert h i : bool)
  done;
  let s = T.hint_stats (T.s_hints h) in
  let m = T.merge_hint_stats [ s ] in
  check_int "singleton merge: insert hits" s.T.insert_hits m.T.insert_hits;
  check_int "singleton merge: insert misses" s.T.insert_misses m.T.insert_misses;
  check_bool "singleton merge preserves rate" true
    (T.hit_rate s = T.hit_rate m)

let test_hint_stats_multi_domain () =
  (* Each domain inserts a disjoint block through its own hints; the merged
     stats must account for every hinted insert exactly once. *)
  let t = T.create ~capacity:8 () in
  let domains = 4 and per_domain = 5_000 in
  let worker d () =
    let h = T.session t in
    let lo = d * per_domain in
    for i = lo to lo + per_domain - 1 do
      ignore (T.s_insert h i : bool)
    done;
    T.hint_stats (T.s_hints h)
  in
  let spawned =
    List.init (domains - 1) (fun d -> Domain.spawn (worker (d + 1)))
  in
  let stats0 = worker 0 () in
  let stats = stats0 :: List.map Domain.join spawned in
  let m = T.merge_hint_stats stats in
  check_int "every hinted insert is a hit or a miss"
    (domains * per_domain)
    (m.T.insert_hits + m.T.insert_misses);
  check_int "tree holds the union" (domains * per_domain) (T.cardinal t);
  let sum f = List.fold_left (fun acc s -> acc + f s) 0 stats in
  check_int "merge sums hits" (sum (fun s -> s.T.insert_hits)) m.T.insert_hits;
  check_int "merge sums misses"
    (sum (fun s -> s.T.insert_misses))
    m.T.insert_misses;
  let r = T.hit_rate m in
  check_bool "aggregate rate in [0,1]" true (r >= 0.0 && r <= 1.0);
  T.check_invariants t

let test_insert_all_merge () =
  let a = T.create ~capacity:5 () in
  let b = T.create ~capacity:5 () in
  insert_all a (List.init 500 (fun i -> i * 2));
  insert_all b (List.init 500 (fun i -> (i * 2) + 1));
  T.insert_all a b;
  check_int "merged cardinal" 1000 (T.cardinal a);
  check_ilist "merged prefix" [ 0; 1; 2; 3; 4 ]
    (List.filteri (fun i _ -> i < 5) (T.to_list a));
  T.check_invariants a;
  (* overlapping merge is idempotent on duplicates *)
  T.insert_all a b;
  check_int "idempotent merge" 1000 (T.cardinal a)

let test_binary_search_variant () =
  let r = rng 5 in
  let lin = T.create ~capacity:32 () in
  let bin = T.create ~capacity:32 ~binary_search:true () in
  for _ = 1 to 20_000 do
    let k = r 50_000 in
    let a = T.insert lin k in
    let b = T.insert bin k in
    check_bool "variants agree on insert" a b
  done;
  check_ilist "variants agree on contents" (T.to_list lin) (T.to_list bin);
  T.check_invariants bin

let test_pair_keys () =
  let t = TP.create ~capacity:4 () in
  let n = 50 in
  for x = 0 to n - 1 do
    for y = 0 to n - 1 do
      ignore (TP.insert t (x, y) : bool)
    done
  done;
  check_int "grid cardinal" (n * n) (TP.cardinal t);
  check_bool "mem (3,4)" true (TP.mem t (3, 4));
  check_bool "mem (n,0)" false (TP.mem t (n, 0));
  (* lexicographic range scan: all pairs with first component 7 *)
  let row = ref [] in
  TP.iter_from
    (fun (x, y) ->
      if x = 7 then begin
        row := y :: !row;
        true
      end
      else false)
    t (7, 0);
  check_ilist "prefix scan row 7" (List.init n Fun.id) (List.rev !row);
  TP.check_invariants t

let test_of_sorted_array () =
  List.iter
    (fun n ->
      let arr = Array.init n (fun i -> i * 3) in
      let t = T.of_sorted_array ~capacity:6 arr in
      check_int (Printf.sprintf "bulk cardinal %d" n) n (T.cardinal t);
      T.check_invariants t;
      if n > 0 then begin
        Alcotest.check int_opt "bulk min" (Some 0) (T.min_elt t);
        Alcotest.check int_opt "bulk max" (Some ((n - 1) * 3)) (T.max_elt t)
      end;
      (* the bulk tree must accept further inserts *)
      ignore (T.insert t 1 : bool);
      T.check_invariants t)
    [ 0; 1; 2; 5; 6; 7; 13; 50; 100; 1000; 4096 ]

let test_of_sorted_array_rejects_unsorted () =
  Alcotest.check_raises "unsorted rejected"
    (Invalid_argument "Btree.of_sorted_array: input not strictly increasing")
    (fun () -> ignore (T.of_sorted_array [| 1; 1 |] : T.t))

let test_to_sorted_array_roundtrip () =
  let r = rng 3 in
  let t = T.create () in
  for _ = 1 to 5000 do
    ignore (T.insert t (r 10_000) : bool)
  done;
  let arr = T.to_sorted_array t in
  let t2 = T.of_sorted_array arr in
  check_ilist "roundtrip" (T.to_list t) (T.to_list t2)

let test_stats () =
  let t = T.create ~capacity:4 () in
  insert_all t (List.init 1000 Fun.id);
  let s = T.stats t in
  check_int "stats elements" 1000 s.T.elements;
  check_bool "has inner nodes" true (s.T.height > 1);
  check_bool "fill in (0,1]" true (s.T.fill > 0.0 && s.T.fill <= 1.0);
  check_bool "leaves <= nodes" true (s.T.leaves <= s.T.nodes)

let test_capacity_three () =
  (* minimal capacity maximises split pressure *)
  let t = T.create ~capacity:3 () in
  let r = rng 11 in
  let model = ref ISet.empty in
  for _ = 1 to 5000 do
    let k = r 2000 in
    ignore (T.insert t k : bool);
    model := ISet.add k !model
  done;
  check_ilist "capacity 3 contents" (ISet.elements !model) (T.to_list t);
  T.check_invariants t

(* ---------------- explicit iterators & set predicates ---------------- *)

let test_iterator_full_walk () =
  let t = T.create ~capacity:4 () in
  let n = 500 in
  for i = 0 to n - 1 do
    ignore (T.insert t (i * 3) : bool)
  done;
  let it = T.Iterator.start t in
  let seen = ref [] in
  while not (T.Iterator.at_end it) do
    seen := T.Iterator.get it :: !seen;
    T.Iterator.advance it
  done;
  check_ilist "iterator = to_list" (T.to_list t) (List.rev !seen)

let test_iterator_empty () =
  let t = T.create () in
  let it = T.Iterator.start t in
  check_bool "empty at end" true (T.Iterator.at_end it);
  Alcotest.check_raises "get at end"
    (Invalid_argument "Btree.Iterator.get: at end") (fun () ->
      ignore (T.Iterator.get it : int))

let test_iterator_seek () =
  let t = T.create ~capacity:4 () in
  for i = 0 to 99 do
    ignore (T.insert t (i * 2) : bool)
  done;
  let it = T.Iterator.seek t 31 in
  check_int "seek lands on lower bound" 32 (T.Iterator.get it);
  let it = T.Iterator.seek t 32 in
  check_int "seek exact" 32 (T.Iterator.get it);
  let it = T.Iterator.seek t 199 in
  check_bool "seek past max" true (T.Iterator.at_end it);
  (* walk a range via seek + advance *)
  let it = T.Iterator.seek t 10 in
  let out = ref [] in
  for _ = 1 to 5 do
    out := T.Iterator.get it :: !out;
    T.Iterator.advance it
  done;
  check_ilist "range walk" [ 10; 12; 14; 16; 18 ] (List.rev !out)

let test_iterator_copy () =
  let t = T.create () in
  for i = 0 to 20 do
    ignore (T.insert t i : bool)
  done;
  let a = T.Iterator.seek t 5 in
  let b = T.Iterator.copy a in
  T.Iterator.advance a;
  check_int "copy unaffected" 5 (T.Iterator.get b);
  check_int "original advanced" 6 (T.Iterator.get a)

let prop_iterator_matches_to_list =
  QCheck.Test.make ~count:200 ~name:"iterator walk = to_list"
    QCheck.(list (int_bound 400))
    (fun keys ->
      let t = T.create ~capacity:4 () in
      List.iter (fun k -> ignore (T.insert t k : bool)) keys;
      let it = T.Iterator.start t in
      let seen = ref [] in
      while not (T.Iterator.at_end it) do
        seen := T.Iterator.get it :: !seen;
        T.Iterator.advance it
      done;
      List.rev !seen = T.to_list t)

let prop_seek_is_lower_bound =
  QCheck.Test.make ~count:200 ~name:"seek = lower_bound"
    QCheck.(pair (list (int_bound 300)) (small_list (int_bound 320)))
    (fun (keys, probes) ->
      let t = T.create ~capacity:5 () in
      List.iter (fun k -> ignore (T.insert t k : bool)) keys;
      List.for_all
        (fun p ->
          let it = T.Iterator.seek t p in
          let via_it =
            if T.Iterator.at_end it then None else Some (T.Iterator.get it)
          in
          via_it = T.lower_bound t p)
        probes)

let test_set_predicates () =
  let mk l =
    let t = T.create ~capacity:4 () in
    List.iter (fun k -> ignore (T.insert t k : bool)) l;
    t
  in
  let a = mk [ 1; 2; 3 ] in
  let b = mk [ 3; 2; 1 ] in
  let c = mk [ 1; 2; 3; 4 ] in
  let d = mk [ 5; 6 ] in
  check_bool "equal" true (T.equal a b);
  check_bool "not equal" false (T.equal a c);
  check_bool "subset" true (T.subset a c);
  check_bool "not subset" false (T.subset c a);
  check_bool "disjoint" true (T.disjoint a d);
  check_bool "not disjoint" false (T.disjoint a c);
  check_bool "empty subset" true (T.subset (mk []) a);
  check_bool "empty equal" true (T.equal (mk []) (mk []))

(* ------------------------------------------------------------------ *)
(* qcheck properties                                                   *)
(* ------------------------------------------------------------------ *)

let prop_matches_model =
  QCheck.Test.make ~count:200 ~name:"tree = model set"
    QCheck.(list (int_bound 500))
    (fun keys ->
      let t = T.create ~capacity:4 () in
      let model = List.fold_left (fun s k -> ISet.add k s) ISet.empty keys in
      List.iter (fun k -> ignore (T.insert t k : bool)) keys;
      T.check_invariants t;
      T.to_list t = ISet.elements model)

let prop_mem_complete =
  QCheck.Test.make ~count:200 ~name:"mem sound and complete"
    QCheck.(pair (list (int_bound 200)) (list (int_bound 200)))
    (fun (ins, probes) ->
      let t = T.create ~capacity:4 () in
      let model = List.fold_left (fun s k -> ISet.add k s) ISet.empty ins in
      List.iter (fun k -> ignore (T.insert t k : bool)) ins;
      List.for_all (fun p -> T.mem t p = ISet.mem p model) (ins @ probes))

let prop_bounds_match_model =
  QCheck.Test.make ~count:200 ~name:"lower/upper bound = model"
    QCheck.(pair (list (int_bound 300)) (small_list (int_bound 320)))
    (fun (ins, probes) ->
      let t = T.create ~capacity:5 () in
      let model = List.fold_left (fun s k -> ISet.add k s) ISet.empty ins in
      List.iter (fun k -> ignore (T.insert t k : bool)) ins;
      List.for_all
        (fun p ->
          T.lower_bound t p = ISet.find_first_opt (fun x -> x >= p) model
          && T.upper_bound t p = ISet.find_first_opt (fun x -> x > p) model)
        probes)

let prop_bulk_build =
  QCheck.Test.make ~count:200 ~name:"of_sorted_array invariants + contents"
    QCheck.(list_of_size Gen.(0 -- 2000) (int_bound 1_000_000))
    (fun keys ->
      let uniq = ISet.elements (ISet.of_list keys) in
      let arr = Array.of_list uniq in
      let t = T.of_sorted_array ~capacity:7 arr in
      T.check_invariants t;
      T.to_list t = uniq)

let prop_hints_transparent =
  QCheck.Test.make ~count:100 ~name:"session = unhinted semantics"
    QCheck.(list (int_bound 100))
    (fun keys ->
      let a = T.create ~capacity:4 () in
      let b = T.create ~capacity:4 () in
      let h = T.session b in
      let ra = List.map (fun k -> T.insert a k) keys in
      let rb = List.map (fun k -> T.s_insert h k) keys in
      ra = rb && T.to_list a = T.to_list b)

(* ------------------------------------------------------------------ *)
(* concurrency                                                         *)
(* ------------------------------------------------------------------ *)

let domains_for_stress () = min 8 (max 2 (Domain.recommended_domain_count ()))

(* disjoint ranges: checks no lost inserts and structural integrity *)
let test_concurrent_disjoint () =
  let t = T.create ~capacity:8 () in
  let d = domains_for_stress () in
  let per = 20_000 in
  let worker w () =
    let h = T.session t in
    for i = 0 to per - 1 do
      ignore (T.s_insert h ((w * per) + i) : bool)
    done
  in
  let ds = List.init d (fun w -> Domain.spawn (worker w)) in
  List.iter Domain.join ds;
  check_int "all inserted" (d * per) (T.cardinal t);
  T.check_invariants t;
  for w = 0 to d - 1 do
    for i = 0 to per - 1 do
      if not (T.mem t ((w * per) + i)) then
        Alcotest.failf "lost %d" ((w * per) + i)
    done
  done

(* fully overlapping: every domain inserts the same keys; exactly one insert
   per key must report "fresh" *)
let test_concurrent_overlapping () =
  let t = T.create ~capacity:8 () in
  let d = domains_for_stress () in
  let n = 20_000 in
  let fresh = Atomic.make 0 in
  let worker () =
    let h = T.session t in
    let mine = ref 0 in
    for i = 0 to n - 1 do
      if T.s_insert h i then incr mine
    done;
    ignore (Atomic.fetch_and_add fresh !mine)
  in
  let ds = List.init d (fun _ -> Domain.spawn worker) in
  List.iter Domain.join ds;
  check_int "cardinal = n" n (T.cardinal t);
  check_int "each key fresh exactly once" n (Atomic.get fresh);
  T.check_invariants t

(* interleaved random: union of per-domain random streams *)
let test_concurrent_random () =
  let t = T.create ~capacity:8 () in
  let d = domains_for_stress () in
  let per = 30_000 in
  let expected = Array.init d (fun w ->
      let r = rng (w + 1) in
      Array.init per (fun _ -> r 1_000_000))
  in
  let worker w () =
    let h = T.session t in
    Array.iter (fun k -> ignore (T.s_insert h k : bool)) expected.(w)
  in
  let ds = List.init d (fun w -> Domain.spawn (worker w)) in
  List.iter Domain.join ds;
  T.check_invariants t;
  let model =
    Array.fold_left
      (fun s a -> Array.fold_left (fun s k -> ISet.add k s) s a)
      ISet.empty expected
  in
  check_int "union cardinal" (ISet.cardinal model) (T.cardinal t);
  check_bool "contents = union" true (T.to_list t = ISet.elements model)

(* tiny capacity + many domains: maximal split contention *)
let test_concurrent_split_storm () =
  let t = T.create ~capacity:3 () in
  let d = domains_for_stress () in
  let per = 5_000 in
  let worker w () =
    let r = rng (1000 + w) in
    for _ = 0 to per - 1 do
      ignore (T.insert t (r 50_000) : bool)
    done
  in
  let ds = List.init d (fun w -> Domain.spawn (worker w)) in
  List.iter Domain.join ds;
  T.check_invariants t;
  (* sortedness + uniqueness is already checked; also sanity check order *)
  let last = ref min_int in
  T.iter
    (fun k ->
      if k <= !last then Alcotest.failf "order violation at %d" k;
      last := k)
    t

(* pool-driven parallel insert through Pool.parallel_for_ranges, like the
   benchmarks do *)
let test_concurrent_via_pool () =
  let n = 100_000 in
  let keys = Array.init n (fun i -> Key.mix64 i) in
  Pool.with_pool (domains_for_stress ()) (fun p ->
      let t = T.create () in
      Pool.parallel_for_ranges p 0 n (fun _w lo hi ->
          let h = T.session t in
          for i = lo to hi - 1 do
            ignore (T.s_insert h keys.(i) : bool)
          done);
      T.check_invariants t;
      let model = Array.fold_left (fun s k -> ISet.add k s) ISet.empty keys in
      check_int "pool insert cardinal" (ISet.cardinal model) (T.cardinal t))

(* ---------------- tree-shape analytics ---------------- *)

let test_shape_empty () =
  let sh = T.shape (T.create ()) in
  check_int "empty height" 0 sh.Tree_shape.height;
  check_int "empty nodes" 0 sh.Tree_shape.nodes;
  check_int "empty elements" 0 sh.Tree_shape.elements

let test_shape_matches_stats () =
  let t = T.create ~capacity:4 () in
  insert_all t (List.init 1000 Fun.id);
  T.check_invariants t;
  let st = T.stats t and sh = T.shape t in
  check_int "elements agree" st.T.elements sh.Tree_shape.elements;
  check_int "nodes agree" st.T.nodes sh.Tree_shape.nodes;
  check_int "leaves agree" st.T.leaves sh.Tree_shape.leaves;
  check_int "height agrees" st.T.height sh.Tree_shape.height;
  check_bool "fill agrees" true
    (Float.abs (st.T.fill -. sh.Tree_shape.fill) < 1e-9);
  check_int "capacity recorded" 4 sh.Tree_shape.capacity;
  check_int "one level array entry per level" sh.Tree_shape.height
    (Array.length sh.Tree_shape.level_nodes);
  check_int "single root" 1 sh.Tree_shape.level_nodes.(0);
  check_int "levels sum to nodes" sh.Tree_shape.nodes
    (Array.fold_left ( + ) 0 sh.Tree_shape.level_nodes);
  check_int "per-level keys sum to elements" sh.Tree_shape.elements
    (Array.fold_left ( + ) 0 sh.Tree_shape.level_keys);
  (* every leaf sits at the bottom level (uniform depth invariant) *)
  check_int "bottom level holds the leaves" sh.Tree_shape.leaves
    sh.Tree_shape.level_nodes.(sh.Tree_shape.height - 1);
  check_int "fill deciles sum to nodes" sh.Tree_shape.nodes
    (Array.fold_left ( + ) 0 sh.Tree_shape.fill_deciles)

let test_hint_run_hist () =
  let t = T.create () in
  let h = T.session t in
  for i = 0 to 9_999 do
    ignore (T.s_insert h i : bool)
  done;
  let runs = T.hint_run_hist (T.s_hints h) in
  check_int "log2 run buckets" 16 (Array.length runs);
  let s = T.hint_stats (T.s_hints h) in
  let misses = s.T.insert_misses + s.T.find_misses
               + s.T.lower_bound_misses + s.T.upper_bound_misses in
  let recorded = Array.fold_left ( + ) 0 runs in
  (* every miss closes a run; the still-open run adds at most one entry *)
  check_bool "one run recorded per miss (+ open run)" true
    (recorded = misses || recorded = misses + 1);
  (* a sorted insert stream produces long hit runs: some bucket >= 2^3 *)
  check_bool "long runs observed on sorted stream" true
    (Array.exists (fun c -> c > 0)
       (Array.sub runs 4 (Array.length runs - 4)));
  T.reset_hint_stats (T.s_hints h);
  check_bool "reset clears run histogram" true
    (Array.for_all (fun c -> c = 0) (T.hint_run_hist (T.s_hints h)))

(* ------------------------------------------------------------------ *)
(* batch inserts                                                       *)
(* ------------------------------------------------------------------ *)

let sorted_run keys = Array.of_list (ISet.elements (ISet.of_list keys))

let test_batch_basic () =
  let t = T.create ~capacity:4 () in
  let run = Array.init 1000 (fun i -> i * 2) in
  check_int "all fresh" 1000 (T.insert_batch t run);
  T.check_invariants t;
  check_int "cardinal" 1000 (T.cardinal t);
  check_int "replay inserts nothing" 0 (T.insert_batch t run);
  T.check_invariants t;
  check_int "cardinal unchanged" 1000 (T.cardinal t)

let test_batch_duplicates_in_run () =
  (* non-decreasing runs are legal; duplicates are skipped *)
  let t = T.create ~capacity:4 () in
  check_int "fresh" 3 (T.insert_batch t [| 1; 1; 2; 2; 2; 9 |]);
  T.check_invariants t;
  check_ilist "contents" [ 1; 2; 9 ] (T.to_list t)

let test_batch_rejects_unsorted () =
  let t = T.create () in
  Alcotest.check_raises "decreasing run"
    (Invalid_argument "Btree.insert_batch: run not sorted") (fun () ->
      ignore (T.insert_batch t [| 3; 1 |] : int));
  Alcotest.check_raises "bad range"
    (Invalid_argument "Btree.insert_batch: invalid range") (fun () ->
      ignore (T.insert_batch ~pos:1 ~len:3 t [| 1; 2; 3 |] : int))

let test_batch_into_populated () =
  (* batch into a tree that already holds every other key *)
  let r = rng 11 in
  let t = T.create ~capacity:5 () in
  let model = ref ISet.empty in
  for _ = 1 to 2_000 do
    let k = r 4000 in
    ignore (T.insert t k : bool);
    model := ISet.add k !model
  done;
  let run = Array.init 1500 (fun i -> (i * 3) + 1) in
  let expected_fresh =
    Array.fold_left
      (fun n k -> if ISet.mem k !model then n else n + 1)
      0 run
  in
  check_int "fresh count" expected_fresh (T.insert_batch t run);
  T.check_invariants t;
  Array.iter (fun k -> model := ISet.add k !model) run;
  check_ilist "contents match model" (ISet.elements !model) (T.to_list t)

let prop_batch_matches_serial =
  QCheck.Test.make ~count:200 ~name:"batch = one-by-one"
    QCheck.(list (int_bound 2000))
    (fun keys ->
      let run = sorted_run keys in
      let a = T.create ~capacity:4 () in
      Array.iter (fun k -> ignore (T.insert a k : bool)) run;
      let b = T.create ~capacity:4 () in
      let fresh = T.insert_batch b run in
      T.check_invariants b;
      fresh = Array.length run && T.equal a b)

let prop_batch_windows_match_whole =
  (* the run delivered in consecutive ~pos/~len windows = one batch *)
  QCheck.Test.make ~count:200 ~name:"windowed batches = whole batch"
    QCheck.(pair (list (int_bound 1500)) (int_range 1 64))
    (fun (keys, width) ->
      let run = sorted_run keys in
      let a = T.create ~capacity:4 () in
      ignore (T.insert_batch a run : int);
      let b = T.create ~capacity:4 () in
      let h = T.session b in
      let n = Array.length run in
      let pos = ref 0 in
      while !pos < n do
        let len = min width (n - !pos) in
        ignore (T.s_insert_batch ~pos:!pos ~len h run : int);
        T.check_invariants b;
        pos := !pos + len
      done;
      T.equal a b)

let prop_session_batch_matches =
  QCheck.Test.make ~count:100 ~name:"session batch/insert = plain"
    QCheck.(pair (list (int_bound 500)) (list (int_bound 500)))
    (fun (batched, singles) ->
      let run = sorted_run batched in
      let a = T.create ~capacity:4 () in
      ignore (T.insert_batch a run : int);
      List.iter (fun k -> ignore (T.insert a k : bool)) singles;
      let b = T.create ~capacity:4 () in
      let s = T.session b in
      ignore (T.s_insert_batch s run : int);
      List.iter (fun k -> ignore (T.s_insert s k : bool)) singles;
      T.check_invariants b;
      T.equal a b)

let test_concurrent_batch_partitions () =
  (* the parallel structural merge's access pattern: every domain
     batch-inserts one contiguous partition of a shared sorted run *)
  let t = T.create ~capacity:8 () in
  (* pre-seed so partitions touch a tree with real structure *)
  let n = 80_000 in
  for i = 0 to (n / 16) - 1 do
    ignore (T.insert t (i * 16) : bool)
  done;
  let seeded = T.cardinal t in
  let d = min 8 (max 2 (Domain.recommended_domain_count ())) in
  let run = Array.init n Fun.id in
  let fresh = Atomic.make 0 in
  let worker w () =
    let h = T.session t in
    let lo = w * n / d and hi = (w + 1) * n / d in
    let f = T.s_insert_batch ~pos:lo ~len:(hi - lo) h run in
    ignore (Atomic.fetch_and_add fresh f : int)
  in
  let ds = List.init d (fun w -> Domain.spawn (worker w)) in
  List.iter Domain.join ds;
  T.check_invariants t;
  check_int "cardinal" n (T.cardinal t);
  check_int "fresh total" (n - seeded) (Atomic.get fresh);
  for i = 0 to n - 1 do
    if not (T.mem t i) then Alcotest.failf "lost key %d" i
  done

let test_concurrent_batch_vs_single () =
  (* batches racing per-key inserts over overlapping keys: freshness must
     stay exact *)
  let t = T.create ~capacity:8 () in
  let n = 40_000 in
  let run = Array.init n Fun.id in
  let fresh = Atomic.make 0 in
  let batch_worker () =
    let h = T.session t in
    ignore (Atomic.fetch_and_add fresh (T.s_insert_batch h run) : int)
  in
  let single_worker () =
    let h = T.session t in
    let mine = ref 0 in
    for i = 0 to n - 1 do
      if T.s_insert h i then incr mine
    done;
    ignore (Atomic.fetch_and_add fresh !mine : int)
  in
  let d = min 8 (max 2 (Domain.recommended_domain_count ())) in
  let ds =
    List.init d (fun w ->
        Domain.spawn (if w land 1 = 0 then batch_worker else single_worker))
  in
  List.iter Domain.join ds;
  T.check_invariants t;
  check_int "cardinal" n (T.cardinal t);
  check_int "fresh total" n (Atomic.get fresh)

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "btree"
    [
      ( "basics",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "singleton" `Quick test_singleton;
          Alcotest.test_case "ordered bulk" `Quick test_ordered_bulk;
          Alcotest.test_case "random vs model" `Quick test_random_bulk_vs_model;
          Alcotest.test_case "reverse order" `Quick test_reverse_order;
          Alcotest.test_case "capacity 3" `Quick test_capacity_three;
          Alcotest.test_case "stats" `Quick test_stats;
        ] );
      ( "queries",
        [
          Alcotest.test_case "bounds vs model" `Quick test_bounds_vs_model;
          Alcotest.test_case "iter_from" `Quick test_iter_from;
          Alcotest.test_case "iter_while" `Quick test_iter_while;
          Alcotest.test_case "pair keys" `Quick test_pair_keys;
        ] );
      ( "hints",
        [
          Alcotest.test_case "ordered" `Quick test_hints_correctness_ordered;
          Alcotest.test_case "random" `Quick test_hints_correctness_random;
          Alcotest.test_case "stats reset" `Quick test_hint_stats_reset;
          Alcotest.test_case "stats merge" `Quick test_hint_stats_merge;
          Alcotest.test_case "stats multi-domain" `Quick
            test_hint_stats_multi_domain;
          Alcotest.test_case "run-length histogram" `Quick test_hint_run_hist;
        ] );
      ( "shape",
        [
          Alcotest.test_case "empty" `Quick test_shape_empty;
          Alcotest.test_case "matches stats" `Quick test_shape_matches_stats;
        ] );
      ( "bulk",
        [
          Alcotest.test_case "insert_all merge" `Quick test_insert_all_merge;
          Alcotest.test_case "of_sorted_array" `Quick test_of_sorted_array;
          Alcotest.test_case "rejects unsorted" `Quick
            test_of_sorted_array_rejects_unsorted;
          Alcotest.test_case "roundtrip" `Quick test_to_sorted_array_roundtrip;
          Alcotest.test_case "binary search variant" `Quick
            test_binary_search_variant;
        ] );
      ( "iterators",
        [
          Alcotest.test_case "full walk" `Quick test_iterator_full_walk;
          Alcotest.test_case "empty" `Quick test_iterator_empty;
          Alcotest.test_case "seek" `Quick test_iterator_seek;
          Alcotest.test_case "copy" `Quick test_iterator_copy;
          Alcotest.test_case "set predicates" `Quick test_set_predicates;
        ] );
      ( "batch",
        [
          Alcotest.test_case "basic" `Quick test_batch_basic;
          Alcotest.test_case "duplicates in run" `Quick
            test_batch_duplicates_in_run;
          Alcotest.test_case "rejects unsorted" `Quick
            test_batch_rejects_unsorted;
          Alcotest.test_case "into populated" `Quick test_batch_into_populated;
        ] );
      qsuite "properties"
        [
          prop_iterator_matches_to_list;
          prop_seek_is_lower_bound;
          prop_matches_model;
          prop_mem_complete;
          prop_bounds_match_model;
          prop_bulk_build;
          prop_hints_transparent;
          prop_batch_matches_serial;
          prop_batch_windows_match_whole;
          prop_session_batch_matches;
        ];
      ( "concurrency",
        [
          Alcotest.test_case "disjoint ranges" `Quick test_concurrent_disjoint;
          Alcotest.test_case "overlapping" `Quick test_concurrent_overlapping;
          Alcotest.test_case "random union" `Quick test_concurrent_random;
          Alcotest.test_case "split storm" `Quick test_concurrent_split_storm;
          Alcotest.test_case "via pool" `Quick test_concurrent_via_pool;
          Alcotest.test_case "batch partitions" `Quick
            test_concurrent_batch_partitions;
          Alcotest.test_case "batch vs single" `Quick
            test_concurrent_batch_vs_single;
        ] );
    ]
