(* Fixture tests for the concurrency-discipline linter (lib/lint): one
   firing and one conforming sample per rule R1-R8 (including an
   interprocedural R3 pair where the blocking call hides behind local
   helpers), plus attribute scoping, path-classification, JSON
   round-trip, and baseline-ratchet checks.  The fixtures under
   lint_fixtures/ are parsed, never compiled. *)

(* cwd is test/ under `dune runtest` but the workspace root under
   `dune exec test/test_lint.exe`. *)
let fx name =
  let local = Filename.concat "lint_fixtures" name in
  if Sys.file_exists local then local
  else Filename.concat (Filename.concat "test" "lint_fixtures") name

let count rule findings =
  List.length (List.filter (fun f -> f.Lint.rule = rule) findings)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let dump findings =
  List.iter (fun f -> print_endline ("  " ^ Lint.finding_to_string f)) findings

let check_fixture ?server ~name ~hot ~atomic_ok () =
  let findings = Lint.check_file ~hot ~atomic_ok ?server (fx name) in
  Printf.printf "%s: %d finding(s)\n" name (List.length findings);
  dump findings;
  Alcotest.(check int)
    (name ^ ": parses")
    0
    (count Lint.rule_parse_error findings);
  findings

(* --- R1 atomic confinement ---------------------------------------- *)

let test_r1_fires () =
  let fs = check_fixture ~name:"r1_violation.ml" ~hot:false ~atomic_ok:false () in
  (* the record type, Atomic.make, Atomic.incr, and the unjustified
     allow *)
  Alcotest.(check int) "atomic-confinement findings" 4
    (count Lint.rule_atomic_confinement fs);
  Alcotest.(check bool) "unjustified allow is called out" true
    (List.exists
       (fun f ->
         f.Lint.rule = Lint.rule_atomic_confinement
         && f.Lint.line = 10)
       fs)

let test_r1_clean () =
  let fs = check_fixture ~name:"r1_conforming.ml" ~hot:false ~atomic_ok:false () in
  Alcotest.(check int) "no findings" 0 (List.length fs)

(* R1 against the flight-recorder shapes: a shared-atomic ring fires,
   the domain-local DLS ring (the design lib/telemetry/flight.ml uses)
   is clean. *)

let test_recorder_fires () =
  let fs =
    check_fixture ~name:"recorder_violation.ml" ~hot:false ~atomic_ok:false ()
  in
  Alcotest.(check int) "shared-atomic recorder fires R1" 3
    (count Lint.rule_atomic_confinement fs)

let test_recorder_clean () =
  let fs =
    check_fixture ~name:"recorder_conforming.ml" ~hot:false ~atomic_ok:false ()
  in
  Alcotest.(check int) "domain-local recorder is clean" 0 (List.length fs)

(* R1 against the telemetry-monitor shapes: publishing a sampled window
   through a shared atomic-guarded snapshot fires; the domain-confined
   ring + mutex-published cold-path registry (the design
   lib/telemetry/telemetry_server.ml uses) is clean. *)

let test_monitor_fires () =
  let fs =
    check_fixture ~name:"monitor_violation.ml" ~hot:false ~atomic_ok:false ()
  in
  (* the snapshot type's Atomic.t field, Atomic.make, Atomic.incr in the
     sampler, Atomic.get in the scrape handler *)
  Alcotest.(check int) "shared-snapshot monitor fires R1" 4
    (count Lint.rule_atomic_confinement fs)

let test_monitor_clean () =
  let fs =
    check_fixture ~name:"monitor_conforming.ml" ~hot:false ~atomic_ok:false ()
  in
  Alcotest.(check int) "domain-confined monitor is clean" 0 (List.length fs)

(* --- R2 lease discipline ------------------------------------------ *)

let test_r2_fires () =
  let fs = check_fixture ~name:"r2_violation.ml" ~hot:false ~atomic_ok:true () in
  (* peek: escape + unvalidated; unvalidated_branch; dropped *)
  Alcotest.(check int) "lease-discipline findings" 4
    (count Lint.rule_lease_discipline fs);
  Alcotest.(check bool) "escape is reported" true
    (List.exists
       (fun f ->
         f.Lint.rule = Lint.rule_lease_discipline
         && String.length f.Lint.message >= 5
         && String.sub f.Lint.message 0 5 = "lease")
       fs)

let test_r2_clean () =
  let fs = check_fixture ~name:"r2_conforming.ml" ~hot:false ~atomic_ok:true () in
  Alcotest.(check int) "no findings" 0 (List.length fs)

(* --- R3 no blocking under a write permit -------------------------- *)

let test_r3_fires () =
  let fs = check_fixture ~name:"r3_violation.ml" ~hot:false ~atomic_ok:true () in
  (* Pool.run, print_endline, Olock.start_read, Unix.gettimeofday *)
  Alcotest.(check int) "no-blocking findings" 4
    (count Lint.rule_no_blocking fs)

let test_r3_clean () =
  let fs = check_fixture ~name:"r3_conforming.ml" ~hot:false ~atomic_ok:true () in
  Alcotest.(check int) "no findings" 0 (List.length fs)

(* --- R4 hygiene ---------------------------------------------------- *)

let test_r4_fires () =
  let fs = check_fixture ~name:"r4_violation.ml" ~hot:true ~atomic_ok:true () in
  (* Obj.magic, bare compare, (=) on tuples, Stdlib.compare *)
  Alcotest.(check int) "hygiene findings" 4 (count Lint.rule_hygiene fs)

let test_r4_clean () =
  let fs = check_fixture ~name:"r4_conforming.ml" ~hot:true ~atomic_ok:true () in
  Alcotest.(check int) "no findings" 0 (List.length fs)

(* Obj.magic is banned even outside hot modules. *)
let test_obj_magic_everywhere () =
  let fs =
    Lint.check_source ~hot:false ~atomic_ok:true ~file:"inline.ml"
      "let f x = Obj.magic x\n"
  in
  Alcotest.(check int) "hygiene findings" 1 (count Lint.rule_hygiene fs)

(* --- attribute scoping -------------------------------------------- *)

let test_allow_is_scoped () =
  let src =
    "let x = (Atomic.make 0 [@lint.allow \"atomic-confinement: justified \
     for x only\"])\n\
     let y = Atomic.make 0\n"
  in
  let fs = Lint.check_source ~hot:false ~atomic_ok:false ~file:"inline.ml" src in
  Alcotest.(check int) "only the unsuppressed site fires" 1
    (count Lint.rule_atomic_confinement fs);
  Alcotest.(check bool) "and it is y's" true
    (List.for_all (fun f -> f.Lint.line = 2) fs)

let test_floating_allow () =
  let src =
    "[@@@lint.allow \"hygiene\"]\nlet f xs = List.sort compare xs\n"
  in
  let fs = Lint.check_source ~hot:true ~atomic_ok:true ~file:"inline.ml" src in
  Alcotest.(check int) "floating allow suppresses the structure" 0
    (List.length fs)

(* --- interprocedural R3: the blocking call hides behind helpers ---- *)

let test_r3_interproc_fires () =
  let fs =
    check_fixture ~name:"r3_interproc_violation.ml" ~hot:false ~atomic_ok:true
      ()
  in
  Alcotest.(check int) "helper-that-blocks fires under the permit" 1
    (count Lint.rule_no_blocking fs);
  Alcotest.(check bool) "the finding names the transitive chain" true
    (List.exists
       (fun f ->
         f.Lint.rule = Lint.rule_no_blocking
         && contains_sub f.Lint.message "settle_twice"
         && contains_sub f.Lint.message "may block")
       fs)

let test_r3_interproc_clean () =
  let fs =
    check_fixture ~name:"r3_interproc_conforming.ml" ~hot:false ~atomic_ok:true
      ()
  in
  Alcotest.(check int) "no findings" 0 (List.length fs)

(* --- R5 fd discipline --------------------------------------------- *)

let test_r5_fires () =
  let fs = check_fixture ~name:"r5_violation.ml" ~hot:false ~atomic_ok:true () in
  (* read_flag's None path, fresh_log's risky write_header, serve's
     risky greet *)
  Alcotest.(check int) "fd-discipline findings" 3
    (count Lint.rule_fd_discipline fs);
  Alcotest.(check bool) "the leak-on-raise path is reported" true
    (List.exists
       (fun f ->
         f.Lint.rule = Lint.rule_fd_discipline
         && contains_sub f.Lint.message "leaks if write_header raises")
       fs)

let test_r5_clean () =
  let fs =
    check_fixture ~name:"r5_conforming.ml" ~hot:false ~atomic_ok:true ()
  in
  Alcotest.(check int) "no findings" 0 (List.length fs)

(* --- R6 wal-before-ack (server files only) ------------------------- *)

let test_r6_fires () =
  let fs =
    check_fixture ~name:"r6_violation.ml" ~hot:false ~atomic_ok:true
      ~server:true ()
  in
  (* fs_rows <-, fs_count <-, admit_ingest, install_program *)
  Alcotest.(check int) "wal-before-ack findings" 4
    (count Lint.rule_wal_before_ack fs)

let test_r6_clean () =
  let fs =
    check_fixture ~name:"r6_conforming.ml" ~hot:false ~atomic_ok:true
      ~server:true ()
  in
  Alcotest.(check int) "no findings" 0 (List.length fs)

(* the rule is scoped to server files: the same code is silent without
   the flag *)
let test_r6_scoped_to_server () =
  let fs = check_fixture ~name:"r6_violation.ml" ~hot:false ~atomic_ok:true () in
  Alcotest.(check int) "silent outside server files" 0
    (count Lint.rule_wal_before_ack fs)

(* --- R7 select-loop purity ----------------------------------------- *)

let test_r7_fires () =
  let fs = check_fixture ~name:"r7_violation.ml" ~hot:false ~atomic_ok:true () in
  (* handle (resolved, may block) and the inline Unix.accept *)
  Alcotest.(check int) "select-loop-purity findings" 2
    (count Lint.rule_select_purity fs)

let test_r7_clean () =
  let fs =
    check_fixture ~name:"r7_conforming.ml" ~hot:false ~atomic_ok:true ()
  in
  Alcotest.(check int) "no findings" 0 (List.length fs)

(* --- R8 stale suppressions ----------------------------------------- *)

let test_r8_fires () =
  let fs = check_fixture ~name:"r8_violation.ml" ~hot:false ~atomic_ok:true () in
  Alcotest.(check int) "stale-suppression findings" 2
    (count Lint.rule_stale_suppression fs);
  (* the typo'd allow does not suppress the finding it meant to cover *)
  Alcotest.(check int) "the mistargeted finding still fires" 1
    (count Lint.rule_hygiene fs)

let test_r8_clean () =
  let fs =
    check_fixture ~name:"r8_conforming.ml" ~hot:false ~atomic_ok:false ()
  in
  Alcotest.(check int) "no findings" 0 (List.length fs)

(* --- JSON round-trip and the baseline ratchet ---------------------- *)

let test_json_roundtrip () =
  let fs = Lint.check_file ~hot:false ~atomic_ok:true (fx "r5_violation.ml") in
  Alcotest.(check bool) "some findings to serialise" true (fs <> []);
  (match Lint.findings_of_json (Lint.findings_to_json fs) with
  | Ok fs' -> Alcotest.(check bool) "round-trips exactly" true (fs = fs')
  | Error m -> Alcotest.fail ("findings_of_json: " ^ m));
  match Lint.findings_of_json (Lint.findings_to_json []) with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "empty list did not round-trip"
  | Error m -> Alcotest.fail ("empty findings_of_json: " ^ m)

let mk file rule message line =
  { Lint.file; line; col = 0; rule; message }

let test_baseline_diff () =
  let fs =
    [
      mk "a.ml" Lint.rule_hygiene "m1" 1;
      mk "a.ml" Lint.rule_hygiene "m1" 9;
      mk "b.ml" Lint.rule_fd_discipline "m2" 3;
    ]
  in
  let base = Lint.baseline_of_findings fs in
  (* the baseline survives its JSON round-trip *)
  let base =
    match Lint.baseline_of_json (Lint.baseline_to_json base) with
    | Ok b -> b
    | Error m -> Alcotest.fail ("baseline_of_json: " ^ m)
  in
  (* identical findings: fully covered, nothing shrinkable *)
  let fresh, stale = Lint.diff_baseline base fs in
  Alcotest.(check int) "covered" 0 (List.length fresh);
  Alcotest.(check int) "nothing shrinkable" 0 (List.length stale);
  (* one of the two m1 sites fixed: no fresh finding, one shrinkable
     entry *)
  let fresh, stale = Lint.diff_baseline base (List.tl fs) in
  Alcotest.(check int) "still covered" 0 (List.length fresh);
  Alcotest.(check int) "one shrinkable entry" 1 (List.length stale);
  (* line moves do not count as new findings (identity is
     file/rule/message) *)
  let moved = [ mk "a.ml" Lint.rule_hygiene "m1" 100 ] in
  let fresh, _ = Lint.diff_baseline base (moved @ List.tl fs) in
  Alcotest.(check int) "a moved finding stays covered" 0 (List.length fresh);
  (* a brand-new finding escapes the ratchet *)
  let fresh, _ =
    Lint.diff_baseline base (mk "c.ml" Lint.rule_hygiene "m3" 2 :: fs)
  in
  Alcotest.(check int) "a new finding is fresh" 1 (List.length fresh);
  (* a third occurrence of a baselined message is over budget *)
  let fresh, _ =
    Lint.diff_baseline base (mk "a.ml" Lint.rule_hygiene "m1" 50 :: fs)
  in
  Alcotest.(check int) "over-budget occurrence is fresh" 1
    (List.length fresh)

(* --- path classification ------------------------------------------ *)

let test_classification () =
  Alcotest.(check bool) "btree.ml is hot" true
    (Lint.default_hot "lib/btree/btree.ml");
  Alcotest.(check bool) "symtab.ml is not hot" false
    (Lint.default_hot "lib/datalog/symtab.ml");
  Alcotest.(check bool) "olock.ml may use atomics" true
    (Lint.default_atomic_whitelisted "lib/optlock/olock.ml");
  Alcotest.(check bool) "sync.ml may use atomics" true
    (Lint.default_atomic_whitelisted "lib/datalog/sync.ml");
  Alcotest.(check bool) "flight.ml may use atomics" true
    (Lint.default_atomic_whitelisted "lib/telemetry/flight.ml");
  Alcotest.(check bool) "eval.ml may not" false
    (Lint.default_atomic_whitelisted "lib/datalog/eval.ml")

let () =
  Alcotest.run "lint"
    [
      ( "r1-atomic-confinement",
        [
          Alcotest.test_case "fires" `Quick test_r1_fires;
          Alcotest.test_case "clean" `Quick test_r1_clean;
          Alcotest.test_case "shared-atomic recorder fires" `Quick
            test_recorder_fires;
          Alcotest.test_case "domain-local recorder clean" `Quick
            test_recorder_clean;
          Alcotest.test_case "shared-snapshot monitor fires" `Quick
            test_monitor_fires;
          Alcotest.test_case "domain-confined monitor clean" `Quick
            test_monitor_clean;
        ] );
      ( "r2-lease-discipline",
        [
          Alcotest.test_case "fires" `Quick test_r2_fires;
          Alcotest.test_case "clean" `Quick test_r2_clean;
        ] );
      ( "r3-no-blocking",
        [
          Alcotest.test_case "fires" `Quick test_r3_fires;
          Alcotest.test_case "clean" `Quick test_r3_clean;
          Alcotest.test_case "interprocedural fires" `Quick
            test_r3_interproc_fires;
          Alcotest.test_case "interprocedural clean" `Quick
            test_r3_interproc_clean;
        ] );
      ( "r4-hygiene",
        [
          Alcotest.test_case "fires" `Quick test_r4_fires;
          Alcotest.test_case "clean" `Quick test_r4_clean;
          Alcotest.test_case "obj-magic everywhere" `Quick
            test_obj_magic_everywhere;
        ] );
      ( "attributes",
        [
          Alcotest.test_case "expression allow is scoped" `Quick
            test_allow_is_scoped;
          Alcotest.test_case "floating allow" `Quick test_floating_allow;
        ] );
      ( "r5-fd-discipline",
        [
          Alcotest.test_case "fires" `Quick test_r5_fires;
          Alcotest.test_case "clean" `Quick test_r5_clean;
        ] );
      ( "r6-wal-before-ack",
        [
          Alcotest.test_case "fires" `Quick test_r6_fires;
          Alcotest.test_case "clean" `Quick test_r6_clean;
          Alcotest.test_case "scoped to server files" `Quick
            test_r6_scoped_to_server;
        ] );
      ( "r7-select-purity",
        [
          Alcotest.test_case "fires" `Quick test_r7_fires;
          Alcotest.test_case "clean" `Quick test_r7_clean;
        ] );
      ( "r8-stale-suppression",
        [
          Alcotest.test_case "fires" `Quick test_r8_fires;
          Alcotest.test_case "clean" `Quick test_r8_clean;
        ] );
      ( "machine-output",
        [
          Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "baseline diff" `Quick test_baseline_diff;
        ] );
      ( "classification",
        [ Alcotest.test_case "paths" `Quick test_classification ] );
    ]
