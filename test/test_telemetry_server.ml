(* Live telemetry service tests: address parsing, endpoint contracts, the
   windowed-delta ring, health degradation, and — the load-bearing one —
   concurrent scrape-during-eval: four writer domains ingest into a B-tree
   while the main domain scrapes /metrics and /snapshot.json in a loop,
   asserting no torn or decreasing counter reads and a valid exposition
   document every time. *)

module TS = Telemetry_server
module T = Btree.Make (Key.Int)

let ( let@ ) f k = f k

(* Start a server on an ephemeral loopback port, run [k], always stop. *)
let with_server ?interval_ms ?window_count () k =
  match TS.start ?interval_ms ?window_count (TS.Tcp ("127.0.0.1", 0)) with
  | Error m -> Alcotest.failf "start: %s" m
  | Ok srv ->
    Fun.protect ~finally:(fun () -> TS.stop srv) (fun () -> k srv)

let fetch_ok srv path =
  match TS.fetch (TS.bound srv) path with
  | Ok (code, body) -> (code, body)
  | Error m -> Alcotest.failf "fetch %s: %s" path m

let json_of body =
  try Telemetry.Json.of_string body
  with Telemetry.Json.Parse_error m ->
    Alcotest.failf "body is not valid JSON (%s): %s" m body

let member_exn name j =
  match Telemetry.Json.member name j with
  | Some v -> v
  | None -> Alcotest.failf "JSON missing member %S" name

let schema_of j =
  match member_exn "schema" j with
  | Telemetry.Json.String s -> s
  | _ -> Alcotest.fail "schema is not a string"

(* --- Prometheus exposition validator ------------------------------- *)

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c = is_name_start c || (c >= '0' && c <= '9')

let valid_name s =
  s <> ""
  && is_name_start s.[0]
  && String.for_all is_name_char s

let valid_value s =
  match s with
  | "+Inf" | "-Inf" | "NaN" -> true
  | _ -> ( match float_of_string_opt s with Some _ -> true | None -> false)

(* One exposition line: comment/HELP/TYPE, or [name[{labels}] value].
   Label values may contain anything except an unescaped quote, so the
   value token is whatever follows the labels' closing brace. *)
let valid_line line =
  if line = "" then true
  else if String.length line >= 2 && String.sub line 0 2 = "# " then
    match String.split_on_char ' ' line with
    | "#" :: ("HELP" | "TYPE") :: name :: _ :: _ -> valid_name name
    | _ -> true (* free-form comment *)
  else
    let name_part, value_part =
      match String.index_opt line '{' with
      | Some i -> (
        match String.rindex_opt line '}' with
        | Some j when j > i ->
          let rest = String.sub line (j + 1) (String.length line - j - 1) in
          (String.sub line 0 i, String.trim rest)
        | _ -> ("", ""))
      | None -> (
        match String.index_opt line ' ' with
        | Some i ->
          ( String.sub line 0 i,
            String.sub line (i + 1) (String.length line - i - 1) )
        | None -> ("", ""))
    in
    valid_name name_part && valid_value value_part

let check_exposition body =
  List.iteri
    (fun i line ->
      if not (valid_line line) then
        Alcotest.failf "invalid exposition line %d: %S" (i + 1) line)
    (String.split_on_char '\n' body)

let metric_value body name =
  let prefix = name ^ " " in
  List.find_map
    (fun line ->
      if
        String.length line > String.length prefix
        && String.sub line 0 (String.length prefix) = prefix
      then
        float_of_string_opt
          (String.sub line (String.length prefix)
             (String.length line - String.length prefix))
      else None)
    (String.split_on_char '\n' body)

(* --- address parsing ----------------------------------------------- *)

let test_parse_addr () =
  (match TS.parse_addr "unix:/tmp/x.sock" with
  | Ok (TS.Unix_sock "/tmp/x.sock") -> ()
  | _ -> Alcotest.fail "unix:PATH");
  (match TS.parse_addr "9090" with
  | Ok (TS.Tcp ("127.0.0.1", 9090)) -> ()
  | _ -> Alcotest.fail "bare port binds loopback");
  (match TS.parse_addr "0.0.0.0:8080" with
  | Ok (TS.Tcp ("0.0.0.0", 8080)) -> ()
  | _ -> Alcotest.fail "HOST:PORT");
  (match TS.parse_addr ":7070" with
  | Ok (TS.Tcp ("0.0.0.0", 7070)) -> ()
  | _ -> Alcotest.fail ":PORT binds all interfaces");
  List.iter
    (fun bad ->
      match TS.parse_addr bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected parse error for %S" bad)
    [ "not-an-addr"; "host:port"; "unix:"; "" ]

(* --- endpoint contracts (idle server) ------------------------------ *)

let test_endpoints () =
  TS.Health.reset ();
  let@ srv = with_server ~interval_ms:20 () in
  (* give the monitor a tick so a window exists *)
  Unix.sleepf 0.08;
  let code, body = fetch_ok srv "/health" in
  Alcotest.(check int) "health is 200 when quiet" 200 code;
  Alcotest.(check string) "health schema" "telemetry_health/1"
    (schema_of (json_of body));
  let code, body = fetch_ok srv "/snapshot.json" in
  Alcotest.(check int) "snapshot 200" 200 code;
  let j = json_of body in
  Alcotest.(check string) "snapshot schema" "telemetry_window/1" (schema_of j);
  (match member_exn "window" j with
  | Telemetry.Json.Obj _ -> ()
  | _ -> Alcotest.fail "snapshot carries a completed window");
  let code, body = fetch_ok srv "/heat" in
  Alcotest.(check int) "heat 200" 200 code;
  Alcotest.(check string) "heat schema" "telemetry_heat/1"
    (schema_of (json_of body));
  let code, body = fetch_ok srv "/trace" in
  Alcotest.(check int) "trace 200" 200 code;
  Alcotest.(check string) "trace schema" "telemetry_trace/1"
    (schema_of (json_of body));
  let code, body = fetch_ok srv "/metrics" in
  Alcotest.(check int) "metrics 200" 200 code;
  check_exposition body;
  let code, _ = fetch_ok srv "/" in
  Alcotest.(check int) "index 200" 200 code;
  let code, _ = fetch_ok srv "/nope" in
  Alcotest.(check int) "unknown endpoint is 404" 404 code

let test_stop_is_clean () =
  let addr =
    let@ srv = with_server () in
    TS.bound srv
  in
  (match TS.fetch addr "/health" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "server still reachable after stop");
  (* unix-socket servers unlink their path on stop *)
  let path = Filename.temp_file "tsrv" ".sock" in
  Sys.remove path;
  (match TS.start ~interval_ms:20 (TS.Unix_sock path) with
  | Error m -> Alcotest.failf "unix start: %s" m
  | Ok srv ->
    Alcotest.(check bool) "socket file exists" true (Sys.file_exists path);
    TS.stop srv;
    Alcotest.(check bool) "socket file unlinked" false (Sys.file_exists path))

(* --- windowed deltas report rates ---------------------------------- *)

let test_windowed_rates () =
  TS.Health.reset ();
  Telemetry.reset ();
  Telemetry.enable ();
  Fun.protect ~finally:Telemetry.disable @@ fun () ->
  let@ srv = with_server ~interval_ms:30 () in
  (* stay busy for several windows, then scrape while the latest completed
     window still covers the busy period *)
  let t_end = Telemetry.now_ns () + 150_000_000 in
  while Telemetry.now_ns () < t_end do
    for _ = 1 to 1_000 do
      Telemetry.bump Telemetry.Counter.Eval_rule_evals
    done
  done;
  let _, body1 = fetch_ok srv "/snapshot.json" in
  let w1 = member_exn "window" (json_of body1) in
  (* ...then a quiet one: two scrapes >= 1 window apart must differ *)
  Unix.sleepf 0.1;
  let _, body2 = fetch_ok srv "/snapshot.json" in
  let w2 = member_exn "window" (json_of body2) in
  let seq w =
    match member_exn "seq" w with
    | Telemetry.Json.Int n -> n
    | _ -> Alcotest.fail "seq not an int"
  in
  Alcotest.(check bool) "window sequence advanced" true (seq w2 > seq w1);
  let rate w =
    match Telemetry.Json.member "eval.rule_evals_per_s" (member_exn "rates" w) with
    | Some (Telemetry.Json.Float r) -> r
    | Some (Telemetry.Json.Int r) -> float_of_int r
    | _ -> 0.0
  in
  Alcotest.(check bool) "busy window reports a positive rate" true
    (rate w1 > 0.0);
  Alcotest.(check bool) "windows report rates, not cumulative totals" true
    (rate w2 < rate w1)

(* --- health degradation -------------------------------------------- *)

let test_health_flips () =
  TS.Health.reset ();
  let@ srv = with_server ~interval_ms:20 () in
  Unix.sleepf 0.06;
  let code, _ = fetch_ok srv "/health" in
  Alcotest.(check int) "starts ok" 200 code;
  TS.Health.note_watchdog_trip ();
  Unix.sleepf 0.05;
  let code, body = fetch_ok srv "/health" in
  Alcotest.(check int) "watchdog trip degrades" 503 code;
  (match member_exn "status" (json_of body) with
  | Telemetry.Json.String "degraded" -> ()
  | _ -> Alcotest.fail "status should be degraded");
  (* trips age out once they leave the health span (3 windows) *)
  Unix.sleepf 0.2;
  let code, _ = fetch_ok srv "/health" in
  Alcotest.(check int) "degradation ages out" 200 code;
  TS.Health.note_uncontained "boom";
  let code, body = fetch_ok srv "/health" in
  Alcotest.(check int) "uncontained is critical" 503 code;
  (match member_exn "status" (json_of body) with
  | Telemetry.Json.String "critical" -> ()
  | _ -> Alcotest.fail "status should be critical");
  TS.Health.reset ();
  let code, _ = fetch_ok srv "/health" in
  Alcotest.(check int) "reset recovers" 200 code

(* --- concurrent scrape-during-eval --------------------------------- *)

let test_scrape_during_eval () =
  TS.Health.reset ();
  Telemetry.reset ();
  Telemetry.enable ();
  Flight.enable ();
  Fun.protect
    ~finally:(fun () ->
      Telemetry.disable ();
      Flight.disable ())
  @@ fun () ->
  let@ srv = with_server ~interval_ms:30 () in
  let tree = T.create ~capacity:8 () in
  let stop = Atomic.make false in
  let writers =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            let st = ref (0x9E3779B9 * (d + 1)) in
            let next () =
              let r = !st in
              let r = r lxor (r lsl 13) land max_int in
              let r = r lxor (r lsr 7) in
              let r = r lxor (r lsl 17) land max_int in
              st := r;
              r
            in
            while not (Atomic.get stop) do
              for _ = 1 to 512 do
                ignore (T.insert tree (next () land 0xFFFFF) : bool)
              done
            done))
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      List.iter Domain.join writers)
  @@ fun () ->
  let last_total = ref 0.0 in
  let last_seq = ref (-1) in
  for _ = 1 to 12 do
    let code, body = fetch_ok srv "/metrics" in
    Alcotest.(check int) "metrics 200 under load" 200 code;
    check_exposition body;
    (* cumulative counters never go backwards across scrapes: per-domain
       shards are single-writer monotonic, so a racy sum is still
       monotonic — a decrease would mean a torn read *)
    (match metric_value body "repro_btree_leaf_splits_total" with
    | Some v ->
      if v < !last_total then
        Alcotest.failf "leaf splits decreased: %.0f -> %.0f" !last_total v;
      last_total := v
    | None -> Alcotest.fail "repro_btree_leaf_splits_total missing");
    let code, body = fetch_ok srv "/snapshot.json" in
    Alcotest.(check int) "snapshot 200 under load" 200 code;
    let j = json_of body in
    Alcotest.(check string) "snapshot schema under load" "telemetry_window/1"
      (schema_of j);
    (match member_exn "window" j with
    | Telemetry.Json.Obj _ as w ->
      (match member_exn "seq" w with
      | Telemetry.Json.Int s ->
        if s < !last_seq then
          Alcotest.failf "window seq went backwards: %d -> %d" !last_seq s;
        last_seq := s
      | _ -> Alcotest.fail "seq not an int")
    | Telemetry.Json.Null -> () (* no tick yet *)
    | _ -> Alcotest.fail "window is not an object");
    Unix.sleepf 0.03
  done;
  Alcotest.(check bool) "writers actually split leaves" true (!last_total > 0.0);
  Alcotest.(check bool) "windows ticked during the scrape" true (!last_seq > 0)

let () =
  Alcotest.run "telemetry_server"
    [
      ("addr", [ Alcotest.test_case "parse" `Quick test_parse_addr ]);
      ( "endpoints",
        [
          Alcotest.test_case "all five respond" `Quick test_endpoints;
          Alcotest.test_case "stop is clean" `Quick test_stop_is_clean;
        ] );
      ( "windows",
        [ Alcotest.test_case "deltas report rates" `Quick test_windowed_rates ]
      );
      ("health", [ Alcotest.test_case "degrades and recovers" `Quick test_health_flips ]);
      ( "concurrency",
        [
          Alcotest.test_case "scrape during eval" `Quick test_scrape_during_eval;
        ] );
    ]
