(* Tests for the specialized tuple B-tree: differential against the generic
   functor tree, invariants, hints and multi-domain stress. *)

module Generic = Btree.Make (Key.Int_array)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let rng seed =
  let s = ref (Key.mix64 (seed + 1)) in
  fun bound ->
    s := Key.mix64 (!s + 0x2545F4914F6CDD1D);
    !s mod bound

let tuples_equal a b = Key.Int_array.compare a b = 0

let test_basic () =
  let t = Btree_tuples.create ~arity:2 ~order:[| 0; 1 |] () in
  check_bool "empty" true (Btree_tuples.is_empty t);
  check_bool "insert" true (Btree_tuples.insert t [| 1; 2 |]);
  check_bool "dup" false (Btree_tuples.insert t [| 1; 2 |]);
  check_bool "mem" true (Btree_tuples.mem t [| 1; 2 |]);
  check_bool "absent" false (Btree_tuples.mem t [| 2; 1 |]);
  check_int "cardinal" 1 (Btree_tuples.cardinal t);
  check_int "arity" 2 (Btree_tuples.arity t);
  Btree_tuples.check_invariants t

let test_bad_order_rejected () =
  List.iter
    (fun order ->
      match Btree_tuples.create ~arity:2 ~order () with
      | _ -> Alcotest.fail "accepted bad order"
      | exception Invalid_argument _ -> ())
    [ [| 0 |]; [| 0; 0 |]; [| 0; 2 |]; [| -1; 0 |] ]

let test_permuted_order () =
  (* order [1; 0]: sorted by second column first *)
  let t = Btree_tuples.create ~arity:2 ~order:[| 1; 0 |] () in
  List.iter
    (fun tup -> ignore (Btree_tuples.insert t tup : bool))
    [ [| 5; 1 |]; [| 1; 5 |]; [| 3; 3 |]; [| 9; 0 |] ];
  Btree_tuples.check_invariants t;
  let order = List.map (fun a -> (a.(0), a.(1))) (Btree_tuples.to_list t) in
  Alcotest.(check (list (pair int int)))
    "second-column order"
    [ (9, 0); (5, 1); (3, 3); (1, 5) ]
    order

let test_arity3 () =
  let r = rng 1 in
  let t = Btree_tuples.create ~arity:3 ~order:[| 2; 0; 1 |] () in
  let module TS = Set.Make (struct
    type t = int array

    let compare = Key.Int_array.compare
  end) in
  let model = ref TS.empty in
  for _ = 1 to 10_000 do
    let tup = [| r 50; r 50; r 50 |] in
    check_bool "fresh agrees with model"
      (not (TS.mem tup !model))
      (Btree_tuples.insert t tup);
    model := TS.add tup !model
  done;
  Btree_tuples.check_invariants t;
  check_int "cardinal" (TS.cardinal !model) (Btree_tuples.cardinal t)

let test_prefix_scan () =
  (* sig [0]-major order: scanning from (7, -inf) while first col = 7 must
     enumerate exactly row 7 *)
  let t = Btree_tuples.create ~arity:2 ~order:[| 0; 1 |] () in
  for x = 0 to 19 do
    for y = 0 to 19 do
      ignore (Btree_tuples.insert t [| x; y |] : bool)
    done
  done;
  let seen = ref [] in
  Btree_tuples.iter_from
    (fun tup ->
      if tup.(0) = 7 then begin
        seen := tup.(1) :: !seen;
        true
      end
      else false)
    t [| 7; min_int |];
  Alcotest.(check (list int)) "row 7" (List.init 20 Fun.id) (List.rev !seen)

let test_shape () =
  let t = Btree_tuples.create ~arity:2 ~order:[| 0; 1 |] ~capacity:8 () in
  let sh0 = Btree_tuples.shape t in
  check_int "empty shape: no nodes" 0 sh0.Tree_shape.nodes;
  check_int "empty shape: height 0" 0 sh0.Tree_shape.height;
  let n = 10_000 in
  for i = 0 to n - 1 do
    ignore (Btree_tuples.insert t [| i / 100; i mod 100 |] : bool)
  done;
  Btree_tuples.check_invariants t;
  let sh = Btree_tuples.shape t in
  check_int "elements = cardinal" (Btree_tuples.cardinal t)
    sh.Tree_shape.elements;
  check_bool "has inner levels" true (sh.Tree_shape.height > 1);
  check_int "single root" 1 sh.Tree_shape.level_nodes.(0);
  check_int "levels sum to nodes" sh.Tree_shape.nodes
    (Array.fold_left ( + ) 0 sh.Tree_shape.level_nodes);
  check_int "per-level keys sum to elements" sh.Tree_shape.elements
    (Array.fold_left ( + ) 0 sh.Tree_shape.level_keys);
  check_int "bottom level holds the leaves" sh.Tree_shape.leaves
    sh.Tree_shape.level_nodes.(sh.Tree_shape.height - 1);
  check_int "fill deciles sum to nodes" sh.Tree_shape.nodes
    (Array.fold_left ( + ) 0 sh.Tree_shape.fill_deciles);
  check_bool "fill in (0,1]" true
    (sh.Tree_shape.fill > 0.0 && sh.Tree_shape.fill <= 1.0)

let test_hint_run_hist () =
  let t = Btree_tuples.create ~arity:2 ~order:[| 0; 1 |] () in
  let h = Btree_tuples.session t in
  for i = 0 to 4_999 do
    ignore (Btree_tuples.s_insert h [| i / 100; i mod 100 |] : bool)
  done;
  let _, misses = Btree_tuples.hint_counters (Btree_tuples.s_hints h) in
  let runs = Btree_tuples.hint_run_hist (Btree_tuples.s_hints h) in
  check_int "log2 run buckets" 16 (Array.length runs);
  let recorded = Array.fold_left ( + ) 0 runs in
  check_bool "one run per miss (+ open run)" true
    (recorded = misses || recorded = misses + 1);
  check_bool "long runs on sorted stream" true
    (Array.exists (fun c -> c > 0) (Array.sub runs 4 (Array.length runs - 4)))

let test_hinted_ops () =
  let t = Btree_tuples.create ~arity:2 ~order:[| 0; 1 |] () in
  let h = Btree_tuples.session t in
  let n = 10_000 in
  for i = 0 to n - 1 do
    ignore (Btree_tuples.s_insert h [| i / 100; i mod 100 |] : bool)
  done;
  Btree_tuples.check_invariants t;
  check_int "cardinal" n (Btree_tuples.cardinal t);
  let hits, misses = Btree_tuples.hint_counters (Btree_tuples.s_hints h) in
  check_bool "ordered stream hits" true (hits > misses * 5);
  (* hinted membership *)
  for i = 0 to n - 1 do
    if not (Btree_tuples.s_mem h [| i / 100; i mod 100 |]) then
      Alcotest.failf "lost %d" i
  done

let prop_matches_generic =
  QCheck.Test.make ~count:200 ~name:"specialized = generic functor tree"
    QCheck.(pair (list (pair (int_bound 40) (int_bound 40))) (small_list (pair (int_bound 45) (int_bound 45))))
    (fun (ins, probes) ->
      let sp = Btree_tuples.create ~arity:2 ~order:[| 0; 1 |] () in
      let ge = Generic.create () in
      let agree_ins =
        List.for_all
          (fun (a, b) ->
            Btree_tuples.insert sp [| a; b |] = Generic.insert ge [| a; b |])
          ins
      in
      let agree_mem =
        List.for_all
          (fun (a, b) ->
            Btree_tuples.mem sp [| a; b |] = Generic.mem ge [| a; b |])
          probes
      in
      Btree_tuples.check_invariants sp;
      agree_ins && agree_mem
      && List.for_all2 tuples_equal (Btree_tuples.to_list sp) (Generic.to_list ge))

let test_concurrent_inserts () =
  let t = Btree_tuples.create ~arity:2 ~order:[| 0; 1 |] () in
  let d = min 8 (max 2 (Domain.recommended_domain_count ())) in
  let per = 20_000 in
  let fresh = Atomic.make 0 in
  let worker w () =
    let h = Btree_tuples.session t in
    let mine = ref 0 in
    for i = 0 to per - 1 do
      (* half disjoint, half overlapping across workers *)
      let tup = if i land 1 = 0 then [| w; i |] else [| -1; i |] in
      if Btree_tuples.s_insert h tup then incr mine
    done;
    ignore (Atomic.fetch_and_add fresh !mine)
  in
  let ds = List.init d (fun w -> Domain.spawn (worker w)) in
  List.iter Domain.join ds;
  Btree_tuples.check_invariants t;
  let expected = (d * per / 2) + (per / 2) in
  check_int "cardinal" expected (Btree_tuples.cardinal t);
  check_int "fresh total" expected (Atomic.get fresh)

(* ------------------------------------------------------------------ *)
(* batch inserts + structural merge pieces                             *)
(* ------------------------------------------------------------------ *)

module TS = Set.Make (struct
  type t = int array

  let compare = Key.Int_array.compare
end)

let sorted_tuples pairs =
  Array.of_list
    (TS.elements (TS.of_list (List.map (fun (a, b) -> [| a; b |]) pairs)))

let prop_batch_matches_serial =
  QCheck.Test.make ~count:200 ~name:"batch = one-by-one (identity order)"
    QCheck.(list (pair (int_bound 60) (int_bound 60)))
    (fun pairs ->
      let run = sorted_tuples pairs in
      let a = Btree_tuples.create ~arity:2 ~order:[| 0; 1 |] () in
      Array.iter (fun tup -> ignore (Btree_tuples.insert a tup : bool)) run;
      let b = Btree_tuples.create ~arity:2 ~order:[| 0; 1 |] () in
      let fresh = Btree_tuples.insert_batch b run in
      Btree_tuples.check_invariants b;
      fresh = Array.length run
      && List.for_all2 tuples_equal (Btree_tuples.to_list a)
           (Btree_tuples.to_list b))

let prop_batch_permuted_order =
  (* the run must be sorted in the tree's own (permuted) order *)
  QCheck.Test.make ~count:200 ~name:"batch respects permuted order"
    QCheck.(list (pair (int_bound 60) (int_bound 60)))
    (fun pairs ->
      let a = Btree_tuples.create ~arity:2 ~order:[| 1; 0 |] () in
      let tuples = List.map (fun (x, y) -> [| x; y |]) pairs in
      List.iter (fun tup -> ignore (Btree_tuples.insert a tup : bool)) tuples;
      let b = Btree_tuples.create ~arity:2 ~order:[| 1; 0 |] () in
      let run = Array.of_list tuples in
      Array.sort (Btree_tuples.compare_tuples b) run;
      ignore (Btree_tuples.insert_batch b run : int);
      Btree_tuples.check_invariants b;
      List.for_all2 tuples_equal (Btree_tuples.to_list a)
        (Btree_tuples.to_list b))

let test_batch_rejects_unsorted () =
  let t = Btree_tuples.create ~arity:2 ~order:[| 0; 1 |] () in
  Alcotest.check_raises "decreasing run"
    (Invalid_argument "Btree_tuples.insert_batch: run not sorted") (fun () ->
      ignore (Btree_tuples.insert_batch t [| [| 2; 0 |]; [| 1; 0 |] |] : int))

let test_separators_partition () =
  (* separators must be sorted keys of the tree usable as partition
     boundaries *)
  let t = Btree_tuples.create ~arity:2 ~order:[| 0; 1 |] () in
  for i = 0 to 9_999 do
    ignore (Btree_tuples.insert t [| i / 100; i mod 100 |] : bool)
  done;
  let cmp = Btree_tuples.compare_tuples t in
  List.iter
    (fun limit ->
      let seps = Btree_tuples.separators t ~limit in
      if Array.length seps > limit then
        Alcotest.failf "limit %d exceeded: %d" limit (Array.length seps);
      Array.iteri
        (fun i s ->
          if i > 0 && cmp seps.(i - 1) s >= 0 then
            Alcotest.fail "separators not strictly increasing";
          if not (Btree_tuples.mem t s) then
            Alcotest.fail "separator not a tree key")
        seps)
    [ 1; 3; 7; 15; 64 ];
  Alcotest.(check int)
    "empty tree has no separators" 0
    (Array.length
       (Btree_tuples.separators
          (Btree_tuples.create ~arity:2 ~order:[| 0; 1 |] ())
          ~limit:7))

let test_session_ops () =
  let a = Btree_tuples.create ~arity:2 ~order:[| 0; 1 |] () in
  let b = Btree_tuples.create ~arity:2 ~order:[| 0; 1 |] () in
  let s = Btree_tuples.session b in
  let run = Array.init 500 (fun i -> [| i; i * 2 |]) in
  Array.iter (fun tup -> ignore (Btree_tuples.insert a tup : bool)) run;
  check_int "session batch fresh" 500 (Btree_tuples.s_insert_batch s run);
  check_bool "session insert" true (Btree_tuples.s_insert s [| 1000; 0 |]);
  ignore (Btree_tuples.insert a [| 1000; 0 |] : bool);
  check_bool "session mem" true (Btree_tuples.s_mem s [| 250; 500 |]);
  Btree_tuples.check_invariants b;
  check_bool "same contents" true
    (List.for_all2 tuples_equal (Btree_tuples.to_list a)
       (Btree_tuples.to_list b))

let test_concurrent_batch_partitions () =
  let t = Btree_tuples.create ~arity:2 ~order:[| 0; 1 |] () in
  let n = 60_000 in
  (* pre-seed sparse structure *)
  for i = 0 to (n / 8) - 1 do
    ignore (Btree_tuples.insert t [| i * 8; 7 |] : bool)
  done;
  let seeded = Btree_tuples.cardinal t in
  let run = Array.init n (fun i -> [| i; 7 |]) in
  let d = min 8 (max 2 (Domain.recommended_domain_count ())) in
  let fresh = Atomic.make 0 in
  let worker w () =
    let h = Btree_tuples.session t in
    let lo = w * n / d and hi = (w + 1) * n / d in
    let f = Btree_tuples.s_insert_batch ~pos:lo ~len:(hi - lo) h run in
    ignore (Atomic.fetch_and_add fresh f : int)
  in
  let ds = List.init d (fun w -> Domain.spawn (worker w)) in
  List.iter Domain.join ds;
  Btree_tuples.check_invariants t;
  check_int "cardinal" n (Btree_tuples.cardinal t);
  check_int "fresh total" (n - seeded) (Atomic.get fresh)

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "btree_tuples"
    [
      ( "basics",
        [
          Alcotest.test_case "basic" `Quick test_basic;
          Alcotest.test_case "bad order" `Quick test_bad_order_rejected;
          Alcotest.test_case "permuted order" `Quick test_permuted_order;
          Alcotest.test_case "arity 3" `Quick test_arity3;
          Alcotest.test_case "prefix scan" `Quick test_prefix_scan;
          Alcotest.test_case "hints" `Quick test_hinted_ops;
          Alcotest.test_case "hint run histogram" `Quick test_hint_run_hist;
          Alcotest.test_case "shape" `Quick test_shape;
        ] );
      ( "batch",
        [
          Alcotest.test_case "rejects unsorted" `Quick
            test_batch_rejects_unsorted;
          Alcotest.test_case "separators" `Quick test_separators_partition;
          Alcotest.test_case "session" `Quick test_session_ops;
        ] );
      qsuite "properties"
        [
          prop_matches_generic;
          prop_batch_matches_serial;
          prop_batch_permuted_order;
        ];
      ( "concurrency",
        [
          Alcotest.test_case "mixed inserts" `Quick test_concurrent_inserts;
          Alcotest.test_case "batch partitions" `Quick
            test_concurrent_batch_partitions;
        ] );
    ]
