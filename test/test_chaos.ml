(* Tests for the robustness layer: the chaos failpoint registry itself,
   olock misuse detection and forced validation failures, the bounded-retry
   pessimistic fallback descent, pool fault containment, IO fault injection,
   and session/unhinted API equivalence.

   Every test that arms the registry disarms it in a [Fun.protect] finalizer
   so a failing assertion cannot leak chaos into later suites. *)

module T = Btree.Make (Key.Int)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* deterministic pseudo-random stream, same idiom as test_btree *)
let rng seed =
  let s = ref (Key.mix64 (seed + 1)) in
  fun bound ->
    s := Key.mix64 (!s + 0x2545F4914F6CDD1D);
    !s mod bound

let with_chaos f = Fun.protect ~finally:Chaos.disable f

(* telemetry delta around [f]: counter values accumulate globally across the
   test binary, so assertions compare before/after snapshots *)
let counter_delta c f =
  Telemetry.enable ();
  Fun.protect ~finally:Telemetry.disable (fun () ->
      let before = Telemetry.get (Telemetry.snapshot ()) c in
      f ();
      Telemetry.get (Telemetry.snapshot ()) c - before)

(* ---------------- registry ---------------- *)

let test_point_names_roundtrip () =
  List.iter
    (fun p ->
      match Chaos.Point.of_name (Chaos.Point.name p) with
      | Some p' -> check_bool (Chaos.Point.name p) true (p = p')
      | None -> Alcotest.failf "of_name lost %s" (Chaos.Point.name p))
    Chaos.Point.all;
  check_bool "unknown name" true (Chaos.Point.of_name "no.such.point" = None);
  check_int "count" (List.length Chaos.Point.all) Chaos.Point.count

let test_spec_parses () =
  with_chaos (fun () ->
      (match Chaos.apply_spec "seed=7,points=all:8" with
      | Ok () -> ()
      | Error m -> Alcotest.failf "all:8 rejected: %s" m);
      check_bool "active" true (Chaos.active ());
      check_int "seed" 7 (Chaos.seed ());
      (match Chaos.apply_spec "points=pool.job.raise" with
      | Ok () -> ()
      | Error m -> Alcotest.failf "default rate rejected: %s" m);
      match
        Chaos.apply_spec
          "points=olock.validate.force_fail:12+btree.descent.yield"
      with
      | Ok () -> ()
      | Error m -> Alcotest.failf "mixed rates rejected: %s" m)

let test_spec_rejects () =
  with_chaos (fun () ->
      let rejected spec =
        match Chaos.apply_spec spec with
        | Error _ -> ()
        | Ok () -> Alcotest.failf "accepted malformed spec %S" spec
      in
      rejected "";
      rejected "seed=7";                          (* arms no points *)
      rejected "points=bogus.point";
      rejected "points=olock.validate.force_fail:0"; (* rate < 1 *)
      rejected "points=olock.validate.force_fail:x";
      rejected "frob=1,points=all";
      rejected "seed=notanint,points=all";
      (* a malformed spec must not arm anything *)
      check_bool "nothing armed after errors" false (Chaos.active ()))

let test_fire_deterministic () =
  with_chaos (fun () ->
      let record seed =
        Chaos.configure ~seed [ (Chaos.Point.Olock_validate_force_fail, 3) ];
        List.init 200 (fun _ -> Chaos.fire Chaos.Point.Olock_validate_force_fail)
      in
      let a = record 11 and b = record 11 and c = record 12 in
      check_bool "same seed replays the same decisions" true (a = b);
      check_bool "different seed differs" true (a <> c);
      check_bool "rate 3 fires sometimes" true (List.mem true a);
      check_bool "rate 3 skips sometimes" true (List.mem false a))

let test_fired_counters () =
  with_chaos (fun () ->
      Chaos.configure ~seed:5 [ (Chaos.Point.Pool_job_raise, 1) ];
      for _ = 1 to 10 do
        ignore (Chaos.fire Chaos.Point.Pool_job_raise : bool)
      done;
      check_int "rate 1 fires every time" 10
        (Chaos.fired Chaos.Point.Pool_job_raise);
      check_int "unarmed point never fires" 0
        (Chaos.fired Chaos.Point.Io_read_truncate);
      check_int "total" 10 (Chaos.total_fired ());
      Chaos.disable ();
      check_bool "disabled" false (Chaos.active ());
      check_bool "fire after disable" false (Chaos.fire Chaos.Point.Pool_job_raise);
      (* counters stay readable after disable (for end-of-run reports) *)
      check_int "fired readable after disable" 10
        (Chaos.fired Chaos.Point.Pool_job_raise))

let test_inject_raises () =
  with_chaos (fun () ->
      Chaos.configure ~seed:1 [ (Chaos.Point.Pool_job_raise, 1) ];
      (match Chaos.inject Chaos.Point.Pool_job_raise with
      | () -> Alcotest.fail "armed inject did not raise"
      | exception Chaos.Injected p ->
        check_bool "payload names the point" true (p = "pool.job.raise"));
      (* yield_if must not raise, only stall *)
      Chaos.configure ~seed:1 [ (Chaos.Point.Btree_descent_yield, 1) ];
      Chaos.yield_if Chaos.Point.Btree_descent_yield;
      Chaos.disable ();
      Chaos.inject Chaos.Point.Pool_job_raise (* disabled: no-op *))

(* ---------------- olock: misuse + forced validation failure ------------ *)

let test_olock_misuse_detected () =
  let l = Olock.create () in
  let v0 = Olock.version l in
  (match Olock.end_write l with
  | () -> Alcotest.fail "end_write on a free lock accepted"
  | exception Olock.Protocol_violation _ -> ());
  (match Olock.abort_write l with
  | () -> Alcotest.fail "abort_write on a free lock accepted"
  | exception Olock.Protocol_violation _ -> ());
  (* the offending operation was rolled back: the lock is still usable *)
  check_int "version untouched" v0 (Olock.version l);
  Olock.start_write l;
  Olock.end_write l;
  check_bool "lock usable after violation" false (Olock.is_write_locked l);
  (* a released write permit cannot be released again *)
  Olock.start_write l;
  Olock.abort_write l;
  match Olock.end_write l with
  | () -> Alcotest.fail "double release accepted"
  | exception Olock.Protocol_violation _ -> ()

let test_olock_forced_validation_failure () =
  with_chaos (fun () ->
      let l = Olock.create () in
      let lease = Olock.start_read l in
      check_bool "valid without chaos" true (Olock.valid l lease);
      Chaos.configure ~seed:3 [ (Chaos.Point.Olock_validate_force_fail, 1) ];
      check_bool "forced validation failure" false (Olock.valid l lease);
      check_bool "forced end_read failure" false (Olock.end_read l lease);
      Chaos.disable ();
      check_bool "valid again once disarmed" true (Olock.valid l lease))

(* ---------------- bounded retries: pessimistic fallback ---------------- *)

let test_restart_budget_api () =
  check_int "default budget" 16 (T.restart_budget ());
  T.set_restart_budget 3;
  Fun.protect
    ~finally:(fun () -> T.set_restart_budget 16)
    (fun () ->
      check_int "budget set" 3 (T.restart_budget ());
      match T.set_restart_budget (-1) with
      | () -> Alcotest.fail "negative budget accepted"
      | exception Invalid_argument _ -> ());
  check_int "tuple tree default budget" 16 (Btree_tuples.restart_budget ())

let test_pessimistic_single_domain () =
  (* budget 0: every insert takes the write-locked fallback descent; the
     result must be indistinguishable from the optimistic path *)
  let fallbacks =
    counter_delta Telemetry.Counter.Btree_pessimistic_fallbacks (fun () ->
        T.set_restart_budget 0;
        Fun.protect
          ~finally:(fun () -> T.set_restart_budget 16)
          (fun () ->
            let r = rng 91 in
            let t = T.create ~capacity:4 () in
            let module S = Set.Make (Int) in
            let model = ref S.empty in
            for _ = 1 to 2000 do
              let k = r 500 in
              let fresh = T.insert t k in
              check_bool "fresh agrees with model" (not (S.mem k !model)) fresh;
              model := S.add k !model
            done;
            (* the batch write path has its own pessimistic twin *)
            let run = Array.init 300 (fun _ -> r 1000) in
            Array.sort compare run;
            ignore (T.insert_batch t run : int);
            Array.iter (fun k -> model := S.add k !model) run;
            T.check_invariants t;
            check_int "cardinal" (S.cardinal !model) (T.cardinal t);
            S.iter
              (fun k -> if not (T.mem t k) then Alcotest.failf "lost %d" k)
              !model))
  in
  check_bool "fallback counter advanced" true (fallbacks > 0)

let test_pessimistic_multi_domain () =
  T.set_restart_budget 0;
  Fun.protect
    ~finally:(fun () -> T.set_restart_budget 16)
    (fun () ->
      let domains = 4 and per = 1500 in
      let r = rng 17 in
      let keys =
        Array.init (domains * per) (fun _ -> r 800)
      in
      let t = T.create ~capacity:8 () in
      Pool.with_pool domains (fun pool ->
          Pool.run pool (fun w ->
              let s = T.session t in
              for i = w * per to ((w + 1) * per) - 1 do
                ignore (T.s_insert s keys.(i) : bool)
              done));
      T.check_invariants t;
      let module S = Set.Make (Int) in
      let expected = Array.fold_left (fun s k -> S.add k s) S.empty keys in
      check_int "multi-domain cardinal" (S.cardinal expected) (T.cardinal t))

let test_pessimistic_tuples () =
  Btree_tuples.set_restart_budget 0;
  Fun.protect
    ~finally:(fun () -> Btree_tuples.set_restart_budget 16)
    (fun () ->
      let r = rng 29 in
      let t = Btree_tuples.create ~capacity:4 ~arity:2 ~order:[| 0; 1 |] () in
      let module S = Set.Make (struct
        type t = int * int

        let compare = compare
      end) in
      let model = ref S.empty in
      for _ = 1 to 1500 do
        let a = r 200 and b = r 8 in
        ignore (Btree_tuples.insert t [| a; b |] : bool);
        model := S.add (a, b) !model
      done;
      let run = Array.init 200 (fun _ -> [| r 400; r 8 |]) in
      Array.sort (Btree_tuples.compare_tuples t) run;
      ignore (Btree_tuples.insert_batch t run : int);
      Array.iter (fun tp -> model := S.add (tp.(0), tp.(1)) !model) run;
      Btree_tuples.check_invariants t;
      check_int "tuple cardinal" (S.cardinal !model) (Btree_tuples.cardinal t);
      S.iter
        (fun (a, b) ->
          if not (Btree_tuples.mem t [| a; b |]) then
            Alcotest.failf "lost tuple (%d,%d)" a b)
        !model)

let test_fallback_under_forced_failures () =
  (* every optimistic validation forced to fail: without the bounded-retry
     fallback this loop would livelock; with it, it must terminate with a
     correct tree *)
  with_chaos (fun () ->
      Chaos.configure ~seed:23 [ (Chaos.Point.Olock_validate_force_fail, 1) ];
      let fallbacks =
        counter_delta Telemetry.Counter.Btree_pessimistic_fallbacks (fun () ->
            let t = T.create ~capacity:4 () in
            for k = 0 to 499 do
              ignore (T.insert t k : bool)
            done;
            Chaos.disable ();
            T.check_invariants t;
            check_int "all present" 500 (T.cardinal t))
      in
      check_bool "descents fell back" true (fallbacks > 0))

(* ---------------- pool fault containment ---------------- *)

let test_pool_injected_faults_contained () =
  with_chaos (fun () ->
      Chaos.configure ~seed:1 [ (Chaos.Point.Pool_job_raise, 1) ];
      Pool.with_pool 4 (fun p ->
          (match Pool.run p (fun _ -> ()) with
          | () -> Alcotest.fail "injected faults did not surface"
          | exception Pool.Pool_failure fs ->
            check_int "every worker captured" 4 (List.length fs);
            check_bool "sorted by worker" true
              (List.map (fun f -> f.Pool.f_worker) fs = [ 0; 1; 2; 3 ]);
            List.iter
              (fun f ->
                (match f.Pool.f_exn with
                | Chaos.Injected _ -> ()
                | e ->
                  Alcotest.failf "unexpected exception: %s"
                    (Printexc.to_string e));
                check_bool "backtrace captured as a string" true
                  (String.length f.Pool.f_backtrace >= 0))
              fs);
          (* no worker domain died: the same pool runs the next job *)
          Chaos.disable ();
          let hits = Atomic.make 0 in
          Pool.run p (fun _ -> Atomic.incr hits);
          check_int "pool alive after contained faults" 4 (Atomic.get hits)))

let test_pool_watchdog_trips () =
  let trips =
    counter_delta Telemetry.Counter.Pool_watchdog_trips (fun () ->
        Pool.with_pool 2 (fun p ->
            (match Pool.set_watchdog p (-1) with
            | () -> Alcotest.fail "negative deadline accepted"
            | exception Invalid_argument _ -> ());
            (* 1ns deadline: any real job overruns it; the watchdog flags,
               it never kills *)
            Pool.set_watchdog p 1;
            let hits = Atomic.make 0 in
            Pool.run p (fun _ -> Atomic.incr hits);
            check_int "job still completed" 2 (Atomic.get hits);
            (* disarmed: no further trips *)
            Pool.set_watchdog p 0;
            Pool.run p (fun _ -> ())))
  in
  check_int "exactly one trip" 1 trips

(* ---------------- IO fault injection ---------------- *)

let tc_src =
  {|
  .decl edge(x:number, y:number)
  .decl path(x:number, y:number)
  .input edge
  .output path
  path(x, y) :- edge(x, y).
  path(x, z) :- path(x, y), edge(y, z).
  |}

let with_facts_file content f =
  let path = Filename.temp_file "chaosio" ".facts" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc content;
      close_out oc;
      f path)

let test_io_truncate_strict () =
  with_chaos (fun () ->
      with_facts_file "1\t2\n3\t4\n" (fun path ->
          let e = Engine.create (Parser.parse_string tc_src) in
          Chaos.configure ~seed:9 [ (Chaos.Point.Io_read_truncate, 1) ];
          match Dl_io.load_facts_file e ~relation:"edge" path with
          | _ -> Alcotest.fail "accepted truncated lines"
          | exception
              Dl_io.Parse_error { file = Some f; line = 1; relation = "edge"; _ }
            -> check_bool "file recorded" true (Filename.check_suffix f ".facts")))

let test_io_truncate_lenient () =
  with_chaos (fun () ->
      with_facts_file "1\t2\n3\t4\n5\t6\n" (fun path ->
          let loaded = ref (-1) in
          let skipped =
            counter_delta Telemetry.Counter.Io_malformed_lines (fun () ->
                let e = Engine.create (Parser.parse_string tc_src) in
                Chaos.configure ~seed:9 [ (Chaos.Point.Io_read_truncate, 1) ];
                loaded := Dl_io.load_facts_file ~lenient:true e ~relation:"edge" path;
                Chaos.disable ())
          in
          (* every line was cut to "N", one field instead of two: all three
             are skipped-and-counted, none loaded *)
          check_int "nothing loaded" 0 !loaded;
          check_int "every malformed line counted" 3 skipped))

(* ---------------- session / unhinted equivalence ---------------- *)

let test_session_matches_unhinted () =
  (* hints are a pure accelerator: the session API (hinted) and the raw
     unhinted API must agree operation by operation *)
  let r = rng 57 in
  let keys = Array.init 1000 (fun _ -> r 400) in
  let t_plain = T.create ~capacity:8 () in
  let t_sess = T.create ~capacity:8 () in
  let s = T.session t_sess in
  Array.iter
    (fun k ->
      let a = T.insert t_plain k and b = T.s_insert s k in
      if a <> b then Alcotest.failf "insert disagrees on %d" k)
    keys;
  T.check_invariants t_plain;
  check_int "same cardinal" (T.cardinal t_sess) (T.cardinal t_plain);
  Array.iter
    (fun k ->
      if T.mem t_plain k <> T.s_mem s k then
        Alcotest.failf "mem disagrees on %d" k;
      if T.lower_bound t_plain k <> T.s_lower_bound s k then
        Alcotest.failf "lower_bound disagrees on %d" k)
    keys;
  let scanned = ref 0 in
  T.s_iter_from (fun _ -> incr scanned; !scanned < 50) s 0;
  check_int "session scan" 50 !scanned;
  (* batch insert through the session *)
  let run = Array.init 100 (fun i -> 1000 + i) in
  check_int "session batch" 100 (T.s_insert_batch s run);
  check_int "plain batch" 100 (T.insert_batch t_plain run)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "chaos"
    [
      ( "registry",
        [
          tc "point names roundtrip" `Quick test_point_names_roundtrip;
          tc "spec parses" `Quick test_spec_parses;
          tc "spec rejects malformed" `Quick test_spec_rejects;
          tc "deterministic firing" `Quick test_fire_deterministic;
          tc "fired counters" `Quick test_fired_counters;
          tc "inject raises" `Quick test_inject_raises;
        ] );
      ( "olock",
        [
          tc "misuse detected" `Quick test_olock_misuse_detected;
          tc "forced validation failure" `Quick test_olock_forced_validation_failure;
        ] );
      ( "fallback",
        [
          tc "restart budget api" `Quick test_restart_budget_api;
          tc "pessimistic single domain" `Quick test_pessimistic_single_domain;
          tc "pessimistic multi domain" `Quick test_pessimistic_multi_domain;
          tc "pessimistic tuple tree" `Quick test_pessimistic_tuples;
          tc "fallback under forced failures" `Quick
            test_fallback_under_forced_failures;
        ] );
      ( "pool",
        [
          tc "injected faults contained" `Quick test_pool_injected_faults_contained;
          tc "watchdog trips" `Quick test_pool_watchdog_trips;
        ] );
      ( "io",
        [
          tc "truncate strict" `Quick test_io_truncate_strict;
          tc "truncate lenient" `Quick test_io_truncate_lenient;
        ] );
      ( "sessions",
        [ tc "session matches unhinted" `Quick test_session_matches_unhinted ] );
    ]
