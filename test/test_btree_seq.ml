(* Tests for the sequential B-tree variant, including cross-checks against
   the concurrent tree (they must be observationally identical). *)

module S = Btree_seq.Make (Key.Int)
module C = Btree.Make (Key.Int)
module ISet = Set.Make (Int)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_ilist = Alcotest.(check (list int))
let int_opt = Alcotest.(option int)

let rng seed =
  let s = ref (Key.mix64 (seed + 1)) in
  fun bound ->
    s := Key.mix64 (!s + 0x2545F4914F6CDD1D);
    !s mod bound

let test_empty () =
  let t = S.create () in
  check_bool "is_empty" true (S.is_empty t);
  check_int "cardinal" 0 (S.cardinal t);
  check_bool "mem" false (S.mem t 1);
  S.check_invariants t

let test_ordered () =
  let t = S.create ~capacity:4 () in
  for i = 0 to 9999 do
    check_bool "fresh" true (S.insert t i)
  done;
  check_int "cardinal" 10_000 (S.cardinal t);
  S.check_invariants t;
  for i = 0 to 9999 do
    if not (S.mem t i) then Alcotest.failf "lost %d" i
  done

let test_random_vs_model () =
  let r = rng 1 in
  let t = S.create ~capacity:5 () in
  let model = ref ISet.empty in
  for _ = 1 to 20_000 do
    let k = r 8000 in
    check_bool "insert matches model" (not (ISet.mem k !model)) (S.insert t k);
    model := ISet.add k !model
  done;
  check_ilist "contents" (ISet.elements !model) (S.to_list t);
  S.check_invariants t

let test_hinted_ordered_insert_hits () =
  let t = S.create ~capacity:8 () in
  let h = S.make_hints () in
  let n = 10_000 in
  for i = 0 to n - 1 do
    ignore (S.insert ~hints:h t i : bool)
  done;
  S.check_invariants t;
  check_int "cardinal" n (S.cardinal t);
  let s = S.hint_stats h in
  check_bool "hints dominate on ordered stream" true (s.S.insert_hits > (9 * n) / 10)

let test_hinted_random_vs_model () =
  let r = rng 2 in
  let t = S.create ~capacity:6 () in
  let h = S.make_hints () in
  let model = ref ISet.empty in
  for _ = 1 to 10_000 do
    let k = r 50_000 in
    check_bool "hinted insert matches model"
      (not (ISet.mem k !model))
      (S.insert ~hints:h t k);
    model := ISet.add k !model
  done;
  check_ilist "hinted contents" (ISet.elements !model) (S.to_list t);
  S.check_invariants t;
  (* hinted queries *)
  let model_lb k = ISet.find_first_opt (fun x -> x >= k) !model in
  let model_ub k = ISet.find_first_opt (fun x -> x > k) !model in
  for _ = 1 to 2000 do
    let p = r 50_000 in
    Alcotest.check int_opt "lb" (model_lb p) (S.lower_bound ~hints:h t p);
    Alcotest.check int_opt "ub" (model_ub p) (S.upper_bound ~hints:h t p);
    check_bool "mem" (ISet.mem p !model) (S.mem ~hints:h t p)
  done

let test_bounds () =
  let t = S.create ~capacity:4 () in
  List.iter (fun k -> ignore (S.insert t k : bool)) [ 10; 20; 30; 40; 50 ];
  Alcotest.check int_opt "lb exact" (Some 30) (S.lower_bound t 30);
  Alcotest.check int_opt "lb between" (Some 30) (S.lower_bound t 21);
  Alcotest.check int_opt "lb below" (Some 10) (S.lower_bound t (-5));
  Alcotest.check int_opt "lb above" None (S.lower_bound t 51);
  Alcotest.check int_opt "ub exact" (Some 40) (S.upper_bound t 30);
  Alcotest.check int_opt "ub max" None (S.upper_bound t 50)

let test_iter_from () =
  let t = S.create ~capacity:4 () in
  for i = 0 to 99 do
    ignore (S.insert t (i * 2) : bool)
  done;
  let seen = ref [] in
  S.iter_from
    (fun k ->
      if k <= 60 then (seen := k :: !seen; true) else false)
    t 41;
  check_ilist "range" [ 42; 44; 46; 48; 50; 52; 54; 56; 58; 60 ] (List.rev !seen)

let test_bulk_build () =
  List.iter
    (fun n ->
      let arr = Array.init n (fun i -> i * 7) in
      let t = S.of_sorted_array ~capacity:5 arr in
      S.check_invariants t;
      check_int "bulk cardinal" n (S.cardinal t);
      ignore (S.insert t 3 : bool);
      S.check_invariants t)
    [ 0; 1; 4; 5; 6; 30; 99; 1000 ]

let test_insert_all () =
  let a = S.create () and b = S.create () in
  List.iter (fun k -> ignore (S.insert a k : bool)) (List.init 100 (fun i -> 2 * i));
  List.iter (fun k -> ignore (S.insert b k : bool)) (List.init 100 (fun i -> (2 * i) + 1));
  S.insert_all a b;
  check_int "merged" 200 (S.cardinal a);
  S.check_invariants a

(* qcheck: sequential and concurrent trees agree operation by operation *)
let prop_seq_eq_concurrent =
  QCheck.Test.make ~count:200 ~name:"seq = concurrent (insert/mem)"
    QCheck.(pair (list (int_bound 300)) (small_list (int_bound 320)))
    (fun (ins, probes) ->
      let s = S.create ~capacity:4 () in
      let c = C.create ~capacity:4 () in
      let agree_ins =
        List.for_all (fun k -> S.insert s k = C.insert c k) ins
      in
      let agree_probe =
        List.for_all
          (fun p ->
            S.mem s p = C.mem c p
            && S.lower_bound s p = C.lower_bound c p
            && S.upper_bound s p = C.upper_bound c p)
          probes
      in
      agree_ins && agree_probe && S.to_list s = C.to_list c)

let prop_hinted_model =
  QCheck.Test.make ~count:200 ~name:"hinted seq tree = model"
    QCheck.(list (int_bound 100))
    (fun keys ->
      let t = S.create ~capacity:4 () in
      let h = S.make_hints () in
      List.iter (fun k -> ignore (S.insert ~hints:h t k : bool)) keys;
      S.check_invariants t;
      S.to_list t = ISet.elements (ISet.of_list keys))

let prop_bulk_matches =
  QCheck.Test.make ~count:200 ~name:"of_sorted_array = inserts"
    QCheck.(list_of_size Gen.(0 -- 500) (int_bound 10_000))
    (fun keys ->
      let uniq = Array.of_list (ISet.elements (ISet.of_list keys)) in
      let a = S.of_sorted_array ~capacity:6 uniq in
      let b = S.create ~capacity:6 () in
      Array.iter (fun k -> ignore (S.insert b k : bool)) uniq;
      S.check_invariants a;
      S.to_list a = S.to_list b)

let prop_batch_eq_concurrent_batch =
  (* sequential batch = concurrent batch = one-by-one *)
  QCheck.Test.make ~count:200 ~name:"insert_batch = concurrent insert_batch"
    QCheck.(list (int_bound 2000))
    (fun keys ->
      let run = Array.of_list (ISet.elements (ISet.of_list keys)) in
      let s = S.create ~capacity:4 () in
      let fs = S.insert_batch s run in
      S.check_invariants s;
      let c = C.create ~capacity:4 () in
      let fc = C.insert_batch c run in
      C.check_invariants c;
      let serial = S.create ~capacity:4 () in
      Array.iter (fun k -> ignore (S.insert serial k : bool)) run;
      fs = fc && S.to_list s = C.to_list c && S.to_list s = S.to_list serial)

let test_batch_rejects_unsorted () =
  let t = S.create () in
  Alcotest.check_raises "decreasing run"
    (Invalid_argument "Btree_seq.insert_batch: run not sorted") (fun () ->
      ignore (S.insert_batch t [| 3; 1 |] : int))

let test_session_batch () =
  let t = S.create ~capacity:4 () in
  let sess = S.session t in
  check_int "fresh" 100 (S.s_insert_batch sess (Array.init 100 Fun.id));
  check_int "replay" 0 (S.s_insert_batch sess (Array.init 100 Fun.id));
  check_bool "mem" true (S.s_mem sess 42);
  S.check_invariants t

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "btree_seq"
    [
      ( "basics",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "ordered" `Quick test_ordered;
          Alcotest.test_case "random vs model" `Quick test_random_vs_model;
          Alcotest.test_case "bounds" `Quick test_bounds;
          Alcotest.test_case "iter_from" `Quick test_iter_from;
        ] );
      ( "hints",
        [
          Alcotest.test_case "ordered hits" `Quick test_hinted_ordered_insert_hits;
          Alcotest.test_case "random vs model" `Quick test_hinted_random_vs_model;
        ] );
      ( "bulk",
        [
          Alcotest.test_case "of_sorted_array" `Quick test_bulk_build;
          Alcotest.test_case "insert_all" `Quick test_insert_all;
          Alcotest.test_case "batch rejects unsorted" `Quick
            test_batch_rejects_unsorted;
          Alcotest.test_case "session batch" `Quick test_session_batch;
        ] );
      qsuite "properties"
        [
          prop_seq_eq_concurrent;
          prop_hinted_model;
          prop_bulk_matches;
          prop_batch_eq_concurrent_batch;
        ];
    ]
