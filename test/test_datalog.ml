(* Tests for the Datalog engine: parser, stratification, storage indexes,
   end-to-end evaluation on all storage kinds, parallel = sequential, and
   differential testing against the naive reference evaluator. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let tc = Alcotest.test_case

let tuples_sorted l = List.sort Key.Int_array.compare l

let run_program ?(kind = Storage.Btree) ?(threads = 1) ?(facts = []) src =
  let prog = Parser.parse_string src in
  let e = Engine.create ~kind prog in
  List.iter (fun (r, t) -> Engine.add_fact e r t) facts;
  Pool.with_pool threads (fun p -> Engine.run e p);
  e

(* ---------------- parser ---------------- *)

let test_parse_basic () =
  let prog =
    Parser.parse_string
      {|
      // transitive closure
      .decl edge(x:number, y:number)
      .input edge
      .decl path(x:number, y:number)
      .output path
      path(x, y) :- edge(x, y).
      path(x, z) :- path(x, y), edge(y, z).
      edge(1, 2).
      edge(2, 3).
      |}
  in
  check_int "decls" 2 (List.length prog.Ast.decls);
  check_int "rules+facts" 4 (List.length prog.Ast.rules);
  let edge = List.find (fun (d : Ast.decl) -> d.name = "edge") prog.Ast.decls in
  check_int "edge arity" 2 edge.Ast.arity;
  check_bool "edge input" true edge.Ast.is_input;
  let path = List.find (fun (d : Ast.decl) -> d.name = "path") prog.Ast.decls in
  check_bool "path output" true path.Ast.is_output

let test_parse_negation_and_syms () =
  let prog =
    Parser.parse_string
      {|
      .decl node(x:number)
      .decl unreachable(x:number)
      .decl reach(x:number)
      unreachable(x) :- node(x), !reach(x).
      node(7).
      .decl label(x:number, l:symbol)
      label(1, "alpha").
      |}
  in
  check_int "rules" 3 (List.length prog.Ast.rules);
  let has_neg =
    List.exists
      (fun (r : Ast.rule) ->
        List.exists (function Ast.Neg _ -> true | Ast.Pos _ | Ast.Cmp _ | Ast.Agg _ -> false) r.body)
      prog.Ast.rules
  in
  check_bool "negation parsed" true has_neg

let test_parse_comments_wildcards () =
  let prog =
    Parser.parse_string
      {|
      /* block
         comment */
      .decl p(x:number, y:number)
      .decl q(x:number)
      q(x) :- p(x, _). // line comment
      |}
  in
  check_int "one rule" 1 (List.length prog.Ast.rules)

let test_parse_errors () =
  let bad = [ ".decl p(x:number"; "p(x :- q(x)."; "p(1)"; "p(x) :- ." ] in
  List.iter
    (fun src ->
      match Parser.parse_string src with
      | _ -> Alcotest.failf "accepted malformed input %S" src
      | exception Parser.Syntax_error _ -> ())
    bad

let test_parse_roundtrip () =
  (* pretty-print then re-parse: same structure *)
  let src =
    {|
    .decl e(x:number, y:number)
    .decl t(x:number, y:number)
    t(x, y) :- e(x, y).
    t(x, z) :- t(x, y), e(y, z).
    e(1, 2).
    |}
  in
  let p1 = Parser.parse_string src in
  let printed = Format.asprintf "%a" Ast.pp_program p1 in
  (* pp_program prints .decl lines in a non-parseable debug format; only
     check the rules roundtrip *)
  let rules_only =
    String.concat "\n"
      (List.filter
         (fun l -> not (String.length l > 0 && l.[0] = '.'))
         (String.split_on_char '\n' printed))
  in
  let p2 = Parser.parse_string rules_only in
  check_int "same rule count" (List.length p1.Ast.rules) (List.length p2.Ast.rules)

(* ---------------- stratification ---------------- *)

let test_stratify_linear () =
  (* a -> b -> c dependencies: c in stratum 0 *)
  let s =
    Stratify.compute ~npreds:3 ~edges:[ (0, 1, false); (1, 2, false) ]
  in
  check_bool "c before b" true (s.Stratify.stratum_of.(2) < s.Stratify.stratum_of.(1));
  check_bool "b before a" true (s.Stratify.stratum_of.(1) < s.Stratify.stratum_of.(0))

let test_stratify_scc () =
  let s =
    Stratify.compute ~npreds:3
      ~edges:[ (0, 1, false); (1, 0, false); (0, 2, false) ]
  in
  check_int "mutual recursion same stratum" s.Stratify.stratum_of.(0)
    s.Stratify.stratum_of.(1);
  check_bool "dependency earlier" true
    (s.Stratify.stratum_of.(2) < s.Stratify.stratum_of.(0))

let test_stratify_negation_ok () =
  let s = Stratify.compute ~npreds:2 ~edges:[ (0, 1, true) ] in
  check_bool "negated dep in earlier stratum" true
    (s.Stratify.stratum_of.(1) < s.Stratify.stratum_of.(0))

let test_stratify_negative_cycle () =
  match
    Stratify.compute ~npreds:2 ~edges:[ (0, 1, true); (1, 0, false) ]
  with
  | _ -> Alcotest.fail "accepted non-stratifiable program"
  | exception Stratify.Not_stratifiable _ -> ()

(* ---------------- storage indexes ---------------- *)

let test_index_signature_scan () =
  List.iter
    (fun kind ->
      let idx =
        Storage.Index.create kind ~arity:2 ~cols:[| 0 |] ~stats:None ()
      in
      for x = 0 to 9 do
        for y = 0 to 9 do
          ignore (Storage.Index.insert idx [| x; y |] : bool)
        done
      done;
      let cur = Storage.Index.cursor idx in
      let seen = ref [] in
      Storage.Index.c_scan cur ~cols:[| 0 |] [| 7 |] (fun tup -> seen := tup.(1) :: !seen);
      check_int
        (Printf.sprintf "scan row 7 (%s)" (Storage.kind_name kind))
        10
        (List.length !seen);
      check_bool
        (Printf.sprintf "row values (%s)" (Storage.kind_name kind))
        true
        (List.sort compare !seen = List.init 10 Fun.id))
    Storage.all_kinds

let test_index_empty_scan () =
  List.iter
    (fun kind ->
      let idx = Storage.Index.create kind ~arity:2 ~cols:[| 1 |] ~stats:None () in
      ignore (Storage.Index.insert idx [| 1; 2 |] : bool);
      let cur = Storage.Index.cursor idx in
      let n = ref 0 in
      Storage.Index.c_scan cur ~cols:[| 1 |] [| 99 |] (fun _ -> incr n);
      check_int (Printf.sprintf "no match (%s)" (Storage.kind_name kind)) 0 !n)
    Storage.all_kinds

let test_index_stats_counting () =
  let stats = Dl_stats.create () in
  let idx =
    Storage.Index.create Storage.Btree ~arity:2 ~cols:[| 0 |] ~stats:(Some stats) ()
  in
  ignore (Storage.Index.insert idx [| 1; 2 |] : bool);
  let cur = Storage.Index.cursor idx in
  Storage.Index.c_scan cur ~cols:[| 0 |] [| 1 |] (fun _ -> ());
  ignore (Storage.Index.c_mem cur [| 1; 2 |] : bool);
  let s = Dl_stats.snapshot stats in
  check_int "lower bounds" 1 s.Dl_stats.s_lower_bounds;
  check_int "upper bounds" 1 s.Dl_stats.s_upper_bounds;
  check_int "mem tests" 1 s.Dl_stats.s_mem_tests

(* ---------------- end-to-end evaluation ---------------- *)

let tc_src =
  {|
  .decl edge(x:number, y:number)
  .input edge
  .decl path(x:number, y:number)
  .output path
  path(x, y) :- edge(x, y).
  path(x, z) :- path(x, y), edge(y, z).
  |}

let chain_facts n = List.init n (fun i -> ("edge", [| i; i + 1 |]))

let test_transitive_closure_all_kinds () =
  (* chain of length n: closure has n*(n+1)/2 pairs *)
  let n = 30 in
  List.iter
    (fun kind ->
      let e = run_program ~kind ~facts:(chain_facts n) tc_src in
      check_int
        (Printf.sprintf "chain closure size (%s)" (Storage.kind_name kind))
        (n * (n + 1) / 2)
        (Engine.relation_size e "path"))
    Storage.all_kinds

let test_parallel_equals_sequential () =
  let n = 60 in
  let expected =
    let e = run_program ~threads:1 ~facts:(chain_facts n) tc_src in
    tuples_sorted (Engine.relation_list e "path")
  in
  List.iter
    (fun kind ->
      let e = run_program ~kind ~threads:4 ~facts:(chain_facts n) tc_src in
      let got = tuples_sorted (Engine.relation_list e "path") in
      check_bool
        (Printf.sprintf "parallel(%s) = sequential" (Storage.kind_name kind))
        true (got = expected))
    Storage.all_kinds

let test_cycle_closure () =
  (* cycle of n nodes: closure is the full n x n relation *)
  let n = 12 in
  let facts = List.init n (fun i -> ("edge", [| i; (i + 1) mod n |])) in
  let e = run_program ~threads:4 ~facts tc_src in
  check_int "cycle closure" (n * n) (Engine.relation_size e "path")

let test_negation_unreachable () =
  let src =
    {|
    .decl node(x:number)
    .decl edge(x:number, y:number)
    .decl reach(x:number)
    .decl unreachable(x:number)
    .output unreachable
    reach(0).
    reach(y) :- reach(x), edge(x, y).
    unreachable(x) :- node(x), !reach(x).
    |}
  in
  let facts =
    List.init 10 (fun i -> ("node", [| i |]))
    @ [ ("edge", [| 0; 1 |]); ("edge", [| 1; 2 |]); ("edge", [| 5; 6 |]) ]
  in
  let e = run_program ~facts src in
  (* reachable: 0,1,2 -> unreachable: 3..9 *)
  check_int "unreachable count" 7 (Engine.relation_size e "unreachable");
  check_bool "3 unreachable" true
    (List.mem [| 3 |] (Engine.relation_list e "unreachable"));
  check_bool "1 not unreachable" false
    (List.mem [| 1 |] (Engine.relation_list e "unreachable"))

let test_symbols () =
  let src =
    {|
    .decl parent(x:symbol, y:symbol)
    .decl ancestor(x:symbol, y:symbol)
    .output ancestor
    ancestor(x, y) :- parent(x, y).
    ancestor(x, z) :- ancestor(x, y), parent(y, z).
    parent("homer", "bart").
    parent("abe", "homer").
    |}
  in
  let e = run_program src in
  check_int "ancestors" 3 (Engine.relation_size e "ancestor");
  let abe = Engine.intern e "abe" and bart = Engine.intern e "bart" in
  check_bool "abe ancestor of bart" true
    (List.mem [| abe; bart |] (Engine.relation_list e "ancestor"))

let test_constants_in_rules () =
  let src =
    {|
    .decl e(x:number, y:number)
    .decl from_zero(y:number)
    .output from_zero
    from_zero(y) :- e(0, y).
    |}
  in
  let e =
    run_program ~facts:[ ("e", [| 0; 5 |]); ("e", [| 1; 6 |]); ("e", [| 0; 7 |]) ]
      src
  in
  check_int "constant filter" 2 (Engine.relation_size e "from_zero")

let test_repeated_vars () =
  let src =
    {|
    .decl e(x:number, y:number)
    .decl selfloop(x:number)
    .output selfloop
    selfloop(x) :- e(x, x).
    |}
  in
  let e =
    run_program
      ~facts:[ ("e", [| 1; 1 |]); ("e", [| 1; 2 |]); ("e", [| 3; 3 |]) ]
      src
  in
  check_int "self loops" 2 (Engine.relation_size e "selfloop")

let test_mutual_recursion () =
  let src =
    {|
    .decl e(x:number, y:number)
    .decl even_path(x:number, y:number)
    .decl odd_path(x:number, y:number)
    .output even_path
    odd_path(x, y) :- e(x, y).
    odd_path(x, z) :- even_path(x, y), e(y, z).
    even_path(x, z) :- odd_path(x, y), e(y, z).
    |}
  in
  (* chain 0..n: odd_path = pairs at odd distance, even_path at even > 0 *)
  let n = 10 in
  let facts = List.init n (fun i -> ("e", [| i; i + 1 |])) in
  let e = run_program ~threads:2 ~facts src in
  let count_dist parity =
    let c = ref 0 in
    for i = 0 to n do
      for j = i + 1 to n do
        if (j - i) mod 2 = parity then incr c
      done
    done;
    !c
  in
  check_int "odd paths" (count_dist 1) (Engine.relation_size e "odd_path");
  check_int "even paths" (count_dist 0) (Engine.relation_size e "even_path")

let test_unsafe_rules_rejected () =
  let cases =
    [
      (* head var not bound *)
      ".decl p(x:number)\n.decl q(x:number)\np(y) :- q(x).";
      (* negation var not bound *)
      ".decl p(x:number)\n.decl q(x:number)\n.decl r(x:number)\np(x) :- q(x), !r(y).";
    ]
  in
  List.iter
    (fun src ->
      match Engine.create (Parser.parse_string src) with
      | _ -> Alcotest.failf "accepted unsafe rule: %s" src
      | exception Plan.Compile_error _ -> ())
    cases

let test_arity_mismatch_rejected () =
  let src = ".decl p(x:number)\np(1, 2)." in
  match Engine.create (Parser.parse_string src) with
  | _ -> Alcotest.fail "accepted arity mismatch"
  | exception Plan.Compile_error _ -> ()

let test_non_stratifiable_rejected () =
  let src =
    ".decl p(x:number)\n.decl q(x:number)\np(x) :- q(x), !p(x).\nq(1)."
  in
  match Engine.create (Parser.parse_string src) with
  | _ -> Alcotest.fail "accepted non-stratifiable program"
  | exception Stratify.Not_stratifiable _ -> ()

let test_instrumentation_counts () =
  let prog = Parser.parse_string tc_src in
  let e = Engine.create ~instrument:true prog in
  List.iter (fun (r, t) -> Engine.add_fact e r t) (chain_facts 20);
  Pool.with_pool 1 (fun p -> Engine.run e p);
  match Engine.stats e with
  | None -> Alcotest.fail "instrumented engine returned no stats"
  | Some s ->
    check_int "input tuples" 20 s.Dl_stats.s_input_tuples;
    check_int "produced tuples" (20 * 21 / 2) s.Dl_stats.s_produced_tuples;
    check_bool "some inserts" true (s.Dl_stats.s_inserts > 0);
    check_bool "some range queries" true (s.Dl_stats.s_lower_bounds > 0);
    check_bool "lb = ub" true
      (s.Dl_stats.s_lower_bounds = s.Dl_stats.s_upper_bounds)

(* ---------------- parser fuzzing ---------------- *)

(* pretty-print -> parse -> pretty-print must be a fixpoint *)
let gen_term = function
  | 0 -> Ast.Var "x"
  | 1 -> Ast.Var "y"
  | 2 -> Ast.Int 7
  | 3 -> Ast.Int (-3)
  | 4 -> Ast.Sym "s"
  | 5 -> Ast.Add (Ast.Var "x", Ast.Int 1)
  | 6 -> Ast.Sub (Ast.Var "y", Ast.Var "x")
  | _ -> Ast.Mul (Ast.Int 2, Ast.Var "x")

let prop_parser_roundtrip =
  QCheck.Test.make ~count:300 ~name:"pretty-print/parse fixpoint"
    QCheck.(list_of_size Gen.(1 -- 4) (pair (int_bound 7) (int_bound 7)))
    (fun shape ->
      (* build a rule whose body binds x and y, then random extras *)
      let base =
        [ Ast.Pos (Ast.atom "p" [ Ast.Var "x"; Ast.Var "y" ]) ]
      in
      let extras =
        List.map
          (fun (a, b) ->
            if a land 1 = 0 then Ast.Pos (Ast.atom "q" [ gen_term a; gen_term b ])
            else Ast.Cmp (Ast.Lt, gen_term a, gen_term b))
          shape
      in
      let rule =
        Ast.rule (Ast.atom "h" [ Ast.Var "x"; Ast.Var "y" ]) (base @ extras)
      in
      let printed = Format.asprintf "%a" Ast.pp_rule rule in
      match Parser.parse_string printed with
      | { Ast.rules = [ r2 ]; _ } ->
        Format.asprintf "%a" Ast.pp_rule r2 = printed
      | _ -> false
      | exception Parser.Syntax_error _ -> false)

let prop_parser_no_crash =
  QCheck.Test.make ~count:500 ~name:"parser never crashes on junk"
    QCheck.(string_of_size Gen.(0 -- 60))
    (fun junk ->
      match Parser.parse_string junk with
      | _ -> true
      | exception Parser.Syntax_error _ -> true)
      (* any other exception fails the property *)

(* ---------------- index selection (chain cover) ---------------- *)

let test_index_selection_chain () =
  (* {0} ⊂ {0,1} ⊂ {0,1,2}: one chain, one index *)
  let plan =
    Index_selection.solve ~arity:3 [ [| 0 |]; [| 0; 1 |]; [| 0; 1; 2 |] ]
  in
  check_int "one order" 1 (List.length plan.Index_selection.orders);
  check_int "three assignments" 3 (List.length plan.Index_selection.assignment);
  (* the single order must start with 0, then 1, then 2 *)
  Alcotest.(check (array int)) "chain order" [| 0; 1; 2 |]
    (List.hd plan.Index_selection.orders)

let test_index_selection_antichain () =
  (* {0} and {1} are incomparable: two indexes *)
  let plan = Index_selection.solve ~arity:2 [ [| 0 |]; [| 1 |] ] in
  check_int "two orders" 2 (List.length plan.Index_selection.orders)

let test_index_selection_diamond () =
  (* {0}, {1}, {0,1}: max antichain {0},{1} -> exactly 2 chains *)
  let plan = Index_selection.solve ~arity:2 [ [| 0 |]; [| 1 |]; [| 0; 1 |] ] in
  check_int "two chains" 2 (List.length plan.Index_selection.orders);
  check_int "lower bound" 2
    (Index_selection.chains_lower_bound [ [| 0 |]; [| 1 |]; [| 0; 1 |] ])

let sig_is_prefix_of_order cols order =
  let n = Array.length cols in
  n <= Array.length order
  && List.sort compare (Array.to_list (Array.sub order 0 n))
     = Array.to_list cols

let prop_index_selection_sound_and_optimal =
  QCheck.Test.make ~count:300 ~name:"chain cover: sound + Dilworth-optimal"
    QCheck.(list_of_size Gen.(1 -- 8) (int_bound 30))
    (fun seeds ->
      (* random signatures over 4 columns *)
      let arity = 4 in
      let sigs =
        List.filter_map
          (fun seed ->
            let cols =
              List.filter (fun c -> (seed lsr c) land 1 = 1) [ 0; 1; 2; 3 ]
            in
            if cols = [] then None else Some (Array.of_list cols))
          seeds
      in
      QCheck.assume (sigs <> []);
      let plan = Index_selection.solve ~arity sigs in
      let orders = Array.of_list plan.Index_selection.orders in
      (* every distinct signature is assigned, and to a serving order *)
      let distinct = List.sort_uniq compare sigs in
      List.for_all
        (fun s ->
          match List.assoc_opt s plan.Index_selection.assignment with
          | Some chain -> sig_is_prefix_of_order s orders.(chain)
          | None -> false)
        distinct
      && Array.length orders = Index_selection.chains_lower_bound sigs)

let test_relation_shares_indexes () =
  (* btree relation with chained signatures uses one physical index;
     hash relation keeps one per signature *)
  let mk kind =
    Relation.create ~name:"r" ~arity:3 ~kind
      ~sigs:[ [| 0 |]; [| 0; 1 |]; [| 0; 1; 2 |] ]
      ~stats:None ()
  in
  check_int "btree shares" 1 (Relation.index_count (mk Storage.Btree));
  check_int "hash does not" 3 (Relation.index_count (mk Storage.Hashset));
  (* shared index still answers each signature correctly *)
  let r = mk Storage.Btree in
  for a = 0 to 4 do
    for b = 0 to 4 do
      for c = 0 to 4 do
        ignore (Relation.insert r [| a; b; c |] : bool)
      done
    done
  done;
  let cur = Relation.begin_read r in
  let count sig_cols bound =
    let n = ref 0 in
    Relation.Reader.scan cur (Relation.sig_id r sig_cols) bound (fun _ -> incr n);
    !n
  in
  check_int "scan {0}" 25 (count [| 0 |] [| 2 |]);
  check_int "scan {0,1}" 5 (count [| 0; 1 |] [| 2; 3 |]);
  check_int "scan {0,1,2}" 1 (count [| 0; 1; 2 |] [| 2; 3; 4 |]);
  check_int "scan miss" 0 (count [| 0 |] [| 9 |]);
  Relation.Reader.finish cur

(* ---------------- constraints and arithmetic ---------------- *)

let test_parse_constraints () =
  let prog =
    Parser.parse_string
      {|
      .decl p(x:number)
      .decl q(x:number, y:number)
      q(x, y) :- p(x), p(y), x < y.
      q(x, y) :- p(x), y = x + 1.
      q(x, y) :- p(x), p(y), x != y, y >= x * 2 - 1.
      |}
  in
  check_int "three rules" 3 (List.length prog.Ast.rules);
  let count_cmp =
    List.fold_left
      (fun acc (r : Ast.rule) ->
        acc
        + List.length
            (List.filter (function Ast.Cmp _ -> true | _ -> false) r.body))
      0 prog.Ast.rules
  in
  check_int "four constraints" 4 count_cmp

let test_comparison_filter () =
  let src =
    {|
    .decl p(x:number)
    .decl lt(x:number, y:number)
    .output lt
    lt(x, y) :- p(x), p(y), x < y.
    |}
  in
  let e = run_program ~facts:(List.init 10 (fun i -> ("p", [| i |]))) src in
  check_int "pairs with x < y" 45 (Engine.relation_size e "lt")

let test_assignment_binding () =
  let src =
    {|
    .decl p(x:number)
    .decl next(x:number, y:number)
    .output next
    next(x, y) :- p(x), y = x + 1.
    |}
  in
  let e = run_program ~facts:[ ("p", [| 3 |]); ("p", [| 7 |]) ] src in
  check_bool "3 -> 4" true (List.mem [| 3; 4 |] (Engine.relation_list e "next"));
  check_bool "7 -> 8" true (List.mem [| 7; 8 |] (Engine.relation_list e "next"));
  check_int "two tuples" 2 (Engine.relation_size e "next")

let test_arithmetic_in_head () =
  let src =
    {|
    .decl p(x:number)
    .decl scaled(x:number)
    .output scaled
    scaled(x * 2 + 1) :- p(x).
    |}
  in
  let e = run_program ~facts:[ ("p", [| 5 |]); ("p", [| 0 |]) ] src in
  check_bool "11 derived" true (List.mem [| 11 |] (Engine.relation_list e "scaled"));
  check_bool "1 derived" true (List.mem [| 1 |] (Engine.relation_list e "scaled"))

let test_bounded_counter_recursion () =
  (* counting with arithmetic: the constraint bounds the fixed point *)
  let src =
    {|
    .decl count(n:number)
    .output count
    count(0).
    count(n + 1) :- count(n), n < 10.
    |}
  in
  let e = run_program ~threads:2 src in
  check_int "0..10" 11 (Engine.relation_size e "count")

let test_path_lengths () =
  (* distance tracking on a DAG: arithmetic through recursion *)
  let src =
    {|
    .decl edge(x:number, y:number)
    .decl dist(x:number, y:number, d:number)
    .output dist
    dist(x, y, 1) :- edge(x, y).
    dist(x, z, d + 1) :- dist(x, y, d), edge(y, z).
    |}
  in
  let n = 8 in
  let facts = List.init n (fun i -> ("edge", [| i; i + 1 |])) in
  let e = run_program ~threads:2 ~facts src in
  (* chain: dist(i, j, j - i) for all i < j *)
  check_int "all distances" (n * (n + 1) / 2) (Engine.relation_size e "dist");
  check_bool "dist(0, 8, 8)" true
    (List.mem [| 0; n; n |] (Engine.relation_list e "dist"))

let test_unsafe_comparison_rejected () =
  let src = ".decl p(x:number)\n.decl q(x:number)\np(x) :- q(x), x < y." in
  match Engine.create (Parser.parse_string src) with
  | _ -> Alcotest.fail "accepted comparison with unbound variable"
  | exception Plan.Compile_error _ -> ()

let test_ground_arith_fact () =
  let src = ".decl p(x:number)\n.output p\np(2 + 3 * 4)." in
  let e = run_program src in
  check_bool "14 present" true (List.mem [| 14 |] (Engine.relation_list e "p"))

let test_constraints_vs_naive () =
  let src =
    {|
    .decl p(x:number)
    .decl q(x:number, y:number)
    .output q
    p(1). p(4). p(9).
    q(x, y) :- p(x), p(y), x < y, y != x + 3.
    q(x, x * x) :- p(x), x >= 2.
    |}
  in
  let prog = Parser.parse_string src in
  let reference = Naive.run prog ~extra_facts:[] in
  let e = Engine.create prog in
  Pool.with_pool 2 (fun p -> Engine.run e p);
  let got = tuples_sorted (Engine.relation_list e "q") in
  let want =
    tuples_sorted (Option.value ~default:[] (Hashtbl.find_opt reference "q"))
  in
  check_bool "constraint semantics match naive" true (got = want)

let test_rule_profile () =
  let prog = Parser.parse_string tc_src in
  let e = Engine.create ~profile:true prog in
  List.iter (fun (r, t) -> Engine.add_fact e r t) (chain_facts 30);
  Pool.with_pool 1 (fun p -> Engine.run e p);
  let prof = Engine.rule_profile e in
  check_bool "profile nonempty" true (prof <> []);
  (* one seed version per rule + one delta variant for the recursive rule *)
  check_int "three rule versions" 3 (List.length prof);
  check_bool "delta variant recorded" true
    (List.exists (fun p -> p.Eval.rp_delta) prof);
  let delta = List.find (fun p -> p.Eval.rp_delta) prof in
  check_bool "delta evaluated once per round" true
    (delta.Eval.rp_evaluations >= 29);
  check_bool "sorted by time" true
    (let rec sorted = function
       | a :: (b :: _ as rest) ->
         a.Eval.rp_seconds >= b.Eval.rp_seconds && sorted rest
       | _ -> true
     in
     sorted prof);
  (* unprofiled engine yields no profile *)
  let e2 = Engine.create prog in
  List.iter (fun (r, t) -> Engine.add_fact e2 r t) (chain_facts 5);
  Pool.with_pool 1 (fun p -> Engine.run e2 p);
  check_bool "no profile by default" true (Engine.rule_profile e2 = [])

(* ---------------- TSV fact I/O ---------------- *)

let with_temp_dir f =
  let dir = Filename.temp_file "dlio" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

let test_io_roundtrip () =
  with_temp_dir (fun dir ->
      let write_file name content =
        let oc = open_out (Filename.concat dir name) in
        output_string oc content;
        close_out oc
      in
      write_file "edge.facts" "1\t2\n2\t3\n\n3\t4\n";
      let prog = Parser.parse_string tc_src in
      let e = Engine.create prog in
      let loaded = Dl_io.load_facts_dir e dir in
      Alcotest.(check (list (pair string int))) "loaded" [ ("edge", 3) ] loaded;
      Pool.with_pool 1 (fun p -> Engine.run e p);
      check_int "closure" 6 (Engine.relation_size e "path");
      let written = Dl_io.write_outputs e ~dir in
      Alcotest.(check (list (pair string int))) "written" [ ("path", 6) ] written;
      (* reload the written file into a fresh engine *)
      let e2 = Engine.create prog in
      let ic = open_in (Filename.concat dir "path.csv") in
      let n = Dl_io.load_facts_channel e2 ~relation:"edge" ic in
      close_in ic;
      check_int "reloaded" 6 n)

let test_io_symbols () =
  with_temp_dir (fun dir ->
      let oc = open_out (Filename.concat dir "edge.facts") in
      output_string oc "alpha\tbeta\nbeta\tgamma\n";
      close_out oc;
      let prog = Parser.parse_string tc_src in
      let e = Engine.create prog in
      ignore (Dl_io.load_facts_dir e dir : (string * int) list);
      Pool.with_pool 1 (fun p -> Engine.run e p);
      check_int "symbolic closure" 3 (Engine.relation_size e "path");
      let a = Engine.intern e "alpha" and g = Engine.intern e "gamma" in
      check_bool "alpha->gamma" true
        (List.mem [| a; g |] (Engine.relation_list e "path")))

let test_io_arity_error () =
  with_temp_dir (fun dir ->
      let oc = open_out (Filename.concat dir "edge.facts") in
      output_string oc "1\t2\t3\n";
      close_out oc;
      let e = Engine.create (Parser.parse_string tc_src) in
      match Dl_io.load_facts_dir e dir with
      | _ -> Alcotest.fail "accepted wrong arity"
      | exception Dl_io.Parse_error { line = 1; relation = "edge"; file = Some _; _ }
        -> ())

(* ---------------- aggregates ---------------- *)

let test_agg_count () =
  let src =
    {|
    .decl edge(x:number, y:number)
    .decl outdeg(x:number, n:number)
    .decl node(x:number)
    .output outdeg
    node(x) :- edge(x, _).
    outdeg(x, n) :- node(x), n = count : { edge(x, y) }.
    |}
  in
  let facts =
    [ ("edge", [| 1; 2 |]); ("edge", [| 1; 3 |]); ("edge", [| 1; 4 |]);
      ("edge", [| 2; 3 |]) ]
  in
  let e = run_program ~facts src in
  check_bool "outdeg(1,3)" true (List.mem [| 1; 3 |] (Engine.relation_list e "outdeg"));
  check_bool "outdeg(2,1)" true (List.mem [| 2; 1 |] (Engine.relation_list e "outdeg"));
  check_int "two nodes" 2 (Engine.relation_size e "outdeg")

let test_agg_min_max_sum () =
  let src =
    {|
    .decl v(x:number)
    .decl stats(lo:number, hi:number, total:number)
    .output stats
    stats(lo, hi, total) :-
      lo = min x : { v(x) },
      hi = max x : { v(x) },
      total = sum x : { v(x) }.
    |}
  in
  let e = run_program ~facts:[ ("v", [| 4 |]); ("v", [| 9 |]); ("v", [| 2 |]) ] src in
  Alcotest.(check (list (array int)))
    "stats tuple" [ [| 2; 9; 15 |] ] (Engine.relation_list e "stats")

let test_agg_min_empty_body () =
  (* min over an empty set: the rule must not fire *)
  let src =
    {|
    .decl v(x:number)
    .decl w(x:number)
    .decl m(x:number)
    .output m
    m(x) :- x = min y : { w(y) }.
    v(1).
    |}
  in
  let e = run_program src in
  check_int "no minimum over empty" 0 (Engine.relation_size e "m")

let test_agg_count_empty_is_zero () =
  let src =
    {|
    .decl w(x:number)
    .decl c(n:number)
    .output c
    c(n) :- n = count : { w(y) }.
    |}
  in
  let e = run_program src in
  Alcotest.(check (list (array int)))
    "count over empty = 0" [ [| 0 |] ] (Engine.relation_list e "c")

let test_agg_correlated () =
  (* the aggregate body references outer variables and a constraint *)
  let src =
    {|
    .decl edge(x:number, y:number)
    .decl big_out(x:number, n:number)
    .decl node(x:number)
    .output big_out
    node(x) :- edge(x, _).
    big_out(x, n) :- node(x), n = count : { edge(x, y), y > 10 }, n >= 2.
    |}
  in
  let facts =
    [ ("edge", [| 1; 11 |]); ("edge", [| 1; 12 |]); ("edge", [| 1; 2 |]);
      ("edge", [| 2; 30 |]) ]
  in
  let e = run_program ~facts src in
  Alcotest.(check (list (array int)))
    "only node 1 qualifies" [ [| 1; 2 |] ]
    (Engine.relation_list e "big_out")

let test_agg_vs_naive () =
  let src =
    {|
    .decl e(x:number, y:number)
    .decl d(x:number, n:number)
    .decl nodes(x:number)
    .output d
    e(1, 2). e(1, 3). e(2, 3). e(3, 1). e(3, 4).
    nodes(x) :- e(x, _).
    d(x, n) :- nodes(x), n = count : { e(x, y) }.
    |}
  in
  let prog = Parser.parse_string src in
  let reference = Naive.run prog ~extra_facts:[] in
  let e = Engine.create prog in
  Pool.with_pool 2 (fun p -> Engine.run e p);
  check_bool "aggregate semantics match naive" true
    (tuples_sorted (Engine.relation_list e "d")
    = tuples_sorted (Option.value ~default:[] (Hashtbl.find_opt reference "d")))

let test_agg_inner_scope () =
  (* inner variables must not leak to the head *)
  let src =
    ".decl e(x:number)\n.decl h(x:number)\nh(y) :- _n = count : { e(y) }."
  in
  match Engine.create (Parser.parse_string src) with
  | _ -> Alcotest.fail "aggregate body variable leaked into scope"
  | exception Plan.Compile_error _ -> ()

let test_agg_recursion_rejected () =
  (* aggregating over the rule's own stratum is not stratifiable *)
  let src =
    ".decl p(x:number)\n.decl q(x:number)\np(n) :- q(x), n = count : { p(y) }.\nq(1).\np(0)."
  in
  match Engine.create (Parser.parse_string src) with
  | _ -> Alcotest.fail "accepted aggregate over its own stratum"
  | exception Stratify.Not_stratifiable _ -> ()

let test_agg_result_checked_when_bound () =
  (* if the result variable is already bound, the aggregate is a filter *)
  let src =
    {|
    .decl e(x:number)
    .decl expect(n:number)
    .decl ok(n:number)
    .output ok
    ok(n) :- expect(n), n = count : { e(x) }.
    e(1). e(2). e(3).
    expect(3). expect(5).
    |}
  in
  let e = run_program src in
  Alcotest.(check (list (array int)))
    "only the true count passes" [ [| 3 |] ] (Engine.relation_list e "ok")

(* ---------------- two-phase discipline ---------------- *)

let test_phase_checker_detects_violation () =
  let idx =
    Storage.Index.with_phase_check ~name:"probe"
      (Storage.Index.create Storage.Btree ~arity:1 ~cols:[||] ~stats:None ())
  in
  ignore (Storage.Index.insert idx [| 1 |] : bool);
  (* overlap a read with a write from another domain via a rendezvous *)
  let in_read = Atomic.make false in
  let release = Atomic.make false in
  let violated = Atomic.make false in
  let reader =
    Domain.spawn (fun () ->
        Storage.Index.iter idx (fun _ ->
            Atomic.set in_read true;
            while not (Atomic.get release) do
              Domain.cpu_relax ()
            done))
  in
  while not (Atomic.get in_read) do
    Domain.cpu_relax ()
  done;
  (try ignore (Storage.Index.insert idx [| 2 |] : bool)
   with Storage.Index.Phase_violation _ -> Atomic.set violated true);
  Atomic.set release true;
  Domain.join reader;
  check_bool "write during read detected" true (Atomic.get violated)

let test_phase_checker_allows_phases () =
  let idx =
    Storage.Index.with_phase_check ~name:"probe"
      (Storage.Index.create Storage.Btree ~arity:1 ~cols:[||] ~stats:None ())
  in
  (* pure write phase, then pure read phase: no violation *)
  for i = 0 to 99 do
    ignore (Storage.Index.insert idx [| i |] : bool)
  done;
  let n = ref 0 in
  Storage.Index.iter idx (fun _ -> incr n);
  check_int "contents" 100 !n

let test_typed_phase_handles () =
  let r =
    Relation.create ~name:"r" ~arity:2 ~kind:Storage.Btree ~sigs:[ [| 0 |] ]
      ~stats:None ()
  in
  (* concurrent writers are fine *)
  let w1 = Relation.begin_write r in
  let w2 = Relation.begin_write r in
  check_bool "writer insert" true (Relation.Writer.insert w1 [| 1; 2 |]);
  check_bool "writer dup" false (Relation.Writer.insert w2 [| 1; 2 |]);
  (* a read may not open while a writer is live *)
  (match Relation.begin_read r with
  | _ -> Alcotest.fail "begin_read during write phase accepted"
  | exception Storage.Index.Phase_violation _ -> ());
  Relation.Writer.finish w1;
  Relation.Writer.finish w2;
  (* double-finish is a bug, loudly *)
  (match Relation.Writer.finish w1 with
  | () -> Alcotest.fail "double finish accepted"
  | exception Invalid_argument _ -> ());
  (* concurrent readers are fine; writes are now rejected *)
  let r1 = Relation.begin_read r in
  let r2 = Relation.begin_read r in
  check_bool "reader mem" true (Relation.Reader.mem r1 [| 1; 2 |]);
  let n = ref 0 in
  Relation.Reader.scan r2 (Relation.sig_id r [| 0 |]) [| 1 |] (fun _ -> incr n);
  check_int "reader scan" 1 !n;
  (match Relation.begin_write r with
  | _ -> Alcotest.fail "begin_write during read phase accepted"
  | exception Storage.Index.Phase_violation _ -> ());
  Relation.Reader.finish r1;
  Relation.Reader.finish r2;
  (* both phases closed: either may open again *)
  let w = Relation.begin_write r in
  Relation.Writer.finish w;
  let rd = Relation.begin_read r in
  Relation.Reader.finish rd

let test_stale_phase_handles () =
  (* a finished handle is dead: any operation through it must fail loudly
     rather than silently reopen the phase (the bug class this catches is a
     worker caching a [Writer.t] across rounds) *)
  let r =
    Relation.create ~name:"stale" ~arity:2 ~kind:Storage.Btree
      ~sigs:[ [| 0 |] ] ~stats:None ()
  in
  let w = Relation.begin_write r in
  check_bool "live insert" true (Relation.Writer.insert w [| 1; 2 |]);
  Relation.Writer.finish w;
  (match Relation.Writer.insert w [| 3; 4 |] with
  | _ -> Alcotest.fail "insert through a stale writer accepted"
  | exception Storage.Index.Phase_violation _ -> ());
  (match Relation.Writer.insert_batch w [| [| 5; 6 |] |] with
  | _ -> Alcotest.fail "insert_batch through a stale writer accepted"
  | exception Storage.Index.Phase_violation _ -> ());
  (* the failed stale calls must not have corrupted the phase tracking:
     a fresh read phase opens and sees only the live insert *)
  let rd = Relation.begin_read r in
  check_bool "stale insert did not land" false (Relation.Reader.mem rd [| 3; 4 |]);
  check_bool "live insert landed" true (Relation.Reader.mem rd [| 1; 2 |]);
  Relation.Reader.finish rd;
  (match Relation.Reader.mem rd [| 1; 2 |] with
  | _ -> Alcotest.fail "mem through a stale reader accepted"
  | exception Storage.Index.Phase_violation _ -> ());
  (match Relation.Reader.scan rd (Relation.sig_id r [| 0 |]) [| 1 |] ignore with
  | () -> Alcotest.fail "scan through a stale reader accepted"
  | exception Storage.Index.Phase_violation _ -> ());
  (* and the relation itself is still healthy *)
  let w2 = Relation.begin_write r in
  check_bool "relation usable after stale accesses" true
    (Relation.Writer.insert w2 [| 7; 8 |]);
  Relation.Writer.finish w2

let all_tuples r =
  let acc = ref [] in
  Relation.iter r (fun tup -> acc := Array.copy tup :: !acc);
  List.sort compare !acc

let test_merge_batch_parallel_vs_serial () =
  (* the parallel structural merge must build exactly the set the serial
     per-tuple path builds, across pool sizes, for every thread-safe kind
     and the locked serial kinds alike *)
  let s = ref (Key.mix64 24) in
  let r bound =
    s := Key.mix64 (!s + 0x2545F4914F6CDD1D);
    !s mod bound
  in
  let tuples =
    Array.init 9_000 (fun _ -> [| r 120; r 120 |])
    (* well above merge_parallel_cutoff, with many duplicates *)
  in
  let mk kind =
    Relation.create ~name:"m" ~arity:2 ~kind ~sigs:[ [| 1 |] ] ~stats:None ()
  in
  List.iter
    (fun kind ->
      let serial = mk kind in
      let fresh_serial = ref 0 in
      Array.iter
        (fun tup -> if Relation.insert serial tup then incr fresh_serial)
        tuples;
      List.iter
        (fun domains ->
          let batched = mk kind in
          let fresh =
            Pool.with_pool domains (fun pool ->
                Relation.merge_batch ~pool batched tuples)
          in
          let label what =
            Printf.sprintf "%s (%s, %d domains)" what (Storage.kind_name kind)
              domains
          in
          check_int (label "fresh") !fresh_serial fresh;
          check_int (label "cardinal") (Relation.cardinal serial)
            (Relation.cardinal batched);
          check_bool (label "contents") true
            (all_tuples serial = all_tuples batched);
          (* secondary indexes got every tuple too *)
          let cur = Relation.begin_read batched in
          let n = ref 0 in
          Relation.Reader.scan cur (Relation.sig_id batched [| 1 |]) [| 7 |]
            (fun _ -> incr n);
          Relation.Reader.finish cur;
          let m = ref 0 in
          List.iter (fun tup -> if tup.(1) = 7 then incr m) (all_tuples serial);
          check_int (label "secondary scan") !m !n)
        [ 1; 2; 4; 8 ])
    Storage.all_kinds

let test_index_merge_empty_and_small () =
  (* below the parallel cutoff and on empty input the merge is serial but
     must agree with per-tuple inserts *)
  let idx = Storage.Index.create Storage.Btree ~arity:1 ~cols:[||] ~stats:None () in
  check_int "empty merge" 0 (Storage.Index.merge idx [||]);
  check_int "small merge" 3
    (Storage.Index.merge idx [| [| 3 |]; [| 1 |]; [| 2 |]; [| 3 |] |]);
  check_int "cardinal" 3 (Storage.Index.cardinal idx);
  check_int "sorted batch replay" 0
    (Storage.Index.insert_batch idx [| [| 1 |]; [| 2 |]; [| 3 |] |])

let test_engine_respects_two_phases () =
  (* the core claim behind the paper's synchronisation design: parallel
     semi-naive evaluation never reads a relation it is writing *)
  List.iter
    (fun kind ->
      let e = Engine.create ~kind ~check_phases:true (Parser.parse_string tc_src) in
      List.iter (fun (r, t) -> Engine.add_fact e r t) (chain_facts 40);
      Pool.with_pool 4 (fun p -> Engine.run e p);
      check_int
        (Printf.sprintf "closure under phase checking (%s)"
           (Storage.kind_name kind))
        (40 * 41 / 2)
        (Engine.relation_size e "path"))
    Storage.all_kinds

let test_workloads_respect_two_phases () =
  let cfg = Pointsto_gen.scaled 0.05 in
  let e =
    Engine.create ~check_phases:true (Pointsto_gen.program cfg)
  in
  List.iter
    (fun (r, t) -> Engine.add_fact e r t)
    (Pointsto_gen.facts cfg (Rng.create 5));
  Pool.with_pool 4 (fun p -> Engine.run e p);
  check_bool "points-to under phase checking" true
    (Engine.relation_size e "vpt" > 0)

(* ---------------- shipped sample programs ---------------- *)

let programs_dir =
  (* tests run from the build sandbox; locate the source tree *)
  let candidates =
    [ "examples/programs"; "../examples/programs"; "../../examples/programs";
      "../../../examples/programs"; "../../../../examples/programs" ]
  in
  List.find_opt
    (fun d -> Sys.file_exists (Filename.concat d "same_generation.dl"))
    candidates

let with_programs f =
  match programs_dir with
  | Some dir -> f dir
  | None -> Alcotest.fail "examples/programs not found from the test sandbox" 

let test_program_same_generation () =
  with_programs (fun dir ->
      let prog = Parser.parse_file (Filename.concat dir "same_generation.dl") in
      let e = Engine.create prog in
      (* a full binary tree of depth 3: nodes 1..15, parent(i, 2i..2i+1) *)
      for i = 1 to 7 do
        Engine.add_fact e "parent" [| i; 2 * i |];
        Engine.add_fact e "parent" [| i; (2 * i) + 1 |]
      done;
      Pool.with_pool 2 (fun p -> Engine.run e p);
      (* same generation: pairs at depth 1 (2), depth 2 (4*3), depth 3 (8*7) *)
      check_int "sg pairs" ((2 * 1) + (4 * 3) + (8 * 7))
        (Engine.relation_size e "sg"))

let test_program_reachable_neg () =
  with_programs (fun dir ->
      let prog = Parser.parse_file (Filename.concat dir "reachable_neg.dl") in
      let e = Engine.create prog in
      for i = 0 to 9 do
        Engine.add_fact e "node" [| i |]
      done;
      List.iter
        (fun (a, b) -> Engine.add_fact e "edge" [| a; b |])
        [ (0, 1); (1, 2); (4, 5) ];
      Pool.with_pool 2 (fun p -> Engine.run e p);
      check_int "unreachable" 7 (Engine.relation_size e "unreachable"))

let test_program_degrees () =
  with_programs (fun dir ->
      let prog = Parser.parse_file (Filename.concat dir "degrees.dl") in
      let e = Engine.create prog in
      List.iter
        (fun (a, b) -> Engine.add_fact e "edge" [| a; b |])
        [ (1, 2); (1, 3); (1, 4); (2, 3); (3, 1) ];
      Pool.with_pool 2 (fun p -> Engine.run e p);
      check_bool "max degree 3, 5 edges" true
        (Engine.relation_list e "summary" = [ [| 3; 5 |] ]))

let test_program_distances () =
  with_programs (fun dir ->
      let prog = Parser.parse_file (Filename.concat dir "distances.dl") in
      let e = Engine.create prog in
      for i = 0 to 5 do
        Engine.add_fact e "edge" [| i; i + 1 |]
      done;
      Pool.with_pool 2 (fun p -> Engine.run e p);
      check_int "distances on a chain" (6 * 7 / 2) (Engine.relation_size e "dist"))

(* ---------------- differential: engine vs naive ---------------- *)

let rng seed =
  let s = ref (Key.mix64 (seed + 1)) in
  fun bound ->
    s := Key.mix64 (!s + 0x2545F4914F6CDD1D);
    !s mod bound

(* random stratifiable program over unary/binary predicates p0..p5 *)
let random_program seed =
  let r = rng seed in
  let npreds = 4 + r 3 in
  let arity i = if i mod 2 = 0 then 2 else 1 in
  let pred i = Printf.sprintf "p%d" i in
  let var v = Ast.Var (Printf.sprintf "v%d" v) in
  let decls =
    List.init npreds (fun i ->
        { Ast.name = pred i; arity = arity i; is_input = false; is_output = true })
  in
  let nrules = 3 + r 5 in
  let rules =
    List.init nrules (fun _ ->
        let h = r npreds in
        let nbody = 1 + r 2 in
        let vars_used = ref [] in
        let body_pos =
          List.init nbody (fun _ ->
              let b = r npreds in
              let args =
                List.init (arity b) (fun _ ->
                    let v = r 4 in
                    vars_used := v :: !vars_used;
                    var v)
              in
              Ast.Pos (Ast.atom (pred b) args))
        in
        (* optional negation on a strictly lower predicate, fully bound *)
        let body =
          if h > 0 && r 3 = 0 && !vars_used <> [] then begin
            let n = r h in
            let args =
              List.init (arity n) (fun i ->
                  var (List.nth !vars_used (i mod List.length !vars_used)))
            in
            body_pos @ [ Ast.Neg (Ast.atom (pred n) args) ]
          end
          else body_pos
        in
        let head_args =
          List.init (arity h) (fun i ->
              match !vars_used with
              | [] -> Ast.Int (r 3)
              | vs -> var (List.nth vs (i mod List.length vs)))
        in
        Ast.rule (Ast.atom (pred h) head_args) body)
  in
  (* random facts *)
  let nfacts = 5 + r 15 in
  let facts =
    List.init nfacts (fun _ ->
        let p = r npreds in
        Ast.fact (pred p) (List.init (arity p) (fun _ -> r 4)))
  in
  { Ast.decls; rules = rules @ facts }

let stratifiable prog =
  match Naive.run prog ~extra_facts:[] with
  | _ -> true
  | exception Stratify.Not_stratifiable _ -> false
  | exception Failure _ -> false

let compare_engine_vs_naive ?(threads = 1) ?(kind = Storage.Btree) prog =
  match Naive.run prog ~extra_facts:[] with
  | exception (Stratify.Not_stratifiable _ | Failure _) -> true (* skipped *)
  | reference -> (
    match Engine.create ~kind prog with
    | exception (Plan.Compile_error _ | Stratify.Not_stratifiable _) ->
      (* naive accepted but planner rejected: only allowed for unsafe rules
         naive silently tolerates; treat as failure to keep them aligned *)
      false
    | e ->
      Pool.with_pool threads (fun p -> Engine.run e p);
      List.for_all
        (fun name ->
          let got = tuples_sorted (Engine.relation_list e name) in
          let want =
            match Hashtbl.find_opt reference name with
            | Some l -> tuples_sorted l
            | None -> []
          in
          got = want)
        (Engine.relations e))

let prop_engine_matches_naive =
  QCheck.Test.make ~count:150 ~name:"engine = naive reference"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let prog = random_program seed in
      QCheck.assume (stratifiable prog);
      compare_engine_vs_naive prog)

let prop_engine_matches_naive_parallel =
  QCheck.Test.make ~count:75 ~name:"parallel engine = naive reference"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let prog = random_program (seed + 77) in
      QCheck.assume (stratifiable prog);
      compare_engine_vs_naive ~threads:4 prog)

let prop_all_kinds_agree =
  QCheck.Test.make ~count:40 ~name:"all storage kinds agree"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let prog = random_program (seed + 123) in
      QCheck.assume (stratifiable prog);
      List.for_all
        (fun kind -> compare_engine_vs_naive ~kind prog)
        Storage.all_kinds)

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "datalog"
    [
      ( "parser",
        [
          tc "basic" `Quick test_parse_basic;
          tc "negation and symbols" `Quick test_parse_negation_and_syms;
          tc "comments and wildcards" `Quick test_parse_comments_wildcards;
          tc "errors" `Quick test_parse_errors;
          tc "roundtrip" `Quick test_parse_roundtrip;
        ] );
      ( "stratify",
        [
          tc "linear" `Quick test_stratify_linear;
          tc "scc" `Quick test_stratify_scc;
          tc "negation ok" `Quick test_stratify_negation_ok;
          tc "negative cycle" `Quick test_stratify_negative_cycle;
        ] );
      ( "storage",
        [
          tc "signature scan" `Quick test_index_signature_scan;
          tc "empty scan" `Quick test_index_empty_scan;
          tc "stats counting" `Quick test_index_stats_counting;
        ] );
      ( "evaluation",
        [
          tc "transitive closure (all kinds)" `Quick test_transitive_closure_all_kinds;
          tc "parallel = sequential" `Quick test_parallel_equals_sequential;
          tc "cycle closure" `Quick test_cycle_closure;
          tc "negation" `Quick test_negation_unreachable;
          tc "symbols" `Quick test_symbols;
          tc "constants" `Quick test_constants_in_rules;
          tc "repeated vars" `Quick test_repeated_vars;
          tc "mutual recursion" `Quick test_mutual_recursion;
        ] );
      ( "index selection",
        [
          tc "chain" `Quick test_index_selection_chain;
          tc "antichain" `Quick test_index_selection_antichain;
          tc "diamond" `Quick test_index_selection_diamond;
          tc "relation sharing" `Quick test_relation_shares_indexes;
        ] );
      qsuite "index selection properties"
        [ prop_index_selection_sound_and_optimal ];
      qsuite "parser fuzz" [ prop_parser_roundtrip; prop_parser_no_crash ];
      ( "constraints",
        [
          tc "parse" `Quick test_parse_constraints;
          tc "comparison filter" `Quick test_comparison_filter;
          tc "assignment" `Quick test_assignment_binding;
          tc "arithmetic head" `Quick test_arithmetic_in_head;
          tc "bounded counter" `Quick test_bounded_counter_recursion;
          tc "path lengths" `Quick test_path_lengths;
          tc "unsafe comparison" `Quick test_unsafe_comparison_rejected;
          tc "ground arithmetic fact" `Quick test_ground_arith_fact;
          tc "vs naive" `Quick test_constraints_vs_naive;
          tc "instrumentation" `Quick test_instrumentation_counts;
          tc "rule profile" `Quick test_rule_profile;
        ] );
      ( "aggregates",
        [
          tc "count" `Quick test_agg_count;
          tc "min/max/sum" `Quick test_agg_min_max_sum;
          tc "min over empty" `Quick test_agg_min_empty_body;
          tc "count over empty" `Quick test_agg_count_empty_is_zero;
          tc "correlated + filter" `Quick test_agg_correlated;
          tc "vs naive" `Quick test_agg_vs_naive;
          tc "inner scope" `Quick test_agg_inner_scope;
          tc "recursion rejected" `Quick test_agg_recursion_rejected;
          tc "bound result checks" `Quick test_agg_result_checked_when_bound;
        ] );
      ( "two-phase discipline",
        [
          tc "violation detected" `Quick test_phase_checker_detects_violation;
          tc "phases allowed" `Quick test_phase_checker_allows_phases;
          tc "typed handles" `Quick test_typed_phase_handles;
          tc "stale handles" `Quick test_stale_phase_handles;
          tc "engine respects phases" `Quick test_engine_respects_two_phases;
          tc "workloads respect phases" `Quick test_workloads_respect_two_phases;
        ] );
      ( "batch merge",
        [
          tc "parallel vs serial" `Quick test_merge_batch_parallel_vs_serial;
          tc "empty and small" `Quick test_index_merge_empty_and_small;
        ] );
      ( "sample programs",
        [
          tc "same generation" `Quick test_program_same_generation;
          tc "reachability + negation" `Quick test_program_reachable_neg;
          tc "degrees (aggregates)" `Quick test_program_degrees;
          tc "distances" `Quick test_program_distances;
        ] );
      ( "io",
        [
          tc "tsv roundtrip" `Quick test_io_roundtrip;
          tc "symbols" `Quick test_io_symbols;
          tc "arity error" `Quick test_io_arity_error;
        ] );
      ( "static checks",
        [
          tc "unsafe rules" `Quick test_unsafe_rules_rejected;
          tc "arity mismatch" `Quick test_arity_mismatch_rejected;
          tc "non-stratifiable" `Quick test_non_stratifiable_rejected;
        ] );
      qsuite "differential"
        [
          prop_engine_matches_naive;
          prop_engine_matches_naive_parallel;
          prop_all_kinds_agree;
        ];
    ]
