(* Exhaustive interleaving checks for the olock protocol (an executable
   model of Fig. 2): mutual exclusion of writers, reader-validation
   agreement, upgrade atomicity, and Protocol_violation behaviour, each
   explored over every fair schedule of a small thread program.  The same
   models run over the torn-CAS mutant to prove the checker actually
   detects a protocol bug (and prints its counterexample schedule). *)

module MC = Modelcheck

(* The models are written once, over any instantiation of the protocol. *)
module Models (L : Olock.S) = struct
  type shared = {
    lock : L.t;
    mutable holders : int; (* threads currently believing they hold write *)
    mutable d1 : int; (* protected data, written as a pair *)
    mutable d2 : int;
    mutable writer_done : bool;
  }

  let setup () =
    { lock = L.create (); holders = 0; d1 = 0; d2 = 0; writer_done = false }

  let excl s =
    if s.holders > 1 then
      raise (MC.Violation "two writers inside the critical section")

  let no_check _ = ()

  (* Both threads race [try_start_write]; at most one may win before the
     other's attempt fails. *)
  let mutex_try =
    let body s =
      if L.try_start_write s.lock then begin
        s.holders <- s.holders + 1;
        MC.yield ();
        s.holders <- s.holders - 1;
        L.end_write s.lock
      end
    in
    {
      MC.name = "mutex-try";
      setup;
      threads = [| body; body |];
      invariant = excl;
      final =
        (fun s ->
          if L.is_write_locked s.lock then
            raise (MC.Violation "lock left write-held"));
    }

  (* Blocking writers: both spin in [start_write]; exclusion must hold on
     every fair schedule. *)
  let mutex_blocking =
    let body s =
      L.start_write s.lock;
      s.holders <- s.holders + 1;
      MC.yield ();
      s.holders <- s.holders - 1;
      L.end_write s.lock
    in
    {
      MC.name = "mutex-blocking";
      setup;
      threads = [| body; body |];
      invariant = excl;
      final = no_check;
    }

  (* The lost-upgrade race: both threads read, then both try to upgrade
     the same lease.  The CAS must let at most one win — this is the
     upgrade-atomicity obligation of Fig. 2, and the model that catches
     the torn-CAS mutant. *)
  let upgrade_race =
    let body s =
      let lease = L.start_read s.lock in
      if L.try_upgrade_to_write s.lock lease then begin
        s.holders <- s.holders + 1;
        MC.yield ();
        s.holders <- s.holders - 1;
        L.end_write s.lock
      end
    in
    {
      MC.name = "upgrade-race";
      setup;
      threads = [| body; body |];
      invariant = excl;
      final = no_check;
    }

  (* Reader-validation agreement: the writer publishes (d1, d2) as a pair
     under a write permit; a reader that observes a torn pair must be
     told so by [end_read].  A schedule where end_read returns true over
     a torn observation is a seqlock soundness bug. *)
  let reader_validation =
    let writer s =
      L.start_write s.lock;
      MC.yield ();
      s.d1 <- 1;
      MC.yield ();
      s.d2 <- 1;
      L.end_write s.lock
    in
    let reader s =
      let lease = L.start_read s.lock in
      let a = s.d1 in
      MC.yield ();
      let b = s.d2 in
      if L.end_read s.lock lease && a <> b then
        raise (MC.Violation "end_read validated a torn read")
    in
    {
      MC.name = "reader-validation";
      setup;
      threads = [| writer; reader |];
      invariant = no_check;
      final = no_check;
    }

  (* Three threads: two try-upgraders and a validating reader. *)
  let three_thread =
    let upgrader s =
      let lease = L.start_read s.lock in
      if L.try_upgrade_to_write s.lock lease then begin
        s.holders <- s.holders + 1;
        s.d1 <- s.d1 + 1;
        MC.yield ();
        s.d2 <- s.d2 + 1;
        s.holders <- s.holders - 1;
        L.end_write s.lock
      end
    in
    let reader s =
      let lease = L.start_read s.lock in
      let a = s.d1 in
      MC.yield ();
      let b = s.d2 in
      if L.end_read s.lock lease && a <> b then
        raise (MC.Violation "end_read validated a torn read")
    in
    {
      MC.name = "three-thread";
      setup;
      threads = [| upgrader; upgrader; reader |];
      invariant = excl;
      final = no_check;
    }

  (* Regression: end_write on a lock not held for writing must raise and
     leave the lock usable (PR 4 behaviour). *)
  let end_write_misuse =
    let body s =
      (match L.end_write s.lock with
      | () -> raise (MC.Violation "end_write on a free lock did not raise")
      | exception Olock.Protocol_violation _ -> ());
      (* the rollback must leave the lock usable *)
      L.start_write s.lock;
      s.d1 <- 1;
      L.end_write s.lock
    in
    {
      MC.name = "end-write-misuse";
      setup;
      threads = [| body |];
      invariant = no_check;
      final =
        (fun s ->
          if L.version s.lock <> 2 then
            raise
              (MC.Violation
                 (Printf.sprintf "lock version %d after misuse + one write"
                    (L.version s.lock))));
    }

  (* Regression: a thread whose [try_start_write] failed holds nothing;
     calling [abort_write] once the lock is free again must raise (and
     must not wedge the lock).  The model sequences the abort after the
     real writer finished via a plain flag, so the lock is provably free
     (even version) at the abort on every schedule that reaches it. *)
  let abort_after_failed_try =
    let writer s =
      L.start_write s.lock;
      MC.yield ();
      L.end_write s.lock;
      s.writer_done <- true
    in
    let aborter s =
      let rec attempt tries =
        if L.try_start_write s.lock then L.end_write s.lock
        else begin
          MC.yield ();
          if s.writer_done then (
            match L.abort_write s.lock with
            | () ->
              raise
                (MC.Violation
                   "abort_write after a failed try_start_write did not raise")
            | exception Olock.Protocol_violation _ -> ())
          else if tries > 0 then attempt (tries - 1)
        end
      in
      attempt 3
    in
    {
      MC.name = "abort-after-failed-try";
      setup;
      threads = [| writer; aborter |];
      invariant = no_check;
      final =
        (fun s ->
          if L.is_write_locked s.lock then
            raise (MC.Violation "lock left write-held"));
    }
end

module Faithful = Models (Olock.Make (MC.Traced_atomic))
module Mutant = Models (Olock.Make (MC.Torn_cas_atomic))

let check_passes ?fuel name spec ~min_schedules =
  let rep = MC.explore ?fuel spec in
  (match rep.MC.rep_violation with
  | None -> ()
  | Some cx ->
    Alcotest.failf "%s: unexpected violation:\n%s" name
      (MC.counterexample_to_string cx));
  if rep.MC.rep_schedules < min_schedules then
    Alcotest.failf "%s: only %d complete schedules explored (expected >= %d)"
      name rep.MC.rep_schedules min_schedules

let test_mutex_try () =
  check_passes "mutex-try" Faithful.mutex_try ~min_schedules:2

let test_mutex_blocking () =
  check_passes "mutex-blocking" Faithful.mutex_blocking ~min_schedules:2

let test_upgrade_race () =
  check_passes "upgrade-race" Faithful.upgrade_race ~min_schedules:2

let test_reader_validation () =
  check_passes "reader-validation" Faithful.reader_validation ~min_schedules:2

let test_three_thread () =
  check_passes ~fuel:8 "three-thread" Faithful.three_thread ~min_schedules:6

let test_end_write_misuse () =
  check_passes "end-write-misuse" Faithful.end_write_misuse ~min_schedules:1

let test_abort_after_failed_try () =
  check_passes "abort-after-failed-try" Faithful.abort_after_failed_try
    ~min_schedules:2

(* The torn-CAS mutant must be caught, with a schedule trace that pins the
   interleaving: a second thread's step between one thread's cas-read and
   cas-write. *)
let test_mutant_detected () =
  let rep = MC.explore Mutant.upgrade_race in
  match rep.MC.rep_violation with
  | None ->
    Alcotest.fail
      "torn-CAS mutant not detected: upgrade race passed the checker"
  | Some cx ->
    let trace = MC.counterexample_to_string cx in
    Printf.printf "seeded-bug counterexample, as the checker prints it:\n%s%!"
      trace;
    Alcotest.(check bool)
      "trace mentions the torn CAS" true
      (String.length trace > 0
      && List.exists
           (fun (_, op) ->
             String.length op >= 8 && String.sub op 0 8 = "torn-cas")
           cx.MC.cx_trace);
    (* The torn CAS lets both threads upgrade; the checker may observe
       that either as the holders invariant firing, or — depending on
       which interleaving DFS reaches first — as the second end_write
       blowing up with Protocol_violation because both decrements drove
       the version past the held state.  Both pin the same seeded bug. *)
    let names_double_hold =
      cx.MC.cx_message = "two writers inside the critical section"
      ||
      let is_prefix p s =
        String.length s >= String.length p
        && String.sub s 0 (String.length p) = p
      in
      is_prefix "t0 raised Olock.Protocol_violation" cx.MC.cx_message
      || is_prefix "t1 raised Olock.Protocol_violation" cx.MC.cx_message
    in
    Alcotest.(check bool)
      "message names the double write-hold or the protocol blow-up" true
      names_double_hold

(* The faithful instantiation must behave exactly like the production one
   on a sequential protocol run — same version trajectory. *)
let test_traced_matches_default () =
  let module T = Olock.Make (MC.Traced_atomic) in
  let t = T.create () in
  let d = Olock.create () in
  let step name f g =
    Alcotest.(check bool) name true (f () = g ())
  in
  step "try_start_write"
    (fun () -> T.try_start_write t)
    (fun () -> Olock.try_start_write d);
  step "version odd" (fun () -> T.version t) (fun () -> Olock.version d);
  T.end_write t;
  Olock.end_write d;
  step "version after end" (fun () -> T.version t) (fun () -> Olock.version d);
  let lt = T.start_read t and ld = Olock.start_read d in
  Alcotest.(check int) "lease" ld lt;
  step "upgrade"
    (fun () -> T.try_upgrade_to_write t lt)
    (fun () -> Olock.try_upgrade_to_write d ld);
  T.abort_write t;
  Olock.abort_write d;
  step "version after abort" (fun () -> T.version t) (fun () -> Olock.version d)

let () =
  Alcotest.run "modelcheck"
    [
      ( "olock-model",
        [
          Alcotest.test_case "mutex try" `Quick test_mutex_try;
          Alcotest.test_case "mutex blocking" `Quick test_mutex_blocking;
          Alcotest.test_case "upgrade race" `Quick test_upgrade_race;
          Alcotest.test_case "reader validation" `Quick test_reader_validation;
          Alcotest.test_case "three threads" `Quick test_three_thread;
        ] );
      ( "regressions",
        [
          Alcotest.test_case "end_write misuse" `Quick test_end_write_misuse;
          Alcotest.test_case "abort after failed try" `Quick
            test_abort_after_failed_try;
        ] );
      ( "seeded-bug",
        [
          Alcotest.test_case "torn-cas mutant detected" `Quick
            test_mutant_detected;
          Alcotest.test_case "traced matches default" `Quick
            test_traced_matches_default;
        ] );
    ]
